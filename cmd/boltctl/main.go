// Command boltctl runs Bolt interactively against a single simulated host:
// it places one or more victim applications, injects the adversarial VM,
// runs detection, and prints the similarity distribution, the recovered
// resource profile, and a ready-to-launch DoS plan.
//
// Usage:
//
//	boltctl [-seed N] [-victims class[,class...]] [-adv-vcpus N] [-iters N]
//
// Victim classes: memcached hadoop spark cassandra speccpu webserver sql
// mongodb redis storm graph (or "random").
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bolt/internal/attack"
	"bolt/internal/core"
	"bolt/internal/isolation"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 1, "simulation seed")
	victims := flag.String("victims", "memcached", "comma-separated victim classes, or 'random'")
	advVCPUs := flag.Int("adv-vcpus", 4, "adversarial VM size in vCPUs")
	iters := flag.Int("iters", 6, "maximum detection iterations")
	profilesIn := flag.String("profiles", "", "load training profiles from this JSON file instead of retraining")
	profilesOut := flag.String("save-profiles", "", "write the training profiles to this JSON file and exit")
	isoName := flag.String("isolation", "none", "host isolation: none, pinning, partitioned, core")
	flag.Parse()

	rng := stats.NewRNG(*seed)

	gens := map[string]func(*stats.RNG, int) workload.Spec{}
	for _, g := range workload.Generators() {
		gens[g.Class] = g.Make
	}
	gens["sql"] = workload.SQLDatabase
	gens["speccpu"] = workload.SpecCPU

	var det *core.Detector
	if *profilesIn != "" {
		f, err := os.Open(*profilesIn)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boltctl: %v\n", err)
			os.Exit(1)
		}
		det, err = core.LoadProfiles(f, core.Config{MaxIterations: *iters})
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "boltctl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("boltctl: loaded %d training profiles from %s\n", len(det.Profiles()), *profilesIn)
	} else {
		fmt.Println("boltctl: training detector on the 120-application training set...")
		det = core.Train(workload.TrainingSpecs(*seed), core.Config{MaxIterations: *iters})
	}
	if *profilesOut != "" {
		f, err := os.Create(*profilesOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boltctl: %v\n", err)
			os.Exit(1)
		}
		if err := det.SaveProfiles(f); err != nil {
			fmt.Fprintf(os.Stderr, "boltctl: %v\n", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("boltctl: wrote training profiles to %s\n", *profilesOut)
		return
	}

	var isoCfg isolation.Config
	switch *isoName {
	case "none":
	case "pinning":
		isoCfg = isolation.Config{Platform: isolation.VMs, ThreadPinning: true}
	case "partitioned":
		isoCfg = isolation.Config{Platform: isolation.VMs, ThreadPinning: true,
			NetPartition: true, MemBWPartition: true, CachePartition: true}
	case "core":
		isoCfg = isolation.Config{Platform: isolation.VMs, ThreadPinning: true,
			NetPartition: true, MemBWPartition: true, CachePartition: true, CoreIsolation: true}
	default:
		fmt.Fprintf(os.Stderr, "boltctl: unknown isolation %q\n", *isoName)
		os.Exit(2)
	}
	isoCfg.Platform = isolation.VMs
	srvCfg := sim.ServerConfig{}
	if *isoName != "none" {
		srvCfg = isoCfg.ServerConfig(8, 2)
	}
	host := sim.NewServer("host-0", srvCfg)
	var placed []workload.Spec
	for i, class := range strings.Split(*victims, ",") {
		class = strings.TrimSpace(class)
		var spec workload.Spec
		if class == "random" {
			g := workload.Generators()[rng.Intn(len(workload.Generators()))]
			spec = g.Make(rng.Split(), rng.Intn(24))
		} else {
			gen, ok := gens[class]
			if !ok {
				fmt.Fprintf(os.Stderr, "boltctl: unknown victim class %q\n", class)
				os.Exit(2)
			}
			spec = gen(rng.Split(), rng.Intn(24))
		}
		app := workload.NewApp(spec, workload.DefaultPattern(spec.Class, rng.Split()), rng.Uint64())
		vm := &sim.VM{ID: fmt.Sprintf("victim-%d", i), VCPUs: 3 + rng.Intn(3), App: app}
		if err := host.Place(vm); err != nil {
			fmt.Fprintf(os.Stderr, "boltctl: placing %s: %v\n", spec.Label, err)
			os.Exit(1)
		}
		placed = append(placed, spec)
		fmt.Printf("  placed victim %-24s (%d vCPUs)\n", spec.Label, vm.VCPUs)
	}

	adv := probe.NewAdversary("bolt", *advVCPUs, probe.Config{}, rng.Split())
	if err := host.Place(adv.VM); err != nil {
		fmt.Fprintf(os.Stderr, "boltctl: placing adversary: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("  injected adversarial VM (%d vCPUs)\n\n", *advVCPUs)

	det2 := det.Detect(host, adv, 0, len(placed))
	fmt.Printf("detection: %d iteration(s), %.1fs simulated, core shared: %v, shutter: %v\n\n",
		det2.Iterations, det2.Ticks.Seconds(), det2.CoreShared, det2.UsedShutter)

	fmt.Println("similarity distribution (single-victim hypothesis):")
	top := det2.Result.Matches
	if len(top) > 5 {
		top = top[:5]
	}
	for _, m := range top {
		fmt.Printf("  %-26s %5.1f%%\n", m.Label, 100*m.Similarity)
	}

	fmt.Println("\ndisentangled co-residents:")
	for i, r := range det2.CoResidents {
		fmt.Printf("  #%d %-26s (similarity %.2f)\n", i+1, r.Best().Label, r.Best().Similarity)
	}

	fmt.Println("\nrecovered resource profile (primary signal):")
	pressure := sim.FromSlice(det2.Result.Pressure)
	for _, r := range sim.AllResources() {
		bar := strings.Repeat("#", int(pressure.Get(r)/4))
		fmt.Printf("  %-8s %5.1f%% %s\n", r, pressure.Get(r), bar)
	}

	plan := attack.PlanDoS(det2, 2)
	fmt.Println("\nDoS plan (detection-guided, migration-evading):")
	for _, r := range plan.Targets {
		fmt.Printf("  stress %-8s at %.0f%% intensity\n", r, plan.Intensity.Get(r))
	}
	fmt.Printf("  adversary CPU cost: %.0f%% (defence trigger: 70%%)\n", plan.AdversaryCPU())

	fmt.Println("\nground truth:")
	for _, spec := range placed {
		fmt.Printf("  %-26s dominant resource %s\n", spec.Label, spec.Base.Dominant())
	}
}
