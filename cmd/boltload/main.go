// Command boltload drives a boltd-style detection service with closed-loop
// clients and reports throughput and latency percentiles in Go benchmark
// format, one line per swept configuration:
//
//	BenchmarkBoltload/inproc/w2/b64/c16  1048576  1180 ns/op  846000 qps  ...
//
// Usage:
//
//	boltload [-mode inproc|socket] [-addr host:port] [-workers CSV]
//	         [-batch CSV] [-clients CSV] [-requests N] [-linger dur]
//	         [-queue N] [-seed N] [-faultrate R]
//
// The sweep is the cross product of the -workers, -batch and -clients CSV
// lists. In inproc mode each configuration builds its own serve.Server and
// clients submit through Server.Detect; in socket mode clients speak the
// NDJSON wire protocol — to -addr if given, else to a private loopback
// server built per configuration (so one process still exercises the full
// TCP path). Clients are closed-loop: each keeps exactly one request in
// flight, retrying (and counting) ErrBusy sheds. Every client draws its
// request stream from a pre-split RNG, so the offered workload is
// deterministic per seed regardless of scheduling.
//
// Emitted metrics per line: iterations (requests answered), ns/op
// (wall time / answered), qps, p50-us/p90-us/p99-us/max-us (per-request
// latency percentiles over all clients, microseconds), and shed (busy
// rejections retried). cmd/benchjson -exec parses these lines into
// BENCH_serve.json.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"bolt/internal/core"
	"bolt/internal/fault"
	"bolt/internal/par"
	"bolt/internal/serve"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	mode := flag.String("mode", "inproc", "inproc (Server.Detect) or socket (NDJSON over TCP)")
	addr := flag.String("addr", "", "socket mode: external server address (empty = private loopback server)")
	workersCSV := flag.String("workers", "1,2", "CSV of batch-worker counts to sweep")
	batchCSV := flag.String("batch", "1,16,64", "CSV of max batch sizes to sweep")
	clientsCSV := flag.String("clients", "16", "CSV of closed-loop client counts to sweep")
	requests := flag.Int("requests", 65536, "requests answered per configuration")
	linger := flag.Duration("linger", 0, "batch linger")
	queue := flag.Int("queue", 0, "queue depth (0 = 4x batch)")
	seed := flag.Uint64("seed", 42, "workload seed (training set + request streams)")
	faultrate := flag.Float64("faultrate", 0, "request-level fault intensity in [0,1]")
	flag.Parse()

	if *mode != "inproc" && *mode != "socket" {
		fmt.Fprintf(os.Stderr, "boltload: unknown -mode %q\n", *mode)
		return 2
	}
	workers, err1 := parseCSV(*workersCSV)
	batches, err2 := parseCSV(*batchCSV)
	clients, err3 := parseCSV(*clientsCSV)
	for _, err := range []error{err1, err2, err3} {
		if err != nil {
			fmt.Fprintf(os.Stderr, "boltload: %v\n", err)
			return 2
		}
	}

	fmt.Fprintf(os.Stderr, "boltload: training detector (seed %d)...\n", *seed)
	det := core.TrainCached(workload.TrainingSpecs(*seed), core.Config{})
	n := det.Rec.ResourceCount()

	fmt.Printf("goos: %s\n", runtime.GOOS)
	fmt.Printf("goarch: %s\n", runtime.GOARCH)
	fmt.Printf("pkg: bolt/cmd/boltload\n")

	root := stats.NewRNG(*seed)
	for _, w := range workers {
		for _, b := range batches {
			for _, c := range clients {
				cfg := serve.Config{
					Workers:    w,
					MaxBatch:   b,
					QueueDepth: *queue,
					Linger:     *linger,
					Fault:      fault.Config{Rate: *faultrate},
					FaultSeed:  *seed,
				}
				res, err := runConfig(*mode, *addr, det, n, cfg, c, *requests, root.SplitN(c))
				if err != nil {
					fmt.Fprintf(os.Stderr, "boltload: %s/w%d/b%d/c%d: %v\n", *mode, w, b, c, err)
					return 1
				}
				fmt.Printf("BenchmarkBoltload/%s/w%d/b%d/c%d\t%8d\t%8.0f ns/op\t%10.0f qps\t%8.1f p50-us\t%8.1f p90-us\t%8.1f p99-us\t%8.1f max-us\t%6d shed\n",
					*mode, w, b, c, res.served, res.nsPerOp, res.qps,
					res.p50, res.p90, res.p99, res.max, res.shed)
			}
		}
	}
	return 0
}

func parseCSV(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad CSV entry %q (want positive integers)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// result is one configuration's measurement.
type result struct {
	served        int
	shed          uint64
	nsPerOp, qps  float64
	p50, p90, p99 float64 // microseconds
	max           float64
}

// submitter answers one request; busy is a retryable shed.
type submitter func(obs []float64, known []bool) (busy bool, err error)

// runConfig measures one (workers, batch, clients) point: it builds the
// target (in-process server, loopback server, or external address), fans
// out the closed-loop clients, and merges their latency samples.
func runConfig(mode, addr string, det *core.Detector, n int, cfg serve.Config, clients, requests int, rngs []*stats.RNG) (result, error) {
	var submitFor func(ci int) (submitter, func(), error)
	var teardown func()
	switch {
	case mode == "inproc":
		srv := serve.New(det, cfg)
		teardown = srv.Close
		submitFor = func(int) (submitter, func(), error) {
			return func(obs []float64, known []bool) (bool, error) {
				_, err := srv.Detect(obs, known)
				if err == serve.ErrBusy {
					return true, nil
				}
				return false, err
			}, func() {}, nil
		}
	case addr == "": // socket mode against a private loopback server
		srv := serve.New(det, cfg)
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			srv.Close()
			return result{}, err
		}
		// The accept loop is fire-and-forget by design: it exits when
		// teardown closes the listener, and handleConn goroutines are
		// connection-bounded (see serve.ServeListener).
		//bolt:nolint timerleak -- accept loop exits when teardown closes the listener; nothing downstream outlives srv.Close
		go serve.ServeListener(l, srv)
		teardown = func() { l.Close(); srv.Close() }
		addr = l.Addr().String()
		fallthrough
	default: // socket mode against addr
		target := addr
		submitFor = func(int) (submitter, func(), error) {
			cl, err := serve.Dial(target)
			if err != nil {
				return nil, nil, err
			}
			return func(obs []float64, known []bool) (bool, error) {
				wr, err := cl.Detect(obs, known)
				if err != nil {
					return false, err
				}
				if wr.Busy() {
					return true, nil
				}
				if wr.Error != "" {
					return false, fmt.Errorf("in-band error: %s", wr.Error)
				}
				return false, nil
			}, func() { cl.Close() }, nil
		}
	}
	if teardown != nil {
		defer teardown()
	}

	masks := requestMasks(n)
	perClient := make([]int, clients)
	for i := 0; i < requests; i++ {
		perClient[i%clients]++
	}
	lats := make([][]time.Duration, clients)
	sheds := make([]uint64, clients)
	errs := make([]error, clients)

	// Wall-clock reads below are boltload's product, not a contamination:
	// the tool exists to measure real latency and throughput. The
	// deterministic half of its output (served/shed counts, request
	// streams) flows from the seeded RNGs alone.
	//bolt:nolint detrand -- measuring wall time is the load generator's purpose
	start := time.Now()
	par.FanOut(clients, clients, func(i int) string {
		return fmt.Sprintf("boltload client %d", i)
	}, func(ci int) {
		submit, done, err := submitFor(ci)
		if err != nil {
			errs[ci] = err
			return
		}
		defer done()
		rng := rngs[ci]
		obs := make([]float64, n)
		known := make([]bool, n)
		lat := make([]time.Duration, 0, perClient[ci])
		for k := 0; k < perClient[ci]; k++ {
			mask := masks[rng.Intn(len(masks))]
			for j := range obs {
				known[j] = mask[j]
				obs[j] = 0
				if mask[j] {
					obs[j] = stats.Clamp(rng.Range(0, 100), 0, 100)
				}
			}
			for {
				//bolt:nolint detrand -- measuring per-request latency is the load generator's purpose
				t0 := time.Now()
				busy, err := submit(obs, known)
				if err != nil {
					errs[ci] = err
					return
				}
				if !busy {
					//bolt:nolint detrand -- measuring per-request latency is the load generator's purpose
					lat = append(lat, time.Since(t0))
					break
				}
				sheds[ci]++
			}
		}
		lats[ci] = lat
	})
	//bolt:nolint detrand -- measuring wall time is the load generator's purpose
	wall := time.Since(start)

	var shed uint64
	served := 0
	all := make([]time.Duration, 0, requests)
	for ci := range lats {
		if errs[ci] != nil {
			return result{}, errs[ci]
		}
		served += len(lats[ci])
		all = append(all, lats[ci]...)
		shed += sheds[ci]
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	return result{
		served:  served,
		shed:    shed,
		nsPerOp: float64(wall.Nanoseconds()) / float64(served),
		qps:     float64(served) / wall.Seconds(),
		p50:     percentileUS(all, 50),
		p90:     percentileUS(all, 90),
		p99:     percentileUS(all, 99),
		max:     percentileUS(all, 100),
	}, nil
}

// percentileUS returns the p-th percentile of the sorted samples in
// microseconds (nearest-rank on the sorted slice).
func percentileUS(sorted []time.Duration, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted) - 1) * p / 100
	return float64(sorted[idx].Nanoseconds()) / 1e3
}

// requestMasks are the observation shapes offered load mixes: the canonical
// LLC/MemBW/NetBW probe mask, two partial variants, and a full observation.
func requestMasks(n int) [][]bool {
	masks := make([][]bool, 4)
	for i := range masks {
		masks[i] = make([]bool, n)
	}
	masks[0][3], masks[0][5], masks[0][7] = true, true, true // LLC, MemBW, NetBW
	masks[1][3], masks[1][5] = true, true
	masks[2][6], masks[2][7], masks[2][9] = true, true, true
	for j := range masks[3] {
		masks[3][j] = true
	}
	return masks
}
