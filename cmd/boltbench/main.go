// Command boltbench regenerates every table and figure of the paper's
// evaluation and prints them in paper-style form.
//
// Usage:
//
//	boltbench [-seed N] [-run id[,id...]] [-parallel N] [-epworkers N]
//	          [-shardworkers N] [-fleet N] [-defence p[,p...]] [-json] [-list]
//
// Without -run it executes all experiments in paper order. Experiment IDs
// match the per-experiment index in DESIGN.md (table1, fig2, ... ablation);
// repeating an ID in -run is rejected, since the suite renders each
// experiment exactly once per run.
//
// Experiments run concurrently (-parallel, default GOMAXPROCS), and inside
// one experiment independent episodes run concurrently too (-epworkers,
// default GOMAXPROCS). Reports are buffered and emitted in paper order and
// every episode draws from its own pre-split RNG stream, so stdout is
// byte-identical for a given seed at every -parallel × -epworkers
// combination. Timing goes to stderr.
//
// The fleet experiment additionally ticks its simulated datacenter on a
// sharded worker pool (-shardworkers, default GOMAXPROCS); per-server RNG
// pre-splitting and the server-id-ordered tick barrier keep stdout
// byte-identical at every -shardworkers level too. -fleet pins the fleet's
// server count (e.g. 4096 for the ~20k-VM datacenter run) and -defence
// selects the defencesweep experiment's placement-policy ladder; unlike
// the worker knobs these change the experiment itself, not its schedule.
//
// -cpuprofile and -memprofile write pprof profiles of the run (the
// standard `go tool pprof` format); the memory profile is taken after a
// final GC so it reflects live retained heap, like `go test -memprofile`.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"bolt/internal/exper"
	"bolt/internal/fault"
	"bolt/internal/fleet"
)

// main is a thin wrapper: all work happens in run so that its defers
// (profile writers) execute before the process exits — os.Exit anywhere
// inside run's body would silently truncate an in-flight CPU profile.
func main() {
	os.Exit(run())
}

func run() (code int) {
	seed := flag.Uint64("seed", 42, "experiment seed (all results are deterministic per seed)")
	runIDs := flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON document instead of tables")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"max experiments in flight at once (results are identical at any level)")
	epworkers := flag.Int("epworkers", 0,
		"max episodes in flight inside one experiment; 0 = GOMAXPROCS (results are identical at any level)")
	shardworkers := flag.Int("shardworkers", 0,
		"max fleet-tick shards in flight inside the fleet experiment; 0 = GOMAXPROCS (results are identical at any level)")
	fleetSize := flag.Int("fleet", 0,
		"server count for the fleet experiment; 0 sweeps the default fleet-size ladder (different values are different experiments)")
	defence := flag.String("defence", "",
		"comma-separated placement policies for the defencesweep experiment (none, pssf, bandit-eps, bandit-ucb, mtd); empty runs the full ladder (different values are different experiments)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (after final GC) to this file")
	faultRate := flag.Float64("faultrate", 0,
		"inject measurement faults at this rate (0..1) into every adversary without an explicit per-experiment fault config; 0 (default) injects nothing and is byte-identical to builds without the fault plane")
	flag.Parse()

	if *faultRate < 0 || *faultRate > 1 {
		fmt.Fprintf(os.Stderr, "boltbench: -faultrate %g outside [0, 1]\n", *faultRate)
		return 2
	}
	// Installed once, before any experiment runs (the deterministic-suite
	// contract forbids flipping either knob mid-run).
	fault.SetDefault(fault.Config{Rate: *faultRate})
	exper.SetEpisodeWorkers(*epworkers)
	fleet.SetShardWorkers(*shardworkers)
	exper.SetFleetServers(*fleetSize)
	exper.SetDefencePolicies(*defence)

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return 0
	}

	var selected []exper.Experiment
	if *runIDs == "" {
		selected = exper.All()
	} else {
		seen := make(map[string]bool)
		for _, id := range strings.Split(*runIDs, ",") {
			id = strings.TrimSpace(id)
			e, ok := exper.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "boltbench: unknown experiment %q (use -list)\n", id)
				return 2
			}
			if seen[id] {
				fmt.Fprintf(os.Stderr, "boltbench: experiment %q repeated in -run\n", id)
				return 2
			}
			seen[id] = true
			selected = append(selected, e)
		}
	}

	// Profiling starts only after flag validation so usage errors exit
	// without leaving truncated profile files behind.
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "boltbench: creating CPU profile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "boltbench: starting CPU profile: %v\n", err)
			f.Close()
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		// Deferred so the profile captures the heap the run actually
		// retained. A failure here reports and marks the exit code, but
		// falls through — exiting from inside this defer would skip the
		// CPU-profile defer above and truncate that file.
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "boltbench: creating heap profile: %v\n", err)
				if code == 0 {
					code = 1
				}
				return
			}
			defer f.Close()
			runtime.GC() // material allocations only: report live retained heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "boltbench: writing heap profile: %v\n", err)
				if code == 0 {
					code = 1
				}
			}
		}()
	}

	start := time.Now()
	results := exper.Run(selected, *seed, *parallel)

	if *asJSON {
		reports := make([]*exper.Report, len(results))
		for i, r := range results {
			reports[i] = r.Report
		}
		if err := exper.WriteAllJSON(os.Stdout, *seed, reports); err != nil {
			fmt.Fprintf(os.Stderr, "boltbench: writing JSON: %v\n", err)
			return 1
		}
		return 0
	}

	for _, r := range results {
		r.Report.Render(os.Stdout)
		fmt.Fprintf(os.Stderr, "[%s took %.1fs]\n", r.Experiment.ID, r.Elapsed.Seconds())
	}
	fmt.Fprintf(os.Stderr, "boltbench: %d experiment(s) in %.1fs (seed %d, parallel %d, epworkers %d)\n",
		len(selected), time.Since(start).Seconds(), *seed, *parallel, exper.EpisodeWorkers())
	return 0
}
