// Command boltbench regenerates every table and figure of the paper's
// evaluation and prints them in paper-style form.
//
// Usage:
//
//	boltbench [-seed N] [-run id[,id...]] [-list]
//
// Without -run it executes all experiments in paper order. Experiment IDs
// match the per-experiment index in DESIGN.md (table1, fig2, ... ablation).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"bolt/internal/exper"
)

func main() {
	seed := flag.Uint64("seed", 42, "experiment seed (all results are deterministic per seed)")
	run := flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON instead of tables")
	flag.Parse()

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exper.Experiment
	if *run == "" {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := exper.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "boltbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	for _, e := range selected {
		t0 := time.Now()
		rep := e.Run(*seed)
		if *asJSON {
			if err := rep.WriteJSON(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "boltbench: %v\n", err)
				os.Exit(1)
			}
			continue
		}
		rep.Render(os.Stdout)
		fmt.Printf("[%s took %.1fs]\n\n", e.ID, time.Since(t0).Seconds())
	}
	if !*asJSON {
		fmt.Printf("boltbench: %d experiment(s) in %.1fs (seed %d)\n",
			len(selected), time.Since(start).Seconds(), *seed)
	}
}
