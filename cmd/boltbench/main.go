// Command boltbench regenerates every table and figure of the paper's
// evaluation and prints them in paper-style form.
//
// Usage:
//
//	boltbench [-seed N] [-run id[,id...]] [-parallel N] [-json] [-list]
//
// Without -run it executes all experiments in paper order. Experiment IDs
// match the per-experiment index in DESIGN.md (table1, fig2, ... ablation).
//
// Experiments run concurrently (-parallel, default GOMAXPROCS) but reports
// are buffered and emitted in paper order, so stdout is byte-identical for
// a given seed at every parallelism level. Timing goes to stderr.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"bolt/internal/exper"
)

func main() {
	seed := flag.Uint64("seed", 42, "experiment seed (all results are deterministic per seed)")
	run := flag.String("run", "", "comma-separated experiment IDs to run (default: all)")
	list := flag.Bool("list", false, "list experiment IDs and exit")
	asJSON := flag.Bool("json", false, "emit one machine-readable JSON document instead of tables")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0),
		"max experiments in flight at once (results are identical at any level)")
	flag.Parse()

	if *list {
		for _, e := range exper.All() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []exper.Experiment
	if *run == "" {
		selected = exper.All()
	} else {
		for _, id := range strings.Split(*run, ",") {
			id = strings.TrimSpace(id)
			e, ok := exper.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "boltbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	start := time.Now()
	results := exper.Run(selected, *seed, *parallel)

	if *asJSON {
		reports := make([]*exper.Report, len(results))
		for i, r := range results {
			reports[i] = r.Report
		}
		if err := exper.WriteAllJSON(os.Stdout, *seed, reports); err != nil {
			fmt.Fprintf(os.Stderr, "boltbench: writing JSON: %v\n", err)
			os.Exit(1)
		}
		return
	}

	for _, r := range results {
		r.Report.Render(os.Stdout)
		fmt.Fprintf(os.Stderr, "[%s took %.1fs]\n", r.Experiment.ID, r.Elapsed.Seconds())
	}
	fmt.Fprintf(os.Stderr, "boltbench: %d experiment(s) in %.1fs (seed %d, parallel %d)\n",
		len(selected), time.Since(start).Seconds(), *seed, *parallel)
}
