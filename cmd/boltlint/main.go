// Command boltlint runs the repository's determinism, RNG, and hot-path
// analyzers over the given packages and exits non-zero on any diagnostic.
//
// Usage:
//
//	go run ./cmd/boltlint ./...
//	go run ./cmd/boltlint -analyzers detrand,hotalloc ./internal/sim
//
// Suppress a finding with //bolt:nolint <analyzer> -- <reason> (the reason
// is mandatory); see internal/lint and the "Determinism contract" section
// of DESIGN.md for the contracts each analyzer enforces.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"bolt/internal/lint"
)

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: boltlint [-analyzers a,b] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.All()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, n := range strings.Split(*names, ",") {
			a := lint.ByName(strings.TrimSpace(n))
			if a == nil {
				fmt.Fprintf(os.Stderr, "boltlint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boltlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "boltlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
