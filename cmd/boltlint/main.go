// Command boltlint runs the repository's determinism, RNG, hot-path, and
// concurrency-contract analyzers over the given packages and exits non-zero
// on any diagnostic.
//
// Usage:
//
//	go run ./cmd/boltlint ./...
//	go run ./cmd/boltlint -analyzers detrand,hotalloc ./internal/sim
//	go run ./cmd/boltlint -json ./... | jq .
//
// Exit codes: 0 when the packages are clean, 1 when diagnostics were
// reported, 2 on usage or load errors (unknown analyzer, packages that do
// not build). CI keys on this split: 1 means "the code violates a
// contract", 2 means "the lint run itself is broken". To observe the
// split, invoke a built binary — `go run` collapses every non-zero child
// exit to 1.
//
// With -json the diagnostics are written to stdout as one JSON array of
// {file, line, col, analyzer, message} objects (an empty array when clean)
// for machine consumption — the CI job turns them into GitHub annotations.
// The human-readable summary still goes to stderr.
//
// Suppress a finding with //bolt:nolint <analyzer> -- <reason> (the reason
// is mandatory; a suppression that stops matching any diagnostic is itself
// reported as stale); see internal/lint and the "Determinism contract"
// section of DESIGN.md for the contracts each analyzer enforces.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"bolt/internal/lint"
)

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	names := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	asJSON := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout")
	cacheDir := flag.String("summary-cache", "", "summary cache directory ('off' disables; default: user cache dir)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: boltlint [-analyzers a,b] [-json] [packages]\n\nanalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-20s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	switch *cacheDir {
	case "":
		// keep the default
	case "off":
		lint.SetSummaryCacheDir("")
	default:
		lint.SetSummaryCacheDir(*cacheDir)
	}

	analyzers := lint.All()
	if *names != "" {
		analyzers = analyzers[:0]
		for _, n := range strings.Split(*names, ",") {
			a := lint.ByName(strings.TrimSpace(n))
			if a == nil {
				fmt.Fprintf(os.Stderr, "boltlint: unknown analyzer %q\n", n)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	pkgs, err := lint.Load(".", flag.Args()...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boltlint: %v\n", err)
		os.Exit(2)
	}

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Position.Filename,
				Line:     d.Position.Line,
				Col:      d.Position.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "boltlint: encoding: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "boltlint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
