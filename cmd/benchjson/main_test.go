package main

import (
	"strings"
	"testing"
)

func TestParseLineStandard(t *testing.T) {
	r, ok := parseLine("BenchmarkSimTick-8   20000   1513 ns/op   24 B/op   3 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkSimTick" {
		t.Fatalf("name = %q, want cpu suffix stripped", r.Name)
	}
	if r.Iterations != 20000 || r.NsPerOp != 1513 || r.BytesPerOp != 24 || r.AllocsPerOp != 3 {
		t.Fatalf("parsed %+v", r)
	}
	if len(r.Metrics) != 0 {
		t.Fatalf("standard units leaked into metrics: %v", r.Metrics)
	}
}

func TestParseLineCustomMetrics(t *testing.T) {
	r, ok := parseLine("BenchmarkBoltload/inproc/w2/b64/c16\t 1048576\t    1180 ns/op\t  846000 qps\t    41.0 p50-us\t    55.5 p90-us\t    79.8 p99-us\t   302.2 max-us\t    12 shed")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkBoltload/inproc/w2/b64/c16" {
		t.Fatalf("name = %q", r.Name)
	}
	if r.Iterations != 1048576 || r.NsPerOp != 1180 {
		t.Fatalf("parsed %+v", r)
	}
	want := map[string]float64{
		"qps": 846000, "p50-us": 41.0, "p90-us": 55.5,
		"p99-us": 79.8, "max-us": 302.2, "shed": 12,
	}
	if len(r.Metrics) != len(want) {
		t.Fatalf("metrics = %v, want %v", r.Metrics, want)
	}
	for k, v := range want {
		if r.Metrics[k] != v {
			t.Fatalf("metrics[%q] = %v, want %v", k, r.Metrics[k], v)
		}
	}
}

func TestParseLineSubBenchmarkKeepsSlashes(t *testing.T) {
	// Only a trailing -N (the GOMAXPROCS suffix) is stripped; a -N inside a
	// sub-benchmark path is part of the name.
	r, ok := parseLine("BenchmarkDetectBatch/size-16-8  100  34000 ns/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if r.Name != "BenchmarkDetectBatch/size-16" {
		t.Fatalf("name = %q, want BenchmarkDetectBatch/size-16", r.Name)
	}
}

func TestParseLineRejectsMalformed(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",                  // too few fields
		"BenchmarkX abc 1 ns/op junk", // non-numeric iterations
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("malformed line %q parsed", line)
		}
	}
	// A non-numeric custom metric value is skipped, not fatal.
	r, ok := parseLine("BenchmarkX 10 5 ns/op abc qps 7 shed")
	if !ok || len(r.Metrics) != 1 || r.Metrics["shed"] != 7 {
		t.Fatalf("parsed %+v ok=%v, want shed=7 only", r, ok)
	}
}

func TestParseReport(t *testing.T) {
	out := strings.NewReader(strings.Join([]string{
		"goos: linux",
		"goarch: amd64",
		"pkg: bolt/cmd/boltload",
		"cpu: Imaginary CPU @ 2.0GHz",
		"BenchmarkBoltload/inproc/w1/b1/c4\t2000\t43184 ns/op\t23157 qps",
		"BenchmarkBoltload/inproc/w1/b64/c4\t2000\t40605 ns/op\t24628 qps",
		"PASS",
	}, "\n"))
	rep := parseReport(out)
	if rep.GoOS != "linux" || rep.GoArch != "amd64" || rep.CPU != "Imaginary CPU @ 2.0GHz" {
		t.Fatalf("headers: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	if rep.Benchmarks[1].Metrics["qps"] != 24628 {
		t.Fatalf("benchmarks[1] = %+v", rep.Benchmarks[1])
	}
}

func TestMergeReportsReplacesAndPreserves(t *testing.T) {
	old := Report{
		Bench:     "BenchmarkA|BenchmarkB",
		BenchTime: "200x",
		Benchmarks: []Result{
			{Name: "BenchmarkA", NsPerOp: 1},
			{Name: "BenchmarkB", NsPerOp: 2, Metrics: map[string]float64{"qps": 5}},
		},
	}
	fresh := Report{
		Bench:      "BenchmarkB",
		BenchTime:  "3x",
		Benchmarks: []Result{{Name: "BenchmarkB", NsPerOp: 9}},
	}
	merged, err := mergeReports(old, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Benchmarks) != 2 {
		t.Fatalf("merged %d benchmarks, want 2", len(merged.Benchmarks))
	}
	if merged.Benchmarks[0].Name != "BenchmarkA" || merged.Benchmarks[1].NsPerOp != 9 {
		t.Fatalf("merged = %+v", merged.Benchmarks)
	}
	if merged.Bench != "BenchmarkA|BenchmarkB|BenchmarkB" || merged.BenchTime != "200x,3x" {
		t.Fatalf("labels: bench=%q benchtime=%q", merged.Bench, merged.BenchTime)
	}
}

func TestMergeReportsRejectsDuplicates(t *testing.T) {
	old := Report{Benchmarks: []Result{
		{Name: "BenchmarkA"}, {Name: "BenchmarkA"},
	}}
	fresh := Report{Benchmarks: []Result{{Name: "BenchmarkB"}}}
	if _, err := mergeReports(old, fresh); err == nil {
		t.Fatal("a pre-existing duplicate survived the merge")
	}
}

func TestFirstDuplicate(t *testing.T) {
	if d := firstDuplicate([]Result{{Name: "A"}, {Name: "B"}}); d != "" {
		t.Fatalf("false duplicate %q", d)
	}
	if d := firstDuplicate([]Result{{Name: "A"}, {Name: "B"}, {Name: "A"}}); d != "A" {
		t.Fatalf("duplicate = %q, want A", d)
	}
}
