// Command benchjson runs the repository's Go benchmarks and writes the
// results as machine-readable JSON, so CI can archive the performance
// trajectory (ns/op, B/op, allocs/op) per benchmark from PR to PR.
//
// Usage:
//
//	benchjson [-bench regex] [-benchtime 2x] [-pkg ./...] [-out BENCH_hotpath.json] [-append]
//
// -append merges the new results into an existing -out file (replacing
// same-name benchmarks), so microbenchmarks can be recorded at a stable
// iteration count and the slow suite benchmarks at a small one. A
// benchmark name appearing twice — within one run, or surviving a merge —
// is an error: the recorded trajectory keys on names.
//
// It shells out to `go test -run ^$ -bench <regex> -benchmem` and parses
// the standard benchmark output lines, e.g.
//
//	BenchmarkSimTick   20000   1513 ns/op   0 B/op   0 allocs/op
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line. BenchTime records the -benchtime
// the result was collected at, since an appended report may mix runs
// (e.g. microbenchmarks at a stable iteration count, the full suite at a
// small one).
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"b_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BenchTime   string  `json:"benchtime,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoOS        string   `json:"goos,omitempty"`
	GoArch      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Bench       string   `json:"bench"`
	BenchTime   string   `json:"benchtime"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", "BenchmarkSimTick|BenchmarkEpisodeStep|BenchmarkSuite", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "2x", "value passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package pattern passed to go test")
	out := flag.String("out", "BENCH_hotpath.json", "output JSON path")
	timeout := flag.String("timeout", "30m", "value passed to go test -timeout")
	appendOut := flag.Bool("append", false,
		"merge results into an existing -out file instead of replacing it (same-name benchmarks are overwritten)")
	flag.Parse()

	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", *bench, "-benchmem", "-benchtime", *benchtime,
		"-timeout", *timeout, *pkg)
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go test failed: %v\n%s", err, buf.String())
		os.Exit(1)
	}

	report := Report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		Bench:       *bench,
		BenchTime:   *benchtime,
	}
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseLine(line); ok {
				r.BenchTime = *benchtime
				report.Benchmarks = append(report.Benchmarks, r)
			}
		}
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines matched")
		os.Exit(1)
	}
	// One run must yield one result per name: a duplicate means the regex
	// matched the same benchmark in several packages (or -count > 1), and
	// silently keeping both would make the recorded trajectory ambiguous —
	// and -append's same-name replacement nondeterministic.
	if dup := firstDuplicate(report.Benchmarks); dup != "" {
		fmt.Fprintf(os.Stderr, "benchjson: benchmark %q appears more than once in this run; narrow -bench or -pkg so each name is unique\n", dup)
		os.Exit(1)
	}

	if *appendOut {
		if prev, err := os.ReadFile(*out); err == nil {
			var old Report
			if err := json.Unmarshal(prev, &old); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -append: parsing existing %s: %v\n", *out, err)
				os.Exit(1)
			}
			fresh := make(map[string]bool, len(report.Benchmarks))
			for _, r := range report.Benchmarks {
				fresh[r.Name] = true
			}
			merged := make([]Result, 0, len(old.Benchmarks)+len(report.Benchmarks))
			for _, r := range old.Benchmarks {
				if !fresh[r.Name] {
					merged = append(merged, r)
				}
			}
			report.Benchmarks = append(merged, report.Benchmarks...)
			report.Bench = old.Bench + "|" + *bench
			report.BenchTime = old.BenchTime + "," + *benchtime
			// Guard the merged set too: an existing file written before
			// duplicates were rejected may already carry one.
			if dup := firstDuplicate(report.Benchmarks); dup != "" {
				fmt.Fprintf(os.Stderr, "benchjson: -append: benchmark %q would appear more than once in %s; regenerate the file without -append\n", dup, *out)
				os.Exit(1)
			}
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// firstDuplicate returns the first benchmark name that appears more than
// once, or "".
func firstDuplicate(results []Result) string {
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		if seen[r.Name] {
			return r.Name
		}
		seen[r.Name] = true
	}
	return ""
}

// parseLine parses one `BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op`
// line. The -cpu suffix is kept out of the name so results are comparable
// across machines.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		}
	}
	return r, true
}
