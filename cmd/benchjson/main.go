// Command benchjson runs the repository's Go benchmarks — or any command
// that emits Go-benchmark-format lines — and writes the results as
// machine-readable JSON, so CI can archive the performance trajectory
// (ns/op, B/op, allocs/op, and custom metrics) per benchmark from PR to PR.
//
// Usage:
//
//	benchjson [-bench regex] [-benchtime 2x] [-pkg ./...] [-out BENCH_hotpath.json] [-append]
//	benchjson -exec [-out BENCH_serve.json] [-append] -- command [args...]
//
// -append merges the new results into an existing -out file (replacing
// same-name benchmarks), so microbenchmarks can be recorded at a stable
// iteration count and the slow suite benchmarks at a small one. A
// benchmark name appearing twice — within one run, or surviving a merge —
// is an error: the recorded trajectory keys on names.
//
// By default it shells out to `go test -run ^$ -bench <regex> -benchmem`
// and parses the standard benchmark output lines, e.g.
//
//	BenchmarkSimTick   20000   1513 ns/op   0 B/op   0 allocs/op
//
// With -exec it instead runs the command after "--" and parses its stdout
// the same way. Value/unit pairs beyond the three standard ones — whether
// from testing.B.ReportMetric or from a driver like cmd/boltload — are
// captured into each result's "metrics" map keyed by unit, e.g.
//
//	BenchmarkBoltload/inproc/w2/b64/c16  1048576  1180 ns/op  846000 qps  41.0 p50-us
//
// yields metrics {"qps": 846000, "p50-us": 41.0}.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line. BenchTime records the -benchtime
// the result was collected at, since an appended report may mix runs
// (e.g. microbenchmarks at a stable iteration count, the full suite at a
// small one); -exec results carry no benchtime. Metrics holds every
// value/unit pair beyond the three standard ones, keyed by unit.
type Result struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BytesPerOp  int64              `json:"b_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
	BenchTime   string             `json:"benchtime,omitempty"`
}

// Report is the file benchjson writes.
type Report struct {
	GeneratedAt string   `json:"generated_at"`
	GoOS        string   `json:"goos,omitempty"`
	GoArch      string   `json:"goarch,omitempty"`
	CPU         string   `json:"cpu,omitempty"`
	Bench       string   `json:"bench"`
	BenchTime   string   `json:"benchtime,omitempty"`
	Benchmarks  []Result `json:"benchmarks"`
}

func main() {
	bench := flag.String("bench", "BenchmarkSimTick|BenchmarkEpisodeStep|BenchmarkSuite", "benchmark regex passed to go test -bench")
	benchtime := flag.String("benchtime", "2x", "value passed to go test -benchtime")
	pkg := flag.String("pkg", ".", "package pattern passed to go test")
	out := flag.String("out", "BENCH_hotpath.json", "output JSON path")
	timeout := flag.String("timeout", "30m", "value passed to go test -timeout")
	execMode := flag.Bool("exec", false,
		"run the command after -- instead of go test, parsing its stdout as benchmark lines")
	appendOut := flag.Bool("append", false,
		"merge results into an existing -out file instead of replacing it (same-name benchmarks are overwritten)")
	flag.Parse()

	var cmd *exec.Cmd
	var benchLabel, benchTime string
	if *execMode {
		args := flag.Args()
		if len(args) == 0 {
			fmt.Fprintln(os.Stderr, "benchjson: -exec needs a command after --")
			os.Exit(2)
		}
		cmd = exec.Command(args[0], args[1:]...)
		benchLabel = strings.Join(args, " ")
	} else {
		cmd = exec.Command("go", "test", "-run", "^$",
			"-bench", *bench, "-benchmem", "-benchtime", *benchtime,
			"-timeout", *timeout, *pkg)
		benchLabel, benchTime = *bench, *benchtime
	}
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s failed: %v\n%s", cmd.Path, err, buf.String())
		os.Exit(1)
	}

	report := parseReport(&buf)
	report.GeneratedAt = time.Now().UTC().Format(time.RFC3339)
	report.Bench = benchLabel
	report.BenchTime = benchTime
	for i := range report.Benchmarks {
		report.Benchmarks[i].BenchTime = benchTime
	}
	if len(report.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines matched")
		os.Exit(1)
	}
	// One run must yield one result per name: a duplicate means the regex
	// matched the same benchmark in several packages (or -count > 1), and
	// silently keeping both would make the recorded trajectory ambiguous —
	// and -append's same-name replacement nondeterministic.
	if dup := firstDuplicate(report.Benchmarks); dup != "" {
		fmt.Fprintf(os.Stderr, "benchjson: benchmark %q appears more than once in this run; narrow -bench or -pkg so each name is unique\n", dup)
		os.Exit(1)
	}

	if *appendOut {
		if prev, err := os.ReadFile(*out); err == nil {
			var old Report
			if err := json.Unmarshal(prev, &old); err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -append: parsing existing %s: %v\n", *out, err)
				os.Exit(1)
			}
			merged, err := mergeReports(old, report)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: -append: %v; regenerate %s without -append\n", err, *out)
				os.Exit(1)
			}
			report = merged
		}
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(report.Benchmarks), *out)
}

// parseReport scans benchmark-format output: goos/goarch/cpu headers and
// Benchmark lines. GeneratedAt, Bench and BenchTime are the caller's to
// fill.
func parseReport(r io.Reader) Report {
	var report Report
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			report.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			report.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			report.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if res, ok := parseLine(line); ok {
				report.Benchmarks = append(report.Benchmarks, res)
			}
		}
	}
	return report
}

// mergeReports merges fresh into old, -append style: fresh results replace
// same-name old ones, everything else survives, and the merged set must
// still be duplicate-free (an existing file written before duplicates were
// rejected may already carry one).
func mergeReports(old, fresh Report) (Report, error) {
	names := make(map[string]bool, len(fresh.Benchmarks))
	for _, r := range fresh.Benchmarks {
		names[r.Name] = true
	}
	merged := make([]Result, 0, len(old.Benchmarks)+len(fresh.Benchmarks))
	for _, r := range old.Benchmarks {
		if !names[r.Name] {
			merged = append(merged, r)
		}
	}
	fresh.Benchmarks = append(merged, fresh.Benchmarks...)
	fresh.Bench = old.Bench + "|" + fresh.Bench
	if old.BenchTime != "" || fresh.BenchTime != "" {
		fresh.BenchTime = old.BenchTime + "," + fresh.BenchTime
	}
	if dup := firstDuplicate(fresh.Benchmarks); dup != "" {
		return Report{}, fmt.Errorf("benchmark %q would appear more than once", dup)
	}
	return fresh, nil
}

// firstDuplicate returns the first benchmark name that appears more than
// once, or "".
func firstDuplicate(results []Result) string {
	seen := make(map[string]bool, len(results))
	for _, r := range results {
		if seen[r.Name] {
			return r.Name
		}
		seen[r.Name] = true
	}
	return ""
}

// parseLine parses one `BenchmarkName-N  iters  X ns/op  Y B/op  Z allocs/op`
// line. The -cpu suffix is kept out of the name so results are comparable
// across machines. Value/unit pairs beyond the three standard ones are
// collected into Metrics keyed by unit; a unit appearing twice keeps the
// last value, matching how `go test` itself reports repeated ReportMetric
// calls.
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		val, unit := fields[i], fields[i+1]
		switch unit {
		case "ns/op":
			r.NsPerOp, _ = strconv.ParseFloat(val, 64)
		case "B/op":
			r.BytesPerOp, _ = strconv.ParseInt(val, 10, 64)
		case "allocs/op":
			r.AllocsPerOp, _ = strconv.ParseInt(val, 10, 64)
		default:
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				continue
			}
			if r.Metrics == nil {
				r.Metrics = make(map[string]float64)
			}
			r.Metrics[unit] = v
		}
	}
	return r, true
}
