// Command boltstudy runs the synthetic counterpart of the paper's EC2 user
// study (§4): it generates the 436-job, 20-user, 200-instance study,
// places the jobs, runs Bolt on every instance, and prints the Fig. 11
// occurrence PDF and the Fig. 12 detection-accuracy summary.
//
// Usage:
//
//	boltstudy [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"bolt/internal/exper"
)

func main() {
	seed := flag.Uint64("seed", 42, "study seed")
	flag.Parse()

	for _, id := range []string{"fig11", "fig12"} {
		e, ok := exper.ByID(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "boltstudy: experiment %s not registered\n", id)
			os.Exit(1)
		}
		e.Run(*seed).Render(os.Stdout)
	}
}
