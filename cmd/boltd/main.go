// Command boltd runs the detection service as a long-lived daemon: it
// trains a detector, then answers newline-delimited JSON detection queries
// over TCP (see internal/serve's wire protocol), batching concurrent
// requests into fused DetectBatch passes and answering from an immutable
// RCU-style detector snapshot.
//
// Usage:
//
//	boltd [-addr host:port] [-seed N] [-workers N] [-batch N] [-queue N]
//	      [-linger dur] [-faultrate R] [-faultseed N] [-retrain dur]
//
// -workers, -batch, -queue and -linger are the serving-plane knobs
// (internal/serve.Config); -faultrate enables the request-level fault plane
// on live traffic, drawing from -faultseed. With -retrain > 0 the daemon
// periodically retrains in the background on a reseeded training set and
// swaps the new detector in atomically — in-flight batches finish on the
// snapshot they loaded, the next batch sees the new generation. SIGINT or
// SIGTERM stops accepting connections, drains the queue, and prints the
// serving counters to stderr.
package main

import (
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bolt/internal/core"
	"bolt/internal/fault"
	"bolt/internal/serve"
	"bolt/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "127.0.0.1:9412", "listen address")
	seed := flag.Uint64("seed", 42, "training-set seed for the initial detector")
	workers := flag.Int("workers", 1, "batch workers pulling from the shared queue")
	batch := flag.Int("batch", 64, "max requests fused into one DetectBatch pass")
	queue := flag.Int("queue", 0, "request queue depth (0 = 4x batch); a full queue sheds with ErrBusy")
	linger := flag.Duration("linger", 0, "how long a non-full batch waits for stragglers")
	faultrate := flag.Float64("faultrate", 0, "request-level fault intensity in [0,1] (0 = no injection)")
	faultseed := flag.Uint64("faultseed", 1, "fault-plane RNG seed")
	retrain := flag.Duration("retrain", 0, "background retrain+swap period (0 = never)")
	flag.Parse()

	fmt.Fprintf(os.Stderr, "boltd: training detector (seed %d)...\n", *seed)
	//bolt:nolint detrand -- startup diagnostic only: the duration goes to stderr and never influences an answer
	t0 := time.Now()
	det := core.TrainCached(workload.TrainingSpecs(*seed), core.Config{})
	//bolt:nolint detrand -- startup diagnostic only: the duration goes to stderr and never influences an answer
	fmt.Fprintf(os.Stderr, "boltd: trained in %v\n", time.Since(t0).Round(time.Millisecond))

	srv := serve.New(det, serve.Config{
		Workers:    *workers,
		MaxBatch:   *batch,
		QueueDepth: *queue,
		Linger:     *linger,
		Fault:      fault.Config{Rate: *faultrate},
		FaultSeed:  *faultseed,
	})

	l, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "boltd: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "boltd: serving on %s (workers=%d batch=%d linger=%v)\n",
		l.Addr(), *workers, *batch, *linger)

	// Background retrain loop: train off the serving path, swap atomically.
	// Each generation reseeds the training set so the swap is observable.
	stopRetrain := make(chan struct{})
	retrainDone := make(chan struct{})
	go func() {
		defer close(retrainDone)
		if *retrain <= 0 {
			return
		}
		ticker := time.NewTicker(*retrain)
		defer ticker.Stop()
		for gen := uint64(1); ; gen++ {
			select {
			case <-stopRetrain:
				return
			case <-ticker.C:
			}
			next := core.TrainCached(workload.TrainingSpecs(*seed+gen), core.Config{})
			v := srv.Swap(next)
			fmt.Fprintf(os.Stderr, "boltd: swapped in snapshot %d (training seed %d)\n", v, *seed+gen)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve.ServeListener(l, srv) }()

	code := 0
	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "boltd: %v, draining\n", s)
		l.Close()
		<-serveErr
	case err := <-serveErr:
		if err != nil && !errors.Is(err, net.ErrClosed) {
			fmt.Fprintf(os.Stderr, "boltd: accept: %v\n", err)
			code = 1
		}
	}
	close(stopRetrain)
	<-retrainDone
	srv.Close()

	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"boltd: served=%d shed=%d rejected=%d batches=%d maxbatch=%d dropped=%d corrupted=%d swaps=%d\n",
		st.Served, st.Shed, st.Rejected, st.Batches, st.MaxBatch, st.Dropped, st.Corrupted, st.Swaps)
	return code
}
