// User-study demo: a miniature version of the §4 EC2 study.
//
// Five users submit 60 jobs of the 53 application types onto 20 instances.
// Bolt holds a 4-vCPU VM on each instance and is never told what the users
// launched. The demo prints, per job, whether Bolt labelled it, merely
// characterised its resource profile, or missed it — and why the misses
// concentrate on never-seen types and crowded instances.
//
//	go run ./examples/user-study
package main

import (
	"fmt"
	"log"
	"sort"

	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/study"
	"bolt/internal/workload"
)

func main() {
	rng := stats.NewRNG(31)
	detector := core.Train(workload.TrainingSpecs(31), core.Config{})

	s := study.Generate(study.Config{
		Seed: 31, Users: 5, Jobs: 60, Instances: 20, Span: 40_000,
	})
	fmt.Printf("study: %d jobs from %d users over %d instances (%d of a trainable type)\n\n",
		len(s.Jobs), s.Config.Users, s.Config.Instances, s.TrainableJobs())

	cl := cluster.New(s.Config.Instances, sim.ServerConfig{Cores: 16, ThreadsPerCore: 2},
		cluster.LeastLoaded{})
	advs := map[string]*probe.Adversary{}
	for _, srv := range cl.Servers {
		adv := probe.NewAdversary("bolt-"+srv.Name(), 4, probe.Config{}, rng.Split())
		if err := srv.Place(adv.VM); err != nil {
			log.Fatal(err)
		}
		advs[srv.Name()] = adv
	}

	type placed struct {
		job  study.Job
		host *sim.Server
	}
	var jobs []placed
	for i, j := range s.Jobs {
		app := workload.NewApp(j.Spec, j.Pattern, rng.Uint64())
		app.Start = j.Start
		vm := &sim.VM{ID: fmt.Sprintf("job-%02d", i), VCPUs: j.VCPUs, App: app}
		host, err := cl.Place(vm, j.Start)
		if err != nil {
			continue
		}
		jobs = append(jobs, placed{j, host})
	}
	sort.SliceStable(jobs, func(a, b int) bool { return jobs[a].job.Start < jobs[b].job.Start })

	labelled, characterised := 0, 0
	for _, p := range jobs {
		mid := p.job.Start + p.job.Duration/2
		det := detector.Detect(p.host, advs[p.host.Name()], mid, 3)

		status := "missed"
		for _, cand := range det.CoResidents {
			if core.LabelMatches(cand.Best().Label, p.job.Spec.Label) ||
				(p.job.Type.Trainable && core.ClassMatches(cand.Best().Label, p.job.Spec.Class)) {
				status = "LABELLED"
				break
			}
			if core.CharacteristicsMatch(cand.Pressure, p.job.Spec.Base) {
				status = "characterised"
			}
		}
		switch status {
		case "LABELLED":
			labelled++
			characterised++
		case "characterised":
			characterised++
		}
		trainTag := " "
		if !p.job.Type.Trainable {
			trainTag = "*" // type absent from Bolt's training set
		}
		fmt.Printf("user %d  %-22s%s on %-9s -> %s\n",
			p.job.User+1, p.job.Spec.Label, trainTag, p.host.Name(), status)
	}

	fmt.Printf("\nlabelled %d/%d, characterised %d/%d  (* = type never seen in training: can be characterised, never labelled)\n",
		labelled, len(jobs), characterised, len(jobs))
}
