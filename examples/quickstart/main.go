// Quickstart: the smallest end-to-end Bolt run.
//
// One simulated host, one victim (a memcached instance), and one
// adversarial VM. Bolt trains on the 120-application training set,
// profiles the host with tunable microbenchmarks, completes the sparse
// signal with the hybrid recommender, and names the co-resident.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"bolt/internal/core"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func main() {
	rng := stats.NewRNG(7)

	// 1. Train Bolt on previously seen workloads.
	detector := core.Train(workload.TrainingSpecs(7), core.Config{})

	// 2. A victim the adversary knows nothing about: a read-mostly
	//    memcached instance on a 8-core / 16-hyperthread host.
	host := sim.NewServer("host-0", sim.ServerConfig{})
	victimSpec := workload.Memcached(rng.Split(), 3)
	victimApp := workload.NewApp(victimSpec, workload.Constant{Level: 0.9}, rng.Uint64())
	victim := &sim.VM{ID: "victim", VCPUs: 5, App: victimApp}
	if err := host.Place(victim); err != nil {
		log.Fatal(err)
	}

	// 3. The adversary lands on the same host (4 vCPUs, the paper's
	//    sweet spot) and runs detection.
	adversary := probe.NewAdversary("bolt", 4, probe.Config{}, rng.Split())
	if err := host.Place(adversary.VM); err != nil {
		log.Fatal(err)
	}

	detection := detector.Detect(host, adversary, 0, 1)

	// 4. What Bolt learned.
	fmt.Printf("victim truth:      %s\n", victimSpec.Label)
	fmt.Printf("detected as:       %s (similarity %.2f)\n",
		detection.Result.Best().Label, detection.Result.Best().Similarity)
	fmt.Printf("profiling cost:    %d iteration(s), %.1f simulated seconds\n",
		detection.Iterations, detection.Ticks.Seconds())
	fmt.Printf("core shared:       %v\n", detection.CoreShared)

	pressure := sim.FromSlice(detection.Result.Pressure)
	fmt.Printf("critical resources: %v (truth: %v)\n",
		pressure.TopK(2), victimSpec.Base.TopK(2))

	if core.LabelMatches(detection.Result.Best().Label, victimSpec.Label) {
		fmt.Println("=> detection CORRECT under the paper's §3.4 rule")
	} else {
		fmt.Println("=> detection incorrect under the paper's §3.4 rule")
	}
}
