// DoS attack demo: the §5.1 internal denial-of-service attack, end to end.
//
// A memcached victim runs on a two-host cluster with a live-migration
// defence (utilisation > 70% sustained ⇒ migrate). Two attacks run side by
// side:
//
//   - Bolt's detection-guided attack stresses only the victim's two most
//     critical resources, keeping CPU far below the defence trigger;
//   - a naive attack saturates the CPU — effective at first, until the
//     defence migrates the victim away and latency recovers.
//
// The timeline shows the paper's Fig. 13 dynamic.
//
//	go run ./examples/dos-attack
package main

import (
	"fmt"
	"log"

	"bolt/internal/attack"
	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/latency"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func run(naive bool, detector *core.Detector, rng *stats.RNG) {
	cl := cluster.New(2, sim.ServerConfig{}, cluster.LeastLoaded{})
	spec := workload.Memcached(rng.Split(), 1)
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
	victim := &sim.VM{ID: "victim", VCPUs: 3, App: app}
	home, err := cl.Place(victim, 0)
	if err != nil {
		log.Fatal(err)
	}
	adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
	if err := home.Place(adv.VM); err != nil {
		log.Fatal(err)
	}
	svc := &latency.Service{VM: victim, Pattern: workload.Constant{Level: 0.9}}
	policy := cluster.DefaultMigrationPolicy()

	name := "Bolt (targeted)"
	if naive {
		name = "naive (CPU-saturating)"
	}
	fmt.Printf("\n=== %s attack ===\n", name)
	fmt.Printf("%6s  %12s  %8s  %s\n", "t (s)", "p99 (ms)", "CPU (%)", "event")

	var plan attack.DoSPlan
	var overloadSince sim.Tick = -1
	migrated := false
	for sec := 0; sec <= 120; sec += 10 {
		t := sim.Tick(sec * sim.TicksPerSecond)
		event := ""
		if sec == 10 {
			d := detector.Detect(home, adv, t, 1)
			if naive {
				plan = attack.NaiveDoSPlan()
			} else {
				plan = attack.PlanDoS(d, 2)
			}
			event = fmt.Sprintf("detected %s; plan targets %v",
				d.Result.Best().Label, plan.Targets)
		}
		if sec == 20 {
			attack.Launch(adv, plan)
			event = "attack launched"
		}
		cur := cl.HostOf("victim")
		s := svc.Measure(cur, t)
		cpu := cur.CPUUtilization(t)
		if sec >= 20 && !migrated && cur == home {
			if policy.ShouldMigrate(home, t) {
				if overloadSince < 0 {
					overloadSince = t
				}
				if t-overloadSince >= 60*sim.TicksPerSecond {
					if _, err := cl.Migrate("victim", t); err == nil {
						migrated = true
						event = "defence migrated the victim"
					}
				}
			} else {
				overloadSince = -1
			}
		}
		fmt.Printf("%6d  %12.2f  %8.1f  %s\n", sec, s.P99Ms, cpu, event)
	}
}

func main() {
	rng := stats.NewRNG(11)
	detector := core.Train(workload.TrainingSpecs(11), core.Config{})
	run(false, detector, rng)
	run(true, detector, rng)
	fmt.Println("\nBolt's attack never trips the 70% trigger; the naive attack does and loses its victim.")
}
