// Co-residency detection demo: the §5.3 attack that pinpoints where a
// specific victim service lives in a shared cluster.
//
// A 40-host cluster runs one target SQL server, seven decoy SQL servers,
// and a mixed population of key-value stores and analytics. The adversary
// launches ten 4-vCPU sender VMs simultaneously, detects the workload type
// on each sampled host, prunes to the SQL candidates, and confirms the
// target with a sender/receiver probe: the sender stresses the victim's
// sensitive resources while an external receiver pings the service over
// its public endpoint.
//
//	go run ./examples/coresidency
package main

import (
	"fmt"
	"log"

	"bolt/internal/attack"
	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/latency"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func main() {
	rng := stats.NewRNG(23)
	detector := core.Train(workload.TrainingSpecs(23), core.Config{})
	cl := cluster.New(40, sim.ServerConfig{}, cluster.LeastLoaded{})

	// The target: one SQL server whose public endpoint the receiver can
	// query.
	services := map[string]*latency.Service{}
	targetSpec := workload.SQLDatabase(rng.Split(), 0)
	targetSpec.Jitter = 0
	targetApp := workload.NewApp(targetSpec, workload.Constant{Level: 0.9}, rng.Uint64())
	target := &sim.VM{ID: "target-sql", VCPUs: 4, App: targetApp}
	home, err := cl.Place(target, 0)
	if err != nil {
		log.Fatal(err)
	}
	services[home.Name()] = &latency.Service{
		VM: target, Pattern: workload.Constant{Level: 0.9}, BaseServiceMs: 8,
	}
	fmt.Printf("target %s placed on %s (hidden from the adversary)\n",
		targetSpec.Label, home.Name())

	// Decoys and background population.
	for i := 0; i < 7; i++ {
		spec := workload.SQLDatabase(rng.Split(), i)
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
		if _, err := cl.Place(&sim.VM{ID: fmt.Sprintf("sql-decoy-%d", i), VCPUs: 4, App: app}, 0); err != nil {
			log.Fatal(err)
		}
	}
	fillers := []func(*stats.RNG, int) workload.Spec{
		workload.Memcached, workload.Hadoop, workload.Spark,
	}
	for i := 0; i < 24; i++ {
		spec := fillers[i%len(fillers)](rng.Split(), i)
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
		if _, err := cl.Place(&sim.VM{ID: fmt.Sprintf("bg-%d", i), VCPUs: 4, App: app}, 0); err != nil {
			log.Fatal(err)
		}
	}

	atk := &attack.CoResidency{
		Detector: detector,
		Cluster:  cl,
		RNG:      rng.Split(),
		Receiver: func(h *sim.Server) *latency.Service { return services[h.Name()] },
	}

	fmt.Printf("analytic P(f) for one 10-sender launch: %.2f\n",
		attack.PlacementProbability(40, 1, 10))

	for launch := 1; launch <= 8; launch++ {
		res := atk.Run(attack.CoResidencyConfig{
			Senders:     10,
			TargetClass: targetSpec.Class,
		}, 1, sim.Tick(launch*20000))
		fmt.Printf("launch %d: %d %s candidate(s) in sample, found=%v\n",
			launch, res.Candidates, targetSpec.Class, res.Found)
		if res.Found {
			fmt.Printf("=> victim located on %s (true host %s) — confirmation latency %.1fx, %.1fs, %d adversary VMs\n",
				res.Host, home.Name(), res.LatencyRatio, res.Ticks.Seconds(), res.SendersUsed+1)
			return
		}
	}
	fmt.Println("=> victim not located (unlucky placements); rerun with a different seed")
}
