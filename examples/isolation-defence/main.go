// Isolation-defence demo: the defender's view of §6.
//
// The same victim population runs under progressively stricter isolation —
// thread pinning, network/memory-bandwidth partitioning, cache
// partitioning, and finally core isolation — and Bolt attacks each
// configuration. The demo prints detection accuracy next to what the
// configuration costs (performance or utilisation), ending at the paper's
// uncomfortable conclusion: the only setting that (mostly) blinds Bolt
// sacrifices a third of performance or half the utilisation.
//
//	go run ./examples/isolation-defence
package main

import (
	"fmt"

	"bolt/internal/exper"
	"bolt/internal/isolation"
)

func main() {
	const seed = 17
	fmt.Println("defending a container platform against Bolt (smaller-scale controlled run):")
	fmt.Printf("%-28s  %9s  %12s  %s\n", "isolation configuration", "accuracy", "perf penalty", "utilisation cost")

	labels := isolation.StackLabels()
	for step, cfg := range isolation.Stack(isolation.Containers) {
		res := exper.RunControlled(exper.ControlledConfig{
			Seed:      seed,
			Servers:   12,
			Victims:   32,
			ServerCfg: cfg.ServerConfig(8, 2),
		})
		perf := "-"
		util := "-"
		if p := cfg.PerfPenalty(); p > 1 {
			perf = fmt.Sprintf("+%.0f%%", (p-1)*100)
		}
		if u := cfg.UtilizationPenalty(); u > 0 {
			util = fmt.Sprintf("-%.0f%% (over-provisioned)", u*100)
		}
		fmt.Printf("%-28s  %8.0f%%  %12s  %s\n", labels[step], res.Accuracy(), perf, util)
	}

	coreOnly := exper.RunControlled(exper.ControlledConfig{
		Seed:      seed,
		Servers:   12,
		Victims:   32,
		ServerCfg: isolation.CoreIsolationOnly(isolation.Containers).ServerConfig(8, 2),
	})
	fmt.Printf("%-28s  %8.0f%%  %12s  %s\n",
		"core isolation ALONE", coreOnly.Accuracy(), "+34%", "(uncore still leaks)")

	fmt.Println("\nconclusion (§6): software partitioning helps but cannot finish the job;")
	fmt.Println("only core isolation cuts deep, and it trades a 34% slowdown or a 45%")
	fmt.Println("utilisation drop — the security/efficiency tension the paper closes on.")
}
