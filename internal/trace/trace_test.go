package trace

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 1: accuracy", "Class", "LL", "Quasar")
	tb.Add("Aggregate", "87%", "89%")
	tb.Add("memcached", "78%", "80%")
	out := tb.String()
	for _, want := range []string{"Table 1", "Class", "Aggregate", "memcached", "89%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title + header + sep + 2 rows
		t.Fatalf("got %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("t", "a", "b")
	tb.Addf([]string{"%s", "%.1f"}, "x", 3.14159)
	if tb.Rows[0][1] != "3.1" {
		t.Fatalf("Addf formatting wrong: %v", tb.Rows[0])
	}
}

func TestTableAlignsColumns(t *testing.T) {
	tb := NewTable("", "short", "x")
	tb.Add("muchlongercell", "y")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// All lines should have equal rendered width.
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Fatalf("ragged table:\n%s", out)
		}
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length wrong: %q", s)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline endpoints wrong: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat series should render lowest level: %q", flat)
		}
	}
}

func TestFigureRender(t *testing.T) {
	f := NewFigure("Fig 6a", "co-residents", "accuracy")
	f.AddSeries("accuracy", []float64{1, 2, 3}, []float64{95, 85, 70})
	out := f.String()
	for _, want := range []string{"Fig 6a", "co-residents", "accuracy", "95"} {
		if !strings.Contains(out, want) {
			t.Fatalf("figure output missing %q:\n%s", want, out)
		}
	}
}

func TestHeatmap(t *testing.T) {
	h := NewHeatmap("Fig 2", "LLC", "L1i", 2, 3)
	h.Set(0, 0, 0)
	h.Set(1, 2, 1)
	if h.At(1, 2) != 1 {
		t.Fatal("Set/At mismatch")
	}
	out := h.String()
	if !strings.Contains(out, "Fig 2") || !strings.Contains(out, "@") {
		t.Fatalf("heatmap output wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 { // title + 2 rows
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), out)
	}
}
