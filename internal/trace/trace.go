// Package trace renders experiment results as paper-style tables and
// ASCII figures. Every experiment in internal/exper produces a Report; the
// boltbench command and the benchmark harness print them.
package trace

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; cells beyond the header count are kept as-is.
func (t *Table) Add(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted cells.
func (t *Table) Addf(format []string, vals ...any) {
	row := make([]string, len(format))
	for i := range format {
		if i < len(vals) {
			row[i] = fmt.Sprintf(format[i], vals[i])
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(widths))
		for i := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(t.Headers)
	sep := make([]string, len(widths))
	for i, wd := range widths {
		sep[i] = strings.Repeat("-", wd)
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Render(&b)
	return b.String()
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Series is one named line of a figure: x/y points.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a collection of series, rendered as a table of points plus an
// ASCII sparkline per series — enough to read the shape the paper's plot
// shows.
type Figure struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// NewFigure creates an empty figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries appends a named series.
func (f *Figure) AddSeries(name string, x, y []float64) {
	f.Series = append(f.Series, Series{Name: name, X: x, Y: y})
}

// Render writes the figure to w.
func (f *Figure) Render(w io.Writer) {
	fmt.Fprintf(w, "%s\n", f.Title)
	fmt.Fprintf(w, "  x=%s, y=%s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  %-24s %s\n", s.Name, Sparkline(s.Y))
		for i := range s.X {
			fmt.Fprintf(w, "    %10.4g  %10.4g\n", s.X[i], s.Y[i])
		}
	}
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}

var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a unicode sparkline, normalising to the
// series' own min/max. Empty input yields an empty string.
func Sparkline(ys []float64) string {
	if len(ys) == 0 {
		return ""
	}
	lo, hi := ys[0], ys[0]
	for _, y := range ys {
		if y < lo {
			lo = y
		}
		if y > hi {
			hi = y
		}
	}
	var b strings.Builder
	for _, y := range ys {
		idx := 0
		if hi > lo {
			idx = int((y - lo) / (hi - lo) * float64(len(sparkLevels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkLevels) {
			idx = len(sparkLevels) - 1
		}
		b.WriteRune(sparkLevels[idx])
	}
	return b.String()
}

// Heatmap renders a 2D grid of values (rows × cols) as shaded cells, used
// for the Fig. 2 probability maps and the Fig. 12c occupancy plot.
type Heatmap struct {
	Title      string
	RowLabel   string
	ColLabel   string
	Rows, Cols int
	Cells      []float64 // row-major, any non-negative scale
}

// NewHeatmap allocates a rows×cols heatmap.
func NewHeatmap(title, rowLabel, colLabel string, rows, cols int) *Heatmap {
	return &Heatmap{
		Title: title, RowLabel: rowLabel, ColLabel: colLabel,
		Rows: rows, Cols: cols, Cells: make([]float64, rows*cols),
	}
}

// Set assigns cell (r, c).
func (h *Heatmap) Set(r, c int, v float64) { h.Cells[r*h.Cols+c] = v }

// At returns cell (r, c).
func (h *Heatmap) At(r, c int) float64 { return h.Cells[r*h.Cols+c] }

var heatLevels = []rune(" .:-=+*#%@")

// Render writes the heatmap to w, one shaded character per cell.
func (h *Heatmap) Render(w io.Writer) {
	lo, hi := h.Cells[0], h.Cells[0]
	for _, v := range h.Cells {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	fmt.Fprintf(w, "%s  (rows=%s, cols=%s; ' '=%.2g '@'=%.2g)\n",
		h.Title, h.RowLabel, h.ColLabel, lo, hi)
	for r := 0; r < h.Rows; r++ {
		var b strings.Builder
		for c := 0; c < h.Cols; c++ {
			v := h.At(r, c)
			idx := 0
			if hi > lo {
				idx = int((v - lo) / (hi - lo) * float64(len(heatLevels)-1))
			}
			if idx < 0 {
				idx = 0
			}
			if idx >= len(heatLevels) {
				idx = len(heatLevels) - 1
			}
			b.WriteRune(heatLevels[idx])
		}
		fmt.Fprintf(w, "  |%s|\n", b.String())
	}
}

// String renders the heatmap to a string.
func (h *Heatmap) String() string {
	var b strings.Builder
	h.Render(&b)
	return b.String()
}
