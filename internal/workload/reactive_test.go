package workload

import (
	"testing"

	"bolt/internal/sim"
	"bolt/internal/stats"
)

// kernelApp exerts fixed pressure on one resource.
type kernelApp struct {
	r sim.Resource
	v float64
}

func (k kernelApp) Demand(sim.Tick) sim.Vector {
	var d sim.Vector
	d.Set(k.r, k.v)
	return d
}
func (k kernelApp) Sensitivity() sim.Vector { return sim.Vector{} }

func reactiveVictim(t *testing.T, s *sim.Server) (*Reactive, *sim.VM) {
	t.Helper()
	spec := Spark(stats.NewRNG(1), 0) // kmeans: memBW-bound
	spec.Jitter = 0
	r := NewReactive(NewApp(spec, Constant{Level: 1}, 1))
	vm := &sim.VM{ID: "victim", VCPUs: 4, App: r}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	r.Bind(s, vm)
	return r, vm
}

func TestReactiveUnboundPassesThrough(t *testing.T) {
	spec := Spark(stats.NewRNG(1), 0)
	spec.Jitter = 0
	app := NewApp(spec, Constant{Level: 1}, 1)
	r := NewReactive(app)
	if r.Demand(5) != app.Demand(5) {
		t.Fatal("unbound Reactive must behave like the raw app")
	}
	if r.Sensitivity() != app.Sensitivity() {
		t.Fatal("sensitivity must pass through")
	}
}

func TestReactiveIdleHostPassesThrough(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	r, _ := reactiveVictim(t, s)
	raw := r.App.Demand(10)
	if r.Demand(10) != raw {
		t.Fatal("no contention → demand must equal the raw profile")
	}
}

func TestReactiveFreesNonBottleneckResources(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	r, _ := reactiveVictim(t, s)
	raw := r.App.Demand(10)

	// Saturate the victim's memory bandwidth.
	attacker := &sim.VM{ID: "atk", VCPUs: 4, App: kernelApp{sim.MemBW, 95}}
	if err := s.Place(attacker); err != nil {
		t.Fatal(err)
	}
	d := r.Demand(10)

	// The bottleneck stays busy...
	if d.Get(sim.MemBW) != raw.Get(sim.MemBW) {
		t.Fatalf("bottleneck demand should stay at raw: %v vs %v",
			d.Get(sim.MemBW), raw.Get(sim.MemBW))
	}
	// ...everything else drains.
	for _, res := range []sim.Resource{sim.LLC, sim.MemCap, sim.NetBW} {
		if d.Get(res) >= raw.Get(res) {
			t.Fatalf("%v should drain under a memBW stall: %v vs raw %v",
				res, d.Get(res), raw.Get(res))
		}
	}
}

func TestReactiveDrainScalesWithSlowdown(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	r, vm := reactiveVictim(t, s)

	light := &sim.VM{ID: "light", VCPUs: 2, App: kernelApp{sim.MemBW, 40}}
	if err := s.Place(light); err != nil {
		t.Fatal(err)
	}
	lightLLC := r.Demand(10).Get(sim.LLC)
	s.Remove("light")
	heavy := &sim.VM{ID: "heavy", VCPUs: 2, App: kernelApp{sim.MemBW, 95}}
	if err := s.Place(heavy); err != nil {
		t.Fatal(err)
	}
	heavyLLC := r.Demand(10).Get(sim.LLC)
	if heavyLLC >= lightLLC {
		t.Fatalf("heavier stall should drain more: light %v, heavy %v", lightLLC, heavyLLC)
	}
	_ = vm
}

func TestReactiveMutualDoesNotRecurse(t *testing.T) {
	// Two reactive apps on one host: evaluating either must terminate and
	// produce bounded demand (the computing flag breaks the cycle).
	s := sim.NewServer("s0", sim.ServerConfig{})
	r1, _ := reactiveVictim(t, s)

	spec2 := Hadoop(stats.NewRNG(2), 2)
	spec2.Jitter = 0
	r2 := NewReactive(NewApp(spec2, Constant{Level: 1}, 2))
	vm2 := &sim.VM{ID: "victim2", VCPUs: 4, App: r2}
	if err := s.Place(vm2); err != nil {
		t.Fatal(err)
	}
	r2.Bind(s, vm2)

	// Saturate something both feel.
	attacker := &sim.VM{ID: "atk", VCPUs: 4, App: kernelApp{sim.LLC, 95}}
	if err := s.Place(attacker); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		for tick := sim.Tick(0); tick < 50; tick++ {
			d1 := r1.Demand(tick)
			d2 := r2.Demand(tick)
			for _, res := range sim.AllResources() {
				if d1.Get(res) < 0 || d1.Get(res) > 100 || d2.Get(res) < 0 || d2.Get(res) > 100 {
					t.Errorf("reactive demand out of bounds at %v", tick)
					return
				}
			}
		}
	}()
	<-done
}

func TestReactiveSlowdownBelowOneIgnored(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	r, _ := reactiveVictim(t, s)
	// A co-resident with tiny pressure: no overload anywhere, demand stays
	// raw.
	quiet := &sim.VM{ID: "quiet", VCPUs: 2, App: kernelApp{sim.DiskBW, 5}}
	if err := s.Place(quiet); err != nil {
		t.Fatal(err)
	}
	if r.Demand(3) != r.App.Demand(3) {
		t.Fatal("sub-capacity contention must not perturb demand")
	}
}
