package workload

import (
	"fmt"

	"bolt/internal/sim"
	"bolt/internal/stats"
)

// v builds a pressure vector in canonical resource order:
// L1-i, L1-d, L2, LLC, MemCap, MemBW, CPU, NetBW, DiskCap, DiskBW.
func v(l1i, l1d, l2, llc, memc, membw, cpu, net, diskc, diskbw float64) sim.Vector {
	return sim.FromSlice([]float64{l1i, l1d, l2, llc, memc, membw, cpu, net, diskc, diskbw})
}

// loadAll marks every resource fully load-scaled except the capacity
// resources, which stay mostly resident while the app runs.
func loadAll() sim.Vector {
	lv := v(100, 100, 100, 100, 25, 100, 100, 100, 10, 100)
	return lv
}

// Generator builds application Specs for one class. The variant index
// selects a deterministic point in the class's parameter space (algorithm,
// dataset size, read/write mix, ...), so disjoint variant ranges yield
// disjoint training and test populations, as the paper requires.
type Generator struct {
	Class string
	Make  func(rng *stats.RNG, variant int) Spec
}

// jittered perturbs each entry of base by a zero-mean Gaussian with the
// given stddev, clamped to [0, 100].
func jitterred(rng *stats.RNG, base sim.Vector, sd float64) sim.Vector {
	var out sim.Vector
	for i := range base {
		out.Set(sim.Resource(i), base[i]+rng.Norm(0, sd))
	}
	return out
}

// pick returns element variant%len(xs) — a deterministic variant selector.
func pick[T any](xs []T, variant int) T {
	return xs[variant%len(xs)]
}

// Memcached builds a key-value cache Spec. Variants sweep the read:write
// ratio and value size; the signature profile is very high L1-i pressure,
// high LLC pressure, and zero disk traffic (Fig. 2).
func Memcached(rng *stats.RNG, variant int) Spec {
	rdPcts := []int{50, 70, 80, 90, 95, 99}
	sizes := []string{"B", "KB", "MB"}
	rd := pick(rdPcts, variant)
	size := pick(sizes, variant/len(rdPcts))

	base := v(88, 58, 28, 75, 42, 48, 34, 60, 0, 0)
	// Write-heavier loads touch more data; bigger values shift pressure
	// from instruction fetch toward memory and network bandwidth.
	base.Set(sim.L1D, base.Get(sim.L1D)+float64(100-rd)*0.25)
	base.Set(sim.MemBW, base.Get(sim.MemBW)+float64(100-rd)*0.2)
	switch size {
	case "MB":
		base.Set(sim.NetBW, base.Get(sim.NetBW)+22)
		base.Set(sim.MemBW, base.Get(sim.MemBW)+15)
		base.Set(sim.L1I, base.Get(sim.L1I)-12)
	case "B":
		base.Set(sim.L1I, base.Get(sim.L1I)+6)
		base.Set(sim.NetBW, base.Get(sim.NetBW)-12)
	}
	return Spec{
		Label:      fmt.Sprintf("memcached:rd%d:%s", rd, size),
		Class:      "memcached",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.04,
	}
}

// Hadoop builds a disk-bound MapReduce analytics Spec. Variants sweep the
// algorithm and dataset size; profiles range from CPU-lean wordcount on
// small data to memory- and cache-hungry recommenders on large data
// (Fig. 5).
func Hadoop(rng *stats.RNG, variant int) Spec {
	algos := []string{"wordcount", "grep", "sort", "svm", "kmeans", "naivebayes", "recommender", "pagerank"}
	sizes := []string{"S", "M", "L"}
	algo := pick(algos, variant)
	size := pick(sizes, variant/len(algos))

	var base sim.Vector
	switch algo {
	case "wordcount":
		base = v(26, 35, 30, 30, 32, 34, 58, 38, 70, 74)
	case "grep":
		base = v(30, 28, 26, 24, 22, 28, 72, 30, 78, 62)
	case "sort":
		base = v(24, 40, 34, 38, 46, 55, 48, 52, 85, 85)
	case "svm":
		base = v(35, 50, 42, 52, 48, 46, 86, 30, 60, 48)
	case "kmeans":
		base = v(32, 55, 44, 58, 55, 62, 74, 34, 66, 52)
	case "naivebayes":
		base = v(42, 46, 38, 44, 40, 40, 78, 40, 72, 62)
	case "recommender":
		base = v(38, 55, 46, 60, 70, 58, 70, 40, 80, 68)
	case "pagerank":
		base = v(34, 58, 50, 72, 66, 72, 64, 48, 68, 56)
	}
	switch size {
	case "S":
		base = base.Scale(0.72)
	case "L":
		base = base.Scale(1.18)
	}
	return Spec{
		Label:      fmt.Sprintf("hadoop:%s:%s", algo, size),
		Class:      "hadoop",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.05,
	}
}

// Spark builds an in-memory analytics Spec: memory capacity and bandwidth
// dominate, disk traffic is low.
func Spark(rng *stats.RNG, variant int) Spec {
	algos := []string{"kmeans", "pagerank", "logistic", "svm", "als", "streaming"}
	sizes := []string{"S", "M", "L"}
	algo := pick(algos, variant)
	size := pick(sizes, variant/len(algos))

	var base sim.Vector
	switch algo {
	case "kmeans":
		base = v(40, 54, 40, 68, 84, 86, 60, 30, 18, 14)
	case "pagerank":
		base = v(36, 58, 46, 80, 86, 92, 52, 36, 16, 10)
	case "logistic":
		base = v(42, 50, 36, 58, 76, 72, 80, 26, 14, 10)
	case "svm":
		base = v(38, 46, 40, 64, 70, 64, 88, 22, 12, 8)
	case "als":
		base = v(34, 60, 44, 76, 90, 84, 62, 30, 24, 18)
	case "streaming":
		base = v(44, 48, 34, 56, 60, 70, 58, 66, 20, 22)
	}
	switch size {
	case "S":
		base = base.Scale(0.75)
	case "L":
		base = base.Scale(1.15)
	}
	return Spec{
		Label:      fmt.Sprintf("spark:%s:%s", algo, size),
		Class:      "spark",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.05,
	}
}

// Cassandra builds a wide-column store Spec: mixed disk and network
// pressure with a warm cache footprint.
func Cassandra(rng *stats.RNG, variant int) Spec {
	mixes := []string{"rd", "wr", "mixed", "scan"}
	mix := pick(mixes, variant)

	var base sim.Vector
	switch mix {
	case "rd":
		base = v(62, 54, 38, 66, 56, 44, 40, 66, 52, 44)
	case "wr":
		base = v(52, 50, 42, 48, 50, 58, 46, 50, 66, 76)
	case "mixed":
		base = v(58, 52, 40, 56, 52, 46, 42, 55, 62, 58)
	default: // scan
		base = v(42, 56, 46, 50, 58, 52, 50, 40, 82, 82)
	}
	return Spec{
		Label:      fmt.Sprintf("cassandra:%s", mix),
		Class:      "cassandra",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.04,
	}
}

// SpecCPU builds a SPEC CPU2006-style single-core benchmark Spec: purely
// core and memory pressure, no network or disk.
func SpecCPU(rng *stats.RNG, variant int) Spec {
	benchmarks := []struct {
		name string
		base sim.Vector
	}{
		{"mcf", v(30, 72, 58, 82, 58, 88, 62, 0, 0, 0)},
		{"lbm", v(22, 66, 50, 74, 64, 92, 58, 0, 0, 0)},
		{"milc", v(26, 62, 52, 70, 60, 84, 66, 0, 0, 0)},
		{"libquantum", v(18, 58, 62, 78, 40, 90, 55, 0, 0, 0)},
		{"gcc", v(62, 55, 48, 52, 38, 42, 72, 0, 2, 3)},
		{"perlbench", v(70, 52, 44, 46, 32, 36, 78, 0, 1, 2)},
		{"gobmk", v(58, 48, 40, 34, 22, 26, 85, 0, 0, 0)},
		{"soplex", v(34, 60, 50, 68, 52, 72, 66, 0, 1, 1)},
		{"bzip2", v(30, 56, 46, 48, 36, 52, 80, 0, 4, 6)},
		{"leslie3d", v(24, 64, 54, 72, 56, 86, 60, 0, 0, 0)},
	}
	b := pick(benchmarks, variant)
	return Spec{
		Label:      fmt.Sprintf("speccpu:%s", b.name),
		Class:      "speccpu",
		Base:       jitterred(rng, b.base, 2.5),
		LoadScaled: loadAll(),
		Jitter:     0.03,
	}
}

// Webserver builds an HTTP-serving Spec: very large instruction footprint
// and high network bandwidth.
func Webserver(rng *stats.RNG, variant int) Spec {
	kinds := []string{"static", "dynamic", "api"}
	kind := pick(kinds, variant)

	base := v(90, 48, 38, 50, 30, 34, 52, 74, 8, 10)
	switch kind {
	case "dynamic":
		base.Set(sim.CPU, 70)
		base.Set(sim.L1D, 56)
	case "api":
		base.Set(sim.NetBW, 82)
		base.Set(sim.CPU, 60)
	}
	return Spec{
		Label:      fmt.Sprintf("webserver:%s", kind),
		Class:      "webserver",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.05,
	}
}

// SQLDatabase builds an OLTP relational database Spec (MySQL/Postgres
// flavoured by variant).
func SQLDatabase(rng *stats.RNG, variant int) Spec {
	engines := []string{"mysql", "postgres"}
	mixes := []string{"oltp", "olap", "mixed"}
	engine := pick(engines, variant)
	mix := pick(mixes, variant/len(engines))

	var base sim.Vector
	switch mix {
	case "oltp":
		base = v(68, 56, 44, 62, 46, 38, 46, 52, 50, 44)
	case "olap":
		base = v(52, 60, 48, 54, 56, 62, 64, 34, 70, 74)
	default: // mixed
		base = v(60, 56, 46, 58, 50, 48, 54, 44, 60, 60)
	}
	// The engines have recognisably different footprints: MySQL (InnoDB)
	// leans on the buffer pool and disk, Postgres on per-backend compute
	// and memory bandwidth.
	if engine == "postgres" {
		base.Set(sim.CPU, base.Get(sim.CPU)+14)
		base.Set(sim.MemBW, base.Get(sim.MemBW)+12)
		base.Set(sim.DiskBW, base.Get(sim.DiskBW)-10)
		base.Set(sim.L1I, base.Get(sim.L1I)-12)
	} else {
		base.Set(sim.DiskCap, base.Get(sim.DiskCap)+10)
		base.Set(sim.LLC, base.Get(sim.LLC)+8)
	}
	return Spec{
		Label:      fmt.Sprintf("%s:%s", engine, mix),
		Class:      engine,
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.04,
	}
}

// MongoDB builds a document-store Spec.
func MongoDB(rng *stats.RNG, variant int) Spec {
	mixes := []string{"rd", "wr", "agg"}
	mix := pick(mixes, variant)
	var base sim.Vector
	switch mix {
	case "rd":
		base = v(64, 54, 40, 60, 58, 42, 40, 58, 58, 42)
	case "wr":
		base = v(52, 50, 44, 46, 54, 52, 48, 44, 74, 70)
	default: // agg
		base = v(56, 58, 46, 54, 62, 64, 64, 40, 62, 50)
	}
	return Spec{
		Label:      fmt.Sprintf("mongodb:%s", mix),
		Class:      "mongodb",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.04,
	}
}

// Redis builds an in-memory store Spec, close to memcached but with
// persistence traffic.
func Redis(rng *stats.RNG, variant int) Spec {
	base := v(82, 56, 30, 70, 48, 50, 36, 58, 12, 16)
	return Spec{
		Label:      fmt.Sprintf("redis:v%d", variant%4),
		Class:      "redis",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.04,
	}
}

// Storm builds a stream-processing Spec: network-bound with steady CPU.
func Storm(rng *stats.RNG, variant int) Spec {
	base := v(44, 48, 38, 50, 46, 52, 62, 76, 12, 14)
	return Spec{
		Label:      fmt.Sprintf("storm:topology%d", variant%4),
		Class:      "storm",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.05,
	}
}

// GraphAnalytics builds a graph-processing Spec (GraphX flavoured):
// cache/memory-latency bound with bursty bandwidth.
func GraphAnalytics(rng *stats.RNG, variant int) Spec {
	base := v(36, 58, 50, 74, 66, 70, 58, 36, 30, 24)
	return Spec{
		Label:      fmt.Sprintf("graphx:workload%d", variant%4),
		Class:      "graph",
		Base:       jitterred(rng, base, 3),
		LoadScaled: loadAll(),
		Jitter:     0.05,
	}
}

// Generators returns the class generators used for both training and test
// populations, in a stable order.
func Generators() []Generator {
	return []Generator{
		{"memcached", Memcached},
		{"hadoop", Hadoop},
		{"spark", Spark},
		{"cassandra", Cassandra},
		{"speccpu", SpecCPU},
		{"webserver", Webserver},
		{"sql", SQLDatabase}, // yields class "mysql" or "postgres" per variant
		{"mongodb", MongoDB},
		{"redis", Redis},
		{"storm", Storm},
		{"graph", GraphAnalytics},
	}
}

// TrainingSetSize is the number of applications in the paper's training set.
const TrainingSetSize = 120

// TrainingSpecs generates the 120-application training set. The paper
// selects training workloads "to provide sufficient coverage of the space
// of resource characteristics" (Fig. 4), so the set sweeps every class and
// algorithm family; individual instances carry their own dataset-dependent
// jitter.
func TrainingSpecs(seed uint64) []Spec {
	rng := stats.NewRNG(seed)
	gens := Generators()
	specs := make([]Spec, 0, TrainingSetSize)
	for i := 0; len(specs) < TrainingSetSize; i++ {
		g := gens[i%len(gens)]
		specs = append(specs, g.Make(rng.Split(), i/len(gens)))
	}
	return specs
}

// VictimSpecs generates n test applications. Per §3.4 training and test
// populations share no instance: victims draw from an independent jitter
// stream (different datasets) and a shifted parameter cycle (different
// configurations and input loads). Labels name workload types and may
// recur across the populations — the type is exactly what Bolt detects.
func VictimSpecs(seed uint64, n int) []Spec {
	rng := stats.NewRNG(seed ^ 0x5eed7e57)
	gens := Generators()
	specs := make([]Spec, 0, n)
	for i := 0; len(specs) < n; i++ {
		g := gens[i%len(gens)]
		specs = append(specs, g.Make(rng.Split(), i/len(gens)+1))
	}
	return specs
}

// DefaultPattern returns a plausible load pattern for the class: diurnal or
// bursty for interactive services, flat batch ramps for analytics, constant
// for CPU benchmarks. The rng picks phase offsets so co-scheduled services
// do not peak in lockstep.
func DefaultPattern(class string, rng *stats.RNG) LoadPattern {
	switch class {
	case "memcached", "redis", "webserver", "sql", "mongodb", "cassandra":
		if rng.Bool(0.5) {
			return Diurnal{
				Min:    rng.Range(0.15, 0.4),
				Max:    rng.Range(0.8, 1.0),
				Period: sim.Tick(rng.Range(300, 1200)),
				Phase:  rng.Float64(),
			}
		}
		return Bursty{
			OnLevel:  rng.Range(0.75, 1.0),
			OffLevel: rng.Range(0.05, 0.3),
			OnTicks:  sim.Tick(rng.Range(50, 300)),
			OffTicks: sim.Tick(rng.Range(20, 150)),
			Offset:   sim.Tick(rng.Intn(200)),
		}
	case "hadoop", "spark", "graph", "speccpu":
		return Batch{Ramp: sim.Tick(rng.Range(10, 60)), Level: rng.Range(0.85, 1.0)}
	default:
		return Constant{Level: rng.Range(0.7, 1.0)}
	}
}
