package workload

import (
	"strings"
	"testing"
	"testing/quick"

	"bolt/internal/sim"
	"bolt/internal/stats"
)

func TestConstantPattern(t *testing.T) {
	p := Constant{Level: 0.6}
	if p.Factor(0) != 0.6 || p.Factor(1000) != 0.6 {
		t.Fatal("constant pattern should be flat")
	}
	if (Constant{Level: 2}).Factor(0) != 1 {
		t.Fatal("constant pattern should clamp to 1")
	}
}

func TestDiurnalPatternBounds(t *testing.T) {
	p := Diurnal{Min: 0.2, Max: 0.9, Period: 100}
	lo, hi := 2.0, -1.0
	for tick := sim.Tick(0); tick < 200; tick++ {
		f := p.Factor(tick)
		if f < 0.19 || f > 0.91 {
			t.Fatalf("diurnal factor %v outside [0.2, 0.9] at %d", f, tick)
		}
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi-lo < 0.5 {
		t.Fatalf("diurnal pattern barely oscillates: [%v, %v]", lo, hi)
	}
}

func TestDiurnalZeroPeriod(t *testing.T) {
	p := Diurnal{Min: 0.1, Max: 0.8, Period: 0}
	if p.Factor(5) != 0.8 {
		t.Fatal("zero-period diurnal should return Max")
	}
}

func TestBurstyPattern(t *testing.T) {
	p := Bursty{OnLevel: 0.9, OffLevel: 0.1, OnTicks: 10, OffTicks: 5}
	if p.Factor(0) != 0.9 || p.Factor(9) != 0.9 {
		t.Fatal("bursty should be on at cycle start")
	}
	if p.Factor(10) != 0.1 || p.Factor(14) != 0.1 {
		t.Fatal("bursty should be off after OnTicks")
	}
	if p.Factor(15) != 0.9 {
		t.Fatal("bursty should wrap")
	}
}

func TestBurstyOffset(t *testing.T) {
	p := Bursty{OnLevel: 1, OffLevel: 0, OnTicks: 10, OffTicks: 10, Offset: 10}
	if p.Factor(0) != 0 {
		t.Fatal("offset should shift the cycle")
	}
}

func TestBatchPattern(t *testing.T) {
	p := Batch{Ramp: 10, Duration: 100, Level: 1}
	if p.Factor(0) != 0 {
		t.Fatal("batch starts at zero")
	}
	if f := p.Factor(5); f != 0.5 {
		t.Fatalf("mid-ramp factor = %v, want 0.5", f)
	}
	if p.Factor(50) != 1 {
		t.Fatal("steady phase should be at Level")
	}
	if p.Factor(100) != 0 || p.Factor(200) != 0 {
		t.Fatal("finished batch should have zero load")
	}
	if p.Factor(-5) != 0 {
		t.Fatal("negative time should have zero load")
	}
}

func TestAppDemandDeterministic(t *testing.T) {
	spec := Memcached(stats.NewRNG(1), 0)
	app := NewApp(spec, Constant{Level: 1}, 99)
	d1 := app.Demand(42)
	d2 := app.Demand(42)
	if d1 != d2 {
		t.Fatal("Demand must be a pure function of the tick")
	}
}

func TestAppDemandScalesWithLoad(t *testing.T) {
	spec := Webserver(stats.NewRNG(2), 0)
	spec.Jitter = 0
	high := NewApp(spec, Constant{Level: 1}, 1)
	low := NewApp(spec, Constant{Level: 0.2}, 1)
	dh, dl := high.Demand(10), low.Demand(10)
	if dl.Get(sim.NetBW) >= dh.Get(sim.NetBW) {
		t.Fatalf("net bandwidth should follow load: low %v, high %v",
			dl.Get(sim.NetBW), dh.Get(sim.NetBW))
	}
	// Memory capacity is mostly resident: low load keeps most of it.
	if dl.Get(sim.MemCap) < 0.7*dh.Get(sim.MemCap) {
		t.Fatalf("memory capacity should be mostly load-independent: %v vs %v",
			dl.Get(sim.MemCap), dh.Get(sim.MemCap))
	}
}

func TestAppStartDelay(t *testing.T) {
	spec := SpecCPU(stats.NewRNG(3), 0)
	app := NewApp(spec, Constant{Level: 1}, 5)
	app.Start = 100
	if d := app.Demand(50); d != (sim.Vector{}) {
		t.Fatalf("app before Start should have zero demand: %v", d)
	}
	if d := app.Demand(150); d == (sim.Vector{}) {
		t.Fatal("app after Start should have demand")
	}
}

func TestAppNoiseBounded(t *testing.T) {
	spec := Spark(stats.NewRNG(4), 0)
	spec.Jitter = 0.05
	app := NewApp(spec, Constant{Level: 1}, 7)
	for tick := sim.Tick(0); tick < 200; tick++ {
		d := app.Demand(tick)
		for _, r := range sim.AllResources() {
			base := spec.Base.Get(r)
			if base == 0 {
				continue
			}
			ratio := d.Get(r) / base
			if ratio < 0.88 || ratio > 1.12 {
				t.Fatalf("noise out of bounds at %v/%v: ratio %v", tick, r, ratio)
			}
		}
	}
}

func TestSensitivityDefaultsToBase(t *testing.T) {
	spec := Memcached(stats.NewRNG(5), 0)
	app := NewApp(spec, nil, 1)
	sens := app.Sensitivity()
	for _, r := range sim.AllResources() {
		want := spec.Base.Get(r) / 100
		if sens.Get(r) != want {
			t.Fatalf("sensitivity(%v) = %v, want %v", r, sens.Get(r), want)
		}
	}
}

func TestSequencePhases(t *testing.T) {
	rng := stats.NewRNG(6)
	spec1 := SpecCPU(rng, 0)
	spec2 := Memcached(rng, 0)
	seq := NewSequence([]Phase{
		{Spec: spec1, Pattern: Constant{Level: 1}, Duration: 100},
		{Spec: spec2, Pattern: Constant{Level: 1}, Duration: 100},
	}, 11)
	if seq.ActiveSpec(50).Class != "speccpu" {
		t.Fatal("phase 1 should be SPEC")
	}
	if seq.ActiveSpec(150).Class != "memcached" {
		t.Fatal("phase 2 should be memcached")
	}
	// SPEC has no network traffic; memcached does.
	if seq.Demand(50).Get(sim.NetBW) > 5 {
		t.Fatal("SPEC phase should have ~no network demand")
	}
	if seq.Demand(150).Get(sim.NetBW) < 20 {
		t.Fatal("memcached phase should have network demand")
	}
	// Past the last phase the final spec keeps running.
	if seq.ActiveSpec(500).Class != "memcached" {
		t.Fatal("after the last phase the final spec should persist")
	}
}

func TestSequenceEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty sequence did not panic")
		}
	}()
	NewSequence(nil, 1)
}

func TestTrainingSpecsSizeAndDiversity(t *testing.T) {
	specs := TrainingSpecs(1)
	if len(specs) != TrainingSetSize {
		t.Fatalf("training set has %d specs, want %d", len(specs), TrainingSetSize)
	}
	classes := make(map[string]int)
	for _, s := range specs {
		classes[s.Class]++
	}
	// The sql generator yields two classes (mysql and postgres), so the
	// class count is one more than the generator count.
	if len(classes) != len(Generators())+1 {
		t.Fatalf("training set covers %d classes, want %d", len(classes), len(Generators())+1)
	}
}

func TestTrainingAndVictimsDisjoint(t *testing.T) {
	// Labels name workload *types* (class:algorithm:params) and may recur
	// across populations — the paper scores a detection as correct when the
	// framework and algorithm/load class match. Instance-level disjointness
	// (different datasets and input loads, §3.4) shows up as distinct
	// pressure vectors: no victim may be bit-identical to a training app.
	train := TrainingSpecs(1)
	victims := VictimSpecs(1, 108)
	seen := make(map[sim.Vector]bool)
	for _, s := range train {
		seen[s.Base] = true
	}
	for _, s := range victims {
		if seen[s.Base] {
			t.Fatalf("victim %q has a pressure vector identical to a training app", s.Label)
		}
	}
}

func TestVictimSpecsCount(t *testing.T) {
	if n := len(VictimSpecs(2, 108)); n != 108 {
		t.Fatalf("got %d victims, want 108", n)
	}
}

func TestSpecsPressureInRange(t *testing.T) {
	for _, s := range append(TrainingSpecs(3), VictimSpecs(3, 60)...) {
		for _, r := range sim.AllResources() {
			p := s.Base.Get(r)
			if p < 0 || p > 100 {
				t.Fatalf("%s: pressure %v out of range on %v", s.Label, p, r)
			}
		}
	}
}

func TestMemcachedSignature(t *testing.T) {
	spec := Memcached(stats.NewRNG(8), 0)
	if spec.Base.Get(sim.L1I) < 70 {
		t.Fatalf("memcached L1-i pressure %v, want high", spec.Base.Get(sim.L1I))
	}
	if spec.Base.Get(sim.DiskBW) > 10 || spec.Base.Get(sim.DiskCap) > 10 {
		t.Fatal("memcached should have ~zero disk traffic")
	}
}

func TestSpecCPUNoIO(t *testing.T) {
	for variant := 0; variant < 10; variant++ {
		spec := SpecCPU(stats.NewRNG(uint64(variant)), variant)
		if spec.Base.Get(sim.NetBW) > 8 {
			t.Fatalf("%s should have ~no network traffic", spec.Label)
		}
	}
}

func TestGeneratorsLabelsVary(t *testing.T) {
	rng := stats.NewRNG(9)
	for _, g := range Generators() {
		a := g.Make(rng.Split(), 0)
		b := g.Make(rng.Split(), 1)
		if a.Label == b.Label {
			t.Fatalf("class %s: variants 0 and 1 share label %q", g.Class, a.Label)
		}
		if !strings.Contains(a.Class, g.Class) && a.Class != g.Class {
			t.Fatalf("class mismatch: %q vs %q", a.Class, g.Class)
		}
	}
}

func TestDefaultPatternByClass(t *testing.T) {
	rng := stats.NewRNG(10)
	for _, class := range []string{"memcached", "hadoop", "unknown"} {
		p := DefaultPattern(class, rng)
		if p == nil {
			t.Fatalf("nil pattern for %s", class)
		}
		f := p.Factor(500)
		if f < 0 || f > 1 {
			t.Fatalf("pattern factor out of range for %s: %v", class, f)
		}
	}
}

// Property: all load patterns stay within [0, 1] for arbitrary times.
func TestPatternsBoundedProperty(t *testing.T) {
	f := func(seed uint64, rawTick int64) bool {
		rng := stats.NewRNG(seed)
		tick := sim.Tick(rawTick % 1_000_000)
		patterns := []LoadPattern{
			Constant{Level: rng.Range(-0.5, 1.5)},
			Diurnal{Min: rng.Range(0, 0.5), Max: rng.Range(0.5, 1), Period: sim.Tick(rng.Intn(1000))},
			Bursty{OnLevel: rng.Range(0, 1.5), OffLevel: rng.Range(-0.2, 0.5),
				OnTicks: sim.Tick(rng.Intn(100)), OffTicks: sim.Tick(rng.Intn(100))},
			Batch{Ramp: sim.Tick(rng.Intn(50)), Duration: sim.Tick(rng.Intn(2000)), Level: rng.Range(0, 1.2)},
		}
		for _, p := range patterns {
			f := p.Factor(tick)
			if f < 0 || f > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
