package workload

import "bolt/internal/sim"

// Reactive wraps an App with the feedback loop real applications exhibit
// under contention: when the app stalls on a saturated resource, its
// progress rate drops and so does the pressure it places on every
// *other* resource. This is the dynamic resource-freeing attacks exploit
// (§5.2): saturate the victim's critical resource and its remaining
// resources free up for the beneficiary.
//
// Reactive implements sim.Demander. It must be bound to its host with Bind
// after placement; unbound it behaves like the raw App.
type Reactive struct {
	App *App

	host      *sim.Server
	vm        *sim.VM
	computing bool
}

// NewReactive wraps the app.
func NewReactive(app *App) *Reactive { return &Reactive{App: app} }

// Bind attaches the wrapper to its placement. Call it once the VM is on a
// server.
func (r *Reactive) Bind(host *sim.Server, vm *sim.VM) {
	r.host = host
	r.vm = vm
}

// Demand implements sim.Demander. The raw demand is attenuated by the
// slowdown the app currently suffers, except on the resources that are
// themselves saturated — the app keeps pushing on the resource it is
// stalled on while everything else drains.
//
// Evaluating the slowdown requires the co-residents' demand, which may in
// turn be Reactive; the computing flag breaks that cycle by answering with
// the raw demand during a nested evaluation (a one-step relaxation of the
// fixed point, deterministic and plenty accurate for this model).
//
// The nested evaluation goes through sim.Server.InterferenceLive, never
// the cached Interference: the host's observation plane may be mid-build
// when it evaluates this VM's demand, and the values the relaxation must
// see (this VM answering with raw demand, everyone else with their full
// demand) are by design different from the top-level snapshot view. See
// the observation-plane contract in internal/sim/observation.go.
func (r *Reactive) Demand(t sim.Tick) sim.Vector {
	raw := r.App.Demand(t)
	if r.host == nil || r.vm == nil || r.computing {
		return raw
	}
	r.computing = true
	interference := r.host.InterferenceLive(r.vm, t)
	r.computing = false

	sens := r.App.Sensitivity()
	slow := sim.SlowdownFor(raw, sens, interference)
	if slow <= 1 {
		return raw
	}
	// Find the app's bottleneck: the resource contributing the most to its
	// own slowdown. The app keeps pushing there (that is where it is
	// stalled) while its pressure everywhere else drains with its progress
	// rate.
	bottleneck, bottleneckShare := sim.Resource(-1), 0.0
	for _, res := range sim.AllResources() {
		overload := raw.Get(res) + interference.Get(res) - 100
		if overload <= 0 {
			continue
		}
		share := sens.Get(res) * overload
		if share > bottleneckShare {
			bottleneck, bottleneckShare = res, share
		}
	}
	var out sim.Vector
	for _, res := range sim.AllResources() {
		if res == bottleneck {
			out.Set(res, raw.Get(res))
			continue
		}
		out.Set(res, raw.Get(res)/slow)
	}
	return out
}

// Sensitivity implements sim.Demander.
func (r *Reactive) Sensitivity() sim.Vector { return r.App.Sensitivity() }

var _ sim.Demander = (*Reactive)(nil)
