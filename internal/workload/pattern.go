// Package workload models the applications that run on the simulated cloud:
// a catalog of archetypes (memcached, Hadoop, Spark, Cassandra, SPEC
// CPU2006, webservers, databases, and the long tail of the user study),
// each with a per-resource pressure profile, within-class parameter
// variation, time-varying load patterns, and multi-phase execution. These
// are the victims Bolt detects and attacks.
package workload

import (
	"math"

	"bolt/internal/sim"
)

// LoadPattern maps time to a load factor in [0, 1] that scales an
// application's load-dependent resource pressure. Interactive services have
// diurnal or bursty patterns with low-load windows (which Bolt's shutter
// profiling exploits, §3.3); batch jobs ramp up and run flat out.
type LoadPattern interface {
	Factor(t sim.Tick) float64
}

// Constant is a flat load pattern.
type Constant struct {
	Level float64 // in [0, 1]
}

// Factor implements LoadPattern.
func (c Constant) Factor(sim.Tick) float64 { return clamp01(c.Level) }

// Diurnal is a sinusoidal day/night pattern: load oscillates between Min
// and Max with the given period. Online services in datacenters follow this
// shape (§3.3).
type Diurnal struct {
	Min, Max float64
	Period   sim.Tick // full cycle length
	Phase    float64  // fraction of a period to shift, in [0, 1)
}

// Factor implements LoadPattern.
func (d Diurnal) Factor(t sim.Tick) float64 {
	if d.Period <= 0 {
		return clamp01(d.Max)
	}
	x := 2 * math.Pi * (float64(t)/float64(d.Period) + d.Phase)
	mid := (d.Min + d.Max) / 2
	amp := (d.Max - d.Min) / 2
	return clamp01(mid + amp*math.Sin(x))
}

// Bursty alternates between a high-load and a low-load level, modelling
// user-interactive services with intermittent idle windows.
type Bursty struct {
	OnLevel, OffLevel float64
	OnTicks, OffTicks sim.Tick
	Offset            sim.Tick // shifts the cycle start
}

// Factor implements LoadPattern.
func (b Bursty) Factor(t sim.Tick) float64 {
	period := b.OnTicks + b.OffTicks
	if period <= 0 {
		return clamp01(b.OnLevel)
	}
	pos := (t + b.Offset) % period
	if pos < 0 {
		pos += period
	}
	if pos < b.OnTicks {
		return clamp01(b.OnLevel)
	}
	return clamp01(b.OffLevel)
}

// Batch models a batch job: a short ramp-up, a flat steady phase, and an
// abrupt end after Duration (after which load is zero — the job finished).
type Batch struct {
	Ramp     sim.Tick // ticks to reach full load
	Duration sim.Tick // total lifetime; 0 means endless
	Level    float64
}

// Factor implements LoadPattern.
func (b Batch) Factor(t sim.Tick) float64 {
	if t < 0 {
		return 0
	}
	if b.Duration > 0 && t >= b.Duration {
		return 0
	}
	if b.Ramp > 0 && t < b.Ramp {
		return clamp01(b.Level * float64(t) / float64(b.Ramp))
	}
	return clamp01(b.Level)
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
