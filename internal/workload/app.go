package workload

import (
	"bolt/internal/sim"
)

// Spec is a fully parameterised application: its identity (label and class),
// its baseline resource-pressure profile at full load, the fraction of each
// resource's pressure that scales with load (vs. fixed overhead like
// resident memory), a load pattern, and measurement jitter.
type Spec struct {
	Label string // fine-grained identity, e.g. "hadoop:svm:L"
	Class string // coarse class, e.g. "hadoop"

	Base sim.Vector // pressure at load factor 1.0
	// LoadScaled[r] is the fraction of Base[r] that follows the load
	// pattern; the remainder is constant while the app runs. Memory and
	// disk capacity are mostly load-independent, bandwidths mostly
	// load-dependent.
	LoadScaled sim.Vector // entries in [0, 100] interpreted as percent
	// Sens is the app's sensitivity to contention per resource (0-100,
	// scaled to 0-1 internally). Zero value derives it from Base.
	Sens sim.Vector

	Jitter float64 // per-tick multiplicative noise stddev (e.g. 0.05)
}

// sensitivity returns the effective sensitivity vector in 0-1: explicit if
// set, otherwise proportional to the base profile (applications are most
// sensitive to the resources they use most, §5.1).
func (s Spec) sensitivity() sim.Vector {
	var zero sim.Vector
	src := s.Sens
	if src == zero {
		src = s.Base
	}
	return src.Scale(0.01)
}

// App is a running application instance: a Spec bound to a start time and a
// deterministic noise stream. App implements sim.Demander. Demand is a pure
// function of the tick, so repeated queries for the same time agree — the
// simulator may evaluate a tick several times (probe ramps, utilisation
// checks) and must see a consistent world.
type App struct {
	Spec    Spec
	Pattern LoadPattern
	Start   sim.Tick // tick at which the app began running
	seed    uint64

	// memoVal/memoTick cache the last Demand evaluation. Demand is a pure
	// function of the tick (hash-based noise, no mutable RNG state), so the
	// cache is bit-exact by construction. It matters because one simulator
	// tick evaluates the same app several times — the observation snapshot
	// asks every VM top-level, and a co-resident Reactive's one-step
	// relaxation asks everyone again mid-build. An App belongs to one VM on
	// one host and is evaluated only under that host's detection flow, so a
	// plain field is safe (same single-flow argument as probe.Adversary).
	memoVal   sim.Vector
	memoTick  sim.Tick
	memoValid bool
}

// NewApp instantiates spec with the given noise seed, starting at tick 0.
func NewApp(spec Spec, pattern LoadPattern, seed uint64) *App {
	if pattern == nil {
		pattern = Constant{Level: 1}
	}
	return &App{Spec: spec, Pattern: pattern, seed: seed}
}

// hash64 mixes a tick into the app's seed (splitmix64 finaliser), providing
// deterministic per-tick noise without mutable RNG state.
func (a *App) hash64(t sim.Tick, salt uint64) uint64 {
	z := a.seed ^ (uint64(t) * 0x9e3779b97f4a7c15) ^ (salt * 0xd6e8feb86659fd93)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// noise returns a deterministic multiplicative jitter factor around 1 for
// resource r at tick t.
func (a *App) noise(t sim.Tick, r sim.Resource) float64 {
	if a.Spec.Jitter == 0 {
		return 1
	}
	// Uniform in [1-2j, 1+2j]: cheap, bounded, mean 1.
	u := float64(a.hash64(t, uint64(r)+1)>>11) / (1 << 53)
	return 1 + a.Spec.Jitter*2*(2*u-1)
}

// Demand implements sim.Demander: the base profile split into a fixed and a
// load-following component, modulated by the pattern and jitter.
//bolt:hotpath
func (a *App) Demand(t sim.Tick) sim.Vector {
	if a.memoValid && a.memoTick == t {
		return a.memoVal
	}
	rel := t - a.Start
	if rel < 0 {
		return sim.Vector{}
	}
	load := a.Pattern.Factor(rel)
	var out sim.Vector
	for r := sim.Resource(0); r < sim.NumResources; r++ {
		base := a.Spec.Base.Get(r)
		frac := a.Spec.LoadScaled.Get(r) / 100
		level := base*(1-frac) + base*frac*load
		out.Set(r, level*a.noise(t, r))
	}
	a.memoVal, a.memoTick, a.memoValid = out, t, true
	return out
}

// Sensitivity implements sim.Demander.
func (a *App) Sensitivity() sim.Vector { return a.Spec.sensitivity() }

// Phase is one segment of a multi-phase victim: run spec/pattern for
// Duration ticks, then move on.
type Phase struct {
	Spec     Spec
	Pattern  LoadPattern
	Duration sim.Tick
}

// Sequence chains phases, reproducing victims that run consecutive jobs on
// one instance (Fig. 8: SPEC → Hadoop → Spark → memcached → Cassandra).
// After the last phase it keeps running the final phase's spec. Sequence
// implements sim.Demander.
type Sequence struct {
	phases []Phase
	apps   []*App
	starts []sim.Tick
}

// NewSequence builds a multi-phase victim. It panics on an empty phase
// list.
func NewSequence(phases []Phase, seed uint64) *Sequence {
	if len(phases) == 0 {
		panic("workload: empty phase sequence")
	}
	s := &Sequence{phases: phases}
	var at sim.Tick
	for i, p := range phases {
		app := NewApp(p.Spec, p.Pattern, seed+uint64(i)*0x9e37)
		app.Start = at
		s.apps = append(s.apps, app)
		s.starts = append(s.starts, at)
		at += p.Duration
	}
	return s
}

// active returns the phase index live at tick t.
func (s *Sequence) active(t sim.Tick) int {
	for i := len(s.starts) - 1; i >= 0; i-- {
		if t >= s.starts[i] {
			return i
		}
	}
	return 0
}

// Demand implements sim.Demander.
func (s *Sequence) Demand(t sim.Tick) sim.Vector {
	return s.apps[s.active(t)].Demand(t)
}

// Sensitivity implements sim.Demander. It reports the sensitivity of the
// first phase; callers tracking phases should use ActiveSpec.
func (s *Sequence) Sensitivity() sim.Vector {
	return s.apps[0].Spec.sensitivity()
}

// ActiveSpec returns the Spec of the phase live at tick t.
func (s *Sequence) ActiveSpec(t sim.Tick) Spec {
	return s.phases[s.active(t)].Spec
}

var (
	_ sim.Demander = (*App)(nil)
	_ sim.Demander = (*Sequence)(nil)
)
