// Package par provides the repository's deterministic fan-out primitives:
// bounded worker pools whose results merge in input order and whose panics
// re-raise on the caller's goroutine, lowest index first.
//
// Two layers of the system share this discipline. The experiment runner and
// the episode pool (internal/exper) fan out over heterogeneous units of
// work — experiments, per-host episodes — and feed a work channel so slow
// units don't starve the pool. The fleet tick engine (internal/fleet) fans
// out over thousands of homogeneous per-server tick bodies and uses
// contiguous block shards instead, so a 4096-server tick costs a handful of
// goroutine handoffs rather than thousands of channel operations.
//
// Both shapes preserve the property every deterministic layer above relies
// on: bodies communicate results only through index-addressed slots, so the
// merged output is byte-identical at every worker count, and a panic in one
// body never tears down the process without unwinding the caller.
package par

import (
	"fmt"
	"runtime/debug"
	"sync"
)

// WorkerPanic is re-raised on the caller's goroutine when a body run by
// FanOut or FanOutBlocks panics in a pool worker. It preserves the original
// panic value and the worker's stack while letting the caller's own defers
// (profile writers, partially buffered reports, test cleanups) run — a bare
// panic on a worker goroutine would kill the process without unwinding
// anyone else.
type WorkerPanic struct {
	Index int    // input index whose body panicked
	Label string // human-readable unit, e.g. "experiment fig6"
	Value any    // the original panic value
	Stack string // the worker goroutine's stack at recovery
}

// Error implements error so recover()ed callers can treat the value
// uniformly.
func (p *WorkerPanic) Error() string {
	label := p.Label
	if label == "" {
		label = fmt.Sprintf("input %d", p.Index)
	}
	return fmt.Sprintf("par: %s panicked: %v\n\nworker stack:\n%s", label, p.Value, p.Stack)
}

// panicKeeper collects worker panics and keeps the lowest-index one, so the
// re-raised failure is deterministic regardless of worker scheduling.
type panicKeeper struct {
	mu sync.Mutex
	wp *WorkerPanic
}

// run executes body(), recovering a panic into the keeper under index i.
func (k *panicKeeper) run(i int, label func(int) string, body func()) {
	defer func() {
		v := recover()
		if v == nil {
			return
		}
		stack := string(debug.Stack())
		k.mu.Lock()
		if k.wp == nil || i < k.wp.Index {
			k.wp = &WorkerPanic{Index: i, Value: v, Stack: stack}
			if label != nil {
				k.wp.Label = label(i)
			}
		}
		k.mu.Unlock()
	}()
	body()
}

// rethrow re-raises the kept panic, if any, on the caller's goroutine.
func (k *panicKeeper) rethrow() {
	if k.wp != nil {
		panic(k.wp)
	}
}

// FanOut runs body(i) for every i in [0, n) with at most workers bodies in
// flight and returns once all have finished. Bodies communicate results
// through index-addressed slots, so callers merge in input order — the
// emit-in-input-order discipline that keeps output byte-identical at every
// worker count. workers <= 1 (or n <= 1) runs inline on the caller's
// goroutine.
//
// A panic inside a body is recovered on the worker, the remaining indices
// still run, and after every worker has drained the lowest-index panic is
// re-raised on the caller's goroutine as a *WorkerPanic. label (optional)
// names the failing unit in that error.
func FanOut(n, workers int, label func(int) string, body func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}

	var pk panicKeeper
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pk.run(i, label, func() { body(i) })
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	pk.rethrow()
}

// FanOutBlocks splits [0, n) into at most workers contiguous blocks and
// runs body(lo, hi) concurrently, one goroutine per block. It is the
// fan-out shape for large homogeneous inputs (one cheap body per server in
// a fleet tick): the per-tick synchronisation cost is a handful of
// goroutine handoffs instead of n channel operations, and the block
// boundaries depend only on (n, workers), never on scheduling.
//
// Blocks are balanced to within one element: the first n%workers blocks get
// one extra. Bodies must communicate only through index-addressed state, as
// with FanOut; the caller merges per-index results in index order after the
// barrier. workers <= 1 (or n <= 1) runs inline on the caller's goroutine.
//
// Panics follow FanOut's discipline, with WorkerPanic.Index holding the
// panicking block's first index (the lowest-index block wins when several
// panic). label (optional) receives that first index too.
func FanOutBlocks(n, workers int, label func(int) string, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		body(0, n)
		return
	}

	var pk panicKeeper
	var wg sync.WaitGroup
	size, extra := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		hi := lo + size
		if w < extra {
			hi++
		}
		blo, bhi := lo, hi // lo/hi mutate across iterations; capture this block's bounds
		wg.Add(1)
		go func() {
			defer wg.Done()
			pk.run(blo, label, func() { body(blo, bhi) })
		}()
		lo = hi
	}
	wg.Wait()
	pk.rethrow()
}
