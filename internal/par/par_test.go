package par

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestFanOutRunsEveryIndexOnce(t *testing.T) {
	const n = 100
	counts := make([]atomic.Int32, n)
	FanOut(n, 8, nil, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if got := counts[i].Load(); got != 1 {
			t.Fatalf("index %d ran %d times, want 1", i, got)
		}
	}
}

func TestFanOutDegenerateInputs(t *testing.T) {
	ran := 0
	FanOut(0, 4, nil, func(int) { ran++ })
	FanOut(-3, 4, nil, func(int) { ran++ })
	if ran != 0 {
		t.Fatalf("degenerate inputs ran %d bodies, want 0", ran)
	}
	// workers beyond n must not deadlock or double-run.
	var mask atomic.Int64
	FanOut(3, 64, nil, func(i int) { mask.Add(1 << uint(i)) })
	if mask.Load() != 0b111 {
		t.Fatalf("bodies ran with mask %b, want 111", mask.Load())
	}
}

func TestFanOutBlocksCoverExactly(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{1, 1}, {7, 3}, {8, 3}, {9, 3}, {100, 8}, {5, 16}, {4096, 8},
	} {
		counts := make([]atomic.Int32, tc.n)
		var blocks atomic.Int32
		FanOutBlocks(tc.n, tc.workers, nil, func(lo, hi int) {
			blocks.Add(1)
			if hi <= lo {
				t.Errorf("n=%d workers=%d: empty block [%d,%d)", tc.n, tc.workers, lo, hi)
			}
			for i := lo; i < hi; i++ {
				counts[i].Add(1)
			}
		})
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d workers=%d: index %d covered %d times, want 1", tc.n, tc.workers, i, got)
			}
		}
		want := tc.workers
		if want > tc.n {
			want = tc.n
		}
		if got := int(blocks.Load()); got != want && !(want <= 1 && got == 1) {
			t.Fatalf("n=%d workers=%d: ran %d blocks, want %d", tc.n, tc.workers, got, want)
		}
	}
}

// Block boundaries are a pure function of (n, workers): within one element
// of balanced, the first n%workers blocks taking the extra element.
func TestFanOutBlocksBalanced(t *testing.T) {
	var mu sync.Mutex
	sizes := map[int]int{}
	firsts := make(map[int]int) // block first index → size
	FanOutBlocks(10, 3, nil, func(lo, hi int) {
		mu.Lock()
		sizes[hi-lo]++
		firsts[lo] = hi - lo
		mu.Unlock()
	})
	if sizes[4] != 1 || sizes[3] != 2 {
		t.Fatalf("blocks of 10 over 3 workers sized %v, want one 4 and two 3s", sizes)
	}
	if firsts[0] != 4 {
		t.Fatalf("first block sized %d, want 4 (remainder goes to the leading blocks)", firsts[0])
	}
}

func TestFanOutPanicKeepsLowestIndex(t *testing.T) {
	defer func() {
		wp, ok := recover().(*WorkerPanic)
		if !ok {
			t.Fatal("want *WorkerPanic")
		}
		if wp.Index != 1 {
			t.Fatalf("WorkerPanic.Index = %d, want 1", wp.Index)
		}
		if wp.Label != "unit 1" {
			t.Fatalf("WorkerPanic.Label = %q, want %q", wp.Label, "unit 1")
		}
		if !strings.Contains(wp.Error(), "boom 1") {
			t.Fatalf("Error() = %q, missing original value", wp.Error())
		}
	}()
	FanOut(8, 4, func(i int) string { return "unit " + string(rune('0'+i)) }, func(i int) {
		if i == 1 || i == 5 {
			panic("boom " + string(rune('0'+i)))
		}
	})
	t.Fatal("FanOut returned instead of re-panicking")
}

func TestFanOutBlocksPanicPropagates(t *testing.T) {
	survived := make([]atomic.Bool, 16)
	defer func() {
		wp, ok := recover().(*WorkerPanic)
		if !ok {
			t.Fatal("want *WorkerPanic")
		}
		if wp.Index != 0 {
			t.Fatalf("WorkerPanic.Index = %d, want 0 (first index of panicking block)", wp.Index)
		}
		// Other blocks must have completed despite the panic.
		for i := 8; i < 16; i++ {
			if !survived[i].Load() {
				t.Fatalf("index %d never ran after block 0 panicked", i)
			}
		}
	}()
	FanOutBlocks(16, 2, nil, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 3 {
				panic("block boom")
			}
			survived[i].Store(true)
		}
	})
	t.Fatal("FanOutBlocks returned instead of re-panicking")
}
