package mining

import (
	"math"
	"testing"

	"bolt/internal/stats"
)

// The kernels' contract is stronger than numerical closeness: they must
// reproduce the scalar loops they replaced bit for bit, because the
// experiment suite's regression baseline is byte-identical output. Every
// comparison below is == on float64, not an epsilon.

func randVec(rng *stats.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Range(-5, 5)
	}
	return v
}

func TestDotMatchesNaiveBitExact(t *testing.T) {
	rng := stats.NewRNG(11)
	for n := 0; n <= 33; n++ {
		a, b := randVec(rng, n), randVec(rng, n)
		want := 0.0
		for i := range a {
			want += a[i] * b[i]
		}
		if got := Dot(a, b); got != want {
			t.Fatalf("n=%d: Dot=%v, naive=%v (diff %g)", n, got, want, got-want)
		}
	}
}

func TestAxpyMatchesNaiveBitExact(t *testing.T) {
	rng := stats.NewRNG(12)
	for n := 0; n <= 33; n++ {
		x, y := randVec(rng, n), randVec(rng, n)
		want := append([]float64(nil), y...)
		for i := range want {
			want[i] += 1.75 * x[i]
		}
		Axpy(1.75, x, y)
		for i := range y {
			if y[i] != want[i] {
				t.Fatalf("n=%d i=%d: Axpy=%v, naive=%v", n, i, y[i], want[i])
			}
		}
	}
}

func TestSgdStepMatchesReferenceBitExact(t *testing.T) {
	rng := stats.NewRNG(13)
	const lr, err, reg = 0.01, 1.375, 0.02
	for n := 0; n <= 9; n++ {
		p, q := randVec(rng, n), randVec(rng, n)
		wp := append([]float64(nil), p...)
		wq := append([]float64(nil), q...)
		for k := range wp {
			pk, qk := wp[k], wq[k]
			wp[k] += lr * (err*qk - reg*pk)
			wq[k] += lr * (err*pk - reg*qk)
		}
		sgdStep(p, q, lr, err, reg)
		for k := range p {
			if p[k] != wp[k] || q[k] != wq[k] {
				t.Fatalf("n=%d k=%d: (%v,%v), want (%v,%v)", n, k, p[k], q[k], wp[k], wq[k])
			}
		}
	}
}

func TestFoldStepMatchesReferenceBitExact(t *testing.T) {
	rng := stats.NewRNG(14)
	const lr, err, reg = 0.01, -0.625, 0.002
	for n := 0; n <= 9; n++ {
		u, q := randVec(rng, n), randVec(rng, n)
		want := append([]float64(nil), u...)
		for k := range want {
			want[k] += lr * (err*q[k] - reg*want[k])
		}
		foldStep(u, q, lr, err, reg)
		for k := range u {
			if u[k] != want[k] {
				t.Fatalf("n=%d k=%d: foldStep=%v, want %v", n, k, u[k], want[k])
			}
		}
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	cases := map[string]func(){
		"Dot":      func() { Dot(make([]float64, 3), make([]float64, 4)) },
		"Axpy":     func() { Axpy(1, make([]float64, 3), make([]float64, 4)) },
		"sgdStep":  func() { sgdStep(make([]float64, 3), make([]float64, 4), 0.01, 1, 0.02) },
		"foldStep": func() { foldStep(make([]float64, 4), make([]float64, 3), 0.01, 1, 0.02) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s length mismatch did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDotSpecialValuesPropagate(t *testing.T) {
	// NaN/Inf handling must match the naive loop too: the kernels are drop-in
	// replacements, not sanitisers.
	a := []float64{1, math.Inf(1), 3, 4, 5}
	b := []float64{1, 0, 3, 4, 5}
	if got := Dot(a, b); !math.IsNaN(got) {
		t.Fatalf("Inf*0 should poison the sum with NaN, got %v", got)
	}
}
