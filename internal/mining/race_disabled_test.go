//go:build !race

package mining

// raceEnabled reports that the binary was built with -race; see the race
// build-tag twin for why the alloc-budget tests care.
const raceEnabled = false
