package mining

import (
	"math"
	"testing"
	"testing/quick"

	"bolt/internal/stats"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At misbehaved")
	}
}

func TestFromRows(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	if m.Rows != 2 || m.Cols != 2 || m.At(1, 0) != 3 {
		t.Fatal("FromRows misbehaved")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]float64{{1, 2}, {3}})
}

func TestRowColCopies(t *testing.T) {
	m := FromRows([][]float64{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("Row returned a live view, want a copy")
	}
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col wrong: %v", c)
	}
}

func TestTranspose(t *testing.T) {
	m := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 {
		t.Fatal("transpose wrong")
	}
}

func TestMul(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestCloneIndependent(t *testing.T) {
	a := FromRows([][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 9)
	if a.At(0, 0) != 1 {
		t.Fatal("Clone shares backing storage")
	}
}

func TestDotNorm(t *testing.T) {
	if Dot([]float64{1, 2, 3}, []float64{4, 5, 6}) != 32 {
		t.Fatal("Dot wrong")
	}
	if Norm2([]float64{3, 4}) != 5 {
		t.Fatal("Norm2 wrong")
	}
}

func TestSVDReconstructs(t *testing.T) {
	rng := stats.NewRNG(1)
	m := NewMatrix(8, 5)
	for i := range m.Data {
		m.Data[i] = rng.Range(0, 100)
	}
	svd := ComputeSVD(m)
	rec := svd.Reconstruct()
	for i := range m.Data {
		if !almostEq(m.Data[i], rec.Data[i], 1e-6) {
			t.Fatalf("reconstruction differs at %d: %v vs %v", i, m.Data[i], rec.Data[i])
		}
	}
}

func TestSVDOrthonormalV(t *testing.T) {
	rng := stats.NewRNG(2)
	m := NewMatrix(10, 4)
	for i := range m.Data {
		m.Data[i] = rng.Range(-1, 1)
	}
	svd := ComputeSVD(m)
	vtv := svd.V.T().Mul(svd.V)
	for i := 0; i < vtv.Rows; i++ {
		for j := 0; j < vtv.Cols; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if !almostEq(vtv.At(i, j), want, 1e-8) {
				t.Fatalf("VᵀV(%d,%d) = %v, want %v", i, j, vtv.At(i, j), want)
			}
		}
	}
}

func TestSVDSingularValuesSorted(t *testing.T) {
	rng := stats.NewRNG(3)
	m := NewMatrix(12, 6)
	for i := range m.Data {
		m.Data[i] = rng.Range(0, 10)
	}
	svd := ComputeSVD(m)
	for i := 1; i < len(svd.Sigma); i++ {
		if svd.Sigma[i] > svd.Sigma[i-1] {
			t.Fatalf("singular values not decreasing: %v", svd.Sigma)
		}
	}
}

func TestSVDKnownRankOne(t *testing.T) {
	// A = outer product → exactly one nonzero singular value.
	u := []float64{1, 2, 3}
	v := []float64{4, 5}
	m := NewMatrix(3, 2)
	for i := range u {
		for j := range v {
			m.Set(i, j, u[i]*v[j])
		}
	}
	svd := ComputeSVD(m)
	if len(svd.Sigma) != 1 {
		t.Fatalf("rank-1 matrix produced %d singular values: %v", len(svd.Sigma), svd.Sigma)
	}
	want := Norm2(u) * Norm2(v)
	if !almostEq(svd.Sigma[0], want, 1e-9) {
		t.Fatalf("σ₀ = %v, want %v", svd.Sigma[0], want)
	}
}

func TestSVDDiagonal(t *testing.T) {
	m := FromRows([][]float64{{3, 0}, {0, 4}})
	svd := ComputeSVD(m)
	if len(svd.Sigma) != 2 || !almostEq(svd.Sigma[0], 4, 1e-9) || !almostEq(svd.Sigma[1], 3, 1e-9) {
		t.Fatalf("Sigma = %v, want [4 3]", svd.Sigma)
	}
}

func TestSVDEmpty(t *testing.T) {
	svd := ComputeSVD(NewMatrix(0, 0))
	if len(svd.Sigma) != 0 {
		t.Fatal("empty SVD should have no singular values")
	}
}

func TestEnergyRank(t *testing.T) {
	s := &SVD{Sigma: []float64{10, 3, 1}} // energies 100, 9, 1 of 110
	if r := s.EnergyRank(0.9); r != 1 {
		t.Fatalf("EnergyRank(0.9) = %d, want 1 (100/110 = 0.909)", r)
	}
	if r := s.EnergyRank(0.95); r != 2 {
		t.Fatalf("EnergyRank(0.95) = %d, want 2", r)
	}
	if r := s.EnergyRank(1.0); r != 3 {
		t.Fatalf("EnergyRank(1.0) = %d, want 3", r)
	}
}

func TestEnergyRankEdge(t *testing.T) {
	if (&SVD{}).EnergyRank(0.9) != 0 {
		t.Fatal("empty SVD EnergyRank should be 0")
	}
	if (&SVD{Sigma: []float64{0}}).EnergyRank(0.9) != 1 {
		t.Fatal("all-zero Sigma should still return rank 1")
	}
}

func TestTruncateAndProject(t *testing.T) {
	rng := stats.NewRNG(5)
	m := NewMatrix(20, 6)
	for i := range m.Data {
		m.Data[i] = rng.Range(0, 100)
	}
	svd := ComputeSVD(m)
	tr := svd.Truncate(3)
	if len(tr.Sigma) != 3 || tr.U.Cols != 3 || tr.V.Cols != 3 {
		t.Fatal("truncation shape wrong")
	}
	// Projecting a training row into full-rank concept space must recover
	// the corresponding row of U.
	u := svd.Project(m.Row(4))
	for k := range u {
		if !almostEq(u[k], svd.U.At(4, k), 1e-8) {
			t.Fatalf("Project differs from U at concept %d: %v vs %v", k, u[k], svd.U.At(4, k))
		}
	}
}

func TestTruncateBeyondRank(t *testing.T) {
	m := FromRows([][]float64{{1, 0}, {0, 1}})
	svd := ComputeSVD(m)
	tr := svd.Truncate(99)
	if len(tr.Sigma) != len(svd.Sigma) {
		t.Fatal("Truncate beyond rank should keep all values")
	}
}

// Property: SVD reconstruction error is tiny for random matrices.
func TestSVDReconstructionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		rows := 3 + rng.Intn(10)
		cols := 2 + rng.Intn(8)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.Range(-50, 50)
		}
		rec := ComputeSVD(m).Reconstruct()
		diff := 0.0
		for i := range m.Data {
			d := m.Data[i] - rec.Data[i]
			diff += d * d
		}
		return math.Sqrt(diff) <= 1e-6*(1+m.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
