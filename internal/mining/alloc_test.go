package mining

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
	"testing"

	"bolt/internal/stats"
)

// Allocation regression tests for the detection hot path. The parallel
// experiment runner calls Detect millions of times per suite; the scratch
// pools and precomputed centred profiles exist so those calls stay off the
// allocator. These tests pin the budgets so a regression fails loudly in
// `go test ./...` rather than showing up as a benchmark drift.

func TestDetectAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are inflated by design")
	}
	rng := stats.NewRNG(21)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{})
	obs := []float64{80, 55, 30, 70, 40, 50, 35, 55, 2, 1}
	known := []bool{true, false, false, true, false, true, false, false, false, false}
	rec.Detect(obs, known) // populate the scratch pool
	allocs := testing.AllocsPerRun(100, func() { rec.Detect(obs, known) })
	// Result struct + Pressure copy + Matches slice. A cold scratch-pool
	// refill (GC can empty the pool mid-run) only nudges the average.
	if allocs > 4 {
		t.Errorf("Detect allocated %.2f objects/op, budget is 4", allocs)
	}
}

func TestCompleteIntoAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are inflated by design")
	}
	train := trainMatrix(22, 30, 10)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 3})
	obs := make([]float64, 10)
	known := make([]bool, 10)
	obs[2], known[2] = 40, true
	obs[7], known[7] = 60, true
	dst := make([]float64, 10)
	c.CompleteInto(dst, obs, known) // populate the scratch pool
	allocs := testing.AllocsPerRun(100, func() { c.CompleteInto(dst, obs, known) })
	if allocs > 0.5 {
		t.Errorf("CompleteInto allocated %.2f objects/op, want 0", allocs)
	}
}

func TestCompleteAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are inflated by design")
	}
	train := trainMatrix(23, 30, 10)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 3})
	obs := make([]float64, 10)
	known := make([]bool, 10)
	obs[1], known[1] = 25, true
	c.Complete(obs, known) // populate the scratch pool
	allocs := testing.AllocsPerRun(100, func() { c.Complete(obs, known) })
	// Exactly the returned dense slice.
	if allocs > 1.5 {
		t.Errorf("Complete allocated %.2f objects/op, budget is 1", allocs)
	}
}

// TestCompleteBatchIntoAllocationFree pins the fused multi-victim fold-in
// (and the row-batched kernels it drives) to zero steady-state allocations:
// the pooled batchScratch absorbs every per-call buffer once warm.
func TestCompleteBatchIntoAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are inflated by design")
	}
	train := trainMatrix(24, 30, 10)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 3})
	const b = 4
	obs := make([][]float64, b)
	dst := make([][]float64, b)
	known := make([]bool, 10)
	known[2], known[7] = true, true
	for i := range obs {
		obs[i] = make([]float64, 10)
		obs[i][2], obs[i][7] = float64(30+i*10), float64(60-i*5)
		dst[i] = make([]float64, 10)
	}
	c.CompleteBatchInto(dst, obs, known) // populate the scratch pool
	allocs := testing.AllocsPerRun(100, func() { c.CompleteBatchInto(dst, obs, known) })
	if allocs > 0.5 {
		t.Errorf("CompleteBatchInto allocated %.2f objects/op, want 0", allocs)
	}
}

// hotpathBudget maps every //bolt:hotpath-annotated function in this
// package to the allocation-budget test that pins its behaviour. The
// boltlint hotalloc analyzer checks annotated functions statically; this
// registry guarantees the dynamic side — each annotated function is
// exercised under an AllocsPerRun budget, directly or via its sole caller.
var hotpathBudget = map[string]string{
	"Detect":            "TestDetectAllocationBudget",
	"DetectDense":       "TestDetectAllocationBudget",
	"detect":            "TestDetectAllocationBudget",
	"sortMatches":       "TestDetectAllocationBudget",
	"proximity":         "TestDetectAllocationBudget",
	"Dot":               "TestDetectAllocationBudget",
	"Axpy":              "TestCompleteIntoAllocationFree",
	"sgdStep":           "TestCompleteIntoAllocationFree",
	"foldStep":          "TestCompleteIntoAllocationFree",
	"foldSolve6":        "TestCompleteIntoAllocationFree",
	"CompleteInto":      "TestCompleteIntoAllocationFree",
	"neighbourEstimate": "TestCompleteIntoAllocationFree",
	"gaussKernel":       "TestCompleteIntoAllocationFree",
	"DotRows":           "TestCompleteBatchIntoAllocationFree",
	"FoldStepRows":      "TestCompleteBatchIntoAllocationFree",
	"AxpyRows":          "TestCompleteBatchIntoAllocationFree",
}

// TestHotpathAnnotationsCovered fails when a //bolt:hotpath annotation is
// added without extending the budget registry above (or when the registry
// goes stale). Keeping the two in lockstep means "annotated" always implies
// "has an allocation budget".
func TestHotpathAnnotationsCovered(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	annotated := map[string]bool{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Doc == nil {
					continue
				}
				for _, c := range fn.Doc.List {
					if strings.TrimSpace(c.Text) == "//bolt:hotpath" {
						annotated[fn.Name.Name] = true
					}
				}
			}
		}
	}
	if len(annotated) == 0 {
		t.Fatal("no //bolt:hotpath annotations found in package mining")
	}
	for name := range annotated {
		if hotpathBudget[name] == "" {
			t.Errorf("hot-path function %s has no allocation budget; add it to hotpathBudget and cover it in a budget test", name)
		}
	}
	for name := range hotpathBudget {
		if !annotated[name] {
			t.Errorf("hotpathBudget entry %s is stale: no //bolt:hotpath annotation on such a function", name)
		}
	}
}
