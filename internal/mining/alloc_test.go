package mining

import (
	"testing"

	"bolt/internal/stats"
)

// Allocation regression tests for the detection hot path. The parallel
// experiment runner calls Detect millions of times per suite; the scratch
// pools and precomputed centred profiles exist so those calls stay off the
// allocator. These tests pin the budgets so a regression fails loudly in
// `go test ./...` rather than showing up as a benchmark drift.

func TestDetectAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are inflated by design")
	}
	rng := stats.NewRNG(21)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{})
	obs := []float64{80, 55, 30, 70, 40, 50, 35, 55, 2, 1}
	known := []bool{true, false, false, true, false, true, false, false, false, false}
	rec.Detect(obs, known) // populate the scratch pool
	allocs := testing.AllocsPerRun(100, func() { rec.Detect(obs, known) })
	// Result struct + Pressure copy + Matches slice. A cold scratch-pool
	// refill (GC can empty the pool mid-run) only nudges the average.
	if allocs > 4 {
		t.Errorf("Detect allocated %.2f objects/op, budget is 4", allocs)
	}
}

func TestCompleteIntoAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are inflated by design")
	}
	train := trainMatrix(22, 30, 10)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 3})
	obs := make([]float64, 10)
	known := make([]bool, 10)
	obs[2], known[2] = 40, true
	obs[7], known[7] = 60, true
	dst := make([]float64, 10)
	c.CompleteInto(dst, obs, known) // populate the scratch pool
	allocs := testing.AllocsPerRun(100, func() { c.CompleteInto(dst, obs, known) })
	if allocs > 0.5 {
		t.Errorf("CompleteInto allocated %.2f objects/op, want 0", allocs)
	}
}

func TestCompleteAllocationBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under -race; allocation counts are inflated by design")
	}
	train := trainMatrix(23, 30, 10)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 3})
	obs := make([]float64, 10)
	known := make([]bool, 10)
	obs[1], known[1] = 25, true
	c.Complete(obs, known) // populate the scratch pool
	allocs := testing.AllocsPerRun(100, func() { c.Complete(obs, known) })
	// Exactly the returned dense slice.
	if allocs > 1.5 {
		t.Errorf("Complete allocated %.2f objects/op, budget is 1", allocs)
	}
}
