package mining

import (
	"math"
	"sync"
	"testing"

	"bolt/internal/stats"
)

// fuzzCompleter is built once per process: a small deterministic training
// matrix over 6 columns with pressure-scale values, clamped like real
// profiles to [0, 100].
var fuzzCompleterOnce = struct {
	sync.Once
	c *Completer
}{}

const fuzzCols = 6

func fuzzCompleter() *Completer {
	fuzzCompleterOnce.Do(func() {
		rng := stats.NewRNG(1701)
		rows := 12
		m := NewMatrix(rows, fuzzCols)
		for i := range m.Data {
			m.Data[i] = rng.Range(0, 100)
		}
		fuzzCompleterOnce.c = NewCompleter(m, CompletionConfig{
			Seed:   7,
			MinVal: 0,
			MaxVal: 100,
		})
	})
	return fuzzCompleterOnce.c
}

// boundTol absorbs the last-bit rounding a convex combination of in-range
// values can pick up; completion output must stay within the configured
// [MinVal, MaxVal] up to this slack.
const boundTol = 1e-9

// FuzzCompleterBounded feeds arbitrary observation vectors and known-masks
// through the matrix completer and asserts the recommender's input
// contract: every completed entry is finite and within the configured
// bounds, known entries pass through unchanged, and the all-missing row
// (the fully degraded fault-plane case) still completes in range.
func FuzzCompleterBounded(f *testing.F) {
	f.Add(50.0, 60.0, 70.0, 10.0, 20.0, 30.0, uint8(0b111111))
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, uint8(0)) // all missing
	f.Add(100.0, 100.0, 100.0, 100.0, 100.0, 100.0, uint8(0b000001))
	f.Add(99.9, 0.1, 55.5, 3.25, 80.0, 42.0, uint8(0b101010))
	f.Fuzz(func(t *testing.T, v0, v1, v2, v3, v4, v5 float64, mask uint8) {
		raw := [fuzzCols]float64{v0, v1, v2, v3, v4, v5}
		observed := make([]float64, fuzzCols)
		known := make([]bool, fuzzCols)
		for j, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip("non-finite observation")
			}
			// Upstream pressures are clamped before they reach the
			// completer; mirror that contract so the fuzzer explores the
			// mask/value space, not the out-of-domain input space.
			observed[j] = clamp(v, 0, 100)
			known[j] = mask&(1<<j) != 0
		}
		out := fuzzCompleter().Complete(observed, known)
		if len(out) != fuzzCols {
			t.Fatalf("Complete returned %d entries, want %d", len(out), fuzzCols)
		}
		for j, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("out[%d] = %g not finite (observed=%v known=%v)", j, v, observed, known)
			}
			if v < -boundTol || v > 100+boundTol {
				t.Fatalf("out[%d] = %g outside [0, 100] (observed=%v known=%v)", j, v, observed, known)
			}
			if known[j] && v != observed[j] {
				t.Fatalf("known entry %d rewritten: %g -> %g", j, observed[j], v)
			}
		}
	})
}

// pearsonMagCap keeps fuzzed inputs far from float64 overflow: the
// covariance terms are triple products, so magnitudes must stay below
// ~cbrt(MaxFloat64) for intermediate arithmetic to remain finite. 1e90
// leaves the entire plausible numeric space open to the fuzzer.
const pearsonMagCap = 1e90

// FuzzPearsonSymmetry asserts the similarity kernel's algebraic contract
// under arbitrary finite inputs: WeightedPearson is symmetric in its two
// profiles, always lands in [-1, 1], and never returns NaN — the guards
// the detection pipeline relies on when faulted profiles reach it.
func FuzzPearsonSymmetry(f *testing.F) {
	f.Add(10.0, 20.0, 30.0, 40.0, 40.0, 30.0, 20.0, 10.0, 1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0)   // zero variance
	f.Add(5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 5.0, 0.0, 0.0, 0.0, 0.0)   // zero weights
	f.Add(1.0, 2.0, 3.0, 4.0, 1.0, 2.0, 3.0, 4.0, -1.0, 1.0, -1.0, 1.0) // mixed-sign weights
	f.Fuzz(func(t *testing.T,
		a0, a1, a2, a3, b0, b1, b2, b3, s0, s1, s2, s3 float64) {
		a := []float64{a0, a1, a2, a3}
		b := []float64{b0, b1, b2, b3}
		sigma := []float64{s0, s1, s2, s3}
		for _, xs := range [][]float64{a, b, sigma} {
			for _, x := range xs {
				if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > pearsonMagCap {
					t.Skip("out of numeric domain")
				}
			}
		}
		r1 := WeightedPearson(a, b, sigma)
		r2 := WeightedPearson(b, a, sigma)
		if math.IsNaN(r1) || r1 < -1 || r1 > 1 {
			t.Fatalf("WeightedPearson(a, b) = %g outside [-1, 1]", r1)
		}
		// The two orders round the same covariance sum through different
		// multiplication groupings, so demand agreement to far below any
		// decision threshold rather than bit equality.
		if math.Abs(r1-r2) > 1e-9 {
			t.Fatalf("asymmetric: WeightedPearson(a,b)=%g, WeightedPearson(b,a)=%g\na=%v b=%v sigma=%v",
				r1, r2, a, b, sigma)
		}
		// The unweighted form must agree with the all-ones weighting and be
		// symmetric for the same reason.
		p1, p2 := Pearson(a, b), Pearson(b, a)
		if math.IsNaN(p1) || p1 < -1 || p1 > 1 || math.Abs(p1-p2) > 1e-9 {
			t.Fatalf("Pearson asymmetric or out of range: %g vs %g", p1, p2)
		}
	})
}
