package mining

import (
	"fmt"
	"math"
	"sync"
)

// LabeledProfile is one previously seen workload in the training set: its
// human-readable label (e.g. "hadoop:svm:L"), the coarse class it belongs to
// (e.g. "hadoop"), and its dense resource-pressure vector in [0,100].
type LabeledProfile struct {
	Label    string
	Class    string
	Pressure []float64
}

// Match is one entry of the similarity distribution the recommender emits.
type Match struct {
	Label      string
	Class      string
	Similarity float64 // weighted Pearson in [-1, 1]
}

// Result is the full output of one detection: a dense reconstruction of the
// victim's resource pressure plus the ranked similarity distribution over
// the training set.
type Result struct {
	Pressure []float64 // completed pressure vector, one entry per resource
	Matches  []Match   // sorted by decreasing similarity
}

// Best returns the top match, or a zero Match if the distribution is empty.
func (r *Result) Best() Match {
	if len(r.Matches) == 0 {
		return Match{}
	}
	return r.Matches[0]
}

// Confident reports whether any match clears the paper's 0.1 correlation
// floor; below it Bolt treats the signal as unseen-or-mixed (§3.3).
func (r *Result) Confident() bool {
	return len(r.Matches) > 0 && r.Matches[0].Similarity >= ConfidenceFloor
}

// ConfidenceFloor is the minimum Pearson coefficient at which Bolt trusts a
// match (all coefficients below 0.1 trigger re-profiling per §3.3).
const ConfidenceFloor = 0.1

// RecommenderConfig tunes the hybrid recommender.
type RecommenderConfig struct {
	EnergyFraction float64 // singular-value energy to retain; 0 means 0.9
	Completion     CompletionConfig
	// Unweighted switches Eq. 1 to the classic Pearson coefficient
	// (ablation: the paper argues weighting by similarity-concept strength
	// preserves which resources matter for each workload).
	Unweighted bool
	// PureCF disables the content-based stage and ranks by latent-factor
	// cosine similarity alone (ablation: CF cannot label victims).
	PureCF bool
}

// Recommender is Bolt's hybrid recommender (§3.2): SVD over the
// (column-centred) training matrix identifies similarity concepts; SGD
// PQ-completion recovers the victim's unprofiled resources; weighted Pearson
// correlation in concept space ranks previously seen workloads by
// similarity. Centring makes the similarity concepts capture variation
// across workloads rather than the grand mean, which would otherwise absorb
// nearly all singular-value energy and collapse the concept space to rank 1.
type Recommender struct {
	cfg      RecommenderConfig
	profiles []LabeledProfile
	svd      *SVD      // truncated to the energy rank
	means    []float64 // per-resource column means of the training matrix
	weights  []float64 // per-resource Eq. 1 weights: Σₖ σₖ·|V[j][k]|
	complete *Completer
	concepts [][]float64 // per-training-app concept-space coordinates
	// centred holds the mean-centred training profiles, row-major with
	// stride n: row i is profiles[i].Pressure - means. detect used to
	// recompute this subtraction for every profile on every call; it is a
	// pure function of the training set, so it is built once here.
	centred []float64
	ones    []float64 // all-ones weights for the Unweighted ablation
	n       int       // resource count
	scratch sync.Pool // *detectScratch
	batch   sync.Pool // *detectBatchScratch
}

// detectBatchScratch holds the completed-observation buffers of one
// DetectBatch call, pooled on the Recommender and regrown in place when a
// larger batch arrives, so a service answering at a steady batch size
// allocates nothing here beyond the returned Results.
type detectBatchScratch struct {
	flat  []float64   // B×n completed observations
	dense [][]float64 // row views into flat
}

// detectScratch is the per-call working memory of one detection, pooled on
// the Recommender so concurrent Detect calls (the parallel experiment
// runner) each grab their own and steady-state detection performs no heap
// allocation beyond the returned Result.
type detectScratch struct {
	dense   []float64 // completed observation (n)
	weights []float64 // measured-boosted weight copy (n)
	centred []float64 // mean-centred observation (n)
	x       []float64 // projection input (n; PureCF)
	u       []float64 // concept-space coordinates (rank; PureCF)
}

// minConceptRank is the fewest similarity concepts the recommender retains.
// Pearson correlation over very few coordinates is degenerate (with two it
// is always ±1, and it stays poorly conditioned below about five), so the
// 90%-energy rule is floored here. The σ weights already suppress weak
// concepts, so retaining a few extra acts as a soft truncation.
const minConceptRank = 5

// NewRecommender trains the recommender on the given profiles. All profiles
// must share the same pressure-vector length. It panics on an empty or
// ragged training set, since a recommender without training data is a
// programming error rather than a runtime condition.
func NewRecommender(profiles []LabeledProfile, cfg RecommenderConfig) *Recommender {
	if len(profiles) == 0 {
		panic("mining: empty training set")
	}
	n := len(profiles[0].Pressure)
	rows := make([][]float64, len(profiles))
	for i, p := range profiles {
		if len(p.Pressure) != n {
			panic(fmt.Sprintf("mining: profile %q has %d resources, want %d",
				p.Label, len(p.Pressure), n))
		}
		rows[i] = p.Pressure
	}
	if cfg.EnergyFraction == 0 {
		cfg.EnergyFraction = 0.9
	}
	if cfg.Completion.MaxVal == 0 {
		cfg.Completion.MaxVal = 100
	}

	train := FromRows(rows)
	means := make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for i := 0; i < train.Rows; i++ {
			sum += train.At(i, j)
		}
		means[j] = sum / float64(train.Rows)
	}
	centred := train.Clone()
	for i := 0; i < centred.Rows; i++ {
		for j := 0; j < n; j++ {
			centred.Set(i, j, centred.At(i, j)-means[j])
		}
	}

	full := ComputeSVD(centred)
	rank := full.EnergyRank(cfg.EnergyFraction)
	if rank < minConceptRank {
		rank = minConceptRank
	}
	r := &Recommender{
		cfg:      cfg,
		profiles: append([]LabeledProfile(nil), profiles...),
		svd:      full.Truncate(rank),
		means:    means,
		complete: NewCompleter(train, cfg.Completion),
		n:        n,
	}
	r.concepts = make([][]float64, len(profiles))
	for i := range profiles {
		r.concepts[i] = r.project(profiles[i].Pressure)
	}
	r.centred = make([]float64, len(profiles)*n)
	for i, p := range profiles {
		row := r.centred[i*n : (i+1)*n]
		for j := range row {
			row[j] = p.Pressure[j] - means[j]
		}
	}
	r.ones = make([]float64, n)
	for j := range r.ones {
		r.ones[j] = 1
	}
	r.weights = make([]float64, n)
	for j := 0; j < n; j++ {
		for k, s := range r.svd.Sigma {
			v := r.svd.V.At(j, k)
			if v < 0 {
				v = -v
			}
			r.weights[j] += s * v
		}
		// Never let a weight hit zero: an uninformative resource still
		// participates slightly, keeping the covariance well defined.
		if r.weights[j] < 1e-9 {
			r.weights[j] = 1e-9
		}
	}
	r.batch.New = func() any { return &detectBatchScratch{} }
	conceptRank := len(r.svd.Sigma)
	r.scratch.New = func() any {
		return &detectScratch{
			dense:   make([]float64, n),
			weights: make([]float64, n),
			centred: make([]float64, n),
			x:       make([]float64, n),
			u:       make([]float64, conceptRank),
		}
	}
	return r
}

// project centres a pressure vector and maps it into concept space.
func (r *Recommender) project(pressure []float64) []float64 {
	x := make([]float64, r.n)
	for j := range x {
		x[j] = pressure[j] - r.means[j]
	}
	return r.svd.Project(x)
}

// ResourceCount returns the length of pressure vectors this recommender
// expects.
func (r *Recommender) ResourceCount() int { return r.n }

// TrainingProfiles returns the training set the recommender was built on
// (shared slice contents; treat as read-only).
func (r *Recommender) TrainingProfiles() []LabeledProfile { return r.profiles }

// Rank returns the number of similarity concepts retained after the
// energy-based truncation.
func (r *Recommender) Rank() int { return len(r.svd.Sigma) }

// Sigma returns a copy of the retained singular values (similarity-concept
// strengths, decreasing).
func (r *Recommender) Sigma() []float64 {
	return append([]float64(nil), r.svd.Sigma...)
}

// ConceptResourceLoading returns |V[resource][concept]|, how strongly each
// resource participates in each retained similarity concept. The paper uses
// this to argue which resources leak the most information (§3.2).
func (r *Recommender) ConceptResourceLoading() *Matrix {
	out := NewMatrix(r.svd.V.Rows, len(r.svd.Sigma))
	for i := 0; i < out.Rows; i++ {
		for k := 0; k < out.Cols; k++ {
			v := r.svd.V.At(i, k)
			if v < 0 {
				v = -v
			}
			out.Set(i, k, v)
		}
	}
	return out
}

// ObservedWeightMass returns the fraction of the total per-resource Eq. 1
// weight (σₖ·|V[j][k]| summed over retained concepts) carried by the
// resources marked known — how much of the similarity stage's
// discriminative mass an observation actually covers. It is 1 for a fully
// observed vector and 0 for an empty mask, and feeds the detector's
// graceful-degradation confidence score.
func (r *Recommender) ObservedWeightMass(known []bool) float64 {
	if len(known) != r.n {
		panic("mining: ObservedWeightMass mask length mismatch")
	}
	num, den := 0.0, 0.0
	for j, w := range r.weights {
		den += w
		if known[j] {
			num += w
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// ResourceValue returns a per-resource "information value" score: the sum
// over retained concepts of σₖ·|V[j][k]|, normalised to max 1. Resources
// with high scores are the ones whose isolation the paper says should be
// prioritised.
func (r *Recommender) ResourceValue() []float64 {
	val := make([]float64, r.n)
	for j := 0; j < r.n; j++ {
		for k, s := range r.svd.Sigma {
			v := r.svd.V.At(j, k)
			if v < 0 {
				v = -v
			}
			val[j] += s * v
		}
	}
	maxv := 0.0
	for _, v := range val {
		if v > maxv {
			maxv = v
		}
	}
	if maxv > 0 {
		for j := range val {
			val[j] /= maxv
		}
	}
	return val
}

// Detect runs the full pipeline on a sparse profiling observation:
// completion of the missing resources, then similarity ranking against
// every training profile. Directly measured resources carry more weight in
// the match than completed (inferred) ones, since the latter inherit the
// training set's biases.
//
//bolt:hotpath
func (r *Recommender) Detect(observed []float64, known []bool) *Result {
	s := r.scratch.Get().(*detectScratch)
	defer r.scratch.Put(s)
	r.complete.CompleteInto(s.dense, observed, known)
	return r.detect(s.dense, known, s)
}

// DetectBatch runs Detect over a batch of observations that share one known
// mask — the shape of a multi-victim accuracy sweep, where every victim is
// probed on the same resources. The missing entries of all rows are
// recovered in one fused fold-in pass (CompleteBatchInto) and the ranking
// stage reuses a single centred-profile scratch across the batch, so N
// detections cost one batched completion plus N rankings instead of N of
// each. The completed-observation buffers are pooled on the Recommender, so
// at a steady batch size the only allocations are the returned Results.
// Each returned Result is bit-identical to Detect(observed[b], known)
// (pinned by TestDetectBatchBitExact).
func (r *Recommender) DetectBatch(observed [][]float64, known []bool) []*Result {
	out := make([]*Result, len(observed))
	if len(observed) == 0 {
		return out
	}
	bs := r.batch.Get().(*detectBatchScratch)
	defer r.batch.Put(bs)
	if cap(bs.flat) < len(observed)*r.n {
		bs.flat = make([]float64, len(observed)*r.n)
	}
	if cap(bs.dense) < len(observed) {
		bs.dense = make([][]float64, 0, len(observed))
	}
	flat := bs.flat[:len(observed)*r.n]
	dense := bs.dense[:0]
	for b := range observed {
		dense = append(dense, flat[b*r.n:(b+1)*r.n])
	}
	bs.dense = dense
	r.complete.CompleteBatchInto(dense, observed, known)
	s := r.scratch.Get().(*detectScratch)
	defer r.scratch.Put(s)
	for b := range dense {
		out[b] = r.detect(dense[b], known, s)
	}
	return out
}

// measuredBoost is the weight multiplier a directly profiled resource gets
// over an inferred one in the similarity computation.
const measuredBoost = 4.0

// proximityScale sets how quickly the proximity factor decays with the
// weighted RMS pressure distance between two profiles (in pressure
// percentage points).
const proximityScale = 25.0

// proximity returns exp(-wrmse/proximityScale) for the weighted RMS
// distance between two profiles; weights nil means uniform.
//
//bolt:hotpath
func proximity(a, b, weights []float64) float64 {
	num, den := 0.0, 0.0
	for j := range a {
		w := 1.0
		if weights != nil {
			w = weights[j]
		}
		d := a[j] - b[j]
		num += w * d * d
		den += w
	}
	if den == 0 {
		return 1
	}
	return math.Exp(-math.Sqrt(num/den) / proximityScale)
}

// DetectDense ranks a fully observed pressure vector against the training
// set without the completion step.
//
// The content-based stage applies Eq. 1's weighted Pearson correlation to
// the resource-space profiles, with per-resource weights derived from the
// retained similarity concepts (σₖ·|V[j][k]| summed over concepts): the
// resources that participate in strong similarity concepts count more, so
// the application-specific information about which resources matter is
// preserved — the paper's stated reason for rejecting the traditional
// unweighted coefficient.
//
//bolt:hotpath
func (r *Recommender) DetectDense(pressure []float64) *Result {
	s := r.scratch.Get().(*detectScratch)
	defer r.scratch.Put(s)
	return r.detect(pressure, nil, s)
}

// detect ranks pressure against the training profiles; known (optional)
// marks which entries were directly measured and should dominate the match.
// s supplies the working buffers; only the returned Result is allocated.
//
//bolt:hotpath
func (r *Recommender) detect(pressure []float64, known []bool, s *detectScratch) *Result {
	if len(pressure) != r.n {
		panic("mining: DetectDense length mismatch")
	}
	res := &Result{ //bolt:nolint hotalloc -- the escaping Result is the documented output; TestDetectAllocationBudget pins Detect at exactly these 3 allocs
		Pressure: append([]float64(nil), pressure...), //bolt:nolint hotalloc -- alloc 2 of 3 in the pinned budget: the caller keeps Pressure after scratch is recycled
		Matches:  make([]Match, len(r.profiles)),      //bolt:nolint hotalloc -- alloc 3 of 3 in the pinned budget: the caller keeps Matches after scratch is recycled
	}
	weights := r.weights
	if known != nil {
		weights = s.weights
		copy(weights, r.weights)
		for j, k := range known {
			if k {
				weights[j] *= measuredBoost
			}
		}
	}
	var u []float64
	if r.cfg.PureCF {
		copy(s.x, pressure)
		for j := range s.x {
			s.x[j] -= r.means[j]
		}
		r.svd.ProjectInto(s.u, s.x)
		u = s.u
	}
	// Centre by the training column means so that magnitude differences
	// become pattern differences: Pearson alone is scale-invariant and
	// cannot tell two profiles of the same shape at different intensities
	// apart, but "above-average LLC" vs "below-average LLC" anti-correlate
	// once centred — the same effect Eq. 1 gets from correlating in the
	// concept space of the centred SVD.
	centred := s.centred
	for j := range centred {
		centred[j] = pressure[j] - r.means[j]
	}
	// The content-based stage also exploits the contextual information the
	// correlation discards — how close the two profiles are in absolute
	// pressure. Two workloads with proportionally similar shapes but very
	// different intensities are not the same application; the proximity
	// factor (in (0, 1]) suppresses such matches while leaving near-copies
	// untouched.
	for i, p := range r.profiles {
		prof := r.centred[i*r.n : (i+1)*r.n]
		var sim float64
		switch {
		case r.cfg.PureCF:
			sim = CosineSimilarity(u, r.concepts[i])
		case r.cfg.Unweighted:
			// Pearson == WeightedPearson under all-ones weights; using the
			// precomputed ones avoids Pearson's per-call allocation.
			sim = WeightedPearson(centred, prof, r.ones) * proximity(pressure, p.Pressure, nil)
		default:
			sim = WeightedPearson(centred, prof, weights) * proximity(pressure, p.Pressure, weights)
		}
		res.Matches[i] = Match{Label: p.Label, Class: p.Class, Similarity: sim}
	}
	sortMatches(res.Matches)
	if r.cfg.PureCF {
		// Pure collaborative filtering cannot assign labels (§3.2): it only
		// clusters. Blank the labels so downstream accuracy metrics reflect
		// the paper's argument that CF alone is insufficient.
		for i := range res.Matches {
			res.Matches[i].Label = ""
		}
	}
	return res
}

// sortMatches orders matches by decreasing similarity, stably. A stable
// sort's output is uniquely determined by the comparator, so this binary
// insertion sort produces exactly the ordering sort.SliceStable used to —
// without the interface conversion and closure allocations, which were the
// last per-call allocations on the detection hot path. Training sets are a
// few hundred profiles, well inside insertion sort's comfort zone.
//
//bolt:hotpath
func sortMatches(m []Match) {
	for i := 1; i < len(m); i++ {
		x := m[i]
		// Binary search for the first position whose similarity is strictly
		// below x's: equal keys stay in input order (stability).
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if m[mid].Similarity >= x.Similarity {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		copy(m[lo+1:i+1], m[lo:i])
		m[lo] = x
	}
}
