package mining

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U Σ Vᵀ. U is m×r, V is
// n×r, and Sigma holds the r singular values in decreasing order. Bolt uses
// the singular values as "similarity concepts": large values correspond to
// strong cross-application correlations (e.g. compute intensity, coupled
// network+disk traffic), and the rows of U are the per-application
// coordinates in concept space.
type SVD struct {
	U     *Matrix   // left singular vectors, one row per application
	Sigma []float64 // singular values, decreasing
	V     *Matrix   // right singular vectors, one row per resource
}

// ComputeSVD returns the thin SVD of a via the one-sided Jacobi method,
// which is simple, numerically robust, and more than fast enough for the
// small matrices Bolt works with (hundreds of applications × ten resources).
func ComputeSVD(a *Matrix) *SVD {
	m, n := a.Rows, a.Cols
	if m == 0 || n == 0 {
		return &SVD{U: NewMatrix(m, 0), V: NewMatrix(n, 0)}
	}

	// Work on columns of A; accumulate rotations into V.
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const (
		eps      = 1e-12
		maxSweep = 60
	)
	for sweep := 0; sweep < maxSweep; sweep++ {
		off := 0.0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				alpha, beta, gamma := 0.0, 0.0, 0.0
				for i := 0; i < m; i++ {
					wp, wq := w.At(i, p), w.At(i, q)
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if math.Abs(gamma) <= eps*math.Sqrt(alpha*beta) {
					continue
				}
				off += gamma * gamma
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp, wq := w.At(i, p), w.At(i, q)
					w.Set(i, p, c*wp-s*wq)
					w.Set(i, q, s*wp+c*wq)
				}
				for i := 0; i < n; i++ {
					vp, vq := v.At(i, p), v.At(i, q)
					v.Set(i, p, c*vp-s*vq)
					v.Set(i, q, s*vp+c*vq)
				}
			}
		}
		if off < eps {
			break
		}
	}

	// Column norms of the rotated matrix are the singular values.
	type sv struct {
		val float64
		col int
	}
	svs := make([]sv, n)
	for j := 0; j < n; j++ {
		ss := 0.0
		for i := 0; i < m; i++ {
			ss += w.At(i, j) * w.At(i, j)
		}
		svs[j] = sv{math.Sqrt(ss), j}
	}
	sort.Slice(svs, func(i, j int) bool { return svs[i].val > svs[j].val })

	r := 0
	for _, s := range svs {
		if s.val > eps {
			r++
		}
	}
	out := &SVD{U: NewMatrix(m, r), Sigma: make([]float64, r), V: NewMatrix(n, r)}
	for k := 0; k < r; k++ {
		s := svs[k]
		out.Sigma[k] = s.val
		for i := 0; i < m; i++ {
			out.U.Set(i, k, w.At(i, s.col)/s.val)
		}
		for i := 0; i < n; i++ {
			out.V.Set(i, k, v.At(i, s.col))
		}
	}
	return out
}

// EnergyRank returns the smallest r such that the top r singular values
// preserve at least the given fraction of total energy: Σ_{i<r} σᵢ² ≥
// fraction · Σ σᵢ². The paper keeps 90% of the energy. It always returns at
// least 1 when any singular values exist.
func (s *SVD) EnergyRank(fraction float64) int {
	if len(s.Sigma) == 0 {
		return 0
	}
	total := 0.0
	for _, sv := range s.Sigma {
		total += sv * sv
	}
	if total == 0 {
		return 1
	}
	cum := 0.0
	for i, sv := range s.Sigma {
		cum += sv * sv
		if cum >= fraction*total {
			return i + 1
		}
	}
	return len(s.Sigma)
}

// Truncate returns a copy of the decomposition keeping only the first r
// singular values / vectors (dimensionality reduction).
func (s *SVD) Truncate(r int) *SVD {
	if r > len(s.Sigma) {
		r = len(s.Sigma)
	}
	t := &SVD{
		U:     NewMatrix(s.U.Rows, r),
		Sigma: make([]float64, r),
		V:     NewMatrix(s.V.Rows, r),
	}
	copy(t.Sigma, s.Sigma[:r])
	for i := 0; i < s.U.Rows; i++ {
		for k := 0; k < r; k++ {
			t.U.Set(i, k, s.U.At(i, k))
		}
	}
	for i := 0; i < s.V.Rows; i++ {
		for k := 0; k < r; k++ {
			t.V.Set(i, k, s.V.At(i, k))
		}
	}
	return t
}

// Reconstruct returns U Σ Vᵀ.
func (s *SVD) Reconstruct() *Matrix {
	m, n, r := s.U.Rows, s.V.Rows, len(s.Sigma)
	out := NewMatrix(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			sum := 0.0
			for k := 0; k < r; k++ {
				sum += s.U.At(i, k) * s.Sigma[k] * s.V.At(j, k)
			}
			out.Set(i, j, sum)
		}
	}
	return out
}

// Project maps a full resource-pressure row x (length n) into the r-dim
// concept space: u = x V Σ⁻¹. This is how a newly profiled application is
// placed among previously seen workloads.
func (s *SVD) Project(x []float64) []float64 {
	u := make([]float64, len(s.Sigma))
	s.ProjectInto(u, x)
	return u
}

// ProjectInto is Project writing the concept coordinates into u (length
// len(Sigma)) instead of allocating — the hot-path form used by the
// recommender's scratch-buffered detection.
func (s *SVD) ProjectInto(u, x []float64) {
	r := len(s.Sigma)
	if len(u) != r {
		panic("mining: ProjectInto dst length mismatch")
	}
	for k := 0; k < r; k++ {
		u[k] = 0
		if s.Sigma[k] == 0 {
			continue
		}
		sum := 0.0
		for j := 0; j < s.V.Rows; j++ {
			sum += x[j] * s.V.At(j, k)
		}
		u[k] = sum / s.Sigma[k]
	}
}
