//go:build race

package mining

// raceEnabled reports that the binary was built with -race. Under the race
// detector sync.Pool deliberately drops a fraction of pooled items to give
// the detector more interleavings to inspect, so allocation counts are
// inflated by design and the alloc-budget tests skip themselves.
const raceEnabled = true
