package mining

import (
	"testing"

	"bolt/internal/stats"
)

// batchObservations builds a batch of random sparse observations sharing the
// returned known mask (at least one entry known unless knownProb is 0).
func batchObservations(rng *stats.RNG, b, n int, knownProb float64) ([][]float64, []bool) {
	known := make([]bool, n)
	for j := range known {
		known[j] = rng.Bool(knownProb)
	}
	obs := make([][]float64, b)
	for i := range obs {
		obs[i] = make([]float64, n)
		for j := range obs[i] {
			if known[j] {
				obs[i][j] = rng.Range(0, 100)
			}
		}
	}
	return obs, known
}

// TestCompleteBatchIntoBitExact pins the tentpole claim: the fused
// multi-victim fold-in produces, row for row, exactly the bits of the solo
// CompleteInto loop — with the convergence gate on and off, across mask
// densities from empty to full, and across repeated calls (the pooled batch
// scratch must not leak state between batches).
func TestCompleteBatchIntoBitExact(t *testing.T) {
	const n = 10
	train := trainMatrix(11, 30, n)
	for _, cfg := range []CompletionConfig{
		{MaxVal: 100, Seed: 5},
		{MaxVal: 100, Seed: 5, FixedFoldIn: true},
	} {
		c := NewCompleter(train, cfg)
		rng := stats.NewRNG(99)
		for trial, knownProb := range []float64{0.2, 0.5, 0, 1, 0.3} {
			b := 1 + int(rng.Uint64()%7)
			obs, known := batchObservations(rng, b, n, knownProb)
			batched := make([][]float64, b)
			for i := range batched {
				batched[i] = make([]float64, n)
			}
			c.CompleteBatchInto(batched, obs, known)
			solo := make([]float64, n)
			for i := range obs {
				c.CompleteInto(solo, obs[i], known)
				for j := range solo {
					if batched[i][j] != solo[j] {
						t.Fatalf("fixed=%v trial %d: batched row %d col %d = %v, solo = %v",
							cfg.FixedFoldIn, trial, i, j, batched[i][j], solo[j])
					}
				}
			}
		}
	}
}

// TestCompleteBatchIntoDegenerate: an empty batch is a no-op, and a
// single-row batch matches the solo path exactly.
func TestCompleteBatchIntoDegenerate(t *testing.T) {
	const n = 10
	c := NewCompleter(trainMatrix(3, 20, n), CompletionConfig{MaxVal: 100, Seed: 2})
	c.CompleteBatchInto(nil, nil, nil) // empty batch: mask unchecked, nothing to do

	rng := stats.NewRNG(4)
	obs, known := batchObservations(rng, 1, n, 0.3)
	got := [][]float64{make([]float64, n)}
	c.CompleteBatchInto(got, obs, known)
	want := make([]float64, n)
	c.CompleteInto(want, obs[0], known)
	for j := range want {
		if got[0][j] != want[j] {
			t.Fatalf("single-row batch col %d = %v, solo = %v", j, got[0][j], want[j])
		}
	}
}

// TestDetectBatchBitExact pins the recommender layer: DetectBatch returns,
// per row, exactly the Result Detect would have returned — same completed
// pressure bits, same similarity bits, same ranking.
func TestDetectBatchBitExact(t *testing.T) {
	rng := stats.NewRNG(17)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{})
	n := rec.ResourceCount()
	for _, knownProb := range []float64{0.1, 0.4} {
		obs, known := batchObservations(rng, 6, n, knownProb)
		batched := rec.DetectBatch(obs, known)
		if len(batched) != len(obs) {
			t.Fatalf("DetectBatch returned %d results for %d rows", len(batched), len(obs))
		}
		for i, got := range batched {
			want := rec.Detect(obs[i], known)
			for j := range want.Pressure {
				if got.Pressure[j] != want.Pressure[j] {
					t.Fatalf("row %d pressure[%d] = %v, solo = %v", i, j, got.Pressure[j], want.Pressure[j])
				}
			}
			if len(got.Matches) != len(want.Matches) {
				t.Fatalf("row %d has %d matches, solo %d", i, len(got.Matches), len(want.Matches))
			}
			for m := range want.Matches {
				if got.Matches[m] != want.Matches[m] {
					t.Fatalf("row %d match %d = %+v, solo %+v", i, m, got.Matches[m], want.Matches[m])
				}
			}
		}
	}
	if out := rec.DetectBatch(nil, nil); len(out) != 0 {
		t.Fatalf("DetectBatch(nil) returned %d results", len(out))
	}
}
