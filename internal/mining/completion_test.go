package mining

import (
	"testing"
	"testing/quick"

	"bolt/internal/stats"
)

func trainMatrix(seed uint64, rows, cols int) *Matrix {
	rng := stats.NewRNG(seed)
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.Range(0, 100)
	}
	return m
}

func TestCompleterDeterministic(t *testing.T) {
	train := trainMatrix(1, 30, 10)
	a := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 5})
	b := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 5})
	obs := make([]float64, 10)
	known := make([]bool, 10)
	obs[2], known[2] = 40, true
	obs[7], known[7] = 60, true
	da, db := a.Complete(obs, known), b.Complete(obs, known)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("same seed diverged at %d: %v vs %v", i, da[i], db[i])
		}
	}
}

func TestCompleterPredictionsBoundedProperty(t *testing.T) {
	train := trainMatrix(2, 40, 10)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 1})
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		obs := make([]float64, 10)
		known := make([]bool, 10)
		for i := range obs {
			if rng.Bool(0.4) {
				obs[i] = rng.Range(0, 100)
				known[i] = true
			}
		}
		dense := c.Complete(obs, known)
		for i, v := range dense {
			if known[i] && v != obs[i] {
				return false // known entries must pass through untouched
			}
			if v < 0 || v > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestCompleterNoObservations(t *testing.T) {
	train := trainMatrix(3, 20, 10)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 1})
	dense := c.Complete(make([]float64, 10), make([]bool, 10))
	// With nothing known the neighbourhood falls back to column means,
	// blended with the (zero-factor) latent prediction: finite, in-range,
	// and non-degenerate.
	for j, v := range dense {
		if v < 0 || v > 100 {
			t.Fatalf("column %d out of range: %v", j, v)
		}
	}
	nonzero := 0
	for _, v := range dense {
		if v > 1 {
			nonzero++
		}
	}
	if nonzero < 5 {
		t.Fatal("observation-free completion should reflect the training means")
	}
}

func TestCompleterLengthMismatchPanics(t *testing.T) {
	train := trainMatrix(4, 10, 10)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100})
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	c.Complete(make([]float64, 3), make([]bool, 3))
}

func TestNeighbourEstimatePrefersCloseRows(t *testing.T) {
	// Two well-separated clusters; an observation near cluster A must be
	// completed with cluster A's values on the unobserved columns.
	rows := [][]float64{}
	for i := 0; i < 10; i++ {
		rows = append(rows, []float64{80, 80, 80, 10, 10, 10, 10, 10, 10, 10}) // cluster A
		rows = append(rows, []float64{10, 10, 10, 80, 80, 80, 80, 80, 80, 80}) // cluster B
	}
	c := NewCompleter(FromRows(rows), CompletionConfig{MaxVal: 100, Seed: 2})
	obs := make([]float64, 10)
	known := make([]bool, 10)
	obs[0], known[0] = 79, true
	obs[1], known[1] = 81, true
	dense := c.Complete(obs, known)
	if dense[2] < 60 {
		t.Fatalf("column 2 should follow cluster A (≈80), got %v", dense[2])
	}
	if dense[5] > 40 {
		t.Fatalf("column 5 should follow cluster A (≈10), got %v", dense[5])
	}
}

func TestRecommenderDetectDeterministic(t *testing.T) {
	rng := stats.NewRNG(6)
	profiles := synthTrain(rng)
	a := NewRecommender(profiles, RecommenderConfig{})
	b := NewRecommender(profiles, RecommenderConfig{})
	obs := []float64{80, 55, 30, 70, 40, 50, 35, 55, 2, 1}
	known := []bool{true, false, false, true, false, true, false, false, false, false}
	ra, rb := a.Detect(obs, known), b.Detect(obs, known)
	if ra.Best().Label != rb.Best().Label || ra.Best().Similarity != rb.Best().Similarity {
		t.Fatal("identical recommenders disagreed")
	}
}

func TestDetectDoesNotMutateInputs(t *testing.T) {
	rng := stats.NewRNG(7)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{})
	obs := []float64{80, 55, 30, 70, 40, 50, 35, 55, 2, 1}
	known := []bool{true, false, false, true, false, true, false, false, false, false}
	obsCopy := append([]float64(nil), obs...)
	rec.Detect(obs, known)
	for i := range obs {
		if obs[i] != obsCopy[i] {
			t.Fatal("Detect mutated its observation slice")
		}
	}
}

func TestConceptResourceLoadingShape(t *testing.T) {
	rng := stats.NewRNG(8)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{})
	m := rec.ConceptResourceLoading()
	if m.Rows != 10 || m.Cols != rec.Rank() {
		t.Fatalf("loading matrix %dx%d, want 10x%d", m.Rows, m.Cols, rec.Rank())
	}
	for _, v := range m.Data {
		if v < 0 {
			t.Fatal("loadings must be absolute values")
		}
	}
}

func TestSigmaDecreasing(t *testing.T) {
	rng := stats.NewRNG(9)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{})
	sigma := rec.Sigma()
	for i := 1; i < len(sigma); i++ {
		if sigma[i] > sigma[i-1] {
			t.Fatalf("singular values not decreasing: %v", sigma)
		}
	}
	// Sigma must be a copy: mutating it must not affect the recommender.
	sigma[0] = -1
	if rec.Sigma()[0] == -1 {
		t.Fatal("Sigma returned a live reference")
	}
}
