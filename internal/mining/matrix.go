// Package mining implements the online data-mining pipeline Bolt uses for
// application detection: dense linear algebra, singular value decomposition
// (one-sided Jacobi), SGD-based PQ matrix completion to recover unprofiled
// resources, and the weighted-Pearson hybrid recommender of Eq. 1 in the
// paper. Everything is implemented with the standard library only.
package mining

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mining: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromRows builds a matrix from a slice of equal-length rows.
func FromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic(fmt.Sprintf("mining: ragged row %d: %d != %d", i, len(r), m.Cols))
		}
		copy(m.Data[i*m.Cols:], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	out := make([]float64, m.Rows)
	for i := range out {
		out[i] = m.At(i, j)
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns the matrix product m × other.
func (m *Matrix) Mul(other *Matrix) *Matrix {
	if m.Cols != other.Rows {
		panic(fmt.Sprintf("mining: dimension mismatch %dx%d × %dx%d",
			m.Rows, m.Cols, other.Rows, other.Cols))
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Matrix) FrobeniusNorm() float64 {
	ss := 0.0
	for _, v := range m.Data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}
