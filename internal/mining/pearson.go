package mining

import "math"

// WeightedMean returns the σ-weighted mean of u: m(u;σ) = Σσᵢuᵢ / Σσᵢ.
func WeightedMean(u, sigma []float64) float64 {
	if len(u) != len(sigma) {
		panic("mining: WeightedMean length mismatch")
	}
	num, den := 0.0, 0.0
	for i := range u {
		num += sigma[i] * u[i]
		den += sigma[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// WeightedCov returns the σ-weighted covariance of a and b:
// cov(a,b;σ) = Σσᵢ(aᵢ−m(a;σ))(bᵢ−m(b;σ)) / Σσᵢ.
func WeightedCov(a, b, sigma []float64) float64 {
	if len(a) != len(b) || len(a) != len(sigma) {
		panic("mining: WeightedCov length mismatch")
	}
	ma, mb := WeightedMean(a, sigma), WeightedMean(b, sigma)
	num, den := 0.0, 0.0
	for i := range a {
		num += sigma[i] * (a[i] - ma) * (b[i] - mb)
		den += sigma[i]
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// WeightedPearson implements Eq. 1 of the paper: the Pearson correlation of
// two concept-space profiles under singular-value weights, so that stronger
// similarity concepts count more. It returns a value in [-1, 1]; 0 when
// either profile has zero weighted variance.
func WeightedPearson(a, b, sigma []float64) float64 {
	va := WeightedCov(a, a, sigma)
	vb := WeightedCov(b, b, sigma)
	if va <= 0 || vb <= 0 {
		return 0
	}
	r := WeightedCov(a, b, sigma) / math.Sqrt(va*vb)
	// Numerical safety: keep strictly within [-1, 1]. Huge finite inputs
	// can overflow both covariances to +Inf, making r = Inf/Inf = NaN —
	// which would slip through the clamps below — so NaN degrades to the
	// same "no signal" answer as zero variance. Pressure-scale data
	// ([0, 100]) never gets near overflow.
	if r != r {
		return 0
	}
	if r > 1 {
		r = 1
	}
	if r < -1 {
		r = -1
	}
	return r
}

// Pearson is the classic unweighted correlation coefficient, retained for
// the ablation study that compares it against the weighted form.
func Pearson(a, b []float64) float64 {
	ones := make([]float64, len(a))
	for i := range ones {
		ones[i] = 1
	}
	return WeightedPearson(a, b, ones)
}

// CosineSimilarity returns the cosine of the angle between a and b, used by
// the pure-collaborative-filtering ablation baseline.
func CosineSimilarity(a, b []float64) float64 {
	na, nb := Norm2(a), Norm2(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return Dot(a, b) / (na * nb)
}
