package mining

import (
	"math"
	"testing"
	"testing/quick"

	"bolt/internal/stats"
)

func TestWeightedMean(t *testing.T) {
	u := []float64{1, 2, 3}
	sigma := []float64{1, 1, 1}
	if m := WeightedMean(u, sigma); !almostEq(m, 2, 1e-12) {
		t.Fatalf("uniform WeightedMean = %v, want 2", m)
	}
	sigma = []float64{0, 0, 1}
	if m := WeightedMean(u, sigma); !almostEq(m, 3, 1e-12) {
		t.Fatalf("point-mass WeightedMean = %v, want 3", m)
	}
}

func TestWeightedMeanZeroWeights(t *testing.T) {
	if WeightedMean([]float64{1, 2}, []float64{0, 0}) != 0 {
		t.Fatal("zero-weight mean should be 0")
	}
}

func TestWeightedPearsonSelf(t *testing.T) {
	a := []float64{1, 5, 3, 2}
	sigma := []float64{4, 3, 2, 1}
	if r := WeightedPearson(a, a, sigma); !almostEq(r, 1, 1e-12) {
		t.Fatalf("self-correlation = %v, want 1", r)
	}
}

func TestWeightedPearsonAntiCorrelated(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{3, 2, 1}
	sigma := []float64{1, 1, 1}
	if r := WeightedPearson(a, b, sigma); !almostEq(r, -1, 1e-12) {
		t.Fatalf("anti-correlation = %v, want -1", r)
	}
}

func TestWeightedPearsonConstantVector(t *testing.T) {
	a := []float64{2, 2, 2}
	b := []float64{1, 5, 9}
	if r := WeightedPearson(a, b, []float64{1, 1, 1}); r != 0 {
		t.Fatalf("constant-vector correlation = %v, want 0", r)
	}
}

func TestWeightedPearsonMatchesUnweightedWithUniformSigma(t *testing.T) {
	rng := stats.NewRNG(41)
	a := make([]float64, 6)
	b := make([]float64, 6)
	ones := make([]float64, 6)
	for i := range a {
		a[i] = rng.Range(0, 10)
		b[i] = rng.Range(0, 10)
		ones[i] = 1
	}
	if w, u := WeightedPearson(a, b, ones), Pearson(a, b); !almostEq(w, u, 1e-12) {
		t.Fatalf("uniform-weight Pearson %v != classic %v", w, u)
	}
}

func TestWeightedPearsonBounded(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(10)
		a := make([]float64, n)
		b := make([]float64, n)
		sigma := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Range(-100, 100)
			b[i] = rng.Range(-100, 100)
			sigma[i] = rng.Range(0.01, 10)
		}
		r := WeightedPearson(a, b, sigma)
		return r >= -1 && r <= 1 && !math.IsNaN(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestWeightedPearsonSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 3 + rng.Intn(8)
		a := make([]float64, n)
		b := make([]float64, n)
		sigma := make([]float64, n)
		for i := 0; i < n; i++ {
			a[i] = rng.Range(0, 100)
			b[i] = rng.Range(0, 100)
			sigma[i] = rng.Range(0.1, 5)
		}
		return almostEq(WeightedPearson(a, b, sigma), WeightedPearson(b, a, sigma), 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineSimilarity(t *testing.T) {
	if c := CosineSimilarity([]float64{1, 0}, []float64{0, 1}); c != 0 {
		t.Fatalf("orthogonal cosine = %v, want 0", c)
	}
	if c := CosineSimilarity([]float64{2, 2}, []float64{1, 1}); !almostEq(c, 1, 1e-12) {
		t.Fatalf("parallel cosine = %v, want 1", c)
	}
	if c := CosineSimilarity([]float64{0, 0}, []float64{1, 1}); c != 0 {
		t.Fatal("zero-vector cosine should be 0")
	}
}

// synthTrain builds a small synthetic training set with three clearly
// distinct resource archetypes plus within-class variation.
func synthTrain(rng *stats.RNG) []LabeledProfile {
	base := map[string][]float64{
		// 10 resources: L1i L1d L2 LLC memC memBW CPU netBW diskC diskBW
		"memcached": {90, 60, 30, 80, 40, 50, 35, 60, 0, 0},
		"hadoop":    {30, 40, 35, 40, 50, 45, 70, 40, 80, 75},
		"spark":     {40, 55, 40, 70, 85, 90, 60, 30, 20, 15},
	}
	var out []LabeledProfile
	for class, b := range base {
		for v := 0; v < 8; v++ {
			p := make([]float64, len(b))
			for i, x := range b {
				p[i] = stats.Clamp(x+rng.Norm(0, 4), 0, 100)
			}
			out = append(out, LabeledProfile{
				Label:    class + ":variant",
				Class:    class,
				Pressure: p,
			})
		}
	}
	return out
}

func TestCompleterFitsTraining(t *testing.T) {
	rng := stats.NewRNG(7)
	profiles := synthTrain(rng)
	rows := make([][]float64, len(profiles))
	for i, p := range profiles {
		rows[i] = p.Pressure
	}
	train := FromRows(rows)
	c := NewCompleter(train, CompletionConfig{MaxVal: 100, Seed: 1})
	// Reconstruction error on training cells should be modest.
	sumErr, cells := 0.0, 0
	for i := 0; i < train.Rows; i++ {
		for j := 0; j < train.Cols; j++ {
			sumErr += math.Abs(c.Predict(i, j) - train.At(i, j))
			cells++
		}
	}
	if mae := sumErr / float64(cells); mae > 8 {
		t.Fatalf("training MAE = %v, want < 8", mae)
	}
}

func TestCompleterRecoversMissing(t *testing.T) {
	rng := stats.NewRNG(8)
	profiles := synthTrain(rng)
	rows := make([][]float64, len(profiles))
	for i, p := range profiles {
		rows[i] = p.Pressure
	}
	c := NewCompleter(FromRows(rows), CompletionConfig{MaxVal: 100, Seed: 2})

	// Observe only three entries of a fresh memcached-like profile; the
	// completion should predict near-zero disk pressure (memcached's
	// signature) rather than the column mean.
	truth := []float64{88, 62, 28, 78, 42, 52, 33, 58, 2, 1}
	known := []bool{true, false, false, true, false, true, false, false, false, false}
	dense := c.Complete(truth, known)
	for j, k := range known {
		if k && dense[j] != truth[j] {
			t.Fatalf("known entry %d overwritten: %v != %v", j, dense[j], truth[j])
		}
	}
	if dense[8] > 40 || dense[9] > 40 {
		t.Fatalf("disk pressure should be recovered as low: %v, %v", dense[8], dense[9])
	}
	for j, v := range dense {
		if v < 0 || v > 100 {
			t.Fatalf("completed value %d out of range: %v", j, v)
		}
	}
}

func TestRecommenderRanksCorrectClass(t *testing.T) {
	rng := stats.NewRNG(9)
	profiles := synthTrain(rng)
	rec := NewRecommender(profiles, RecommenderConfig{})

	victim := []float64{89, 58, 31, 79, 41, 49, 36, 61, 1, 0} // memcached-like
	res := rec.DetectDense(victim)
	if res.Best().Class != "memcached" {
		t.Fatalf("best match class = %q, want memcached (matches: %v)",
			res.Best().Class, res.Matches[:3])
	}
	if !res.Confident() {
		t.Fatalf("clean signal should be confident: best sim %v", res.Best().Similarity)
	}
}

func TestRecommenderSparseDetection(t *testing.T) {
	rng := stats.NewRNG(10)
	profiles := synthTrain(rng)
	rec := NewRecommender(profiles, RecommenderConfig{})

	victim := []float64{42, 53, 38, 72, 83, 88, 62, 28, 18, 14} // spark-like
	known := make([]bool, 10)
	known[0], known[3], known[5] = true, true, true // L1i, LLC, memBW probes
	res := rec.Detect(victim, known)
	if res.Best().Class != "spark" {
		t.Fatalf("sparse detection class = %q, want spark", res.Best().Class)
	}
	if len(res.Pressure) != 10 {
		t.Fatal("completed pressure vector has wrong length")
	}
}

func TestRecommenderMatchesSorted(t *testing.T) {
	rng := stats.NewRNG(11)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{})
	res := rec.DetectDense([]float64{50, 50, 50, 50, 50, 50, 50, 50, 50, 50})
	for i := 1; i < len(res.Matches); i++ {
		if res.Matches[i].Similarity > res.Matches[i-1].Similarity {
			t.Fatal("matches not sorted by decreasing similarity")
		}
	}
}

func TestRecommenderPureCFHasNoLabels(t *testing.T) {
	rng := stats.NewRNG(12)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{PureCF: true})
	res := rec.DetectDense([]float64{89, 58, 31, 79, 41, 49, 36, 61, 1, 0})
	for _, m := range res.Matches {
		if m.Label != "" {
			t.Fatal("pure CF should not assign labels")
		}
	}
}

func TestRecommenderEnergyRankRespondsToConfig(t *testing.T) {
	rng := stats.NewRNG(13)
	profiles := synthTrain(rng)
	low := NewRecommender(profiles, RecommenderConfig{EnergyFraction: 0.5})
	high := NewRecommender(profiles, RecommenderConfig{EnergyFraction: 0.9999})
	if low.Rank() > high.Rank() {
		t.Fatalf("rank should grow with energy fraction: %d vs %d", low.Rank(), high.Rank())
	}
}

func TestRecommenderResourceValueNormalised(t *testing.T) {
	rng := stats.NewRNG(14)
	rec := NewRecommender(synthTrain(rng), RecommenderConfig{})
	val := rec.ResourceValue()
	if len(val) != 10 {
		t.Fatal("ResourceValue length wrong")
	}
	maxSeen := 0.0
	for _, v := range val {
		if v < 0 || v > 1 {
			t.Fatalf("resource value out of [0,1]: %v", v)
		}
		if v > maxSeen {
			maxSeen = v
		}
	}
	if !almostEq(maxSeen, 1, 1e-12) {
		t.Fatalf("max resource value = %v, want 1", maxSeen)
	}
}

func TestRecommenderEmptyTrainingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty training set did not panic")
		}
	}()
	NewRecommender(nil, RecommenderConfig{})
}

func TestResultBestEmpty(t *testing.T) {
	r := &Result{}
	if r.Best().Label != "" || r.Confident() {
		t.Fatal("empty result should have zero Best and not be confident")
	}
}
