package mining

import (
	"math"

	"bolt/internal/stats"
)

// CompletionConfig tunes the SGD PQ-reconstruction used to recover the
// pressure a victim places on resources Bolt did not profile directly.
type CompletionConfig struct {
	Rank      int     // latent factor dimensionality; 0 means min(n, 6)
	LearnRate float64 // SGD step size; 0 means 0.005
	Reg       float64 // L2 regularisation; 0 means 0.02
	Epochs    int     // SGD passes over the known ratings; 0 means 400
	Seed      uint64  // factor initialisation seed
	MinVal    float64 // clamp floor for predictions (pressure: 0)
	MaxVal    float64 // clamp ceiling for predictions (pressure: 100)
	unbounded bool
}

func (c CompletionConfig) withDefaults(n int) CompletionConfig {
	if c.Rank <= 0 {
		c.Rank = 6
		if n < c.Rank {
			c.Rank = n
		}
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.005
	}
	if c.Reg == 0 {
		c.Reg = 0.02
	}
	if c.Epochs == 0 {
		c.Epochs = 400
	}
	if c.MinVal == 0 && c.MaxVal == 0 {
		c.unbounded = true
	}
	return c
}

// Completer performs PQ matrix completion with stochastic gradient descent:
// it factorises the training utility matrix A ≈ P Qᵀ, then folds in a new
// sparse row (the 2-3 profiled resources) to predict the missing entries.
// This is the collaborative-filtering half of Bolt's hybrid recommender.
//
// The raw fold-in is poorly conditioned when the number of observations is
// close to the factor rank (exactly-determined interpolation extrapolates
// wildly on the unobserved coordinates), so predictions are anchored by a
// neighbourhood term: a similarity-weighted average over the training rows
// closest to the observation on its known coordinates.
type Completer struct {
	cfg   CompletionConfig
	p     *Matrix // m×r application factors
	q     *Matrix // n×r resource factors
	train *Matrix // retained for the neighbourhood term
	n     int
}

// NewCompleter factorises the dense training matrix (one row per training
// application, one column per resource, entries in [0,100]).
func NewCompleter(train *Matrix, cfg CompletionConfig) *Completer {
	cfg = cfg.withDefaults(train.Cols)
	c := &Completer{cfg: cfg, train: train.Clone(), n: train.Cols}
	rng := stats.NewRNG(cfg.Seed ^ 0xb0172017)

	m, n, r := train.Rows, train.Cols, cfg.Rank
	c.p = NewMatrix(m, r)
	c.q = NewMatrix(n, r)
	for i := range c.p.Data {
		c.p.Data[i] = rng.Norm(0, 0.1)
	}
	for i := range c.q.Data {
		c.q.Data[i] = rng.Norm(0, 0.1)
	}

	// SGD over all (i, j) cells of the dense training matrix.
	type cell struct{ i, j int }
	cells := make([]cell, 0, m*n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			cells = append(cells, cell{i, j})
		}
	}
	lr, reg := cfg.LearnRate, cfg.Reg
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for _, idx := range rng.Perm(len(cells)) {
			cl := cells[idx]
			pi := c.p.Data[cl.i*r : (cl.i+1)*r]
			qj := c.q.Data[cl.j*r : (cl.j+1)*r]
			pred := Dot(pi, qj)
			err := train.At(cl.i, cl.j) - pred
			for k := 0; k < r; k++ {
				pk, qk := pi[k], qj[k]
				pi[k] += lr * (err*qk - reg*pk)
				qj[k] += lr * (err*pk - reg*qk)
			}
		}
	}
	return c
}

// Complete folds a sparse observation vector into the learned factor space
// and returns the dense prediction. known[j] must be true where observed[j]
// is a real measurement; other entries of observed are ignored. When fewer
// than one entry is known the training column means are returned.
func (c *Completer) Complete(observed []float64, known []bool) []float64 {
	if len(observed) != c.n || len(known) != c.n {
		panic("mining: Complete length mismatch")
	}
	r := c.cfg.Rank

	// Solve for the new row's factors by ridge-regularised least squares on
	// the known entries, iterated a few times for stability (equivalent to
	// fold-in SGD but deterministic).
	u := make([]float64, r)
	// The fold-in row has very few observations; the training-time
	// regulariser would shrink it toward zero and bias every prediction
	// low, so it is relaxed here.
	lr, reg := 0.01, c.cfg.Reg*0.1
	for it := 0; it < 2000; it++ {
		for j := 0; j < c.n; j++ {
			if !known[j] {
				continue
			}
			qj := c.q.Data[j*r : (j+1)*r]
			err := observed[j] - Dot(u, qj)
			for k := 0; k < r; k++ {
				u[k] += lr * (err*qj[k] - reg*u[k])
			}
		}
	}

	neighbour := c.neighbourEstimate(observed, known)
	out := make([]float64, c.n)
	for j := 0; j < c.n; j++ {
		if known[j] {
			out[j] = observed[j]
			continue
		}
		qj := c.q.Data[j*r : (j+1)*r]
		v := Dot(u, qj)
		if !c.cfg.unbounded {
			v = clamp(v, c.cfg.MinVal, c.cfg.MaxVal)
		}
		// Blend the latent-factor prediction with the neighbourhood
		// estimate; the latter dominates because it can only produce
		// pressure values actually seen in training.
		out[j] = 0.3*v + 0.7*neighbour[j]
	}
	return out
}

// neighbourEstimate predicts every column as the similarity-weighted mean
// of the training rows nearest to the observation on its known coordinates.
// Weights follow a Gaussian kernel on the RMS distance, so close rows
// dominate and far rows contribute nothing.
func (c *Completer) neighbourEstimate(observed []float64, known []bool) []float64 {
	const kernelWidth = 12.0 // pressure points
	est := make([]float64, c.n)
	wsum := 0.0
	for i := 0; i < c.train.Rows; i++ {
		d, k := 0.0, 0
		for j := 0; j < c.n; j++ {
			if !known[j] {
				continue
			}
			diff := observed[j] - c.train.At(i, j)
			d += diff * diff
			k++
		}
		if k == 0 {
			continue
		}
		rms := d / float64(k)
		w := gaussKernel(rms, kernelWidth)
		if w == 0 {
			continue
		}
		wsum += w
		for j := 0; j < c.n; j++ {
			est[j] += w * c.train.At(i, j)
		}
	}
	if wsum == 0 {
		// Nothing nearby (or nothing known): fall back to column means.
		for j := 0; j < c.n; j++ {
			sum := 0.0
			for i := 0; i < c.train.Rows; i++ {
				sum += c.train.At(i, j)
			}
			if c.train.Rows > 0 {
				est[j] = sum / float64(c.train.Rows)
			}
		}
		return est
	}
	for j := 0; j < c.n; j++ {
		est[j] /= wsum
	}
	return est
}

// gaussKernel returns exp(−rms²/(2w²)) given the squared RMS distance,
// cutting off to exactly zero for far rows.
func gaussKernel(rmsSquared, width float64) float64 {
	x := rmsSquared / (2 * width * width)
	if x > 30 {
		return 0
	}
	return math.Exp(-x)
}

// Predict returns the model's reconstruction of training cell (i, j); used
// by tests to verify the factorisation fits the training data.
func (c *Completer) Predict(i, j int) float64 {
	r := c.cfg.Rank
	v := Dot(c.p.Data[i*r:(i+1)*r], c.q.Data[j*r:(j+1)*r])
	if !c.cfg.unbounded {
		v = clamp(v, c.cfg.MinVal, c.cfg.MaxVal)
	}
	return v
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
