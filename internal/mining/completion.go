package mining

import (
	"math"
	"sync"
	"sync/atomic"

	"bolt/internal/stats"
)

// foldInIters is the fixed iteration budget of the fold-in solve. With the
// convergence gate (the default) it is an upper bound that is rarely reached;
// with FixedFoldIn it is the exact iteration count.
const foldInIters = 2000

// foldInTol is the convergence-gate threshold: the fold-in stops once a full
// sweep moves no factor coordinate by more than 2⁻⁴⁸·‖u‖∞ — sixteen times
// the double-precision machine epsilon, i.e. a handful of ULPs. Beyond that
// point the iteration is only toggling last bits (measured residual drift to
// the full 2000-sweep result is below 4e-13 on every probed observation,
// eleven orders of magnitude under the 0.1-pressure-point resolution any
// experiment reports), so typical observations stop after 40-250 sweeps
// instead of 2000. The determinism parity test runs the entire experiment
// suite with the gate on and off and asserts byte-identical output.
const foldInTol = 0x1p-48

// forceFixedFoldIn globally disables the fold-in convergence gate, as if
// every CompletionConfig had FixedFoldIn set. It exists for the determinism
// parity test, which runs the whole experiment suite both ways inside one
// binary and asserts byte-identical output. Atomic because the parallel
// experiment runner calls Complete from many goroutines.
var forceFixedFoldIn atomic.Bool

// SetForceFixedFoldIn toggles the global fold-in escape hatch (see
// FixedFoldIn). Intended for tests; the default false enables the gate.
func SetForceFixedFoldIn(v bool) { forceFixedFoldIn.Store(v) }

// CompletionConfig tunes the SGD PQ-reconstruction used to recover the
// pressure a victim places on resources Bolt did not profile directly.
type CompletionConfig struct {
	Rank      int     // latent factor dimensionality; 0 means min(n, 6)
	LearnRate float64 // SGD step size; 0 means 0.005
	Reg       float64 // L2 regularisation; 0 means 0.02
	Epochs    int     // SGD passes over the known ratings; 0 means 400
	Seed      uint64  // factor initialisation seed
	MinVal    float64 // clamp floor for predictions (pressure: 0)
	MaxVal    float64 // clamp ceiling for predictions (pressure: 100)
	// Unbounded disables the [MinVal, MaxVal] clamp explicitly.
	//
	// Deprecated implicit rule, kept for backward compatibility: leaving
	// MinVal and MaxVal both zero also disables the clamp. New code should
	// set Unbounded instead — the implicit rule makes "clamp to exactly 0"
	// inexpressible and will be removed once no caller relies on it.
	Unbounded bool
	// FixedFoldIn forces Complete to run the full fold-in iteration budget
	// instead of stopping at the convergence gate. The gated solve tracks
	// the fixed one to within a few ULPs (the gate only skips sweeps whose
	// largest coordinate move is below 2⁻⁴⁸·‖u‖∞), which no consumer of
	// completed pressure resolves — except code that feeds the raw floats
	// onward into further simulation, like the DoS attack planners, which
	// set this flag to reproduce the historical fixed-sweep arithmetic bit
	// for bit. The determinism parity test runs the experiment suite both
	// ways and asserts byte-identical output.
	FixedFoldIn bool
	unbounded   bool
}

func (c CompletionConfig) withDefaults(n int) CompletionConfig {
	if c.Rank <= 0 {
		c.Rank = 6
		if n < c.Rank {
			c.Rank = n
		}
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.005
	}
	if c.Reg == 0 {
		c.Reg = 0.02
	}
	if c.Epochs == 0 {
		c.Epochs = 400
	}
	if c.Unbounded || (c.MinVal == 0 && c.MaxVal == 0) {
		c.unbounded = true
	}
	return c
}

// completeScratch holds the per-call working memory of Complete, pooled so
// steady-state completions allocate nothing beyond the returned slice.
type completeScratch struct {
	u     []float64 // fold-in factor row (rank)
	uPrev []float64 // sweep-boundary snapshot for the convergence gate
	est   []float64 // neighbourhood estimate (n)
	kidx  []int     // indices of the known observations
}

// batchScratch is the working memory of one CompleteBatchInto call, pooled on
// the Completer and regrown in place when a larger batch arrives, so repeated
// batched completions at a steady batch size allocate nothing.
type batchScratch struct {
	us   []float64 // B×r fold-in factor rows
	prev []float64 // B×r sweep-boundary snapshots for the convergence gate
	errs []float64 // per-row residual at the current column (B)
	ws   []float64 // per-row kernel weight at the current training row (B)
	wsum []float64 // per-row kernel weight totals (B)
	act  []bool    // rows whose fold-in has not yet converged (B)
	ests []float64 // B×n neighbourhood estimates
	kidx []int     // indices of the known observations (shared mask)
}

func (s *batchScratch) grow(b, r, n int) {
	if cap(s.us) < b*r {
		s.us = make([]float64, b*r)
		s.prev = make([]float64, b*r)
	}
	if cap(s.errs) < b {
		s.errs = make([]float64, b)
		s.ws = make([]float64, b)
		s.wsum = make([]float64, b)
		s.act = make([]bool, b)
	}
	if cap(s.ests) < b*n {
		s.ests = make([]float64, b*n)
	}
	if cap(s.kidx) < n {
		s.kidx = make([]int, 0, n)
	}
}

// Completer performs PQ matrix completion with stochastic gradient descent:
// it factorises the training utility matrix A ≈ P Qᵀ, then folds in a new
// sparse row (the 2-3 profiled resources) to predict the missing entries.
// This is the collaborative-filtering half of Bolt's hybrid recommender.
//
// The raw fold-in is poorly conditioned when the number of observations is
// close to the factor rank (exactly-determined interpolation extrapolates
// wildly on the unobserved coordinates), so predictions are anchored by a
// neighbourhood term: a similarity-weighted average over the training rows
// closest to the observation on its known coordinates.
//
// A Completer is immutable after NewCompleter and safe for concurrent use;
// per-call state lives in a sync.Pool of scratch buffers.
type Completer struct {
	cfg      CompletionConfig
	p        *Matrix   // m×r application factors
	q        *Matrix   // n×r resource factors
	train    *Matrix   // retained for the neighbourhood term
	colMeans []float64 // training column means (neighbourhood fallback)
	n        int
	scratch  sync.Pool // *completeScratch
	batch    sync.Pool // *batchScratch
}

// NewCompleter factorises the dense training matrix (one row per training
// application, one column per resource, entries in [0,100]).
func NewCompleter(train *Matrix, cfg CompletionConfig) *Completer {
	cfg = cfg.withDefaults(train.Cols)
	c := &Completer{cfg: cfg, train: train.Clone(), n: train.Cols}
	rng := stats.NewRNG(cfg.Seed ^ 0xb0172017)

	m, n, r := train.Rows, train.Cols, cfg.Rank
	c.p = NewMatrix(m, r)
	c.q = NewMatrix(n, r)
	for i := range c.p.Data {
		c.p.Data[i] = rng.Norm(0, 0.1)
	}
	for i := range c.q.Data {
		c.q.Data[i] = rng.Norm(0, 0.1)
	}

	// SGD over all cells of the dense training matrix. Cell k of the
	// row-major Data slice is (k/n, k%n), so the flat index doubles as the
	// (i, j) pair and the permutation buffer is the only epoch state —
	// PermInto reshuffles it in place with the exact random stream Perm
	// would consume, making every epoch allocation-free and byte-identical
	// to the historical per-epoch rng.Perm.
	lr, reg := cfg.LearnRate, cfg.Reg
	perm := make([]int, m*n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.PermInto(perm)
		for _, idx := range perm {
			i, j := idx/n, idx%n
			pi := c.p.Data[i*r : (i+1)*r : (i+1)*r]
			qj := c.q.Data[j*r : (j+1)*r : (j+1)*r]
			err := train.Data[idx] - Dot(pi, qj)
			sgdStep(pi, qj, lr, err, reg)
		}
	}

	c.colMeans = make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			sum += c.train.At(i, j)
		}
		if m > 0 {
			c.colMeans[j] = sum / float64(m)
		}
	}
	c.scratch.New = func() any {
		return &completeScratch{
			u:     make([]float64, r),
			uPrev: make([]float64, r),
			est:   make([]float64, n),
			kidx:  make([]int, 0, n),
		}
	}
	c.batch.New = func() any { return &batchScratch{} }
	return c
}

// Complete folds a sparse observation vector into the learned factor space
// and returns the dense prediction. known[j] must be true where observed[j]
// is a real measurement; other entries of observed are ignored. When fewer
// than one entry is known the training column means are returned.
func (c *Completer) Complete(observed []float64, known []bool) []float64 {
	out := make([]float64, c.n)
	c.CompleteInto(out, observed, known)
	return out
}

// CompleteInto is Complete writing its prediction into dst (length n)
// instead of allocating it — the allocation-free form the recommender's
// detection hot path uses. dst may alias neither observed nor the scratch
// internals; it is fully overwritten.
//
//bolt:hotpath
func (c *Completer) CompleteInto(dst, observed []float64, known []bool) {
	if len(observed) != c.n || len(known) != c.n {
		panic("mining: Complete length mismatch")
	}
	if len(dst) != c.n {
		panic("mining: CompleteInto dst length mismatch")
	}
	r := c.cfg.Rank
	s := c.scratch.Get().(*completeScratch)
	defer c.scratch.Put(s)

	s.kidx = s.kidx[:0]
	for j, k := range known {
		if k {
			s.kidx = append(s.kidx, j)
		}
	}

	// Solve for the new row's factors by ridge-regularised least squares on
	// the known entries, iterated for stability (equivalent to fold-in SGD
	// but deterministic). The loop is gated (see foldInTol): once a full
	// sweep's largest coordinate delta underflows machine precision the
	// solve is only toggling last bits and stops — a ~10x iteration drop on
	// typical observations with no observable output change.
	u := s.u[:r]
	prev := s.uPrev[:r]
	for k := range u {
		u[k] = 0
	}
	// The fold-in row has very few observations; the training-time
	// regulariser would shrink it toward zero and bias every prediction
	// low, so it is relaxed here.
	lr, reg := 0.01, c.cfg.Reg*0.1
	fixed := c.cfg.FixedFoldIn || forceFixedFoldIn.Load()
	if r == 6 {
		// The default rank; the specialised solve keeps the six factor
		// coordinates in registers across the whole gated loop.
		foldSolve6(u, c.q.Data, s.kidx, observed, lr, reg, fixed)
	} else {
		for it := 0; it < foldInIters; it++ {
			copy(prev, u)
			for _, j := range s.kidx {
				qj := c.q.Data[j*r : (j+1)*r : (j+1)*r]
				err := observed[j] - Dot(u, qj)
				foldStep(u, qj, lr, err, reg)
			}
			if fixed {
				continue
			}
			maxDelta, maxU := 0.0, 0.0
			for k := range u {
				if d := math.Abs(u[k] - prev[k]); d > maxDelta {
					maxDelta = d
				}
				if a := math.Abs(u[k]); a > maxU {
					maxU = a
				}
			}
			if maxDelta <= foldInTol*maxU {
				break
			}
		}
	}

	neighbour := c.neighbourEstimate(s, observed)
	for j := 0; j < c.n; j++ {
		if known[j] {
			dst[j] = observed[j]
			continue
		}
		qj := c.q.Data[j*r : (j+1)*r]
		v := Dot(u, qj)
		if !c.cfg.unbounded {
			v = clamp(v, c.cfg.MinVal, c.cfg.MaxVal)
		}
		// Blend the latent-factor prediction with the neighbourhood
		// estimate; the latter dominates because it can only produce
		// pressure values actually seen in training.
		dst[j] = 0.3*v + 0.7*neighbour[j]
	}
}

// CompleteBatchInto completes a batch of sparse observations that share one
// known mask — the shape of a multi-victim accuracy sweep, where every victim
// is probed on the same resources — in a single fused fold-in pass.
// dst and observed are parallel slices of B rows, each of length n; row b of
// dst receives exactly what CompleteInto(dst[b], observed[b], known) would
// have produced, bit for bit (pinned by TestCompleteBatchIntoBitExact).
//
// The fusion is in the loop order: each fold-in sweep walks the known columns
// once and applies that column's update to every still-unconverged row
// (DotRows/FoldStepRows), so the r-vector q[j] is loaded once per sweep for
// the whole batch instead of once per victim; likewise the neighbourhood term
// streams each training row once and folds it into every estimate (AxpyRows).
// Per row, the floating-point op sequence is unchanged — rows are independent
// in the solve, so reordering across rows cannot change any row's bits — and
// the convergence gate is tracked per row, each stopping at the same sweep it
// would have stopped at alone.
func (c *Completer) CompleteBatchInto(dst, observed [][]float64, known []bool) {
	if len(dst) != len(observed) {
		panic("mining: CompleteBatchInto batch size mismatch")
	}
	nb := len(observed)
	if nb == 0 {
		return
	}
	if len(known) != c.n {
		panic("mining: Complete length mismatch")
	}
	for b := range observed {
		if len(observed[b]) != c.n {
			panic("mining: Complete length mismatch")
		}
		if len(dst[b]) != c.n {
			panic("mining: CompleteInto dst length mismatch")
		}
	}
	r := c.cfg.Rank
	s := c.batch.Get().(*batchScratch)
	defer c.batch.Put(s)
	s.grow(nb, r, c.n)

	kidx := s.kidx[:0]
	for j, k := range known {
		if k {
			kidx = append(kidx, j)
		}
	}
	s.kidx = kidx

	// Batched fold-in: the solo solve's sweep loop with the row loop moved
	// inside the column loop. Row b's updates against column j happen in the
	// same sweep, in the same ascending-kidx order, with the same values as
	// in CompleteInto, so each row's factor trajectory is identical.
	us := s.us[:nb*r]
	prev := s.prev[:nb*r]
	errs := s.errs[:nb]
	act := s.act[:nb]
	for i := range us {
		us[i] = 0
	}
	remaining := nb
	for b := range act {
		act[b] = true
	}
	lr, reg := 0.01, c.cfg.Reg*0.1
	fixed := c.cfg.FixedFoldIn || forceFixedFoldIn.Load()
	for it := 0; it < foldInIters && remaining > 0; it++ {
		copy(prev, us)
		for _, j := range kidx {
			qj := c.q.Data[j*r : (j+1)*r : (j+1)*r]
			DotRows(us, r, qj, errs, act)
			for b, a := range act {
				if a {
					errs[b] = observed[b][j] - errs[b]
				}
			}
			FoldStepRows(us, r, qj, lr, errs, reg, act)
		}
		if fixed {
			continue
		}
		for b, a := range act {
			if !a {
				continue
			}
			u := us[b*r : (b+1)*r]
			pv := prev[b*r : (b+1)*r]
			maxDelta, maxU := 0.0, 0.0
			for k := range u {
				if d := math.Abs(u[k] - pv[k]); d > maxDelta {
					maxDelta = d
				}
				if m := math.Abs(u[k]); m > maxU {
					maxU = m
				}
			}
			if maxDelta <= foldInTol*maxU {
				act[b] = false
				remaining--
			}
		}
	}

	ests := c.neighbourEstimateBatch(s, observed)
	for b := range dst {
		u := us[b*r : (b+1)*r]
		neighbour := ests[b*c.n : (b+1)*c.n]
		db, ob := dst[b], observed[b]
		for j := 0; j < c.n; j++ {
			if known[j] {
				db[j] = ob[j]
				continue
			}
			qj := c.q.Data[j*r : (j+1)*r]
			v := Dot(u, qj)
			if !c.cfg.unbounded {
				v = clamp(v, c.cfg.MinVal, c.cfg.MaxVal)
			}
			db[j] = 0.3*v + 0.7*neighbour[j]
		}
	}
}

// neighbourEstimateBatch is neighbourEstimate with the training-row loop
// hoisted outside the batch: each training row is read from memory once and
// accumulated into every observation's estimate (AxpyRows), instead of being
// re-streamed per victim. Per row b the weight sequence, the w == 0 skip, and
// the ascending-i accumulation order all match the solo kernel, so ests row b
// is bit-identical to neighbourEstimate(·, observed[b]). The returned flat
// B×n slice is s.ests, valid until the scratch is reused.
func (c *Completer) neighbourEstimateBatch(s *batchScratch, observed [][]float64) []float64 {
	nb := len(observed)
	ests := s.ests[:nb*c.n]
	for i := range ests {
		ests[i] = 0
	}
	if len(s.kidx) == 0 {
		// Nothing known: fall back to column means.
		for b := 0; b < nb; b++ {
			copy(ests[b*c.n:(b+1)*c.n], c.colMeans)
		}
		return ests
	}
	ws := s.ws[:nb]
	wsum := s.wsum[:nb]
	for b := range wsum {
		wsum[b] = 0
	}
	for i := 0; i < c.train.Rows; i++ {
		row := c.train.Data[i*c.n : (i+1)*c.n]
		for b := 0; b < nb; b++ {
			d := 0.0
			ob := observed[b]
			for _, j := range s.kidx {
				diff := ob[j] - row[j]
				d += diff * diff
			}
			rms := d / float64(len(s.kidx))
			w := gaussKernel(rms, kernelWidth)
			ws[b] = w
			if w != 0 {
				wsum[b] += w
			}
		}
		AxpyRows(ws, row, ests, c.n)
	}
	for b := 0; b < nb; b++ {
		est := ests[b*c.n : (b+1)*c.n]
		if wsum[b] == 0 {
			// Nothing nearby: fall back to column means.
			copy(est, c.colMeans)
			continue
		}
		for j := range est {
			est[j] /= wsum[b]
		}
	}
	return ests
}

// neighbourEstimate predicts every column as the similarity-weighted mean
// of the training rows nearest to the observation on its known coordinates
// (s.kidx). Weights follow a Gaussian kernel on the RMS distance, so close
// rows dominate and far rows contribute nothing. The returned slice is
// s.est, valid until the scratch is reused.
//
//bolt:hotpath
func (c *Completer) neighbourEstimate(s *completeScratch, observed []float64) []float64 {
	est := s.est[:c.n]
	for j := range est {
		est[j] = 0
	}
	if len(s.kidx) == 0 {
		// Nothing known: fall back to column means.
		copy(est, c.colMeans)
		return est
	}
	wsum := 0.0
	for i := 0; i < c.train.Rows; i++ {
		row := c.train.Data[i*c.n : (i+1)*c.n]
		d := 0.0
		for _, j := range s.kidx {
			diff := observed[j] - row[j]
			d += diff * diff
		}
		rms := d / float64(len(s.kidx))
		w := gaussKernel(rms, kernelWidth)
		if w == 0 {
			continue
		}
		wsum += w
		Axpy(w, row, est)
	}
	if wsum == 0 {
		// Nothing nearby: fall back to column means.
		copy(est, c.colMeans)
		return est
	}
	for j := range est {
		est[j] /= wsum
	}
	return est
}

// kernelWidth is the Gaussian-kernel bandwidth of the neighbourhood
// estimate, in pressure points.
const kernelWidth = 12.0

// gaussKernel returns exp(−rms²/(2w²)) given the squared RMS distance,
// cutting off to exactly zero for far rows.
//
//bolt:hotpath
func gaussKernel(rmsSquared, width float64) float64 {
	x := rmsSquared / (2 * width * width)
	if x > 30 {
		return 0
	}
	return math.Exp(-x)
}

// Predict returns the model's reconstruction of training cell (i, j); used
// by tests to verify the factorisation fits the training data.
func (c *Completer) Predict(i, j int) float64 {
	r := c.cfg.Rank
	v := Dot(c.p.Data[i*r:(i+1)*r], c.q.Data[j*r:(j+1)*r])
	if !c.cfg.unbounded {
		v = clamp(v, c.cfg.MinVal, c.cfg.MaxVal)
	}
	return v
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	if x != x {
		// NaN falls through both comparisons; pin it to the lower bound so a
		// diverged fold-in on pathological observed values cannot leak NaN
		// into a completed vector.
		return lo
	}
	return x
}
