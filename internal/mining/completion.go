package mining

import (
	"math"
	"sync"
	"sync/atomic"

	"bolt/internal/stats"
)

// foldInIters is the fixed iteration budget of the fold-in solve. With the
// convergence gate (the default) it is an upper bound that is rarely reached;
// with FixedFoldIn it is the exact iteration count.
const foldInIters = 2000

// foldInTol is the convergence-gate threshold: the fold-in stops once a full
// sweep moves no factor coordinate by more than 2⁻⁴⁸·‖u‖∞ — sixteen times
// the double-precision machine epsilon, i.e. a handful of ULPs. Beyond that
// point the iteration is only toggling last bits (measured residual drift to
// the full 2000-sweep result is below 4e-13 on every probed observation,
// eleven orders of magnitude under the 0.1-pressure-point resolution any
// experiment reports), so typical observations stop after 40-250 sweeps
// instead of 2000. The determinism parity test runs the entire experiment
// suite with the gate on and off and asserts byte-identical output.
const foldInTol = 0x1p-48

// forceFixedFoldIn globally disables the fold-in convergence gate, as if
// every CompletionConfig had FixedFoldIn set. It exists for the determinism
// parity test, which runs the whole experiment suite both ways inside one
// binary and asserts byte-identical output. Atomic because the parallel
// experiment runner calls Complete from many goroutines.
var forceFixedFoldIn atomic.Bool

// SetForceFixedFoldIn toggles the global fold-in escape hatch (see
// FixedFoldIn). Intended for tests; the default false enables the gate.
func SetForceFixedFoldIn(v bool) { forceFixedFoldIn.Store(v) }

// CompletionConfig tunes the SGD PQ-reconstruction used to recover the
// pressure a victim places on resources Bolt did not profile directly.
type CompletionConfig struct {
	Rank      int     // latent factor dimensionality; 0 means min(n, 6)
	LearnRate float64 // SGD step size; 0 means 0.005
	Reg       float64 // L2 regularisation; 0 means 0.02
	Epochs    int     // SGD passes over the known ratings; 0 means 400
	Seed      uint64  // factor initialisation seed
	MinVal    float64 // clamp floor for predictions (pressure: 0)
	MaxVal    float64 // clamp ceiling for predictions (pressure: 100)
	// Unbounded disables the [MinVal, MaxVal] clamp explicitly.
	//
	// Deprecated implicit rule, kept for backward compatibility: leaving
	// MinVal and MaxVal both zero also disables the clamp. New code should
	// set Unbounded instead — the implicit rule makes "clamp to exactly 0"
	// inexpressible and will be removed once no caller relies on it.
	Unbounded bool
	// FixedFoldIn forces Complete to run the full fold-in iteration budget
	// instead of stopping at the convergence gate. The gated solve tracks
	// the fixed one to within a few ULPs (the gate only skips sweeps whose
	// largest coordinate move is below 2⁻⁴⁸·‖u‖∞), which no consumer of
	// completed pressure resolves — except code that feeds the raw floats
	// onward into further simulation, like the DoS attack planners, which
	// set this flag to reproduce the historical fixed-sweep arithmetic bit
	// for bit. The determinism parity test runs the experiment suite both
	// ways and asserts byte-identical output.
	FixedFoldIn bool
	unbounded   bool
}

func (c CompletionConfig) withDefaults(n int) CompletionConfig {
	if c.Rank <= 0 {
		c.Rank = 6
		if n < c.Rank {
			c.Rank = n
		}
	}
	if c.LearnRate == 0 {
		c.LearnRate = 0.005
	}
	if c.Reg == 0 {
		c.Reg = 0.02
	}
	if c.Epochs == 0 {
		c.Epochs = 400
	}
	if c.Unbounded || (c.MinVal == 0 && c.MaxVal == 0) {
		c.unbounded = true
	}
	return c
}

// completeScratch holds the per-call working memory of Complete, pooled so
// steady-state completions allocate nothing beyond the returned slice.
type completeScratch struct {
	u     []float64 // fold-in factor row (rank)
	uPrev []float64 // sweep-boundary snapshot for the convergence gate
	est   []float64 // neighbourhood estimate (n)
	kidx  []int     // indices of the known observations
}

// Completer performs PQ matrix completion with stochastic gradient descent:
// it factorises the training utility matrix A ≈ P Qᵀ, then folds in a new
// sparse row (the 2-3 profiled resources) to predict the missing entries.
// This is the collaborative-filtering half of Bolt's hybrid recommender.
//
// The raw fold-in is poorly conditioned when the number of observations is
// close to the factor rank (exactly-determined interpolation extrapolates
// wildly on the unobserved coordinates), so predictions are anchored by a
// neighbourhood term: a similarity-weighted average over the training rows
// closest to the observation on its known coordinates.
//
// A Completer is immutable after NewCompleter and safe for concurrent use;
// per-call state lives in a sync.Pool of scratch buffers.
type Completer struct {
	cfg      CompletionConfig
	p        *Matrix   // m×r application factors
	q        *Matrix   // n×r resource factors
	train    *Matrix   // retained for the neighbourhood term
	colMeans []float64 // training column means (neighbourhood fallback)
	n        int
	scratch  sync.Pool // *completeScratch
}

// NewCompleter factorises the dense training matrix (one row per training
// application, one column per resource, entries in [0,100]).
func NewCompleter(train *Matrix, cfg CompletionConfig) *Completer {
	cfg = cfg.withDefaults(train.Cols)
	c := &Completer{cfg: cfg, train: train.Clone(), n: train.Cols}
	rng := stats.NewRNG(cfg.Seed ^ 0xb0172017)

	m, n, r := train.Rows, train.Cols, cfg.Rank
	c.p = NewMatrix(m, r)
	c.q = NewMatrix(n, r)
	for i := range c.p.Data {
		c.p.Data[i] = rng.Norm(0, 0.1)
	}
	for i := range c.q.Data {
		c.q.Data[i] = rng.Norm(0, 0.1)
	}

	// SGD over all cells of the dense training matrix. Cell k of the
	// row-major Data slice is (k/n, k%n), so the flat index doubles as the
	// (i, j) pair and the permutation buffer is the only epoch state —
	// PermInto reshuffles it in place with the exact random stream Perm
	// would consume, making every epoch allocation-free and byte-identical
	// to the historical per-epoch rng.Perm.
	lr, reg := cfg.LearnRate, cfg.Reg
	perm := make([]int, m*n)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.PermInto(perm)
		for _, idx := range perm {
			i, j := idx/n, idx%n
			pi := c.p.Data[i*r : (i+1)*r : (i+1)*r]
			qj := c.q.Data[j*r : (j+1)*r : (j+1)*r]
			err := train.Data[idx] - Dot(pi, qj)
			sgdStep(pi, qj, lr, err, reg)
		}
	}

	c.colMeans = make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for i := 0; i < m; i++ {
			sum += c.train.At(i, j)
		}
		if m > 0 {
			c.colMeans[j] = sum / float64(m)
		}
	}
	c.scratch.New = func() any {
		return &completeScratch{
			u:     make([]float64, r),
			uPrev: make([]float64, r),
			est:   make([]float64, n),
			kidx:  make([]int, 0, n),
		}
	}
	return c
}

// Complete folds a sparse observation vector into the learned factor space
// and returns the dense prediction. known[j] must be true where observed[j]
// is a real measurement; other entries of observed are ignored. When fewer
// than one entry is known the training column means are returned.
func (c *Completer) Complete(observed []float64, known []bool) []float64 {
	out := make([]float64, c.n)
	c.CompleteInto(out, observed, known)
	return out
}

// CompleteInto is Complete writing its prediction into dst (length n)
// instead of allocating it — the allocation-free form the recommender's
// detection hot path uses. dst may alias neither observed nor the scratch
// internals; it is fully overwritten.
//
//bolt:hotpath
func (c *Completer) CompleteInto(dst, observed []float64, known []bool) {
	if len(observed) != c.n || len(known) != c.n {
		panic("mining: Complete length mismatch")
	}
	if len(dst) != c.n {
		panic("mining: CompleteInto dst length mismatch")
	}
	r := c.cfg.Rank
	s := c.scratch.Get().(*completeScratch)
	defer c.scratch.Put(s)

	s.kidx = s.kidx[:0]
	for j, k := range known {
		if k {
			s.kidx = append(s.kidx, j)
		}
	}

	// Solve for the new row's factors by ridge-regularised least squares on
	// the known entries, iterated for stability (equivalent to fold-in SGD
	// but deterministic). The loop is gated (see foldInTol): once a full
	// sweep's largest coordinate delta underflows machine precision the
	// solve is only toggling last bits and stops — a ~10x iteration drop on
	// typical observations with no observable output change.
	u := s.u[:r]
	prev := s.uPrev[:r]
	for k := range u {
		u[k] = 0
	}
	// The fold-in row has very few observations; the training-time
	// regulariser would shrink it toward zero and bias every prediction
	// low, so it is relaxed here.
	lr, reg := 0.01, c.cfg.Reg*0.1
	fixed := c.cfg.FixedFoldIn || forceFixedFoldIn.Load()
	for it := 0; it < foldInIters; it++ {
		copy(prev, u)
		for _, j := range s.kidx {
			qj := c.q.Data[j*r : (j+1)*r : (j+1)*r]
			err := observed[j] - Dot(u, qj)
			foldStep(u, qj, lr, err, reg)
		}
		if fixed {
			continue
		}
		maxDelta, maxU := 0.0, 0.0
		for k := range u {
			if d := math.Abs(u[k] - prev[k]); d > maxDelta {
				maxDelta = d
			}
			if a := math.Abs(u[k]); a > maxU {
				maxU = a
			}
		}
		if maxDelta <= foldInTol*maxU {
			break
		}
	}

	neighbour := c.neighbourEstimate(s, observed)
	for j := 0; j < c.n; j++ {
		if known[j] {
			dst[j] = observed[j]
			continue
		}
		qj := c.q.Data[j*r : (j+1)*r]
		v := Dot(u, qj)
		if !c.cfg.unbounded {
			v = clamp(v, c.cfg.MinVal, c.cfg.MaxVal)
		}
		// Blend the latent-factor prediction with the neighbourhood
		// estimate; the latter dominates because it can only produce
		// pressure values actually seen in training.
		dst[j] = 0.3*v + 0.7*neighbour[j]
	}
}

// neighbourEstimate predicts every column as the similarity-weighted mean
// of the training rows nearest to the observation on its known coordinates
// (s.kidx). Weights follow a Gaussian kernel on the RMS distance, so close
// rows dominate and far rows contribute nothing. The returned slice is
// s.est, valid until the scratch is reused.
//
//bolt:hotpath
func (c *Completer) neighbourEstimate(s *completeScratch, observed []float64) []float64 {
	const kernelWidth = 12.0 // pressure points
	est := s.est[:c.n]
	for j := range est {
		est[j] = 0
	}
	if len(s.kidx) == 0 {
		// Nothing known: fall back to column means.
		copy(est, c.colMeans)
		return est
	}
	wsum := 0.0
	for i := 0; i < c.train.Rows; i++ {
		row := c.train.Data[i*c.n : (i+1)*c.n]
		d := 0.0
		for _, j := range s.kidx {
			diff := observed[j] - row[j]
			d += diff * diff
		}
		rms := d / float64(len(s.kidx))
		w := gaussKernel(rms, kernelWidth)
		if w == 0 {
			continue
		}
		wsum += w
		Axpy(w, row, est)
	}
	if wsum == 0 {
		// Nothing nearby: fall back to column means.
		copy(est, c.colMeans)
		return est
	}
	for j := range est {
		est[j] /= wsum
	}
	return est
}

// gaussKernel returns exp(−rms²/(2w²)) given the squared RMS distance,
// cutting off to exactly zero for far rows.
//
//bolt:hotpath
func gaussKernel(rmsSquared, width float64) float64 {
	x := rmsSquared / (2 * width * width)
	if x > 30 {
		return 0
	}
	return math.Exp(-x)
}

// Predict returns the model's reconstruction of training cell (i, j); used
// by tests to verify the factorisation fits the training data.
func (c *Completer) Predict(i, j int) float64 {
	r := c.cfg.Rank
	v := Dot(c.p.Data[i*r:(i+1)*r], c.q.Data[j*r:(j+1)*r])
	if !c.cfg.unbounded {
		v = clamp(v, c.cfg.MinVal, c.cfg.MaxVal)
	}
	return v
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	if x != x {
		// NaN falls through both comparisons; pin it to the lower bound so a
		// diverged fold-in on pathological observed values cannot leak NaN
		// into a completed vector.
		return lo
	}
	return x
}
