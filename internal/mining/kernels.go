// Fused, unrolled vector kernels for the detection hot path. Every kernel
// performs the exact sequence of floating-point operations of the scalar
// loop it replaces — one accumulator, same evaluation order per element — so
// swapping it in changes no result bit anywhere in the pipeline. The speedup
// comes from 4-way unrolling (fewer loop branches), full-slice expressions
// that let the compiler drop bounds checks, and fusing read-modify-write
// updates that the call sites previously spelled out element by element.
package mining

import "math"

// Dot returns the inner product of two equal-length vectors. The sum is
// accumulated strictly left to right, exactly like the naive loop.
//
//bolt:hotpath
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mining: Dot length mismatch")
	}
	s := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		s += x[0] * y[0]
		s += x[1] * y[1]
		s += x[2] * y[2]
		s += x[3] * y[3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y[i] += alpha*x[i] over equal-length vectors — the
// accumulation kernel of the neighbourhood estimate.
//
//bolt:hotpath
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mining: Axpy length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xs := x[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] += alpha * xs[0]
		ys[1] += alpha * xs[1]
		ys[2] += alpha * xs[2]
		ys[3] += alpha * xs[3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// DotRows computes out[b] = Dot(us[b*stride : b*stride+len(q)], q) for every
// row b with active[b], leaving inactive slots of out untouched. us is the
// row-major B×stride factor matrix of a batched fold-in; sharing one pass
// over q across all rows is what turns B separate fold-in sweeps into one
// fused sweep with q hot in cache. Each active row's accumulation is exactly
// Dot on its subslice, so the result is bit-identical to the per-row kernel.
//
//bolt:hotpath
func DotRows(us []float64, stride int, q, out []float64, active []bool) {
	if len(q) > stride {
		panic("mining: DotRows stride shorter than q")
	}
	for b := range out {
		if !active[b] {
			continue
		}
		off := b * stride
		out[b] = Dot(us[off:off+len(q):off+len(q)], q)
	}
}

// FoldStepRows applies foldStep to every row b with active[b], using the
// per-row residual errs[b]. Row b's update is exactly
// foldStep(us[b*stride:...], q, lr, errs[b], reg) — the batched fold-in's
// inner kernel, bit-identical per row to the solo solve.
//
//bolt:hotpath
func FoldStepRows(us []float64, stride int, q []float64, lr float64, errs []float64, reg float64, active []bool) {
	if len(q) > stride {
		panic("mining: FoldStepRows stride shorter than q")
	}
	for b := range errs {
		if !active[b] {
			continue
		}
		off := b * stride
		foldStep(us[off:off+len(q):off+len(q)], q, lr, errs[b], reg)
	}
}

// AxpyRows performs ys[b*stride:] += ws[b]*x for every row b whose weight is
// nonzero — the accumulation kernel of the batched neighbourhood estimate,
// where one training row is streamed once and folded into every victim's
// estimate. A zero weight skips the row entirely, matching the solo
// neighbourEstimate's w == 0 short-circuit bit for bit.
//
//bolt:hotpath
func AxpyRows(ws []float64, x, ys []float64, stride int) {
	if len(x) > stride {
		panic("mining: AxpyRows stride shorter than x")
	}
	for b := range ws {
		if ws[b] == 0 {
			continue
		}
		off := b * stride
		Axpy(ws[b], x, ys[off:off+len(x):off+len(x)])
	}
}

// sgdStep applies one coupled SGD factor update for a single training cell:
//
//	p[k] += lr * (err*q[k] - reg*p[k])
//	q[k] += lr * (err*p[k] - reg*q[k])   (using the pre-update p[k], q[k])
//
// This is the inner loop of NewCompleter with the temporaries hoisted; the
// per-element expressions are unchanged.
//
//bolt:hotpath
func sgdStep(p, q []float64, lr, err, reg float64) {
	if len(p) != len(q) {
		panic("mining: sgdStep length mismatch")
	}
	for k := 0; k < len(p); k++ {
		pk, qk := p[k], q[k]
		p[k] += lr * (err*qk - reg*pk)
		q[k] += lr * (err*pk - reg*qk)
	}
}

// foldStep applies one ridge-SGD fold-in update for a single observation:
// u[k] += lr*(err*q[k] - reg*u[k]), the inner loop of CompleteInto's
// fold-in solve with the per-element expression unchanged.
//
//bolt:hotpath
func foldStep(u, q []float64, lr, err, reg float64) {
	if len(u) != len(q) {
		panic("mining: foldStep length mismatch")
	}
	q = q[:len(u)]
	for k := 0; k < len(u); k++ {
		uk := u[k]
		u[k] = uk + lr*(err*q[k]-reg*uk)
	}
}

// foldSolve6 is the rank-6 specialisation of CompleteInto's gated fold-in
// solve — the whole sweep loop with the six factor coordinates held in
// registers, so a sweep touches memory only for q and the observed entries.
// Each statement replicates the generic path's floating-point sequence:
// the dot product accumulates left to right exactly like Dot, the update is
// foldStep's expression per coordinate, and the convergence gate runs the
// same per-coordinate comparisons in the same order. Bit-identity with the
// generic (and batched) path is pinned by TestCompleteBatchIntoBitExact,
// whose batch side still runs the scalar kernels.
//
//bolt:hotpath
func foldSolve6(u, qdata []float64, kidx []int, observed []float64, lr, reg float64, fixed bool) {
	u0, u1, u2, u3, u4, u5 := u[0], u[1], u[2], u[3], u[4], u[5]
	for it := 0; it < foldInIters; it++ {
		p0, p1, p2, p3, p4, p5 := u0, u1, u2, u3, u4, u5
		for _, j := range kidx {
			q := qdata[j*6 : j*6+6 : j*6+6]
			s := 0.0
			s += u0 * q[0]
			s += u1 * q[1]
			s += u2 * q[2]
			s += u3 * q[3]
			s += u4 * q[4]
			s += u5 * q[5]
			err := observed[j] - s
			u0 += lr * (err*q[0] - reg*u0)
			u1 += lr * (err*q[1] - reg*u1)
			u2 += lr * (err*q[2] - reg*u2)
			u3 += lr * (err*q[3] - reg*u3)
			u4 += lr * (err*q[4] - reg*u4)
			u5 += lr * (err*q[5] - reg*u5)
		}
		if fixed {
			continue
		}
		maxDelta, maxU := 0.0, 0.0
		if d := math.Abs(u0 - p0); d > maxDelta {
			maxDelta = d
		}
		if a := math.Abs(u0); a > maxU {
			maxU = a
		}
		if d := math.Abs(u1 - p1); d > maxDelta {
			maxDelta = d
		}
		if a := math.Abs(u1); a > maxU {
			maxU = a
		}
		if d := math.Abs(u2 - p2); d > maxDelta {
			maxDelta = d
		}
		if a := math.Abs(u2); a > maxU {
			maxU = a
		}
		if d := math.Abs(u3 - p3); d > maxDelta {
			maxDelta = d
		}
		if a := math.Abs(u3); a > maxU {
			maxU = a
		}
		if d := math.Abs(u4 - p4); d > maxDelta {
			maxDelta = d
		}
		if a := math.Abs(u4); a > maxU {
			maxU = a
		}
		if d := math.Abs(u5 - p5); d > maxDelta {
			maxDelta = d
		}
		if a := math.Abs(u5); a > maxU {
			maxU = a
		}
		if maxDelta <= foldInTol*maxU {
			break
		}
	}
	u[0], u[1], u[2], u[3], u[4], u[5] = u0, u1, u2, u3, u4, u5
}
