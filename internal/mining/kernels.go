// Fused, unrolled vector kernels for the detection hot path. Every kernel
// performs the exact sequence of floating-point operations of the scalar
// loop it replaces — one accumulator, same evaluation order per element — so
// swapping it in changes no result bit anywhere in the pipeline. The speedup
// comes from 4-way unrolling (fewer loop branches), full-slice expressions
// that let the compiler drop bounds checks, and fusing read-modify-write
// updates that the call sites previously spelled out element by element.
package mining

// Dot returns the inner product of two equal-length vectors. The sum is
// accumulated strictly left to right, exactly like the naive loop.
//
//bolt:hotpath
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("mining: Dot length mismatch")
	}
	s := 0.0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x := a[i : i+4 : i+4]
		y := b[i : i+4 : i+4]
		s += x[0] * y[0]
		s += x[1] * y[1]
		s += x[2] * y[2]
		s += x[3] * y[3]
	}
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes y[i] += alpha*x[i] over equal-length vectors — the
// accumulation kernel of the neighbourhood estimate.
//
//bolt:hotpath
func Axpy(alpha float64, x, y []float64) {
	if len(x) != len(y) {
		panic("mining: Axpy length mismatch")
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xs := x[i : i+4 : i+4]
		ys := y[i : i+4 : i+4]
		ys[0] += alpha * xs[0]
		ys[1] += alpha * xs[1]
		ys[2] += alpha * xs[2]
		ys[3] += alpha * xs[3]
	}
	for ; i < len(x); i++ {
		y[i] += alpha * x[i]
	}
}

// sgdStep applies one coupled SGD factor update for a single training cell:
//
//	p[k] += lr * (err*q[k] - reg*p[k])
//	q[k] += lr * (err*p[k] - reg*q[k])   (using the pre-update p[k], q[k])
//
// This is the inner loop of NewCompleter with the temporaries hoisted; the
// per-element expressions are unchanged.
//
//bolt:hotpath
func sgdStep(p, q []float64, lr, err, reg float64) {
	if len(p) != len(q) {
		panic("mining: sgdStep length mismatch")
	}
	for k := 0; k < len(p); k++ {
		pk, qk := p[k], q[k]
		p[k] += lr * (err*qk - reg*pk)
		q[k] += lr * (err*pk - reg*qk)
	}
}

// foldStep applies one ridge-SGD fold-in update for a single observation:
// u[k] += lr*(err*q[k] - reg*u[k]), the inner loop of CompleteInto's
// fold-in solve with the per-element expression unchanged.
//
//bolt:hotpath
func foldStep(u, q []float64, lr, err, reg float64) {
	if len(u) != len(q) {
		panic("mining: foldStep length mismatch")
	}
	q = q[:len(u)]
	for k := 0; k < len(u); k++ {
		uk := u[k]
		u[k] = uk + lr*(err*q[k]-reg*uk)
	}
}
