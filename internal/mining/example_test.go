package mining_test

import (
	"fmt"

	"bolt/internal/mining"
)

// ExampleRecommender shows the full §3.2 pipeline on a toy training set:
// three labelled workloads, a sparse two-resource observation, completion
// of the missing entries, and the ranked similarity distribution.
func ExampleRecommender() {
	profiles := []mining.LabeledProfile{
		{Label: "kv-store", Class: "kv", Pressure: []float64{90, 60, 30, 80, 40, 50, 35, 60, 0, 0}},
		{Label: "analytics", Class: "batch", Pressure: []float64{30, 40, 35, 40, 50, 45, 70, 40, 80, 75}},
		{Label: "in-memory", Class: "mem", Pressure: []float64{40, 55, 40, 70, 85, 90, 60, 30, 20, 15}},
	}
	rec := mining.NewRecommender(profiles, mining.RecommenderConfig{})

	// The adversary measured only the LLC (index 3) and disk bandwidth
	// (index 9); everything else is unknown.
	observed := make([]float64, 10)
	known := make([]bool, 10)
	observed[3], known[3] = 78, true
	observed[9], known[9] = 2, true

	result := rec.Detect(observed, known)
	fmt.Printf("best match: %s\n", result.Best().Label)
	fmt.Printf("confident: %v\n", result.Confident())
	// Output:
	// best match: kv-store
	// confident: true
}

func ExampleWeightedPearson() {
	a := []float64{1, 2, 3, 4}
	b := []float64{2, 4, 6, 8} // same shape, double the scale
	uniform := []float64{1, 1, 1, 1}
	fmt.Printf("%.2f\n", mining.WeightedPearson(a, b, uniform))
	// Output:
	// 1.00
}

func ExampleComputeSVD() {
	m := mining.FromRows([][]float64{
		{3, 0},
		{0, 4},
	})
	svd := mining.ComputeSVD(m)
	fmt.Printf("singular values: %.0f %.0f\n", svd.Sigma[0], svd.Sigma[1])
	fmt.Printf("rank at 90%% energy: %d\n", svd.EnergyRank(0.9))
	// Output:
	// singular values: 4 3
	// rank at 90% energy: 2
}
