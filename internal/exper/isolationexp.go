package exper

import (
	"fmt"
	"sync"

	"bolt/internal/isolation"
	"bolt/internal/latency"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// figure14Scale shrinks the controlled experiment for the 18-configuration
// isolation sweep (3 platforms × 6 stack steps) so the full harness stays
// fast; the accuracy trends are what matter.
const (
	fig14Servers = 16
	fig14Victims = 44
)

// Figure14 reproduces Fig. 14: detection accuracy as isolation mechanisms
// are layered onto baremetal, container, and VM platforms, ending with
// core isolation; plus the paper's note that core isolation alone still
// allows 46% accuracy.
func Figure14(seed uint64) *Report {
	rep := newReport("fig14", "Detection accuracy under isolation")

	labels := isolation.StackLabels()
	fig := trace.NewFigure("Fig 14: accuracy vs isolation mechanisms",
		"stack step (0=none .. 5=+core isolation)", "accuracy (%)")
	tb := trace.NewTable("Fig 14: accuracy (%) per platform and mechanism stack",
		append([]string{"Platform"}, labels...)...)

	// The 18 stack configurations plus the core-isolation-only run are
	// independent controlled experiments; run them concurrently. Each run
	// derives all randomness from its own seed, so concurrency cannot
	// perturb results.
	type cell struct {
		platform isolation.Platform
		step     int
	}
	platforms := isolation.Platforms()
	accs := make(map[cell]float64)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, p := range platforms {
		for step, cfg := range isolation.Stack(p) {
			p, step, cfg := p, step, cfg
			wg.Add(1)
			go func() {
				defer wg.Done()
				res := RunControlled(ControlledConfig{
					Seed:      seed,
					Servers:   fig14Servers,
					Victims:   fig14Victims,
					ServerCfg: cfg.ServerConfig(8, 2),
				})
				mu.Lock()
				accs[cell{p, step}] = res.Accuracy()
				mu.Unlock()
			}()
		}
	}
	var coreOnlyAcc float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		res := RunControlled(ControlledConfig{
			Seed:      seed,
			Servers:   fig14Servers,
			Victims:   fig14Victims,
			ServerCfg: isolation.CoreIsolationOnly(isolation.Containers).ServerConfig(8, 2),
		})
		coreOnlyAcc = res.Accuracy()
	}()
	wg.Wait()

	for _, p := range platforms {
		row := []string{p.String()}
		var xs, ys []float64
		for step := range isolation.Stack(p) {
			acc := accs[cell{p, step}]
			row = append(row, fmt.Sprintf("%.0f", acc))
			xs = append(xs, float64(step))
			ys = append(ys, acc)
			rep.Metrics[fmt.Sprintf("%s_step%d", p.String(), step)] = acc
		}
		tb.Add(row...)
		fig.AddSeries(p.String(), xs, ys)
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Figures = append(rep.Figures, fig)
	rep.Metrics["core_isolation_only"] = coreOnlyAcc
	rep.Notes = append(rep.Notes,
		"paper: accuracy falls from 81% (baremetal/none) to ~50% with all partitioning, 14% with core isolation on containers/VMs; core isolation alone still allows 46%")
	return rep
}

// IsolationCost reproduces the §6 cost analysis: core isolation's 34%
// average execution-time penalty (threads of one job contending with each
// other) and the utilisation sacrificed either by whole-core reservation
// or by over-provisioning.
func IsolationCost(seed uint64) *Report {
	rep := newReport("isocost", "Cost of core isolation")
	rng := stats.NewRNG(seed ^ 0x150c057)

	// Performance: run batch victims with and without the core-isolation
	// penalty applied.
	cfg := isolation.Config{Platform: isolation.Containers, CoreIsolation: true}
	var slowdowns []float64
	victims := workload.VictimSpecs(seed, 30)
	for _, spec := range victims {
		spec.Jitter = 0
		s := sim.NewServer("s0", sim.ServerConfig{})
		app := workload.NewApp(spec, workload.Constant{Level: 0.95}, rng.Uint64())
		vm := &sim.VM{ID: "v", VCPUs: 4, App: app}
		if err := s.Place(vm); err != nil {
			panic(err)
		}
		job := &latency.BatchJob{VM: vm, Work: 50}
		base, _ := job.Run(s, 0, 0)
		slowdowns = append(slowdowns, float64(base)*cfg.PerfPenalty()/float64(base))
	}
	perf := (stats.Mean(slowdowns) - 1) * 100

	// Utilisation: place the same VM population with and without dedicated
	// cores and compare allocated-capacity utilisation; then add the
	// over-provisioning penalty the paper quotes.
	packVMs := func(dedicated bool) float64 {
		scfg := sim.ServerConfig{DedicatedCores: dedicated}
		s := sim.NewServer("s0", scfg)
		placedVCPUs := 0
		for i := 0; ; i++ {
			vcpus := 1 + rng.Intn(4)
			vm := &sim.VM{ID: fmt.Sprintf("vm-%d", i), VCPUs: vcpus, App: probe.NewKernels(0)}
			if err := s.Place(vm); err != nil {
				break
			}
			placedVCPUs += vcpus
		}
		return 100 * float64(placedVCPUs) / float64(s.TotalVCPUs())
	}
	sharedUtil := packVMs(false)
	dedicatedUtil := packVMs(true)

	tb := trace.NewTable("Cost of core isolation", "Metric", "Value")
	tb.Add("mean execution-time penalty", fmt.Sprintf("%.0f%%", perf))
	tb.Add("vCPU utilisation, shared cores", fmt.Sprintf("%.0f%%", sharedUtil))
	tb.Add("vCPU utilisation, dedicated cores", fmt.Sprintf("%.0f%%", dedicatedUtil))
	tb.Add("over-provisioning utilisation drop", fmt.Sprintf("%.0f%%", cfg.UtilizationPenalty()*100))
	rep.Tables = append(rep.Tables, tb)

	rep.Metrics["perf_penalty_pct"] = perf
	rep.Metrics["shared_util"] = sharedUtil
	rep.Metrics["dedicated_util"] = dedicatedUtil
	rep.Metrics["overprovision_drop_pct"] = cfg.UtilizationPenalty() * 100
	rep.Notes = append(rep.Notes,
		"paper: 34% average performance penalty, or a 45% utilisation drop when over-provisioning instead")
	return rep
}
