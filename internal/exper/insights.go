package exper

import (
	"fmt"
	"sort"

	"bolt/internal/core"
	"bolt/internal/sim"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// Insights reproduces the "System insights from data mining" analysis of
// §3.2: before dimensionality reduction each similarity concept corresponds
// to a shared resource; the magnitude of each concept says how strongly it
// captures application similarities, so ranking resources by their
// participation in strong concepts reveals which ones leak the most
// information about a workload — and whose isolation should be prioritised.
// The paper finds the LLC and L1-i caches carry the most value, followed by
// compute intensity and memory bandwidth, with L2 a poor indicator.
func Insights(seed uint64) *Report {
	rep := newReport("insights", "Which resources leak the most information")
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	// Per-resource information value from the similarity concepts.
	value := det.Rec.ResourceValue()
	type rv struct {
		r sim.Resource
		v float64
	}
	ranked := make([]rv, 0, sim.NumResources)
	for _, r := range sim.AllResources() {
		ranked = append(ranked, rv{r, value[r]})
	}
	sort.SliceStable(ranked, func(a, b int) bool { return ranked[a].v > ranked[b].v })

	tb := trace.NewTable("Per-resource information value (σ-weighted concept participation)",
		"Rank", "Resource", "Value", "Core/Uncore")
	for i, e := range ranked {
		kind := "uncore"
		if e.r.IsCore() {
			kind = "core"
		}
		tb.Add(fmt.Sprintf("%d", i+1), e.r.String(), fmt.Sprintf("%.2f", e.v), kind)
		rep.Metrics["value_"+e.r.String()] = e.v
	}
	rep.Tables = append(rep.Tables, tb)

	// Similarity-concept strengths (the singular-value spectrum).
	sigma := det.Rec.Sigma()
	var xs, ys []float64
	total := 0.0
	for _, s := range sigma {
		total += s * s
	}
	cum := 0.0
	for i, s := range sigma {
		xs = append(xs, float64(i+1))
		cum += s * s
		ys = append(ys, 100*cum/total)
	}
	fig := trace.NewFigure("Similarity-concept energy spectrum (cumulative %)",
		"concept rank", "cumulative energy (%)")
	fig.AddSeries("energy", xs, ys)
	rep.Figures = append(rep.Figures, fig)
	rep.Metrics["concepts_retained"] = float64(det.Rec.Rank())

	// Validate the ranking against ground truth: measure detection accuracy
	// when only a single resource is observed (plus completion). A
	// high-value resource should identify more victims on its own.
	victims := workload.VictimSpecs(seed, 60)
	// The observation rows don't depend on which resource is "known", so
	// they are built once; each per-resource sweep then shares one mask
	// across all victims — exactly the shape DetectBatch fuses into a single
	// multi-victim fold-in pass instead of 60 independent completions.
	obs := make([][]float64, len(victims))
	for i, spec := range victims {
		obs[i] = spec.Base.Slice()
	}
	tb2 := trace.NewTable("Single-resource detection accuracy (exact observation)",
		"Resource", "Accuracy")
	for _, r := range sim.AllResources() {
		known := make([]bool, sim.NumResources)
		known[r] = true
		correct := 0
		for i, res := range det.Rec.DetectBatch(obs, known) {
			if core.LabelMatches(res.Best().Label, victims[i].Label) {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(len(victims))
		tb2.Add(r.String(), pct(acc))
		rep.Metrics["single_"+r.String()] = acc
	}
	rep.Tables = append(rep.Tables, tb2)
	rep.Notes = append(rep.Notes,
		"paper: LLC and L1-i carry the most detection value, then compute intensity and memory bandwidth; L2 is a poor indicator (32KB→256KB captures little working-set change)")
	return rep
}
