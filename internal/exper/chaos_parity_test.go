package exper

import (
	"bytes"
	"fmt"
	"testing"

	"bolt/internal/fault"
)

// renderSuite runs the full suite at the given parallelism and returns the
// rendered stdout form (the bytes boltbench would print).
func renderSuite(t *testing.T, seed uint64, parallel int) []byte {
	t.Helper()
	results := Run(All(), seed, parallel)
	var buf bytes.Buffer
	for _, r := range results {
		r.Report.Render(&buf)
	}
	return buf.Bytes()
}

func firstDivergence(a, b []byte) string {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 60
	if lo < 0 {
		lo = 0
	}
	hiA, hiB := i+60, i+60
	if hiA > len(a) {
		hiA = len(a)
	}
	if hiB > len(b) {
		hiB = len(b)
	}
	return fmt.Sprintf("byte %d:\n  a: …%s…\n  b: …%s…", i, a[lo:hiA], b[lo:hiB])
}

// TestSuiteChaosParityAtRateZero is the chaos-parity golden: installing the
// fault plane at rate 0 must leave the entire experiment suite's stdout
// byte-identical to a run with no fault plane installed at all, at every
// parallelism level. This pins the nil-plane contract end to end — a
// disabled config builds no plane, a missing plane draws no randomness, and
// NewAdversary splits its RNG only when faults are enabled — so shipping
// the fault-injection subsystem cannot perturb a single published number.
func TestSuiteChaosParityAtRateZero(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite five times")
	}
	const seed = 42

	// Baseline: no default fault config installed (the state of a build
	// without the -faultrate flag ever parsed).
	baseline := renderSuite(t, seed, 8)

	fault.SetDefault(fault.Config{Rate: 0})
	defer fault.SetDefault(fault.Config{})
	for _, parallel := range []int{1, 2, 4, 8} {
		got := renderSuite(t, seed, parallel)
		if !bytes.Equal(got, baseline) {
			t.Fatalf("suite output with rate-0 fault plane at parallel %d diverged from no-plane baseline at %s",
				parallel, firstDivergence(got, baseline))
		}
	}
}

// TestSuiteFaultedRunIsDeterministic is the nonzero-rate companion: with
// real injection enabled the suite must still be a pure function of the
// seed, independent of parallelism.
func TestSuiteFaultedRunIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the faultrate experiment three times")
	}
	fault.SetDefault(fault.Config{Rate: 0.25})
	defer fault.SetDefault(fault.Config{})

	exps := []Experiment{}
	for _, id := range []string{"table1", "faultrate"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	render := func(parallel int) []byte {
		results := Run(exps, 42, parallel)
		var buf bytes.Buffer
		for _, r := range results {
			r.Report.Render(&buf)
		}
		return buf.Bytes()
	}
	first := render(1)
	for _, parallel := range []int{2, 4} {
		if got := render(parallel); !bytes.Equal(got, first) {
			t.Fatalf("faulted suite diverged between parallel 1 and %d at %s",
				parallel, firstDivergence(got, first))
		}
	}
}
