package exper

import (
	"fmt"
	"sort"

	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/study"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// studyScale shrinks the 4-hour study to keep the harness fast while
// preserving its structure (arrival spread, 1-6 jobs per instance, idle
// instances). Time-scaling does not change detection, which operates on
// instantaneous pressure.
const studyScale = 20

// Figure11 reproduces Fig. 11: the PDF of application types launched in
// the user study, per user.
func Figure11(seed uint64) *Report {
	rep := newReport("fig11", "User study: application-type PDF")
	s := study.Generate(study.Config{Seed: seed})

	pdf := s.OccurrencePDF()
	tb := trace.NewTable("Fig 11: occurrences per application type",
		"Type", "Occurrences", "Share")
	for _, k := range pdf.Keys() {
		tb.Add(k, fmt.Sprintf("%d", pdf.Count(k)), fmt.Sprintf("%.1f%%", pdf.Share(k)))
	}
	rep.Tables = append(rep.Tables, tb)

	perUser := stats.NewCounter()
	for _, j := range s.Jobs {
		perUser.Add(fmt.Sprintf("user-%02d", j.User))
	}
	rep.Metrics["total_jobs"] = float64(len(s.Jobs))
	rep.Metrics["distinct_types"] = float64(len(pdf.Keys()))
	rep.Metrics["users"] = float64(len(perUser.Keys()))
	rep.Notes = append(rep.Notes, "paper: 436 jobs across 53 types from 20 users")
	return rep
}

// studyOutcome is the per-job result of the study detection run.
type studyOutcome struct {
	job           study.Job
	labelled      bool
	characterised bool
	activePeers   int
}

// runStudy places the study's jobs on the instance fleet, runs Bolt on
// every active instance at several points in (scaled) time, and scores
// each job at the detection nearest the middle of its lifetime.
func runStudy(seed uint64) ([]studyOutcome, *study.Study, []int, [][]int) {
	s := study.Generate(study.Config{Seed: seed})
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})
	rng := stats.NewRNG(seed ^ 0x57d7)

	// c3.8xlarge-like instances: 32 vCPUs (16 cores × 2), with a 4-vCPU
	// Bolt VM reserved on each.
	cl := cluster.New(s.Config.Instances, sim.ServerConfig{Cores: 16, ThreadsPerCore: 2},
		cluster.LeastLoaded{})
	advs := map[string]*probe.Adversary{}
	for _, srv := range cl.Servers {
		adv := probe.NewAdversary("bolt-"+srv.Name(), 4, probe.Config{}, rng.Split())
		if err := srv.Place(adv.VM); err != nil {
			continue
		}
		advs[srv.Name()] = adv
	}

	type placedJob struct {
		job  study.Job
		vm   *sim.VM
		host *sim.Server
	}
	var placed []placedJob
	for i, j := range s.Jobs {
		start := j.Start / studyScale
		app := workload.NewApp(j.Spec, j.Pattern, rng.Uint64())
		app.Start = start
		vm := &sim.VM{ID: fmt.Sprintf("job-%03d", i), VCPUs: j.VCPUs, App: app}
		host, err := cl.Place(vm, start)
		if err != nil {
			continue
		}
		placed = append(placed, placedJob{j, vm, host})
	}

	// Occupancy over time: active jobs per instance (Fig. 12c). The grid
	// is instances × time steps, the paper's heatmap.
	span := s.Config.Span / studyScale
	const timeSteps = 16
	active := func(p placedJob, t sim.Tick) bool {
		start := p.job.Start / studyScale
		return t >= start && t < start+p.job.Duration/studyScale
	}
	grid := make([][]int, len(cl.Servers))
	hostIndex := map[string]int{}
	for i, srv := range cl.Servers {
		grid[i] = make([]int, timeSteps)
		hostIndex[srv.Name()] = i
	}
	occupancy := make([]int, timeSteps)
	for step := 0; step < timeSteps; step++ {
		t := span / timeSteps * sim.Tick(step)
		for _, p := range placed {
			if active(p, t) {
				grid[hostIndex[p.host.Name()]][step]++
			}
		}
		for _, row := range grid {
			if row[step] > occupancy[step] {
				occupancy[step] = row[step]
			}
		}
	}

	// Detection: score each job at the midpoint of its lifetime. Hosts are
	// processed in a deterministic order.
	byHost := map[string][]placedJob{}
	for _, p := range placed {
		byHost[p.host.Name()] = append(byHost[p.host.Name()], p)
	}
	hostNames := make([]string, 0, len(byHost))
	for n := range byHost {
		hostNames = append(hostNames, n)
	}
	sort.Strings(hostNames)

	var outcomes []studyOutcome
	for _, hn := range hostNames {
		jobs := byHost[hn]
		adv, ok := advs[hn]
		if !ok {
			continue
		}
		host := cl.HostOf(adv.VM.ID)
		for _, p := range jobs {
			mid := p.job.Start/studyScale + p.job.Duration/studyScale/2
			peers := 0
			for _, q := range jobs {
				if active(q, mid) {
					peers++
				}
			}
			d := det.Detect(host, adv, mid, maxInt(peers, 1))
			out := studyOutcome{job: p.job, activePeers: peers}
			for _, cand := range d.CoResidents {
				if core.LabelMatches(cand.Best().Label, p.job.Spec.Label) ||
					(p.job.Type.Trainable && core.ClassMatches(cand.Best().Label, p.job.Spec.Class)) {
					out.labelled = true
				}
				if core.CharacteristicsMatch(cand.Pressure, p.job.Spec.Base) {
					out.characterised = true
				}
			}
			if out.labelled {
				out.characterised = true
			}
			outcomes = append(outcomes, out)
		}
	}
	return outcomes, s, occupancy, grid
}

// Figure12 reproduces Fig. 12: how many study jobs Bolt labelled correctly
// (a), how many it characterised correctly (b), and the jobs-per-instance
// occupancy over time (c).
func Figure12(seed uint64) *Report {
	rep := newReport("fig12", "User study: detection accuracy")
	outcomes, s, occupancy, grid := runStudy(seed)

	labelled, characterised := 0, 0
	labelledByType := stats.NewCounter()
	totalByType := stats.NewCounter()
	for _, o := range outcomes {
		key := fmt.Sprintf("%02d:%s", o.job.Type.ID, o.job.Type.Name)
		totalByType.Add(key)
		if o.labelled {
			labelled++
			labelledByType.Add(key)
		}
		if o.characterised {
			characterised++
		}
	}

	tb := trace.NewTable("Fig 12a/b: per-type detection",
		"Type", "Jobs", "Labelled", "Trainable")
	types := study.Types()
	for _, k := range totalByType.Keys() {
		trainable := "no"
		for _, t := range types {
			if fmt.Sprintf("%02d:%s", t.ID, t.Name) == k && t.Trainable {
				trainable = "yes"
			}
		}
		tb.Add(k, fmt.Sprintf("%d", totalByType.Count(k)),
			fmt.Sprintf("%d", labelledByType.Count(k)), trainable)
	}
	rep.Tables = append(rep.Tables, tb)

	var xs, ys []float64
	for i, occ := range occupancy {
		xs = append(xs, float64(i))
		ys = append(ys, float64(occ))
	}
	fig := trace.NewFigure("Fig 12c: peak active jobs per instance over time",
		"time step", "max active jobs on any instance")
	fig.AddSeries("occupancy", xs, ys)
	rep.Figures = append(rep.Figures, fig)

	// The paper's heatmap: one row per instance, one column per time step,
	// shaded by the number of active jobs. Idle instances stay blank.
	heat := trace.NewHeatmap("Fig 12c: active jobs per instance over time",
		"instance", "time step", len(grid), len(grid[0]))
	idle := 0
	for i, row := range grid {
		rowTotal := 0
		for j, c := range row {
			heat.Set(i, j, float64(c))
			rowTotal += c
		}
		if rowTotal == 0 {
			idle++
		}
	}
	rep.Heatmaps = append(rep.Heatmaps, heat)
	rep.Metrics["idle_instances"] = float64(idle)

	rep.Metrics["jobs_total"] = float64(len(outcomes))
	rep.Metrics["jobs_submitted"] = float64(len(s.Jobs))
	rep.Metrics["jobs_labelled"] = float64(labelled)
	rep.Metrics["jobs_characterised"] = float64(characterised)
	rep.Metrics["label_rate"] = 100 * float64(labelled) / float64(len(outcomes))
	rep.Metrics["characterise_rate"] = 100 * float64(characterised) / float64(len(outcomes))
	rep.Notes = append(rep.Notes,
		"paper: 277/436 jobs labelled, 385/436 characterised; misses concentrate on instances with ≥5 active jobs")
	return rep
}
