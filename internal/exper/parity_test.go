package exper

import (
	"bytes"
	"runtime"
	"testing"

	"bolt/internal/mining"
)

// TestSuiteParityGatedVsFixedFoldIn is the regression contract of the
// convergence-gated fold-in: running the entire experiment suite with the
// gate active must emit byte-for-byte the output of the historical
// fixed-2000-sweep solve. The gate stops the solve once a full sweep moves
// no coordinate by more than 2⁻⁴⁸ of the iterate's magnitude — orders of
// magnitude below anything the reports resolve — and the two experiments
// that are sensitive at machine precision (the DoS planners) pin
// FixedFoldIn explicitly, so the suites must agree exactly. A failure here
// means either the gate fires too early or a new experiment started
// consuming raw completed-pressure floats and needs the same pinning.
func TestSuiteParityGatedVsFixedFoldIn(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	const seed = 42
	parallel := runtime.GOMAXPROCS(0)

	render := func() []byte {
		results := Run(All(), seed, parallel)
		reports := make([]*Report, len(results))
		for i, r := range results {
			reports[i] = r.Report
		}
		var buf bytes.Buffer
		if err := WriteAllJSON(&buf, seed, reports); err != nil {
			t.Fatalf("WriteAllJSON: %v", err)
		}
		return buf.Bytes()
	}

	gated := render()
	mining.SetForceFixedFoldIn(true)
	defer mining.SetForceFixedFoldIn(false)
	fixed := render()

	if !bytes.Equal(gated, fixed) {
		i := 0
		for i < len(gated) && i < len(fixed) && gated[i] == fixed[i] {
			i++
		}
		lo := i - 60
		if lo < 0 {
			lo = 0
		}
		hiG, hiF := i+60, i+60
		if hiG > len(gated) {
			hiG = len(gated)
		}
		if hiF > len(fixed) {
			hiF = len(fixed)
		}
		t.Fatalf("suite output diverged at byte %d:\n  gated: …%s…\n  fixed: …%s…",
			i, gated[lo:hiG], fixed[lo:hiF])
	}
}
