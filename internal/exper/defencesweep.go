package exper

import (
	"fmt"
	"strings"
	"sync/atomic"

	"bolt/internal/attack"
	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/defence"
	"bolt/internal/fleet"
	"bolt/internal/mining"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// defencePolicies overrides which placement policies the defencesweep
// experiment evaluates (the boltbench -defence knob), as a comma-separated
// list. Empty runs the full ladder. Process-global configuration read once
// per run, like the -fleet knob: output is byte-identical across runs at
// any fixed value, but different values are different experiments.
var defencePolicies atomic.Value // string

// SetDefencePolicies fixes the defencesweep policy list (comma-separated
// policy names); "" restores the default ladder.
func SetDefencePolicies(csv string) { defencePolicies.Store(csv) }

// DefencePolicies returns the configured policy list.
func DefencePolicies() []string {
	if v, _ := defencePolicies.Load().(string); v != "" {
		parts := strings.Split(v, ",")
		out := parts[:0]
		for _, p := range parts {
			if p = strings.TrimSpace(p); p != "" {
				out = append(out, p)
			}
		}
		return out
	}
	return []string{"none", "pssf", "bandit-eps", "bandit-ucb", "mtd"}
}

const (
	// defenceDetectIters bounds the attacker's follow-up detection episodes
	// (per candidate host) once co-residency is established. Six iterations
	// is past the paper's median-to-detection on a quiet host, so a miss at
	// six is a defence effect, not an unlucky early stop.
	defenceDetectIters = 6
	// defenceMTDPeriod is the moving-target cadence in the sweep: half a
	// probe window, so a sender's 16-tick score averages over at most 8
	// ticks of true co-residency — enough to poison the attacker's judgment
	// with stale candidates.
	defenceMTDPeriod = attack.CampaignProbeWindow / 2
)

// defenceCell is one (fleet size, policy) outcome of the sweep.
type defenceCell struct {
	out attack.Outcome

	moves  int // MTD re-placements (the defender's cost)
	alarms int // monitor alarm edges observed during the campaign

	detEpisodes int // follow-up detection episodes the attacker ran
	detCorrect  int // episodes that labelled the victim's workload correctly
	detUnknown  int // episodes that degraded to core.UnknownLabel
}

// DefenceSweep runs the Repttack-style co-location campaign of the fleet
// experiment against the secure placement policies, at fleet scale:
//
//   - none        — the affinity scheduler, undefended (the baseline the
//     fleet experiment shows losing: co-residency precision 1.00);
//   - pssf        — previously-selected-servers-first group pinning: the
//     attacker tenant is structurally confined away from the victim's group;
//   - bandit-eps / bandit-ucb — multi-armed-bandit allocation whose reward
//     is the leaked-signature mass the detection plane measures per host,
//     so new placements steer away from exactly the hosts worth probing;
//   - mtd         — the vulnerable affinity scheduler plus a moving-target
//     policy re-placing victims on a sub-window cadence and on per-host
//     monitor alarms, so established co-residency stops paying off.
//
// Each cell reports the attacker's whole kill chain: co-residency rate and
// candidate precision (the campaign), then the follow-up Bolt detection on
// candidate hosts graded with the PR 5 confidence machinery — accuracy,
// and how much of the defence's effect lands as graceful degradation to
// "unknown" rather than confident mislabels. Attack cost is probe ticks
// and launch attempts; defender cost is migrations.
func DefenceSweep(seed uint64) *Report {
	rep := newReport("defencesweep", "Attacker vs defender: secure placement against scheduler-guided co-location")
	rng := stats.NewRNG(seed ^ 0xdef5eed)
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	policies := DefencePolicies()
	sizes := fleetSizes()
	type cellKey struct {
		size   int
		policy string
	}
	cells := make([]cellKey, 0, len(sizes)*len(policies))
	for _, size := range sizes {
		for _, p := range policies {
			cells = append(cells, cellKey{size, p})
		}
	}

	// Cells are independent campaigns on private clusters, so they fan out
	// on the episode pool: one RNG stream per cell split serially up front,
	// results merged in sweep order (the -epworkers parity contract).
	rngs := make([]*stats.RNG, len(cells))
	for i := range rngs {
		rngs[i] = rng.Split()
	}
	results := make([]*defenceCell, len(cells))
	forEachEpisode(len(cells), func(i int) {
		results[i] = runDefenceCell(rngs[i], det, cells[i].size, cells[i].policy)
	})

	tb := trace.NewTable("Attacker vs defender: fleet size × placement policy (trickle launch strategy)",
		"Servers", "Policy", "Co-res P", "Candidates", "Precision", "Probe ticks", "Moves", "Det acc", "Unknown")
	for i, c := range cells {
		r := results[i]
		acc, unk := 0.0, 0.0
		if r.detEpisodes > 0 {
			acc = float64(r.detCorrect) / float64(r.detEpisodes)
			unk = float64(r.detUnknown) / float64(r.detEpisodes)
		}
		tb.Add(
			fmt.Sprintf("%d", c.size),
			c.policy,
			fmt.Sprintf("%.2f", r.out.CoResP),
			fmt.Sprintf("%d", r.out.Candidates),
			fmt.Sprintf("%.2f", r.out.Precision),
			fmt.Sprintf("%d", r.out.ProbeTicks),
			fmt.Sprintf("%d", r.moves),
			fmt.Sprintf("%.2f", acc),
			fmt.Sprintf("%.2f", unk),
		)
		key := fmt.Sprintf("%s_%d", c.policy, c.size)
		rep.Metrics["coresidency_p_"+key] = r.out.CoResP
		rep.Metrics["precision_"+key] = r.out.Precision
		rep.Metrics["probe_ticks_"+key] = float64(r.out.ProbeTicks)
		rep.Metrics["launches_"+key] = float64(r.out.Launches)
		rep.Metrics["moves_"+key] = float64(r.moves)
		rep.Metrics["det_episodes_"+key] = float64(r.detEpisodes)
		rep.Metrics["det_accuracy_"+key] = acc
		rep.Metrics["det_unknown_"+key] = unk
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"the kill chain is scored end to end: co-residency precision is the campaign's placement success; det acc is the follow-up Bolt identification on candidate hosts, graded with confidence-floor degradation to \"unknown\"",
		"pssf and the bandits defeat the campaign at placement time (no candidates to escalate on); mtd lets placement succeed and then rots it — stale candidates and mid-episode migrations surface as precision loss and unknowns, at the cost of live migrations",
		"cells fan out on the episode pool and each campaign ticks on the sharded fleet engine; the report is byte-identical at every -epworkers and -shardworkers level")
	return rep
}

// runDefenceCell runs one policy's full attacker-vs-defender cell: the
// trickle-strategy campaign (the stronger launcher in the fleet sweep)
// against the policy's scheduler and hooks, then the attacker's follow-up
// detection on whatever candidate hosts survived.
func runDefenceCell(rng *stats.RNG, det *core.Detector, servers int, policy string) *defenceCell {
	res := &defenceCell{}

	// Per-cell stream order is fixed: scheduler stream, campaign stream,
	// detection stream. Policies that need no scheduler stream still take
	// one, so every policy's campaign sees the same campaign stream.
	schedRNG := rng.Split()
	campRNG := rng.Split()
	detRNG := rng.Split()

	var sched cluster.Scheduler
	var bandit *cluster.Bandit
	switch policy {
	case "pssf":
		sched = cluster.NewPSSF(0)
	case "bandit-eps":
		bandit = cluster.NewBandit(cluster.EpsilonGreedy, schedRNG)
		sched = bandit
	case "bandit-ucb":
		bandit = cluster.NewBandit(cluster.UCB, schedRNG)
		sched = bandit
	default: // "none" and "mtd" place with the vulnerable affinity scheduler
		sched = cluster.NewAffinity(cluster.LeastLoaded{})
	}

	c := attack.NewCampaign(campRNG, servers, sched, true)

	var hooks attack.Hooks
	var mt *defence.MovingTarget
	if bandit != nil {
		// The detection plane's per-host leak signal doubles as the bandit's
		// reward. Two warm-up windows let the allocator see which hosts leak
		// before the first sender placement, as a provider that monitors
		// continuously would.
		hooks.WarmupWindows = 2
		hooks.AfterWindow = func(_ int, scores []float64) {
			for i, sc := range scores {
				bandit.Observe(i, sc/attack.CampaignProbeWindow/(2*attack.CampaignProbeThreshold))
			}
		}
	}
	if policy == "mtd" {
		mt = defence.NewMovingTarget(defenceMTDPeriod)
		idx := make(map[*sim.Server]int, servers)
		for i, s := range c.Cl.Servers {
			idx[s] = i
		}
		newMonitor := func() *defence.Monitor {
			return defence.NewMonitor(&defence.CPUThreshold{Threshold: 70, Sustain: attack.CampaignProbeWindow})
		}
		// Victims are the protected VMs: their hosts carry monitors, and the
		// monitor follows the victim when it moves.
		rehome := func(src, dst *sim.Server) {
			if src != nil && c.Engine.Monitor(idx[src]) != nil && !c.HostHasVictim(src) {
				c.Engine.SetMonitor(idx[src], nil)
			}
			if dst != nil && c.Engine.Monitor(idx[dst]) == nil {
				c.Engine.SetMonitor(idx[dst], newMonitor())
			}
		}
		for _, id := range c.Victims {
			rehome(nil, c.Cl.HostOf(id))
			mt.Track(id, 0)
		}
		moveVictim := func(id string, t sim.Tick) {
			src := c.Cl.HostOf(id)
			dst, err := c.Cl.Migrate(id, t)
			if err != nil {
				return // full cluster: the clock stays due, retried next tick
			}
			mt.Moved(id, t)
			rehome(src, dst)
		}
		hooks.AfterTick = func(t sim.Tick, events []fleet.Event) {
			for _, ev := range events {
				if ev.Kind != fleet.MonitorAlarm {
					continue
				}
				res.alarms++
				alarmed := c.Cl.Servers[ev.Server]
				for _, id := range c.Victims {
					if c.Cl.HostOf(id) == alarmed {
						moveVictim(id, t)
					}
				}
				if m := c.Engine.Monitor(ev.Server); m != nil {
					m.Reset()
				}
			}
			for _, id := range c.Victims {
				if mt.Due(id, t) {
					moveVictim(id, t)
				}
			}
		}
	}

	res.out = c.Run(hooks)

	// Follow-up detection: the attacker escalates to the full Bolt pipeline
	// on each candidate host, exactly as the coresidency experiment does on
	// a single server — here against whatever the defence left standing.
	// Under mtd the cadence keeps running between probing iterations, so an
	// episode's later ramps may profile a host the victim already left.
	t0 := c.T
	for _, hi := range c.CandidateHosts {
		host := c.Cl.Servers[hi]
		// The attacker recycles its probe senders on this host into the
		// full adversary VM (the senders did their job; the adversary needs
		// their capacity and more).
		var senders []string
		for _, vm := range host.VMs() {
			if strings.HasPrefix(vm.ID, "sender-") {
				senders = append(senders, vm.ID)
			}
		}
		for _, id := range senders {
			host.Remove(id)
		}
		// Launch the largest adversary VM the host accepts (Fig. 10's size
		// sensitivity: smaller adversaries profile slower but still work).
		var adv *probe.Adversary
		for _, vcpus := range []int{4, 2, 1} {
			a := probe.NewAdversary(fmt.Sprintf("bolt-%d", hi), vcpus, probe.Config{}, detRNG.Split())
			if err := host.Place(a.VM); err == nil {
				adv = a
				break
			}
		}
		if adv == nil {
			continue // no headroom even so: escalation fails on this host
		}
		hadVictim := c.HostHasVictim(host)
		ep := det.NewEpisode(host, adv)
		var last *mining.Result
		for it := 0; it < defenceDetectIters; it++ {
			last = ep.Step(t0)
			if mt != nil {
				vt := t0 + ep.Ticks
				for _, id := range c.Victims {
					if mt.Due(id, vt) {
						if _, err := c.Cl.Migrate(id, vt); err == nil {
							mt.Moved(id, vt)
						}
					}
				}
			}
		}
		// Grade with the confidence machinery, then score the attacker's
		// actionable claim. On a ~6-resident fleet host the single-victim
		// label lands in the victim's confusion neighbourhood (a database
		// engine, not necessarily *the* engine — the confusion experiment's
		// finding), so the episode confirms the attack when any surfaced
		// label is a database workload; the attack succeeded only when that
		// confirmation was true — the victim really was co-resident when
		// the attacker escalated. Stale candidates (mtd) and phantom
		// candidates (pssf) fail here even when the labelling is confident.
		label, _, unknown := ep.Grade(last)
		res.detEpisodes++
		dbSeen := !unknown && isDatabaseLabel(label)
		if !dbSeen {
			for _, cand := range ep.Candidates(3) {
				if cand.Confident() && isDatabaseLabel(cand.Best().Label) {
					dbSeen = true
					break
				}
			}
		}
		switch {
		case unknown:
			res.detUnknown++
		case dbSeen && hadVictim:
			res.detCorrect++
		}
		host.Remove(adv.VM.ID)
		t0 += ep.Ticks
	}
	if mt != nil {
		res.moves = mt.Moves()
	}
	return res
}

// isDatabaseLabel reports whether a detected workload label names a
// database engine — the victim's class family, and the attacker's
// confirmation signal in the sweep's scoring (see runDefenceCell).
func isDatabaseLabel(label string) bool {
	class, _, _ := strings.Cut(label, ":")
	switch class {
	case "mysql", "postgres", "mongodb", "cassandra":
		return true
	}
	return false
}
