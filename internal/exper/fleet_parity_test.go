package exper

import (
	"bytes"
	"testing"

	"bolt/internal/fleet"
)

// TestFleetExpParityAcrossShardWorkers is the fleet-scale determinism
// contract at the experiment level: the rendered fleet report must be
// byte-identical between the serial single-worker reference and every
// sharded -shardworkers level, including widths that do not divide the
// server count. The engine-level parity test (internal/fleet) checks the
// event stream; this one checks everything layered on top — scheduler
// decisions, probe scores, candidate judgments, the formatted table.
func TestFleetExpParityAcrossShardWorkers(t *testing.T) {
	render := func(workers int) []byte {
		fleet.SetShardWorkers(workers)
		defer fleet.SetShardWorkers(0)
		var buf bytes.Buffer
		FleetExp(42).Render(&buf)
		return buf.Bytes()
	}
	ref := render(1)
	if len(ref) == 0 {
		t.Fatal("serial reference rendered no output")
	}
	for _, workers := range []int{2, 4, 8} {
		got := render(workers)
		if !bytes.Equal(got, ref) {
			i := 0
			for i < len(got) && i < len(ref) && got[i] == ref[i] {
				i++
			}
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("shardworkers=%d output diverged from serial reference at byte %d: …%q…",
				workers, i, ref[lo:min(i+60, len(ref))])
		}
	}
}
