package exper

import (
	"bytes"
	"crypto/md5"
	"fmt"
	"testing"

	"bolt/internal/attack"
	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/defence"
	"bolt/internal/fleet"
	"bolt/internal/mining"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// Golden seed-42 hashes of the pre-defence suite (every experiment except
// defencesweep), captured from the boltbench output of the tree this PR
// grew from. Pinning them proves two things at once: extracting the
// campaign into internal/attack left the fleet experiment byte-identical,
// and with the defence plane "off" (its experiment excluded) the suite
// renders exactly what it always did. New experiments append after
// existing ones, so these hashes also pin the prefix property: the full
// suite's output must begin with exactly these bytes.
const (
	goldenSuiteStdoutMD5 = "06d9a92127e98c8e5c2ea66c2807da4f"
	goldenSuiteJSONMD5   = "b49c23043faff848bca707214490dc7b"
)

// withoutDefenceSweep returns the experiment list with defencesweep
// removed — the "defence off" suite.
func withoutDefenceSweep() []Experiment {
	var out []Experiment
	for _, e := range All() {
		if e.ID != "defencesweep" {
			out = append(out, e)
		}
	}
	return out
}

// renderStdout renders the experiments exactly the way cmd/boltbench
// writes stdout: reports in order, each through Report.Render.
func renderStdout(t *testing.T, exps []Experiment, seed uint64, parallel int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range Run(exps, seed, parallel) {
		r.Report.Render(&buf)
	}
	return buf.Bytes()
}

// TestSuiteGoldenWithDefenceOff pins the defence-off suite against the
// golden seed-42 hashes at several -parallel levels, in both output
// formats, and checks the full suite (defence on) extends it byte for
// byte.
func TestSuiteGoldenWithDefenceOff(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite at four parallelism levels")
	}
	const seed = 42
	for _, parallel := range []int{1, 2, 4, 8} {
		got := renderStdout(t, withoutDefenceSweep(), seed, parallel)
		if sum := fmt.Sprintf("%x", md5.Sum(got)); sum != goldenSuiteStdoutMD5 {
			t.Fatalf("parallel=%d: defence-off suite stdout md5 = %s, want golden %s",
				parallel, sum, goldenSuiteStdoutMD5)
		}
	}

	results := Run(withoutDefenceSweep(), seed, 4)
	reports := make([]*Report, len(results))
	for i, r := range results {
		reports[i] = r.Report
	}
	var buf bytes.Buffer
	if err := WriteAllJSON(&buf, seed, reports); err != nil {
		t.Fatalf("WriteAllJSON: %v", err)
	}
	if sum := fmt.Sprintf("%x", md5.Sum(buf.Bytes())); sum != goldenSuiteJSONMD5 {
		t.Fatalf("defence-off suite JSON md5 = %s, want golden %s", sum, goldenSuiteJSONMD5)
	}

	// Prefix property: the full suite is the defence-off suite plus
	// appended experiments — earlier bytes must be untouched.
	old := renderStdout(t, withoutDefenceSweep(), seed, 4)
	full := renderStdout(t, All(), seed, 4)
	if !bytes.HasPrefix(full, old) {
		t.Fatal("full suite output no longer extends the defence-off suite byte-for-byte")
	}
}

// TestDefenceSweepParityAcrossWorkers is the defencesweep determinism
// contract: the rendered report must be byte-identical across -epworkers
// (cells fan out on the episode pool) and -shardworkers (each campaign
// ticks on the sharded fleet engine), including widths that do not divide
// the cell or server counts.
func TestDefenceSweepParityAcrossWorkers(t *testing.T) {
	render := func(epworkers, shardworkers int) []byte {
		SetEpisodeWorkers(epworkers)
		fleet.SetShardWorkers(shardworkers)
		defer SetEpisodeWorkers(0)
		defer fleet.SetShardWorkers(0)
		var buf bytes.Buffer
		DefenceSweep(42).Render(&buf)
		return buf.Bytes()
	}
	ref := render(1, 1)
	if len(ref) == 0 {
		t.Fatal("serial reference rendered no output")
	}
	for _, w := range [][2]int{{2, 1}, {8, 1}, {1, 3}, {1, 8}, {4, 4}, {3, 7}} {
		got := render(w[0], w[1])
		if !bytes.Equal(got, ref) {
			i := 0
			for i < len(got) && i < len(ref) && got[i] == ref[i] {
				i++
			}
			lo := i - 60
			if lo < 0 {
				lo = 0
			}
			t.Fatalf("epworkers=%d shardworkers=%d diverged from serial reference at byte %d: …%q…",
				w[0], w[1], i, ref[lo:min(i+60, len(ref))])
		}
	}
}

// TestDefenceSweepDefeatsAffinityAttack pins the sweep's headline result
// at seed 42: the undefended affinity scheduler hands the attacker perfect
// candidate precision at 256 servers, and at least one secure policy
// drives it below 0.5.
func TestDefenceSweepDefeatsAffinityAttack(t *testing.T) {
	rep := DefenceSweep(42)
	base, ok := rep.Metrics["precision_none_256"]
	if !ok {
		t.Fatal("baseline metric precision_none_256 missing")
	}
	if base != 1.0 {
		t.Fatalf("undefended precision at 256 servers = %g, want 1.0", base)
	}
	defended := []string{"pssf", "bandit-eps", "bandit-ucb", "mtd"}
	broke := false
	for _, p := range defended {
		key := "precision_" + p + "_256"
		v, ok := rep.Metrics[key]
		if !ok {
			t.Fatalf("metric %s missing", key)
		}
		if v < 0.5 {
			broke = true
		}
		for _, mk := range []string{"coresidency_p_", "det_accuracy_", "det_unknown_", "moves_", "probe_ticks_"} {
			if _, ok := rep.Metrics[mk+p+"_256"]; !ok {
				t.Fatalf("metric %s%s_256 missing", mk, p)
			}
		}
	}
	if !broke {
		t.Fatalf("no defended policy pushed precision below 0.5 at 256 servers")
	}
	if rep.Metrics["moves_mtd_256"] == 0 {
		t.Fatal("mtd ran without recording any migrations")
	}
}

// TestMTDMigratesVictimsMidAttack drives a real campaign with the
// moving-target hooks and checks the defence acted *during* the attack:
// victims moved, every victim is still resolvable through the cluster
// index afterwards, and migration churn never duplicated a VM.
func TestMTDMigratesVictimsMidAttack(t *testing.T) {
	rng := stats.NewRNG(9)
	sched := cluster.NewAffinity(cluster.LeastLoaded{})
	c := attack.NewCampaign(rng, 64, sched, true)

	mt := defence.NewMovingTarget(attack.CampaignProbeWindow / 2)
	for _, id := range c.Victims {
		mt.Track(id, 0)
	}
	hooks := attack.Hooks{AfterTick: func(tick sim.Tick, _ []fleet.Event) {
		for _, id := range c.Victims {
			if mt.Due(id, tick) {
				if _, err := c.Cl.Migrate(id, tick); err == nil {
					mt.Moved(id, tick)
				}
			}
		}
	}}
	out := c.Run(hooks)

	if mt.Moves() == 0 {
		t.Fatal("cadence never migrated a victim during the attack")
	}
	for _, id := range c.Victims {
		host := c.Cl.HostOf(id)
		if host == nil {
			t.Fatalf("victim %s lost by migration", id)
		}
		if host.Lookup(id) == nil {
			t.Fatalf("index says %s is on %s but the server does not hold it", id, host.Name())
		}
	}
	count := map[string]int{}
	for _, s := range c.Cl.Servers {
		for _, vm := range s.VMs() {
			count[vm.ID]++
		}
	}
	for id, n := range count {
		if n != 1 {
			t.Fatalf("VM %s appears on %d servers after migration churn", id, n)
		}
	}
	if out.Launches != attack.CampaignSenders {
		t.Fatalf("campaign launched %d senders, want %d", out.Launches, attack.CampaignSenders)
	}
}

// TestEpisodePartialProfileAfterVictimMigration is the probe-ramp edge:
// the victim is migrated away between an episode's iterations, so later
// ramps profile a host the victim already left. The graded outcome must
// still be well-formed — either a confident label from the detector's
// label space or a graceful degradation to UnknownLabel — never a crash or
// an empty grade.
func TestEpisodePartialProfileAfterVictimMigration(t *testing.T) {
	seed := uint64(11)
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})
	rng := stats.NewRNG(seed)

	cl := cluster.New(2, sim.ServerConfig{}, cluster.LeastLoaded{})
	vspec := workload.SQLDatabase(rng.Split(), 2)
	vspec.Jitter = 0
	app := workload.NewApp(vspec, workload.Constant{Level: 0.9}, rng.Uint64())
	host, err := cl.Place(&sim.VM{ID: "victim", VCPUs: 4, App: app}, 0)
	if err != nil {
		t.Fatal(err)
	}
	adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
	if err := host.Place(adv.VM); err != nil {
		t.Fatal(err)
	}

	ep := det.NewEpisode(host, adv)
	var last *mining.Result
	for it := 0; it < 2; it++ {
		last = ep.Step(0)
	}
	if _, err := cl.Migrate("victim", ep.Ticks); err != nil {
		t.Fatalf("mid-episode migration: %v", err)
	}
	if cl.HostOf("victim") == host {
		t.Fatal("victim did not actually leave the profiled host")
	}
	for it := 0; it < 2; it++ {
		last = ep.Step(0)
	}

	label, conf, unknown := ep.Grade(last)
	if conf < 0 || conf > 1 {
		t.Fatalf("confidence %g outside [0, 1]", conf)
	}
	if unknown {
		if label != core.UnknownLabel {
			t.Fatalf("unknown grade carries label %q, want %q", label, core.UnknownLabel)
		}
		return
	}
	if label == "" {
		t.Fatal("confident grade with an empty label")
	}
	if _, ok := det.TrainingProfile(label); !ok {
		t.Fatalf("confident label %q is not in the detector's label space", label)
	}
}
