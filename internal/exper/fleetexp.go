package exper

import (
	"fmt"
	"sync/atomic"

	"bolt/internal/cluster"
	"bolt/internal/fleet"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// fleetServers overrides the fleet sizes the fleet experiment sweeps
// (the boltbench -fleet knob). 0 sweeps the default ladder. Like the
// episode/shard worker knobs this is process-global configuration read
// once per run: output is byte-identical across runs at any fixed value,
// but different values are different experiments (a 4096-server fleet is
// not a 64-server fleet).
var fleetServers atomic.Int32

// SetFleetServers fixes the fleet experiment's server count; n <= 0
// restores the default sweep.
func SetFleetServers(n int) {
	if n < 0 {
		n = 0
	}
	fleetServers.Store(int32(n))
}

// FleetServers returns the configured fleet size override (0 = default).
func FleetServers() int { return int(fleetServers.Load()) }

const (
	// fleetBackgroundVMs is the number of background tenant VMs seeded per
	// server (~5 VMs/server matches the ~20k-VM datacenter at 4096 servers).
	fleetBackgroundVMs = 5
	// fleetBackgroundLoad keeps background tenants at the low mean
	// utilisation the paper observes in production fleets — the headroom
	// that makes placement attacks (and their detection signal) possible.
	fleetBackgroundLoad = 0.35
	// fleetVictimLoad drives the victim service hard enough that its
	// signature stands out of the background on its critical resources.
	fleetVictimLoad = 0.9
	// fleetSenders is the attacker's launch budget per strategy run.
	fleetSenders = 8
	// fleetProbeWindow is how many fleet ticks each launch wave probes
	// before the attacker judges its senders.
	fleetProbeWindow = 16
	// fleetProbeThreshold is the mean two-resource pressure score above
	// which a sender declares its host victim-like. Calibrated between the
	// background-only host scores (two uncore resources at ~0.35 load) and
	// a victim host's (the victim alone adds ~0.9 × its top-two base).
	fleetProbeThreshold = 110.0
)

// FleetExp sweeps scheduler-guided co-location attacks across fleet size ×
// scheduler policy × launch strategy, on the sharded fleet-tick engine.
//
// The attack follows Repttack's observation that placement policy, not
// placement luck, decides co-residency: an adversary launches probe VMs
// either in one bulk wave or one-at-a-time (trickling, deleting misses
// between waves — the launch strategies of the placement-vulnerability
// literature), and under the affinity scheduler the senders carry an
// affinity request naming the victim's deployment label, steering the
// scheduler itself onto the victim's hosts. Each wave then probes for
// fleetProbeWindow fleet ticks: every server's monitor samples the
// victim class's two strongest uncore resources from the observation
// plane, and senders whose host's mean score crosses the threshold become
// co-residency candidates. Ground truth (via Cluster.HostOf) scores the
// candidates into co-residency probability and precision.
func FleetExp(seed uint64) *Report {
	rep := newReport("fleet", "Fleet-scale scheduler-guided co-location (launch-strategy sweep)")
	rng := stats.NewRNG(seed ^ 0xf1ee7)

	sizes := []int{64, 256}
	if n := FleetServers(); n > 0 {
		sizes = []int{n}
	}

	tb := trace.NewTable("Launch-strategy sweep: fleet size × scheduler × launch strategy",
		"Servers", "VMs", "Scheduler", "Strategy", "Co-res P", "Candidates", "Precision", "Probe ticks")

	for _, size := range sizes {
		for _, mkSched := range []func() cluster.Scheduler{
			func() cluster.Scheduler { return cluster.LeastLoaded{} },
			func() cluster.Scheduler { return cluster.Quasar{} },
			func() cluster.Scheduler { return cluster.NewAffinity(cluster.LeastLoaded{}) },
		} {
			for _, trickle := range []bool{false, true} {
				sched := mkSched() // fresh per run: Affinity accumulates labels
				out := runFleetAttack(rng.Split(), size, sched, trickle)
				strategy := "bulk"
				if trickle {
					strategy = "trickle"
				}
				tb.Add(
					fmt.Sprintf("%d", size),
					fmt.Sprintf("%d", out.VMs),
					sched.Name(),
					strategy,
					fmt.Sprintf("%.2f", out.CoResP),
					fmt.Sprintf("%d", out.Candidates),
					fmt.Sprintf("%.2f", out.Precision),
					fmt.Sprintf("%d", out.ProbeTicks),
				)
				key := fmt.Sprintf("%s_%s_%d", sched.Name(), strategy, size)
				rep.Metrics["coresidency_p_"+key] = out.CoResP
				rep.Metrics["precision_"+key] = out.Precision
				rep.Metrics["probe_ticks_"+key] = float64(out.ProbeTicks)
			}
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"affinity rows reproduce Repttack's finding: a scheduler that honours co-location hints hands the attacker placement; load-balancing schedulers leave co-residency to launch volume and churn",
		"probe scores are read from the sharded fleet-tick engine; the report is byte-identical at every -shardworkers level")
	return rep
}

// fleetOutcome is one (size, scheduler, strategy) cell of the sweep.
type fleetOutcome struct {
	VMs        int     // fleet VM population at the end of the run
	CoResP     float64 // fraction of launches that landed co-resident with a victim
	Candidates int     // senders whose probe score crossed the threshold
	Precision  float64 // candidates that truly were co-resident
	ProbeTicks int     // total sender-ticks spent probing
}

// runFleetAttack builds a fleet of the given size under the scheduler,
// seeds victims, and runs one launch-strategy attack over the sharded
// fleet-tick engine.
func runFleetAttack(rng *stats.RNG, servers int, sched cluster.Scheduler, trickle bool) fleetOutcome {
	cl := cluster.New(servers, sim.ServerConfig{}, sched)
	aff, _ := sched.(*cluster.Affinity)

	// Background tenants predate the attack, so they are placed directly
	// rather than through the scheduler under test.
	mk := []func(*stats.RNG, int) workload.Spec{
		workload.Memcached, workload.Hadoop, workload.Spark, workload.Webserver,
	}
	live := make([][]string, servers) // per-server live background VM ids
	nextBG := 0
	addBackground := func(i int) {
		spec := mk[nextBG%len(mk)](rng.Split(), nextBG)
		app := workload.NewApp(spec, workload.Constant{Level: fleetBackgroundLoad}, rng.Uint64())
		id := fmt.Sprintf("bg-%d", nextBG)
		vm := &sim.VM{ID: id, VCPUs: 1 + nextBG%3, App: app}
		nextBG++
		if err := cl.Servers[i].Place(vm); err != nil {
			return // host full: the tenant's launch fails, as in production
		}
		live[i] = append(live[i], id)
	}
	for i := range cl.Servers {
		for j := 0; j < fleetBackgroundVMs; j++ {
			addBackground(i)
		}
	}

	// Victims: one labelled SQL service instance per 64 servers, placed
	// through the scheduler (the victim is an ordinary tenant).
	vspec := workload.SQLDatabase(rng.Split(), 2) // mysql:olap — disk-dominant signature
	vspec.Jitter = 0
	nv := servers / 64
	if nv < 1 {
		nv = 1
	}
	victims := make([]string, nv)
	for i := range victims {
		id := fmt.Sprintf("victim-%d", i)
		app := workload.NewApp(vspec, workload.Constant{Level: fleetVictimLoad}, rng.Uint64())
		if aff != nil {
			aff.Label(id, "svc=db")
		}
		if _, err := cl.Place(&sim.VM{ID: id, VCPUs: 4, App: app}, 0); err != nil {
			panic(err)
		}
		victims[i] = id
	}
	hostHasVictim := func(s *sim.Server) bool {
		for _, vid := range victims {
			if cl.HostOf(vid) == s {
				return true
			}
		}
		return false
	}

	// The probe signal: the victim class's two strongest uncore resources
	// (core resources are invisible without sharing a physical core).
	r1, r2 := victimUncoreSignature(vspec.Base)

	engine := fleet.NewEngine(cl, rng.Split())
	scores := make([]float64, servers)
	monitor := func(w *fleet.World) {
		p := w.Server.ObservedPressure(nil, r1, w.Tick) +
			w.Server.ObservedPressure(nil, r2, w.Tick)
		p += (w.RNG.Float64() - 0.5) * 4 // per-sample sensor noise
		scores[w.Index] += p
	}
	idx := make(map[*sim.Server]int, servers)
	for i, s := range cl.Servers {
		idx[s] = i
	}

	probeSpec := workload.Spec{Label: "probe:sender", Class: "probe"} // zero demand
	waves, perWave := 1, fleetSenders
	if trickle {
		waves, perWave = fleetSenders, 1
	}

	var out fleetOutcome
	var lastStats fleet.Stats
	t := sim.Tick(0)
	launches, coRes, trueCands := 0, 0, 0
	liveSenders := 0
	nextSender := 0
	for wave := 0; wave < waves; wave++ {
		if wave > 0 {
			// Background churn between waves: tenants leave and arrive,
			// shifting the free-capacity landscape a relaunch explores.
			moves := 1 + servers/32
			for m := 0; m < moves; m++ {
				src := rng.Intn(servers)
				if n := len(live[src]); n > 2 {
					cl.Servers[src].Remove(live[src][n-1])
					live[src] = live[src][:n-1]
				}
				addBackground(rng.Intn(servers))
			}
		}

		// Launch this wave's senders through the scheduler under test.
		type senderRec struct {
			id   string
			host *sim.Server
		}
		var placed []senderRec
		for k := 0; k < perWave; k++ {
			id := fmt.Sprintf("sender-%d", nextSender)
			nextSender++
			app := workload.NewApp(probeSpec, workload.Constant{Level: 0}, rng.Uint64())
			vm := &sim.VM{ID: id, VCPUs: 1, App: app}
			if aff != nil {
				aff.Want(id, "svc=db")
			}
			launches++
			host, err := cl.Place(vm, t)
			if err != nil {
				continue // cluster full: a wasted launch, as in a real attack
			}
			placed = append(placed, senderRec{id, host})
			if hostHasVictim(host) {
				coRes++
			}
		}
		liveSenders += len(placed)

		// Probe window: the whole fleet ticks on the sharded engine.
		for i := range scores {
			scores[i] = 0
		}
		for w := 0; w < fleetProbeWindow; w++ {
			_, lastStats = engine.Tick(t, monitor)
			t++
		}
		out.ProbeTicks += fleetProbeWindow * liveSenders

		// Judge this wave's senders; trickling deletes the misses so the
		// next wave's launch budget is not squandered on known-bad hosts.
		for _, rec := range placed {
			mean := scores[idx[rec.host]] / fleetProbeWindow
			if mean >= fleetProbeThreshold {
				out.Candidates++
				if hostHasVictim(rec.host) {
					trueCands++
				}
			} else if trickle {
				rec.host.Remove(rec.id)
				liveSenders--
			}
		}
	}

	out.VMs = lastStats.VMs
	out.CoResP = float64(coRes) / float64(launches)
	if out.Candidates > 0 {
		out.Precision = float64(trueCands) / float64(out.Candidates)
	}
	return out
}

// victimUncoreSignature returns the two strongest host-wide-visible
// resources of a victim profile — the signature a probe without core
// co-residency can still read.
func victimUncoreSignature(base sim.Vector) (sim.Resource, sim.Resource) {
	masked := base
	for _, r := range sim.CoreResources() {
		masked.Set(r, 0)
	}
	top := masked.TopK(2)
	return top[0], top[1]
}
