package exper

import (
	"fmt"
	"sync/atomic"

	"bolt/internal/attack"
	"bolt/internal/cluster"
	"bolt/internal/stats"
	"bolt/internal/trace"
)

// fleetServers overrides the fleet sizes the fleet experiment sweeps
// (the boltbench -fleet knob). 0 sweeps the default ladder. Like the
// episode/shard worker knobs this is process-global configuration read
// once per run: output is byte-identical across runs at any fixed value,
// but different values are different experiments (a 4096-server fleet is
// not a 64-server fleet).
var fleetServers atomic.Int32

// SetFleetServers fixes the fleet experiment's server count; n <= 0
// restores the default sweep.
func SetFleetServers(n int) {
	if n < 0 {
		n = 0
	}
	fleetServers.Store(int32(n))
}

// FleetServers returns the configured fleet size override (0 = default).
func FleetServers() int { return int(fleetServers.Load()) }

// fleetSizes returns the fleet-size ladder the fleet-scale experiments
// sweep, honouring the -fleet override.
func fleetSizes() []int {
	if n := FleetServers(); n > 0 {
		return []int{n}
	}
	return []int{64, 256}
}

// FleetExp sweeps scheduler-guided co-location attacks across fleet size ×
// scheduler policy × launch strategy, on the sharded fleet-tick engine.
//
// The campaign mechanics (Repttack-style launch strategies, affinity
// steering, uncore probe scoring) live in internal/attack; this experiment
// runs the undefended baseline — attack.Hooks zero value — against the
// schedulers of the placement-vulnerability literature. The defencesweep
// experiment runs the same campaigns against the secure placement
// policies.
func FleetExp(seed uint64) *Report {
	rep := newReport("fleet", "Fleet-scale scheduler-guided co-location (launch-strategy sweep)")
	rng := stats.NewRNG(seed ^ 0xf1ee7)

	tb := trace.NewTable("Launch-strategy sweep: fleet size × scheduler × launch strategy",
		"Servers", "VMs", "Scheduler", "Strategy", "Co-res P", "Candidates", "Precision", "Probe ticks")

	for _, size := range fleetSizes() {
		for _, mkSched := range []func() cluster.Scheduler{
			func() cluster.Scheduler { return cluster.LeastLoaded{} },
			func() cluster.Scheduler { return cluster.Quasar{} },
			func() cluster.Scheduler { return cluster.NewAffinity(cluster.LeastLoaded{}) },
		} {
			for _, trickle := range []bool{false, true} {
				sched := mkSched() // fresh per run: Affinity accumulates labels
				c := attack.NewCampaign(rng.Split(), size, sched, trickle)
				out := c.Run(attack.Hooks{})
				strategy := "bulk"
				if trickle {
					strategy = "trickle"
				}
				tb.Add(
					fmt.Sprintf("%d", size),
					fmt.Sprintf("%d", out.VMs),
					sched.Name(),
					strategy,
					fmt.Sprintf("%.2f", out.CoResP),
					fmt.Sprintf("%d", out.Candidates),
					fmt.Sprintf("%.2f", out.Precision),
					fmt.Sprintf("%d", out.ProbeTicks),
				)
				key := fmt.Sprintf("%s_%s_%d", sched.Name(), strategy, size)
				rep.Metrics["coresidency_p_"+key] = out.CoResP
				rep.Metrics["precision_"+key] = out.Precision
				rep.Metrics["probe_ticks_"+key] = float64(out.ProbeTicks)
			}
		}
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"affinity rows reproduce Repttack's finding: a scheduler that honours co-location hints hands the attacker placement; load-balancing schedulers leave co-residency to launch volume and churn",
		"probe scores are read from the sharded fleet-tick engine; the report is byte-identical at every -shardworkers level")
	return rep
}
