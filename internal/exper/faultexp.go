package exper

import (
	"fmt"

	"bolt/internal/core"
	"bolt/internal/fault"
	"bolt/internal/probe"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// faultRates is the sweep of headline fault rates: dense in the sub-20%
// region where the bar is "no accuracy cliff", then 30-75% where the
// pipeline visibly degrades and the unknown mechanism takes over.
var faultRates = []float64{0, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.75}

// FaultRate measures how detection degrades as the fault plane's headline
// rate sweeps from 0 to 30%: the §3.4 controlled experiment re-run with
// sample dropouts, sensor corruption, victim churn, and transient probe
// failures injected into every profiling pass — the measurement
// pathologies Bolt's real-cloud evaluation absorbs but the clean simulator
// never produced. Per rate it reports accuracy, the fraction of hosts that
// degraded to "unknown", and the fraction that mislabeled; graceful
// degradation means accuracy falls smoothly (no cliff below a 20% rate)
// while the loss is absorbed by "unknown" rather than wrong labels.
//
// The rate-0 row runs with no fault plane at all (a disabled config builds
// none), which is what the chaos-parity golden test pins: the whole suite
// at fault rate 0 is byte-identical to a build without the fault plane.
func FaultRate(seed uint64) *Report {
	rep := newReport("faultrate", "Detection accuracy vs measurement-fault rate")
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	tb := trace.NewTable(
		"Graceful degradation under injected measurement faults (20 servers, 54 victims, all four classes)",
		"fault rate", "accuracy", "unknown", "mislabeled", "mean confidence", "mean ticks", "faults injected")
	n := len(faultRates)
	xs := make([]float64, 0, n)
	accs := make([]float64, 0, n)
	unks := make([]float64, 0, n)
	miss := make([]float64, 0, n)
	// Rates are independent runs (each RunControlled derives every stream
	// from cfg.Seed), so the sweep fans out on the episode pool and the
	// table/figure rows are assembled from the slots in sweep order.
	results := make([]*ControlledResult, n)
	forEachEpisode(n, func(i int) {
		results[i] = RunControlled(ControlledConfig{
			Seed:     seed,
			Servers:  20,
			Victims:  54,
			Detector: det,
			ProbeCfg: probe.Config{Faults: fault.Config{Rate: faultRates[i]}},
		})
	})
	for ri, rate := range faultRates {
		res := results[ri]
		correct, unknown, wrong := 0, 0, 0
		confSum, tickSum := 0.0, 0.0
		for _, r := range res.Records {
			confSum += r.Confidence
			tickSum += float64(r.Ticks)
			switch {
			case r.Correct():
				correct++
			case r.Unknown:
				unknown++
			default:
				wrong++
			}
		}
		total := len(res.Records)
		acc := 100 * float64(correct) / float64(total)
		unk := 100 * float64(unknown) / float64(total)
		mis := 100 * float64(wrong) / float64(total)
		injected := uint64(0)
		for _, c := range res.FaultCounts {
			injected += c
		}
		tb.Add(
			fmt.Sprintf("%.0f%%", rate*100),
			fmt.Sprintf("%.1f%%", acc),
			fmt.Sprintf("%.1f%%", unk),
			fmt.Sprintf("%.1f%%", mis),
			fmt.Sprintf("%.2f", confSum/float64(total)),
			fmt.Sprintf("%.0f", tickSum/float64(total)),
			fmt.Sprintf("%d", injected),
		)
		xs = append(xs, rate*100)
		accs = append(accs, acc)
		unks = append(unks, unk)
		miss = append(miss, mis)
		rep.Metrics[fmt.Sprintf("accuracy_rate%.0f", rate*100)] = acc
		rep.Metrics[fmt.Sprintf("unknown_rate%.0f", rate*100)] = unk
		rep.Metrics[fmt.Sprintf("mislabeled_rate%.0f", rate*100)] = mis
	}
	rep.Tables = append(rep.Tables, tb)

	fig := trace.NewFigure("Accuracy vs fault rate", "fault rate (%)", "percent of victims")
	fig.AddSeries("accuracy", xs, accs)
	fig.AddSeries("unknown", xs, unks)
	fig.AddSeries("mislabeled", xs, miss)
	rep.Figures = append(rep.Figures, fig)

	rep.Notes = append(rep.Notes,
		"faults: per-ramp dropout + transient probe failure (retried with capped backoff), per-reading bounded sensor spikes, per-boundary co-resident churn",
		"degraded episodes report \"unknown\" instead of a label once observation confidence falls below the detector floor")
	return rep
}
