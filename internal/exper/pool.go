package exper

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// episodeWorkers is the width of the intra-experiment episode pool;
// 0 means GOMAXPROCS. It is process-global (like fault.Default) because it
// is a pure throughput knob: every episode draws from its own pre-split
// stats.RNG stream and results merge in input order, so the rendered
// output is byte-identical at every width. The deterministic-suite
// contract forbids flipping it mid-run for the same reason it forbids
// flipping the fault default: not because results would change, but so a
// run's recorded configuration stays meaningful.
var episodeWorkers atomic.Int32

// SetEpisodeWorkers fixes how many episodes may run concurrently inside
// one experiment (the boltbench -epworkers knob). n <= 0 restores the
// default (GOMAXPROCS at use time).
func SetEpisodeWorkers(n int) {
	if n < 0 {
		n = 0
	}
	episodeWorkers.Store(int32(n))
}

// EpisodeWorkers returns the current episode pool width.
func EpisodeWorkers() int {
	if n := int(episodeWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerPanic is re-raised on the caller's goroutine when a body run by
// fanOut panics in a pool worker. It preserves the original panic value
// and the worker's stack while letting the caller's own defers (profile
// writers, partially buffered reports, test cleanups) run — a bare panic
// on a worker goroutine would kill the process without unwinding anyone
// else.
type WorkerPanic struct {
	Index int    // input index whose body panicked
	Label string // human-readable unit, e.g. "experiment fig6"
	Value any    // the original panic value
	Stack string // the worker goroutine's stack at recovery
}

// Error implements error so recover()ed callers can treat the value
// uniformly.
func (p *WorkerPanic) Error() string {
	label := p.Label
	if label == "" {
		label = fmt.Sprintf("input %d", p.Index)
	}
	return fmt.Sprintf("exper: %s panicked: %v\n\nworker stack:\n%s", label, p.Value, p.Stack)
}

// fanOut runs body(i) for every i in [0, n) with at most workers bodies in
// flight and returns once all have finished. Bodies communicate results
// through index-addressed slots, so callers merge in input order — the
// same emit-in-input-order discipline Run uses for reports, which is what
// keeps output byte-identical at every worker count. workers <= 1 (or
// n <= 1) runs inline on the caller's goroutine.
//
// A panic inside a body is recovered on the worker, the remaining indices
// still run, and after every worker has drained the lowest-index panic is
// re-raised on the caller's goroutine as a *WorkerPanic. label (optional)
// names the failing unit in that error.
func fanOut(n, workers int, label func(int) string, body func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			body(i)
		}
		return
	}

	var mu sync.Mutex
	var wp *WorkerPanic
	runSafe := func(i int) {
		defer func() {
			v := recover()
			if v == nil {
				return
			}
			stack := string(debug.Stack())
			mu.Lock()
			// Keep the lowest-index panic so the re-raised failure is
			// deterministic regardless of worker scheduling.
			if wp == nil || i < wp.Index {
				wp = &WorkerPanic{Index: i, Value: v, Stack: stack}
				if label != nil {
					wp.Label = label(i)
				}
			}
			mu.Unlock()
		}()
		body(i)
	}

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runSafe(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if wp != nil {
		panic(wp)
	}
}

// forEachEpisode runs body(i) for every i in [0, n) on the episode worker
// pool. It is the intra-experiment counterpart of Run: the caller splits
// one RNG stream per episode serially up front, bodies consume only their
// own stream and write into their own result slot, and the caller merges
// slots in input order afterwards — so output bytes are identical at every
// pool width. Concurrent bodies must touch disjoint servers/VMs (episodes
// on different hosts, or trials on private servers); shared detectors are
// safe by their immutability contract.
func forEachEpisode(n int, body func(int)) {
	fanOut(n, EpisodeWorkers(), nil, body)
}
