package exper

import (
	"runtime"
	"sync/atomic"

	"bolt/internal/par"
)

// episodeWorkers is the width of the intra-experiment episode pool;
// 0 means GOMAXPROCS. It is process-global (like fault.Default) because it
// is a pure throughput knob: every episode draws from its own pre-split
// stats.RNG stream and results merge in input order, so the rendered
// output is byte-identical at every width. The deterministic-suite
// contract forbids flipping it mid-run for the same reason it forbids
// flipping the fault default: not because results would change, but so a
// run's recorded configuration stays meaningful.
var episodeWorkers atomic.Int32

// SetEpisodeWorkers fixes how many episodes may run concurrently inside
// one experiment (the boltbench -epworkers knob). n <= 0 restores the
// default (GOMAXPROCS at use time).
func SetEpisodeWorkers(n int) {
	if n < 0 {
		n = 0
	}
	episodeWorkers.Store(int32(n))
}

// EpisodeWorkers returns the current episode pool width.
func EpisodeWorkers() int {
	if n := int(episodeWorkers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// WorkerPanic is the panic wrapper re-raised on the caller's goroutine when
// a pool body panics. The type (and the fan-out discipline around it) moved
// to internal/par so the fleet tick engine could share them; the alias
// keeps exper's public contract — Run and forEachEpisode re-raise
// *WorkerPanic — spelled the way callers recovered it before the move.
type WorkerPanic = par.WorkerPanic

// fanOut runs body(i) for every i in [0, n) with at most workers bodies in
// flight; see par.FanOut for the merge and panic discipline.
func fanOut(n, workers int, label func(int) string, body func(int)) {
	par.FanOut(n, workers, label, body)
}

// forEachEpisode runs body(i) for every i in [0, n) on the episode worker
// pool. It is the intra-experiment counterpart of Run: the caller splits
// one RNG stream per episode serially up front, bodies consume only their
// own stream and write into their own result slot, and the caller merges
// slots in input order afterwards — so output bytes are identical at every
// pool width. Concurrent bodies must touch disjoint servers/VMs (episodes
// on different hosts, or trials on private servers); shared detectors are
// safe by their immutability contract.
func forEachEpisode(n int, body func(int)) {
	fanOut(n, EpisodeWorkers(), nil, body)
}
