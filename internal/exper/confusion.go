package exper

import (
	"fmt"
	"sort"

	"bolt/internal/core"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// Confusion quantifies the paper's misclassification claim (§3.4):
// "Misclassified jobs are typically identified as workloads with the same
// or similar critical resources." Each victim runs alone with the
// adversary; misdetections are tallied into a class×class confusion matrix
// and, for every miss, the dominant resources of truth and prediction are
// compared.
func Confusion(seed uint64) *Report {
	rep := newReport("confusion", "What do misclassified victims get mistaken for?")
	rng := stats.NewRNG(seed ^ 0xc04f)
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	const trials = 160
	victims := workload.VictimSpecs(seed, trials)

	classes := map[string]int{}
	order := []string{}
	idx := func(class string) int {
		if i, ok := classes[class]; ok {
			return i
		}
		classes[class] = len(order)
		order = append(order, class)
		return classes[class]
	}

	type miss struct {
		truth, got   string
		sameDominant bool
		sameTop2     bool
	}
	var misses []miss
	cells := map[[2]int]int{}
	correct := 0

	// Trials are independent (each builds its own server and adversary),
	// so they fan out on the episode pool: one RNG stream is split off per
	// trial serially here, each body consumes only its own stream, and the
	// per-trial outcomes are folded into the confusion matrix in trial
	// order below — identical bytes at every pool width.
	type trialOutcome struct {
		gotLabel, gotClass string
	}
	trialRngs := make([]*stats.RNG, len(victims))
	for i := range trialRngs {
		trialRngs[i] = rng.Split()
	}
	outcomes := make([]trialOutcome, len(victims))
	forEachEpisode(len(victims), func(i int) {
		trng := trialRngs[i]
		spec := victims[i]
		s := sim.NewServer("s0", sim.ServerConfig{})
		app := workload.NewApp(spec, workload.Constant{Level: trng.Range(0.85, 1)}, trng.Uint64())
		if err := s.Place(&sim.VM{ID: "v", VCPUs: 3, App: app}); err != nil {
			panic(err)
		}
		adv := probe.NewAdversary("bolt", 4, probe.Config{}, trng.Split())
		if err := s.Place(adv.VM); err != nil {
			panic(err)
		}
		d := det.Detect(s, adv, sim.Tick(i*5000), 1)
		best := d.Result.Best()
		outcomes[i] = trialOutcome{gotLabel: best.Label, gotClass: best.Class}
	})
	for i, spec := range victims {
		out := outcomes[i]
		ti, gi := idx(spec.Class), idx(out.gotClass)
		cells[[2]int{ti, gi}]++
		if core.LabelMatches(out.gotLabel, spec.Label) {
			correct++
			continue
		}
		prof, ok := profileFor(det, out.gotLabel)
		m := miss{truth: spec.Class, got: out.gotClass}
		if ok {
			truthTop := spec.Base.TopK(2)
			gotTop := prof.TopK(2)
			m.sameDominant = truthTop[0] == gotTop[0]
			for _, a := range truthTop {
				for _, b := range gotTop {
					if a == b {
						m.sameTop2 = true
					}
				}
			}
		}
		misses = append(misses, m)
	}

	// Render the class×class confusion matrix as a heatmap.
	sort.Strings(order)
	// Rebuild indices in sorted order for a stable display.
	newIdx := map[string]int{}
	for i, c := range order {
		newIdx[c] = i
	}
	heat := trace.NewHeatmap("Confusion matrix (rows = truth, cols = detected)",
		"truth class", "detected class", len(order), len(order))
	for cell, n := range cells {
		var truthName, gotName string
		for c, i := range classes {
			if i == cell[0] {
				truthName = c
			}
			if i == cell[1] {
				gotName = c
			}
		}
		heat.Set(newIdx[truthName], newIdx[gotName], float64(n))
	}
	rep.Heatmaps = append(rep.Heatmaps, heat)

	tb := trace.NewTable("Class legend (row/col order)", "Index", "Class")
	for i, c := range order {
		tb.Add(fmt.Sprintf("%d", i), c)
	}
	rep.Tables = append(rep.Tables, tb)

	sameDom, sameTop2 := 0, 0
	for _, m := range misses {
		if m.sameDominant {
			sameDom++
		}
		if m.sameTop2 {
			sameTop2++
		}
	}
	rep.Metrics["trials"] = float64(trials)
	rep.Metrics["label_accuracy"] = 100 * float64(correct) / float64(trials)
	rep.Metrics["misses"] = float64(len(misses))
	if len(misses) > 0 {
		rep.Metrics["miss_same_dominant_pct"] = 100 * float64(sameDom) / float64(len(misses))
		rep.Metrics["miss_top2_overlap_pct"] = 100 * float64(sameTop2) / float64(len(misses))
	}
	rep.Notes = append(rep.Notes,
		"paper (§3.4): misclassified jobs are typically identified as workloads with the same or similar critical resources — measured here as dominant-resource agreement among misses")
	return rep
}

// profileFor fetches the pressure vector behind a training label.
func profileFor(det *core.Detector, label string) (sim.Vector, bool) {
	return det.TrainingProfile(label)
}
