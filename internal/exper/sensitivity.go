package exper

import (
	"fmt"

	"bolt/internal/core"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// Figure8 reproduces Fig. 8: a 4-vCPU victim instance runs five
// consecutive jobs (SPEC → Hadoop → Spark → memcached → Cassandra) over
// seven minutes; Bolt re-detects every 20 s and the figure shows the
// victim's resource pressure over time plus where each phase change is
// caught.
func Figure8(seed uint64) *Report {
	rep := newReport("fig8", "Workload phase detection")
	rng := stats.NewRNG(seed ^ 0xf168)

	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	const phaseSecs = 84 // 5 phases over ~7 minutes
	phaseDur := sim.Tick(phaseSecs * sim.TicksPerSecond)
	phases := []workload.Phase{
		{Spec: workload.SpecCPU(rng.Split(), 0), Pattern: workload.Constant{Level: 0.95}, Duration: phaseDur},
		{Spec: workload.Hadoop(rng.Split(), 3), Pattern: workload.Constant{Level: 0.9}, Duration: phaseDur},
		{Spec: workload.Spark(rng.Split(), 1), Pattern: workload.Constant{Level: 0.9}, Duration: phaseDur},
		{Spec: workload.Memcached(rng.Split(), 2), Pattern: workload.Constant{Level: 0.95}, Duration: phaseDur},
		{Spec: workload.Cassandra(rng.Split(), 1), Pattern: workload.Constant{Level: 0.9}, Duration: phaseDur},
	}
	seq := workload.NewSequence(phases, rng.Uint64())

	s := sim.NewServer("s0", sim.ServerConfig{})
	victim := &sim.VM{ID: "victim", VCPUs: 4, App: seq}
	if err := s.Place(victim); err != nil {
		panic(err)
	}
	adv := probe.NewAdversary("bolt", 4, probe.Config{}, rng.Split())
	if err := s.Place(adv.VM); err != nil {
		panic(err)
	}

	const detectEverySec = 20
	total := phaseDur * sim.Tick(len(phases))
	fig := trace.NewFigure("Fig 8: victim resource pressure over time",
		"time (s)", "pressure (%)")
	series := map[sim.Resource][]float64{}
	var times []float64

	detections, correct := 0, 0
	tb := trace.NewTable("Detections over the timeline", "t (s)", "active phase", "detected", "match")
	// This timeline is genuinely sequential and stays off the episode
	// pool: every interval re-detects on the same server with the same
	// adversary, whose measurement-noise stream and kernel state carry
	// over from one interval to the next.
	for t := sim.Tick(0); t < total; t += detectEverySec * sim.TicksPerSecond {
		// Record the ground-truth demand for the pressure plot.
		d := seq.Demand(t)
		times = append(times, t.Seconds())
		for _, r := range sim.AllResources() {
			series[r] = append(series[r], d.Get(r))
		}

		// Fresh episode each interval: phase changes invalidate previous
		// observations (§3.3: detection repeats periodically).
		res := det.Detect(s, adv, t, 1)
		active := seq.ActiveSpec(t)
		match := core.LabelMatches(res.Result.Best().Label, active.Label) ||
			core.ClassMatches(res.Result.Best().Label, active.Class)
		detections++
		if match {
			correct++
		}
		tb.Add(fmt.Sprintf("%.0f", t.Seconds()), active.Label, res.Result.Best().Label,
			fmt.Sprintf("%v", match))
	}
	for _, r := range sim.AllResources() {
		fig.AddSeries(r.String(), times, series[r])
	}
	rep.Figures = append(rep.Figures, fig)
	rep.Tables = append(rep.Tables, tb)
	rep.Metrics["timeline_detections"] = float64(detections)
	rep.Metrics["timeline_accuracy"] = 100 * float64(correct) / float64(detections)
	rep.Notes = append(rep.Notes,
		"paper: phase changes (SPEC→Hadoop→Spark→memcached→Cassandra) captured within a few seconds")
	return rep
}

// Figure10 reproduces Fig. 10: detection accuracy as a function of (a) the
// profiling interval against phase-changing victims, (b) the adversarial
// VM size, and (c) the number of profiling microbenchmarks.
func Figure10(seed uint64) *Report {
	rep := newReport("fig10", "Sensitivity analysis")
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	rep.Figures = append(rep.Figures,
		fig10aInterval(seed, det, rep),
		fig10bVMSize(seed, det, rep),
		fig10cBenchmarks(seed, det, rep),
	)
	rep.Notes = append(rep.Notes,
		"paper: accuracy collapses past 30 s intervals; <4 vCPU adversaries are blind; >3 benchmarks have diminishing returns")
	return rep
}

// fig10aInterval: victims change phases (mean ~5 min); a detection made at
// time t is considered correct for the whole interval if the label matched
// the active phase both when it was made and at the interval's end. Longer
// intervals go stale as phases change underneath.
func fig10aInterval(seed uint64, det *core.Detector, rep *Report) *trace.Figure {
	rng := stats.NewRNG(seed ^ 0xf1601)
	intervals := []float64{5, 10, 20, 30, 60, 120, 180, 300}

	const trials = 30
	meanPhaseSec := 300.0
	var xs, ys []float64
	// Each trial builds a private server/victim/adversary, so the trials of
	// every interval fan out on the episode pool: streams are pre-split
	// serially (one per trial), bodies consume only their own stream, and
	// the hit counts fold back in trial order.
	trialRngs := make([]*stats.RNG, trials)
	hits := make([]bool, trials)
	for _, intervalSec := range intervals {
		for tr := range trialRngs {
			trialRngs[tr] = rng.Split()
		}
		forEachEpisode(trials, func(tr int) {
			trng := trialRngs[tr]
			// Build a phase-changing victim.
			var phases []workload.Phase
			gens := workload.Generators()
			for p := 0; p < 8; p++ {
				g := gens[trng.Intn(len(gens))]
				phases = append(phases, workload.Phase{
					Spec:     g.Make(trng.Split(), trng.Intn(24)),
					Pattern:  workload.Constant{Level: trng.Range(0.85, 1)},
					Duration: sim.Tick(trng.Exp(meanPhaseSec) * sim.TicksPerSecond),
				})
			}
			seq := workload.NewSequence(phases, trng.Uint64())
			s := sim.NewServer("s0", sim.ServerConfig{})
			if err := s.Place(&sim.VM{ID: "v", VCPUs: 3, App: seq}); err != nil {
				panic(err)
			}
			adv := probe.NewAdversary("bolt", 4, probe.Config{}, trng.Split())
			if err := s.Place(adv.VM); err != nil {
				panic(err)
			}

			// One detection at t0; checked against the phase at a random
			// point within the following interval.
			t0 := sim.Tick(trng.Range(0, 120) * sim.TicksPerSecond)
			res := det.Detect(s, adv, t0, 1)
			check := t0 + sim.Tick(trng.Range(0, intervalSec)*sim.TicksPerSecond)
			active := seq.ActiveSpec(check)
			hits[tr] = core.LabelMatches(res.Result.Best().Label, active.Label)
		})
		correct, total := 0, trials
		for _, hit := range hits {
			if hit {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(total)
		xs = append(xs, intervalSec)
		ys = append(ys, acc)
		rep.Metrics[fmt.Sprintf("interval_%.0fs", intervalSec)] = acc
	}
	fig := trace.NewFigure("Fig 10a: accuracy vs profiling interval",
		"profiling interval (s)", "accuracy (%)")
	fig.AddSeries("accuracy", xs, ys)
	return fig
}

// fig10bVMSize: single-victim detection accuracy as the adversarial VM
// grows from 1 to 32 vCPUs on a 32-vCPU host (the EC2 instance sizes).
func fig10bVMSize(seed uint64, det *core.Detector, rep *Report) *trace.Figure {
	rng := stats.NewRNG(seed ^ 0xf1602)
	sizes := []int{1, 2, 4, 8, 16, 28}
	const trials = 40

	var xs, ys []float64
	trialRngs := make([]*stats.RNG, trials)
	hits := make([]bool, trials)
	for _, size := range sizes {
		victims := workload.VictimSpecs(seed^uint64(size), trials)
		// Pre-split one stream per trial, fan the trials out, count in order.
		for tr := range trialRngs {
			trialRngs[tr] = rng.Split()
		}
		forEachEpisode(trials, func(tr int) {
			trng := trialRngs[tr]
			hits[tr] = false
			s := sim.NewServer("s0", sim.ServerConfig{Cores: 16, ThreadsPerCore: 2})
			spec := victims[tr]
			app := workload.NewApp(spec, workload.Constant{Level: trng.Range(0.85, 1)}, trng.Uint64())
			if err := s.Place(&sim.VM{ID: "v", VCPUs: 3, App: app}); err != nil {
				panic(err)
			}
			adv := probe.NewAdversary("bolt", size, probe.Config{}, trng.Split())
			if err := s.Place(adv.VM); err != nil {
				return
			}
			res := det.Detect(s, adv, sim.Tick(tr*5000), 1)
			hits[tr] = core.LabelMatches(res.Result.Best().Label, spec.Label)
		})
		correct := 0
		for _, hit := range hits {
			if hit {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(trials)
		xs = append(xs, float64(size))
		ys = append(ys, acc)
		rep.Metrics[fmt.Sprintf("vmsize_%dvcpu", size)] = acc
	}
	fig := trace.NewFigure("Fig 10b: accuracy vs adversarial VM size",
		"adversarial VM size (vCPUs)", "accuracy (%)")
	fig.AddSeries("accuracy", xs, ys)
	return fig
}

// fig10cBenchmarks: single-iteration detection accuracy vs the number of
// profiling microbenchmarks (1 = the core benchmark alone).
func fig10cBenchmarks(seed uint64, det *core.Detector, rep *Report) *trace.Figure {
	rng := stats.NewRNG(seed ^ 0xf1603)
	counts := []int{1, 2, 3, 4, 6, 8, 10}
	const trials = 40

	var xs, ys []float64
	trialRngs := make([]*stats.RNG, trials)
	hits := make([]bool, trials)
	for _, n := range counts {
		detN := core.TrainCached(workload.TrainingSpecs(seed), core.Config{
			ExtraBench:    maxInt(0, n-2),
			MaxIterations: 1,
		})
		_ = det
		victims := workload.VictimSpecs(seed^uint64(n)<<8, trials)
		// Pre-split one stream per trial, fan the trials out, count in order.
		for tr := range trialRngs {
			trialRngs[tr] = rng.Split()
		}
		forEachEpisode(trials, func(tr int) {
			trng := trialRngs[tr]
			s := sim.NewServer("s0", sim.ServerConfig{})
			spec := victims[tr]
			app := workload.NewApp(spec, workload.Constant{Level: trng.Range(0.85, 1)}, trng.Uint64())
			if err := s.Place(&sim.VM{ID: "v", VCPUs: 3, App: app}); err != nil {
				panic(err)
			}
			adv := probe.NewAdversary("bolt", 4, probe.Config{}, trng.Split())
			if err := s.Place(adv.VM); err != nil {
				panic(err)
			}
			ep := detN.NewEpisode(s, adv)
			var best string
			if n == 1 {
				// A single benchmark: one core ramp only, no uncore.
				p := adv.ProfileCore(s, sim.Tick(tr*5000))
				obs, known := p.Observed.Slice(), p.Known[:]
				res := detN.Rec.Detect(obs, known)
				best = res.Best().Label
			} else {
				res := ep.Step(sim.Tick(tr * 5000))
				best = res.Best().Label
			}
			hits[tr] = core.LabelMatches(best, spec.Label)
		})
		correct := 0
		for _, hit := range hits {
			if hit {
				correct++
			}
		}
		acc := 100 * float64(correct) / float64(trials)
		xs = append(xs, float64(n))
		ys = append(ys, acc)
		rep.Metrics[fmt.Sprintf("benchmarks_%d", n)] = acc
	}
	fig := trace.NewFigure("Fig 10c: accuracy vs number of profiling benchmarks",
		"benchmarks per iteration", "accuracy (%)")
	fig.AddSeries("accuracy", xs, ys)
	return fig
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
