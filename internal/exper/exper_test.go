package exper

import (
	"strings"
	"testing"

	"bolt/internal/cluster"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	ids := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate experiment ID %q", e.ID)
		}
		ids[e.ID] = true
	}
	// Every table and figure in the paper's evaluation must be covered.
	for _, want := range []string{
		"table1", "table2", "fig2", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
		"dosimpact", "coresidency", "isocost", "ablation", "insights", "defence", "confusion",
	} {
		if !ids[want] {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("table1"); !ok {
		t.Fatal("table1 should resolve")
	}
	if _, ok := ByID("nope"); ok {
		t.Fatal("unknown ID should not resolve")
	}
}

func TestControlledDeterministic(t *testing.T) {
	a := RunControlled(ControlledConfig{Seed: 5, Servers: 6, Victims: 16})
	b := RunControlled(ControlledConfig{Seed: 5, Servers: 6, Victims: 16})
	if len(a.Records) != len(b.Records) {
		t.Fatal("same seed produced different record counts")
	}
	for i := range a.Records {
		if a.Records[i].CorrectIteration != b.Records[i].CorrectIteration ||
			a.Records[i].Spec.Label != b.Records[i].Spec.Label {
			t.Fatalf("same seed diverged at record %d", i)
		}
	}
	if a.Accuracy() != b.Accuracy() {
		t.Fatal("same seed, different accuracy")
	}
}

func TestControlledAccuracyReasonable(t *testing.T) {
	res := RunControlled(ControlledConfig{Seed: 42, Servers: 12, Victims: 32})
	acc := res.Accuracy()
	// The full-scale run reproduces the paper's shape at ~70-80%; a small
	// run must at least clear a sanity floor and stay below perfection.
	if acc < 35 || acc > 100 {
		t.Fatalf("accuracy %.0f%% out of plausible range", acc)
	}
	if len(res.Records) == 0 {
		t.Fatal("no victims recorded")
	}
}

func TestControlledSchedulers(t *testing.T) {
	ll := RunControlled(ControlledConfig{Seed: 9, Servers: 8, Victims: 20})
	qu := RunControlled(ControlledConfig{
		Seed: 9, Servers: 8, Victims: 20,
		Scheduler: cluster.Quasar{}, Detector: ll.Detector,
	})
	if ll.SchedulerName != "least-loaded" || qu.SchedulerName != "quasar" {
		t.Fatal("scheduler names not recorded")
	}
}

func TestAccuracyWhereEmptyFilter(t *testing.T) {
	res := &ControlledResult{}
	if res.Accuracy() != 0 {
		t.Fatal("empty result should have zero accuracy")
	}
}

func TestTable1Report(t *testing.T) {
	rep := Table1(7)
	if rep.ID != "table1" {
		t.Fatal("wrong report ID")
	}
	if len(rep.Tables) != 1 {
		t.Fatal("Table 1 should render one table")
	}
	out := rep.Tables[0].String()
	for _, class := range table1Classes {
		if !strings.Contains(out, class) {
			t.Errorf("Table 1 missing class %s", class)
		}
	}
	if rep.Metrics["aggregate_accuracy_ll"] <= 0 {
		t.Fatal("aggregate accuracy metric missing")
	}
	if rep.Metrics["victims_ll"] < 90 {
		t.Fatalf("only %v victims placed; want close to 108", rep.Metrics["victims_ll"])
	}
}

func TestFigure2Shape(t *testing.T) {
	rep := Figure2(7)
	if len(rep.Heatmaps) != 5 {
		t.Fatalf("Fig 2 should render 5 heatmaps, got %d", len(rep.Heatmaps))
	}
	// The paper's two headline signals must reproduce: high L1-i + LLC is
	// a strong memcached indicator; disk traffic rules memcached out.
	memSignal := rep.Metrics["p_memcached_given_high_l1i_llc"]
	diskSignal := rep.Metrics["p_memcached_given_disk_traffic"]
	if memSignal < 0.25 {
		t.Fatalf("P(memcached | high L1i+LLC) = %v, want strong", memSignal)
	}
	if diskSignal > 0.05 {
		t.Fatalf("P(memcached | disk traffic) = %v, want ~0", diskSignal)
	}
	if memSignal <= diskSignal*5 {
		t.Fatal("cache signal should dominate the disk signal")
	}
}

func TestFigure4Coverage(t *testing.T) {
	rep := Figure4(7)
	if rep.Metrics["training_apps"] != 120 {
		t.Fatalf("training set size %v, want 120", rep.Metrics["training_apps"])
	}
	if rep.Metrics["cpu_mem_spread"] < 20 {
		t.Fatal("training set should spread across the CPU/memory plane")
	}
}

func TestFigure5SimilarityOrdering(t *testing.T) {
	rep := Figure5(7)
	wc := rep.Metrics["similarity_wordcount"]
	recSim := rep.Metrics["similarity_recommender"]
	// The unknown job is a recommender variant: it must be substantially
	// closer to the recommender than to word count (paper: 0.78 vs 0.29).
	if recSim <= wc {
		t.Fatalf("similarity ordering wrong: recommender %v vs wordcount %v", recSim, wc)
	}
}

func TestFigure6Shape(t *testing.T) {
	rep := Figure6(7)
	a2 := rep.Metrics["accuracy_2_coresidents"]
	a4 := rep.Metrics["accuracy_4_coresidents"]
	if a2 == 0 {
		t.Skip("no 2-co-resident hosts in this placement")
	}
	// Accuracy must degrade with heavier multi-tenancy (paper: >95% → 67%).
	if a4 > a2+10 {
		t.Fatalf("accuracy should degrade with co-residents: 2→%v, 4→%v", a2, a4)
	}
}

func TestFigure7PDF(t *testing.T) {
	rep := Figure7(7)
	total := 0.0
	for it := 1; it <= 6; it++ {
		total += rep.Metrics[sprintfIter(it)]
	}
	if total < 99.9 || total > 100.1 {
		t.Fatalf("iteration PDF sums to %v, want 100", total)
	}
	// The first iterations must carry most of the mass (paper: 71% + 15%).
	if rep.Metrics["pdf_iter_1"]+rep.Metrics["pdf_iter_2"] < 40 {
		t.Fatalf("early iterations carry too little mass: %v + %v",
			rep.Metrics["pdf_iter_1"], rep.Metrics["pdf_iter_2"])
	}
}

func sprintfIter(it int) string {
	return map[int]string{
		1: "pdf_iter_1", 2: "pdf_iter_2", 3: "pdf_iter_3",
		4: "pdf_iter_4", 5: "pdf_iter_5", 6: "pdf_iter_6",
	}[it]
}

func TestFigure13Dynamics(t *testing.T) {
	rep := Figure13(7)
	// Bolt's attack must stay below the 70% migration trigger and keep the
	// victim degraded at the end; the naive attack must trip the defence
	// and lose its victim (latency recovered).
	if rep.Metrics["bolt_peak_cpu"] >= 70 {
		t.Fatalf("Bolt attack peaked at %v%% CPU; must stay under the trigger", rep.Metrics["bolt_peak_cpu"])
	}
	if rep.Metrics["naive_peak_cpu"] < 70 {
		t.Fatalf("naive attack peaked at only %v%% CPU", rep.Metrics["naive_peak_cpu"])
	}
	if rep.Metrics["bolt_final_p99_factor"] < 8 {
		t.Fatalf("Bolt final degradation %vx, want ≥8x", rep.Metrics["bolt_final_p99_factor"])
	}
	if rep.Metrics["naive_final_p99_factor"] > 3 {
		t.Fatalf("naive final degradation %vx; the migrated victim should recover", rep.Metrics["naive_final_p99_factor"])
	}
}

func TestTable2AllScenariosWin(t *testing.T) {
	rep := Table2(42)
	for si := 0; si < 3; si++ {
		vd := rep.Metrics[sprintfScenario("victim_degradation", si)]
		bi := rep.Metrics[sprintfScenario("beneficiary_improvement", si)]
		if vd <= 0 {
			t.Errorf("scenario %d: victim should degrade, got %v", si, vd)
		}
		if bi <= 0 {
			t.Errorf("scenario %d: beneficiary should improve, got %v", si, bi)
		}
	}
}

func sprintfScenario(prefix string, si int) string {
	return prefix + "_" + string(rune('0'+si))
}

func TestCoResidencyFinds(t *testing.T) {
	rep := CoResidencyExp(42)
	if rep.Metrics["found"] != 1 {
		t.Fatal("co-residency attack should locate the victim")
	}
	if rep.Metrics["latency_ratio"] < 2 {
		t.Fatalf("confirmation ratio %v, want ≥2", rep.Metrics["latency_ratio"])
	}
	if rep.Metrics["candidates"] < 1 {
		t.Fatal("at least the victim host should be a candidate")
	}
}

func TestFigure14Monotone(t *testing.T) {
	rep := Figure14(7)
	for _, platform := range []string{"baremetal", "containers", "VMs"} {
		none := rep.Metrics[platform+"_step0"]
		full := rep.Metrics[platform+"_step4"]
		coreIso := rep.Metrics[platform+"_step5"]
		if full >= none {
			t.Errorf("%s: the full partitioning stack should cut accuracy (%v → %v)", platform, none, full)
		}
		if coreIso >= full+5 {
			t.Errorf("%s: core isolation should cut deepest (%v → %v)", platform, full, coreIso)
		}
	}
	// Core isolation alone leaves substantial accuracy (paper: 46%).
	if rep.Metrics["core_isolation_only"] < 10 {
		t.Errorf("core isolation alone should still leak: %v", rep.Metrics["core_isolation_only"])
	}
}

func TestIsolationCostNumbers(t *testing.T) {
	rep := IsolationCost(7)
	if rep.Metrics["perf_penalty_pct"] < 30 || rep.Metrics["perf_penalty_pct"] > 40 {
		t.Fatalf("perf penalty %v%%, want ≈34%%", rep.Metrics["perf_penalty_pct"])
	}
	if rep.Metrics["dedicated_util"] > rep.Metrics["shared_util"] {
		t.Fatal("dedicated cores cannot pack better than shared cores")
	}
	if rep.Metrics["overprovision_drop_pct"] != 45 {
		t.Fatalf("over-provisioning drop %v%%, want 45%%", rep.Metrics["overprovision_drop_pct"])
	}
}

func TestAblationOrdering(t *testing.T) {
	rep := Ablations(42)
	if rep.Metrics["pure_cf"] >= rep.Metrics["baseline"] {
		t.Fatalf("pure CF (%v) must underperform the hybrid (%v): it cannot label victims",
			rep.Metrics["pure_cf"], rep.Metrics["baseline"])
	}
}

func TestConfusionMissesShareResources(t *testing.T) {
	rep := Confusion(42)
	if rep.Metrics["misses"] == 0 {
		t.Skip("no misses at this seed; nothing to analyse")
	}
	// The paper's claim: most misclassifications land on workloads with the
	// same or similar critical resources.
	if rep.Metrics["miss_top2_overlap_pct"] < 50 {
		t.Fatalf("only %v%% of misses share a top-2 resource; the paper's claim should hold",
			rep.Metrics["miss_top2_overlap_pct"])
	}
}

func TestDefenceEvasion(t *testing.T) {
	rep := DefenceEvasion(42)
	if rep.Metrics["bolt_evades_cpu_trigger"] != 1 {
		t.Fatal("Bolt's attack must evade the CPU-threshold trigger (§5.1)")
	}
	if rep.Metrics["naive_trips_cpu_trigger"] != 1 {
		t.Fatal("the naive attack must trip the CPU-threshold trigger")
	}
	if rep.Metrics["anomaly_catches_bolt"] != 1 {
		t.Fatal("the multi-resource anomaly detector should catch Bolt's attack")
	}
}

func TestInsightsRanking(t *testing.T) {
	rep := Insights(7)
	if rep.Metrics["concepts_retained"] < 3 {
		t.Fatal("too few similarity concepts retained")
	}
	// The paper's qualitative finding: the L1-i cache carries far more
	// detection value than the L2 (32KB→256KB captures little change in
	// working-set size).
	if rep.Metrics["value_L1-i"] <= rep.Metrics["value_L2"] {
		t.Fatalf("L1-i value (%v) should exceed L2 value (%v)",
			rep.Metrics["value_L1-i"], rep.Metrics["value_L2"])
	}
	// Values are normalised to max 1.
	for _, k := range []string{"value_L1-i", "value_LLC", "value_MemBW"} {
		if rep.Metrics[k] < 0 || rep.Metrics[k] > 1 {
			t.Fatalf("%s out of [0,1]: %v", k, rep.Metrics[k])
		}
	}
}

func TestStudyExperimentScales(t *testing.T) {
	rep := Figure12(7)
	if rep.Metrics["jobs_total"] < 400 {
		t.Fatalf("study placed only %v jobs", rep.Metrics["jobs_total"])
	}
	if rep.Metrics["characterise_rate"] < rep.Metrics["label_rate"] {
		t.Fatal("characterisation is a weaker criterion and must not lag labelling")
	}
	if rep.Metrics["label_rate"] <= 0 {
		t.Fatal("some jobs must be labelled")
	}
}
