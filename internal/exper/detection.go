package exper

import (
	"fmt"
	"sort"

	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/sim"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// table1Classes are the application classes the paper reports individually.
var table1Classes = []string{"memcached", "hadoop", "spark", "cassandra", "speccpu"}

// Table1 reproduces Table 1: detection accuracy per application class in
// the controlled experiment, under the least-loaded and Quasar schedulers.
func Table1(seed uint64) *Report {
	rep := newReport("table1", "Detection accuracy: least-loaded vs Quasar")

	// Train once, then run the two scheduler variants on the episode pool
	// (each derives all randomness from the shared seed independently).
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})
	schedulers := []cluster.Scheduler{cluster.LeastLoaded{}, cluster.Quasar{}}
	results := make([]*ControlledResult, len(schedulers))
	forEachEpisode(len(schedulers), func(i int) {
		results[i] = RunControlled(ControlledConfig{Seed: seed, Scheduler: schedulers[i], Detector: det})
	})
	ll, qu := results[0], results[1]

	tb := trace.NewTable("Table 1: Bolt's detection accuracy (controlled experiment)",
		"Applications", "Least Load scheduler", "Quasar scheduler")
	tb.Add("Aggregate", pct(ll.Accuracy()), pct(qu.Accuracy()))
	llClass, quClass := ll.ClassAccuracy(), qu.ClassAccuracy()
	for _, c := range table1Classes {
		tb.Add(c, pct(llClass[c]), pct(quClass[c]))
	}
	rep.Tables = append(rep.Tables, tb)

	rep.Metrics["aggregate_accuracy_ll"] = ll.Accuracy()
	rep.Metrics["aggregate_accuracy_quasar"] = qu.Accuracy()
	for _, c := range table1Classes {
		rep.Metrics["class_"+c+"_ll"] = llClass[c]
	}
	rep.Metrics["victims_ll"] = float64(len(ll.Records))
	rep.Notes = append(rep.Notes,
		"paper: aggregate 87% (LL) / 89% (Quasar); per-class 78-92%")
	return rep
}

// Figure6 reproduces Fig. 6: detection accuracy as a function of the
// number of co-residents per host (left) and of the victim's dominant
// resource (right).
func Figure6(seed uint64) *Report {
	rep := newReport("fig6", "Accuracy vs co-residents and dominant resource")
	res := RunControlled(ControlledConfig{Seed: seed})

	// Left panel: accuracy vs number of victims on the host.
	var xs, ys []float64
	for n := 1; n <= 5; n++ {
		acc := res.AccuracyWhere(func(r VictimRecord) bool { return r.CoResidents == n })
		count := 0
		for _, r := range res.Records {
			if r.CoResidents == n {
				count++
			}
		}
		if count == 0 {
			continue
		}
		xs = append(xs, float64(n))
		ys = append(ys, acc)
		rep.Metrics[fmt.Sprintf("accuracy_%d_coresidents", n)] = acc
	}
	fig := trace.NewFigure("Fig 6a: accuracy vs number of co-scheduled applications",
		"co-residents per host", "accuracy (%)")
	fig.AddSeries("accuracy", xs, ys)
	rep.Figures = append(rep.Figures, fig)

	// Right panel: accuracy vs the victim's dominant resource.
	tb := trace.NewTable("Fig 6b: accuracy vs dominant resource",
		"Dominant resource", "Victims", "Accuracy")
	for _, r := range sim.AllResources() {
		count := 0
		for _, rec := range res.Records {
			if rec.Dominant == r {
				count++
			}
		}
		if count == 0 {
			continue
		}
		acc := res.AccuracyWhere(func(rec VictimRecord) bool { return rec.Dominant == r })
		tb.Add(r.String(), fmt.Sprintf("%d", count), pct(acc))
		rep.Metrics["dominant_"+r.String()] = acc
	}
	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"paper: >95% for ≤2 co-residents dropping to 67% at 5; local dip at 3 co-residents")
	return rep
}

// Figure7 reproduces Fig. 7: the PDF of iterations needed until correct
// detection, overall and split by the number of co-residents.
func Figure7(seed uint64) *Report {
	rep := newReport("fig7", "Iterations until detection")
	res := RunControlled(ControlledConfig{Seed: seed})

	maxIter := 6
	total := make([]int, maxIter+1)
	byCo := map[int][]int{}
	for _, r := range res.Records {
		if !r.Correct() {
			continue
		}
		total[r.CorrectIteration]++
		if byCo[r.CoResidents] == nil {
			byCo[r.CoResidents] = make([]int, maxIter+1)
		}
		byCo[r.CoResidents][r.CorrectIteration]++
	}
	correct := 0
	for _, c := range total {
		correct += c
	}

	var xs, ys []float64
	for it := 1; it <= maxIter; it++ {
		xs = append(xs, float64(it))
		share := 0.0
		if correct > 0 {
			share = 100 * float64(total[it]) / float64(correct)
		}
		ys = append(ys, share)
		rep.Metrics[fmt.Sprintf("pdf_iter_%d", it)] = share
	}
	fig := trace.NewFigure("Fig 7a: PDF of iterations until detection",
		"iterations", "share of detected victims (%)")
	fig.AddSeries("all victims", xs, ys)
	rep.Figures = append(rep.Figures, fig)

	fig2 := trace.NewFigure("Fig 7b: iterations until detection by co-resident count",
		"iterations", "share of detected victims (%)")
	coCounts := make([]int, 0, len(byCo))
	for n := range byCo {
		coCounts = append(coCounts, n)
	}
	sort.Ints(coCounts)
	for _, n := range coCounts {
		counts := byCo[n]
		sub := 0
		for _, c := range counts {
			sub += c
		}
		var sy []float64
		for it := 1; it <= maxIter; it++ {
			sy = append(sy, 100*float64(counts[it])/float64(sub))
		}
		fig2.AddSeries(fmt.Sprintf("%d apps", n), xs, sy)
	}
	rep.Figures = append(rep.Figures, fig2)
	rep.Notes = append(rep.Notes,
		"paper: 71% of victims detected in one iteration, +15% in the second")
	return rep
}

// Figure9 reproduces Fig. 9: detection accuracy as a function of the
// pressure the victim places on each of six representative resources.
func Figure9(seed uint64) *Report {
	rep := newReport("fig9", "Accuracy vs victim resource pressure")
	res := RunControlled(ControlledConfig{Seed: seed})

	resources := []sim.Resource{sim.L1I, sim.LLC, sim.CPU, sim.MemCap, sim.NetBW, sim.DiskBW}
	const binW = 20.0
	fig := trace.NewFigure("Fig 9: accuracy vs victim pressure per resource",
		"victim pressure bin centre (%)", "accuracy (%)")
	for _, r := range resources {
		var xs, ys []float64
		for lo := 0.0; lo < 100; lo += binW {
			hi := lo + binW
			keep := func(rec VictimRecord) bool {
				p := rec.Spec.Base.Get(r)
				return p >= lo && p < hi
			}
			n := 0
			for _, rec := range res.Records {
				if keep(rec) {
					n++
				}
			}
			if n < 2 {
				continue
			}
			xs = append(xs, lo+binW/2)
			ys = append(ys, res.AccuracyWhere(keep))
		}
		fig.AddSeries(r.String(), xs, ys)
		if len(ys) > 0 {
			rep.Metrics["mean_accuracy_"+r.String()] = mean(ys)
		}
	}
	rep.Figures = append(rep.Figures, fig)
	rep.Notes = append(rep.Notes,
		"paper: very low or very high pressure carries the most detection value")
	return rep
}

func pct(v float64) string { return fmt.Sprintf("%.0f%%", v) }

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
