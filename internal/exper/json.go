package exper

import (
	"encoding/json"
	"io"
)

// jsonReport is the machine-readable form of a Report, for piping boltbench
// output into plotting tools.
type jsonReport struct {
	ID      string             `json:"id"`
	Title   string             `json:"title"`
	Metrics map[string]float64 `json:"metrics"`
	Tables  []jsonTable        `json:"tables,omitempty"`
	Series  []jsonSeries       `json:"series,omitempty"`
	Notes   []string           `json:"notes,omitempty"`
}

type jsonTable struct {
	Title   string     `json:"title"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

type jsonSeries struct {
	Figure string    `json:"figure"`
	Name   string    `json:"name"`
	X      []float64 `json:"x"`
	Y      []float64 `json:"y"`
}

// WriteJSON emits the report as a single JSON object.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.toJSON())
}

// WriteAllJSON emits one JSON document holding the seed and every report,
// in order. A run's machine-readable output is a single valid document —
// consumers unmarshal one object rather than splitting a stream of
// concatenated ones.
func WriteAllJSON(w io.Writer, seed uint64, reports []*Report) error {
	doc := struct {
		Seed    uint64       `json:"seed"`
		Reports []jsonReport `json:"reports"`
	}{Seed: seed, Reports: make([]jsonReport, 0, len(reports))}
	for _, r := range reports {
		doc.Reports = append(doc.Reports, r.toJSON())
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func (r *Report) toJSON() jsonReport {
	out := jsonReport{
		ID:      r.ID,
		Title:   r.Title,
		Metrics: r.Metrics,
		Notes:   r.Notes,
	}
	for _, t := range r.Tables {
		out.Tables = append(out.Tables, jsonTable{
			Title:   t.Title,
			Headers: t.Headers,
			Rows:    t.Rows,
		})
	}
	for _, f := range r.Figures {
		for _, s := range f.Series {
			out.Series = append(out.Series, jsonSeries{
				Figure: f.Title,
				Name:   s.Name,
				X:      s.X,
				Y:      s.Y,
			})
		}
	}
	return out
}
