package exper

import (
	"fmt"
	"sort"

	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/fault"
	"bolt/internal/mining"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// ControlledConfig parameterises the §3.4 controlled experiment: a
// 40-server cluster, 108 victims placed by a scheduler, one 4-vCPU
// adversarial VM per server, and per-victim detection episodes that stop
// on correct identification or after MaxIterations (the paper's
// methodology for Table 1 and Figs. 6-9).
type ControlledConfig struct {
	Seed          uint64
	Servers       int // 0 means 40
	Victims       int // 0 means 108
	AdvVCPUs      int // 0 means 4
	MaxIterations int // 0 means 6
	Scheduler     cluster.Scheduler
	ServerCfg     sim.ServerConfig // zero value: 8 cores × 2 threads, full visibility
	DetectorCfg   core.Config
	ProbeCfg      probe.Config
	// Detector overrides training when non-nil (reused across sweeps to
	// avoid retraining).
	Detector *core.Detector
	// MaxVictimVCPUs bounds victim sizes (uniform 1..max); 0 means 6.
	MaxVictimVCPUs int
}

func (c ControlledConfig) withDefaults() ControlledConfig {
	if c.Servers == 0 {
		c.Servers = 40
	}
	if c.Victims == 0 {
		c.Victims = 108
	}
	if c.AdvVCPUs == 0 {
		c.AdvVCPUs = 4
	}
	if c.MaxIterations == 0 {
		c.MaxIterations = 6
	}
	if c.Scheduler == nil {
		c.Scheduler = cluster.LeastLoaded{}
	}
	if c.MaxVictimVCPUs == 0 {
		c.MaxVictimVCPUs = 6
	}
	return c
}

// VictimRecord is the per-victim outcome of a controlled run.
type VictimRecord struct {
	Spec        workload.Spec
	Host        string
	CoResidents int // victims sharing the host (including this one)
	// CorrectIteration is the 1-based iteration at which the victim was
	// first correctly identified; 0 means never within MaxIterations.
	CorrectIteration int
	// Characterised reports whether the final detection at least matched
	// the victim's resource characteristics.
	Characterised bool
	// SharedCore reports whether the adversary shared a core with anyone
	// on this host.
	SharedCore bool
	// SharesWithAdv reports whether this victim occupies a hyperthread
	// sibling of one of the adversary's cores.
	SharesWithAdv bool
	Dominant      sim.Resource
	Ticks         sim.Tick
	// FinalLabel is the episode's post-degradation primary label after the
	// last iteration: core.UnknownLabel when the evidence fell below the
	// detector's confidence floor, the best-match label otherwise.
	FinalLabel string
	// Confidence is the episode's final evidence score (episode-level: all
	// victims on one host share it), and Unknown whether the episode
	// degraded to "unknown" rather than guessing.
	Confidence float64
	Unknown    bool
}

// Correct reports whether the victim was identified within the budget.
func (r VictimRecord) Correct() bool { return r.CorrectIteration > 0 }

// ControlledResult aggregates a controlled run.
type ControlledResult struct {
	Records  []VictimRecord
	Detector *core.Detector
	// SchedulerName records which policy placed the victims.
	SchedulerName string
	// FaultCounts aggregates the per-class fault-injection counters across
	// every adversary in the run (all zero without a fault plane).
	FaultCounts [fault.NumClasses]uint64
}

// Accuracy returns the fraction of victims identified, in percent.
func (cr *ControlledResult) Accuracy() float64 {
	return cr.AccuracyWhere(func(VictimRecord) bool { return true })
}

// AccuracyWhere returns detection accuracy in percent over the records
// matching the filter; 0 when none match.
func (cr *ControlledResult) AccuracyWhere(keep func(VictimRecord) bool) float64 {
	total, correct := 0, 0
	for _, r := range cr.Records {
		if !keep(r) {
			continue
		}
		total++
		if r.Correct() {
			correct++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(correct) / float64(total)
}

// ClassAccuracy returns per-class accuracy in percent for classes with at
// least one victim.
func (cr *ControlledResult) ClassAccuracy() map[string]float64 {
	out := map[string]float64{}
	classes := map[string]bool{}
	for _, r := range cr.Records {
		classes[r.Spec.Class] = true
	}
	for c := range classes {
		out[c] = cr.AccuracyWhere(func(r VictimRecord) bool { return r.Spec.Class == c })
	}
	return out
}

// episodeTickStride is the deterministic spacing between per-host episode
// start ticks in the controlled experiment. Hosts are independent worlds
// (the tick only phases each host's own load patterns), so the stride
// carries no physics — it only needs to dwarf the longest episode
// (MaxIterations × ramps + shutter windows + fault backoff, well under a
// thousand ticks) so per-host timelines read sensibly in traces.
const episodeTickStride = 1 << 13

// RunControlled executes the controlled experiment.
func RunControlled(cfg ControlledConfig) *ControlledResult {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed ^ 0xc0417011ed)
	return runControlled(cfg, rng)
}

func runControlled(cfg ControlledConfig, rng *stats.RNG) *ControlledResult {
	det := cfg.Detector
	if det == nil {
		det = core.TrainCached(workload.TrainingSpecs(cfg.Seed), cfg.DetectorCfg)
	}

	cl := cluster.New(cfg.Servers, cfg.ServerCfg, cfg.Scheduler)

	// One adversarial VM per server, placed first (§3.4: the remainder of
	// each machine goes to friendly VMs).
	advs := make(map[string]*probe.Adversary, cfg.Servers)
	for _, s := range cl.Servers {
		adv := probe.NewAdversary("bolt-"+s.Name(), cfg.AdvVCPUs, cfg.ProbeCfg, rng.Split())
		if err := s.Place(adv.VM); err != nil {
			continue // host too small for the adversary: skip it
		}
		advs[s.Name()] = adv
	}

	// Victims: disjoint-from-training specs at near-peak constant load
	// (§3.4 provisions for peak), scheduled across the cluster.
	specs := workload.VictimSpecs(cfg.Seed, cfg.Victims)
	type placedVictim struct {
		spec workload.Spec
		vm   *sim.VM
		host *sim.Server
	}
	var victims []placedVictim
	for i, spec := range specs {
		vcpus := 1 + rng.Intn(cfg.MaxVictimVCPUs)
		// A small deployment drives proportionally less host-wide traffic:
		// scale the uncore footprint with size (core pressure is per-core
		// and does not scale). The reference deployment is ~4 vCPUs.
		sizeFactor := 0.55 + 0.11*float64(vcpus)
		if sizeFactor > 1.1 {
			sizeFactor = 1.1
		}
		for _, r := range sim.UncoreResources() {
			spec.Base.Set(r, spec.Base.Get(r)*sizeFactor)
		}
		// Interactive services see user-driven load with idle valleys
		// (§3.3) — the phases shutter profiling hunts for. Batch analytics
		// run flat out.
		var pattern workload.LoadPattern = workload.Constant{Level: rng.Range(0.8, 1.0)}
		switch spec.Class {
		case "memcached", "redis", "webserver", "mysql", "postgres", "cassandra", "mongodb", "storm":
			if rng.Bool(0.35) {
				pattern = workload.Bursty{
					OnLevel:  rng.Range(0.85, 1.0),
					OffLevel: rng.Range(0.25, 0.45),
					OnTicks:  sim.Tick(rng.Range(60, 160)),
					OffTicks: sim.Tick(rng.Range(20, 60)),
					Offset:   sim.Tick(rng.Intn(100)),
				}
			}
		}
		app := workload.NewApp(spec, pattern, rng.Uint64())
		vm := &sim.VM{
			ID:    fmt.Sprintf("victim-%03d-%s", i, spec.Label),
			VCPUs: vcpus,
			App:   app,
		}
		host, err := cl.Place(vm, 0)
		if err != nil {
			continue // cluster full: the victim is dropped, as in a real run
		}
		victims = append(victims, placedVictim{spec, vm, host})
	}

	// Group victims per host and run one episode per host; a victim is
	// correct at the iteration where any peeled candidate matches it.
	byHost := map[string][]placedVictim{}
	for _, v := range victims {
		byHost[v.host.Name()] = append(byHost[v.host.Name()], v)
	}

	// Deterministic host order: map iteration would reshuffle the shared
	// RNG stream between runs.
	hostNames := make([]string, 0, len(byHost))
	for name := range byHost {
		hostNames = append(hostNames, name)
	}
	sort.Strings(hostNames)

	res := &ControlledResult{Detector: det, SchedulerName: cfg.Scheduler.Name()}
	// Per-host episodes run on the episode worker pool. Each body touches
	// only its own host's server, VMs, and adversary (whose RNG stream was
	// pre-split in the serial placement phase above) plus the immutable
	// shared detector, and writes into its own slot of hostRecords — merged
	// in sorted-host order below, so the result is byte-identical at every
	// pool width. The episode start tick is a fixed per-host stride rather
	// than the previous host's cumulative episode length: hosts are
	// independent worlds, so the tick only phases their load patterns, and
	// a deterministic schedule is what makes the episodes parallelisable.
	hostRecords := make([][]VictimRecord, len(hostNames))
	forEachEpisode(len(hostNames), func(hi int) {
		hostName := hostNames[hi]
		vs := byHost[hostName]
		adv, ok := advs[hostName]
		if !ok {
			return
		}
		host := cl.HostOf(adv.VM.ID)
		when := sim.Tick(hi) * episodeTickStride
		correctAt := make([]int, len(vs))
		charOK := make([]bool, len(vs))
		ep := det.NewEpisode(host, adv)
		var lastRes *mining.Result
		for it := 1; it <= cfg.MaxIterations; it++ {
			stepRes := ep.Step(when)
			lastRes = stepRes
			// Bolt's hypotheses this iteration: the disentangled
			// co-resident set plus the single-victim view (its top match is
			// a live hypothesis whenever one workload dominates the host).
			cands := append(ep.Candidates(len(vs)), stepRes)
			for vi, v := range vs {
				if correctAt[vi] > 0 {
					continue
				}
				for _, cand := range cands {
					if core.LabelMatches(cand.Best().Label, v.spec.Label) {
						correctAt[vi] = it
						break
					}
				}
				for _, cand := range cands {
					if core.CharacteristicsMatch(cand.Pressure, v.spec.Base) {
						charOK[vi] = true
						break
					}
				}
			}
			allDone := true
			for _, c := range correctAt {
				if c == 0 {
					allDone = false
					break
				}
			}
			if allDone {
				break
			}
		}
		label, conf, unknown := ep.Grade(lastRes)
		records := make([]VictimRecord, 0, len(vs))
		for vi, v := range vs {
			records = append(records, VictimRecord{
				Spec:             v.spec,
				Host:             hostName,
				CoResidents:      len(vs),
				CorrectIteration: correctAt[vi],
				Characterised:    charOK[vi] || correctAt[vi] > 0,
				SharedCore:       ep.CoreShared,
				SharesWithAdv:    host.SharesCore(adv.VM, v.vm),
				Dominant:         v.spec.Base.Dominant(),
				Ticks:            ep.Ticks,
				FinalLabel:       label,
				Confidence:       conf,
				Unknown:          unknown,
			})
		}
		hostRecords[hi] = records
	})
	for _, records := range hostRecords {
		res.Records = append(res.Records, records...)
	}
	// Aggregate injection counters in deterministic (sorted host) order.
	for _, hostName := range hostNames {
		if adv, ok := advs[hostName]; ok {
			counts := adv.FaultPlane().Counts()
			for c := range counts {
				res.FaultCounts[c] += counts[c]
			}
		}
	}
	return res
}
