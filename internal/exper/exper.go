// Package exper implements one reproducible experiment per table and
// figure in the paper's evaluation. Each experiment returns a Report with
// paper-style tables/figures plus headline metrics; cmd/boltbench prints
// them all and bench_test.go exposes one benchmark per experiment.
package exper

import (
	"fmt"
	"io"
	"sort"

	"bolt/internal/trace"
)

// Report is the rendered outcome of one experiment.
type Report struct {
	ID    string // e.g. "table1"
	Title string

	Tables   []*trace.Table
	Figures  []*trace.Figure
	Heatmaps []*trace.Heatmap
	Notes    []string

	// Metrics carries the headline numbers (e.g. "aggregate_accuracy_ll")
	// used by tests and EXPERIMENTS.md.
	Metrics map[string]float64
}

// newReport allocates a report.
func newReport(id, title string) *Report {
	return &Report{ID: id, Title: title, Metrics: map[string]float64{}}
}

// Render writes the whole report to w.
func (r *Report) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		t.Render(w)
		fmt.Fprintln(w)
	}
	for _, f := range r.Figures {
		f.Render(w)
		fmt.Fprintln(w)
	}
	for _, h := range r.Heatmaps {
		h.Render(w)
		fmt.Fprintln(w)
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Fprintln(w, "metrics:")
		for _, k := range keys {
			fmt.Fprintf(w, "  %-40s %g\n", k, r.Metrics[k])
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment is a registered, runnable experiment.
//
// Run must be a pure function of the seed: every implementation derives all
// of its randomness from its own stats.NewRNG(seed^salt) (splitting further
// streams with RNG.Split as needed) and never touches package-level mutable
// state, so no experiment can observe another's RNG position. That contract
// is what lets exper.Run execute experiments concurrently and still promise
// byte-identical reports at every parallelism level.
type Experiment struct {
	ID    string
	Title string
	Run   func(seed uint64) *Report
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"fig4", "Training-set coverage of the resource-characteristics space", Figure4},
		{"fig2", "Probability of a co-scheduled app being memcached vs resource pressure", Figure2},
		{"fig5", "Per-application resource profiles and similarity (star charts)", Figure5},
		{"insights", "Which resources leak the most information (§3.2)", Insights},
		{"confusion", "What misclassified victims get mistaken for (§3.4)", Confusion},
		{"table1", "Detection accuracy in the controlled experiment (LL and Quasar)", Table1},
		{"fig6", "Accuracy vs number of co-residents and vs dominant resource", Figure6},
		{"fig7", "Iterations until detection (total and per co-resident count)", Figure7},
		{"fig8", "Workload phase detection over time", Figure8},
		{"fig9", "Accuracy vs victim pressure per resource", Figure9},
		{"fig10", "Sensitivity: profiling interval, adversarial VM size, benchmark count", Figure10},
		{"fig11", "User study: PDF of launched application types", Figure11},
		{"fig12", "User study: label and characteristics detection accuracy", Figure12},
		{"fig13", "Internal DoS: tail latency and CPU utilisation vs time", Figure13},
		{"dosimpact", "Internal DoS aggregate impact on the 108 victims", DoSImpact},
		{"table2", "Resource-freeing attack impact", Table2},
		{"coresidency", "VM co-residency detection attack", CoResidencyExp},
		{"defence", "Does Bolt's DoS evade provider-side detection?", DefenceEvasion},
		{"fig14", "Detection accuracy under isolation mechanisms", Figure14},
		{"isocost", "Performance and utilisation cost of core isolation", IsolationCost},
		{"ablation", "Design ablations: hybrid recommender, weighting, energy, shutter", Ablations},
		// faultrate and fleet are appended after the paper-order experiments
		// (each new PR appends after the previous) so the suite's output for
		// the pre-existing experiments remains a byte-identical prefix of
		// every earlier golden capture.
		{"faultrate", "Detection accuracy under injected measurement faults", FaultRate},
		{"fleet", "Fleet-scale scheduler-guided co-location (launch-strategy sweep)", FleetExp},
		{"defencesweep", "Attacker vs defender: secure placement against scheduler-guided co-location", DefenceSweep},
	}
}

// ByID returns the experiment with the given ID, or false.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
