package exper

import (
	"runtime"
	"time"
)

// RunResult is one experiment's finished output.
type RunResult struct {
	Experiment Experiment
	Report     *Report
	Elapsed    time.Duration
}

// Run executes the experiments with at most parallel of them in flight at
// once and returns their results in input order. parallel <= 0 means
// GOMAXPROCS.
//
// Each experiment is a pure function of the seed — it builds its own RNGs
// and (via core.TrainCached) shares a read-only trained detector — so the
// results are identical at every parallelism level: running with
// parallel=8 and parallel=1 yields byte-for-byte the same rendered
// reports. Only the wall-clock interleaving differs, which is why Elapsed
// is the sole field a caller must not compare across runs.
//
// A panic inside an experiment does not take the process down with a bare
// worker-goroutine trace: fanOut recovers it, lets the other experiments
// finish, and re-raises it on the caller's goroutine as a *WorkerPanic
// naming the experiment — so the caller's defers (boltbench's profile
// writers in particular) still run.
func Run(exps []Experiment, seed uint64, parallel int) []RunResult {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	results := make([]RunResult, len(exps))
	fanOut(len(exps), parallel,
		func(i int) string { return "experiment " + exps[i].ID },
		func(i int) {
			start := time.Now() //bolt:nolint detrand -- Elapsed is diagnostic-only and documented as never compared across runs; no report bytes derive from it
			rep := exps[i].Run(seed)
			results[i] = RunResult{Experiment: exps[i], Report: rep, Elapsed: time.Since(start)} //bolt:nolint detrand -- same: wall-clock feeds only the Elapsed diagnostic field
		})
	return results
}
