package exper

import (
	"fmt"

	"bolt/internal/core"
	"bolt/internal/mining"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// Ablations measures the design choices DESIGN.md calls out:
//
//  1. hybrid recommender vs pure collaborative filtering (the paper's
//     argument for combining CF with content-based matching: CF alone
//     cannot label victims);
//  2. weighted vs unweighted Pearson correlation (Eq. 1's σ weights);
//  3. the 90%-energy rank-truncation rule, swept over retained energy;
//  4. shutter profiling on vs off for multi-tenant uncore-only hosts.
func Ablations(seed uint64) *Report {
	rep := newReport("ablation", "Design ablations")
	tb := trace.NewTable("Ablation: controlled-experiment accuracy per variant",
		"Variant", "Accuracy", "Note")

	run := func(cfg core.Config, servers, victims int) float64 {
		det := core.TrainCached(workload.TrainingSpecs(seed), cfg)
		res := RunControlled(ControlledConfig{
			Seed:     seed,
			Servers:  servers,
			Victims:  victims,
			Detector: det,
		})
		return res.Accuracy()
	}

	const servers, victims = 20, 54 // half scale: 8 variants below

	baseline := run(core.Config{}, servers, victims)
	tb.Add("hybrid recommender (default)", pct(baseline), "")
	rep.Metrics["baseline"] = baseline

	pureCF := run(core.Config{
		Recommender: mining.RecommenderConfig{PureCF: true},
	}, servers, victims)
	tb.Add("pure collaborative filtering", pct(pureCF), "cannot assign labels (§3.2)")
	rep.Metrics["pure_cf"] = pureCF

	unweighted := run(core.Config{
		Recommender: mining.RecommenderConfig{Unweighted: true},
	}, servers, victims)
	tb.Add("unweighted Pearson", pct(unweighted), "discards per-resource criticality")
	rep.Metrics["unweighted"] = unweighted

	for _, energy := range []float64{0.5, 0.75, 0.9, 0.99} {
		acc := run(core.Config{
			Recommender: mining.RecommenderConfig{EnergyFraction: energy},
		}, servers, victims)
		tb.Add(fmt.Sprintf("energy retention %.0f%%", energy*100), pct(acc), "")
		rep.Metrics[fmt.Sprintf("energy_%.0f", energy*100)] = acc
	}

	noShutter := run(core.Config{DisableShutter: true}, servers, victims)
	tb.Add("shutter profiling disabled", pct(noShutter), "multi-tenant uncore-only hosts suffer")
	rep.Metrics["no_shutter"] = noShutter

	noMRC := run(core.Config{DisableMRC: true}, servers, victims)
	tb.Add("miss-ratio-curve probe disabled", pct(noMRC), "constant-load mixtures lose one equation (§3.3 extension)")
	rep.Metrics["no_mrc"] = noMRC

	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"expected: pure CF collapses label accuracy; σ-weighting and shutter mode each help; energy retention has a broad optimum near 90%")
	return rep
}
