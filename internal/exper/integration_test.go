package exper

import (
	"bytes"
	"strings"
	"testing"

	"bolt/internal/attack"
	"bolt/internal/core"
	"bolt/internal/latency"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// TestEndToEndPipeline walks the whole system across module boundaries:
// catalog → placement → probing → mining → detection → attack planning →
// latency impact. Each stage asserts its own contract, so a regression
// anywhere in the chain is pinned to a stage rather than a headline number.
func TestEndToEndPipeline(t *testing.T) {
	rng := stats.NewRNG(2024)

	// Stage 1: catalog. Training and victim populations exist and carry
	// sane pressure vectors.
	train := workload.TrainingSpecs(2024)
	if len(train) != workload.TrainingSetSize {
		t.Fatalf("training set size %d", len(train))
	}
	victimSpec := workload.Memcached(rng.Split(), 4)
	victimSpec.Jitter = 0

	// Stage 2: placement. Victim first, adversary into the remaining
	// slots; breadth-first placement puts them on sibling hyperthreads.
	host := sim.NewServer("host", sim.ServerConfig{})
	app := workload.NewApp(victimSpec, workload.Constant{Level: 0.9}, rng.Uint64())
	victim := &sim.VM{ID: "victim", VCPUs: 5, App: app}
	if err := host.Place(victim); err != nil {
		t.Fatal(err)
	}
	adv := probe.NewAdversary("bolt", 4, probe.Config{}, rng.Split())
	if err := host.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	if !host.SharesCore(victim, adv.VM) {
		t.Fatal("stage 2: expected hyperthread sharing in this topology")
	}

	// Stage 3: probing. A single profile measures 2-3 resources in 2-5 s
	// and reads the shared-core state correctly.
	p := adv.ProfileOnce(host, 0, 0)
	if !p.CoreShared {
		t.Fatal("stage 3: core sharing not detected")
	}
	if secs := p.Ticks.Seconds(); secs < 0.5 || secs > 8 {
		t.Fatalf("stage 3: profiling took %.1fs, expected the paper's few seconds", secs)
	}

	// Stage 4: mining. Detection labels the victim and recovers its
	// critical resources.
	det := core.Train(train, core.Config{})
	detection := det.Detect(host, adv, 0, 1)
	// Accuracy per se is covered elsewhere; here the contract is that the
	// detection lands in the right family (memcached's only near-twin in
	// the catalog is redis — the paper's own lowest-accuracy confusion).
	best := detection.Result.Best().Label
	if !core.ClassMatches(best, "memcached") && !core.ClassMatches(best, "redis") {
		t.Fatalf("stage 4: detected %q for a %s victim", best, victimSpec.Class)
	}
	recovered := sim.FromSlice(detection.Result.Pressure)
	truthTop := victimSpec.Base.TopK(2)
	overlap := false
	for _, r := range recovered.TopK(3) {
		for _, tr := range truthTop {
			if r == tr {
				overlap = true
			}
		}
	}
	if !overlap {
		t.Fatalf("stage 4: recovered criticals %v miss the truth %v",
			recovered.TopK(3), truthTop)
	}

	// Stage 5: attack planning. The plan targets reachable resources,
	// avoids the CPU, and actually hurts.
	plan := attack.PlanDoS(detection, 2)
	if plan.AdversaryCPU() != 0 {
		t.Fatal("stage 5: plan must not burn CPU")
	}
	svc := &latency.Service{VM: victim, Pattern: workload.Constant{Level: 0.9}}
	before := svc.Measure(host, 500).P99Ms
	attack.Launch(adv, plan)
	after := svc.Measure(host, 500).P99Ms
	attack.Stop(adv)
	if after < before*3 {
		t.Fatalf("stage 5: attack raised p99 only %.1fx", after/before)
	}
	// And the host stays below the migration trigger.
	if u := host.CPUUtilization(500); u > 70 {
		t.Fatalf("stage 5: utilisation %v%% would trip the defence", u)
	}
}

// TestReportJSONRoundTrip: every experiment's report must serialise to
// valid JSON carrying its metrics.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := Figure5(3)
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"id": "fig5"`, "similarity_recommender", `"tables"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("JSON missing %q:\n%s", want, out[:200])
		}
	}
}

// TestExperimentsAllRunnable executes every registered experiment at a tiny
// seed and checks the report contract: non-empty ID, at least one artefact,
// and at least one metric. This is the smoke net that keeps the whole
// harness runnable as modules evolve. Heavyweight experiments are skipped
// in -short mode.
func TestExperimentsAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness sweep skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			rep := e.Run(11)
			if rep.ID != e.ID {
				t.Fatalf("report ID %q != experiment ID %q", rep.ID, e.ID)
			}
			if len(rep.Tables)+len(rep.Figures)+len(rep.Heatmaps) == 0 {
				t.Fatal("report renders nothing")
			}
			if len(rep.Metrics) == 0 {
				t.Fatal("report carries no metrics")
			}
			var buf bytes.Buffer
			rep.Render(&buf)
			if buf.Len() == 0 {
				t.Fatal("report rendered empty")
			}
		})
	}
}
