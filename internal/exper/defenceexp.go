package exper

import (
	"bolt/internal/attack"
	"bolt/internal/core"
	"bolt/internal/defence"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// DefenceEvasion measures the §5.1 evasion claim head-on: Bolt's
// detection-guided DoS and the naive CPU-saturating DoS each run against
// two provider-side detectors — the standard CPU-threshold load trigger
// (the sensor behind live migration) and a multi-resource anomaly detector
// that baselines every shared resource. The paper's claim holds when the
// CPU trigger fires on the naive attack and stays silent on Bolt's; the
// extension shows what a provider would have to monitor to close the gap.
func DefenceEvasion(seed uint64) *Report {
	rep := newReport("defence", "Does Bolt's DoS evade provider-side detection?")
	rng := stats.NewRNG(seed ^ 0xdefe)
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	type cellResult struct {
		alarmed bool
		at      sim.Tick
	}
	run := func(naive bool, mk func() defence.Detector) cellResult {
		s := sim.NewServer("s0", sim.ServerConfig{})
		spec := workload.Memcached(rng.Split(), 1)
		spec.Jitter = 0.03 // live variation so the baseline has a variance
		app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
		victim := &sim.VM{ID: "victim", VCPUs: 3, App: app}
		if err := s.Place(victim); err != nil {
			panic(err)
		}
		adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
		if err := s.Place(adv.VM); err != nil {
			panic(err)
		}

		monitor := mk()
		const attackAt = 30 * sim.TicksPerSecond
		var plan attack.DoSPlan
		for t := sim.Tick(0); t < 180*sim.TicksPerSecond; t++ {
			if t == attackAt {
				d := det.Detect(s, adv, t, 1)
				if naive {
					plan = attack.NaiveDoSPlan()
				} else {
					plan = attack.PlanDoS(d, 2)
				}
				attack.Launch(adv, plan)
			}
			monitor.Observe(t, defence.HostUsage(s, t))
		}
		attack.Stop(adv)
		alarmed, at := monitor.Alarmed()
		return cellResult{alarmed, at}
	}

	tb := trace.NewTable("Attack vs provider-side detector",
		"Attack", "cpu-threshold trigger", "multi-resource anomaly")
	render := func(c cellResult) string {
		if !c.alarmed {
			return "no alarm (evaded)"
		}
		return defence.Verdict{Detector: "", Alarmed: true, At: c.at}.String()[2:]
	}

	boltCPU := run(false, func() defence.Detector { return defence.NewCPUThreshold() })
	boltAnom := run(false, func() defence.Detector { return defence.NewMultiResourceAnomaly() })
	naiveCPU := run(true, func() defence.Detector { return defence.NewCPUThreshold() })
	naiveAnom := run(true, func() defence.Detector { return defence.NewMultiResourceAnomaly() })

	tb.Add("Bolt (targeted, CPU-free)", render(boltCPU), render(boltAnom))
	tb.Add("naive (CPU-saturating)", render(naiveCPU), render(naiveAnom))
	rep.Tables = append(rep.Tables, tb)

	rep.Metrics["bolt_evades_cpu_trigger"] = b2f(!boltCPU.alarmed)
	rep.Metrics["naive_trips_cpu_trigger"] = b2f(naiveCPU.alarmed)
	rep.Metrics["anomaly_catches_bolt"] = b2f(boltAnom.alarmed)
	rep.Metrics["anomaly_catches_naive"] = b2f(naiveAnom.alarmed)
	rep.Notes = append(rep.Notes,
		"paper (§5.1): Bolt keeps utilisation moderate and evades load-triggered defences; extension: a detector baselining every shared resource closes the gap")
	return rep
}
