package exper

import (
	"fmt"

	"bolt/internal/mining"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// Figure4 reproduces Fig. 4: the coverage of the resource-characteristics
// space by the 120-application training set, shown as CPU×Memory and
// Network×Storage pressure scatters.
func Figure4(seed uint64) *Report {
	rep := newReport("fig4", "Training-set coverage")
	specs := workload.TrainingSpecs(seed)

	heat1 := trace.NewHeatmap("Fig 4a: CPU vs Memory pressure coverage",
		"memory pressure (top=100)", "CPU pressure", 10, 20)
	heat2 := trace.NewHeatmap("Fig 4b: Network vs Storage pressure coverage",
		"storage pressure (top=100)", "network pressure", 10, 20)
	var cpuXs, memYs, netXs, diskYs []float64
	for _, s := range specs {
		cpu := s.Base.Get(sim.CPU)
		mem := (s.Base.Get(sim.MemCap) + s.Base.Get(sim.MemBW)) / 2
		net := s.Base.Get(sim.NetBW)
		disk := (s.Base.Get(sim.DiskCap) + s.Base.Get(sim.DiskBW)) / 2
		cpuXs = append(cpuXs, cpu)
		memYs = append(memYs, mem)
		netXs = append(netXs, net)
		diskYs = append(diskYs, disk)
		mark := func(h *trace.Heatmap, x, y float64) {
			c := int(x / 100 * float64(h.Cols))
			r := h.Rows - 1 - int(y/100*float64(h.Rows))
			if c >= h.Cols {
				c = h.Cols - 1
			}
			if r < 0 {
				r = 0
			}
			if r >= h.Rows {
				r = h.Rows - 1
			}
			h.Set(r, c, h.At(r, c)+1)
		}
		mark(heat1, cpu, mem)
		mark(heat2, net, disk)
	}
	rep.Heatmaps = append(rep.Heatmaps, heat1, heat2)

	// Coverage metric: fraction of 20×20-point grid cells within 15 points
	// of some training app — how well the set tiles the space it occupies.
	rep.Metrics["cpu_mem_spread"] = stats.StdDev(cpuXs) + stats.StdDev(memYs)
	rep.Metrics["net_disk_spread"] = stats.StdDev(netXs) + stats.StdDev(diskYs)
	rep.Metrics["training_apps"] = float64(len(specs))
	rep.Notes = append(rep.Notes,
		"paper: training apps cover the majority of the resource-usage space")
	return rep
}

// Figure2 reproduces Fig. 2: the probability that an unknown workload is a
// read-mostly, KB-value memcached instance, as a function of the pressure
// it exerts on pairs of resources. The posterior is estimated empirically:
// many labelled samples are drawn from the catalog, binned by the pressure
// pair, and P(memcached) is the bin's share of memcached samples.
func Figure2(seed uint64) *Report {
	rep := newReport("fig2", "P(memcached) vs resource pressure pairs")
	rng := stats.NewRNG(seed ^ 0xf162)

	pairs := []struct {
		x, y sim.Resource
	}{
		{sim.L1I, sim.LLC},
		{sim.L1D, sim.CPU},
		{sim.MemCap, sim.MemBW},
		{sim.DiskCap, sim.NetBW},
		{sim.DiskBW, sim.L2},
	}
	const bins = 10
	type grid struct {
		mem, all [bins][bins]float64
	}
	grids := make([]grid, len(pairs))

	gens := workload.Generators()
	const samples = 30000
	for i := 0; i < samples; i++ {
		g := gens[rng.Intn(len(gens))]
		spec := g.Make(rng.Split(), rng.Intn(24))
		isMem := spec.Class == "memcached"
		for pi, p := range pairs {
			bx := int(spec.Base.Get(p.x) / 100 * bins)
			by := int(spec.Base.Get(p.y) / 100 * bins)
			if bx >= bins {
				bx = bins - 1
			}
			if by >= bins {
				by = bins - 1
			}
			grids[pi].all[bx][by]++
			if isMem {
				grids[pi].mem[bx][by]++
			}
		}
	}

	var peak float64
	for pi, p := range pairs {
		h := trace.NewHeatmap(
			fmt.Sprintf("Fig 2: P(memcached) vs %s (x) and %s (y, top=100)", p.x, p.y),
			p.y.String(), p.x.String(), bins, bins)
		for bx := 0; bx < bins; bx++ {
			for by := 0; by < bins; by++ {
				if grids[pi].all[bx][by] < 5 {
					continue
				}
				prob := grids[pi].mem[bx][by] / grids[pi].all[bx][by]
				h.Set(bins-1-by, bx, prob)
				if prob > peak {
					peak = prob
				}
			}
		}
		rep.Heatmaps = append(rep.Heatmaps, h)
	}
	rep.Metrics["peak_probability"] = peak

	// The paper's two headline signals: high L1-i + high LLC pressure is
	// strongly memcached; any disk traffic rules memcached out.
	memSignal, memAll, diskSignal, diskAll := 0.0, 0.0, 0.0, 0.0
	for i := 0; i < samples/3; i++ {
		g := gens[rng.Intn(len(gens))]
		spec := g.Make(rng.Split(), rng.Intn(24))
		if spec.Base.Get(sim.L1I) > 75 && spec.Base.Get(sim.LLC) > 60 {
			memAll++
			if spec.Class == "memcached" {
				memSignal++
			}
		}
		if spec.Base.Get(sim.DiskBW) > 20 {
			diskAll++
			if spec.Class == "memcached" {
				diskSignal++
			}
		}
	}
	if memAll > 0 {
		rep.Metrics["p_memcached_given_high_l1i_llc"] = memSignal / memAll
	}
	if diskAll > 0 {
		rep.Metrics["p_memcached_given_disk_traffic"] = diskSignal / diskAll
	}
	rep.Notes = append(rep.Notes,
		"paper: very high L1-i plus high LLC pressure ⇒ memcached with high probability; disk usage ⇒ not memcached")
	return rep
}

// Figure5 reproduces Fig. 5: the star charts comparing two Hadoop jobs
// (word count on a small dataset vs a recommender on a large one) and the
// similarity scores an unknown Hadoop job receives against each.
func Figure5(seed uint64) *Report {
	rep := newReport("fig5", "Star charts and within-framework similarity")
	rng := stats.NewRNG(seed ^ 0xf165)

	wc := workload.Hadoop(rng.Split(), 0)   // wordcount:S
	rec := workload.Hadoop(rng.Split(), 22) // recommender, L-size cycle
	unknown := workload.Hadoop(rng.Split(), 14)

	tb := trace.NewTable("Fig 5: resource profiles (star-chart radii)",
		append([]string{"Resource"}, wc.Label, rec.Label, "unknown")...)
	for _, r := range sim.AllResources() {
		tb.Add(r.String(),
			fmt.Sprintf("%.0f", wc.Base.Get(r)),
			fmt.Sprintf("%.0f", rec.Base.Get(r)),
			fmt.Sprintf("%.0f", unknown.Base.Get(r)))
	}
	rep.Tables = append(rep.Tables, tb)

	// Similarity of the unknown job to each reference, through the real
	// recommender so the scores carry the paper's meaning.
	profiles := []mining.LabeledProfile{
		{Label: wc.Label, Class: wc.Class, Pressure: wc.Base.Slice()},
		{Label: rec.Label, Class: rec.Class, Pressure: rec.Base.Slice()},
	}
	// A recommender needs a broader context to have meaningful concepts.
	for _, s := range workload.TrainingSpecs(seed) {
		profiles = append(profiles, mining.LabeledProfile{
			Label: s.Label, Class: s.Class, Pressure: s.Base.Slice(),
		})
	}
	recSys := mining.NewRecommender(profiles, mining.RecommenderConfig{})
	result := recSys.DetectDense(unknown.Base.Slice())
	simWC, simRec := 0.0, 0.0
	for _, m := range result.Matches {
		if m.Label == wc.Label && simWC == 0 {
			simWC = m.Similarity
		}
		if m.Label == rec.Label && simRec == 0 {
			simRec = m.Similarity
		}
	}
	rep.Metrics["similarity_wordcount"] = simWC
	rep.Metrics["similarity_recommender"] = simRec

	tb2 := trace.NewTable("Similarity of the unknown job", "Reference", "Similarity")
	tb2.Add(wc.Label, fmt.Sprintf("%.2f", simWC))
	tb2.Add(rec.Label, fmt.Sprintf("%.2f", simRec))
	rep.Tables = append(rep.Tables, tb2)
	rep.Notes = append(rep.Notes,
		"paper: unknown Hadoop job is 0.78 similar to the recommender vs 0.29 to word count")
	return rep
}
