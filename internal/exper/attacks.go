package exper

import (
	"fmt"

	"bolt/internal/attack"
	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/latency"
	"bolt/internal/mining"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/trace"
	"bolt/internal/workload"
)

// attackPlanConfig is the detector configuration for experiments that set
// contention-kernel intensities directly from the completed pressure vector
// (PlanDoS targets each critical resource at pressure + headroom). Those raw
// floats flow on into the latency simulation and out into the report, so the
// emitted bytes are sensitive to the completion solve at machine precision.
// The convergence-gated fold-in lands within 2⁻⁴⁸ of the fixed-sweep
// solution — far below anything the simulation resolves — but the suite's
// regression contract is byte-identical output across runs and code
// changes, so these experiments pin the historical fixed sweep count.
// TrainCached keys on the resolved config, so this costs one extra cached
// training pass; every other experiment keeps the gated fast path.
func attackPlanConfig() core.Config {
	return core.Config{Recommender: mining.RecommenderConfig{
		Completion: mining.CompletionConfig{FixedFoldIn: true},
	}}
}

// Figure13 reproduces Fig. 13: the p99 latency and host CPU utilisation
// over time for a memcached victim under Bolt's detection-guided DoS
// attack vs a naïve CPU-saturating DoS, with a live-migration defence that
// triggers on sustained >70% CPU utilisation.
func Figure13(seed uint64) *Report {
	rep := newReport("fig13", "DoS timeline: Bolt vs naive, with migration defence")
	rng := stats.NewRNG(seed ^ 0xf1613)
	det := core.TrainCached(workload.TrainingSpecs(seed), attackPlanConfig())

	type timeline struct {
		p99, cpu []float64
	}
	run := func(naive bool) timeline {
		cl := cluster.New(2, sim.ServerConfig{}, cluster.LeastLoaded{})
		spec := workload.Memcached(rng.Split(), 1)
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
		victim := &sim.VM{ID: "victim", VCPUs: 3, App: app}
		host, err := cl.Place(victim, 0)
		if err != nil {
			panic(err)
		}
		adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
		if err := host.Place(adv.VM); err != nil {
			panic(err)
		}
		svc := &latency.Service{VM: victim, Pattern: workload.Constant{Level: 0.9}}

		policy := cluster.DefaultMigrationPolicy()
		const (
			durationSec = 120
			detectAtSec = 10
			attackAtSec = 20
			sustainSec  = 60 // defence requires sustained overload
		)
		var tl timeline
		var plan attack.DoSPlan
		launched := false
		overloadSince := sim.Tick(-1)
		migrated := false
		var outageUntil sim.Tick

		for sec := 0; sec < durationSec; sec++ {
			t := sim.Tick(sec * sim.TicksPerSecond)
			if sec == detectAtSec {
				d := det.Detect(host, adv, t, 1)
				if naive {
					plan = attack.NaiveDoSPlan()
				} else {
					plan = attack.PlanDoS(d, 2)
				}
			}
			if sec == attackAtSec {
				attack.Launch(adv, plan)
				launched = true
			}

			cur := cl.HostOf("victim")
			var p99, cpu float64
			if outageUntil > t {
				// Mid-migration blackout: requests stall at the shedding
				// bound.
				p99 = svc.Baseline(t).P99Ms * 50
				cpu = cur.CPUUtilization(t)
			} else {
				p99 = svc.Measure(cur, t).P99Ms
				cpu = cur.CPUUtilization(t)
			}
			tl.p99 = append(tl.p99, p99)
			tl.cpu = append(tl.cpu, cpu)

			// Migration defence: sustained overload on the victim's host.
			if launched && !migrated && cur == host {
				if policy.ShouldMigrate(host, t) {
					if overloadSince < 0 {
						overloadSince = t
					}
					if t-overloadSince >= sim.Tick(sustainSec*sim.TicksPerSecond) {
						if _, err := cl.Migrate("victim", t); err == nil {
							migrated = true
							outageUntil = t + policy.OutageTicks
						}
					}
				} else {
					overloadSince = -1
				}
			}
		}
		_ = launched
		return tl
	}

	bolt := run(false)
	naive := run(true)

	times := make([]float64, len(bolt.p99))
	for i := range times {
		times[i] = float64(i)
	}
	figLat := trace.NewFigure("Fig 13a: 99th percentile latency", "time (s)", "p99 (ms)")
	figLat.AddSeries("Bolt", times, bolt.p99)
	figLat.AddSeries("Naive", times, naive.p99)
	figCPU := trace.NewFigure("Fig 13b: host CPU utilisation", "time (s)", "CPU (%)")
	figCPU.AddSeries("Bolt", times, bolt.cpu)
	figCPU.AddSeries("Naive", times, naive.cpu)
	rep.Figures = append(rep.Figures, figLat, figCPU)

	// Headline comparisons: what each attack achieves in the final phase
	// (after the naive attack's victim has been migrated away).
	tail := func(xs []float64) float64 { return stats.Mean(xs[len(xs)-20:]) }
	base := bolt.p99[5]
	rep.Metrics["bolt_final_p99_factor"] = tail(bolt.p99) / base
	rep.Metrics["naive_final_p99_factor"] = tail(naive.p99) / base
	rep.Metrics["bolt_peak_cpu"] = stats.Max(bolt.cpu)
	rep.Metrics["naive_peak_cpu"] = stats.Max(naive.cpu)
	rep.Notes = append(rep.Notes,
		"paper: both attacks degrade equally until the naive one trips migration at ~80 s; Bolt stays below the utilisation trigger and keeps hurting the victim")
	return rep
}

// DoSImpact reproduces the §5.1 aggregate: the detection-guided DoS run
// against each controlled-experiment victim, reporting execution-time
// dilation for batch victims and p99 inflation for interactive ones.
func DoSImpact(seed uint64) *Report {
	rep := newReport("dosimpact", "DoS aggregate impact")
	rng := stats.NewRNG(seed ^ 0xd05)
	det := core.TrainCached(workload.TrainingSpecs(seed), attackPlanConfig())

	interactive := map[string]bool{
		"memcached": true, "redis": true, "webserver": true,
		"mysql": true, "postgres": true, "cassandra": true, "mongodb": true,
	}

	var execSlow, tailFactors []float64
	victims := workload.VictimSpecs(seed, 108)
	for i, spec := range victims {
		s := sim.NewServer("s0", sim.ServerConfig{})
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
		vm := &sim.VM{ID: "victim", VCPUs: 3, App: app}
		if err := s.Place(vm); err != nil {
			panic(err)
		}
		adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
		if err := s.Place(adv.VM); err != nil {
			panic(err)
		}
		t := sim.Tick(i * 5000)
		d := det.Detect(s, adv, t, 1)
		attack.Launch(adv, attack.PlanDoS(d, 2))
		if interactive[spec.Class] {
			svc := &latency.Service{VM: vm, Pattern: workload.Constant{Level: 0.9}}
			tailFactors = append(tailFactors, svc.DegradationFactor(s, t+1000))
		} else {
			execSlow = append(execSlow, s.Slowdown(vm, t+1000))
		}
		attack.Stop(adv)
	}

	tb := trace.NewTable("DoS impact on the 108 controlled-experiment victims",
		"Metric", "Value")
	tb.Add("batch victims", fmt.Sprintf("%d", len(execSlow)))
	tb.Add("mean exec-time dilation", fmt.Sprintf("%.1fx", stats.Mean(execSlow)))
	tb.Add("max exec-time dilation", fmt.Sprintf("%.1fx", stats.Max(execSlow)))
	tb.Add("interactive victims", fmt.Sprintf("%d", len(tailFactors)))
	tb.Add("min p99 inflation", fmt.Sprintf("%.0fx", stats.Min(tailFactors)))
	tb.Add("max p99 inflation", fmt.Sprintf("%.0fx", stats.Max(tailFactors)))
	rep.Tables = append(rep.Tables, tb)

	rep.Metrics["mean_exec_slowdown"] = stats.Mean(execSlow)
	rep.Metrics["max_exec_slowdown"] = stats.Max(execSlow)
	rep.Metrics["min_tail_factor"] = stats.Min(tailFactors)
	rep.Metrics["max_tail_factor"] = stats.Max(tailFactors)
	rep.Notes = append(rep.Notes,
		"paper: 2.2x mean / 9.8x max execution time; 8-140x tail latency for interactive victims")
	return rep
}

// scoutIterations is how many profiling iterations the pre-attack scout
// runs. It matches the detector's default episode budget (§3.2, Fig. 7
// finds no benefit past six) but without the early-stop shortcut — the
// scout wants measured, not completed, pressure on every resource.
const scoutIterations = 6

// Table2 reproduces Table 2: resource-freeing attacks against an Apache
// webserver, a network-bound Hadoop job, and a memory-bound Spark job.
// Bolt first detects the victim's dominant resource (victim and adversary
// alone on the host, as in the attack flow), then the beneficiary is
// co-scheduled on the victim's cores and the helper saturates the detected
// resource. The beneficiary's critical resource must not overlap the
// helper's target (the paper's requirement): mcf for the webserver and
// Hadoop scenarios, a compute-bound benchmark for the Spark scenario where
// the helper itself saturates the memory bandwidth mcf depends on.
func Table2(seed uint64) *Report {
	rep := newReport("table2", "Resource-freeing attack impact")
	rng := stats.NewRNG(seed ^ 0x7ab1e2)
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	tb := trace.NewTable("Table 2: RFA impact",
		"Victim App", "Victim Perf", "Beneficiary", "Beneficiary Perf", "Target Resource")

	record := func(si int, name string, out attack.RFAOutcome, beneficiary string) {
		tb.Add(name,
			fmt.Sprintf("-%.0f%% (%s)", out.VictimDegradation, out.VictimMetric),
			beneficiary,
			fmt.Sprintf("%+.0f%%", out.BeneficiaryImprovement),
			out.Target.String())
		rep.Metrics[fmt.Sprintf("victim_degradation_%d", si)] = out.VictimDegradation
		rep.Metrics[fmt.Sprintf("beneficiary_improvement_%d", si)] = out.BeneficiaryImprovement
	}

	// buildHost places a 6-vCPU victim, then the 4-vCPU helper (the
	// adversarial VM that also runs detection), then the 6-vCPU
	// beneficiary, which straddles the victim's cores on the 8-core host —
	// the hyperthread coupling RFAs exploit.
	buildHost := func(victimApp sim.Demander, bspec workload.Spec, seedOff uint64) (*sim.Server, *sim.VM, *sim.VM, *probe.Adversary) {
		s := sim.NewServer("s0", sim.ServerConfig{})
		victimVM := &sim.VM{ID: "victim", VCPUs: 6, App: victimApp}
		if err := s.Place(victimVM); err != nil {
			panic(err)
		}
		helper := probe.NewAdversary("helper", 4, probe.Config{}, rng.Split())
		if err := s.Place(helper.VM); err != nil {
			panic(err)
		}
		bspec.Jitter = 0
		bapp := workload.NewApp(bspec, workload.Constant{Level: 0.95}, seedOff+1)
		benVM := &sim.VM{ID: "beneficiary", VCPUs: 6, App: bapp}
		if err := s.Place(benVM); err != nil {
			panic(err)
		}
		return s, victimVM, benVM, helper
	}

	// detectDominant finds the victim's dominant resource with only victim
	// and adversary on the host (the detection precedes the attack).
	detectDominant := func(vspec workload.Spec, fallback sim.Resource, seedOff uint64) sim.Resource {
		s := sim.NewServer("s0", sim.ServerConfig{})
		spec := vspec
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 0.95}, seedOff)
		if err := s.Place(&sim.VM{ID: "victim", VCPUs: 6, App: app}); err != nil {
			panic(err)
		}
		adv := probe.NewAdversary("scout", 4, probe.Config{}, rng.Split())
		if err := s.Place(adv.VM); err != nil {
			panic(err)
		}
		// The scout profiles before the attack and is not time-constrained,
		// so it runs a full episode rather than stopping at the first strong
		// label match: a barely-over-threshold early stop can leave most
		// uncore resources estimated by completion instead of measured, and
		// an invented pressure entry here picks the wrong RFA target.
		e := det.NewEpisode(s, adv)
		var res *mining.Result
		for i := 0; i < scoutIterations; i++ {
			res = e.Step(0)
		}
		if !res.Confident() {
			return fallback
		}
		// An RFA helper streams through a resource; capacity resources
		// (memory/disk footprints) cannot be saturated that way, so the
		// target is the victim's top bandwidth/compute resource.
		pressure := sim.FromSlice(res.Pressure)
		for _, r := range pressure.TopK(sim.NumResources) {
			if r != sim.MemCap && r != sim.DiskCap {
				return r
			}
		}
		return fallback
	}

	// Scenario 0: Apache webserver. The "helper" is a flood of CGI
	// requests through the victim itself: the webserver saturates its CPU
	// serving them, sheds legitimate queries, and its cache/memory
	// footprint drains (CGI scripts are compute-heavy and cache-light) —
	// freeing exactly what mcf wants.
	{
		vspec := workload.Webserver(rng.Split(), 1)
		vspec.Jitter = 0
		bspec := workload.SpecCPU(rng.Split(), 0) // mcf: cache/memory-hungry

		target := detectDominant(vspec, sim.CPU, 100)
		_ = target // the CGI flood always manifests as CPU saturation

		// Baseline host: victim at normal load.
		normal := workload.NewApp(vspec, workload.Constant{Level: 0.95}, 100)
		s, victimVM, benVM, _ := buildHost(normal, bspec, 100)
		svc := &latency.Service{VM: victimVM, Pattern: workload.Constant{Level: 0.95},
			BaseServiceMs: 2, PeakRho: 0.7}
		base := svc.Measure(s, 0)
		ben := &latency.BatchJob{VM: benVM, Work: 300}
		baseBen, _ := ben.Run(s, 0, 0)

		// Attack host: the flooded webserver burns CPU and drains caches.
		flooded := vspec
		flooded.Base.Set(sim.CPU, 96)
		for _, r := range []sim.Resource{sim.L1I, sim.L1D, sim.LLC, sim.MemBW} {
			flooded.Base.Set(r, flooded.Base.Get(r)*0.45)
		}
		floodApp := workload.NewApp(flooded, workload.Constant{Level: 1}, 100)
		s2, _, benVM2, _ := buildHost(floodApp, bspec, 100)
		ben2 := &latency.BatchJob{VM: benVM2, Work: 300}
		attBen, _ := ben2.Run(s2, 0, 0)

		// Legitimate QPS under the flood: the saturated service serves at
		// capacity, shared with the CGI traffic.
		const legit, cgi = 0.95, 0.9
		rhoAtt := base.Utilization / legit * (legit + cgi)
		totalServed := (legit + cgi) * 100_000
		if rhoAtt >= 1 {
			totalServed /= rhoAtt
		}
		legitQPS := totalServed * legit / (legit + cgi)

		out := attack.RFAOutcome{
			Target:                 sim.CPU,
			VictimDegradation:      100 * (base.QPS - legitQPS) / base.QPS,
			BeneficiaryImprovement: 100 * (float64(baseBen) - float64(attBen)) / float64(baseBen),
			VictimMetric:           "QPS",
		}
		record(0, "Apache Webserver", out, "mcf")
	}

	// Scenario 1: network-bound Hadoop job; the helper saturates network
	// bandwidth (iperf-like), the victim stalls on the network and frees
	// CPU and memory for mcf.
	{
		vspec := hadoopNetBound(rng.Split())
		vspec.Jitter = 0
		bspec := workload.SpecCPU(rng.Split(), 0) // mcf
		target := detectDominant(vspec, sim.NetBW, 200)

		vapp := workload.NewReactive(workload.NewApp(vspec, workload.Constant{Level: 0.95}, 200))
		s, victimVM, benVM, helper := buildHost(vapp, bspec, 200)
		vapp.Bind(s, victimVM)

		rfa := &attack.RFA{Helper: helper, Target: target}
		out := attack.MeasureBatchRFA(rfa, s,
			&latency.BatchJob{VM: victimVM, Work: 300},
			&latency.BatchJob{VM: benVM, Work: 300}, 5000)
		record(1, "Hadoop (SVM)", out, "mcf")
	}

	// Scenario 2: memory-bound Spark k-means; the helper streams through
	// memory. mcf itself needs that bandwidth, so the beneficiary is a
	// compute-bound SPEC job (the paper's non-overlap condition).
	{
		vspec := workload.Spark(rng.Split(), 0) // kmeans
		vspec.Jitter = 0
		bspec := workload.SpecCPU(rng.Split(), 6) // gobmk: compute-bound
		target := detectDominant(vspec, sim.MemBW, 300)

		vapp := workload.NewReactive(workload.NewApp(vspec, workload.Constant{Level: 0.95}, 300))
		s, victimVM, benVM, helper := buildHost(vapp, bspec, 300)
		vapp.Bind(s, victimVM)

		rfa := &attack.RFA{Helper: helper, Target: target}
		out := attack.MeasureBatchRFA(rfa, s,
			&latency.BatchJob{VM: victimVM, Work: 300},
			&latency.BatchJob{VM: benVM, Work: 300}, 5000)
		record(2, "Spark (k-means)", out, "gobmk (CPU-bound)")
	}

	rep.Tables = append(rep.Tables, tb)
	rep.Notes = append(rep.Notes,
		"paper: victims -64%/-36%/-52%; beneficiary +24%/+16%/+38%; targets CPU / network BW / memory BW")
	return rep
}

// hadoopNetBound builds the network-bound Hadoop job of Table 2: a
// shuffle-heavy configuration whose dominant resource is the network.
func hadoopNetBound(rng *stats.RNG) workload.Spec {
	spec := workload.Hadoop(rng, 2) // sort: the most shuffle-bound variant
	spec.Base.Set(sim.NetBW, 82)
	spec.Base.Set(sim.DiskCap, 55)
	spec.Base.Set(sim.DiskBW, 58)
	spec.Label = "hadoop:svm-net:L"
	return spec
}

// CoResidencyExp reproduces the §5.3 evaluation: locating a single SQL
// server VM in a 40-node cluster that also hosts seven other SQL VMs plus
// key-value stores and analytics.
func CoResidencyExp(seed uint64) *Report {
	rep := newReport("coresidency", "VM co-residency detection")
	rng := stats.NewRNG(seed ^ 0xc07e5)
	det := core.TrainCached(workload.TrainingSpecs(seed), core.Config{})

	cl := cluster.New(40, sim.ServerConfig{}, cluster.LeastLoaded{})
	services := map[string]*latency.Service{}

	// The victim: one SQL VM whose latency the receiver can query.
	vspec := workload.SQLDatabase(rng.Split(), 0)
	vspec.Jitter = 0
	vapp := workload.NewApp(vspec, workload.Constant{Level: 0.9}, rng.Uint64())
	victimVM := &sim.VM{ID: "victim-sql", VCPUs: 4, App: vapp}
	victimHost, err := cl.Place(victimVM, 0)
	if err != nil {
		panic(err)
	}
	services[victimHost.Name()] = &latency.Service{
		VM: victimVM, Pattern: workload.Constant{Level: 0.9}, BaseServiceMs: 8,
	}

	// Seven other SQL VMs (decoys) plus a mixed population.
	for i := 0; i < 7; i++ {
		spec := workload.SQLDatabase(rng.Split(), i)
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
		if _, err := cl.Place(&sim.VM{ID: fmt.Sprintf("sql-%d", i), VCPUs: 4, App: app}, 0); err != nil {
			panic(err)
		}
	}
	fillers := []func(*stats.RNG, int) workload.Spec{
		workload.Memcached, workload.Hadoop, workload.Spark,
	}
	for i := 0; i < 24; i++ {
		spec := fillers[i%len(fillers)](rng.Split(), i)
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
		if _, err := cl.Place(&sim.VM{ID: fmt.Sprintf("filler-%d", i), VCPUs: 4, App: app}, 0); err != nil {
			panic(err)
		}
	}

	atk := &attack.CoResidency{
		Detector: det,
		Cluster:  cl,
		RNG:      rng.Split(),
		Receiver: func(h *sim.Server) *latency.Service { return services[h.Name()] },
	}
	// The paper launches 10 senders; retry with fresh placements until one
	// lands with the victim (each retry models a new simultaneous launch).
	// With 10 senders on 40 hosts each launch co-locates with probability
	// ~1/4, so the cap sits well above the expected ~4 launches to keep an
	// unlucky placement streak from ending the experiment empty-handed.
	var result attack.CoResidencyResult
	attempts := 0
	for ; attempts < 32; attempts++ {
		result = atk.Run(attack.CoResidencyConfig{
			Senders:     10,
			TargetClass: vspec.Class,
		}, 1, sim.Tick(attempts*20000))
		if result.Found {
			break
		}
	}

	tb := trace.NewTable("Co-residency detection outcome", "Metric", "Value")
	tb.Add("analytic P(f) per launch", fmt.Sprintf("%.2f", result.PlacementProbability))
	tb.Add("launches needed", fmt.Sprintf("%d", attempts+1))
	tb.Add("SQL candidates in sample", fmt.Sprintf("%d", result.Candidates))
	tb.Add("victim found", fmt.Sprintf("%v", result.Found))
	tb.Add("confirmation latency ratio", fmt.Sprintf("%.1fx", result.LatencyRatio))
	tb.Add("attack time", fmt.Sprintf("%.1fs", result.Ticks.Seconds()))
	tb.Add("adversary VMs", fmt.Sprintf("%d", result.SendersUsed+1)) // +1 receiver
	rep.Tables = append(rep.Tables, tb)

	rep.Metrics["found"] = b2f(result.Found)
	rep.Metrics["candidates"] = float64(result.Candidates)
	rep.Metrics["latency_ratio"] = result.LatencyRatio
	rep.Metrics["attack_seconds"] = result.Ticks.Seconds()
	rep.Metrics["placement_probability"] = result.PlacementProbability
	rep.Notes = append(rep.Notes,
		"paper: 10 senders, 3 SQL candidates detected, ~3x latency confirmation, 6 s, 11 adversary VMs")
	return rep
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
