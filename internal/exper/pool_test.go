package exper

import (
	"bytes"
	"crypto/md5"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// withEpisodeWorkers pins the episode pool width for one test and restores
// the default on cleanup.
func withEpisodeWorkers(t *testing.T, n int) {
	t.Helper()
	SetEpisodeWorkers(n)
	t.Cleanup(func() { SetEpisodeWorkers(0) })
}

func TestForEachEpisodeDegenerateInputs(t *testing.T) {
	// Empty input: no bodies run, no goroutines spawned, no panic.
	withEpisodeWorkers(t, 4)
	calls := 0
	forEachEpisode(0, func(int) { calls++ })
	if calls != 0 {
		t.Fatalf("forEachEpisode(0) ran %d bodies", calls)
	}

	// Workers far beyond the episode count: every index runs exactly once.
	withEpisodeWorkers(t, 64)
	var mask atomic.Int64
	forEachEpisode(3, func(i int) {
		if mask.Add(1<<uint(i))>>uint(i)&1 != 1 {
			t.Errorf("index %d ran twice", i)
		}
	})
	if mask.Load() != 0b111 {
		t.Fatalf("bodies ran with mask %b, want 111", mask.Load())
	}
}

func TestForEachEpisodeMergesInInputOrder(t *testing.T) {
	withEpisodeWorkers(t, 8)
	const n = 100
	out := make([]int, n)
	forEachEpisode(n, func(i int) { out[i] = i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("slot %d holds %d, want %d", i, v, i*i)
		}
	}
}

func TestForEachEpisodePanicPropagation(t *testing.T) {
	withEpisodeWorkers(t, 4)
	ran := make([]atomic.Bool, 8)
	defer func() {
		v := recover()
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *WorkerPanic", v, v)
		}
		if wp.Index != 2 {
			t.Fatalf("WorkerPanic.Index = %d, want 2 (lowest panicking index)", wp.Index)
		}
		if !strings.Contains(fmt.Sprint(wp.Value), "episode 2 exploded") {
			t.Fatalf("WorkerPanic.Value = %v, want the original panic value", wp.Value)
		}
		if wp.Stack == "" {
			t.Fatal("WorkerPanic.Stack is empty")
		}
		// The panic must not have cancelled the other episodes: partial
		// results survive.
		for i := range ran {
			if i != 2 && !ran[i].Load() {
				t.Fatalf("episode %d never ran after episode 2 panicked", i)
			}
		}
	}()
	forEachEpisode(len(ran), func(i int) {
		if i == 2 {
			panic("episode 2 exploded")
		}
		ran[i].Store(true)
	})
	t.Fatal("forEachEpisode returned instead of re-panicking")
}

// TestRunPanicNamesExperiment: a panic inside an experiment surfaces on the
// caller's goroutine as a *WorkerPanic naming the experiment, after the
// surviving experiments finished — so boltbench's profile defers and
// buffered reports are not torn down by a bare worker-goroutine crash.
func TestRunPanicNamesExperiment(t *testing.T) {
	var survivors atomic.Int32
	exps := []Experiment{
		{ID: "ok-0", Title: "survives", Run: func(uint64) *Report {
			survivors.Add(1)
			return newReport("ok-0", "survives")
		}},
		{ID: "boom", Title: "panics", Run: func(uint64) *Report {
			panic("synthetic failure")
		}},
		{ID: "ok-1", Title: "survives", Run: func(uint64) *Report {
			survivors.Add(1)
			return newReport("ok-1", "survives")
		}},
	}
	defer func() {
		v := recover()
		wp, ok := v.(*WorkerPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want *WorkerPanic", v, v)
		}
		if wp.Label != "experiment boom" {
			t.Fatalf("WorkerPanic.Label = %q, want %q", wp.Label, "experiment boom")
		}
		if !strings.Contains(wp.Error(), "synthetic failure") {
			t.Fatalf("WorkerPanic.Error() = %q, missing original panic value", wp.Error())
		}
		if survivors.Load() != 2 {
			t.Fatalf("%d surviving experiments ran, want 2", survivors.Load())
		}
	}()
	Run(exps, 42, 3)
	t.Fatal("Run returned instead of re-panicking")
}

// TestSuiteParityAcrossEpisodeWorkers pins the tentpole determinism claim:
// the rendered output of the episode-pool experiments is md5-identical
// across every -parallel × -epworkers combination. The baseline is
// computed at runtime (parallel 1, epworkers 1 — the fully serial
// schedule), so the test survives intentional re-baselining of the golden
// numbers while still catching any schedule-dependent divergence.
func TestSuiteParityAcrossEpisodeWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the episode-pool experiments four times")
	}
	ids := []string{"table1", "confusion"}
	exps := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q not registered", id)
		}
		exps = append(exps, e)
	}
	render := func(parallel, epworkers int) (string, []byte) {
		SetEpisodeWorkers(epworkers)
		defer SetEpisodeWorkers(0)
		results := Run(exps, 42, parallel)
		var buf bytes.Buffer
		for _, r := range results {
			r.Report.Render(&buf)
		}
		return fmt.Sprintf("%x", md5.Sum(buf.Bytes())), buf.Bytes()
	}
	baseMD5, baseOut := render(1, 1)
	for _, parallel := range []int{1, 8} {
		for _, epworkers := range []int{1, 4} {
			if parallel == 1 && epworkers == 1 {
				continue
			}
			gotMD5, gotOut := render(parallel, epworkers)
			if gotMD5 != baseMD5 {
				t.Fatalf("suite md5 at parallel=%d epworkers=%d is %s, want %s (serial); diverges at %s",
					parallel, epworkers, gotMD5, baseMD5, firstDivergence(gotOut, baseOut))
			}
		}
	}
}
