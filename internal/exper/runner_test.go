package exper

import (
	"bytes"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"bolt/internal/core"
	"bolt/internal/workload"
)

// cheapSubset picks experiments that each finish in well under 100 ms so the
// determinism test can afford to run the suite twice.
func cheapSubset(t *testing.T) []Experiment {
	t.Helper()
	ids := []string{"fig4", "fig5", "fig11", "fig13", "isocost", "defence", "coresidency"}
	exps := make([]Experiment, 0, len(ids))
	for _, id := range ids {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %q missing from registry", id)
		}
		exps = append(exps, e)
	}
	return exps
}

func renderAll(results []RunResult) string {
	var buf bytes.Buffer
	for _, r := range results {
		fmt.Fprintf(&buf, "== %s: %s ==\n", r.Experiment.ID, r.Experiment.Title)
		r.Report.Render(&buf)
	}
	return buf.String()
}

// TestRunParallelMatchesSerial is the determinism guarantee: the rendered
// reports from a parallel run must be byte-identical to a serial run at the
// same seed.
func TestRunParallelMatchesSerial(t *testing.T) {
	exps := cheapSubset(t)
	serial := renderAll(Run(exps, 42, 1))
	parallel := renderAll(Run(exps, 42, 8))
	if serial != parallel {
		t.Fatalf("parallel run diverged from serial:\n--- serial ---\n%s\n--- parallel ---\n%s",
			serial, parallel)
	}
	if serial == "" {
		t.Fatal("rendered output is empty")
	}
}

// TestRunPreservesOrder: results come back in input order regardless of
// completion order.
func TestRunPreservesOrder(t *testing.T) {
	exps := cheapSubset(t)
	results := Run(exps, 7, 4)
	if len(results) != len(exps) {
		t.Fatalf("got %d results for %d experiments", len(results), len(exps))
	}
	for i, r := range results {
		if r.Experiment.ID != exps[i].ID {
			t.Fatalf("result %d is %q, want %q", i, r.Experiment.ID, exps[i].ID)
		}
		if r.Report == nil {
			t.Fatalf("result %d (%s) has no report", i, r.Experiment.ID)
		}
		if r.Report.ID != exps[i].ID {
			t.Fatalf("result %d report id %q, want %q", i, r.Report.ID, exps[i].ID)
		}
	}
}

func TestRunDegenerateInputs(t *testing.T) {
	if got := Run(nil, 42, 4); len(got) != 0 {
		t.Fatalf("empty experiment list returned %d results", len(got))
	}
	// parallel beyond the experiment count and parallel<=0 must both work.
	exps := cheapSubset(t)[:2]
	if got := Run(exps, 42, 64); len(got) != 2 {
		t.Fatalf("parallel>len returned %d results", len(got))
	}
	if got := Run(exps, 42, 0); len(got) != 2 {
		t.Fatalf("parallel=0 returned %d results", len(got))
	}
}

// TestRunSharesCachedDetector runs six concurrent experiments that each
// train on the standard catalog and checks they all received the same
// *core.Detector from the cache. Under -race this also exercises concurrent
// first-touch of the cache and concurrent reads of the shared detector.
func TestRunSharesCachedDetector(t *testing.T) {
	const n = 6
	var inFlight, peak atomic.Int32
	ptrs := make([]*core.Detector, n)
	exps := make([]Experiment, n)
	for i := range exps {
		i := i
		exps[i] = Experiment{
			ID:    fmt.Sprintf("probe-%d", i),
			Title: "cache probe",
			Run: func(seed uint64) *Report {
				cur := inFlight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				ptrs[i] = core.TrainCached(workload.TrainingSpecs(seed), core.Config{})
				// Hold the slot briefly so the workers genuinely overlap.
				time.Sleep(20 * time.Millisecond)
				inFlight.Add(-1)
				return newReport(fmt.Sprintf("probe-%d", i), "cache probe")
			},
		}
	}
	Run(exps, 42, n)
	for i := 1; i < n; i++ {
		if ptrs[i] != ptrs[0] {
			t.Fatalf("experiment %d trained its own detector", i)
		}
	}
	if ptrs[0] == nil {
		t.Fatal("no detector was trained")
	}
	if peak.Load() < 4 {
		t.Fatalf("peak concurrency %d, want >=4", peak.Load())
	}
}
