package cluster

import (
	"errors"
	"testing"

	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func mkVM(id string, vcpus int, spec workload.Spec, seed uint64) *sim.VM {
	app := workload.NewApp(spec, workload.Constant{Level: 1}, seed)
	return &sim.VM{ID: id, VCPUs: vcpus, App: app}
}

func TestNewCluster(t *testing.T) {
	c := New(5, sim.ServerConfig{}, LeastLoaded{})
	if len(c.Servers) != 5 {
		t.Fatalf("got %d servers, want 5", len(c.Servers))
	}
	names := map[string]bool{}
	for _, s := range c.Servers {
		names[s.Name()] = true
	}
	if len(names) != 5 {
		t.Fatal("server names not unique")
	}
}

func TestLeastLoadedSpreads(t *testing.T) {
	c := New(3, sim.ServerConfig{}, LeastLoaded{})
	rng := stats.NewRNG(1)
	specs := workload.VictimSpecs(1, 6)
	for i, spec := range specs {
		if _, err := c.Place(mkVM(spec.Label+string(rune('a'+i)), 4, spec, rng.Uint64()), 0); err != nil {
			t.Fatal(err)
		}
	}
	// 6 × 4 vCPUs over 3 × 16 vCPUs: least-loaded spreads 2 VMs per server.
	for _, s := range c.Servers {
		if got := len(s.VMs()); got != 2 {
			t.Fatalf("server %s has %d VMs, want 2", s.Name(), got)
		}
	}
}

func TestPlaceClusterFull(t *testing.T) {
	c := New(1, sim.ServerConfig{Cores: 2, ThreadsPerCore: 2}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	if _, err := c.Place(mkVM("a", 4, spec, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Place(mkVM("b", 1, spec, 2), 0); !errors.Is(err, ErrClusterFull) {
		t.Fatalf("want ErrClusterFull, got %v", err)
	}
}

func TestHostOf(t *testing.T) {
	c := New(2, sim.ServerConfig{}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	s, err := c.Place(mkVM("x", 2, spec, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.HostOf("x") != s {
		t.Fatal("HostOf returned wrong server")
	}
	if c.HostOf("nope") != nil {
		t.Fatal("HostOf for unknown VM should be nil")
	}
}

func TestMigrateMovesVM(t *testing.T) {
	c := New(2, sim.ServerConfig{}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	src, err := c.Place(mkVM("x", 2, spec, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := c.Migrate("x", 0)
	if err != nil {
		t.Fatal(err)
	}
	if dst == src {
		t.Fatal("migration must change host")
	}
	if c.HostOf("x") != dst {
		t.Fatal("VM not on destination after migration")
	}
	if src.Lookup("x") != nil {
		t.Fatal("VM still on source after migration")
	}
	if c.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", c.Migrations)
	}
}

func TestMigrateUnknownVM(t *testing.T) {
	c := New(2, sim.ServerConfig{}, LeastLoaded{})
	if _, err := c.Migrate("ghost", 0); err == nil {
		t.Fatal("migrating an unknown VM should fail")
	}
}

func TestMigrateNoDestination(t *testing.T) {
	c := New(1, sim.ServerConfig{}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	if _, err := c.Place(mkVM("x", 2, spec, 1), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Migrate("x", 0); !errors.Is(err, ErrClusterFull) {
		t.Fatalf("want ErrClusterFull, got %v", err)
	}
	if c.HostOf("x") == nil {
		t.Fatal("failed migration must not lose the VM")
	}
}

func TestQuasarAvoidsOverlap(t *testing.T) {
	c := New(2, sim.ServerConfig{}, Quasar{})
	// Server 0 gets a memory-bound app; an incoming memory-bound app should
	// land on server 1 even though both have space.
	memSpec := workload.Spark(stats.NewRNG(1), 0) // memory heavy
	if err := c.Servers[0].Place(mkVM("resident", 4, memSpec, 1)); err != nil {
		t.Fatal(err)
	}
	incoming := workload.Spark(stats.NewRNG(2), 1)
	s, err := c.Place(mkVM("incoming", 4, incoming, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != c.Servers[1] {
		t.Fatal("Quasar should avoid co-scheduling overlapping apps")
	}
}

func TestQuasarCoSchedulesDissimilar(t *testing.T) {
	c := New(2, sim.ServerConfig{}, Quasar{})
	// Server 0 hosts a disk-bound job, server 1 a memory-bound one. An
	// incoming memory-bound job overlaps far less with the disk-bound host.
	disk := workload.Hadoop(stats.NewRNG(1), 2) // sort: disk-bound
	if err := c.Servers[0].Place(mkVM("disk", 4, disk, 1)); err != nil {
		t.Fatal(err)
	}
	mem := workload.Spark(stats.NewRNG(2), 0) // kmeans: memory-bound
	if err := c.Servers[1].Place(mkVM("mem", 4, mem, 2)); err != nil {
		t.Fatal(err)
	}
	incoming := workload.Spark(stats.NewRNG(3), 1) // pagerank: memory-bound
	s, err := c.Place(mkVM("incoming", 4, incoming, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	if s != c.Servers[0] {
		t.Fatalf("memory-bound app should co-locate with the disk-bound job, got %s", s.Name())
	}
}

func TestMigrationPolicy(t *testing.T) {
	p := DefaultMigrationPolicy()
	if p.Threshold != 70 || p.OutageTicks != 80 {
		t.Fatalf("unexpected defaults: %+v", p)
	}
	s := sim.NewServer("s0", sim.ServerConfig{})
	var burn sim.Vector
	burn.Set(sim.CPU, 80)
	if err := s.Place(&sim.VM{ID: "hot", VCPUs: 4, App: constApp{burn}}); err != nil {
		t.Fatal(err)
	}
	if !p.ShouldMigrate(s, 0) {
		t.Fatal("80% CPU should trip the 70% threshold")
	}
}

type constApp struct{ d sim.Vector }

func (c constApp) Demand(sim.Tick) sim.Vector { return c.d }
func (c constApp) Sensitivity() sim.Vector    { return sim.Vector{} }

func TestUtilizationMetrics(t *testing.T) {
	c := New(2, sim.ServerConfig{}, LeastLoaded{})
	var burn sim.Vector
	burn.Set(sim.CPU, 50)
	if err := c.Servers[0].Place(&sim.VM{ID: "a", VCPUs: 8, App: constApp{burn}}); err != nil {
		t.Fatal(err)
	}
	if u := c.MeanUtilization(0); u != 25 {
		t.Fatalf("MeanUtilization = %v, want 25", u)
	}
	if u := c.VCPUUtilization(); u != 25 {
		t.Fatalf("VCPUUtilization = %v, want 25 (8 of 32)", u)
	}
}

func TestVMSpecNewVM(t *testing.T) {
	spec := workload.VictimSpecs(1, 1)[0]
	vs := VMSpec{ID: "v", VCPUs: 3, Spec: spec,
		App: workload.NewApp(spec, workload.Constant{Level: 1}, 1)}
	vm := vs.NewVM()
	if vm.ID != "v" || vm.VCPUs != 3 || vm.App == nil {
		t.Fatal("NewVM mapping wrong")
	}
}
