package cluster

import "bolt/internal/sim"

// PSSF is a co-residence-aware secure allocator in the spirit of the
// "previously-selected servers first" policy from the energy-efficient
// cloud defence literature: the fleet is partitioned into fixed server
// groups, every tenant is pinned to one group, and within the group a
// tenant's VMs land first on servers the tenant already occupies
// ("previously selected"), then on the candidate with the lowest
// co-residence exposure — the number of distinct *other* tenants the
// placement would put the VM next to.
//
// The security argument is structural: an attacker tenant is pinned to its
// own group, so no launch strategy — bulk, trickle, affinity steering —
// can reach a victim pinned to a different group. The cost is the one the
// defence papers accept: placement freedom (and with it some utilisation)
// is traded for a hard bound on which tenant pairs can ever share a host.
//
// PSSF ignores affinity hints entirely; it does not consult any
// co-location request channel, which is exactly what closes the
// Repttack-style steering surface.
type PSSF struct {
	// GroupSize is the number of consecutive servers per group; 0 means 16.
	GroupSize int
	// TenantOf maps a VM id to its owning tenant; nil means the id prefix
	// before the first '-' (the convention the experiments use: "victim-3"
	// belongs to tenant "victim").
	TenantOf func(vmID string) string

	groups map[string]int // tenant → assigned group index
	counts []int          // tenants assigned per group
}

// NewPSSF builds the scheduler. State (tenant→group pinning) accumulates
// across placements, so use a fresh PSSF per experiment run.
func NewPSSF(groupSize int) *PSSF {
	if groupSize <= 0 {
		groupSize = 16
	}
	return &PSSF{GroupSize: groupSize, groups: map[string]int{}}
}

// Name implements Scheduler.
func (p *PSSF) Name() string { return "pssf" }

// tenant resolves the owning tenant of a VM id.
func (p *PSSF) tenant(id string) string {
	if p.TenantOf != nil {
		return p.TenantOf(id)
	}
	for i := 0; i < len(id); i++ {
		if id[i] == '-' {
			return id[:i]
		}
	}
	return id
}

// groupOf returns the tenant's pinned group, assigning the least-populated
// group (ties to the lowest index) on first contact. Group count follows
// the current fleet size, so one PSSF value must only ever schedule for
// one cluster.
func (p *PSSF) groupOf(tenant string, nServers int) int {
	ngroups := (nServers + p.GroupSize - 1) / p.GroupSize
	if ngroups < 1 {
		ngroups = 1
	}
	if len(p.counts) < ngroups {
		p.counts = append(p.counts, make([]int, ngroups-len(p.counts))...)
	}
	if g, ok := p.groups[tenant]; ok {
		return g
	}
	best := 0
	for g := 1; g < ngroups; g++ {
		if p.counts[g] < p.counts[best] {
			best = g
		}
	}
	p.groups[tenant] = best
	p.counts[best]++
	return best
}

// exposure counts the distinct tenants other than `tenant` with a VM on s —
// the number of new co-residence pairs placing one of tenant's VMs there
// could create. Deterministic: VMs are visited in placement order and only
// the count is consumed.
func (p *PSSF) exposure(s *sim.Server, tenant string) int {
	seen := map[string]bool{}
	for _, vm := range s.VMs() {
		if o := p.tenant(vm.ID); o != tenant && !seen[o] {
			seen[o] = true
		}
	}
	return len(seen)
}

// occupied reports whether the tenant already has a VM on s (a
// "previously selected" server).
func (p *PSSF) occupied(s *sim.Server, tenant string) bool {
	for _, vm := range s.VMs() {
		if p.tenant(vm.ID) == tenant {
			return true
		}
	}
	return false
}

// Pick implements Scheduler. Candidate order: feasible previously-selected
// servers in the tenant's group, then any feasible server in the group,
// then — only when the whole group is infeasible — any feasible server
// fleet-wide (confinement yields to availability, not the other way
// around). Within each tier the winner minimises exposure, breaking ties
// by most free vCPUs, then lowest index.
func (p *PSSF) Pick(servers []*sim.Server, vm *sim.VM, _ sim.Tick) int {
	n := len(servers)
	if n == 0 {
		return -1
	}
	tenant := p.tenant(vm.ID)
	g := p.groupOf(tenant, n)
	lo := g * p.GroupSize
	hi := lo + p.GroupSize
	if hi > n {
		hi = n
	}

	pick := func(lo, hi int, require func(*sim.Server) bool) int {
		best, bestExp, bestFree := -1, 0, 0
		for i := lo; i < hi; i++ {
			s := servers[i]
			free := s.FreeVCPUs()
			if free < vm.VCPUs || (require != nil && !require(s)) {
				continue
			}
			exp := p.exposure(s, tenant)
			if best < 0 || exp < bestExp || (exp == bestExp && free > bestFree) {
				best, bestExp, bestFree = i, exp, free
			}
		}
		return best
	}

	if i := pick(lo, hi, func(s *sim.Server) bool { return p.occupied(s, tenant) }); i >= 0 {
		return i
	}
	if i := pick(lo, hi, nil); i >= 0 {
		return i
	}
	return pick(0, n, nil)
}
