package cluster

import (
	"bolt/internal/sim"
)

// Affinity is a Kubernetes-style affinity-honouring scheduler: tenants may
// attach labels to their VMs, and a VM may request co-location with a
// label, which the scheduler satisfies whenever any feasible host already
// runs a VM carrying it. This is the steering surface Repttack-style
// attacks exploit — an adversary who can name (or guess) a victim's label
// turns the scheduler itself into a co-location oracle, replacing the
// launch-and-pray placement race of the classic attacks.
//
// VMs with no affinity request fall through to the Fallback policy, so an
// Affinity cluster behaves exactly like its fallback for the background
// population.
type Affinity struct {
	// Fallback places VMs that carry no affinity request (nil means
	// LeastLoaded).
	Fallback Scheduler

	labels map[string]string // VM id → label the VM carries
	wants  map[string]string // VM id → label the VM asks to co-locate with
}

// NewAffinity builds an affinity scheduler over the given fallback.
func NewAffinity(fallback Scheduler) *Affinity {
	if fallback == nil {
		fallback = LeastLoaded{}
	}
	return &Affinity{
		Fallback: fallback,
		labels:   map[string]string{},
		wants:    map[string]string{},
	}
}

// Label attaches a label to the VM with the given id (the victim-side
// deployment metadata an attacker references).
func (a *Affinity) Label(vmID, label string) { a.labels[vmID] = label }

// Want records that the VM with the given id requests co-location with
// hosts running a VM carrying label (the attacker-side affinity rule).
func (a *Affinity) Want(vmID, label string) { a.wants[vmID] = label }

// Name implements Scheduler.
func (a *Affinity) Name() string { return "affinity" }

// Pick implements Scheduler: among feasible hosts already running a VM
// with the requested label, it picks the one with the most free compute
// (ties to the lowest index, mirroring LeastLoaded); with no request, or
// no feasible labelled host, it delegates to the fallback.
func (a *Affinity) Pick(servers []*sim.Server, vm *sim.VM, t sim.Tick) int {
	if want := a.wants[vm.ID]; want != "" {
		best, bestFree := -1, 0
		for i, s := range servers {
			free := s.FreeVCPUs()
			if free < vm.VCPUs || free <= bestFree {
				continue
			}
			if a.hostsLabel(s, want) {
				best, bestFree = i, free
			}
		}
		if best >= 0 {
			return best
		}
	}
	return a.Fallback.Pick(servers, vm, t)
}

// hostsLabel reports whether any VM on s carries the label. Map iteration
// order varies run to run, but only the existence of a match is consumed,
// so the scheduler's decisions stay deterministic.
func (a *Affinity) hostsLabel(s *sim.Server, label string) bool {
	for id, l := range a.labels {
		if l == label && s.Lookup(id) != nil {
			return true
		}
	}
	return false
}
