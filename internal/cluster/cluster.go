// Package cluster implements the cluster-management substrate of the
// evaluation: a fleet of simulated servers, the least-loaded scheduler the
// paper uses by default, a Quasar-like interference-aware scheduler
// (§3.4), and the utilisation-triggered live-migration defence of §5.1.
package cluster

import (
	"errors"
	"fmt"
	"sort"

	"bolt/internal/sim"
	"bolt/internal/workload"
)

// Scheduler picks a server for a VM.
type Scheduler interface {
	// Pick returns the index of the server to place the VM on, or -1 when
	// no server fits.
	Pick(servers []*sim.Server, vm *sim.VM, t sim.Tick) int
	// Name identifies the policy in reports.
	Name() string
}

// Cluster is a fleet of servers under one scheduler. It is not safe for
// concurrent use (fleet tick bodies must not place, migrate, or resolve
// hosts — cluster mutation happens between ticks).
type Cluster struct {
	Servers []*sim.Server
	Sched   Scheduler
	// Migrations counts live migrations performed.
	Migrations int

	// byVM maps VM id → hosting server, so HostOf is O(1) instead of a
	// scan over the whole fleet (it mirrors Server.Lookup one level up).
	// Experiments also place and remove VMs directly on servers, behind
	// the cluster's back, so every entry is a *hint*: HostOf verifies it
	// against the server's own VM table and falls back to a scan-and-
	// repair when it is stale.
	byVM map[string]*sim.Server
}

// ErrClusterFull is returned when no server can host a VM.
var ErrClusterFull = errors.New("cluster: no server with sufficient capacity")

// New builds a cluster of n identical servers.
func New(n int, cfg sim.ServerConfig, sched Scheduler) *Cluster {
	c := &Cluster{Sched: sched}
	for i := 0; i < n; i++ {
		c.Servers = append(c.Servers, sim.NewServer(fmt.Sprintf("server-%02d", i), cfg))
	}
	return c
}

// index returns the id→server hint map, allocating it on first use so
// zero-value and literal-constructed Clusters work too.
func (c *Cluster) index() map[string]*sim.Server {
	if c.byVM == nil {
		c.byVM = make(map[string]*sim.Server)
	}
	return c.byVM
}

// Place schedules the VM and returns the hosting server.
func (c *Cluster) Place(vm *sim.VM, t sim.Tick) (*sim.Server, error) {
	i := c.Sched.Pick(c.Servers, vm, t)
	if i < 0 {
		return nil, ErrClusterFull
	}
	if err := c.Servers[i].Place(vm); err != nil {
		return nil, err
	}
	c.index()[vm.ID] = c.Servers[i]
	return c.Servers[i], nil
}

// HostOf returns the server hosting the VM with the given ID, or nil. The
// indexed fast path answers in O(1); a stale or missing entry (a VM placed
// or removed directly on a server) falls back to the scan and repairs the
// index.
func (c *Cluster) HostOf(id string) *sim.Server {
	if s, ok := c.byVM[id]; ok && s.Lookup(id) != nil {
		return s
	}
	for _, s := range c.Servers {
		if s.Lookup(id) != nil {
			c.index()[id] = s
			return s
		}
	}
	delete(c.byVM, id)
	return nil
}

// Remove deletes the VM from whichever server hosts it and returns that
// server, or nil when the VM is unknown.
func (c *Cluster) Remove(id string) *sim.Server {
	s := c.HostOf(id)
	if s == nil {
		return nil
	}
	s.Remove(id)
	delete(c.byVM, id)
	return s
}

// Migrate moves a VM to the least-loaded other server (the DoS defence of
// §5.1: utilisation-triggered live migration). It returns the destination,
// or an error when the VM is unknown or nothing else fits.
func (c *Cluster) Migrate(id string, t sim.Tick) (*sim.Server, error) {
	src := c.HostOf(id)
	if src == nil {
		return nil, fmt.Errorf("cluster: unknown VM %q", id)
	}
	vm := src.Lookup(id)

	best, bestFree := -1, -1
	for i, s := range c.Servers {
		if s == src {
			continue
		}
		if free := s.FreeVCPUs(); free >= vm.VCPUs && free > bestFree {
			best, bestFree = i, free
		}
	}
	if best < 0 {
		return nil, ErrClusterFull
	}
	src.Remove(id)
	if err := c.Servers[best].Place(vm); err != nil {
		// Roll back so the VM is not lost. The index entry still points at
		// src, which the rollback makes true again.
		if rbErr := src.Place(vm); rbErr != nil {
			delete(c.byVM, id)
			return nil, fmt.Errorf("cluster: migration failed (%v) and rollback failed (%v)", err, rbErr)
		}
		return nil, err
	}
	c.index()[id] = c.Servers[best]
	c.Migrations++
	return c.Servers[best], nil
}

// MeanUtilization returns the average CPU utilisation across servers.
func (c *Cluster) MeanUtilization(t sim.Tick) float64 {
	if len(c.Servers) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range c.Servers {
		total += s.CPUUtilization(t)
	}
	return total / float64(len(c.Servers))
}

// VCPUUtilization returns the fraction of hyperthreads allocated, across
// the cluster, in percent — the provisioning-level utilisation §6 trades
// against security.
func (c *Cluster) VCPUUtilization() float64 {
	total, used := 0, 0
	for _, s := range c.Servers {
		total += s.TotalVCPUs()
		used += s.TotalVCPUs() - s.FreeVCPUs()
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(used) / float64(total)
}

// LeastLoaded is the paper's default scheduler: it places each VM on the
// machine with the most available compute (free hyperthreads), breaking
// ties by index. It is contention-oblivious.
type LeastLoaded struct{}

// Name implements Scheduler.
func (LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Scheduler.
func (LeastLoaded) Pick(servers []*sim.Server, vm *sim.VM, _ sim.Tick) int {
	best, bestFree := -1, 0
	for i, s := range servers {
		if free := s.FreeVCPUs(); free >= vm.VCPUs && free > bestFree {
			best, bestFree = i, free
		}
	}
	return best
}

// Quasar is an interference-aware scheduler in the spirit of Quasar
// (Delimitrou & Kozyrakis, ASPLOS'14): it estimates each candidate host's
// contention overlap with the incoming application's critical resources
// and picks the feasible host where the overlap is smallest, so jobs with
// different critical resources end up co-scheduled.
type Quasar struct{}

// Name implements Scheduler.
func (Quasar) Name() string { return "quasar" }

// Pick implements Scheduler.
func (Quasar) Pick(servers []*sim.Server, vm *sim.VM, t sim.Tick) int {
	type cand struct {
		idx     int
		overlap float64
		free    int
	}
	demand := vm.App.Demand(t)
	var cands []cand
	for i, s := range servers {
		if s.FreeVCPUs() < vm.VCPUs {
			continue
		}
		// Aggregate resource pressure already on the host, from the host's
		// per-tick demand snapshot.
		host := s.HostDemand(t)
		overlap := 0.0
		for _, r := range sim.AllResources() {
			overlap += demand.Get(r) * host.Get(r)
		}
		cands = append(cands, cand{i, overlap, s.FreeVCPUs()})
	}
	if len(cands) == 0 {
		return -1
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].overlap != cands[b].overlap {
			return cands[a].overlap < cands[b].overlap
		}
		if cands[a].free != cands[b].free {
			return cands[a].free > cands[b].free
		}
		return cands[a].idx < cands[b].idx
	})
	return cands[0].idx
}

// MigrationPolicy is the DoS defence: when a host's CPU utilisation
// exceeds Threshold, its most CPU-hungry victim VM is migrated to an
// unloaded host, with an outage of OutageTicks (the paper measures ~8 s).
type MigrationPolicy struct {
	Threshold   float64  // percent CPU; paper uses 70
	OutageTicks sim.Tick // migration blackout; paper observes 8 s
}

// DefaultMigrationPolicy mirrors the experimental setup of §5.1.
func DefaultMigrationPolicy() MigrationPolicy {
	return MigrationPolicy{Threshold: 70, OutageTicks: 8 * sim.TicksPerSecond}
}

// ShouldMigrate reports whether the host's utilisation at time t trips the
// policy.
func (p MigrationPolicy) ShouldMigrate(s *sim.Server, t sim.Tick) bool {
	return s.CPUUtilization(t) > p.Threshold
}

// VMSpec couples an application spec with a size, for driving cluster
// experiments.
type VMSpec struct {
	ID    string
	VCPUs int
	Spec  workload.Spec
	App   sim.Demander
}

// NewVM materialises the VMSpec into a placeable VM.
func (v VMSpec) NewVM() *sim.VM {
	return &sim.VM{ID: v.ID, VCPUs: v.VCPUs, App: v.App}
}
