package cluster

import (
	"errors"
	"fmt"
	"testing"

	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// schedulerTable enumerates every Scheduler implementation. Each entry
// builds a fresh value per run (Affinity, PSSF, and Bandit accumulate
// state), and optionally prepares a VM before placement (so Affinity has
// labels and wants to steer by).
var schedulerTable = []struct {
	name    string
	mk      func() Scheduler
	prepare func(sched Scheduler, vm *sim.VM, i int)
}{
	{"least-loaded", func() Scheduler { return LeastLoaded{} }, nil},
	{"quasar", func() Scheduler { return Quasar{} }, nil},
	{"affinity", func() Scheduler { return NewAffinity(LeastLoaded{}) },
		func(sched Scheduler, vm *sim.VM, i int) {
			// Alternate labelled services and placements wanting them, so
			// the affinity path (not just the fallback) is exercised.
			aff := sched.(*Affinity)
			if i%2 == 0 {
				aff.Label(vm.ID, fmt.Sprintf("svc=%d", i%4))
			} else {
				aff.Want(vm.ID, fmt.Sprintf("svc=%d", i%4))
			}
		}},
	{"pssf", func() Scheduler { return NewPSSF(4) }, nil},
	{"bandit-eps", func() Scheduler { return NewBandit(EpsilonGreedy, stats.NewRNG(7)) },
		func(sched Scheduler, vm *sim.VM, i int) {
			// Feed the reward stream so exploitation has estimates to rank.
			sched.(*Bandit).Observe(i%8, float64(i%10)/10)
		}},
	{"bandit-ucb", func() Scheduler { return NewBandit(UCB, stats.NewRNG(7)) },
		func(sched Scheduler, vm *sim.VM, i int) {
			sched.(*Bandit).Observe(i%8, float64(i%10)/10)
		}},
}

// checkNoOvercommit asserts no server allocated more vCPUs than it has.
func checkNoOvercommit(t *testing.T, c *Cluster) {
	t.Helper()
	for _, s := range c.Servers {
		if s.FreeVCPUs() < 0 {
			t.Fatalf("server %s overcommitted: FreeVCPUs = %d", s.Name(), s.FreeVCPUs())
		}
	}
}

// checkHostOfConsistent asserts that for every id in placed, HostOf returns
// the server that actually holds the VM (Lookup agrees), and that the
// cluster-wide VM population is exactly the placed set.
func checkHostOfConsistent(t *testing.T, c *Cluster, placed map[string]*sim.Server) {
	t.Helper()
	for id, want := range placed {
		got := c.HostOf(id)
		if got != want {
			t.Fatalf("HostOf(%q) = %v, want the server Place returned (%v)", id, got, want)
		}
		if got.Lookup(id) == nil {
			t.Fatalf("HostOf(%q) returned a server that does not hold the VM", id)
		}
	}
	total := 0
	for _, s := range c.Servers {
		total += s.VMCount()
	}
	if total != len(placed) {
		t.Fatalf("cluster holds %d VMs, want %d placed", total, len(placed))
	}
}

// TestSchedulerInvariants drives every scheduler through the same
// placement storm — more demand than the cluster has capacity — and checks
// the invariants every policy must uphold regardless of how it picks:
// capacity is never overcommitted, a successful Place is always visible
// and consistent through HostOf, failures leave no trace, and a removed VM
// can be re-placed (round-trip) without corrupting the index.
func TestSchedulerInvariants(t *testing.T) {
	for _, tc := range schedulerTable {
		t.Run(tc.name, func(t *testing.T) {
			sched := tc.mk()
			// 6 servers × 8 vCPUs = 48 vCPUs; the storm asks for ~72.
			c := New(6, sim.ServerConfig{Cores: 4, ThreadsPerCore: 2}, sched)
			rng := stats.NewRNG(11)
			specs := workload.VictimSpecs(3, 8)

			placed := map[string]*sim.Server{}
			var order []string
			fails := 0
			for i := 0; i < 36; i++ {
				vm := mkVM(fmt.Sprintf("vm-%d", i), 1+i%3, specs[i%len(specs)], rng.Uint64())
				if tc.prepare != nil {
					tc.prepare(sched, vm, i)
				}
				host, err := c.Place(vm, sim.Tick(i))
				if err != nil {
					if !errors.Is(err, ErrClusterFull) {
						t.Fatalf("Place(%q): unexpected error %v", vm.ID, err)
					}
					fails++
					if c.HostOf(vm.ID) != nil {
						t.Fatalf("failed Place(%q) left the VM visible via HostOf", vm.ID)
					}
					continue
				}
				placed[vm.ID] = host
				order = append(order, vm.ID)
				checkNoOvercommit(t, c)
			}
			if fails == 0 {
				t.Fatal("storm never filled the cluster; invariant checks under pressure did not run")
			}
			checkHostOfConsistent(t, c, placed)

			// Remove every other placed VM, then re-place it: the freed
			// capacity must accept it again and the index must follow.
			for i, id := range order {
				if i%2 != 0 {
					continue
				}
				host := placed[id]
				vm := host.Lookup(id)
				if got := c.Remove(id); got != host {
					t.Fatalf("Remove(%q) = %v, want its host %v", id, got, host)
				}
				if c.HostOf(id) != nil {
					t.Fatalf("HostOf(%q) non-nil after Remove", id)
				}
				delete(placed, id)
				newHost, err := c.Place(vm, sim.Tick(100+i))
				if err != nil {
					t.Fatalf("re-Place(%q) after Remove failed: %v", id, err)
				}
				placed[id] = newHost
				checkNoOvercommit(t, c)
			}
			checkHostOfConsistent(t, c, placed)
		})
	}
}

// TestSchedulerPickBounds checks Pick's contract directly: the returned
// index is in range and feasible, and -1 is returned exactly when no
// server can host the VM.
func TestSchedulerPickBounds(t *testing.T) {
	for _, tc := range schedulerTable {
		t.Run(tc.name, func(t *testing.T) {
			sched := tc.mk()
			c := New(3, sim.ServerConfig{Cores: 2, ThreadsPerCore: 2}, sched)
			spec := workload.VictimSpecs(5, 1)[0]

			vm := mkVM("fits", 2, spec, 1)
			if tc.prepare != nil {
				tc.prepare(sched, vm, 0)
			}
			i := sched.Pick(c.Servers, vm, 0)
			if i < 0 || i >= len(c.Servers) {
				t.Fatalf("Pick = %d out of range for a feasible VM", i)
			}
			if c.Servers[i].FreeVCPUs() < vm.VCPUs {
				t.Fatalf("Pick chose server %d without capacity", i)
			}

			huge := mkVM("huge", 99, spec, 2)
			if tc.prepare != nil {
				tc.prepare(sched, huge, 1)
			}
			if i := sched.Pick(c.Servers, huge, 0); i != -1 {
				t.Fatalf("Pick = %d for an infeasible VM, want -1", i)
			}
		})
	}
}
