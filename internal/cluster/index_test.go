package cluster

import (
	"errors"
	"fmt"
	"testing"

	"bolt/internal/sim"
	"bolt/internal/workload"
)

// TestClusterRemove pins the Remove contract: it resolves the host,
// deletes the VM, and leaves HostOf empty; unknown ids are a nil no-op.
func TestClusterRemove(t *testing.T) {
	c := New(2, sim.ServerConfig{}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	placed, err := c.Place(mkVM("x", 2, spec, 1), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Remove("x"); got != placed {
		t.Fatalf("Remove returned %v, want the hosting server", got)
	}
	if placed.Lookup("x") != nil {
		t.Fatal("VM still on host after Remove")
	}
	if c.HostOf("x") != nil {
		t.Fatal("HostOf should be nil after Remove")
	}
	if c.Remove("ghost") != nil {
		t.Fatal("removing an unknown VM should return nil")
	}
}

// TestReplacementAfterRemoval drives the full placement cycle on a tiny
// cluster: fill to ErrClusterFull, remove, and place again into the freed
// capacity.
func TestReplacementAfterRemoval(t *testing.T) {
	c := New(2, sim.ServerConfig{Cores: 2, ThreadsPerCore: 2}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	for i := 0; i < 2; i++ {
		if _, err := c.Place(mkVM(fmt.Sprintf("big-%d", i), 4, spec, uint64(i)), 0); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Place(mkVM("extra", 1, spec, 9), 0); !errors.Is(err, ErrClusterFull) {
		t.Fatalf("full cluster: want ErrClusterFull, got %v", err)
	}
	freed := c.Remove("big-0")
	if freed == nil {
		t.Fatal("Remove failed to find big-0")
	}
	s, err := c.Place(mkVM("extra", 1, spec, 9), 0)
	if err != nil {
		t.Fatalf("re-placement after removal failed: %v", err)
	}
	if s != freed {
		t.Fatalf("re-placement landed on %s, want the freed server %s", s.Name(), freed.Name())
	}
	if c.HostOf("extra") != s {
		t.Fatal("index out of date after re-placement")
	}
}

// TestMigrateClusterFullMultiServer pins the Migrate edge where other
// servers exist but none has the capacity: ErrClusterFull, the VM stays
// put, and HostOf still resolves it.
func TestMigrateClusterFullMultiServer(t *testing.T) {
	c := New(3, sim.ServerConfig{Cores: 2, ThreadsPerCore: 2}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	// Fill servers 1 and 2 so neither can take the 3-vCPU VM from server 0.
	if err := c.Servers[0].Place(mkVM("mover", 3, spec, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 3; i++ {
		if err := c.Servers[i].Place(mkVM(fmt.Sprintf("blk-%d", i), 2, spec, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Migrate("mover", 0); !errors.Is(err, ErrClusterFull) {
		t.Fatalf("want ErrClusterFull, got %v", err)
	}
	if c.HostOf("mover") != c.Servers[0] {
		t.Fatal("failed migration must leave the VM on its source host")
	}
}

// TestHostOfRepairsStaleIndex mutates servers directly — the pattern the
// attack experiments use — and checks that HostOf's verify-and-repair path
// still answers correctly from the stale hint.
func TestHostOfRepairsStaleIndex(t *testing.T) {
	c := New(2, sim.ServerConfig{}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	vm := mkVM("x", 2, spec, 1)
	src, err := c.Place(vm, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Move the VM behind the cluster's back.
	var dst *sim.Server
	for _, s := range c.Servers {
		if s != src {
			dst = s
		}
	}
	src.Remove("x")
	if err := dst.Place(vm); err != nil {
		t.Fatal(err)
	}
	if got := c.HostOf("x"); got != dst {
		t.Fatalf("HostOf returned %v after direct move, want the new host", got)
	}
	// The repaired entry must now serve the fast path; mutate again and
	// confirm the fallback still wins over the hint.
	dst.Remove("x")
	if c.HostOf("x") != nil {
		t.Fatal("HostOf should be nil after the VM is gone everywhere")
	}
}

// TestHostOfDirectPlacementNoIndex covers VMs that never went through
// Place at all (seeded directly on servers): the scan must find and index
// them.
func TestHostOfDirectPlacementNoIndex(t *testing.T) {
	c := New(3, sim.ServerConfig{}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	if err := c.Servers[2].Place(mkVM("direct", 2, spec, 1)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ { // second call exercises the indexed fast path
		if got := c.HostOf("direct"); got != c.Servers[2] {
			t.Fatalf("HostOf returned %v, want servers[2]", got)
		}
	}
}

// TestAffinitySteersToLabelledHost is the Repttack mechanic: a VM that
// wants a label lands with the VM carrying it, not on the emptiest host.
func TestAffinitySteersToLabelledHost(t *testing.T) {
	aff := NewAffinity(LeastLoaded{})
	c := New(4, sim.ServerConfig{}, aff)
	spec := workload.VictimSpecs(1, 1)[0]

	// The victim sits on a busier host than the rest of the fleet.
	if err := c.Servers[1].Place(mkVM("busy", 8, spec, 1)); err != nil {
		t.Fatal(err)
	}
	aff.Label("victim", "svc=db")
	if err := c.Servers[1].Place(mkVM("victim", 4, spec, 2)); err != nil {
		t.Fatal(err)
	}

	probe := mkVM("probe", 1, spec, 3)
	aff.Want("probe", "svc=db")
	host, err := c.Place(probe, 0)
	if err != nil {
		t.Fatal(err)
	}
	if host != c.Servers[1] {
		t.Fatalf("affinity placed the probe on %s, want the victim's host", host.Name())
	}
}

// TestAffinityFallsBack covers both fallback paths: a VM with no request
// behaves like the fallback scheduler, and a request nothing satisfies
// (label absent, or the labelled host is full) degrades to the fallback
// instead of failing.
func TestAffinityFallsBack(t *testing.T) {
	aff := NewAffinity(LeastLoaded{})
	c := New(2, sim.ServerConfig{}, aff)
	spec := workload.VictimSpecs(1, 1)[0]

	// No request: pure least-loaded behaviour.
	if err := c.Servers[0].Place(mkVM("filler", 4, spec, 1)); err != nil {
		t.Fatal(err)
	}
	host, err := c.Place(mkVM("plain", 2, spec, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if host != c.Servers[1] {
		t.Fatal("VM without affinity request should follow the fallback policy")
	}

	// Request for a label nobody carries: fallback.
	ghost := mkVM("ghost-want", 1, spec, 3)
	aff.Want("ghost-want", "svc=nowhere")
	if _, err := c.Place(ghost, 0); err != nil {
		t.Fatalf("unsatisfiable affinity should fall back, got %v", err)
	}

	// Labelled host too full to take the prober: fallback, not failure.
	aff.Label("victim", "svc=db")
	if err := c.Servers[0].Place(mkVM("victim", 10, spec, 4)); err != nil {
		t.Fatal(err)
	}
	big := mkVM("big-probe", 8, spec, 5)
	aff.Want("big-probe", "svc=db")
	host, err = c.Place(big, 0)
	if err != nil {
		t.Fatal(err)
	}
	if host != c.Servers[1] {
		t.Fatal("full labelled host should fall back to the least-loaded feasible host")
	}
}

// BenchmarkHostOf measures the indexed lookup against a fleet-sized
// cluster — the call fleet experiments make per ground-truth check.
func BenchmarkHostOf(b *testing.B) {
	c := New(1024, sim.ServerConfig{}, LeastLoaded{})
	spec := workload.VictimSpecs(1, 1)[0]
	if _, err := c.Place(mkVM("needle", 2, spec, 1), 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if c.HostOf("needle") == nil {
			b.Fatal("lost the needle")
		}
	}
}
