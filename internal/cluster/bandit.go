package cluster

import (
	"math"

	"bolt/internal/sim"
	"bolt/internal/stats"
)

// BanditMode selects the exploration strategy of the Bandit allocator.
type BanditMode int

const (
	// EpsilonGreedy explores a uniformly random feasible host with
	// probability Epsilon and otherwise exploits the lowest-leak host.
	EpsilonGreedy BanditMode = iota
	// UCB exploits a lower-confidence bound: hosts with few observations
	// get an optimism bonus, so under-sampled placements are tried without
	// any random draw at all.
	UCB
)

// Bandit is a multi-armed-bandit secure allocator (per the MAB VM
// allocation policy literature the ROADMAP cites): each server is an arm,
// and the reward signal is the leaked-signature mass the provider's own
// detection plane measures on that server — the very observable a
// co-residency attacker probes for. The allocator learns which hosts leak
// and steers new placements away from them, so a tenant that lights a host
// up on the detection plane (a heavily loaded victim — or an attacker
// running probe kernels) stops receiving new neighbours.
//
// Rewards arrive out of band: the defender calls Observe(server, leak)
// after each monitoring window with leak in [0, 1]. Pick minimises
// expected leak; Observe never examines who leaked, which keeps the policy
// honest — it needs no oracle knowledge of who is a victim.
//
// Determinism: the only randomness is the epsilon-greedy exploration draw,
// taken from the pre-split stats.RNG stream handed to NewBandit (the PR 6
// splitting discipline), and Pick runs on the caller's goroutine between
// fleet ticks — so placement decisions are byte-identical at every
// -epworkers and -shardworkers level.
type Bandit struct {
	// Mode selects epsilon-greedy or UCB arm selection.
	Mode BanditMode
	// Epsilon is the exploration probability for EpsilonGreedy; 0 means 0.1.
	Epsilon float64
	// Explore is the UCB optimism coefficient; 0 means 0.5 (leak rewards
	// are normalised to [0, 1], so 0.5 makes an unvisited arm beat any arm
	// with observed mean leak below ~0.5·√ln N).
	Explore float64

	rng   *stats.RNG
	n     []float64 // observations per server
	sum   []float64 // summed leak per server
	total float64   // total observations
}

// NewBandit builds the allocator over its own pre-split RNG stream. State
// (leak estimates) accumulates across placements; use a fresh Bandit per
// experiment run.
func NewBandit(mode BanditMode, rng *stats.RNG) *Bandit {
	return &Bandit{Mode: mode, rng: rng}
}

// Name implements Scheduler.
func (b *Bandit) Name() string {
	if b.Mode == UCB {
		return "bandit-ucb"
	}
	return "bandit-eps"
}

// grow sizes the per-arm tables to the fleet.
func (b *Bandit) grow(n int) {
	for len(b.n) < n {
		b.n = append(b.n, 0)
		b.sum = append(b.sum, 0)
	}
}

// Observe feeds one reward sample for a server: the leaked-signature mass
// the detection plane measured there over the last window, normalised to
// [0, 1]. Out-of-range samples are clamped; unknown server indexes are
// ignored.
func (b *Bandit) Observe(server int, leak float64) {
	if server < 0 {
		return
	}
	b.grow(server + 1)
	if leak < 0 {
		leak = 0
	}
	if leak > 1 {
		leak = 1
	}
	b.n[server]++
	b.sum[server] += leak
	b.total++
}

// MeanLeak returns the observed mean leak of a server (0 when unobserved),
// for reports and tests.
func (b *Bandit) MeanLeak(server int) float64 {
	if server < 0 || server >= len(b.n) || b.n[server] == 0 {
		return 0
	}
	return b.sum[server] / b.n[server]
}

// score is the quantity Pick minimises for one arm.
func (b *Bandit) score(i int) float64 {
	if i >= len(b.n) || b.n[i] == 0 {
		if b.Mode == UCB {
			// Unvisited arms get maximal optimism (lowest possible bound).
			return -math.MaxFloat64
		}
		return 0
	}
	mean := b.sum[i] / b.n[i]
	if b.Mode == UCB {
		c := b.Explore
		if c == 0 {
			c = 0.5
		}
		return mean - c*math.Sqrt(math.Log(b.total+1)/b.n[i])
	}
	return mean
}

// Pick implements Scheduler: among feasible hosts it minimises the leak
// score, breaking ties by most free vCPUs then lowest index (so a cold
// bandit behaves like LeastLoaded). EpsilonGreedy first draws one uniform
// variate: with probability Epsilon the placement explores a uniformly
// random feasible host instead.
func (b *Bandit) Pick(servers []*sim.Server, vm *sim.VM, _ sim.Tick) int {
	b.grow(len(servers))
	feasible := make([]int, 0, len(servers))
	for i, s := range servers {
		if s.FreeVCPUs() >= vm.VCPUs {
			feasible = append(feasible, i)
		}
	}
	if len(feasible) == 0 {
		return -1
	}
	if b.Mode == EpsilonGreedy {
		eps := b.Epsilon
		if eps == 0 {
			eps = 0.1
		}
		if b.rng.Float64() < eps {
			return feasible[b.rng.Intn(len(feasible))]
		}
	}
	best := feasible[0]
	bestScore, bestFree := b.score(best), servers[best].FreeVCPUs()
	for _, i := range feasible[1:] {
		sc, free := b.score(i), servers[i].FreeVCPUs()
		if sc < bestScore || (sc == bestScore && free > bestFree) {
			best, bestScore, bestFree = i, sc, free
		}
	}
	return best
}
