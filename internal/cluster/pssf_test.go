package cluster

import (
	"fmt"
	"testing"

	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// pssfPlace places n 1-vCPU VMs for the tenant and returns the hosting
// server indexes.
func pssfPlace(t *testing.T, c *Cluster, tenant string, n, from int) []int {
	t.Helper()
	spec := workload.VictimSpecs(9, 1)[0]
	idx := make(map[*sim.Server]int, len(c.Servers))
	for i, s := range c.Servers {
		idx[s] = i
	}
	var hosts []int
	for i := 0; i < n; i++ {
		host, err := c.Place(mkVM(fmt.Sprintf("%s-%d", tenant, from+i), 1, spec, uint64(from+i)), 0)
		if err != nil {
			t.Fatalf("placing %s-%d: %v", tenant, from+i, err)
		}
		hosts = append(hosts, idx[host])
	}
	return hosts
}

func TestPSSFConfinesTenantsToGroups(t *testing.T) {
	p := NewPSSF(4)
	c := New(12, sim.ServerConfig{}, p) // 3 groups of 4

	groupOf := func(server int) int { return server / 4 }
	aHosts := pssfPlace(t, c, "alice", 6, 0)
	bHosts := pssfPlace(t, c, "bob", 6, 100)

	ga, gb := groupOf(aHosts[0]), groupOf(bHosts[0])
	if ga == gb {
		t.Fatalf("distinct tenants pinned to the same group %d", ga)
	}
	for _, h := range aHosts {
		if groupOf(h) != ga {
			t.Fatalf("alice VM escaped group %d to server %d", ga, h)
		}
	}
	for _, h := range bHosts {
		if groupOf(h) != gb {
			t.Fatalf("bob VM escaped group %d to server %d", gb, h)
		}
	}
}

func TestPSSFPrefersPreviouslySelectedServers(t *testing.T) {
	p := NewPSSF(4)
	c := New(8, sim.ServerConfig{}, p)

	hosts := pssfPlace(t, c, "svc", 3, 0)
	first := hosts[0]
	for i, h := range hosts {
		if h != first {
			t.Fatalf("VM %d landed on server %d, want the previously-selected %d", i, h, first)
		}
	}
}

func TestPSSFSpillsOnlyWhenGroupFull(t *testing.T) {
	p := NewPSSF(1) // groups of one server: easy to fill
	c := New(2, sim.ServerConfig{Cores: 1, ThreadsPerCore: 2}, p)

	hosts := pssfPlace(t, c, "a", 3, 0)
	if hosts[0] != hosts[1] {
		t.Fatalf("second VM left a non-full group: %v", hosts)
	}
	// The group (2 vCPUs) is full after two placements; the third must
	// spill fleet-wide rather than fail.
	if hosts[2] == hosts[0] {
		t.Fatal("third VM placed on a full group server")
	}
}

func TestPSSFIgnoresAffinitySteering(t *testing.T) {
	// The Repttack steering surface: even when the attacker's VM would
	// benefit from co-location with the victim, PSSF's group pinning must
	// keep distinct tenants apart. (PSSF has no affinity channel at all;
	// this pins that an attacker-style launch pattern still cannot reach.)
	p := NewPSSF(4)
	c := New(8, sim.ServerConfig{}, p)

	vHosts := pssfPlace(t, c, "victim", 1, 0)
	for wave := 0; wave < 8; wave++ {
		aHosts := pssfPlace(t, c, "attacker", 1, 100+wave)
		if aHosts[0] == vHosts[0] {
			t.Fatalf("attacker wave %d reached the victim's server", wave)
		}
	}
}

func TestPSSFTenantOfOverride(t *testing.T) {
	p := NewPSSF(4)
	p.TenantOf = func(id string) string { return "everyone" }
	c := New(8, sim.ServerConfig{}, p)

	a := pssfPlace(t, c, "x", 1, 0)
	b := pssfPlace(t, c, "y", 1, 1)
	// Same tenant under the override → previously-selected-first applies
	// across what the default mapping would call different tenants.
	if a[0] != b[0] {
		t.Fatalf("override ignored: x on %d, y on %d", a[0], b[0])
	}
}

func TestBanditColdActsLikeLeastLoaded(t *testing.T) {
	// With no observations every arm scores equally, so the tie-break
	// (most free vCPUs, lowest index) is exactly LeastLoaded.
	b := NewBandit(UCB, stats.NewRNG(1)) // UCB: no exploration draw at all
	c := New(3, sim.ServerConfig{}, b)
	spec := workload.VictimSpecs(9, 1)[0]

	// UCB's unvisited-arm optimism ties all arms; loading server 0 must
	// push the next placement elsewhere.
	if _, err := c.Place(mkVM("warm-0", 8, spec, 1), 0); err != nil {
		t.Fatal(err)
	}
	host, err := c.Place(mkVM("next", 1, spec, 2), 0)
	if err != nil {
		t.Fatal(err)
	}
	if host == c.Servers[0] {
		t.Fatal("cold bandit stacked the loaded server instead of spreading")
	}
}

func TestBanditSteersAwayFromLeakyHosts(t *testing.T) {
	b := NewBandit(UCB, stats.NewRNG(1))
	c := New(4, sim.ServerConfig{}, b)
	spec := workload.VictimSpecs(9, 1)[0]

	// The detection plane reports server 0 leaking hard, the rest quiet.
	// Several samples per arm so UCB's optimism bonus cannot outweigh the
	// observed means.
	for round := 0; round < 10; round++ {
		b.Observe(0, 1.0)
		for s := 1; s < 4; s++ {
			b.Observe(s, 0.05)
		}
	}
	for i := 0; i < 6; i++ {
		host, err := c.Place(mkVM(fmt.Sprintf("vm-%d", i), 1, spec, uint64(i)), 0)
		if err != nil {
			t.Fatal(err)
		}
		if host == c.Servers[0] {
			t.Fatalf("placement %d landed on the leaky server", i)
		}
	}
}

func TestBanditObserveClampsAndIgnoresBadInput(t *testing.T) {
	b := NewBandit(EpsilonGreedy, stats.NewRNG(1))
	b.Observe(-1, 0.5) // ignored
	b.Observe(2, -3)   // clamped to 0
	b.Observe(2, 7)    // clamped to 1
	if got := b.MeanLeak(2); got != 0.5 {
		t.Fatalf("MeanLeak(2) = %g, want 0.5 from clamped {0, 1}", got)
	}
	if got := b.MeanLeak(-1); got != 0 {
		t.Fatalf("MeanLeak(-1) = %g, want 0", got)
	}
	if got := b.MeanLeak(99); got != 0 {
		t.Fatalf("MeanLeak(unobserved) = %g, want 0", got)
	}
}

func TestBanditEpsilonGreedyExplores(t *testing.T) {
	// With Epsilon = 1 every placement explores; over many draws from the
	// deterministic stream all feasible hosts should be hit even though
	// server 0 is the exploit choice.
	b := NewBandit(EpsilonGreedy, stats.NewRNG(3))
	b.Epsilon = 1
	c := New(4, sim.ServerConfig{}, b)
	hit := map[int]bool{}
	vm := &sim.VM{ID: "probe", VCPUs: 1}
	for i := 0; i < 64; i++ {
		hit[b.Pick(c.Servers, vm, 0)] = true
	}
	if len(hit) != 4 {
		t.Fatalf("pure exploration hit %d of 4 servers", len(hit))
	}
}

func TestBanditDeterministicPerStream(t *testing.T) {
	run := func() []int {
		b := NewBandit(EpsilonGreedy, stats.NewRNG(42))
		c := New(4, sim.ServerConfig{}, b)
		vm := &sim.VM{ID: "probe", VCPUs: 1}
		var picks []int
		for i := 0; i < 32; i++ {
			b.Observe(i%4, float64(i%5)/5)
			picks = append(picks, b.Pick(c.Servers, vm, 0))
		}
		return picks
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatalf("pick %d differs across identical streams: %d vs %d", i, a[i], bb[i])
		}
	}
}
