package cluster

import (
	"fmt"
	"testing"
	"testing/quick"

	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// TestPropPlacementConservesVMs: every successfully placed VM stays
// findable, and after arbitrary migrations the population is unchanged.
func TestPropPlacementConservesVMs(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		c := New(3+rng.Intn(4), sim.ServerConfig{}, LeastLoaded{})
		placed := map[string]bool{}
		for i := 0; i < 12; i++ {
			spec := workload.VictimSpecs(seed, 12)[i]
			vm := mkVM(fmt.Sprintf("vm-%d", i), 1+rng.Intn(6), spec, rng.Uint64())
			if _, err := c.Place(vm, 0); err == nil {
				placed[vm.ID] = true
			}
		}
		// Random migrations.
		for id := range placed {
			if rng.Bool(0.5) {
				c.Migrate(id, 0) // failure is fine; the VM must survive
			}
		}
		for id := range placed {
			if c.HostOf(id) == nil {
				return false
			}
		}
		// No VM may appear on two servers.
		count := map[string]int{}
		for _, s := range c.Servers {
			for _, vm := range s.VMs() {
				count[vm.ID]++
			}
		}
		for id, n := range count {
			if n != 1 {
				t.Logf("VM %s appears %d times", id, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMigrateRollbackOnFullDestination(t *testing.T) {
	// Destination exists but is too small for the VM: migration must fail
	// and the VM must remain on its source, intact.
	c := &Cluster{Sched: LeastLoaded{}}
	big := sim.NewServer("big", sim.ServerConfig{Cores: 8, ThreadsPerCore: 2})
	small := sim.NewServer("small", sim.ServerConfig{Cores: 1, ThreadsPerCore: 2})
	c.Servers = []*sim.Server{big, small}

	spec := workload.VictimSpecs(1, 1)[0]
	vm := mkVM("wide", 6, spec, 1)
	if err := big.Place(vm); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Migrate("wide", 0); err == nil {
		t.Fatal("migration into a too-small cluster should fail")
	}
	if c.HostOf("wide") != big {
		t.Fatal("failed migration must leave the VM on its source")
	}
	if c.Migrations != 0 {
		t.Fatal("failed migration must not count")
	}
}

func TestMigrateRollbackKeepsIndexConsistent(t *testing.T) {
	// The harder edge: the destination passes the capacity check but
	// rejects the VM at placement time (here: it already carries a VM with
	// the same id, placed directly on the server the way campaign
	// background tenants are). Migrate must roll the VM back onto its
	// source with the id→host index still answering correctly.
	c := &Cluster{Sched: LeastLoaded{}}
	src := sim.NewServer("src", sim.ServerConfig{Cores: 2, ThreadsPerCore: 2})
	dst := sim.NewServer("dst", sim.ServerConfig{Cores: 8, ThreadsPerCore: 2})
	c.Servers = []*sim.Server{src, dst}

	spec := workload.VictimSpecs(1, 1)[0]
	if err := dst.Place(mkVM("victim", 1, spec, 7)); err != nil {
		t.Fatal(err)
	}
	vm := mkVM("victim", 2, spec, 1)
	if err := src.Place(vm); err != nil {
		t.Fatal(err)
	}
	c.index()["victim"] = src // the cluster-managed instance lives on src

	if _, err := c.Migrate("victim", 0); err == nil {
		t.Fatal("migration into a rejecting destination should fail")
	}
	if c.HostOf("victim") != src {
		t.Fatal("rollback must leave the index pointing at the source")
	}
	if src.Lookup("victim") == nil {
		t.Fatal("rollback must leave the VM on its source")
	}
	if got := src.Lookup("victim"); got != vm {
		t.Fatalf("source holds %v, want the original VM", got)
	}
	if c.Migrations != 0 {
		t.Fatal("failed migration must not count")
	}
	// The cluster stays fully usable: the VM can still be removed and
	// re-placed through the normal path (once the decoy id is gone).
	if got := c.Remove("victim"); got != src {
		t.Fatalf("Remove after failed migration returned %v, want src", got)
	}
	dst.Remove("victim")
	if _, err := c.Place(vm, 0); err != nil {
		t.Fatalf("re-Place after failed migration: %v", err)
	}
}

func TestMigrationPreservesSlotsShape(t *testing.T) {
	c := New(2, sim.ServerConfig{}, LeastLoaded{})
	spec := workload.VictimSpecs(2, 1)[0]
	vm := mkVM("x", 5, spec, 1)
	if _, err := c.Place(vm, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Migrate("x", 0); err != nil {
		t.Fatal(err)
	}
	if got := len(vm.Slots()); got != 5 {
		t.Fatalf("VM has %d slots after migration, want 5", got)
	}
}

func TestQuasarFallsBackWhenAllOverlap(t *testing.T) {
	// Every host carries the same workload; Quasar must still place (it
	// minimises, not vetoes).
	c := New(2, sim.ServerConfig{}, Quasar{})
	spec := workload.Spark(stats.NewRNG(1), 0)
	for i, s := range c.Servers {
		if err := s.Place(mkVM(fmt.Sprintf("r%d", i), 4, spec, uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Place(mkVM("incoming", 4, spec, 9), 0); err != nil {
		t.Fatalf("Quasar should place despite universal overlap: %v", err)
	}
}

func TestSchedulersRejectOversizedVM(t *testing.T) {
	for _, sched := range []Scheduler{LeastLoaded{}, Quasar{}} {
		c := New(2, sim.ServerConfig{Cores: 2, ThreadsPerCore: 2}, sched)
		spec := workload.VictimSpecs(3, 1)[0]
		if _, err := c.Place(mkVM("huge", 9, spec, 1), 0); err == nil {
			t.Fatalf("%s placed a VM larger than any host", sched.Name())
		}
	}
}
