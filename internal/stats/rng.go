// Package stats provides the deterministic random number generator and
// descriptive statistics used throughout the Bolt reproduction.
//
// Every experiment in the repository is seeded, so results are exactly
// reproducible run to run. The generator is a splitmix64 core feeding a
// xoshiro256** state, both public-domain algorithms, implemented here so the
// repository depends only on the standard library and produces identical
// streams on every platform.
package stats

import (
	"math"
	"math/bits"
)

// RNG is a deterministic pseudo-random number generator. The zero value is
// not ready for use; construct one with NewRNG. RNG is not safe for
// concurrent use; derive per-goroutine generators with Split.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via splitmix64, so that nearby
// seeds still produce uncorrelated streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split derives an independent generator from r, advancing r once. Use it to
// hand uncorrelated streams to sub-components without sharing state.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// SplitN derives n independent generators from r by calling Split n times,
// advancing r exactly n draws. It is the pre-split step of the repository's
// parallelism discipline: a caller about to fan work out over a pool splits
// one stream per unit *serially, in unit order, up front*, then hands
// stream i to unit i — so the streams each unit consumes are identical at
// every worker count and the merged output stays byte-identical.
func (r *RNG) SplitN(n int) []*RNG {
	out := make([]*RNG, n)
	for i := range out {
		out[i] = r.Split()
	}
	return out
}

// Uint64 returns the next 64 uniformly random bits (xoshiro256**).
//
//bolt:hotpath
func (r *RNG) Uint64() uint64 {
	rotl := func(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
//
//bolt:hotpath
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
//
// Sampling uses Lemire's nearly-divisionless rejection method rather than
// Uint64() % n: the modulo maps 2^64 inputs onto n buckets, so unless n
// divides 2^64 the low (2^64 mod n) values occur once more often than the
// rest — a bias that, while tiny for small n, systematically skews every
// permutation, weighted choice, and placement decision built on top of it.
//
//bolt:hotpath
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	un := uint64(n)
	hi, lo := bits.Mul64(r.Uint64(), un)
	if lo < un {
		// Reject the first (2^64 mod n) values of lo so every bucket of hi
		// receives exactly the same number of inputs.
		thresh := -un % un
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), un)
		}
	}
	return int(hi)
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a normally distributed value with the given mean and standard
// deviation, using the Box-Muller transform.
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return mean + stddev*math.Sqrt(-2*math.Log(u1))*math.Cos(2*math.Pi*u2)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	r.PermInto(p)
	return p
}

// PermInto fills p with a random permutation of [0, len(p)) in place. It
// resets p to the identity before shuffling, so the result — and the random
// stream consumed — are exactly those of Perm(len(p)); callers on a hot path
// reuse one buffer across calls without changing any downstream values.
//
//bolt:hotpath
func (r *RNG) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Choose returns a uniformly random index weighted by the non-negative
// weights. If all weights are zero it returns a uniform index. It panics on
// an empty slice.
func (r *RNG) Choose(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: Choose with empty weights")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
