package stats

import "testing"

// TestIntnGoldenStream pins the deterministic Intn sequence produced by the
// Lemire rejection sampler. Every experiment derives placements, workload
// parameters, and permutations from this stream, so an accidental change to
// the sampling algorithm (or to the xoshiro core beneath it) would silently
// invalidate all recorded results; this test turns that into a loud failure.
func TestIntnGoldenStream(t *testing.T) {
	r := NewRNG(42)
	want10 := []int{0, 3, 6, 9, 9, 7, 7, 8, 7, 5, 6, 2}
	for i, w := range want10 {
		if got := r.Intn(10); got != w {
			t.Fatalf("Intn(10) stream diverged at step %d: got %d, want %d", i, got, w)
		}
	}
	r = NewRNG(42)
	wantBig := []int{83863, 378981, 680045, 924695, 991806, 769741, 719260, 850010}
	for i, w := range wantBig {
		if got := r.Intn(1000003); got != w {
			t.Fatalf("Intn(1000003) stream diverged at step %d: got %d, want %d", i, got, w)
		}
	}
	wantPerm := []int{6, 0, 2, 3, 4, 7, 1, 5}
	for i, v := range NewRNG(7).Perm(8) {
		if v != wantPerm[i] {
			t.Fatalf("Perm(8) diverged at index %d: got %d, want %d", i, v, wantPerm[i])
		}
	}
}

// TestIntnUniformChiSquared checks that Intn's bucket counts pass a
// chi-squared goodness-of-fit test. The old modulo construction concentrated
// its (admittedly tiny) bias on the low buckets; rejection sampling should
// leave the statistic comfortably inside the distribution's bulk.
func TestIntnUniformChiSquared(t *testing.T) {
	const (
		n       = 13 // does not divide 2^64, so modulo would be biased
		samples = 130000
	)
	r := NewRNG(99)
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[r.Intn(n)]++
	}
	expected := float64(samples) / float64(n)
	chi2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// 12 degrees of freedom: P(chi2 > 32.9) ≈ 0.001. A uniform sampler
	// lands well below this; a broken one shoots far past it.
	if chi2 > 32.9 {
		t.Fatalf("chi-squared statistic %.1f too large for uniform Intn(%d)", chi2, n)
	}
}

// TestIntnFullRangeBuckets drives Intn with a bound just below 2^63, where
// the rejection threshold is enormous and the old modulo bias would have
// been a factor-of-two skew toward the low half.
func TestIntnFullRangeBuckets(t *testing.T) {
	const n = 1<<62 + 1<<61 // 3 * 2^61: ~27% of draws rejected by modulo-free sampling
	r := NewRNG(5)
	low := 0
	const samples = 4000
	for i := 0; i < samples; i++ {
		if r.Intn(n) < n/2 {
			low++
		}
	}
	// A fair split is ~50%; the modulo construction would have produced
	// ~67% low. Allow a generous statistical margin around fair.
	if frac := float64(low) / samples; frac < 0.45 || frac > 0.55 {
		t.Fatalf("low-half fraction %.3f, want ~0.5 (modulo bias would give ~0.67)", frac)
	}
}

// TestPermIntoMatchesPerm pins the refactoring contract of the reusable
// permutation buffer: PermInto must consume exactly the random stream Perm
// consumed and produce the identical permutation, regardless of what the
// buffer held before — the training loop reuses one buffer across epochs
// and its factors must not move by a bit.
func TestPermIntoMatchesPerm(t *testing.T) {
	for _, n := range []int{0, 1, 2, 7, 64, 321} {
		a, b := NewRNG(99), NewRNG(99)
		buf := make([]int, n)
		for i := range buf {
			buf[i] = -1 // stale garbage from a previous "epoch"
		}
		for epoch := 0; epoch < 3; epoch++ {
			want := a.Perm(n)
			b.PermInto(buf)
			for i := range want {
				if buf[i] != want[i] {
					t.Fatalf("n=%d epoch=%d index %d: PermInto=%d, Perm=%d",
						n, epoch, i, buf[i], want[i])
				}
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("n=%d epoch=%d: streams diverged after permutation", n, epoch)
			}
		}
	}
}

// TestSplitNMatchesSerialSplits pins SplitN's contract: it is exactly n
// serial Split calls, so converting a fan-out site from a split loop to
// SplitN cannot move any downstream stream.
func TestSplitNMatchesSerialSplits(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	streams := a.SplitN(5)
	for i := 0; i < 5; i++ {
		want := b.Split()
		if *streams[i] != *want {
			t.Fatalf("SplitN stream %d differs from the %d-th serial Split", i, i)
		}
	}
	// The parents advanced identically too.
	if a.Uint64() != b.Uint64() {
		t.Fatal("SplitN advanced the parent differently from n serial Splits")
	}
	if got := NewRNG(7).SplitN(0); len(got) != 0 {
		t.Fatalf("SplitN(0) returned %d streams, want 0", len(got))
	}
}
