package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Percentile returns the p-th percentile (0-100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside the
// range clamp into the first or last bin. The zero value is not usable;
// construct with NewHistogram.
type Histogram struct {
	Lo, Hi float64
	Counts []int
	total  int
}

// NewHistogram returns a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Counts)))
	if i < 0 {
		i = 0
	}
	if i >= len(h.Counts) {
		i = len(h.Counts) - 1
	}
	h.Counts[i]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int { return h.total }

// PDF returns each bin's share of the total observations, in percent.
// An empty histogram yields all zeros.
func (h *Histogram) PDF() []float64 {
	pdf := make([]float64, len(h.Counts))
	if h.total == 0 {
		return pdf
	}
	for i, c := range h.Counts {
		pdf[i] = 100 * float64(c) / float64(h.total)
	}
	return pdf
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}

// Counter tallies occurrences of string keys, used for building categorical
// PDFs (e.g. iterations-until-detection, app-type distributions).
type Counter struct {
	counts map[string]int
	total  int
}

// NewCounter returns an empty counter.
func NewCounter() *Counter {
	return &Counter{counts: make(map[string]int)}
}

// Add increments key by one.
func (c *Counter) Add(key string) { c.AddN(key, 1) }

// AddN increments key by n.
func (c *Counter) AddN(key string, n int) {
	c.counts[key] += n
	c.total += n
}

// Count returns the tally for key.
func (c *Counter) Count(key string) int { return c.counts[key] }

// Total returns the sum of all tallies.
func (c *Counter) Total() int { return c.total }

// Share returns key's fraction of the total in percent.
func (c *Counter) Share(key string) float64 {
	if c.total == 0 {
		return 0
	}
	return 100 * float64(c.counts[key]) / float64(c.total)
}

// Keys returns all keys in sorted order.
func (c *Counter) Keys() []string {
	keys := make([]string, 0, len(c.counts))
	for k := range c.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
