package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent seeds collided %d/100 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGFloat64Uniform(t *testing.T) {
	r := NewRNG(9)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %v too far from 0.5", mean)
	}
}

func TestRNGNorm(t *testing.T) {
	r := NewRNG(11)
	n := 100000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.Norm(10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.05 {
		t.Fatalf("normal mean %v, want ~10", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.05 {
		t.Fatalf("normal stddev %v, want ~2", s)
	}
}

func TestRNGExp(t *testing.T) {
	r := NewRNG(13)
	n := 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		x := r.Exp(5)
		if x < 0 {
			t.Fatalf("Exp returned negative %v", x)
		}
		sum += x
	}
	if m := sum / float64(n); math.Abs(m-5) > 0.1 {
		t.Fatalf("exponential mean %v, want ~5", m)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(17)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(19)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGChooseWeighted(t *testing.T) {
	r := NewRNG(23)
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[r.Choose([]float64{1, 2, 7})]++
	}
	// Expect roughly 10% / 20% / 70%.
	if f := float64(counts[2]) / 30000; math.Abs(f-0.7) > 0.02 {
		t.Fatalf("weight-7 index chosen %v of the time, want ~0.7", f)
	}
}

func TestRNGChooseAllZero(t *testing.T) {
	r := NewRNG(29)
	seen := make(map[int]bool)
	for i := 0; i < 100; i++ {
		seen[r.Choose([]float64{0, 0, 0})] = true
	}
	if len(seen) != 3 {
		t.Fatalf("zero-weight Choose not uniform: saw %d indices", len(seen))
	}
}

func TestRNGSplitIndependent(t *testing.T) {
	r := NewRNG(31)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split generators produced identical first values")
	}
}

func TestMeanStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if s := StdDev(xs); s != 2 {
		t.Fatalf("StdDev = %v, want 2", s)
	}
}

func TestMeanEmpty(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Fatal("empty-slice statistics should be zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileOrderInvariant(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p50 := Percentile(xs, 50)
		rev := make([]float64, len(xs))
		for i, v := range xs {
			rev[len(xs)-1-i] = v
		}
		return Percentile(rev, 50) == p50
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPercentileMonotone(t *testing.T) {
	r := NewRNG(37)
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	prev := math.Inf(-1)
	for p := 0.0; p <= 100; p += 5 {
		v := Percentile(xs, p)
		if v < prev {
			t.Fatalf("percentile not monotone at p=%v: %v < %v", p, v, prev)
		}
		prev = v
	}
}

func TestClamp(t *testing.T) {
	if Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 || Clamp(5, 0, 10) != 5 {
		t.Fatal("Clamp misbehaved")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatal("Min/Max misbehaved")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max should be infinities")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	for i, c := range h.Counts {
		if c != 10 {
			t.Fatalf("bin %d count %d, want 10", i, c)
		}
	}
	pdf := h.PDF()
	for _, p := range pdf {
		if math.Abs(p-10) > 1e-9 {
			t.Fatalf("pdf bin %v, want 10%%", p)
		}
	}
}

func TestHistogramClamps(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(-100)
	h.Add(100)
	if h.Counts[0] != 1 || h.Counts[4] != 1 {
		t.Fatalf("out-of-range values did not clamp: %v", h.Counts)
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	if c := h.BinCenter(0); c != 5 {
		t.Fatalf("BinCenter(0) = %v, want 5", c)
	}
	if c := h.BinCenter(9); c != 95 {
		t.Fatalf("BinCenter(9) = %v, want 95", c)
	}
}

func TestHistogramEmptyPDF(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	for _, p := range h.PDF() {
		if p != 0 {
			t.Fatal("empty histogram PDF should be zero")
		}
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add("a")
	c.Add("a")
	c.AddN("b", 3)
	if c.Count("a") != 2 || c.Count("b") != 3 || c.Total() != 5 {
		t.Fatal("Counter tallies wrong")
	}
	if s := c.Share("a"); math.Abs(s-40) > 1e-9 {
		t.Fatalf("Share(a) = %v, want 40", s)
	}
	keys := c.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestCounterEmptyShare(t *testing.T) {
	if NewCounter().Share("x") != 0 {
		t.Fatal("empty counter share should be 0")
	}
}
