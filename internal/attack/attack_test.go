package attack

import (
	"math"
	"testing"

	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/latency"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func detector(t *testing.T) *core.Detector {
	t.Helper()
	return core.Train(workload.TrainingSpecs(100), core.Config{})
}

func TestPlanDoSTargetsCriticalResources(t *testing.T) {
	d := detector(t)
	rng := stats.NewRNG(1)
	spec := workload.Memcached(rng, 1)
	spec.Jitter = 0
	s := sim.NewServer("s0", sim.ServerConfig{})
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	if err := s.Place(&sim.VM{ID: "v", VCPUs: 3, App: app}); err != nil {
		t.Fatal(err)
	}
	adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	det := d.Detect(s, adv, 0, 1)
	plan := PlanDoS(det, 2)
	if len(plan.Targets) != 2 {
		t.Fatalf("plan has %d targets, want 2", len(plan.Targets))
	}
	for _, r := range plan.Targets {
		if plan.Intensity.Get(r) <= 0 {
			t.Fatalf("target %v has no intensity", r)
		}
		if plan.Intensity.Get(r) > 95 {
			t.Fatalf("intensity on %v exceeds the 95 cap", r)
		}
	}
	// Memcached's criticals are caches/network — a good plan keeps CPU low.
	if plan.AdversaryCPU() > 50 {
		t.Fatalf("targeted plan burns %v%% CPU; should stay low", plan.AdversaryCPU())
	}
}

func TestNaiveDoSPlan(t *testing.T) {
	plan := NaiveDoSPlan()
	if plan.AdversaryCPU() < 90 {
		t.Fatal("naive plan must saturate CPU")
	}
	if len(plan.Targets) != 1 || plan.Targets[0] != sim.CPU {
		t.Fatal("naive plan targets CPU only")
	}
}

func TestLaunchAndStop(t *testing.T) {
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(2))
	var plan DoSPlan
	plan.Intensity.Set(sim.LLC, 80)
	plan.Targets = []sim.Resource{sim.LLC}
	Launch(adv, plan)
	if adv.Kernels.Get(sim.LLC) != 80 {
		t.Fatal("Launch did not apply the plan")
	}
	Stop(adv)
	if adv.Kernels.Get(sim.LLC) != 0 {
		t.Fatal("Stop did not idle the kernels")
	}
}

func TestDoSDegradesVictimTail(t *testing.T) {
	d := detector(t)
	rng := stats.NewRNG(3)
	spec := workload.Memcached(rng, 1)
	spec.Jitter = 0
	s := sim.NewServer("s0", sim.ServerConfig{})
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	vm := &sim.VM{ID: "v", VCPUs: 3, App: app}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	svc := &latency.Service{VM: vm, Pattern: workload.Constant{Level: 1}}

	det := d.Detect(s, adv, 0, 1)
	Launch(adv, PlanDoS(det, 2))
	f := svc.DegradationFactor(s, 1000)
	Stop(adv)
	if f < 5 {
		t.Fatalf("detection-guided DoS degraded tail by %.1fx, want ≥5x", f)
	}
}

func TestPlacementProbability(t *testing.T) {
	// 1 victim VM in 40 servers, 10 senders: 1-(39/40)^10 ≈ 0.224.
	p := PlacementProbability(40, 1, 10)
	if math.Abs(p-0.2235) > 0.01 {
		t.Fatalf("P(f) = %v, want ≈0.224", p)
	}
	if PlacementProbability(10, 10, 1) != 1 {
		t.Fatal("k=N should be certain")
	}
	if PlacementProbability(0, 1, 1) != 0 || PlacementProbability(10, 0, 5) != 0 {
		t.Fatal("degenerate inputs should be 0")
	}
	// Monotone in senders.
	if PlacementProbability(40, 2, 5) >= PlacementProbability(40, 2, 20) {
		t.Fatal("more senders must raise the probability")
	}
}

func TestRandomHosts(t *testing.T) {
	rng := stats.NewRNG(4)
	hosts := RandomHosts(rng, 40, 10)
	if len(hosts) != 10 {
		t.Fatalf("got %d hosts, want 10", len(hosts))
	}
	seen := map[int]bool{}
	for _, h := range hosts {
		if h < 0 || h >= 40 || seen[h] {
			t.Fatalf("invalid host sample: %v", hosts)
		}
		seen[h] = true
	}
	if got := len(RandomHosts(rng, 5, 10)); got != 5 {
		t.Fatalf("oversized request should clamp to total, got %d", got)
	}
}

func TestRFAOnBatchVictim(t *testing.T) {
	rng := stats.NewRNG(5)
	s := sim.NewServer("s0", sim.ServerConfig{})

	// Victim: memory-bound Spark job, reactive so it frees resources when
	// stalled.
	vspec := workload.Spark(rng, 0)
	vspec.Jitter = 0
	vapp := workload.NewReactive(workload.NewApp(vspec, workload.Constant{Level: 1}, 1))
	victimVM := &sim.VM{ID: "victim", VCPUs: 6, App: vapp}
	if err := s.Place(victimVM); err != nil {
		t.Fatal(err)
	}
	vapp.Bind(s, victimVM)

	// Beneficiary: CPU-bound job whose critical resource does not overlap
	// the victim's memory bandwidth. At 6 vCPUs each on an 8-core host, the
	// beneficiary's second-thread slots land on the victim's cores — the
	// hyperthread coupling resource-freeing attacks exploit.
	bspec := workload.SpecCPU(rng, 6) // gobmk: CPU-heavy, light memory
	bspec.Jitter = 0
	bapp := workload.NewApp(bspec, workload.Constant{Level: 1}, 2)
	benVM := &sim.VM{ID: "beneficiary", VCPUs: 6, App: bapp}
	if err := s.Place(benVM); err != nil {
		t.Fatal(err)
	}
	if !s.SharesCore(victimVM, benVM) {
		t.Fatal("test setup: victim and beneficiary must share a core")
	}

	helper := probe.NewAdversary("helper", 4, probe.Config{}, rng.Split())
	if err := s.Place(helper.VM); err != nil {
		t.Fatal(err)
	}

	rfa := &RFA{Helper: helper, Target: sim.MemBW}
	victimJob := &latency.BatchJob{VM: victimVM, Work: 200}
	benJob := &latency.BatchJob{VM: benVM, Work: 200}
	out := MeasureBatchRFA(rfa, s, victimJob, benJob, 0)

	if out.VictimDegradation <= 5 {
		t.Fatalf("victim degradation %.1f%%, want meaningful slowdown", out.VictimDegradation)
	}
	if out.BeneficiaryImprovement <= 0 {
		t.Fatalf("beneficiary should improve, got %.1f%%", out.BeneficiaryImprovement)
	}
	if helper.Kernels.Get(sim.MemBW) != 0 {
		t.Fatal("helper should be stopped after measurement")
	}
}

func TestRFAStartStop(t *testing.T) {
	helper := probe.NewAdversary("h", 4, probe.Config{}, stats.NewRNG(6))
	rfa := &RFA{Helper: helper, Target: sim.NetBW}
	rfa.Start()
	if helper.Kernels.Get(sim.NetBW) != 95 {
		t.Fatalf("default intensity should be 95, got %v", helper.Kernels.Get(sim.NetBW))
	}
	rfa.Stop()
	if helper.Kernels.Get(sim.NetBW) != 0 {
		t.Fatal("Stop should idle the helper")
	}
}

func TestCoResidencyFindsVictim(t *testing.T) {
	d := detector(t)
	rng := stats.NewRNG(7)
	cl := cluster.New(10, sim.ServerConfig{}, cluster.LeastLoaded{})

	// The victim: one mysql VM. Distractors: other workloads.
	services := map[string]*latency.Service{}
	vspec := workload.SQLDatabase(stats.NewRNG(50), 0) // mysql:oltp
	vspec.Jitter = 0
	vapp := workload.NewApp(vspec, workload.Constant{Level: 1}, 1)
	victimVM := &sim.VM{ID: "the-victim", VCPUs: 4, App: vapp}
	host, err := cl.Place(victimVM, 0)
	if err != nil {
		t.Fatal(err)
	}
	services[host.Name()] = &latency.Service{VM: victimVM, Pattern: workload.Constant{Level: 1}, BaseServiceMs: 8}

	for i := 0; i < 6; i++ {
		spec := workload.Spark(rng.Split(), i)
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 1}, uint64(10+i))
		if _, err := cl.Place(&sim.VM{ID: spec.Label + string(rune('a'+i)), VCPUs: 4, App: app}, 0); err != nil {
			t.Fatal(err)
		}
	}

	atk := &CoResidency{
		Detector: d,
		Cluster:  cl,
		RNG:      stats.NewRNG(8),
		Receiver: func(h *sim.Server) *latency.Service { return services[h.Name()] },
	}
	res := atk.Run(CoResidencyConfig{Senders: 10, TargetClass: "mysql"}, 1, 0)
	// The analytic P(f) models independent placement: 1-(1-1/10)^10 ≈ 0.65.
	// The simulated launch lands senders on distinct hosts, so coverage is
	// actually complete here.
	if math.Abs(res.PlacementProbability-0.6513) > 0.001 {
		t.Fatalf("P(f) = %v, want ≈0.651", res.PlacementProbability)
	}
	if !res.Found {
		t.Fatal("victim not found")
	}
	if res.Host != host.Name() {
		t.Fatalf("found %s, victim is on %s", res.Host, host.Name())
	}
	if res.LatencyRatio < 2 {
		t.Fatalf("confirmation ratio %.2f, want ≥2", res.LatencyRatio)
	}
	if res.Ticks <= 0 {
		t.Fatal("attack must consume time")
	}
	// Senders must be cleaned up.
	for _, s := range cl.Servers {
		for _, vm := range s.VMs() {
			if vm.ID[:4] == "core" {
				t.Fatalf("sender %s left behind", vm.ID)
			}
		}
	}
}

func TestCoResidencyNoTarget(t *testing.T) {
	d := detector(t)
	cl := cluster.New(4, sim.ServerConfig{}, cluster.LeastLoaded{})
	atk := &CoResidency{
		Detector: d,
		Cluster:  cl,
		RNG:      stats.NewRNG(9),
		Receiver: func(*sim.Server) *latency.Service { return nil },
	}
	res := atk.Run(CoResidencyConfig{Senders: 4, TargetClass: "mysql"}, 1, 0)
	if res.Found {
		t.Fatal("empty cluster cannot contain the victim")
	}
}
