package attack

import (
	"bolt/internal/latency"
	"bolt/internal/probe"
	"bolt/internal/sim"
)

// RFA is a resource-freeing attack (§5.2): the helper saturates the
// victim's dominant resource so the victim stalls and stops pressuring
// everything else, and the beneficiary — whose critical resource must not
// overlap the victim's — reclaims the freed capacity.
type RFA struct {
	// Helper is the adversary VM running the saturating kernel.
	Helper *probe.Adversary
	// Target is the resource the helper saturates (the victim's dominant
	// resource, obtained from Bolt's detection).
	Target sim.Resource
	// Intensity is the helper's kernel intensity; 0 means 95.
	Intensity float64
}

// Start turns the helper on.
func (r *RFA) Start() {
	intensity := r.Intensity
	if intensity == 0 {
		intensity = 95
	}
	r.Helper.Kernels.Reset()
	r.Helper.Kernels.Set(r.Target, intensity)
}

// Stop turns the helper off.
func (r *RFA) Stop() { r.Helper.Kernels.Reset() }

// RFAOutcome quantifies one resource-freeing attack run.
type RFAOutcome struct {
	Target sim.Resource
	// VictimDegradation is the victim's relative performance loss in
	// percent (QPS for services, execution time for batch jobs).
	VictimDegradation float64
	// BeneficiaryImprovement is the beneficiary's execution-time gain in
	// percent.
	BeneficiaryImprovement float64
	// VictimMetric names what VictimDegradation measures.
	VictimMetric string
}

// MeasureServiceRFA runs the attack against an interactive victim: it
// compares the victim's throughput and the beneficiary's execution time
// with the helper off and on.
//
// Both measurements happen at the same tick with only the helper kernels
// toggled in between — the case that requires the helper's probe.Kernels
// to implement sim.DemandVersioner: the host's per-tick demand snapshot
// invalidates on the kernel version bump, so the on-measurement sees the
// helper's pressure (and the reactive victim's response to it) instead of
// the cached off-state.
func MeasureServiceRFA(r *RFA, host *sim.Server, victim *latency.Service,
	beneficiary *latency.BatchJob, start sim.Tick) RFAOutcome {
	r.Stop()
	baseQPS := victim.Measure(host, start).QPS
	baseTicks, _ := beneficiary.Run(host, start, 0)

	r.Start()
	atkQPS := victim.Measure(host, start).QPS
	atkTicks, _ := beneficiary.Run(host, start, 0)
	r.Stop()

	return RFAOutcome{
		Target:                 r.Target,
		VictimDegradation:      pctLoss(baseQPS, atkQPS),
		BeneficiaryImprovement: pctLoss(float64(baseTicks), float64(atkTicks)),
		VictimMetric:           "QPS",
	}
}

// MeasureBatchRFA runs the attack against a batch victim: both victim and
// beneficiary are measured by execution time.
func MeasureBatchRFA(r *RFA, host *sim.Server, victim, beneficiary *latency.BatchJob,
	start sim.Tick) RFAOutcome {
	r.Stop()
	baseVictim, _ := victim.Run(host, start, 0)
	baseBen, _ := beneficiary.Run(host, start, 0)

	r.Start()
	atkVictim, _ := victim.Run(host, start, 0)
	atkBen, _ := beneficiary.Run(host, start, 0)
	r.Stop()

	return RFAOutcome{
		Target: r.Target,
		// For execution time a positive degradation means the victim got
		// slower.
		VictimDegradation:      pctLoss(float64(atkVictim), float64(baseVictim)),
		BeneficiaryImprovement: pctLoss(float64(baseBen), float64(atkBen)),
		VictimMetric:           "exec time",
	}
}

// pctLoss returns how much smaller b is than a, in percent of a.
func pctLoss(a, b float64) float64 {
	if a == 0 {
		return 0
	}
	return 100 * (a - b) / a
}
