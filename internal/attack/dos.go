// Package attack implements the three attacks §5 of the paper builds on
// Bolt's detection output: the internal (host-based) denial-of-service
// attack with custom contention kernels (§5.1), the resource-freeing
// attack with a helper and a beneficiary (§5.2), and the VM co-residency
// detection attack with a sender/receiver pair (§5.3).
package attack

import (
	"bolt/internal/core"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
)

// DoSPlan is a set of contention-kernel intensities targeting a victim's
// critical resources.
type DoSPlan struct {
	Intensity sim.Vector
	// Targets lists the resources the plan attacks, strongest first.
	Targets []sim.Resource
}

// headroom is how far above the victim's measured pressure the attack
// kernels are configured — "a higher point than their measured pressure
// c_i during detection" (§5.1) — so the combined demand saturates the
// resource.
const headroom = 25

// PlanDoS turns a detection into an attack plan: the victim's nCritical
// most-pressured resources (from the completed profile) are each targeted
// at an intensity exceeding the victim's own pressure. The CPU kernel is
// never used: host-based DoS defences watch CPU utilisation, and the
// paper's central point (§5.1) is that Bolt stays resilient to them by
// keeping compute usage low and hurting the victim elsewhere.
func PlanDoS(det core.Detection, nCritical int) DoSPlan {
	if nCritical <= 0 {
		nCritical = 2
	}
	pressure := sim.FromSlice(det.Result.Pressure)
	var plan DoSPlan
	for _, r := range pressure.TopK(sim.NumResources) {
		if r == sim.CPU {
			continue // evade utilisation-triggered defences
		}
		if r.IsCore() && !det.CoreShared {
			// Core-private contention only reaches hyperthread siblings;
			// without a shared core these kernels would hit nothing.
			continue
		}
		want := pressure.Get(r) + headroom
		if want > 95 {
			want = 95
		}
		plan.Intensity.Set(r, want)
		plan.Targets = append(plan.Targets, r)
		if len(plan.Targets) == nCritical {
			break
		}
	}
	return plan
}

// NaiveDoSPlan is the baseline attack Fig. 13 compares against: saturate
// the host's CPU with a compute-intensive kernel, which degrades the
// victim but trips utilisation-triggered defences.
func NaiveDoSPlan() DoSPlan {
	var plan DoSPlan
	plan.Intensity.Set(sim.CPU, 95)
	plan.Targets = []sim.Resource{sim.CPU}
	return plan
}

// Launch applies the plan to the adversary's kernels (replacing whatever
// they were doing).
func Launch(adv *probe.Adversary, plan DoSPlan) {
	adv.Kernels.Reset()
	for _, r := range sim.AllResources() {
		if v := plan.Intensity.Get(r); v > 0 {
			adv.Kernels.Set(r, v)
		}
	}
}

// Stop idles the adversary's kernels.
func Stop(adv *probe.Adversary) { adv.Kernels.Reset() }

// AdversaryCPU returns the CPU utilisation the plan itself contributes —
// the quantity a migration defence watches. Bolt's targeted plans keep
// this low unless the victim is CPU-bound.
func (p DoSPlan) AdversaryCPU() float64 { return p.Intensity.Get(sim.CPU) }

// PlacementProbability returns P(f) = 1 − (1 − k/N)^n: the probability at
// least one of n simultaneously launched adversarial VMs lands on a host
// with one of the victim's k instances in an N-server cluster (§5.3).
func PlacementProbability(servers, victimVMs, adversaryVMs int) float64 {
	if servers <= 0 || victimVMs <= 0 || adversaryVMs <= 0 {
		return 0
	}
	k := float64(victimVMs) / float64(servers)
	if k >= 1 {
		return 1
	}
	p := 1.0
	for i := 0; i < adversaryVMs; i++ {
		p *= 1 - k
	}
	return 1 - p
}

// RandomHosts picks n distinct host indices from [0, total) — the
// simultaneous-launch placement of the co-residency attack.
func RandomHosts(rng *stats.RNG, total, n int) []int {
	if n > total {
		n = total
	}
	perm := rng.Perm(total)
	return perm[:n]
}
