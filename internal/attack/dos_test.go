package attack

import (
	"testing"
	"testing/quick"

	"bolt/internal/core"
	"bolt/internal/mining"
	"bolt/internal/sim"
)

// detectionWith builds a synthetic Detection carrying the given completed
// pressure vector and core-sharing flag.
func detectionWith(pressure sim.Vector, coreShared bool) core.Detection {
	return core.Detection{
		Result: &mining.Result{
			Pressure: pressure.Slice(),
			Matches:  []mining.Match{{Label: "x", Class: "x", Similarity: 0.9}},
		},
		CoreShared: coreShared,
	}
}

func TestPlanDoSNeverUsesCPU(t *testing.T) {
	// Even for a victim whose single most critical resource is the CPU,
	// the plan must avoid the CPU kernel (utilisation-triggered defences).
	var p sim.Vector
	p.Set(sim.CPU, 95)
	p.Set(sim.LLC, 60)
	p.Set(sim.MemBW, 50)
	plan := PlanDoS(detectionWith(p, true), 2)
	if plan.Intensity.Get(sim.CPU) != 0 {
		t.Fatal("DoS plan must never run the CPU kernel")
	}
	if plan.AdversaryCPU() != 0 {
		t.Fatal("AdversaryCPU must be zero for a CPU-free plan")
	}
	if len(plan.Targets) != 2 {
		t.Fatalf("plan should fall through to the next criticals, got %v", plan.Targets)
	}
}

func TestPlanDoSSkipsUnreachableCore(t *testing.T) {
	var p sim.Vector
	p.Set(sim.L1I, 90)
	p.Set(sim.L1D, 80)
	p.Set(sim.LLC, 70)
	p.Set(sim.NetBW, 60)

	// Without a shared core the plan must drop to uncore targets.
	plan := PlanDoS(detectionWith(p, false), 2)
	for _, r := range plan.Targets {
		if r.IsCore() {
			t.Fatalf("unreachable core resource %v in plan", r)
		}
	}
	if plan.Targets[0] != sim.LLC || plan.Targets[1] != sim.NetBW {
		t.Fatalf("targets = %v, want [LLC NetBW]", plan.Targets)
	}

	// With a shared core the cache targets become reachable.
	plan = PlanDoS(detectionWith(p, true), 2)
	if plan.Targets[0] != sim.L1I {
		t.Fatalf("shared-core plan should target L1-i first, got %v", plan.Targets)
	}
}

func TestPlanDoSIntensityAboveVictim(t *testing.T) {
	var p sim.Vector
	p.Set(sim.LLC, 60)
	p.Set(sim.MemBW, 40)
	plan := PlanDoS(detectionWith(p, false), 2)
	for _, r := range plan.Targets {
		if plan.Intensity.Get(r) <= p.Get(r) {
			t.Fatalf("intensity on %v (%v) must exceed the victim's pressure (%v)",
				r, plan.Intensity.Get(r), p.Get(r))
		}
	}
}

func TestPlanDoSProperties(t *testing.T) {
	f := func(seed int64, coreShared bool) bool {
		var p sim.Vector
		x := uint64(seed)
		for i := range p {
			x = x*6364136223846793005 + 1442695040888963407
			p[i] = float64(x % 101)
		}
		plan := PlanDoS(detectionWith(p, coreShared), 3)
		if len(plan.Targets) > 3 {
			return false
		}
		for _, r := range plan.Targets {
			v := plan.Intensity.Get(r)
			if v <= 0 || v > 95 {
				return false
			}
			if r == sim.CPU {
				return false
			}
			if r.IsCore() && !coreShared {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPlanDoSDefaultCriticals(t *testing.T) {
	var p sim.Vector
	p.Set(sim.LLC, 80)
	p.Set(sim.MemBW, 70)
	p.Set(sim.NetBW, 60)
	plan := PlanDoS(detectionWith(p, false), 0) // 0 → default 2
	if len(plan.Targets) != 2 {
		t.Fatalf("default nCritical should be 2, got %d", len(plan.Targets))
	}
}
