package attack

import (
	"bolt/internal/cluster"
	"bolt/internal/core"
	"bolt/internal/latency"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
)

// CoResidencyConfig parameterises the §5.3 attack.
type CoResidencyConfig struct {
	// Senders is the number of adversarial VMs launched simultaneously.
	Senders int
	// SenderVCPUs sizes each sender; 0 means 4.
	SenderVCPUs int
	// TargetClass is the workload class of the victim (e.g. "mysql").
	TargetClass string
	// LatencyRatio is the receiver-side degradation that confirms
	// co-residency; 0 means 2 (the paper observes ~3×).
	LatencyRatio float64
	// BurstIntensity is the sender's contention intensity; 0 means 90.
	BurstIntensity float64
}

func (c CoResidencyConfig) withDefaults() CoResidencyConfig {
	if c.SenderVCPUs == 0 {
		c.SenderVCPUs = 4
	}
	if c.LatencyRatio == 0 {
		c.LatencyRatio = 2
	}
	if c.BurstIntensity == 0 {
		c.BurstIntensity = 90
	}
	return c
}

// CoResidencyResult reports the attack outcome.
type CoResidencyResult struct {
	// Found reports whether the victim's host was confirmed.
	Found bool
	// Host is the confirmed server name.
	Host string
	// Candidates is how many sampled hosts carried a workload of the
	// target class (the m of §5.3).
	Candidates int
	// SendersUsed is the number of adversarial VMs launched.
	SendersUsed int
	// Ticks is the end-to-end attack duration.
	Ticks sim.Tick
	// LatencyRatio is the receiver-observed degradation on the confirmed
	// host (≈3× in the paper).
	LatencyRatio float64
	// PlacementProbability is the analytic P(f) for this launch.
	PlacementProbability float64
}

// CoResidency locates a specific victim service in a shared cluster: Bolt
// VMs land on random hosts, detect the type of their co-residents, prune
// to hosts carrying the target class, then confirm with a sender/receiver
// probe — the sender injects contention in the victim's sensitive
// resources while an external receiver watches the victim's request
// latency over a public channel.
type CoResidency struct {
	Detector *core.Detector
	Cluster  *cluster.Cluster
	RNG      *stats.RNG
	// Receiver measures the target service's latency (the external,
	// uncooperative-victim channel). It maps a host to the victim service
	// on it, or nil when the host does not run the victim.
	Receiver func(host *sim.Server) *latency.Service
}

// Run executes the attack and returns the outcome. victimVMs is the k of
// the placement-probability formula (how many instances the victim user
// runs).
func (a *CoResidency) Run(cfg CoResidencyConfig, victimVMs int, start sim.Tick) CoResidencyResult {
	cfg = cfg.withDefaults()
	res := CoResidencyResult{
		SendersUsed:          cfg.Senders,
		PlacementProbability: PlacementProbability(len(a.Cluster.Servers), victimVMs, cfg.Senders),
	}

	// Phase 1: simultaneous launch of sender VMs on random hosts.
	hosts := RandomHosts(a.RNG, len(a.Cluster.Servers), cfg.Senders)
	type placed struct {
		adv  *probe.Adversary
		host *sim.Server
	}
	var senders []placed
	for i, h := range hosts {
		adv := probe.NewAdversary("coresidency-sender-"+string(rune('a'+i)), cfg.SenderVCPUs,
			probe.Config{}, a.RNG.Split())
		if err := a.Cluster.Servers[h].Place(adv.VM); err != nil {
			continue // host full: this sender is wasted, as in a real launch
		}
		senders = append(senders, placed{adv, a.Cluster.Servers[h]})
	}
	defer func() {
		for _, s := range senders {
			s.host.Remove(s.adv.VM.ID)
		}
	}()

	t := start
	// Phase 2: each sender detects its co-residents; keep hosts carrying
	// the target class.
	var candidates []placed
	maxTicks := sim.Tick(0)
	for _, s := range senders {
		det := a.Detector.Detect(s.host, s.adv, t, 3)
		if det.Ticks > maxTicks {
			maxTicks = det.Ticks
		}
		// Prune generously: a host stays in the sample when the target
		// class appears among any co-resident's top matches. False
		// positives only cost one confirmation burst; a false negative
		// loses the victim.
		if detectionMentionsClass(det, cfg.TargetClass, 3) {
			candidates = append(candidates, s)
		}
	}
	t += maxTicks // senders run concurrently; the slowest gates the phase
	res.Candidates = len(candidates)

	// Phase 3: sender/receiver confirmation on each candidate host.
	const burstTicks = 2 * sim.TicksPerSecond
	for _, c := range candidates {
		svc := a.Receiver(c.host)
		if svc == nil {
			t += burstTicks
			continue
		}
		quiet := svc.Measure(c.host, t).MeanMs
		for _, r := range sim.FromSlice(a.victimProfile(cfg.TargetClass)).TopK(2) {
			c.adv.Kernels.Set(r, cfg.BurstIntensity)
		}
		loud := svc.Measure(c.host, t+burstTicks/2).MeanMs
		c.adv.Kernels.Reset()
		t += burstTicks
		if quiet > 0 && loud/quiet >= cfg.LatencyRatio {
			res.Found = true
			res.Host = c.host.Name()
			res.LatencyRatio = loud / quiet
			break
		}
	}
	res.Ticks = t - start
	return res
}

// detectionMentionsClass reports whether the target class appears among
// the top-k matches of any disentangled co-resident.
func detectionMentionsClass(det core.Detection, class string, k int) bool {
	results := det.CoResidents
	if det.Result != nil {
		results = append(results, det.Result)
	}
	for _, r := range results {
		limit := k
		if limit > len(r.Matches) {
			limit = len(r.Matches)
		}
		for _, m := range r.Matches[:limit] {
			if core.ClassMatches(m.Label, class) {
				return true
			}
		}
	}
	return false
}

// victimProfile returns a representative pressure profile for the target
// class from the detector's training set, used to pick which resources the
// confirmation burst stresses.
func (a *CoResidency) victimProfile(class string) []float64 {
	var acc []float64
	count := 0
	for _, m := range a.Detector.Rec.TrainingProfiles() {
		if m.Class != class {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(m.Pressure))
		}
		for j, v := range m.Pressure {
			acc[j] += v
		}
		count++
	}
	if count == 0 {
		return make([]float64, sim.NumResources)
	}
	for j := range acc {
		acc[j] /= float64(count)
	}
	return acc
}
