package attack

import (
	"fmt"

	"bolt/internal/cluster"
	"bolt/internal/fleet"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// This file implements the Repttack-style scheduler-guided co-location
// campaign at fleet scale (previously inlined in internal/exper's fleet
// experiment; extracted so the defender-co-evolution sweep can run the
// same attacker against secure placement policies). The attack follows
// Repttack's observation that placement policy, not placement luck,
// decides co-residency: the adversary launches probe VMs either in one
// bulk wave or one-at-a-time (trickling, deleting misses between waves),
// and under an affinity-honouring scheduler the senders carry an affinity
// request naming the victim's deployment label, steering the scheduler
// itself onto the victim's hosts.

const (
	// CampaignBackgroundVMs is the number of background tenant VMs seeded
	// per server (~5 VMs/server matches the ~20k-VM datacenter at 4096
	// servers).
	CampaignBackgroundVMs = 5
	// campaignBackgroundLoad keeps background tenants at the low mean
	// utilisation the paper observes in production fleets — the headroom
	// that makes placement attacks (and their detection signal) possible.
	campaignBackgroundLoad = 0.35
	// campaignVictimLoad drives the victim service hard enough that its
	// signature stands out of the background on its critical resources.
	campaignVictimLoad = 0.9
	// CampaignSenders is the attacker's launch budget per campaign.
	CampaignSenders = 8
	// CampaignProbeWindow is how many fleet ticks each launch wave probes
	// before the attacker judges its senders.
	CampaignProbeWindow = 16
	// CampaignProbeThreshold is the mean two-resource pressure score above
	// which a sender declares its host victim-like. Calibrated between the
	// background-only host scores (two uncore resources at ~0.35 load) and
	// a victim host's (the victim alone adds ~0.9 × its top-two base).
	CampaignProbeThreshold = 110.0
)

// Outcome is the attacker-side scorecard of one campaign.
type Outcome struct {
	VMs        int     // fleet VM population at the end of the run
	Launches   int     // co-residency attempts (sender launches, incl. failed)
	CoResP     float64 // fraction of launches that landed co-resident with a victim
	Candidates int     // senders whose probe score crossed the threshold
	Precision  float64 // candidates that truly were co-resident at judgment time
	ProbeTicks int     // total sender-ticks spent probing
}

// Hooks lets a defender act inside the campaign's tick loop without the
// campaign knowing any policy. All hooks run on the campaign's goroutine,
// between fleet ticks — the only place cluster mutation (migration,
// placement) is legal — so a hooked campaign is exactly as deterministic
// as a bare one. The zero value (no hooks) reproduces the undefended
// campaign byte for byte.
type Hooks struct {
	// WarmupWindows probe-window-sized spans of fleet ticks run before the
	// first launch wave, giving a learning defender (a bandit's reward
	// stream, an anomaly detector's baseline) pre-attack observations.
	WarmupWindows int
	// AfterTick runs after every fleet tick with the tick just advanced
	// and the barrier-merged events (which include fleet.MonitorAlarm
	// events from any monitors attached to the campaign's engine).
	AfterTick func(t sim.Tick, events []fleet.Event)
	// AfterWindow runs after each probe window with the per-server
	// accumulated probe scores (CampaignProbeWindow samples of the victim
	// class's top-two uncore pressure, noise included). Windows are
	// numbered from -WarmupWindows; the first wave's window is 0.
	AfterWindow func(window int, scores []float64)
}

// Campaign is one fleet-scale co-location attack in flight: the cluster
// under the scheduler being evaluated, its sharded tick engine, the seeded
// victims, and the attacker's running tallies.
type Campaign struct {
	Cl         *cluster.Cluster
	Engine     *fleet.Engine
	Victims    []string      // victim VM ids
	VictimSpec workload.Spec // the victim service's workload spec
	T          sim.Tick      // fleet time consumed so far

	// Out is the attacker scorecard, valid after Run.
	Out Outcome
	// CandidateHosts lists the distinct servers (by index) the attacker
	// judged victim-like, in judgment order — the hosts it would escalate
	// to full Bolt detection on. Valid after Run.
	CandidateHosts []int

	rng     *stats.RNG
	aff     *cluster.Affinity
	trickle bool
	servers int

	live   [][]string // per-server live background VM ids
	nextBG int

	scores  []float64
	r1, r2  sim.Resource
	idx     map[*sim.Server]int
	monitor fleet.TickFunc

	probeSpec   workload.Spec
	nextSender  int
	liveSenders int
	launches    int
	coRes       int
	trueCands   int
	candSeen    map[int]bool
	lastStats   fleet.Stats
}

// NewCampaign builds a fleet of the given size under the scheduler, seeds
// background tenants and victims, and prepares the sharded tick engine.
// All randomness flows from rng in a fixed order, so a campaign is a pure
// function of (rng state, servers, scheduler, trickle).
func NewCampaign(rng *stats.RNG, servers int, sched cluster.Scheduler, trickle bool) *Campaign {
	c := &Campaign{
		rng:     rng,
		trickle: trickle,
		servers: servers,
	}
	c.Cl = cluster.New(servers, sim.ServerConfig{}, sched)
	c.aff, _ = sched.(*cluster.Affinity)

	// Background tenants predate the attack, so they are placed directly
	// rather than through the scheduler under test.
	c.live = make([][]string, servers)
	for i := range c.Cl.Servers {
		for j := 0; j < CampaignBackgroundVMs; j++ {
			c.addBackground(i)
		}
	}

	// Victims: one labelled SQL service instance per 64 servers, placed
	// through the scheduler (the victim is an ordinary tenant).
	c.VictimSpec = workload.SQLDatabase(rng.Split(), 2) // mysql:olap — disk-dominant signature
	c.VictimSpec.Jitter = 0
	nv := servers / 64
	if nv < 1 {
		nv = 1
	}
	c.Victims = make([]string, nv)
	for i := range c.Victims {
		id := fmt.Sprintf("victim-%d", i)
		app := workload.NewApp(c.VictimSpec, workload.Constant{Level: campaignVictimLoad}, rng.Uint64())
		if c.aff != nil {
			c.aff.Label(id, "svc=db")
		}
		if _, err := c.Cl.Place(&sim.VM{ID: id, VCPUs: 4, App: app}, 0); err != nil {
			panic(err)
		}
		c.Victims[i] = id
	}

	// The probe signal: the victim class's two strongest uncore resources
	// (core resources are invisible without sharing a physical core).
	c.r1, c.r2 = victimUncoreSignature(c.VictimSpec.Base)

	c.Engine = fleet.NewEngine(c.Cl, rng.Split())
	c.scores = make([]float64, servers)
	c.monitor = func(w *fleet.World) {
		p := w.Server.ObservedPressure(nil, c.r1, w.Tick) +
			w.Server.ObservedPressure(nil, c.r2, w.Tick)
		p += (w.RNG.Float64() - 0.5) * 4 // per-sample sensor noise
		c.scores[w.Index] += p
	}
	c.idx = make(map[*sim.Server]int, servers)
	for i, s := range c.Cl.Servers {
		c.idx[s] = i
	}
	c.probeSpec = workload.Spec{Label: "probe:sender", Class: "probe"} // zero demand
	c.candSeen = map[int]bool{}
	return c
}

// addBackground launches one background tenant VM directly on server i.
func (c *Campaign) addBackground(i int) {
	mk := []func(*stats.RNG, int) workload.Spec{
		workload.Memcached, workload.Hadoop, workload.Spark, workload.Webserver,
	}
	spec := mk[c.nextBG%len(mk)](c.rng.Split(), c.nextBG)
	app := workload.NewApp(spec, workload.Constant{Level: campaignBackgroundLoad}, c.rng.Uint64())
	id := fmt.Sprintf("bg-%d", c.nextBG)
	vm := &sim.VM{ID: id, VCPUs: 1 + c.nextBG%3, App: app}
	c.nextBG++
	if err := c.Cl.Servers[i].Place(vm); err != nil {
		return // host full: the tenant's launch fails, as in production
	}
	c.live[i] = append(c.live[i], id)
}

// HostHasVictim reports whether any victim currently lives on s — the
// ground truth the attacker is scored against (and never shown).
func (c *Campaign) HostHasVictim(s *sim.Server) bool {
	for _, vid := range c.Victims {
		if c.Cl.HostOf(vid) == s {
			return true
		}
	}
	return false
}

// window runs one probe-window span of fleet ticks: scores reset, the
// whole fleet ticks CampaignProbeWindow times under the probe monitor
// (AfterTick firing between ticks), then AfterWindow sees the scores.
func (c *Campaign) window(number int, hooks Hooks) {
	for i := range c.scores {
		c.scores[i] = 0
	}
	for w := 0; w < CampaignProbeWindow; w++ {
		var events []fleet.Event
		events, c.lastStats = c.Engine.Tick(c.T, c.monitor)
		if hooks.AfterTick != nil {
			hooks.AfterTick(c.T, events)
		}
		c.T++
	}
	if hooks.AfterWindow != nil {
		hooks.AfterWindow(number, c.scores)
	}
}

// Run executes the campaign: optional defender warm-up windows, then the
// launch waves (one bulk wave, or CampaignSenders trickle waves with
// background churn in between), each followed by a probe window and the
// attacker's candidate judgment. With zero-valued hooks this is exactly
// the undefended campaign of the fleet experiment.
func (c *Campaign) Run(hooks Hooks) Outcome {
	for wu := 0; wu < hooks.WarmupWindows; wu++ {
		c.window(wu-hooks.WarmupWindows, hooks)
	}

	waves, perWave := 1, CampaignSenders
	if c.trickle {
		waves, perWave = CampaignSenders, 1
	}

	for wave := 0; wave < waves; wave++ {
		if wave > 0 {
			// Background churn between waves: tenants leave and arrive,
			// shifting the free-capacity landscape a relaunch explores.
			moves := 1 + c.servers/32
			for m := 0; m < moves; m++ {
				src := c.rng.Intn(c.servers)
				if n := len(c.live[src]); n > 2 {
					c.Cl.Servers[src].Remove(c.live[src][n-1])
					c.live[src] = c.live[src][:n-1]
				}
				c.addBackground(c.rng.Intn(c.servers))
			}
		}

		// Launch this wave's senders through the scheduler under test.
		type senderRec struct {
			id   string
			host *sim.Server
		}
		var placed []senderRec
		for k := 0; k < perWave; k++ {
			id := fmt.Sprintf("sender-%d", c.nextSender)
			c.nextSender++
			app := workload.NewApp(c.probeSpec, workload.Constant{Level: 0}, c.rng.Uint64())
			vm := &sim.VM{ID: id, VCPUs: 1, App: app}
			if c.aff != nil {
				c.aff.Want(id, "svc=db")
			}
			c.launches++
			host, err := c.Cl.Place(vm, c.T)
			if err != nil {
				continue // cluster full: a wasted launch, as in a real attack
			}
			placed = append(placed, senderRec{id, host})
			if c.HostHasVictim(host) {
				c.coRes++
			}
		}
		c.liveSenders += len(placed)

		// Probe window: the whole fleet ticks on the sharded engine.
		c.window(wave, hooks)
		c.Out.ProbeTicks += CampaignProbeWindow * c.liveSenders

		// Judge this wave's senders; trickling deletes the misses so the
		// next wave's launch budget is not squandered on known-bad hosts.
		for _, rec := range placed {
			mean := c.scores[c.idx[rec.host]] / CampaignProbeWindow
			if mean >= CampaignProbeThreshold {
				c.Out.Candidates++
				if c.HostHasVictim(rec.host) {
					c.trueCands++
				}
				if hi := c.idx[rec.host]; !c.candSeen[hi] {
					c.candSeen[hi] = true
					c.CandidateHosts = append(c.CandidateHosts, hi)
				}
			} else if c.trickle {
				rec.host.Remove(rec.id)
				c.liveSenders--
			}
		}
	}

	c.Out.VMs = c.lastStats.VMs
	c.Out.Launches = c.launches
	c.Out.CoResP = float64(c.coRes) / float64(c.launches)
	if c.Out.Candidates > 0 {
		c.Out.Precision = float64(c.trueCands) / float64(c.Out.Candidates)
	}
	return c.Out
}

// victimUncoreSignature returns the two strongest host-wide-visible
// resources of a victim profile — the signature a probe without core
// co-residency can still read.
func victimUncoreSignature(base sim.Vector) (sim.Resource, sim.Resource) {
	masked := base
	for _, r := range sim.CoreResources() {
		masked.Set(r, 0)
	}
	top := masked.TopK(2)
	return top[0], top[1]
}
