package core

import (
	"math"
	"testing"

	"bolt/internal/stats"
	"bolt/internal/workload"
)

// probeVectors returns a deterministic set of pressure vectors spanning the
// detection input space: victim profiles disjoint from training plus a few
// synthetic corners.
func probeVectors(n int) [][]float64 {
	var out [][]float64
	for _, s := range workload.VictimSpecs(4242, n) {
		out = append(out, s.Base.Slice())
	}
	zero := make([]float64, len(out[0]))
	full := make([]float64, len(out[0]))
	for j := range full {
		full[j] = 100
	}
	return append(out, zero, full)
}

// TestDetectFullyObservedMatchesDense pins the sparse path's degenerate
// case: when every resource is directly observed, completion passes the
// vector through untouched and the measured-resource boost multiplies every
// weight by the same power of two — which cancels exactly in both the
// weighted Pearson correlation and the proximity factor. The two paths must
// therefore agree bit for bit, not just approximately.
func TestDetectFullyObservedMatchesDense(t *testing.T) {
	det := trainedDetector(t)
	rec := det.Rec
	allKnown := make([]bool, rec.ResourceCount())
	for j := range allKnown {
		allKnown[j] = true
	}
	for vi, v := range probeVectors(24) {
		sparse := rec.Detect(v, allKnown)
		dense := rec.DetectDense(v)
		for j := range v {
			if sparse.Pressure[j] != v[j] {
				t.Fatalf("vector %d: completion altered fully observed entry %d: %g -> %g",
					vi, j, v[j], sparse.Pressure[j])
			}
		}
		if len(sparse.Matches) != len(dense.Matches) {
			t.Fatalf("vector %d: match counts differ: %d vs %d",
				vi, len(sparse.Matches), len(dense.Matches))
		}
		for i := range sparse.Matches {
			sm, dm := sparse.Matches[i], dense.Matches[i]
			if sm.Label != dm.Label || sm.Similarity != dm.Similarity {
				t.Fatalf("vector %d match %d: sparse (%s, %v) != dense (%s, %v)",
					vi, i, sm.Label, sm.Similarity, dm.Label, dm.Similarity)
			}
		}
	}
}

// simTieTol is the similarity margin below which two training profiles are
// considered tied for the purposes of the reorder-invariance property:
// reordering the training rows reorders floating-point summations (SVD
// iterations, means), so scores can drift by strictly-rounding amounts and
// genuinely tied labels may swap.
const simTieTol = 1e-9

// TestLabelInvariantUnderTrainingReorder asserts that the detector's answer
// is a property of the training *set*, not the training *sequence*: after
// shuffling the spec slice, every probe vector must either keep its label
// or have been sitting on an exact score tie.
func TestLabelInvariantUnderTrainingReorder(t *testing.T) {
	specs := workload.TrainingSpecs(100)
	shuffled := make([]workload.Spec, len(specs))
	rng := stats.NewRNG(99)
	for i, p := range rng.Perm(len(specs)) {
		shuffled[i] = specs[p]
	}
	d1 := Train(specs, Config{})
	d2 := Train(shuffled, Config{})

	for vi, v := range probeVectors(24) {
		r1 := d1.Rec.DetectDense(v)
		r2 := d2.Rec.DetectDense(v)
		b1, b2 := r1.Best(), r2.Best()
		if math.Abs(b1.Similarity-b2.Similarity) > simTieTol {
			t.Fatalf("vector %d: best similarity moved under reorder: %v (%s) vs %v (%s)",
				vi, b1.Similarity, b1.Label, b2.Similarity, b2.Label)
		}
		if b1.Label == b2.Label {
			continue
		}
		// Different label is only legitimate on an exact tie: the runner-up
		// must score within tolerance of the winner.
		if len(r1.Matches) < 2 || len(r2.Matches) < 2 {
			t.Fatalf("vector %d: label changed with no runner-up: %s vs %s", vi, b1.Label, b2.Label)
		}
		if math.Abs(r1.Matches[0].Similarity-r1.Matches[1].Similarity) > simTieTol {
			t.Fatalf("vector %d: label flipped without a tie: %s (%v) vs %s (%v), runner-up gap %v",
				vi, b1.Label, b1.Similarity, b2.Label, b2.Similarity,
				r1.Matches[0].Similarity-r1.Matches[1].Similarity)
		}
	}
}
