package core

import (
	"testing"
	"testing/quick"

	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// mixHost builds a host with the adversary on the thread-0 slots and the
// given victims filling the rest, so hyperthread sharing occurs.
func mixHost(t *testing.T, adv *probe.Adversary, specs []workload.Spec, vcpus int) *sim.Server {
	t.Helper()
	s := sim.NewServer("s0", sim.ServerConfig{})
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		app := workload.NewApp(spec, workload.Constant{Level: 0.9}, uint64(i+1))
		if err := s.Place(&sim.VM{ID: spec.Label + string(rune('a'+i)), VCPUs: vcpus, App: app}); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestCandidatesRespectsMaxVictims(t *testing.T) {
	d := trainedDetector(t)
	rng := stats.NewRNG(3)
	for _, maxV := range []int{1, 2, 3, 5} {
		adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
		s := mixHost(t, adv, workload.VictimSpecs(200, 3), 3)
		e := d.NewEpisode(s, adv)
		for it := 0; it < 4; it++ {
			e.Step(0)
		}
		cands := e.Candidates(maxV)
		if len(cands) == 0 || len(cands) > maxV {
			t.Fatalf("maxVictims=%d yielded %d candidates", maxV, len(cands))
		}
	}
}

func TestCandidatesZeroMaxTreatedAsOne(t *testing.T) {
	d := trainedDetector(t)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(4))
	s := mixHost(t, adv, workload.VictimSpecs(201, 1), 3)
	e := d.NewEpisode(s, adv)
	e.Step(0)
	if got := len(e.Candidates(0)); got != 1 {
		t.Fatalf("maxVictims=0 should yield exactly 1 candidate, got %d", got)
	}
}

func TestCandidatesBeforeAnyStep(t *testing.T) {
	d := trainedDetector(t)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(5))
	s := mixHost(t, adv, nil, 3)
	e := d.NewEpisode(s, adv)
	// No measurements at all: the episode must not panic and must fall
	// back to the single-hypothesis result.
	cands := e.Candidates(3)
	if len(cands) != 1 {
		t.Fatalf("measurement-free episode should yield 1 candidate, got %d", len(cands))
	}
}

func TestEpisodeDeterministic(t *testing.T) {
	d := trainedDetector(t)
	run := func() []string {
		adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(99))
		s := mixHost(t, adv, workload.VictimSpecs(202, 2), 3)
		e := d.NewEpisode(s, adv)
		var labels []string
		for it := 0; it < 4; it++ {
			labels = append(labels, e.Step(0).Best().Label)
		}
		for _, c := range e.Candidates(2) {
			labels = append(labels, c.Best().Label)
		}
		return labels
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("identical seeds diverged at output %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestEpisodeUnderCoreIsolationSeesNoCore(t *testing.T) {
	// With dedicated cores the adversary never shares a core; the episode
	// must not claim CoreShared and must produce no signatures.
	cfg := sim.ServerConfig{DedicatedCores: true}
	s := sim.NewServer("s0", cfg)
	d := trainedDetector(t)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(6))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	spec := workload.VictimSpecs(203, 1)[0]
	app := workload.NewApp(spec, workload.Constant{Level: 0.9}, 1)
	if err := s.Place(&sim.VM{ID: "v", VCPUs: 3, App: app}); err != nil {
		t.Fatal(err)
	}
	e := d.NewEpisode(s, adv)
	for it := 0; it < 4; it++ {
		e.Step(0)
	}
	if e.CoreShared {
		t.Fatal("dedicated cores must prevent core sharing")
	}
	if len(e.sigs) != 0 {
		t.Fatalf("no signatures should exist without core sharing, got %d", len(e.sigs))
	}
}

func TestTinyTrainingSetStillWorks(t *testing.T) {
	// Failure injection: a detector trained on only three applications must
	// degrade gracefully, not crash.
	rng := stats.NewRNG(7)
	specs := []workload.Spec{
		workload.Memcached(rng.Split(), 0),
		workload.Hadoop(rng.Split(), 0),
		workload.Spark(rng.Split(), 0),
	}
	d := Train(specs, Config{})
	adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
	s := mixHost(t, adv, []workload.Spec{workload.Memcached(rng.Split(), 1)}, 3)
	det := d.Detect(s, adv, 0, 2)
	if det.Result == nil || len(det.CoResidents) == 0 {
		t.Fatal("tiny training set must still produce a result")
	}
}

func TestDetectSimilarityBounded(t *testing.T) {
	d := trainedDetector(t)
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
		s := sim.NewServer("s0", sim.ServerConfig{})
		if err := s.Place(adv.VM); err != nil {
			return true
		}
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			g := workload.Generators()[rng.Intn(len(workload.Generators()))]
			spec := g.Make(rng.Split(), rng.Intn(24))
			app := workload.NewApp(spec, workload.Constant{Level: rng.Range(0.7, 1)}, rng.Uint64())
			if err := s.Place(&sim.VM{ID: spec.Label + string(rune('a'+i)), VCPUs: 2 + rng.Intn(3), App: app}); err != nil {
				break
			}
		}
		det := d.Detect(s, adv, sim.Tick(seed%1000), n)
		for _, c := range det.CoResidents {
			for _, m := range c.Matches {
				if m.Similarity < -1 || m.Similarity > 1 {
					return false
				}
			}
			if len(c.Pressure) != sim.NumResources {
				return false
			}
			for _, p := range c.Pressure {
				if p < 0 || p > 100 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestObservationAveragesRepeatedMeasurements(t *testing.T) {
	var g signal
	g.fold(sim.LLC, 60)
	g.fold(sim.LLC, 70)
	g.fold(sim.LLC, 80)
	if got := g.obs.Get(sim.LLC); got != 70 {
		t.Fatalf("running mean = %v, want 70", got)
	}
	if g.counts[sim.LLC] != 3 {
		t.Fatalf("counts = %d, want 3", g.counts[sim.LLC])
	}
	if g.knownCount() != 1 {
		t.Fatalf("knownCount = %d, want 1", g.knownCount())
	}
}
