package core

import (
	"bytes"
	"strings"
	"testing"

	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	d := trainedDetector(t)
	var buf bytes.Buffer
	if err := d.SaveProfiles(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProfiles(&buf, Config{})
	if err != nil {
		t.Fatal(err)
	}
	orig := d.Profiles()
	got := loaded.Profiles()
	if len(got) != len(orig) {
		t.Fatalf("round trip lost profiles: %d vs %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Label != orig[i].Label || got[i].Class != orig[i].Class {
			t.Fatalf("profile %d identity changed: %+v vs %+v", i, got[i], orig[i])
		}
		for j := range orig[i].Pressure {
			if got[i].Pressure[j] != orig[i].Pressure[j] {
				t.Fatalf("profile %d pressure %d changed", i, j)
			}
		}
	}

	// The reloaded detector must detect identically.
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(77))
	s := hostWith(t, adv, workload.VictimSpecs(300, 1)[0])
	a := d.Detect(s, adv, 0, 1)
	adv2 := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(77))
	s2 := hostWith(t, adv2, workload.VictimSpecs(300, 1)[0])
	b := loaded.Detect(s2, adv2, 0, 1)
	if a.Result.Best().Label != b.Result.Best().Label {
		t.Fatalf("reloaded detector diverged: %q vs %q",
			a.Result.Best().Label, b.Result.Best().Label)
	}
}

func TestLoadProfilesRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"not json",
		`{"version": 99, "profiles": [{"label":"x","class":"x","pressure":[1,2,3,4,5,6,7,8,9,10]}]}`,
		`{"version": 1, "profiles": []}`,
		`{"version": 1, "profiles": [{"label":"","class":"x","pressure":[1,2,3,4,5,6,7,8,9,10]}]}`,
		`{"version": 1, "profiles": [{"label":"x","class":"x","pressure":[1,2,3]}]}`,
	}
	for i, c := range cases {
		if _, err := LoadProfiles(strings.NewReader(c), Config{}); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
}

// TestLoadProfilesRejectsBadPressure: non-finite or out-of-range pressure
// values would poison the SVD and every downstream similarity score, so each
// must be rejected with a descriptive error naming the offending profile.
func TestLoadProfilesRejectsBadPressure(t *testing.T) {
	profile := func(pressure string) string {
		return `{"version": 1, "profiles": [{"label":"x:y","class":"x","pressure":` + pressure + `}]}`
	}
	cases := []struct {
		name, doc string
	}{
		{"negative", profile(`[-1,2,3,4,5,6,7,8,9,10]`)},
		{"above-100", profile(`[1,2,3,4,5,6,7,8,9,100.5]`)},
		{"huge", profile(`[1,2,3,4,5,6,7,8,9,1e300]`)},
		// encoding/json rejects bare NaN/Infinity literals at the decode
		// step; both layers must refuse the file either way.
		{"nan-literal", profile(`[NaN,2,3,4,5,6,7,8,9,10]`)},
		{"inf-literal", profile(`[Infinity,2,3,4,5,6,7,8,9,10]`)},
	}
	for _, c := range cases {
		if _, err := LoadProfiles(strings.NewReader(c.doc), Config{}); err == nil {
			t.Errorf("%s: bad pressure accepted", c.name)
		} else if !strings.Contains(err.Error(), "core:") {
			t.Errorf("%s: error %q not descriptive", c.name, err)
		}
	}
}

// TestLoadProfilesBoundaryPressureAccepted: exactly 0 and exactly 100 are
// legal pressures and must load.
func TestLoadProfilesBoundaryPressureAccepted(t *testing.T) {
	doc := `{"version": 1, "profiles": [{"label":"x:y","class":"x","pressure":[0,100,0,100,0,100,0,100,0,100]}]}`
	if _, err := LoadProfiles(strings.NewReader(doc), Config{}); err != nil {
		t.Fatalf("boundary pressures rejected: %v", err)
	}
}

func TestTrackerRunsOnSchedule(t *testing.T) {
	d := trainedDetector(t)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(11))
	s := hostWith(t, adv, workload.VictimSpecs(301, 1)[0])
	tr := d.NewTracker(s, adv, TrackerConfig{Interval: 200})

	obs := tr.Advance(0)
	if len(obs) != 1 {
		t.Fatalf("first Advance should detect once, got %d", len(obs))
	}
	// Advancing far enough should produce several more detections.
	obs = tr.Advance(2000)
	if len(obs) < 2 {
		t.Fatalf("2000 ticks at interval 200 should yield several detections, got %d", len(obs))
	}
	if _, ok := tr.Latest(); !ok {
		t.Fatal("Latest should exist after detections")
	}
	if tr.CurrentBest().Label == "" {
		t.Fatal("CurrentBest should carry a label")
	}
	// Advancing to the past is a no-op.
	if extra := tr.Advance(0); len(extra) != 0 {
		t.Fatal("Advance into the past must not detect")
	}
}

func TestTrackerDetectsPhaseChange(t *testing.T) {
	d := trainedDetector(t)
	rng := stats.NewRNG(12)

	// A victim that flips from SPEC (no network) to memcached (heavy
	// network) halfway through.
	spec1 := workload.SpecCPU(rng.Split(), 0)
	spec1.Jitter = 0
	spec2 := workload.Memcached(rng.Split(), 0)
	spec2.Jitter = 0
	seq := workload.NewSequence([]workload.Phase{
		{Spec: spec1, Pattern: workload.Constant{Level: 0.95}, Duration: 3000},
		{Spec: spec2, Pattern: workload.Constant{Level: 0.95}, Duration: 3000},
	}, 5)
	s := sim.NewServer("s0", sim.ServerConfig{})
	if err := s.Place(&sim.VM{ID: "victim", VCPUs: 3, App: seq}); err != nil {
		t.Fatal(err)
	}
	adv := probe.NewAdversary("bolt", 4, probe.Config{}, rng.Split())
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}

	tr := d.NewTracker(s, adv, TrackerConfig{Interval: 500, MaxVictims: 1})
	tr.Advance(5500)
	changes := tr.PhaseChanges()
	if len(changes) == 0 {
		t.Fatal("the SPEC→memcached flip should register as a phase change")
	}
	// Before the flip the label should be SPEC-flavoured; after, cache-
	// service flavoured.
	hist := tr.History()
	early := hist[0].Detection.Result.Best().Label
	late := hist[len(hist)-1].Detection.Result.Best().Label
	if early == late {
		t.Fatalf("labels should change across the phase flip: %q vs %q", early, late)
	}
}

func TestTrackerHistoryBounded(t *testing.T) {
	d := trainedDetector(t)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(13))
	s := hostWith(t, adv, workload.VictimSpecs(302, 1)[0])
	tr := d.NewTracker(s, adv, TrackerConfig{Interval: 100, History: 4})
	tr.Advance(5000)
	if got := len(tr.History()); got > 4 {
		t.Fatalf("history grew to %d, capped at 4", got)
	}
}
