package core_test

import (
	"fmt"

	"bolt/internal/core"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// ExampleDetector_Detect runs the whole detection flow: training on the
// catalog, placing a victim and the adversarial VM on a simulated host,
// and asking Bolt what lives there.
func ExampleDetector_Detect() {
	rng := stats.NewRNG(7)
	detector := core.Train(workload.TrainingSpecs(7), core.Config{})

	host := sim.NewServer("host-0", sim.ServerConfig{})
	spec := workload.Memcached(rng.Split(), 3)
	app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
	if err := host.Place(&sim.VM{ID: "victim", VCPUs: 5, App: app}); err != nil {
		panic(err)
	}
	adversary := probe.NewAdversary("bolt", 4, probe.Config{}, rng.Split())
	if err := host.Place(adversary.VM); err != nil {
		panic(err)
	}

	detection := detector.Detect(host, adversary, 0, 1)
	fmt.Printf("victim class detected: %v\n",
		core.ClassMatches(detection.Result.Best().Label, spec.Class))
	// Output:
	// victim class detected: true
}

// ExampleLabelMatches demonstrates the paper's §3.4 correctness rule.
func ExampleLabelMatches() {
	// Same framework and algorithm, different dataset size: correct.
	fmt.Println(core.LabelMatches("hadoop:svm:L", "hadoop:svm:S"))
	// Same service, compatible load characteristics (both read-mostly).
	fmt.Println(core.LabelMatches("memcached:rd95:KB", "memcached:rd90:MB"))
	// Wrong framework.
	fmt.Println(core.LabelMatches("spark:svm:L", "hadoop:svm:L"))
	// Output:
	// true
	// true
	// false
}
