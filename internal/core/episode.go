package core

import (
	"math"

	"bolt/internal/mining"
	"bolt/internal/probe"
	"bolt/internal/sim"
)

// Thin wrappers keep the decomposition code readable.
func mathSqrt(x float64) float64   { return math.Sqrt(x) }
func mathInf() float64             { return math.Inf(1) }
func mathExpNeg(x float64) float64 { return math.Exp(-x) }

// indexScore is an index/score pair used by the decomposition search.
type indexScore struct {
	i int
	s float64
}

// sortEntries orders index/score pairs by ascending score, ties by
// ascending index. The comparator is a total order (indices are distinct),
// so any correct sort produces the exact ordering sort.SliceStable used to
// — this binary insertion sort does so without the closure and interface
// allocations, which mattered once the decomposition search became the
// last allocation site on the episode path. Entry counts are the training
// catalog size (about a hundred), well inside insertion sort's range.
func sortEntries(entries []indexScore) {
	for i := 1; i < len(entries); i++ {
		x := entries[i]
		lo, hi := 0, i
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			e := entries[mid]
			if x.s < e.s || (x.s == e.s && x.i < e.i) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		copy(entries[lo+1:i+1], entries[lo:i])
		entries[lo] = x
	}
}

// signal is one accumulated observation stream: running-mean values plus a
// known mask. Repeated measurements of the same resource are averaged, so
// each extra iteration reduces the measurement variance instead of just
// replacing one noisy reading with another.
type signal struct {
	obs    sim.Vector
	known  [sim.NumResources]bool
	counts [sim.NumResources]int
}

// fold averages a new measurement into the stream.
func (g *signal) fold(r sim.Resource, v float64) {
	n := float64(g.counts[r])
	g.obs.Set(r, (g.obs.Get(r)*n+v)/(n+1))
	g.counts[r]++
	g.known[r] = true
}

// knownCount returns how many resources carry a measurement.
func (g *signal) knownCount() int {
	n := 0
	for _, k := range g.known {
		if k {
			n++
		}
	}
	return n
}

// Episode is an in-progress detection against one host. It keeps the two
// §3.3 signals separate:
//
//   - the core signal comes only from the hyperthread sibling of the
//     adversary's cores — it belongs to (at most) a single co-resident and
//     is the most reliable handle on a mixture;
//   - the uncore signal is the host-wide mixture of every co-resident.
//
// Shutter profiling adds a third stream: per-resource minima over brief
// samples, approximating the mixture during some co-resident's quietest
// phase.
//
// Create one with NewEpisode and call Step until satisfied (the controlled
// experiment stops on correct identification; a real adversary stops on
// confidence), then Candidates to disentangle co-residents.
type Episode struct {
	det *Detector
	s   *sim.Server
	adv *probe.Adversary

	core    signal
	uncore  signal
	shutter signal // minima; known only after a shutter pass
	// sigs holds the per-core sibling signatures from the latest
	// CoreSignatures pass: one 4-entry core-pressure vector per distinct
	// co-resident sharing a core with the adversary.
	sigs []sim.Vector
	// mrcSlope is the measured cache-spill response of the mixture (extra
	// observed MemBW pressure per unit of the adversary's own LLC
	// intensity); negative means not yet measured.
	mrcSlope float64

	Iterations  int
	Ticks       sim.Tick
	UsedShutter bool
	CoreShared  bool

	// muBuf backs missingUncore's return value, reused across iterations.
	muBuf [2]sim.Resource

	// obsBuf/knownBuf back combined()'s return values, reused across the
	// episode's iterations. An episode belongs to a single detection flow
	// (one goroutine), and the recommender only reads the observation
	// during Detect, so handing out the same buffers each time is safe.
	obsBuf   []float64
	knownBuf []bool

	// memo* cache the last Rec.Detect call. The recommender is immutable
	// after training and Detect is a pure function of (obs, known), so an
	// identical observation must produce an identical result. Episodes
	// re-detect without new evidence often — Step detects before and after
	// an escalation whose measurements may not change the combined view
	// (shutter folds into a stream combined() ignores, the MRC rung only
	// sets mrcSlope), and Candidates starts from the same observation the
	// last Step ended on — so roughly four in ten Detect calls repeat the
	// previous one exactly. The memo lives on the episode, not the shared
	// detector, keeping the detector concurrency-safe.
	memoValid bool
	memoObs   [sim.NumResources]float64
	memoKnown [sim.NumResources]bool
	memoRes   *mining.Result
}

// detect is Rec.Detect behind the single-entry memo. Callers treat the
// returned result as read-only (they already do: Step and Candidates hand
// it out directly), so returning the cached pointer is safe.
//
//bolt:hotpath
func (e *Episode) detect(obs []float64, known []bool) *mining.Result {
	var o [sim.NumResources]float64
	var k [sim.NumResources]bool
	copy(o[:], obs)
	copy(k[:], known)
	if e.memoValid && o == e.memoObs && k == e.memoKnown {
		return e.memoRes
	}
	res := e.det.Rec.Detect(obs, known)
	e.memoObs, e.memoKnown, e.memoRes, e.memoValid = o, k, res, true
	return res
}

// NewEpisode starts a detection episode for the adversary on server s.
func (d *Detector) NewEpisode(s *sim.Server, adv *probe.Adversary) *Episode {
	return &Episode{det: d, s: s, adv: adv, mrcSlope: -1}
}

// merge folds a profile's measurements into the per-stream observations.
//
//bolt:hotpath
func (e *Episode) merge(p probe.Profile) {
	for _, r := range p.Resources {
		if !p.Known[r] {
			continue
		}
		if r.IsCore() {
			e.core.fold(r, p.Observed.Get(r))
		} else {
			e.uncore.fold(r, p.Observed.Get(r))
		}
	}
	e.Ticks += p.Ticks
	if p.CoreShared {
		e.CoreShared = true
	}
}

// combined returns the single-victim-hypothesis observation: core and
// uncore streams merged (the core signal is genuinely the victim's when
// only one co-resident exists). The returned slices are the episode's
// reusable buffers — valid until the next combined call, which is exactly
// the lifetime the Detect calls below need.
//
//bolt:hotpath
func (e *Episode) combined() ([]float64, []bool) {
	if e.obsBuf == nil {
		e.obsBuf = make([]float64, sim.NumResources)
		e.knownBuf = make([]bool, sim.NumResources)
	}
	for r := sim.Resource(0); r < sim.NumResources; r++ {
		v, k := 0.0, false
		if r.IsCore() {
			if e.core.known[r] {
				v, k = e.core.obs.Get(r), true
			}
		} else if e.uncore.known[r] {
			v, k = e.uncore.obs.Get(r), true
		}
		e.obsBuf[r] = v
		e.knownBuf[r] = k
	}
	return e.obsBuf, e.knownBuf
}

// Step runs one profiling iteration starting at the given tick and returns
// the recommender's current single-victim view. When that view is weak the
// iteration escalates per §3.3: full core profiling when a core is shared,
// shutter profiling otherwise.
func (e *Episode) Step(start sim.Tick) *mining.Result {
	e.Iterations++
	p := e.adv.ProfileOnce(e.s, start+e.Ticks, e.det.cfg.ExtraBench)
	e.merge(p)

	obs, known := e.combined()
	res := e.detect(obs, known)
	if res.Best().Similarity >= e.det.cfg.StopSimilarity {
		return res
	}

	// Escalation (§3.3): a weak match means an unseen type or a mixture.
	// The ladder prioritises the most informative missing measurement:
	// finish the sibling's core profile, then complete the uncore mixture,
	// then hunt for quiet phases with the shutter.
	refreshSigs := func() {
		sigs, used := e.adv.CoreSignatures(e.s, start+e.Ticks)
		e.Ticks += used
		// Merging with the previous pass averages matching signatures,
		// shaving measurement noise iteration over iteration.
		e.sigs = probe.MergeSignatures(e.sigs, sigs)
		// A single signature is the lone sibling's core profile; fold it
		// into the single-victim view.
		if len(e.sigs) == 1 {
			for _, r := range sim.CoreResources() {
				e.core.fold(r, e.sigs[0].Get(r))
			}
		}
	}
	switch {
	case e.CoreShared && e.sigs == nil:
		refreshSigs()
	case e.missingUncore() != nil:
		e.merge(e.adv.ProfileUncore(e.s, start+e.Ticks, e.missingUncore()))
	case e.CoreShared && e.Iterations%2 == 0:
		refreshSigs()
	case !e.det.cfg.DisableMRC && e.mrcSlope < 0:
		slope, used := e.adv.CacheResponseSlope(e.s, start+e.Ticks)
		e.Ticks += used
		e.mrcSlope = slope
	case !e.det.cfg.DisableShutter:
		window := sim.Tick(e.det.cfg.ShutterSamples * 3)
		minV := e.adv.ShutterMin(e.s, start+e.Ticks, e.det.cfg.ShutterSamples, window)
		e.Ticks += window
		e.UsedShutter = true
		for _, r := range sim.UncoreResources() {
			e.shutter.fold(r, minV.Get(r))
		}
	}
	obs, known = e.combined()
	return e.detect(obs, known)
}

// Confidence returns the evidence score of the episode's combined
// observation so far (see Detection.Confidence).
func (e *Episode) Confidence() float64 {
	_, known := e.combined()
	return e.det.confidence(known)
}

// Grade applies the graceful-degradation rule to res, the episode's
// current recommender view: the label degrades to UnknownLabel when the
// combined observation's confidence is below the detector's floor or no
// match clears the recommender's similarity floor.
func (e *Episode) Grade(res *mining.Result) (label string, confidence float64, unknown bool) {
	confidence = e.Confidence()
	unknown = confidence < e.det.cfg.MinConfidence || !res.Confident()
	label = res.Best().Label
	if unknown {
		label = UnknownLabel
	}
	return label, confidence, unknown
}

// missingUncore lists up to two uncore resources not yet measured, or nil.
// The cap keeps each iteration within the paper's 2-5 s profiling budget;
// later iterations pick up the rest. The returned slice is backed by the
// episode's muBuf, valid until the next missingUncore call — Step consumes
// it before re-profiling, so the reuse is invisible there.
//
//bolt:hotpath
func (e *Episode) missingUncore() []sim.Resource {
	out := e.muBuf[:0]
	// Index loop over the uncore resources; ascending index order matches
	// sim.UncoreResources() exactly, without the per-call slice.
	for r := sim.Resource(0); r < sim.NumResources; r++ {
		if r.IsCore() {
			continue
		}
		if !e.uncore.known[r] {
			out = append(out, r)
			if len(out) == 2 {
				break
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Observation returns the episode's combined sparse observation (the
// single-victim hypothesis view).
func (e *Episode) Observation() (sim.Vector, [sim.NumResources]bool) {
	obs, known := e.combined()
	var v sim.Vector
	var k [sim.NumResources]bool
	for i := range obs {
		v.Set(sim.Resource(i), obs[i])
		k[i] = known[i]
	}
	return v, k
}

// saturatedFloor is the measured mixture level above which a resource is
// treated as clamped: the true aggregate demand may exceed it, so only
// underprediction is penalised there.
const saturatedFloor = 92

// kAcceptRatio is how much the mixture-fit error must improve before an
// extra co-resident hypothesis is accepted — guarding against explaining
// measurement noise with phantom tenants.
const kAcceptRatio = 0.8

// Candidates disentangles the accumulated observations into up to
// maxVictims per-co-resident results, strongest first (§3.3). The §3.3
// linear-additivity assumption is applied directly: the set of training
// profiles whose summed uncore pressure best explains the measured mixture
// is searched exhaustively (pairs, then a greedy third and fourth), with
// the hyperthread-sibling's core signature anchoring one component when a
// core is shared, and the shutter minima rewarding components that match a
// quiet-phase observation otherwise. Extra components are only accepted
// when they improve the fit substantially.
// Candidates disentangles the accumulated observations into up to
// maxVictims per-co-resident results, strongest first. The §3.3
// linear-additivity assumption is applied directly: the set of training
// profiles whose summed uncore pressure best explains the measured mixture
// is searched, with the per-core sibling signatures anchoring one
// component each (hyperthreads are never shared between VMs, so each
// signature belongs to exactly one co-resident), and the shutter minima
// rewarding components that match a quiet-phase observation. Extra
// unanchored components are accepted only when they improve the fit
// substantially.
func (e *Episode) Candidates(maxVictims int) []*mining.Result {
	if maxVictims <= 0 {
		maxVictims = 1
	}
	obs, known := e.combined()
	single := e.detect(obs, known)
	if maxVictims == 1 || e.uncore.knownCount() == 0 {
		return []*mining.Result{single}
	}

	profiles := e.det.Rec.TrainingProfiles()
	n := len(profiles)

	// Working memory for the whole search, allocated once up front: the
	// coordinate-descent intensity scalars, the scored-candidate scratch
	// behind topByScore, and the trial component sets of the greedy
	// extension and refinement loops below. The search evaluates score()
	// hundreds of times; before the hoist each evaluation allocated its
	// own copies.
	alphaBuf := make([]float64, maxVictims)
	entriesBuf := make([]indexScore, n)

	// The uncore readings the mixture fit runs against are fixed for the
	// whole search, so hoist them out of the coordinate-descent inner
	// loop: fitR/fitM hold the known, non-saturated resources the descent
	// iterates (in uncore order, so the arithmetic sequence is unchanged),
	// errR/errM the known ones the residual-error pass iterates, and
	// profT the training pressures transposed to fitR-major so the
	// residual loop reads a flat row instead of chasing a profile slice
	// per term.
	var fitR, errR []sim.Resource
	var fitM, errM []float64
	for r := sim.Resource(0); r < sim.NumResources; r++ {
		if r.IsCore() || !e.uncore.known[r] {
			continue
		}
		m := e.uncore.obs.Get(r)
		errR, errM = append(errR, r), append(errM, m)
		if m < saturatedFloor {
			fitR, fitM = append(fitR, r), append(fitM, m)
		}
	}
	profT := make([]float64, len(fitR)*n)
	for k, r := range fitR {
		row := profT[k*n : (k+1)*n]
		for i := range profiles {
			row[i] = profiles[i].Pressure[r]
		}
	}

	// Anchors: one per distinct sibling signature, capped at maxVictims.
	anchors := e.sigs
	if len(anchors) > maxVictims {
		anchors = anchors[:maxVictims]
	}

	// Mixture-fit error of a candidate component set. Each co-resident
	// runs at its own (unknown) load and deployment size, so the fit gives
	// every component an intensity scalar αᵢ ∈ [0.5, 1.15], solved by
	// regularised coordinate descent on the non-saturated resources —
	// training profiles are measured at the reference deployment.
	sumFit := func(idxs []int) float64 {
		const (
			alphaLo, alphaHi = 0.5, 1.15
			alphaPrior       = 0.85
			lambda           = 300.0 // regulariser toward the prior
		)
		alphas := alphaBuf[:len(idxs)]
		for i := range alphas {
			alphas[i] = alphaPrior
		}
		for pass := 0; pass < 12; pass++ {
			for ci, i := range idxs {
				num, den := lambda*alphaPrior, lambda
				for k := range fitR {
					row := profT[k*n : (k+1)*n]
					s := row[i]
					resid := fitM[k]
					for cj, j := range idxs {
						if cj != ci {
							resid -= alphas[cj] * row[j]
						}
					}
					num += s * resid
					den += s * s
				}
				a := num / den
				if a < alphaLo {
					a = alphaLo
				}
				if a > alphaHi {
					a = alphaHi
				}
				alphas[ci] = a
			}
		}
		err, wsum := 0.0, 0.0
		for k, r := range errR {
			m := errM[k]
			pred := 0.0
			for ci, i := range idxs {
				pred += alphas[ci] * profiles[i].Pressure[r]
			}
			d := pred - m
			if m >= saturatedFloor && d > 0 {
				d = 0 // clamped: the mixture may truly exceed the reading
			}
			err += d * d
			wsum++
		}
		if wsum == 0 {
			return 0
		}
		return mathSqrt(err / wsum)
	}

	// sigErr scores profile i against one sibling core signature. The
	// sibling runs at its own (unknown, below-peak) load, so a scalar
	// α ∈ [0.7, 1.05] is fitted first, exactly as for the uncore mixture.
	sigErr := func(sig sim.Vector, i int) float64 {
		num, den := 0.0, 0.0
		for _, r := range sim.CoreResources() {
			s := profiles[i].Pressure[r]
			num += s * sig.Get(r)
			den += s * s
		}
		alpha := 1.0
		if den > 0 {
			alpha = num / den
			if alpha < 0.7 {
				alpha = 0.7
			}
			if alpha > 1.05 {
				alpha = 1.05
			}
		}
		err, wsum := 0.0, 0.0
		for _, r := range sim.CoreResources() {
			d := alpha*profiles[i].Pressure[r] - sig.Get(r)
			err += d * d
			wsum++
		}
		return mathSqrt(err / wsum)
	}

	// Shutter anchor: reward a component that matches the quiet-phase
	// minima (the steady co-resident alone). Only meaningful when the
	// shutter actually caught a quiet phase — the minima must fall well
	// below the mean mixture somewhere; with constant-load co-residents
	// they track the mixture itself and carry no per-component signal
	// (§3.3's stated limitation).
	shutterUseful := false
	if e.UsedShutter {
		for _, r := range sim.UncoreResources() {
			if e.shutter.known[r] && e.uncore.known[r] &&
				e.shutter.obs.Get(r) < 0.72*e.uncore.obs.Get(r) &&
				e.uncore.obs.Get(r) > 25 {
				shutterUseful = true
				break
			}
		}
	}
	shutterErr := func(idxs []int) float64 {
		if !shutterUseful || e.shutter.knownCount() == 0 {
			return 0
		}
		best := mathInf()
		for _, i := range idxs {
			err, wsum := 0.0, 0.0
			for _, r := range sim.UncoreResources() {
				if !e.shutter.known[r] {
					continue
				}
				d := profiles[i].Pressure[r] - e.shutter.obs.Get(r)
				err += d * d
				wsum++
			}
			if s := mathSqrt(err / wsum); s < best {
				best = s
			}
		}
		return best * 0.4 // soft: minima are biased low
	}

	// mrcErr compares the measured cache-spill slope against what the
	// candidate set predicts (the §3.3 miss-ratio-curve extension). The
	// predicted response of component i is LLCᵢ·spillᵢ·spillScale.
	mrcErr := func(idxs []int) float64 {
		if e.mrcSlope < 0 {
			return 0
		}
		pred := 0.0
		for _, i := range idxs {
			d := sim.FromSlice(profiles[i].Pressure)
			pred += d.Get(sim.LLC) * sim.CacheSpillFactor(d) * sim.SpillScale
		}
		diff := pred - e.mrcSlope
		if diff < 0 {
			diff = -diff
		}
		return diff * 0.25 // soft term: one equation among many
	}

	// score evaluates anchored slots (first len(anchors) entries of idxs,
	// matched positionally to anchors) plus free slots.
	const coreWeight = 1.0
	score := func(idxs []int) float64 {
		s := sumFit(idxs) + shutterErr(idxs) + mrcErr(idxs)
		for ai, sig := range anchors {
			if ai < len(idxs) {
				s += coreWeight * sigErr(sig, idxs[ai]) / float64(maxInt(1, len(anchors)))
			}
		}
		return s
	}

	// Shortlists: per anchor, the profiles whose core profile matches its
	// signature; for free slots, the best lone-explanation profiles.
	const shortlist = 8
	anchorLists := make([][]int, len(anchors))
	for ai, sig := range anchors {
		anchorLists[ai] = topByScore(entriesBuf, shortlist, func(i int) float64 {
			return sigErr(sig, i) + 0.5*sumFitSingleBias(e, profiles, i)
		})
	}
	freeList := topByScore(entriesBuf, 40, func(i int) float64 {
		return sumFitSingleBias(e, profiles, i)
	})
	if shutterUseful {
		// The mixture minus the quiet-phase minima approximates the bursty
		// co-resident's own load-dependent footprint — an uncore anchor for
		// one unanchored component.
		var diff sim.Vector
		for _, r := range sim.UncoreResources() {
			if e.uncore.known[r] && e.shutter.known[r] {
				d := e.uncore.obs.Get(r) - e.shutter.obs.Get(r)
				if d < 0 {
					d = 0
				}
				diff.Set(r, d)
			}
		}
		diffErr := func(i int) float64 {
			num, den := 0.0, 0.0
			for _, r := range sim.UncoreResources() {
				if !e.uncore.known[r] || !e.shutter.known[r] {
					continue
				}
				s := profiles[i].Pressure[r]
				num += s * diff.Get(r)
				den += s * s
			}
			alpha := 1.0
			if den > 0 {
				alpha = num / den
				if alpha < 0.4 {
					alpha = 0.4
				}
				if alpha > 1.1 {
					alpha = 1.1
				}
			}
			err, wsum := 0.0, 0.0
			for _, r := range sim.UncoreResources() {
				if !e.uncore.known[r] || !e.shutter.known[r] {
					continue
				}
				d := alpha*profiles[i].Pressure[r] - diff.Get(r)
				err += d * d
				wsum++
			}
			return mathSqrt(err / wsum)
		}
		freeList = append(topByScore(entriesBuf, 10, diffErr), freeList...)
	}

	// Initial set: the best shortlist entry per anchor.
	set := make([]int, len(anchors))
	for ai := range anchors {
		set[ai] = anchorLists[ai][0]
	}
	if len(set) == 0 {
		// No anchors: start from the best single explanation.
		set = []int{freeList[0]}
	}
	bestScore := score(set)

	// Greedy extension with unanchored components, accepted only on a
	// substantial fit improvement. Without a core anchor there is no direct
	// evidence of multi-tenancy at all, so the bar is far higher — a lone
	// co-resident must not be split into phantoms.
	accept := kAcceptRatio
	if len(anchors) == 0 {
		accept = 0.45
	}
	trial := make([]int, 0, maxVictims)
	for len(set) < maxVictims {
		extBest, extScore := -1, bestScore
		for _, i := range freeList {
			trial = append(append(trial[:0], set...), i)
			if s := score(trial); s < extScore {
				extBest, extScore = i, s
			}
		}
		if extBest < 0 || extScore >= bestScore*accept {
			break
		}
		set = append(set, extBest)
		bestScore = extScore
	}

	// Coordinate-descent refinement: revisit each slot against its
	// shortlist (anchored) or the free list (unanchored), two passes. The
	// trial buffer is re-filled from set each time, and an improvement is
	// copied back rather than swapped in, so set never aliases the buffer
	// the next trial overwrites.
	for pass := 0; pass < 2; pass++ {
		for si := range set {
			candidatesFor := freeList
			if si < len(anchorLists) {
				candidatesFor = anchorLists[si]
			}
			for _, alt := range candidatesFor {
				trial = append(trial[:0], set...)
				trial[si] = alt
				if s := score(trial); s < bestScore {
					copy(set, trial)
					bestScore = s
				}
			}
		}
	}

	// A lone component with no anchors means the single-victim hypothesis
	// carries the day — return the full-distribution result for it.
	if len(set) == 1 && len(anchors) == 0 {
		return []*mining.Result{single}
	}

	out := make([]*mining.Result, 0, len(set))
	for _, i := range set {
		p := profiles[i]
		out = append(out, &mining.Result{
			Pressure: append([]float64(nil), p.Pressure...),
			Matches: []mining.Match{{
				Label:      p.Label,
				Class:      p.Class,
				Similarity: mathExpNeg(bestScore / 20),
			}},
		})
	}
	return out
}

// sumFitSingleBias scores profile i as a lone explanation of the mixture
// with one-sided error: overshoot is forgiven (another tenant may supply
// the rest), undershoot beyond the mixture is impossible and penalised.
func sumFitSingleBias(e *Episode, profiles []mining.LabeledProfile, i int) float64 {
	err, wsum := 0.0, 0.0
	for _, r := range sim.UncoreResources() {
		if !e.uncore.known[r] {
			continue
		}
		d := profiles[i].Pressure[r] - e.uncore.obs.Get(r)
		if d < 0 {
			d = 0 // the rest of the mixture covers it
		}
		err += d * d
		wsum++
	}
	if wsum == 0 {
		return 0
	}
	return mathSqrt(err / wsum)
}

// topByScore returns the indices of the k smallest scores among
// [0, len(entries)), using entries as scratch so callers evaluating
// several score functions over the same index range share one buffer.
// The returned shortlist is freshly allocated: callers hold several
// shortlists at once.
func topByScore(entries []indexScore, k int, score func(int) float64) []int {
	n := len(entries)
	for i := 0; i < n; i++ {
		entries[i] = indexScore{i, score(i)}
	}
	sortEntries(entries)
	if k > n {
		k = n
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = entries[i].i
	}
	return out
}

// maxInt returns the larger of two ints.
func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
