package core_test

import (
	"testing"

	"bolt/internal/core"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// TestDetectProfileBatchBitExact pins the seam the serving plane batches
// through: for a shared mask, every row of DetectProfileBatch must be
// bit-identical to a solo DetectProfile call on the same observation —
// pressure vector, full ranked similarity distribution, confidence, and
// label.
func TestDetectProfileBatchBitExact(t *testing.T) {
	det := core.TrainCached(workload.TrainingSpecs(42), core.Config{})
	n := det.Rec.ResourceCount()
	known := make([]bool, n)
	known[3], known[5], known[7] = true, true, true // LLC, MemBW, NetBW

	rng := stats.NewRNG(17)
	for _, batch := range []int{1, 4, 16, 64} {
		observed := make([][]float64, batch)
		for b := range observed {
			observed[b] = make([]float64, n)
			for j := range observed[b] {
				if known[j] {
					observed[b][j] = stats.Clamp(rng.Range(0, 100), 0, 100)
				}
			}
		}
		got := det.DetectProfileBatch(observed, known)
		if len(got) != batch {
			t.Fatalf("batch %d: got %d results", batch, len(got))
		}
		for b := range got {
			want := det.DetectProfile(observed[b], known)
			if got[b].Confidence != want.Confidence || got[b].Label() != want.Label() ||
				got[b].Unknown() != want.Unknown() {
				t.Fatalf("batch %d row %d: label/confidence diverge from solo path", batch, b)
			}
			for j := range want.Result.Pressure {
				if got[b].Result.Pressure[j] != want.Result.Pressure[j] {
					t.Fatalf("batch %d row %d: pressure[%d] %v != %v",
						batch, b, j, got[b].Result.Pressure[j], want.Result.Pressure[j])
				}
			}
			if len(got[b].Result.Matches) != len(want.Result.Matches) {
				t.Fatalf("batch %d row %d: match count diverges", batch, b)
			}
			for m := range want.Result.Matches {
				if got[b].Result.Matches[m] != want.Result.Matches[m] {
					t.Fatalf("batch %d row %d: match %d diverges", batch, b, m)
				}
			}
		}
	}
}

// TestDetectProfileGracefulDegradation: an empty mask is a pure-completion
// query with confidence 0, which must degrade to UnknownLabel rather than
// guess — the contract the serving plane's fault-injection tests rely on.
func TestDetectProfileGracefulDegradation(t *testing.T) {
	det := core.TrainCached(workload.TrainingSpecs(42), core.Config{})
	n := det.Rec.ResourceCount()
	pd := det.DetectProfile(make([]float64, n), make([]bool, n))
	if pd.Confidence != 0 {
		t.Fatalf("empty-mask confidence = %v, want 0", pd.Confidence)
	}
	if !pd.Unknown() || pd.Label() != core.UnknownLabel {
		t.Fatalf("empty-mask detection did not degrade: unknown=%v label=%q",
			pd.Unknown(), pd.Label())
	}

	// A fully observed canonical probe profile is high-confidence.
	obs := make([]float64, n)
	known := make([]bool, n)
	for j := range known {
		known[j] = true
		obs[j] = 40
	}
	pd = det.DetectProfile(obs, known)
	if pd.Confidence != 1 {
		t.Fatalf("fully observed confidence = %v, want 1", pd.Confidence)
	}
}
