// Package core implements Bolt itself: the detector that combines the
// measurement layer (internal/probe) with the data-mining pipeline
// (internal/mining) to identify the type and characteristics of the
// applications sharing a host with the adversary (§3.2-3.3), including
// iterative re-profiling, the multi-co-resident disentangling paths, and
// the label/characteristics scoring rules used in the paper's evaluation.
package core

import (
	"strings"

	"bolt/internal/mining"
	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/workload"
)

// Config tunes a Detector.
type Config struct {
	Recommender mining.RecommenderConfig
	// MaxIterations bounds one detection episode; the paper finds no
	// benefit past six (Fig. 7). 0 means 6.
	MaxIterations int
	// ExtraBench adds uncore benchmarks to every profiling iteration
	// (Fig. 10c sweeps this). 0 means none beyond the §3.2 default.
	ExtraBench int
	// ShutterSamples is the number of brief samples per shutter window
	// (§3.3). 0 means 20.
	ShutterSamples int
	// DisableShutter turns shutter profiling off (ablation).
	DisableShutter bool
	// DisableMRC turns the miss-ratio-curve probe off (ablation; the §3.3
	// future-work signal for constant-load mixtures).
	DisableMRC bool
	// StopSimilarity is the best-match similarity at which Detect stops
	// re-profiling. It is deliberately far above the 0.1 confidence floor:
	// the floor distinguishes "seen before" from "mixture/unseen", while
	// stopping early on a weak match wastes the remaining iterations'
	// sharpening. 0 means 0.75.
	StopSimilarity float64
	// MinConfidence is the observation-confidence floor below which a
	// detection degrades to UnknownLabel instead of guessing (graceful
	// degradation under measurement faults; see Detection.Label). The score
	// blends the fraction of the recommender's Eq. 1 weight mass that was
	// directly observed with the raw observed-entry fraction, so it is 1
	// for a fully observed vector. 0 means 0.35.
	MinConfidence float64
}

func (c Config) withDefaults() Config {
	if c.MaxIterations == 0 {
		c.MaxIterations = 6
	}
	if c.ShutterSamples == 0 {
		c.ShutterSamples = 20
	}
	if c.StopSimilarity == 0 {
		c.StopSimilarity = 0.75
	}
	if c.MinConfidence == 0 {
		c.MinConfidence = 0.35
	}
	return c
}

// Detector is a trained Bolt instance: the hybrid recommender plus the
// profiling policy. One Detector serves any number of adversary VMs.
//
// A Detector is immutable once Train returns: the recommender, the
// completer, and the byLabel lookup are built in full during training and
// only read afterwards (Detect, NewEpisode, and Tracker keep all mutable
// episode state outside the Detector). It is therefore safe for concurrent
// use by any number of goroutines — the parallel experiment runner and the
// TrainCached memo depend on this property; anything added to Detector must
// preserve it or take a lock.
type Detector struct {
	Rec *mining.Recommender
	cfg Config
	// byLabel maps a training label to a representative dense profile,
	// used to peel a matched co-resident's pressure out of a mixture.
	byLabel map[string]sim.Vector
}

// Train builds a detector from the training workload specs (the paper's
// 120-application training set).
func Train(specs []workload.Spec, cfg Config) *Detector {
	cfg = cfg.withDefaults()
	profiles := make([]mining.LabeledProfile, len(specs))
	byLabel := make(map[string]sim.Vector, len(specs))
	for i, s := range specs {
		profiles[i] = mining.LabeledProfile{
			Label:    s.Label,
			Class:    s.Class,
			Pressure: s.Base.Slice(),
		}
		if _, ok := byLabel[s.Label]; !ok {
			byLabel[s.Label] = s.Base
		}
	}
	return &Detector{
		Rec:     mining.NewRecommender(profiles, cfg.Recommender),
		cfg:     cfg,
		byLabel: byLabel,
	}
}

// TrainingProfile returns the representative dense pressure vector for a
// training label, and whether the label exists.
func (d *Detector) TrainingProfile(label string) (sim.Vector, bool) {
	v, ok := d.byLabel[label]
	return v, ok
}

// Detection is the outcome of one detection episode against one host.
type Detection struct {
	// Result is the recommender output for the primary (strongest) signal.
	Result *mining.Result
	// CoResidents holds one entry per co-resident Bolt believes it
	// disentangled, strongest first. Entry 0 mirrors Result.
	CoResidents []*mining.Result
	// Iterations is how many profiling+mining rounds the episode used.
	Iterations int
	// Ticks is the total simulated time the episode consumed.
	Ticks sim.Tick
	// UsedShutter reports whether shutter profiling ran.
	UsedShutter bool
	// CoreShared reports whether any victim shared a core with Bolt.
	CoreShared bool
	// Confidence scores the evidence behind Result in [0, 1]: the share of
	// the recommender's per-resource similarity weight that was directly
	// observed, blended with the observed-entry fraction. Fully observed
	// episodes score 1; heavy fault injection drives it down as profiles
	// arrive sparse.
	Confidence float64
	// minConfidence is the detector's floor, captured so Label/Unknown are
	// self-contained on the returned value.
	minConfidence float64
}

// UnknownLabel is what a degraded detection reports instead of a
// low-evidence guess.
const UnknownLabel = "unknown"

// Unknown reports whether the detection degraded below the confidence
// floor: either the observation itself carried too little evidence
// (Confidence below the detector's MinConfidence) or no training profile
// cleared the recommender's similarity floor.
func (det *Detection) Unknown() bool {
	return det.Confidence < det.minConfidence || !det.Result.Confident()
}

// Label returns the primary detection's label after the
// graceful-degradation rule: UnknownLabel when the evidence is too thin to
// support a guess, the best-match label otherwise. Under measurement
// faults Bolt says "don't know" rather than mislabeling.
func (det *Detection) Label() string {
	if det.Unknown() {
		return UnknownLabel
	}
	return det.Result.Best().Label
}

// Labels returns the best-match label of each disentangled co-resident.
func (det *Detection) Labels() []string {
	out := make([]string, 0, len(det.CoResidents))
	for _, r := range det.CoResidents {
		out = append(out, r.Best().Label)
	}
	return out
}

// Detect runs a full episode: up to MaxIterations steps, stopping early
// when the single-victim hypothesis is strong, then disentangles up to
// maxVictims co-residents.
func (d *Detector) Detect(s *sim.Server, adv *probe.Adversary, start sim.Tick, maxVictims int) Detection {
	e := d.NewEpisode(s, adv)
	var res *mining.Result
	for i := 0; i < d.cfg.MaxIterations; i++ {
		res = e.Step(start)
		if res.Best().Similarity >= d.cfg.StopSimilarity {
			break
		}
	}
	det := Detection{
		Result:      res,
		Iterations:  e.Iterations,
		Ticks:       e.Ticks,
		UsedShutter: e.UsedShutter,
		CoreShared:  e.CoreShared,
	}
	// Result keeps the single-victim hypothesis with its full similarity
	// distribution; CoResidents carries the mixture decomposition.
	det.CoResidents = e.Candidates(maxVictims)
	det.Confidence = e.Confidence()
	det.minConfidence = d.cfg.MinConfidence
	return det
}

// MinConfidence returns the confidence floor below which this detector's
// detections degrade to UnknownLabel.
func (d *Detector) MinConfidence() float64 { return d.cfg.MinConfidence }

// ProfileDetection is the outcome of one profile-only detection query: the
// recommender's ranked answer for a sparse observed pressure vector, plus
// the same graceful-degradation confidence scoring a full episode gets.
// This is the unit of work the detection service (internal/serve) answers;
// it skips the probing loop entirely — the caller already holds an observed
// profile — so it is a pure function of (detector, observed, known).
type ProfileDetection struct {
	// Result is the recommender output: completed pressure plus the ranked
	// similarity distribution.
	Result *mining.Result
	// Confidence scores the observation's evidence in [0, 1], exactly as
	// Detection.Confidence does for an episode.
	Confidence float64
	// minConfidence is the detector's floor, captured so Label/Unknown are
	// self-contained on the returned value.
	minConfidence float64
}

// Unknown reports whether the query degraded below the confidence floor
// (same rule as Detection.Unknown).
func (pd *ProfileDetection) Unknown() bool {
	return pd.Confidence < pd.minConfidence || !pd.Result.Confident()
}

// Label returns the best-match label, or UnknownLabel when the evidence is
// too thin to support a guess (same rule as Detection.Label).
func (pd *ProfileDetection) Label() string {
	if pd.Unknown() {
		return UnknownLabel
	}
	return pd.Result.Best().Label
}

// DetectProfile answers one profile-only query: completion of the missing
// resources, similarity ranking, and the graceful-degradation confidence
// score. known[j] marks the directly measured entries of observed. This is
// the solo reference path the service's batched answers are bit-exact
// against (TestDetectProfileBatchBitExact and the serve parity tests).
func (d *Detector) DetectProfile(observed []float64, known []bool) ProfileDetection {
	return d.profileDetection(d.Rec.Detect(observed, known), known)
}

// DetectProfileBatch answers a batch of profile-only queries sharing one
// known mask in a single fused fold-in pass (mining.DetectBatch). Row i of
// the result is bit-identical to DetectProfile(observed[i], known): the
// batched completion is bit-exact per row, and the confidence score depends
// only on the shared mask.
func (d *Detector) DetectProfileBatch(observed [][]float64, known []bool) []ProfileDetection {
	results := d.Rec.DetectBatch(observed, known)
	out := make([]ProfileDetection, len(results))
	for i, r := range results {
		out[i] = d.profileDetection(r, known)
	}
	return out
}

func (d *Detector) profileDetection(res *mining.Result, known []bool) ProfileDetection {
	return ProfileDetection{
		Result:        res,
		Confidence:    d.confidence(known),
		minConfidence: d.cfg.MinConfidence,
	}
}

// confidence scores how much evidence a combined observation mask carries:
// the fraction of the recommender's Eq. 1 weight mass (σₖ·|V[j][k]|)
// sitting on directly observed resources, blended with the raw
// observed-entry fraction. The weight-mass term makes losing a
// discriminative resource (say MemBW) cost more confidence than losing one
// the similarity stage barely reads.
func (d *Detector) confidence(known []bool) float64 {
	n := 0
	for _, k := range known {
		if k {
			n++
		}
	}
	if n == 0 {
		return 0
	}
	frac := float64(n) / float64(len(known))
	return 0.7*d.Rec.ObservedWeightMass(known) + 0.3*frac
}

// LabelMatches implements the paper's correctness rule for application
// labels (§3.4): a detection is correct when it identifies the framework or
// service (e.g. Hadoop, memcached) AND either the algorithm (e.g. SVM on
// Hadoop) or the user-load characteristics (e.g. read- vs write-heavy).
// Labels here have the form class[:algorithm-or-mix[:params]].
//
// Per-class interpretation of the second token:
//   - analytics frameworks, SPEC, webservers, databases: it names the
//     algorithm or load mix and must match exactly;
//   - memcached: it encodes the read ratio; matching means agreeing on
//     read-mostly vs write-heavy, the characteristic the paper checks;
//   - classes whose variants are arbitrary instance ids (redis, storm,
//     graphx): identifying the service is the whole label.
func LabelMatches(detected, truth string) bool {
	if detected == "" || truth == "" {
		return false
	}
	dp := strings.SplitN(detected, ":", 3)
	tp := strings.SplitN(truth, ":", 3)
	if dp[0] != tp[0] {
		return false
	}
	switch dp[0] {
	case "redis", "storm", "graphx":
		return true
	case "memcached":
		if len(dp) < 2 || len(tp) < 2 {
			return false
		}
		dr, dok := readRatio(dp[1])
		tr, tok := readRatio(tp[1])
		if !dok || !tok {
			// A malformed ratio token carries no load-mix information, so
			// it can never support a match — in particular two equally
			// malformed labels must not "agree" on write-heavy.
			return false
		}
		return (dr >= readMostlyThreshold) == (tr >= readMostlyThreshold)
	}
	if len(dp) > 1 && len(tp) > 1 {
		return dp[1] == tp[1]
	}
	return len(dp) == len(tp) // both class-only labels
}

// readMostlyThreshold is the read percentage at or above which a memcached
// load mix counts as read-mostly (§3.4 checks read- vs write-heavy).
const readMostlyThreshold = 70

// readRatio parses a memcached "rdNN" load token into its read percentage.
// ok is false for malformed tokens: a missing "rd" prefix, no digits, a
// non-digit after the prefix, or a value beyond 100 (percentages only).
func readRatio(tok string) (pct int, ok bool) {
	digits := strings.TrimPrefix(tok, "rd")
	if digits == tok || digits == "" {
		return 0, false
	}
	n := 0
	for _, c := range digits {
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 100 {
			return 0, false
		}
	}
	return n, true
}

// ClassMatches reports whether the detected label's class matches the
// truth class.
func ClassMatches(detected, truthClass string) bool {
	if detected == "" {
		return false
	}
	return strings.SplitN(detected, ":", 2)[0] == truthClass
}

// CharacteristicsMatch implements the paper's weaker correctness rule
// (Fig. 12b): even without a label, Bolt may correctly identify the
// resources a job is sensitive to. It holds when the detected pressure
// vector's dominant resource matches the truth's, or the truth's dominant
// resource appears in the detected top two.
func CharacteristicsMatch(detected []float64, truth sim.Vector) bool {
	if len(detected) != sim.NumResources {
		return false
	}
	dv := sim.FromSlice(detected)
	truthDom := truth.Dominant()
	for _, r := range dv.TopK(2) {
		if r == truthDom {
			return true
		}
	}
	return false
}
