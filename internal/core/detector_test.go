package core

import (
	"testing"

	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func trainedDetector(t *testing.T) *Detector {
	t.Helper()
	return Train(workload.TrainingSpecs(100), Config{})
}

// hostWith places the adversary plus the given victim specs on one server.
func hostWith(t *testing.T, adv *probe.Adversary, specs ...workload.Spec) *sim.Server {
	t.Helper()
	s := sim.NewServer("s0", sim.ServerConfig{})
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	for i, spec := range specs {
		app := workload.NewApp(spec, workload.Constant{Level: 1}, uint64(i+1))
		vm := &sim.VM{ID: spec.Label + string(rune('a'+i)), VCPUs: 4, App: app}
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestTrainBuildsLookup(t *testing.T) {
	d := trainedDetector(t)
	specs := workload.TrainingSpecs(100)
	if _, ok := d.TrainingProfile(specs[0].Label); !ok {
		t.Fatalf("training label %q missing from lookup", specs[0].Label)
	}
	if _, ok := d.TrainingProfile("no-such-label"); ok {
		t.Fatal("unknown label should not resolve")
	}
}

func TestDetectSingleVictim(t *testing.T) {
	d := trainedDetector(t)
	rng := stats.NewRNG(7)
	correct := 0
	victims := workload.VictimSpecs(100, 20)
	for i, spec := range victims {
		adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
		s := hostWith(t, adv, spec)
		det := d.Detect(s, adv, sim.Tick(i*1000), 1)
		if det.Result == nil || len(det.CoResidents) == 0 {
			t.Fatalf("victim %s: empty detection", spec.Label)
		}
		if ClassMatches(det.Result.Best().Label, spec.Class) {
			correct++
		}
	}
	// The paper reports >95% accuracy for a single co-resident on real
	// hardware; this substrate's 4-vCPU victim shares no core with the
	// adversary here, leaving only the six uncore resources as signal, so
	// the bar sits lower (see EXPERIMENTS.md).
	if correct < 14 {
		t.Fatalf("single-victim class accuracy %d/20, want ≥14", correct)
	}
}

func TestDetectConsumesTime(t *testing.T) {
	d := trainedDetector(t)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(8))
	s := hostWith(t, adv, workload.VictimSpecs(100, 1)[0])
	det := d.Detect(s, adv, 0, 1)
	if det.Ticks <= 0 {
		t.Fatal("detection must consume simulated time")
	}
	if det.Iterations < 1 {
		t.Fatal("detection must run at least one iteration")
	}
	// One iteration is 2-3 microbenchmarks at ≤20 ramp steps each, i.e. a
	// few seconds — the paper's 2-5 s per iteration. An iteration that
	// escalates (a shutter pass adds a ShutterSamples*3-tick window, an MRC
	// probe its ramp) can roughly double that, so the bound sits at the
	// fully escalated ceiling rather than the happy path.
	secs := det.Ticks.Seconds() / float64(det.Iterations)
	if secs > 12 {
		t.Fatalf("per-iteration time %.1fs is implausibly long", secs)
	}
}

func TestDetectMultipleCoResidents(t *testing.T) {
	d := trainedDetector(t)
	rng := stats.NewRNG(9)
	victims := workload.VictimSpecs(101, 2)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, rng.Split())
	s := hostWith(t, adv, victims...)
	det := d.Detect(s, adv, 0, 3)
	if len(det.CoResidents) == 0 {
		t.Fatal("no co-residents reported")
	}
	if len(det.CoResidents) > 3 {
		t.Fatalf("peel exceeded maxVictims: %d", len(det.CoResidents))
	}
	if len(det.Labels()) != len(det.CoResidents) {
		t.Fatal("Labels length mismatch")
	}
}

func TestEpisodeAccumulatesObservations(t *testing.T) {
	d := trainedDetector(t)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(10))
	s := hostWith(t, adv, workload.VictimSpecs(102, 1)[0])
	e := d.NewEpisode(s, adv)
	e.Step(0)
	_, known1 := e.Observation()
	e.Step(0)
	_, known2 := e.Observation()
	n1, n2 := 0, 0
	for i := range known1 {
		if known1[i] {
			n1++
		}
		if known2[i] {
			n2++
		}
	}
	if n2 < n1 {
		t.Fatalf("observations must accumulate: %d then %d", n1, n2)
	}
	if e.Iterations != 2 {
		t.Fatalf("Iterations = %d, want 2", e.Iterations)
	}
}

func TestLabelMatches(t *testing.T) {
	cases := []struct {
		detected, truth string
		want            bool
	}{
		{"hadoop:svm:L", "hadoop:svm:S", true}, // framework+algorithm match
		{"hadoop:svm:L", "hadoop:kmeans:L", false},
		{"hadoop:svm:L", "spark:svm:L", false},
		{"memcached:rd90:KB", "memcached:rd90:MB", true},
		{"memcached:rd90:KB", "memcached:rd95:MB", true},  // both read-mostly
		{"memcached:rd90:KB", "memcached:rd50:KB", false}, // read- vs write-heavy
		{"redis:v1", "redis:v2", true},                    // arbitrary instance ids
		{"webserver:static", "webserver:static", true},
		{"", "hadoop:svm:L", false},
		{"hadoop:svm:L", "", false},
		// Class-only vs variant labels: a bare class neither matches a
		// variant label nor vice versa, but two bare classes match.
		{"hadoop", "hadoop", true},
		{"hadoop", "hadoop:svm:L", false},
		{"hadoop:svm:L", "hadoop", false},
		// memcached edge ratios around the 70% read-mostly boundary.
		{"memcached:rd70:KB", "memcached:rd99:MB", true},  // both at/above 70
		{"memcached:rd69:KB", "memcached:rd70:MB", false}, // straddles the edge
		{"memcached:rd69:KB", "memcached:rd0:MB", true},   // both write-heavy
		// Malformed ratio tokens never match — not even themselves, and in
		// particular two equally malformed labels must not agree.
		{"memcached:rd:KB", "memcached:rd:KB", false},
		{"memcached:foo", "memcached:foo", false},
		{"memcached:rd1x", "memcached:rd50", false},
		{"memcached:rd9999999999999999", "memcached:rd50", false},
		{"memcached:foo", "memcached:rd50", false},
		{"memcached:rd90", "memcached:bar", false},
		{"memcached", "memcached:rd90", false}, // missing ratio token
	}
	for _, c := range cases {
		if got := LabelMatches(c.detected, c.truth); got != c.want {
			t.Errorf("LabelMatches(%q, %q) = %v, want %v", c.detected, c.truth, got, c.want)
		}
	}
}

func TestClassMatches(t *testing.T) {
	if !ClassMatches("hadoop:svm:L", "hadoop") || ClassMatches("spark:x", "hadoop") {
		t.Fatal("ClassMatches misbehaved")
	}
	if ClassMatches("", "hadoop") {
		t.Fatal("empty label should not match")
	}
}

func TestCharacteristicsMatch(t *testing.T) {
	var truth sim.Vector
	truth.Set(sim.MemBW, 90)
	truth.Set(sim.LLC, 60)

	detected := make([]float64, sim.NumResources)
	detected[sim.MemBW] = 85
	if !CharacteristicsMatch(detected, truth) {
		t.Fatal("matching dominant resource should pass")
	}

	detected = make([]float64, sim.NumResources)
	detected[sim.DiskBW] = 80
	detected[sim.MemBW] = 75 // truth's dominant in detected top-2
	if !CharacteristicsMatch(detected, truth) {
		t.Fatal("dominant in top-2 should pass")
	}

	detected = make([]float64, sim.NumResources)
	detected[sim.DiskBW] = 80
	detected[sim.NetBW] = 75
	if CharacteristicsMatch(detected, truth) {
		t.Fatal("disjoint top resources should fail")
	}

	if CharacteristicsMatch(nil, truth) {
		t.Fatal("wrong-length vector should fail")
	}
}

func TestShutterDisabled(t *testing.T) {
	d := Train(workload.TrainingSpecs(100), Config{DisableShutter: true})
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(11))
	// Two victims, neither sharing a core with the adversary (4+4+4 vCPUs
	// fit on 16 without overlap), so only the shutter path could fire.
	victims := workload.VictimSpecs(103, 2)
	s := hostWith(t, adv, victims...)
	det := d.Detect(s, adv, 0, 2)
	if det.UsedShutter {
		t.Fatal("shutter was disabled but ran")
	}
}

func TestDetectionAgainstEmptyHost(t *testing.T) {
	d := trainedDetector(t)
	adv := probe.NewAdversary("adv", 4, probe.Config{}, stats.NewRNG(12))
	s := sim.NewServer("s0", sim.ServerConfig{})
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	det := d.Detect(s, adv, 0, 3)
	// An empty host yields near-zero pressure everywhere; whatever matches
	// must not fan out into multiple phantom co-residents.
	if len(det.CoResidents) > 1 {
		t.Fatalf("empty host produced %d co-residents", len(det.CoResidents))
	}
}
