package core

import (
	"hash/fnv"
	"io"
	"math"
	"sync"

	"bolt/internal/workload"
)

// The experiment suite trains ~20 detectors per run, almost all on the same
// 120-spec catalog with the same configuration — on real hardware each
// training pass is hours of profiling, and even in simulation it dominates
// experiment start-up. TrainCached memoizes Train on the identity of its
// inputs so concurrent experiments share one trained Detector, which is safe
// because a Detector is immutable once Train returns (see the Detector doc
// comment).

// trainCacheKey identifies one training run. Specs are folded to an FNV-1a
// fingerprint of their identity-bearing fields (Label, Class, Base — the
// only fields Train reads); the config is resolved through withDefaults so
// an explicit Config{MaxIterations: 6} and the zero Config share an entry.
type trainCacheKey struct {
	fingerprint uint64
	n           int
	cfg         Config
}

// trainCacheEntry carries a once so concurrent callers with the same key
// perform a single training pass (singleflight) while callers with other
// keys proceed unblocked.
type trainCacheEntry struct {
	once sync.Once
	det  *Detector
}

// trainCacheCap bounds the memo. The suite uses a handful of distinct
// (catalog, config) pairs; the cap only matters for callers sweeping many
// seeds, where dropping an arbitrary entry merely costs a retrain.
const trainCacheCap = 64

var trainCache = struct {
	sync.Mutex
	m map[trainCacheKey]*trainCacheEntry
}{m: make(map[trainCacheKey]*trainCacheEntry)}

func fingerprintSpecs(specs []workload.Spec) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeU64 := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, s := range specs {
		io.WriteString(h, s.Label)
		h.Write([]byte{0})
		io.WriteString(h, s.Class)
		h.Write([]byte{0})
		for _, v := range s.Base.Slice() {
			writeU64(math.Float64bits(v))
		}
	}
	return h.Sum64()
}

// TrainCached is Train memoized on (specs identity, resolved config). It
// returns the same *Detector for repeated calls with equivalent inputs, and
// is safe for concurrent use: callers racing on a missing entry block on a
// single training pass rather than each training their own.
//
// The returned Detector is shared — callers must treat it as read-only,
// which the Detector API already requires.
func TrainCached(specs []workload.Spec, cfg Config) *Detector {
	key := trainCacheKey{
		fingerprint: fingerprintSpecs(specs),
		n:           len(specs),
		cfg:         cfg.withDefaults(),
	}
	trainCache.Lock()
	e, ok := trainCache.m[key]
	if !ok {
		if len(trainCache.m) >= trainCacheCap {
			// Arbitrary eviction: any entry is equally cheap to rebuild.
			for k := range trainCache.m {
				delete(trainCache.m, k)
				break
			}
		}
		e = &trainCacheEntry{}
		trainCache.m[key] = e
	}
	trainCache.Unlock()
	e.once.Do(func() { e.det = Train(specs, cfg) })
	return e.det
}
