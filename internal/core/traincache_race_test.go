package core_test

import (
	"sync"
	"testing"

	"bolt/internal/core"
	"bolt/internal/workload"
)

// TestTrainCachedConcurrentSingleflight hammers one cache key from many
// goroutines: every caller must get the identical *Detector (one training
// pass, not a race of redundant ones), and under -race the cache's locking
// must hold up. This is the exact access pattern the serving plane adds —
// boltd retrains in the background while benchmark processes and the
// experiment suite call TrainCached concurrently.
func TestTrainCachedConcurrentSingleflight(t *testing.T) {
	specs := workload.TrainingSpecs(1001) // a seed no other test primes
	const callers = 16
	dets := make([]*core.Detector, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			dets[i] = core.TrainCached(specs, core.Config{})
		}(i)
	}
	close(start)
	wg.Wait()
	for i := 1; i < callers; i++ {
		if dets[i] != dets[0] {
			t.Fatalf("caller %d got a different detector pointer: singleflight broken", i)
		}
	}
}

// TestTrainCachedDefaultsResolvedKey: the cache key resolves the config
// through withDefaults, so the zero Config and an explicitly spelled-out
// default config share one entry — concurrently, too.
func TestTrainCachedDefaultsResolvedKey(t *testing.T) {
	specs := workload.TrainingSpecs(1002)
	cfgs := []core.Config{
		{},
		{MaxIterations: 6},
		{MaxIterations: 6, ShutterSamples: 20, StopSimilarity: 0.75, MinConfidence: 0.35},
	}
	dets := make([]*core.Detector, len(cfgs))
	var wg sync.WaitGroup
	for i, cfg := range cfgs {
		wg.Add(1)
		go func(i int, cfg core.Config) {
			defer wg.Done()
			dets[i] = core.TrainCached(specs, cfg)
		}(i, cfg)
	}
	wg.Wait()
	for i := 1; i < len(dets); i++ {
		if dets[i] != dets[0] {
			t.Fatalf("config %d resolved to a different cache entry than the zero config", i)
		}
	}
}

// TestTrainCachedEvictionHammer drives the cache far past its capacity from
// concurrent callers with many distinct small keys, so eviction races
// against singleflight misses. Correctness here is "no race, no panic, and
// every caller gets a detector trained on its own specs" — pointer identity
// across calls is not guaranteed once eviction starts.
func TestTrainCachedEvictionHammer(t *testing.T) {
	// Small spec sets keep each training pass cheap; 96 distinct keys
	// overflow the 64-entry cap with churn to spare.
	const keys, callers = 96, 4
	specSets := make([][]workload.Spec, keys)
	for k := range specSets {
		specSets[k] = workload.TrainingSpecs(uint64(2000 + k))[:6]
	}
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < keys; k++ {
				// Stagger start points so callers collide on different keys.
				specs := specSets[(k+c*keys/callers)%keys]
				det := core.TrainCached(specs, core.Config{})
				if det == nil {
					t.Error("TrainCached returned nil")
					return
				}
				if got := len(det.Profiles()); got != len(specs) {
					t.Errorf("detector trained on %d specs, want %d", got, len(specs))
					return
				}
			}
		}(c)
	}
	wg.Wait()
}
