package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"bolt/internal/mining"
	"bolt/internal/sim"
	"bolt/internal/workload"
)

// profileFile is the on-disk representation of a training set. Shipping
// the trained profiles (rather than retraining from the catalog) is how a
// real deployment would distribute Bolt: profiling the 120 reference
// workloads takes hours on real hardware, while the file is a few KB.
type profileFile struct {
	Version  int             `json:"version"`
	Profiles []storedProfile `json:"profiles"`
}

type storedProfile struct {
	Label    string    `json:"label"`
	Class    string    `json:"class"`
	Pressure []float64 `json:"pressure"`
}

// profileFileVersion guards against silently loading an incompatible dump.
const profileFileVersion = 1

// SaveProfiles writes the detector's training profiles as JSON.
func (d *Detector) SaveProfiles(w io.Writer) error {
	file := profileFile{Version: profileFileVersion}
	for _, p := range d.Rec.TrainingProfiles() {
		file.Profiles = append(file.Profiles, storedProfile{
			Label:    p.Label,
			Class:    p.Class,
			Pressure: p.Pressure,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(file)
}

// LoadProfiles reads a profile dump and trains a detector from it with the
// given configuration.
func LoadProfiles(r io.Reader, cfg Config) (*Detector, error) {
	var file profileFile
	if err := json.NewDecoder(r).Decode(&file); err != nil {
		return nil, fmt.Errorf("core: decoding profiles: %w", err)
	}
	if file.Version != profileFileVersion {
		return nil, fmt.Errorf("core: profile file version %d, want %d",
			file.Version, profileFileVersion)
	}
	if len(file.Profiles) == 0 {
		return nil, fmt.Errorf("core: profile file contains no profiles")
	}
	specs := make([]workload.Spec, 0, len(file.Profiles))
	for i, p := range file.Profiles {
		if p.Label == "" {
			return nil, fmt.Errorf("core: profile %d has no label", i)
		}
		if len(p.Pressure) != sim.NumResources {
			return nil, fmt.Errorf("core: profile %q has %d resources, want %d",
				p.Label, len(p.Pressure), sim.NumResources)
		}
		// Pressure values are percentages of a resource's capacity. A NaN,
		// infinity, or out-of-range entry would flow straight into the SVD
		// and poison every similarity score the detector ever produces, so
		// reject the file rather than train on it.
		for j, v := range p.Pressure {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("core: profile %q pressure[%d] is %v, want a finite value in [0,100]",
					p.Label, j, v)
			}
			if v < 0 || v > 100 {
				return nil, fmt.Errorf("core: profile %q pressure[%d] = %v outside [0,100]",
					p.Label, j, v)
			}
		}
		specs = append(specs, workload.Spec{
			Label: p.Label,
			Class: p.Class,
			Base:  sim.FromSlice(p.Pressure),
		})
	}
	return Train(specs, cfg), nil
}

// Profiles returns the detector's training set as labelled profiles (a
// copy-free view; treat as read-only).
func (d *Detector) Profiles() []mining.LabeledProfile {
	return d.Rec.TrainingProfiles()
}
