package core

import (
	"bolt/internal/mining"
	"bolt/internal/probe"
	"bolt/internal/sim"
)

// Observation is one entry of a Tracker's detection history.
type Observation struct {
	At        sim.Tick
	Detection Detection
	// PhaseChange marks observations whose best label diverged from the
	// previous observation's — the victim (or its load) changed (§3.3:
	// cloud users run consecutive jobs on long-lived instances).
	PhaseChange bool
}

// TrackerConfig tunes continuous monitoring.
type TrackerConfig struct {
	// Interval between detections; 0 means 20 s (the paper's default,
	// Fig. 10a: accuracy collapses past ~30 s against phase-changing
	// victims).
	Interval sim.Tick
	// MaxVictims bounds the disentangling per detection; 0 means 5.
	MaxVictims int
	// History bounds the retained observations; 0 means 128.
	History int
}

func (c TrackerConfig) withDefaults() TrackerConfig {
	if c.Interval == 0 {
		c.Interval = 20 * sim.TicksPerSecond
	}
	if c.MaxVictims == 0 {
		c.MaxVictims = 5
	}
	if c.History == 0 {
		c.History = 128
	}
	return c
}

// Tracker runs Bolt periodically against one host, maintaining a rolling
// detection history and flagging phase changes. This is the library form
// of the periodic re-profiling §3.3 prescribes (and the machinery behind
// the Fig. 8 timeline): detection results go stale as co-residents change,
// so a real adversary keeps the loop running for as long as the instance
// lives.
type Tracker struct {
	det  *Detector
	s    *sim.Server
	adv  *probe.Adversary
	cfg  TrackerConfig
	hist []Observation
	next sim.Tick
}

// NewTracker builds a tracker for the adversary on server s. The first
// Advance call detects immediately.
func (d *Detector) NewTracker(s *sim.Server, adv *probe.Adversary, cfg TrackerConfig) *Tracker {
	return &Tracker{det: d, s: s, adv: adv, cfg: cfg.withDefaults()}
}

// Advance moves simulated time forward to now, running every detection the
// interval schedule calls for, and returns the observations produced.
func (t *Tracker) Advance(now sim.Tick) []Observation {
	var produced []Observation
	for t.next <= now {
		at := t.next
		det := t.det.Detect(t.s, t.adv, at, t.cfg.MaxVictims)
		obs := Observation{At: at, Detection: det}
		if last, ok := t.Latest(); ok {
			obs.PhaseChange = last.Detection.Result.Best().Label != det.Result.Best().Label
		}
		t.hist = append(t.hist, obs)
		if len(t.hist) > t.cfg.History {
			t.hist = t.hist[len(t.hist)-t.cfg.History:]
		}
		produced = append(produced, obs)
		// Detection itself consumes time; the next slot starts after both
		// the interval and the profiling cost.
		step := t.cfg.Interval
		if det.Ticks > step {
			step = det.Ticks
		}
		t.next = at + step
	}
	return produced
}

// Latest returns the most recent observation.
func (t *Tracker) Latest() (Observation, bool) {
	if len(t.hist) == 0 {
		return Observation{}, false
	}
	return t.hist[len(t.hist)-1], true
}

// History returns the retained observations, oldest first.
func (t *Tracker) History() []Observation {
	return append([]Observation(nil), t.hist...)
}

// PhaseChanges returns the observations flagged as phase changes.
func (t *Tracker) PhaseChanges() []Observation {
	var out []Observation
	for _, o := range t.hist {
		if o.PhaseChange {
			out = append(out, o)
		}
	}
	return out
}

// CurrentBest returns the latest best match, or a zero Match when no
// detection has run yet.
func (t *Tracker) CurrentBest() mining.Match {
	last, ok := t.Latest()
	if !ok {
		return mining.Match{}
	}
	return last.Detection.Result.Best()
}
