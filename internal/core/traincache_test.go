package core

import (
	"sync"
	"testing"

	"bolt/internal/workload"
)

func TestTrainCachedReturnsSameDetector(t *testing.T) {
	specs := workload.TrainingSpecs(400)
	a := TrainCached(specs, Config{})
	b := TrainCached(specs, Config{})
	if a != b {
		t.Fatal("identical specs+config should share one detector")
	}
	// The zero config and its resolved form are the same training run.
	c := TrainCached(specs, Config{MaxIterations: 6, ShutterSamples: 20, StopSimilarity: 0.75})
	if a != c {
		t.Fatal("explicitly defaulted config should hit the zero-config entry")
	}
	// Rebuilding the spec slice must not defeat the cache: identity is the
	// content fingerprint, not the slice header.
	d := TrainCached(workload.TrainingSpecs(400), Config{})
	if a != d {
		t.Fatal("equal spec content should hit the cache")
	}
}

func TestTrainCachedDistinguishesInputs(t *testing.T) {
	specs := workload.TrainingSpecs(401)
	base := TrainCached(specs, Config{})
	if other := TrainCached(workload.TrainingSpecs(402), Config{}); other == base {
		t.Fatal("different training seed must not share a detector")
	}
	if other := TrainCached(specs, Config{DisableShutter: true}); other == base {
		t.Fatal("different config must not share a detector")
	}
	if other := TrainCached(specs[:len(specs)-1], Config{}); other == base {
		t.Fatal("different spec count must not share a detector")
	}
}

func TestTrainCachedMatchesTrain(t *testing.T) {
	specs := workload.TrainingSpecs(403)
	cached := TrainCached(specs, Config{})
	fresh := Train(specs, Config{})
	cp, fp := cached.Profiles(), fresh.Profiles()
	if len(cp) != len(fp) {
		t.Fatalf("cached detector has %d profiles, fresh has %d", len(cp), len(fp))
	}
	for i := range cp {
		if cp[i].Label != fp[i].Label {
			t.Fatalf("profile %d label %q vs %q", i, cp[i].Label, fp[i].Label)
		}
	}
}

// TestTrainCachedConcurrent hammers one key from many goroutines: all must
// observe the same detector, and (under -race) the single training pass must
// not race with concurrent lookups.
func TestTrainCachedConcurrent(t *testing.T) {
	specs := workload.TrainingSpecs(404)
	const goroutines = 16
	dets := make([]*Detector, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			dets[i] = TrainCached(specs, Config{})
		}(i)
	}
	wg.Wait()
	for i := 1; i < goroutines; i++ {
		if dets[i] != dets[0] {
			t.Fatalf("goroutine %d got a different detector", i)
		}
	}
}

func TestTrainCachedBounded(t *testing.T) {
	specs := workload.TrainingSpecs(405)
	// Distinct configs force distinct entries well past the cap.
	for i := 0; i < trainCacheCap+8; i++ {
		TrainCached(specs[:4], Config{ExtraBench: i + 1})
	}
	trainCache.Lock()
	n := len(trainCache.m)
	trainCache.Unlock()
	if n > trainCacheCap {
		t.Fatalf("cache grew to %d entries, cap is %d", n, trainCacheCap)
	}
}
