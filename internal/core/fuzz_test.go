package core

import (
	"strings"
	"testing"

	"bolt/internal/sim"
)

// FuzzLabelMatches: the matcher must never panic, must be reflexive for
// well-formed labels, and must respect class boundaries.
func FuzzLabelMatches(f *testing.F) {
	f.Add("hadoop:svm:L", "hadoop:svm:S")
	f.Add("memcached:rd90:KB", "memcached:rd50:KB")
	f.Add("redis:v1", "redis:v2")
	f.Add("", "x")
	f.Add("a:b:c:d:e", "a:b")
	f.Add("memcached:rdXX", "memcached:rd90")
	f.Fuzz(func(t *testing.T, a, b string) {
		got := LabelMatches(a, b)
		// Class boundary: labels with different first tokens never match.
		ca := strings.SplitN(a, ":", 2)[0]
		cb := strings.SplitN(b, ":", 2)[0]
		if got && ca != cb {
			t.Fatalf("LabelMatches(%q, %q) crossed the class boundary", a, b)
		}
		// Reflexivity for well-formed non-empty labels. A memcached label
		// with a malformed ratio token is the deliberate exception: it
		// carries no load-mix information and never matches, itself included.
		if a != "" && !LabelMatches(a, a) {
			parts := strings.SplitN(a, ":", 3)
			malformedMemcached := parts[0] == "memcached"
			if len(parts) >= 2 {
				_, ok := readRatio(parts[1])
				malformedMemcached = parts[0] == "memcached" && !ok
			}
			if !malformedMemcached {
				t.Fatalf("LabelMatches(%q, %q) not reflexive", a, a)
			}
		}
		// Symmetry of the class test.
		if ClassMatches(a, cb) && ca != cb {
			t.Fatalf("ClassMatches(%q, %q) crossed the boundary", a, cb)
		}
	})
}

// FuzzReadRatio: arbitrary tokens must parse without panicking; only
// well-formed rdNN tokens with NN in [0, 100] parse at all, and the parsed
// percentage must round-trip the digit string.
func FuzzReadRatio(f *testing.F) {
	f.Add("rd90")
	f.Add("rd")
	f.Add("rd9999999999999999")
	f.Add("wr50")
	f.Add("rd-1")
	f.Fuzz(func(t *testing.T, tok string) {
		pct, ok := readRatio(tok)
		if !ok {
			if pct != 0 {
				t.Fatalf("readRatio(%q) returned %d with ok=false", tok, pct)
			}
			return
		}
		if !strings.HasPrefix(tok, "rd") {
			t.Fatalf("readRatio(%q) ok without the rd prefix", tok)
		}
		if pct < 0 || pct > 100 {
			t.Fatalf("readRatio(%q) = %d outside [0, 100]", tok, pct)
		}
	})
}

// FuzzCharacteristicsMatch: arbitrary detected vectors must never panic.
func FuzzCharacteristicsMatch(f *testing.F) {
	f.Add(10, 50.0)
	f.Add(0, 0.0)
	f.Add(3, -5.0)
	f.Fuzz(func(t *testing.T, n int, fill float64) {
		if n < 0 || n > 1000 {
			return
		}
		detected := make([]float64, n)
		for i := range detected {
			detected[i] = fill
		}
		var truth sim.Vector
		truth.Set(sim.LLC, 80)
		_ = CharacteristicsMatch(detected, truth)
	})
}
