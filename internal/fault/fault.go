// Package fault implements a deterministic, seed-driven fault-injection
// plane for the probe/detection pipeline. Bolt's real-cloud evaluation
// (§3.4-3.5, 200 EC2 instances) succeeds despite measurement pathologies
// the well-behaved Gaussian noise model cannot produce: ramps interrupted
// by scheduler churn, co-residents arriving and departing mid-profile, and
// contention spikes corrupting individual samples. This package injects
// four such fault classes into the simulated pipeline so the detection
// stack's graceful degradation can be exercised and measured:
//
//   - Dropout: a completed ramp measurement is lost before it reaches the
//     profile, so the pressure vector goes out sparse (Profile.Sparse).
//   - Corruption: a single sensor reading picks up a bounded spike before
//     the adversary sees it (a sim.ObservationFault hook).
//   - Churn: a co-resident VM is removed mid-profile and re-placed at a
//     later ramp boundary, exercising the observation plane's
//     snapshot-epoch discipline.
//   - ProbeFailure: a ramp produces no usable signal and must be retried
//     with capped exponential backoff.
//
// Determinism contract: a Plane draws exclusively from its own stats.RNG
// stream (handed in by the owner via rng.Split), so injection decisions
// never shift the probe's measurement-noise stream. A nil *Plane — which
// is what New returns for a disabled Config — is a complete no-op on every
// method and consumes zero random draws, so a run with fault rate 0 is
// byte-identical to a run without the fault plane compiled in at all.
package fault

import (
	"fmt"
	"sync/atomic"

	"bolt/internal/sim"
	"bolt/internal/stats"
)

// Class enumerates the injectable fault classes.
type Class int

// The four fault classes, in injection-report order.
const (
	Dropout Class = iota
	Corruption
	Churn
	ProbeFailure
	NumClasses = 4
)

var classNames = [NumClasses]string{"dropout", "corruption", "churn", "probe-failure"}

// String returns the class name used in experiment tables.
func (c Class) String() string {
	if c < 0 || int(c) >= NumClasses {
		return fmt.Sprintf("Class(%d)", int(c))
	}
	return classNames[c]
}

// Per-opportunity probability scaling. The headline Config.Rate is the
// per-ramp probability of the two measurement-level classes (dropout,
// probe failure). The other two classes fire on much more frequent
// opportunities — corruption on every single sensor reading (a ramp takes
// ~20 readings) and churn on every ramp boundary — so their probabilities
// are scaled down to keep one headline knob meaningful across classes.
const (
	corruptionPerReading = 1.0 / 8
	churnPerBoundary     = 1.0 / 4
)

// Config selects the fault intensity and per-class parameters. The zero
// value injects nothing.
type Config struct {
	// Rate is the headline fault intensity in [0, 1]: the per-ramp
	// probability of a dropout and of a transient probe failure, and the
	// base for the scaled-down corruption and churn probabilities. Values
	// outside [0, 1] are clamped.
	Rate float64

	// SpikeMax bounds a corruption spike's magnitude in pressure points
	// (the corrupted reading is re-clamped to [0, 100]). 0 means 30.
	SpikeMax float64

	// MaxRetries caps how many times a transiently failed ramp is retried
	// before the measurement is abandoned. 0 means 3.
	MaxRetries int

	// BackoffCap caps the exponential retry backoff in ticks (1, 2, 4, ...
	// up to the cap). 0 means 8.
	BackoffCap sim.Tick

	// DisableDropout, DisableCorruption, DisableChurn and
	// DisableProbeFailure turn off individual classes, for experiments
	// isolating one pathology.
	DisableDropout      bool
	DisableCorruption   bool
	DisableChurn        bool
	DisableProbeFailure bool
}

// Enabled reports whether this config injects anything.
func (c Config) Enabled() bool { return c.Rate > 0 }

func (c Config) withDefaults() Config {
	if c.Rate < 0 {
		c.Rate = 0
	}
	if c.Rate > 1 {
		c.Rate = 1
	}
	if c.SpikeMax == 0 {
		c.SpikeMax = 30
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 8
	}
	return c
}

// Plane injects faults for one adversary. It is not safe for concurrent
// use; each adversary owns one plane, mirroring how each adversary owns
// one measurement-noise RNG stream.
type Plane struct {
	cfg    Config
	rng    *stats.RNG
	counts [NumClasses]uint64

	// churned is the co-resident the churn class currently holds removed,
	// and churnedFrom the server it came off; it is re-placed at the next
	// ramp boundary or at Settle, whichever comes first.
	churned     *sim.VM
	churnedFrom *sim.Server
}

var _ sim.ObservationFault = (*Plane)(nil)

// New builds a fault plane drawing from rng, which must be a dedicated
// stream (rng.Split() from the owner's stream). For a disabled config New
// returns nil without touching rng — a nil *Plane is a valid, method-safe
// no-op plane.
func New(cfg Config, rng *stats.RNG) *Plane {
	cfg = cfg.withDefaults()
	if !cfg.Enabled() {
		return nil
	}
	return &Plane{cfg: cfg, rng: rng}
}

// Enabled reports whether the plane injects anything. It is the nil check
// callers use to keep the disabled path free of fault logic.
func (p *Plane) Enabled() bool { return p != nil }

// Counts returns how many faults of each class have been injected so far,
// indexed by Class.
func (p *Plane) Counts() [NumClasses]uint64 {
	if p == nil {
		return [NumClasses]uint64{}
	}
	return p.counts
}

// MaxRetries returns the retry cap for transiently failed ramps (0 for a
// disabled plane, where no ramp ever fails).
func (p *Plane) MaxRetries() int {
	if p == nil {
		return 0
	}
	return p.cfg.MaxRetries
}

// BackoffCap returns the backoff ceiling in ticks for ramp retries.
func (p *Plane) BackoffCap() sim.Tick {
	if p == nil {
		return 0
	}
	return p.cfg.BackoffCap
}

// fire draws one class decision from the plane's stream and counts it.
// Disabled classes draw nothing, so per-class disables are themselves
// deterministic config, not stream-consuming branches.
func (p *Plane) fire(c Class, scale float64, disabled bool) bool {
	if disabled || !p.rng.Bool(p.cfg.Rate*scale) {
		return false
	}
	p.counts[c]++
	return true
}

// DropMeasurement reports whether a completed ramp measurement for r is
// lost before it reaches the profile (the dropout class). The ticks were
// still spent; only the value is gone, so the profile entry stays
// unobserved and the vector goes out sparse.
func (p *Plane) DropMeasurement(r sim.Resource) bool {
	if p == nil {
		return false
	}
	return p.fire(Dropout, 1, p.cfg.DisableDropout)
}

// ProbeFailed reports whether a ramp attempt for r produced no usable
// signal (the transient-probe-failure class); the caller retries with
// capped exponential backoff.
func (p *Plane) ProbeFailed(r sim.Resource) bool {
	if p == nil {
		return false
	}
	return p.fire(ProbeFailure, 1, p.cfg.DisableProbeFailure)
}

// Perturb implements sim.ObservationFault: with the corruption class's
// per-reading probability it adds a bounded uniform spike to the sensor
// reading v and re-clamps to the pressure range [0, 100].
func (p *Plane) Perturb(observer *sim.VM, r sim.Resource, t sim.Tick, v float64) float64 {
	if p == nil || !p.fire(Corruption, corruptionPerReading, p.cfg.DisableCorruption) {
		return v
	}
	return stats.Clamp(v+p.rng.Range(-p.cfg.SpikeMax, p.cfg.SpikeMax), 0, 100)
}

// FaultProfile injects the two request-level fault classes into an already
// assembled observed profile — the shape live detection-service traffic has
// (internal/serve), where the probing loop that the ramp-level classes hook
// is on the client's side of the wire. Each known entry independently
// suffers dropout (the measurement is lost: known[j] cleared, the value
// zeroed so no stale reading leaks into a "sparse" vector) or, surviving
// that, per-reading corruption via Perturb. Both slices are mutated in
// place; callers serving shared request memory must pass copies. It returns
// how many entries were dropped and how many corrupted.
//
// Draw order is fixed (ascending j, dropout before corruption), so a
// single-owner plane replays bit-identically for the same request sequence.
func (p *Plane) FaultProfile(observed []float64, known []bool) (dropped, corrupted int) {
	if p == nil {
		return 0, 0
	}
	for j := range known {
		if !known[j] {
			continue
		}
		r := sim.Resource(j)
		if p.DropMeasurement(r) {
			known[j] = false
			observed[j] = 0
			dropped++
			continue
		}
		if v := p.Perturb(nil, r, 0, observed[j]); v != observed[j] {
			observed[j] = v
			corrupted++
		}
	}
	return dropped, corrupted
}

// MaybeChurn runs the victim-churn class at a ramp boundary. A co-resident
// held removed by a previous boundary is re-placed first, then with the
// class's per-boundary probability one co-resident of adv on s (never adv
// itself) is removed until the next boundary. Both the removal and the
// re-placement bump the server's placement epoch, so the observation
// plane's snapshot discipline is exercised mid-profile exactly as a real
// scheduler migration would.
func (p *Plane) MaybeChurn(s *sim.Server, adv *sim.VM) {
	if p == nil || p.cfg.DisableChurn {
		return
	}
	p.restore()
	if !p.rng.Bool(p.cfg.Rate * churnPerBoundary) {
		return
	}
	// Candidate selection walks placement order (deterministic), skipping
	// the adversary; Intn picks uniformly among co-residents.
	vms := s.VMs()
	n := 0
	for _, vm := range vms {
		if vm != adv {
			vms[n] = vm
			n++
		}
	}
	if n == 0 {
		return
	}
	vm := vms[p.rng.Intn(n)]
	if !s.Remove(vm.ID) {
		return
	}
	p.counts[Churn]++
	p.churned, p.churnedFrom = vm, s
}

// Settle re-places any co-resident the churn class still holds removed.
// The probe calls it at the end of each profiling pass so churn is a
// transient, per-profile perturbation: the cluster always returns to its
// scheduled placement before the next episode step observes it.
func (p *Plane) Settle() {
	if p == nil {
		return
	}
	p.restore()
}

func (p *Plane) restore() {
	if p.churned == nil {
		return
	}
	// Nothing else has been placed since the removal, so the freed slots
	// are still free and re-placement cannot fail; the error is checked
	// anyway so a violated assumption surfaces as a missing VM in the
	// experiment's ground truth rather than a silent inconsistency.
	_ = p.churnedFrom.Place(p.churned)
	p.churned, p.churnedFrom = nil, nil
}

// defaultCfg is the process-wide fallback config, installed by the
// boltbench -faultrate flag before the experiment suite starts (mirroring
// mining.SetForceFixedFoldIn). Adversaries whose own probe config carries
// a disabled fault config fall back to it.
var defaultCfg atomic.Value // Config

// SetDefault installs cfg as the process-wide default fault config. Call
// it once, before experiments start; flipping it mid-run would make
// results depend on scheduling.
func SetDefault(cfg Config) { defaultCfg.Store(cfg) }

// Default returns the process-wide default fault config (zero value if
// SetDefault was never called).
func Default() Config {
	if v := defaultCfg.Load(); v != nil {
		return v.(Config)
	}
	return Config{}
}
