package fault

import (
	"testing"

	"bolt/internal/sim"
	"bolt/internal/stats"
)

// constApp is the minimal Demander for placement-only tests.
type constApp struct{}

func (constApp) Demand(sim.Tick) sim.Vector { return sim.Vector{} }
func (constApp) Sensitivity() sim.Vector    { return sim.Vector{} }

func newVM(id string, vcpus int) *sim.VM {
	return &sim.VM{ID: id, VCPUs: vcpus, App: constApp{}}
}

func TestDisabledConfigBuildsNilPlane(t *testing.T) {
	rng := stats.NewRNG(1)
	before := rng.Uint64()
	rng = stats.NewRNG(1)
	for _, cfg := range []Config{{}, {Rate: 0}, {Rate: -0.5}} {
		if p := New(cfg, rng); p != nil {
			t.Fatalf("New(%+v) = %v, want nil", cfg, p)
		}
	}
	// New must not have touched the stream for disabled configs.
	if got := rng.Uint64(); got != before {
		t.Fatalf("New consumed random draws for a disabled config: first draw %d, want %d", got, before)
	}
}

func TestNilPlaneIsANoOp(t *testing.T) {
	var p *Plane
	if p.Enabled() {
		t.Error("nil plane reports Enabled")
	}
	if c := p.Counts(); c != [NumClasses]uint64{} {
		t.Errorf("nil plane Counts = %v, want all zero", c)
	}
	if got := p.MaxRetries(); got != 0 {
		t.Errorf("nil plane MaxRetries = %d, want 0", got)
	}
	if got := p.BackoffCap(); got != 0 {
		t.Errorf("nil plane BackoffCap = %d, want 0", got)
	}
	if p.DropMeasurement(sim.LLC) {
		t.Error("nil plane drops measurements")
	}
	if p.ProbeFailed(sim.LLC) {
		t.Error("nil plane fails probes")
	}
	if got := p.Perturb(nil, sim.LLC, 0, 42.5); got != 42.5 {
		t.Errorf("nil plane Perturb(42.5) = %g, want passthrough", got)
	}

	s := sim.NewServer("s", sim.ServerConfig{})
	adv := newVM("adv", 2)
	if err := s.Place(adv); err != nil {
		t.Fatalf("Place: %v", err)
	}
	vic := newVM("vic", 2)
	if err := s.Place(vic); err != nil {
		t.Fatalf("Place: %v", err)
	}
	p.MaybeChurn(s, adv)
	if got := len(s.VMs()); got != 2 {
		t.Errorf("nil plane MaybeChurn changed placement: %d VMs, want 2", got)
	}
	p.Settle() // must not panic
}

func TestConfigDefaultsAndClamping(t *testing.T) {
	p := New(Config{Rate: 0.5}, stats.NewRNG(2))
	if !p.Enabled() {
		t.Fatal("plane with Rate 0.5 not enabled")
	}
	if got := p.MaxRetries(); got != 3 {
		t.Errorf("default MaxRetries = %d, want 3", got)
	}
	if got := p.BackoffCap(); got != sim.Tick(8) {
		t.Errorf("default BackoffCap = %d, want 8", got)
	}

	// Rates above 1 clamp to 1: every per-ramp decision fires.
	p = New(Config{Rate: 7}, stats.NewRNG(3))
	for i := 0; i < 50; i++ {
		if !p.DropMeasurement(sim.MemBW) {
			t.Fatalf("clamped rate-1 plane skipped dropout at draw %d", i)
		}
	}
	if got := p.Counts()[Dropout]; got != 50 {
		t.Errorf("Counts[Dropout] = %d, want 50", got)
	}
}

func TestDisabledClassesDrawNothing(t *testing.T) {
	// With every class disabled the stream must stay untouched, so a
	// later enabled decision sees exactly the draws a fresh stream would.
	cfg := Config{Rate: 1, DisableDropout: true, DisableCorruption: true,
		DisableChurn: true, DisableProbeFailure: true}
	p := New(cfg, stats.NewRNG(11))
	for i := 0; i < 20; i++ {
		if p.DropMeasurement(sim.CPU) || p.ProbeFailed(sim.CPU) {
			t.Fatal("disabled class fired")
		}
		if got := p.Perturb(nil, sim.CPU, sim.Tick(i), 50); got != 50 {
			t.Fatalf("disabled corruption perturbed reading to %g", got)
		}
	}
	if c := p.Counts(); c != [NumClasses]uint64{} {
		t.Fatalf("disabled classes counted faults: %v", c)
	}
	want := stats.NewRNG(11).Uint64()
	if got := p.rng.Uint64(); got != want {
		t.Fatalf("disabled classes consumed draws: next = %d, want %d", got, want)
	}
}

func TestDeterministicDecisionSequence(t *testing.T) {
	run := func() ([]bool, [NumClasses]uint64, []float64) {
		p := New(Config{Rate: 0.3}, stats.NewRNG(7))
		var decisions []bool
		var vals []float64
		for i := 0; i < 200; i++ {
			r := sim.Resource(i % sim.NumResources)
			decisions = append(decisions, p.DropMeasurement(r), p.ProbeFailed(r))
			vals = append(vals, p.Perturb(nil, r, sim.Tick(i), 50))
		}
		return decisions, p.Counts(), vals
	}
	d1, c1, v1 := run()
	d2, c2, v2 := run()
	if c1 != c2 {
		t.Fatalf("counts diverged: %v vs %v", c1, c2)
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatalf("decision %d diverged", i)
		}
	}
	for i := range v1 {
		if v1[i] != v2[i] {
			t.Fatalf("perturbed value %d diverged: %g vs %g", i, v1[i], v2[i])
		}
	}
}

func TestPerturbSpikesAreBounded(t *testing.T) {
	const spikeMax = 25.0
	p := New(Config{Rate: 1, SpikeMax: spikeMax}, stats.NewRNG(5))
	changed := 0
	for i := 0; i < 800; i++ {
		v := 50.0
		got := p.Perturb(nil, sim.LLC, sim.Tick(i), v)
		if got < 0 || got > 100 {
			t.Fatalf("Perturb output %g outside [0, 100]", got)
		}
		if got != v {
			changed++
			if diff := got - v; diff > spikeMax || diff < -spikeMax {
				t.Fatalf("spike magnitude %g exceeds SpikeMax %g", diff, spikeMax)
			}
		}
	}
	if changed == 0 {
		t.Fatal("corruption at rate 1 never perturbed a reading")
	}
	// Some spikes may land exactly on v in principle, but never more
	// faults counted than readings taken, and at least every changed
	// reading was a counted fault.
	if got := p.Counts()[Corruption]; got < uint64(changed) || got > 800 {
		t.Errorf("Counts[Corruption] = %d, changed readings = %d", got, changed)
	}
}

func TestChurnRemovesCoResidentAndSettleRestores(t *testing.T) {
	s := sim.NewServer("s", sim.ServerConfig{})
	adv := newVM("adv", 2)
	v1 := newVM("v1", 2)
	v2 := newVM("v2", 2)
	for _, vm := range []*sim.VM{adv, v1, v2} {
		if err := s.Place(vm); err != nil {
			t.Fatalf("Place(%s): %v", vm.ID, err)
		}
	}

	p := New(Config{Rate: 1}, stats.NewRNG(9))
	removedOnce := false
	for i := 0; i < 200 && !removedOnce; i++ {
		p.MaybeChurn(s, adv)
		if s.Lookup("adv") == nil {
			t.Fatal("churn removed the adversary itself")
		}
		if len(s.VMs()) == 2 {
			removedOnce = true
			if s.Lookup("v1") != nil && s.Lookup("v2") != nil {
				t.Fatal("2 VMs on host but both victims still present")
			}
		}
	}
	if !removedOnce {
		t.Fatal("churn at rate 1 never removed a co-resident in 200 boundaries")
	}
	if got := p.Counts()[Churn]; got == 0 {
		t.Error("Counts[Churn] = 0 after a removal")
	}

	p.Settle()
	if got := len(s.VMs()); got != 3 {
		t.Fatalf("after Settle: %d VMs, want 3", got)
	}
	for _, id := range []string{"adv", "v1", "v2"} {
		if s.Lookup(id) == nil {
			t.Errorf("after Settle: VM %s missing", id)
		}
	}
	// Settle is idempotent.
	p.Settle()
	if got := len(s.VMs()); got != 3 {
		t.Fatalf("second Settle changed placement: %d VMs", got)
	}
}

func TestChurnNextBoundaryRestoresBeforeDrawing(t *testing.T) {
	// A VM held removed must come back at the next boundary even when that
	// boundary churns again (possibly removing a different co-resident):
	// at most one VM is ever missing.
	s := sim.NewServer("s", sim.ServerConfig{})
	adv := newVM("adv", 2)
	v1 := newVM("v1", 2)
	v2 := newVM("v2", 2)
	for _, vm := range []*sim.VM{adv, v1, v2} {
		if err := s.Place(vm); err != nil {
			t.Fatalf("Place(%s): %v", vm.ID, err)
		}
	}
	p := New(Config{Rate: 1}, stats.NewRNG(13))
	for i := 0; i < 200; i++ {
		p.MaybeChurn(s, adv)
		if got := len(s.VMs()); got < 2 || got > 3 {
			t.Fatalf("boundary %d: %d VMs on host, want 2 or 3", i, got)
		}
	}
	p.Settle()
	if got := len(s.VMs()); got != 3 {
		t.Fatalf("after Settle: %d VMs, want 3", got)
	}
}

func TestChurnWithNoCoResidentsInjectsNothing(t *testing.T) {
	s := sim.NewServer("s", sim.ServerConfig{})
	adv := newVM("adv", 4)
	if err := s.Place(adv); err != nil {
		t.Fatalf("Place: %v", err)
	}
	p := New(Config{Rate: 1}, stats.NewRNG(17))
	for i := 0; i < 100; i++ {
		p.MaybeChurn(s, adv)
	}
	if got := p.Counts()[Churn]; got != 0 {
		t.Errorf("Counts[Churn] = %d with no churn candidates, want 0", got)
	}
	if s.Lookup("adv") == nil {
		t.Error("adversary removed from a single-VM host")
	}
}

func TestSetDefaultRoundTrip(t *testing.T) {
	defer SetDefault(Config{})
	if got := Default(); got.Enabled() {
		t.Fatalf("Default() enabled before SetDefault: %+v", got)
	}
	SetDefault(Config{Rate: 0.2, SpikeMax: 10})
	got := Default()
	if got.Rate != 0.2 || got.SpikeMax != 10 {
		t.Errorf("Default() = %+v after SetDefault(Rate 0.2, SpikeMax 10)", got)
	}
	SetDefault(Config{})
	if Default().Enabled() {
		t.Error("Default() still enabled after reset")
	}
}

func TestClassString(t *testing.T) {
	want := map[Class]string{
		Dropout: "dropout", Corruption: "corruption",
		Churn: "churn", ProbeFailure: "probe-failure",
	}
	for c, name := range want {
		if got := c.String(); got != name {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, name)
		}
	}
	if got := Class(99).String(); got != "Class(99)" {
		t.Errorf("out-of-range String() = %q", got)
	}
}
