package serve

import (
	"errors"
	"testing"

	"bolt/internal/core"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// TestServeBusy pins the load-shedding path deterministically. A black-box
// burst cannot: on a single-P runtime the channel's direct handoff wakes the
// worker between submissions, so a full queue is never actually observed.
// Instead the server is built without starting its workers, the depth-1
// queue is wedged by hand, and the next submission must fail fast with
// ErrBusy instead of blocking. Starting the workers afterwards drains the
// wedged call and answers it bit-exactly, proving shedding never corrupts
// the accepted traffic around it.
func TestServeBusy(t *testing.T) {
	det := core.TrainCached(workload.TrainingSpecs(42), core.Config{})
	n := det.Rec.ResourceCount()
	s := newServer(det, Config{Workers: 1, MaxBatch: 1, QueueDepth: 1})

	rng := stats.NewRNG(3)
	obs := make([]float64, n)
	known := make([]bool, n)
	known[3], known[5], known[7] = true, true, true // LLC, MemBW, NetBW
	for j := range known {
		if known[j] {
			obs[j] = stats.Clamp(rng.Range(0, 100), 0, 100)
		}
	}

	// Wedge the queue: no worker is running, so this call stays buffered and
	// queue depth 1 is exhausted.
	wedged := s.pool.Get().(*call)
	copy(wedged.observed, obs)
	copy(wedged.known, known)
	wedged.resp.Dropped, wedged.resp.Corrupted = 0, 0
	s.queue <- wedged

	// The submit path must now shed, not block.
	if _, err := s.Detect(obs, known); !errors.Is(err, ErrBusy) {
		t.Fatalf("submit against a full queue: err = %v, want ErrBusy", err)
	}
	if st := s.Stats(); st.Shed != 1 || st.Served != 0 {
		t.Fatalf("stats after shed: served=%d shed=%d, want 0/1", st.Served, st.Shed)
	}

	// Start the workers: the wedged call drains and answers from the solo
	// path, and the same submission now succeeds.
	s.start()
	<-wedged.done
	if wedged.err != nil {
		t.Fatalf("wedged call answered with error: %v", wedged.err)
	}
	want := det.DetectProfile(obs, known)
	if wedged.resp.Confidence != want.Confidence || wedged.resp.Label() != want.Label() {
		t.Fatal("wedged call's answer diverges from the solo path")
	}
	resp, err := s.Detect(obs, known)
	if err != nil {
		t.Fatalf("submit after drain: %v", err)
	}
	if resp.Label() != want.Label() || resp.Confidence != want.Confidence {
		t.Fatal("post-drain answer diverges from the solo path")
	}
	if st := s.Stats(); st.Served != 2 || st.Shed != 1 {
		t.Fatalf("final stats: served=%d shed=%d, want 2/1", st.Served, st.Shed)
	}
	s.Close()
}
