// Wire protocol: newline-delimited JSON over a stream socket, one request
// per line, one response per line, answered in request order per
// connection. Server-side batching happens across connections (and across
// the queue generally), so a fleet of synchronous clients still fills fused
// DetectBatch passes. JSON encodes float64 with the shortest representation
// that round-trips exactly, so the bit-exactness contract survives the
// wire: a pressure or similarity value decoded by the client is the same
// float the detector produced.
package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"net"
)

// WireRequest is one detection query on the wire. ID is echoed back
// verbatim so clients can correlate.
type WireRequest struct {
	ID       uint64    `json:"id"`
	Observed []float64 `json:"observed"`
	Known    []bool    `json:"known"`
}

// WireResponse is one answer on the wire: the graceful-degradation label,
// the completed pressure vector, the best match, and the serving metadata.
// Error carries the sentinel text of ErrBusy/ErrClosed or the validation
// detail; all other fields are zero when it is set.
type WireResponse struct {
	ID         uint64    `json:"id"`
	Label      string    `json:"label,omitempty"`
	Confidence float64   `json:"confidence,omitempty"`
	Best       string    `json:"best,omitempty"`
	Similarity float64   `json:"similarity,omitempty"`
	Pressure   []float64 `json:"pressure,omitempty"`
	Snapshot   uint64    `json:"snapshot,omitempty"`
	Batch      int       `json:"batch,omitempty"`
	Dropped    int       `json:"dropped,omitempty"`
	Corrupted  int       `json:"corrupted,omitempty"`
	Error      string    `json:"error,omitempty"`
}

// Busy reports whether the response is the load-shedding error (retryable).
func (wr *WireResponse) Busy() bool { return wr.Error == ErrBusy.Error() }

// wireResponse flattens a served Response for the wire.
func wireResponse(id uint64, resp Response) WireResponse {
	best := resp.Result.Best()
	return WireResponse{
		ID:         id,
		Label:      resp.Label(),
		Confidence: resp.Confidence,
		Best:       best.Label,
		Similarity: best.Similarity,
		Pressure:   resp.Result.Pressure,
		Snapshot:   resp.Snapshot,
		Batch:      resp.Batch,
		Dropped:    resp.Dropped,
		Corrupted:  resp.Corrupted,
	}
}

// ServeListener accepts connections on l and serves each with handleConn
// until Accept fails (closing the listener is the shutdown signal). It
// returns Accept's error; callers that closed the listener deliberately
// treat it as a clean exit via errors.Is(err, net.ErrClosed).
func ServeListener(l net.Listener, s *Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		// Per-connection handlers are deliberately fire-and-forget: each
		// goroutine's lifetime is bounded by its connection (handleConn
		// defers conn.Close and exits on the first decode error), and the
		// only shared state it touches is Server.Detect, which answers
		// ErrClosed after Close. Joining them would make shutdown wait on
		// arbitrarily slow clients.
		//bolt:nolint timerleak -- connection-bounded handler; Detect fails fast with ErrClosed after Close, so no join is needed
		go handleConn(conn, s)
	}
}

// handleConn serves one connection synchronously: decode a request, answer
// it, encode the response. A decode error (malformed JSON, EOF) drops the
// connection; a request error (busy, bad request) is reported in-band so
// the client can retry without reconnecting.
func handleConn(conn net.Conn, s *Server) {
	defer conn.Close()
	dec := json.NewDecoder(bufio.NewReader(conn))
	w := bufio.NewWriter(conn)
	enc := json.NewEncoder(w)
	for {
		var req WireRequest
		if err := dec.Decode(&req); err != nil {
			return
		}
		var wr WireResponse
		resp, err := s.Detect(req.Observed, req.Known)
		if err != nil {
			wr = WireResponse{ID: req.ID, Error: err.Error()}
		} else {
			wr = wireResponse(req.ID, resp)
		}
		if err := enc.Encode(&wr); err != nil {
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

// Client is a synchronous wire client: one in-flight request per Client.
// Use one Client per driving goroutine.
type Client struct {
	conn net.Conn
	dec  *json.Decoder
	w    *bufio.Writer
	enc  *json.Encoder
	req  WireRequest
	id   uint64
}

// Dial connects a Client to a boltd-style server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn: conn,
		dec:  json.NewDecoder(bufio.NewReader(conn)),
		w:    bufio.NewWriter(conn),
	}
	c.enc = json.NewEncoder(c.w)
	return c, nil
}

// Detect sends one query and blocks for its answer. A response whose Error
// field is set is returned with a nil error — in-band errors (busy, bad
// request) are the client's to handle; a non-nil error means the
// connection itself failed.
func (c *Client) Detect(observed []float64, known []bool) (WireResponse, error) {
	c.id++
	c.req.ID = c.id
	c.req.Observed = observed
	c.req.Known = known
	if err := c.enc.Encode(&c.req); err != nil {
		return WireResponse{}, err
	}
	if err := c.w.Flush(); err != nil {
		return WireResponse{}, err
	}
	var wr WireResponse
	if err := c.dec.Decode(&wr); err != nil {
		return WireResponse{}, err
	}
	if wr.ID != c.id {
		return WireResponse{}, errors.New("serve: response id mismatch")
	}
	return wr, nil
}

// Close tears down the connection.
func (c *Client) Close() error { return c.conn.Close() }
