// Package serve promotes detection from batch experiments to a long-running
// service. A Server answers profile-only detection queries (an observed
// victim pressure vector plus its known mask) from an immutable trained
// detector snapshot, batching concurrent requests into single fused
// DetectBatch passes.
//
// Three contracts define the serving plane (see DESIGN.md "Serving plane"):
//
//   - RCU snapshots. The trained detector is held behind an
//     atomic.Pointer and replaced wholesale by Swap. core.TrainCached's
//     immutability-after-Train guarantee makes the read side lock-free:
//     a worker loads the pointer once per batch flush, and in-flight
//     batches keep answering from the snapshot they loaded while a
//     background retrain installs the next one. Nothing is ever mutated
//     in place, so there is no quiescence protocol to get wrong.
//
//   - Bounded queueing with load shedding. Requests enter a fixed-depth
//     queue; when it is full, Detect fails fast with ErrBusy instead of
//     queueing unboundedly. Overload degrades throughput, never memory.
//
//   - Bit-exactness. A served answer is bit-identical to the solo
//     core.Detector.DetectProfile path at every worker count, batch size,
//     and linger setting: batches group requests by identical known mask
//     and answer each group through DetectProfileBatch, whose per-row
//     bit-exactness is pinned at the mining layer. The serve parity tests
//     re-pin it at the service boundary.
//
// The request path draws no randomness. The only RNG in the package feeds
// the optional fault plane (Config.Fault), which perturbs live traffic the
// way PR 5's plane perturbs simulated probes — and a disabled fault config
// injects nothing and costs nothing.
package serve

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"bolt/internal/core"
	"bolt/internal/fault"
	"bolt/internal/stats"
)

// Config tunes a Server. The zero value serves correctly: one worker,
// batches up to 64, queue depth 4×batch, no linger, no fault injection.
type Config struct {
	// Workers is the number of batch workers pulling from the shared
	// queue. Each worker forms and answers one batch at a time, so this
	// bounds the number of concurrent DetectBatch passes. 0 means 1.
	Workers int
	// MaxBatch is the most requests a worker folds into one flush. The
	// fused fold-in amortises its per-sweep work across the batch, so
	// larger batches trade a little latency for throughput. 0 means 64.
	MaxBatch int
	// QueueDepth bounds the request queue; a full queue sheds load with
	// ErrBusy. 0 means 4×MaxBatch.
	QueueDepth int
	// Linger is how long a worker holding a non-full batch waits for
	// stragglers before flushing. 0 flushes as soon as the queue is
	// momentarily empty (greedy drain): lowest latency, and batches still
	// form naturally whenever requests outpace workers.
	Linger time.Duration
	// Fault, when enabled, injects the request-level fault classes
	// (dropout, corruption) into live traffic before detection, drawing
	// from per-worker streams split from FaultSeed. Responses report what
	// was injected; the confidence score degrades exactly as it does under
	// the probe-side plane.
	Fault fault.Config
	// FaultSeed seeds the fault plane's RNG streams.
	FaultSeed uint64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	return c
}

// Sentinel errors of the request path.
var (
	// ErrBusy is the load-shedding error: the queue is full and the
	// request was dropped without being enqueued. Retryable.
	ErrBusy = errors.New("serve: queue full, request shed")
	// ErrClosed reports a request submitted after Close.
	ErrClosed = errors.New("serve: server closed")
	// ErrBadRequest wraps request-validation failures (length mismatch,
	// non-finite or out-of-range observed values).
	ErrBadRequest = errors.New("serve: bad request")
)

// Response is one answered detection query.
type Response struct {
	// ProfileDetection is the detector's answer, bit-identical to the solo
	// DetectProfile path (after any fault injection).
	core.ProfileDetection
	// Snapshot is the version of the detector snapshot that answered; it
	// increases by one per Swap, starting at 1 for the construction-time
	// detector.
	Snapshot uint64
	// Batch is how many requests shared this answer's fused DetectBatch
	// pass (the mask group's size, not the whole flush).
	Batch int
	// Dropped and Corrupted count the fault classes injected into this
	// request's profile before detection (always 0 with faults disabled).
	Dropped, Corrupted int
}

// Stats is a point-in-time snapshot of the server's counters.
type Stats struct {
	Served    uint64 // requests answered
	Shed      uint64 // requests dropped with ErrBusy
	Rejected  uint64 // requests failing validation
	Batches   uint64 // fused DetectBatch passes
	MaxBatch  uint64 // largest fused pass observed
	Dropped   uint64 // fault plane: entries dropped from live requests
	Corrupted uint64 // fault plane: entries corrupted in live requests
	Swaps     uint64 // snapshot swaps since construction
}

// snapshot is one immutable detector generation. Workers load it once per
// flush; Swap installs a successor without disturbing loads in flight.
type snapshot struct {
	det     *core.Detector
	version uint64
	n       int // resource count, cached for request validation
}

// call is one in-flight request. Calls are pooled: the done channel and the
// observed/known buffers are reused across requests, so the steady-state
// submit path allocates nothing.
type call struct {
	observed []float64
	known    []bool
	resp     Response
	err      error
	done     chan struct{} // buffered 1; worker sends exactly once per cycle
}

// Server is the long-running detection service. Construct with New, submit
// with Detect (safe for any number of goroutines), retire with Close.
type Server struct {
	cfg   Config
	snap  atomic.Pointer[snapshot]
	queue chan *call
	pool  sync.Pool

	// mu guards closed and orders Detect's queue sends before Close's
	// close(queue); workers hold neither.
	mu     sync.RWMutex
	closed bool
	wg     sync.WaitGroup

	served, shed, rejected   atomic.Uint64
	batches, maxBatch, swaps atomic.Uint64
	dropped, corrupted       atomic.Uint64
}

// New builds and starts a Server answering from det. The detector must
// already be trained (it is immutable, per the core.Detector contract);
// train on another goroutine and Swap to replace it later.
func New(det *core.Detector, cfg Config) *Server {
	s := newServer(det, cfg)
	s.start()
	return s
}

// newServer builds the server without starting its workers; split from New
// so white-box tests can exercise the submit path against a quiescent
// queue.
func newServer(det *core.Detector, cfg Config) *Server {
	if det == nil {
		panic("serve: New(nil detector)")
	}
	cfg = cfg.withDefaults()
	n := det.Rec.ResourceCount()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *call, cfg.QueueDepth),
	}
	s.snap.Store(&snapshot{det: det, version: 1, n: n})
	s.pool.New = func() any {
		return &call{
			observed: make([]float64, n),
			known:    make([]bool, n),
			done:     make(chan struct{}, 1),
		}
	}
	return s
}

// start launches the batch workers. Per-worker fault planes are split in
// worker order: a Plane is single-owner (like an adversary's), and giving
// each worker its own stream keeps injection decisions independent of which
// worker drains which request.
func (s *Server) start() {
	rng := stats.NewRNG(s.cfg.FaultSeed)
	planes := make([]*fault.Plane, s.cfg.Workers)
	for i := range planes {
		planes[i] = fault.New(s.cfg.Fault, rng.Split())
	}
	s.wg.Add(s.cfg.Workers)
	for i := 0; i < s.cfg.Workers; i++ {
		go s.worker(planes[i])
	}
}

// Snapshot returns the current detector and its version. The detector is
// shared and immutable; treat it as read-only.
func (s *Server) Snapshot() (*core.Detector, uint64) {
	sn := s.snap.Load()
	return sn.det, sn.version
}

// Swap installs det as the new answering snapshot, RCU-style: requests
// batched after the swap see the new detector, batches already formed keep
// the snapshot they loaded, and nothing blocks. It returns the new
// snapshot's version. The new detector must expect the same resource count
// as the current one — requests are validated against the snapshot at
// submit time, so a width change would invalidate queued requests.
func (s *Server) Swap(det *core.Detector) uint64 {
	if det == nil {
		panic("serve: Swap(nil detector)")
	}
	n := det.Rec.ResourceCount()
	for {
		cur := s.snap.Load()
		if n != cur.n {
			panic(fmt.Sprintf("serve: Swap detector expects %d resources, serving %d", n, cur.n))
		}
		next := &snapshot{det: det, version: cur.version + 1, n: n}
		if s.snap.CompareAndSwap(cur, next) {
			s.swaps.Add(1)
			return next.version
		}
	}
}

// Detect submits one query and blocks until it is answered or shed. The
// request slices are copied at submit time: the server never retains or
// mutates caller memory, and the returned Response owns all its data.
//
// Errors: ErrBusy when the queue is full (the request was not enqueued;
// retry or back off), ErrClosed after Close, and ErrBadRequest (wrapped,
// with detail) for malformed requests — mismatched lengths against the
// current snapshot, or a known entry that is NaN, infinite, or outside the
// [0, 100] pressure range.
func (s *Server) Detect(observed []float64, known []bool) (Response, error) {
	sn := s.snap.Load()
	if len(observed) != sn.n || len(known) != sn.n {
		s.rejected.Add(1)
		return Response{}, fmt.Errorf("%w: got %d observed / %d known entries, want %d",
			ErrBadRequest, len(observed), len(known), sn.n)
	}
	for j, k := range known {
		if !k {
			continue
		}
		if v := observed[j]; math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 100 {
			s.rejected.Add(1)
			return Response{}, fmt.Errorf("%w: observed[%d] = %v outside the [0, 100] pressure range",
				ErrBadRequest, j, v)
		}
	}

	c := s.pool.Get().(*call)
	copy(c.observed, observed)
	copy(c.known, known)
	// Pooled calls carry the previous cycle's response; the fault counters
	// are read back at flush time, so they must start from zero.
	c.resp.Dropped, c.resp.Corrupted = 0, 0

	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.pool.Put(c)
		return Response{}, ErrClosed
	}
	select {
	case s.queue <- c:
		s.mu.RUnlock()
	default:
		s.mu.RUnlock()
		s.pool.Put(c)
		s.shed.Add(1)
		return Response{}, ErrBusy
	}

	<-c.done
	resp, err := c.resp, c.err
	s.pool.Put(c)
	return resp, err
}

// Close stops accepting requests, drains and answers everything already
// queued, and waits for the workers to exit. Idempotent; concurrent Detect
// calls either complete normally or return ErrClosed.
func (s *Server) Close() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// Stats returns a point-in-time snapshot of the server's counters.
func (s *Server) Stats() Stats {
	return Stats{
		Served:    s.served.Load(),
		Shed:      s.shed.Load(),
		Rejected:  s.rejected.Load(),
		Batches:   s.batches.Load(),
		MaxBatch:  s.maxBatch.Load(),
		Dropped:   s.dropped.Load(),
		Corrupted: s.corrupted.Load(),
		Swaps:     s.swaps.Load(),
	}
}

// worker is one batch loop: block for the first request, gather up to
// MaxBatch (lingering if configured), then flush. Exits when the queue is
// closed and drained.
func (s *Server) worker(plane *fault.Plane) {
	defer s.wg.Done()
	batch := make([]*call, 0, s.cfg.MaxBatch)
	members := make([]*call, 0, s.cfg.MaxBatch)
	obs := make([][]float64, 0, s.cfg.MaxBatch)
	var timer *time.Timer
	if s.cfg.Linger > 0 {
		timer = time.NewTimer(s.cfg.Linger)
		if !timer.Stop() {
			<-timer.C
		}
	}
	for {
		c, ok := <-s.queue
		if !ok {
			return
		}
		batch = append(batch[:0], c)
		open := s.gather(&batch, timer)
		s.flush(batch, plane, &members, &obs)
		if !open {
			return
		}
	}
}

// gather fills batch up to MaxBatch. With a timer (Linger > 0) it waits up
// to Linger for stragglers; without one it drains only what is already
// queued. Returns false once the queue is closed.
func (s *Server) gather(batch *[]*call, timer *time.Timer) bool {
	if timer == nil {
		for len(*batch) < s.cfg.MaxBatch {
			select {
			case c, ok := <-s.queue:
				if !ok {
					return false
				}
				*batch = append(*batch, c)
			default:
				return true
			}
		}
		return true
	}
	timer.Reset(s.cfg.Linger)
	defer func() {
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
	}()
	for len(*batch) < s.cfg.MaxBatch {
		select {
		case c, ok := <-s.queue:
			if !ok {
				return false
			}
			*batch = append(*batch, c)
		case <-timer.C:
			return true
		}
	}
	return true
}

// flush answers one gathered batch: load the snapshot (the RCU read), run
// the fault plane over each request, then group requests by identical known
// mask — DetectBatch requires a shared mask — and answer each group in one
// fused pass. Groups form in arrival order and members keep arrival order
// within a group, so the flush is deterministic in its input sequence.
func (s *Server) flush(batch []*call, plane *fault.Plane, members *[]*call, obs *[][]float64) {
	sn := s.snap.Load()
	if plane.Enabled() {
		for _, c := range batch {
			d, k := plane.FaultProfile(c.observed, c.known)
			c.resp.Dropped, c.resp.Corrupted = d, k
			if d > 0 {
				s.dropped.Add(uint64(d))
			}
			if k > 0 {
				s.corrupted.Add(uint64(k))
			}
		}
	}
	for lo := 0; lo < len(batch); lo++ {
		head := batch[lo]
		if head == nil {
			continue // already answered as a member of an earlier group
		}
		mask := head.known
		ms := append((*members)[:0], head)
		ob := append((*obs)[:0], head.observed)
		for i := lo + 1; i < len(batch); i++ {
			c := batch[i]
			if c == nil || !maskEqual(mask, c.known) {
				continue
			}
			ms = append(ms, c)
			ob = append(ob, c.observed)
			batch[i] = nil
		}
		pds := sn.det.DetectProfileBatch(ob, mask)
		s.batches.Add(1)
		s.served.Add(uint64(len(ms)))
		s.noteBatch(uint64(len(ms)))
		for k, c := range ms {
			dropped, corrupted := c.resp.Dropped, c.resp.Corrupted
			c.resp = Response{
				ProfileDetection: pds[k],
				Snapshot:         sn.version,
				Batch:            len(ms),
				Dropped:          dropped,
				Corrupted:        corrupted,
			}
			c.err = nil
			c.done <- struct{}{}
		}
		*members, *obs = ms, ob
	}
}

// noteBatch raises the max-batch watermark to b if it is a new high.
func (s *Server) noteBatch(b uint64) {
	for {
		cur := s.maxBatch.Load()
		if b <= cur || s.maxBatch.CompareAndSwap(cur, b) {
			return
		}
	}
}

func maskEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
