package serve_test

import (
	"errors"
	"net"
	"strings"
	"testing"

	"bolt/internal/serve"
	"bolt/internal/stats"
)

// startWireServer builds a served detector behind a loopback listener and
// returns its address; everything tears down with the test.
func startWireServer(t *testing.T, cfg serve.Config) (string, *serve.Server) {
	t.Helper()
	srv := serve.New(testDetector(t), cfg)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := serve.ServeListener(l, srv); err != nil && !errors.Is(err, net.ErrClosed) {
			t.Errorf("ServeListener: %v", err)
		}
	}()
	t.Cleanup(func() {
		l.Close()
		<-done
		srv.Close()
	})
	return l.Addr().String(), srv
}

// TestWireRoundTrip pins bit-exactness across the socket: JSON's
// shortest-round-trip float encoding must deliver exactly the pressure and
// similarity bits the solo detector path produces, plus the same label and
// confidence.
func TestWireRoundTrip(t *testing.T) {
	addr, _ := startWireServer(t, serve.Config{Workers: 2, MaxBatch: 8})
	det := testDetector(t)
	n := det.Rec.ResourceCount()
	masks := testMasks(n)
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	rng := stats.NewRNG(31)
	for k := 0; k < 32; k++ {
		obs, known := genRequest(rng, masks, n)
		wr, err := c.Detect(obs, known)
		if err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
		if wr.Error != "" {
			t.Fatalf("request %d: in-band error %q", k, wr.Error)
		}
		want := det.DetectProfile(obs, known)
		if wr.Label != want.Label() || wr.Confidence != want.Confidence {
			t.Fatalf("request %d: label/confidence (%q, %v) != solo (%q, %v)",
				k, wr.Label, wr.Confidence, want.Label(), want.Confidence)
		}
		best := want.Result.Best()
		if wr.Best != best.Label || wr.Similarity != best.Similarity {
			t.Fatalf("request %d: best match diverges from solo path", k)
		}
		if len(wr.Pressure) != n {
			t.Fatalf("request %d: pressure has %d entries, want %d", k, len(wr.Pressure), n)
		}
		for j := range wr.Pressure {
			if wr.Pressure[j] != want.Result.Pressure[j] {
				t.Fatalf("request %d: pressure[%d] lost bits over the wire: %v != %v",
					k, j, wr.Pressure[j], want.Result.Pressure[j])
			}
		}
		if wr.Snapshot != 1 || wr.Batch < 1 {
			t.Fatalf("request %d: metadata snapshot=%d batch=%d", k, wr.Snapshot, wr.Batch)
		}
	}
}

// TestWireBadRequest: validation failures come back in-band so the
// connection survives, and the next request still works.
func TestWireBadRequest(t *testing.T) {
	addr, _ := startWireServer(t, serve.Config{})
	det := testDetector(t)
	n := det.Rec.ResourceCount()
	c, err := serve.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	wr, err := c.Detect(make([]float64, n-2), make([]bool, n-2))
	if err != nil {
		t.Fatalf("transport error on bad request: %v", err)
	}
	if !strings.Contains(wr.Error, "bad request") {
		t.Fatalf("error = %q, want a bad-request report", wr.Error)
	}
	if wr.Busy() {
		t.Fatal("bad request misreported as busy")
	}
	obs, known := genRequest(stats.NewRNG(5), testMasks(n), n)
	wr, err = c.Detect(obs, known)
	if err != nil || wr.Error != "" {
		t.Fatalf("connection did not survive a bad request: %v %q", err, wr.Error)
	}
}

// TestWireMalformedJSON: a connection sending garbage is dropped.
func TestWireMalformedJSON(t *testing.T) {
	addr, _ := startWireServer(t, serve.Config{})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("this is not json\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	buf := make([]byte, 64)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("expected the server to drop the connection")
	}
}
