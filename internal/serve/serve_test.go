package serve_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"bolt/internal/core"
	"bolt/internal/fault"
	"bolt/internal/serve"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

const testSeed = 42

func testDetector(tb testing.TB) *core.Detector {
	tb.Helper()
	return core.TrainCached(workload.TrainingSpecs(testSeed), core.Config{})
}

// testMasks are the observation shapes live traffic mixes: the canonical
// LLC/MemBW/NetBW probe mask, two partial variants, a full observation,
// and an empty mask (pure-completion query, confidence 0).
func testMasks(n int) [][]bool {
	masks := make([][]bool, 5)
	for i := range masks {
		masks[i] = make([]bool, n)
	}
	masks[0][3], masks[0][5], masks[0][7] = true, true, true // LLC, MemBW, NetBW
	masks[1][3], masks[1][5] = true, true
	masks[2][6], masks[2][7], masks[2][9] = true, true, true
	for j := range masks[3] {
		masks[3][j] = true
	}
	return masks
}

// genRequest deterministically builds request k for one client stream.
func genRequest(rng *stats.RNG, masks [][]bool, n int) ([]float64, []bool) {
	mask := masks[rng.Intn(len(masks))]
	obs := make([]float64, n)
	for j := range obs {
		if mask[j] {
			obs[j] = stats.Clamp(rng.Range(0, 100), 0, 100)
		}
	}
	return obs, mask
}

// TestServeParityAcrossConfigs is the service-boundary bit-exactness test:
// at every worker count × batch size × linger setting, every served answer
// must be bit-identical to the solo core.Detector.DetectProfile path —
// completed pressure, full ranked similarity distribution, confidence, and
// label.
func TestServeParityAcrossConfigs(t *testing.T) {
	det := testDetector(t)
	n := det.Rec.ResourceCount()
	masks := testMasks(n)
	for _, workers := range []int{1, 2, 4} {
		for _, batch := range []int{1, 4, 64} {
			for _, linger := range []time.Duration{0, 200 * time.Microsecond} {
				srv := serve.New(det, serve.Config{
					Workers: workers, MaxBatch: batch, Linger: linger,
					QueueDepth: 512,
				})
				const clients, perClient = 8, 16
				rngs := stats.NewRNG(7).SplitN(clients)
				var wg sync.WaitGroup
				errc := make(chan error, clients)
				for ci := 0; ci < clients; ci++ {
					wg.Add(1)
					go func(ci int) {
						defer wg.Done()
						for k := 0; k < perClient; k++ {
							obs, known := genRequest(rngs[ci], masks, n)
							resp, err := srv.Detect(obs, known)
							if err != nil {
								errc <- err
								return
							}
							want := det.DetectProfile(obs, known)
							if !profileEqual(resp.ProfileDetection, want) {
								t.Errorf("workers=%d batch=%d linger=%v: served answer diverges from solo DetectProfile",
									workers, batch, linger)
								return
							}
							if resp.Snapshot != 1 {
								t.Errorf("snapshot version = %d, want 1", resp.Snapshot)
							}
							if resp.Batch < 1 || resp.Batch > batch {
								t.Errorf("batch size %d outside [1, %d]", resp.Batch, batch)
							}
						}
					}(ci)
				}
				wg.Wait()
				close(errc)
				for err := range errc {
					t.Fatalf("workers=%d batch=%d linger=%v: %v", workers, batch, linger, err)
				}
				st := srv.Stats()
				if st.Served != clients*perClient {
					t.Fatalf("served = %d, want %d", st.Served, clients*perClient)
				}
				if st.MaxBatch > uint64(batch) {
					t.Fatalf("max batch %d exceeds configured %d", st.MaxBatch, batch)
				}
				srv.Close()
			}
		}
	}
}

// profileEqual compares two profile detections bit for bit.
func profileEqual(got, want core.ProfileDetection) bool {
	if got.Confidence != want.Confidence || got.Label() != want.Label() {
		return false
	}
	if len(got.Result.Pressure) != len(want.Result.Pressure) ||
		len(got.Result.Matches) != len(want.Result.Matches) {
		return false
	}
	for j := range want.Result.Pressure {
		if got.Result.Pressure[j] != want.Result.Pressure[j] {
			return false
		}
	}
	for m := range want.Result.Matches {
		if got.Result.Matches[m] != want.Result.Matches[m] {
			return false
		}
	}
	return true
}

// TestServeSwapRCU drives traffic while the detector is swapped mid-stream.
// Every response must bit-match the solo path of the detector generation it
// reports having answered from — in-flight batches keep their snapshot, new
// batches see the new one.
func TestServeSwapRCU(t *testing.T) {
	detA := testDetector(t)
	detB := core.TrainCached(workload.TrainingSpecs(testSeed+1), core.Config{})
	n := detA.Rec.ResourceCount()
	masks := testMasks(n)
	srv := serve.New(detA, serve.Config{Workers: 2, MaxBatch: 8, QueueDepth: 64})
	defer srv.Close()

	byVersion := map[uint64]*core.Detector{1: detA, 2: detB}
	var wg sync.WaitGroup
	const clients, perClient = 4, 64
	rngs := stats.NewRNG(11).SplitN(clients)
	swapped := make(chan struct{})
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for k := 0; k < perClient; k++ {
				if ci == 0 && k == perClient/2 {
					if v := srv.Swap(detB); v != 2 {
						t.Errorf("Swap returned version %d, want 2", v)
					}
					close(swapped)
				}
				obs, known := genRequest(rngs[ci], masks, n)
				resp, err := srv.Detect(obs, known)
				if err != nil {
					t.Errorf("client %d: %v", ci, err)
					return
				}
				det := byVersion[resp.Snapshot]
				if det == nil {
					t.Errorf("response reports unknown snapshot %d", resp.Snapshot)
					return
				}
				if !profileEqual(resp.ProfileDetection, det.DetectProfile(obs, known)) {
					t.Errorf("answer diverges from the snapshot-%d solo path", resp.Snapshot)
					return
				}
			}
		}(ci)
	}
	wg.Wait()
	<-swapped
	if _, v := srv.Snapshot(); v != 2 {
		t.Fatalf("final snapshot version = %d, want 2", v)
	}
	if st := srv.Stats(); st.Swaps != 1 {
		t.Fatalf("swaps = %d, want 1", st.Swaps)
	}
	// Post-swap requests must answer from the new snapshot.
	obs, known := genRequest(stats.NewRNG(13), masks, n)
	resp, err := srv.Detect(obs, known)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Snapshot != 2 {
		t.Fatalf("post-swap snapshot = %d, want 2", resp.Snapshot)
	}
}

// TestServeSwapNil: a nil detector is a programming error, not a runtime
// condition — Swap panics rather than serving from nothing.
func TestServeSwapNil(t *testing.T) {
	srv := serve.New(testDetector(t), serve.Config{})
	defer srv.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Swap(nil) did not panic")
		}
	}()
	srv.Swap(nil)
}

// TestServeFaultInjection runs live traffic through a rate-1 dropout plane:
// every known entry is dropped, so answers degrade exactly like the solo
// path on an empty mask, responses report the injection, and the caller's
// request memory is never mutated.
func TestServeFaultInjection(t *testing.T) {
	det := testDetector(t)
	n := det.Rec.ResourceCount()
	srv := serve.New(det, serve.Config{
		Workers: 1, MaxBatch: 1,
		Fault:     fault.Config{Rate: 1, DisableCorruption: true, DisableChurn: true, DisableProbeFailure: true},
		FaultSeed: 9,
	})
	defer srv.Close()

	obs := make([]float64, n)
	known := make([]bool, n)
	obs[3], known[3] = 70, true
	obs[5], known[5] = 55, true
	obsCopy := append([]float64(nil), obs...)
	knownCopy := append([]bool(nil), known...)

	resp, err := srv.Detect(obs, known)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Dropped != 2 {
		t.Fatalf("dropped = %d, want 2 (rate-1 dropout over 2 known entries)", resp.Dropped)
	}
	// The faulted request is an empty mask; the answer must equal the solo
	// path on that degraded observation.
	empty := make([]float64, n)
	noneKnown := make([]bool, n)
	if !profileEqual(resp.ProfileDetection, det.DetectProfile(empty, noneKnown)) {
		t.Fatal("faulted answer diverges from the solo empty-mask path")
	}
	if resp.Label() != core.UnknownLabel {
		t.Fatalf("rate-1 dropout label = %q, want %q", resp.Label(), core.UnknownLabel)
	}
	for j := range obs {
		if obs[j] != obsCopy[j] || known[j] != knownCopy[j] {
			t.Fatal("server mutated the caller's request slices")
		}
	}
	if st := srv.Stats(); st.Dropped != 2 {
		t.Fatalf("stats.Dropped = %d, want 2", st.Dropped)
	}
}

// TestServeBadRequest covers the validation path: mismatched lengths and
// non-finite or out-of-range observed values are rejected without touching
// the queue.
func TestServeBadRequest(t *testing.T) {
	det := testDetector(t)
	n := det.Rec.ResourceCount()
	srv := serve.New(det, serve.Config{})
	defer srv.Close()

	if _, err := srv.Detect(make([]float64, n-1), make([]bool, n)); !errors.Is(err, serve.ErrBadRequest) {
		t.Fatalf("short observed: err = %v, want ErrBadRequest", err)
	}
	obs := make([]float64, n)
	known := make([]bool, n)
	known[0] = true
	for _, bad := range []float64{-1, 101, nan(), inf()} {
		obs[0] = bad
		if _, err := srv.Detect(obs, known); !errors.Is(err, serve.ErrBadRequest) {
			t.Fatalf("observed[0]=%v: err = %v, want ErrBadRequest", bad, err)
		}
	}
	// The same values on an unknown entry are ignored, not validated.
	known[0] = false
	obs[0] = inf()
	if _, err := srv.Detect(obs, known); err != nil {
		t.Fatalf("unknown entry should not be validated: %v", err)
	}
	if st := srv.Stats(); st.Rejected != 5 {
		t.Fatalf("rejected = %d, want 5", st.Rejected)
	}
}

func nan() float64 { z := 0.0; return z / z }
func inf() float64 { z := 0.0; return 1 / z }

// TestServeClose: close with traffic in flight answers everything already
// queued; a Detect after Close fails with ErrClosed; Close is idempotent.
func TestServeClose(t *testing.T) {
	det := testDetector(t)
	n := det.Rec.ResourceCount()
	masks := testMasks(n)
	srv := serve.New(det, serve.Config{Workers: 2, MaxBatch: 4, QueueDepth: 128})
	var wg sync.WaitGroup
	rngs := stats.NewRNG(21).SplitN(4)
	var closedErrs, served int
	var mu sync.Mutex
	for ci := 0; ci < 4; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			for k := 0; k < 32; k++ {
				obs, known := genRequest(rngs[ci], masks, n)
				_, err := srv.Detect(obs, known)
				mu.Lock()
				switch {
				case err == nil:
					served++
				case errors.Is(err, serve.ErrClosed):
					closedErrs++
				default:
					t.Errorf("unexpected error: %v", err)
				}
				mu.Unlock()
			}
		}(ci)
	}
	srv.Close()
	wg.Wait()
	srv.Close() // idempotent
	if _, err := srv.Detect(make([]float64, n), make([]bool, n)); !errors.Is(err, serve.ErrClosed) {
		t.Fatalf("Detect after Close: err = %v, want ErrClosed", err)
	}
	if served+closedErrs != 4*32 {
		t.Fatalf("served %d + closed %d != %d", served, closedErrs, 4*32)
	}
}
