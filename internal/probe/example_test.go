package probe_test

import (
	"fmt"

	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// ExampleAdversary_Ramp shows the §3.2 measurement primitive: a tunable
// microbenchmark ramps its intensity until its performance degrades, and
// the intensity at that point reveals the co-residents' pressure.
func ExampleAdversary_Ramp() {
	host := sim.NewServer("host", sim.ServerConfig{})

	// A victim exerting exactly 70% memory-bandwidth pressure.
	var demand sim.Vector
	demand.Set(sim.MemBW, 70)
	spec := workload.Spec{Label: "victim", Class: "victim", Base: demand}
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	if err := host.Place(&sim.VM{ID: "victim", VCPUs: 4, App: app}); err != nil {
		panic(err)
	}

	adv := probe.NewAdversary("bolt", 4, probe.Config{NoiseSD: 0.001}, stats.NewRNG(1))
	if err := host.Place(adv.VM); err != nil {
		panic(err)
	}

	m := adv.Ramp(host, sim.MemBW, 0)
	fmt.Printf("measured pressure: %.0f (truth 70)\n", m.Pressure)
	fmt.Printf("saturated: %v\n", m.Saturated)
	// Output:
	// measured pressure: 70 (truth 70)
	// saturated: true
}

// ExampleMaxIntensityFor shows why adversarial VMs below 4 vCPUs are blind
// (Fig. 10b): they cannot generate enough contention to sense co-residents.
func ExampleMaxIntensityFor() {
	for _, vcpus := range []int{1, 2, 4, 8} {
		fmt.Printf("%d vCPUs -> %.0f%% max intensity\n", vcpus, probe.MaxIntensityFor(vcpus))
	}
	// Output:
	// 1 vCPUs -> 25% max intensity
	// 2 vCPUs -> 50% max intensity
	// 4 vCPUs -> 100% max intensity
	// 8 vCPUs -> 100% max intensity
}
