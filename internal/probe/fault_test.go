package probe

import (
	"reflect"
	"testing"

	"bolt/internal/fault"
	"bolt/internal/sim"
	"bolt/internal/stats"
)

// probeFailureOnly is a fault config where every ramp transiently fails and
// nothing else fires — the deterministic worst case for the retry path.
func probeFailureOnly(rate float64) fault.Config {
	return fault.Config{Rate: rate,
		DisableDropout: true, DisableCorruption: true, DisableChurn: true}
}

func dropoutOnly(rate float64) fault.Config {
	return fault.Config{Rate: rate,
		DisableCorruption: true, DisableChurn: true, DisableProbeFailure: true}
}

func churnOnly(rate float64) fault.Config {
	return fault.Config{Rate: rate,
		DisableDropout: true, DisableCorruption: true, DisableProbeFailure: true}
}

func emptyHostAdv(t *testing.T, fcfg fault.Config, seed uint64) (*sim.Server, *Adversary) {
	t.Helper()
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001, Faults: fcfg}, stats.NewRNG(seed))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	return s, adv
}

func TestMeasureRetriesWithCappedBackoff(t *testing.T) {
	// Probe failure at rate 1: every attempt fails, so measure runs the
	// initial ramp plus MaxRetries retries, then gives up. On an empty
	// 4-vCPU-adversary host one ramp is exactly 25 ticks (step 4 up to
	// intensity 100, 1 tick per step), and the backoff sequence between the
	// four attempts is 1+2+4 ticks.
	s, adv := emptyHostAdv(t, probeFailureOnly(1), 21)
	m, ok := adv.measure(s, sim.MemBW, 0)
	if ok {
		t.Fatal("measure succeeded although every attempt fails")
	}
	const wantTicks = 4*25 + (1 + 2 + 4)
	if m.Ticks != wantTicks {
		t.Errorf("m.Ticks = %d, want %d (4 ramps + capped backoff)", m.Ticks, wantTicks)
	}
	counts := adv.FaultPlane().Counts()
	if got := counts[fault.ProbeFailure]; got != 4 {
		t.Errorf("Counts[ProbeFailure] = %d, want 4 (initial attempt + 3 retries)", got)
	}
	if counts[fault.Dropout] != 0 || counts[fault.Corruption] != 0 || counts[fault.Churn] != 0 {
		t.Errorf("other classes fired: %v", counts)
	}
}

func TestMeasureBackoffCapBindsLongRetryChains(t *testing.T) {
	// With a raised retry budget the backoff doubles 1, 2, 4, 8 and then
	// pins at the cap: 6 retries cost 1+2+4+8+8+8 ticks of waiting.
	fcfg := probeFailureOnly(1)
	fcfg.MaxRetries = 6
	s, adv := emptyHostAdv(t, fcfg, 22)
	m, ok := adv.measure(s, sim.LLC, 0)
	if ok {
		t.Fatal("measure succeeded although every attempt fails")
	}
	const wantTicks = 7*25 + (1 + 2 + 4 + 8 + 8 + 8)
	if m.Ticks != wantTicks {
		t.Errorf("m.Ticks = %d, want %d", m.Ticks, wantTicks)
	}
}

func TestMeasureDropoutSpendsTicksLosesValue(t *testing.T) {
	s, adv := emptyHostAdv(t, dropoutOnly(1), 23)
	m, ok := adv.measure(s, sim.NetBW, 0)
	if ok {
		t.Fatal("dropped measurement reported ok")
	}
	if m.Ticks != 25 {
		t.Errorf("m.Ticks = %d, want 25 (the ramp ran; only the value is lost)", m.Ticks)
	}
	counts := adv.FaultPlane().Counts()
	if counts[fault.Dropout] != 1 || counts[fault.ProbeFailure] != 0 {
		t.Errorf("counts = %v, want exactly one dropout", counts)
	}
}

func TestMeasureWithoutPlaneIsPlainRamp(t *testing.T) {
	// Two adversaries with identical seeds, one through measure and one
	// through Ramp: without a fault plane they must agree exactly, because
	// the disabled path adds no draws and no tick accounting.
	s1, a1 := emptyHostAdv(t, fault.Config{}, 24)
	s2, a2 := emptyHostAdv(t, fault.Config{}, 24)
	if a1.FaultPlane().Enabled() {
		t.Fatal("zero fault config built a plane")
	}
	m1, ok := a1.measure(s1, sim.DiskBW, 0)
	if !ok {
		t.Fatal("fault-free measure reported not ok")
	}
	m2 := a2.Ramp(s2, sim.DiskBW, 0)
	if m1 != m2 {
		t.Errorf("measure = %+v, Ramp = %+v; must be identical without a plane", m1, m2)
	}
}

func TestProfileOnceAllDroppedGoesOutSparse(t *testing.T) {
	// Dropout at rate 1 loses every measurement: the profile must come back
	// fully unobserved but still record which ramps ran (and their time),
	// and the lost first core measurement must trigger the §3.2 extra
	// uncore benchmark exactly as a silent core does.
	s, adv := emptyHostAdv(t, dropoutOnly(1), 25)
	p := adv.ProfileOnce(s, 0, 0)
	for r, known := range p.Known {
		if known {
			t.Errorf("resource %v marked known although every measurement dropped", sim.Resource(r))
		}
	}
	if p.Observed != (sim.Vector{}) {
		t.Errorf("Observed = %v, want zero vector", p.Observed)
	}
	if len(p.Resources) != 3 {
		t.Errorf("len(Resources) = %d, want 3 (core + uncore + extra uncore for the lost core)", len(p.Resources))
	}
	if p.Ticks < 3*25 {
		t.Errorf("Ticks = %d, want at least the three ramps' worth", p.Ticks)
	}
	if p.CoreShared {
		t.Error("CoreShared true with no observed core measurement")
	}
	obs, known := p.Sparse()
	for j := range known {
		if known[j] {
			t.Fatalf("Sparse known[%d] = true", j)
		}
		if obs[j] != 0 {
			t.Fatalf("Sparse obs[%d] = %g, want 0", j, obs[j])
		}
	}
}

func TestProfileOnceDeterministicUnderFaults(t *testing.T) {
	run := func() Profile {
		s := sim.NewServer("s0", sim.ServerConfig{})
		adv := NewAdversary("adv", 4,
			Config{Faults: fault.Config{Rate: 0.5}}, stats.NewRNG(26))
		if err := s.Place(adv.VM); err != nil {
			t.Fatal(err)
		}
		placeVictim(t, s, "vic", 4, specWith(map[sim.Resource]float64{
			sim.MemBW: 60, sim.LLC: 45, sim.CPU: 30,
		}))
		return adv.ProfileOnce(s, 0, 2)
	}
	p1, p2 := run(), run()
	if !reflect.DeepEqual(p1, p2) {
		t.Errorf("same seed, different profiles:\n%+v\n%+v", p1, p2)
	}
}

func TestProfileOnceChurnRestoresPlacement(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{Faults: churnOnly(1)}, stats.NewRNG(27))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "v1", 2, specWith(map[sim.Resource]float64{sim.MemBW: 50}))
	placeVictim(t, s, "v2", 2, specWith(map[sim.Resource]float64{sim.NetBW: 50}))

	churned := false
	for i := 0; i < 20 && !churned; i++ {
		p := adv.ProfileOnce(s, sim.Tick(i*200), 4)
		if p.Ticks <= 0 {
			t.Fatal("profile consumed no time")
		}
		churned = adv.FaultPlane().Counts()[fault.Churn] > 0
		// Settle ran: the scheduled placement is back regardless of what
		// churn did mid-profile.
		if got := len(s.VMs()); got != 3 {
			t.Fatalf("after ProfileOnce: %d VMs on host, want 3", got)
		}
	}
	if !churned {
		t.Fatal("churn-only plane at rate 1 never churned across 20 profiles")
	}
	for _, id := range []string{"adv", "v1", "v2"} {
		if s.Lookup(id) == nil {
			t.Errorf("VM %s missing after profiling", id)
		}
	}
}

func TestProfileCoreFaultsSettle(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{Cores: 4, ThreadsPerCore: 2})
	adv := NewAdversary("adv", 4, Config{Faults: fault.Config{Rate: 0.6}}, stats.NewRNG(28))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "vic", 2, specWith(map[sim.Resource]float64{
		sim.L1I: 70, sim.CPU: 55, sim.MemBW: 40,
	}))
	for i := 0; i < 10; i++ {
		adv.ProfileCore(s, sim.Tick(i*500))
		if got := len(s.VMs()); got != 2 {
			t.Fatalf("after ProfileCore: %d VMs on host, want 2", got)
		}
	}
}
