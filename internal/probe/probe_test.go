package probe

import (
	"math"
	"testing"

	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// placeVictim puts a constant-load victim with the given spec on the server.
func placeVictim(t *testing.T, s *sim.Server, id string, vcpus int, spec workload.Spec) *sim.VM {
	t.Helper()
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	vm := &sim.VM{ID: id, VCPUs: vcpus, App: app}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	return vm
}

func specWith(vals map[sim.Resource]float64) workload.Spec {
	var base sim.Vector
	for r, x := range vals {
		base.Set(r, x)
	}
	var ls sim.Vector
	for i := range ls {
		ls[i] = 100
	}
	return workload.Spec{Label: "test", Class: "test", Base: base, LoadScaled: sim.Vector{}}
}

func TestMaxIntensityFor(t *testing.T) {
	cases := []struct {
		vcpus int
		want  float64
	}{{0, 0}, {1, 25}, {2, 50}, {4, 100}, {16, 100}}
	for _, c := range cases {
		if got := MaxIntensityFor(c.vcpus); got != c.want {
			t.Errorf("MaxIntensityFor(%d) = %v, want %v", c.vcpus, got, c.want)
		}
	}
}

func TestKernelsSetGetReset(t *testing.T) {
	k := NewKernels(100)
	k.Set(sim.LLC, 60)
	if k.Get(sim.LLC) != 60 {
		t.Fatal("Set/Get mismatch")
	}
	if d := k.Demand(0); d.Get(sim.LLC) != 60 {
		t.Fatal("Demand should reflect kernel intensity")
	}
	k.Reset()
	if k.Get(sim.LLC) != 0 {
		t.Fatal("Reset should idle kernels")
	}
}

func TestKernelsCap(t *testing.T) {
	k := NewKernels(50)
	k.Set(sim.CPU, 90)
	if k.Get(sim.CPU) != 50 {
		t.Fatalf("intensity should cap at 50, got %v", k.Get(sim.CPU))
	}
}

func TestRampMeasuresUncorePressure(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(1))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "v", 4, specWith(map[sim.Resource]float64{sim.MemBW: 70}))

	m := adv.Ramp(s, sim.MemBW, 0)
	if !m.Saturated {
		t.Fatal("ramp against 70% pressure should saturate")
	}
	if math.Abs(m.Pressure-70) > 6 {
		t.Fatalf("measured pressure %v, want ≈70", m.Pressure)
	}
	if m.Ticks <= 0 {
		t.Fatal("ramp should take time")
	}
	if adv.Kernels.Get(sim.MemBW) != 0 {
		t.Fatal("kernel should be idled after the ramp")
	}
}

func TestRampZeroPressure(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(2))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	m := adv.Ramp(s, sim.NetBW, 0)
	if m.Pressure > 5 {
		t.Fatalf("empty host should measure ~0 pressure, got %v", m.Pressure)
	}
}

func TestRampHighPressureIsFast(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(3))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "hi", 4, specWith(map[sim.Resource]float64{sim.LLC: 90}))
	mHigh := adv.Ramp(s, sim.LLC, 0)

	s2 := sim.NewServer("s1", sim.ServerConfig{})
	adv2 := NewAdversary("adv2", 4, Config{NoiseSD: 0.001}, stats.NewRNG(3))
	if err := s2.Place(adv2.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s2, "lo", 4, specWith(map[sim.Resource]float64{sim.LLC: 20}))
	mLow := adv2.Ramp(s2, sim.LLC, 0)

	if mHigh.Ticks >= mLow.Ticks {
		t.Fatalf("high pressure should be detected faster: %d vs %d ticks",
			mHigh.Ticks, mLow.Ticks)
	}
}

func TestSmallAdversaryCannotSenseModeratePressure(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 1, Config{NoiseSD: 0.001}, stats.NewRNG(4)) // cap 25%
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "v", 4, specWith(map[sim.Resource]float64{sim.MemBW: 40}))
	m := adv.Ramp(s, sim.MemBW, 0)
	if m.Saturated {
		t.Fatal("1-vCPU adversary (25% ceiling) cannot saturate against 40% pressure")
	}
	// The floor estimate is 100 − 25 = 75: wildly wrong, as the paper's
	// Fig. 10b accuracy collapse for small VMs reflects.
	if m.Pressure != 75 {
		t.Fatalf("unsaturated estimate = %v, want 75", m.Pressure)
	}
}

func TestProfileOnceCoreAndUncore(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(5))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	// Victim on cores 2-3: no core sharing with the 4-vCPU adversary
	// (cores 0-1), so a third uncore benchmark must be added.
	placeVictim(t, s, "v", 4, specWith(map[sim.Resource]float64{
		sim.L1I: 80, sim.LLC: 60, sim.MemBW: 55, sim.NetBW: 45, sim.DiskBW: 40, sim.MemCap: 50,
	}))
	p := adv.ProfileOnce(s, 0, 0)
	if p.CoreShared {
		t.Fatal("no core is shared; CoreShared must be false")
	}
	nCore, nUncore := 0, 0
	for _, r := range p.Resources {
		if r.IsCore() {
			nCore++
		} else {
			nUncore++
		}
	}
	if nCore != 1 || nUncore != 2 {
		t.Fatalf("want 1 core + 2 uncore benchmarks, got %d + %d", nCore, nUncore)
	}
	for _, r := range p.Resources {
		if r.IsCore() && p.Observed.Get(r) > 5 {
			t.Fatalf("core pressure should read ~0 without core sharing, got %v", p.Observed.Get(r))
		}
	}
	if p.Ticks <= 0 {
		t.Fatal("profiling must consume time")
	}
}

func TestProfileOnceSharedCore(t *testing.T) {
	// Single-core host: the victim lands on the adversary's sibling thread.
	s := sim.NewServer("s0", sim.ServerConfig{Cores: 1, ThreadsPerCore: 2})
	adv := NewAdversary("adv", 1, Config{NoiseSD: 0.001}, stats.NewRNG(6))
	adv.Kernels.MaxIntensity = 100 // isolate the core-sharing effect from VM size
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "v", 1, specWith(map[sim.Resource]float64{
		sim.L1I: 80, sim.L1D: 70, sim.L2: 60, sim.CPU: 75, sim.LLC: 60,
		sim.MemBW: 50, sim.NetBW: 40, sim.DiskBW: 30, sim.MemCap: 45,
	}))
	p := adv.ProfileOnce(s, 0, 0)
	if !p.CoreShared {
		t.Fatal("adversary and victim share core 0; CoreShared must be true")
	}
	nUncore := 0
	for _, r := range p.Resources {
		if !r.IsCore() {
			nUncore++
		}
	}
	if nUncore != 1 {
		t.Fatalf("with core sharing only 1 uncore benchmark should run, got %d", nUncore)
	}
}

func TestProfileOnceExtraBench(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(7))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	p := adv.ProfileOnce(s, 0, 3)
	known := 0
	for _, k := range p.Known {
		if k {
			known++
		}
	}
	if known < 5 {
		t.Fatalf("extraBench=3 should measure ≥5 resources, got %d", known)
	}
}

func TestProfileSparse(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{}, stats.NewRNG(8))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	p := adv.ProfileOnce(s, 0, 0)
	obs, known := p.Sparse()
	if len(obs) != sim.NumResources || len(known) != sim.NumResources {
		t.Fatal("Sparse shapes wrong")
	}
	for i := range known {
		if known[i] != p.Known[i] {
			t.Fatal("Sparse known mask mismatch")
		}
	}
}

func TestProfileCore(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 2, Config{NoiseSD: 0.001}, stats.NewRNG(9))
	adv.Kernels.MaxIntensity = 100
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "v", 2, specWith(map[sim.Resource]float64{
		sim.L1I: 70, sim.L1D: 60, sim.L2: 40, sim.CPU: 65,
	}))
	// 2-vCPU adversary on core 0; 2-vCPU victim on core 1: not shared, so
	// none of the core readings carry information and all must be dropped.
	p := adv.ProfileCore(s, 0)
	for _, r := range sim.CoreResources() {
		if p.Known[r] {
			t.Fatalf("unshared ProfileCore must not trust %v", r)
		}
	}
	if p.CoreShared {
		t.Fatal("cores are not shared in this placement")
	}
}

func TestProfileCoreShared(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{Cores: 1, ThreadsPerCore: 2})
	adv := NewAdversary("adv", 1, Config{NoiseSD: 0.001}, stats.NewRNG(29))
	adv.Kernels.MaxIntensity = 100
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	// The 1-vCPU victim lands on core 0 thread 1, sharing the adversary's core.
	placeVictim(t, s, "v", 1, specWith(map[sim.Resource]float64{
		sim.L1I: 70, sim.L1D: 60, sim.L2: 40, sim.CPU: 65,
	}))
	p := adv.ProfileCore(s, 0)
	if !p.CoreShared {
		t.Fatal("shared core not detected")
	}
	for _, r := range sim.CoreResources() {
		if !p.Known[r] {
			t.Fatalf("shared ProfileCore should measure %v", r)
		}
	}
	if math.Abs(p.Observed.Get(sim.L1I)-70) > 6 {
		t.Fatalf("L1-i measured %v, want ≈70", p.Observed.Get(sim.L1I))
	}
}

func TestShutterFindsQuietPhase(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(10))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	// Steady victim plus a bursty victim that idles half the time.
	placeVictim(t, s, "steady", 2, specWith(map[sim.Resource]float64{sim.MemBW: 40}))
	burstSpec := specWith(map[sim.Resource]float64{sim.MemBW: 50})
	var ls sim.Vector
	for i := range ls {
		ls[i] = 100
	}
	burstSpec.LoadScaled = ls
	burstApp := workload.NewApp(burstSpec, workload.Bursty{
		OnLevel: 1, OffLevel: 0, OnTicks: 20, OffTicks: 20,
	}, 2)
	if err := s.Place(&sim.VM{ID: "bursty", VCPUs: 2, App: burstApp}); err != nil {
		t.Fatal(err)
	}

	_, minV := adv.Shutter(s, 0, 40, 80)
	// During the bursty victim's off phase only the steady 40% remains.
	if math.Abs(minV.Get(sim.MemBW)-40) > 6 {
		t.Fatalf("shutter min MemBW = %v, want ≈40", minV.Get(sim.MemBW))
	}
}

func TestShutterSampleCount(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{}, stats.NewRNG(11))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	samples, _ := adv.Shutter(s, 0, 25, 50)
	if len(samples) != 25 {
		t.Fatalf("got %d samples, want 25", len(samples))
	}
	samples, _ = adv.Shutter(s, 0, 0, 0)
	if len(samples) != 10 {
		t.Fatalf("default sample count should be 10, got %d", len(samples))
	}
}
