package probe

import (
	"math"
	"testing"
	"testing/quick"

	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

func coreVec(l1i, l1d, l2, cpu float64) sim.Vector {
	var v sim.Vector
	v.Set(sim.L1I, l1i)
	v.Set(sim.L1D, l1d)
	v.Set(sim.L2, l2)
	v.Set(sim.CPU, cpu)
	return v
}

func TestCoreSignaturesPerSibling(t *testing.T) {
	// 4-core host: adversary on thread 0 of every core; two 2-vCPU victims
	// on the thread-1 slots with distinct core profiles.
	s := sim.NewServer("s0", sim.ServerConfig{Cores: 4, ThreadsPerCore: 2})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(1))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "cachey", 2, specWith(map[sim.Resource]float64{
		sim.L1I: 85, sim.L1D: 60, sim.L2: 40, sim.CPU: 30,
	}))
	placeVictim(t, s, "compute", 2, specWith(map[sim.Resource]float64{
		sim.L1I: 25, sim.L1D: 30, sim.L2: 20, sim.CPU: 88,
	}))

	sigs, ticks := adv.CoreSignatures(s, 0)
	if ticks <= 0 {
		t.Fatal("signatures must consume time")
	}
	if len(sigs) != 2 {
		t.Fatalf("got %d signatures, want 2 distinct siblings", len(sigs))
	}
	// One signature should be cache-flavoured, the other compute-flavoured.
	var sawCache, sawCompute bool
	for _, sig := range sigs {
		if sig.Get(sim.L1I) > 70 && sig.Get(sim.CPU) < 50 {
			sawCache = true
		}
		if sig.Get(sim.CPU) > 70 && sig.Get(sim.L1I) < 50 {
			sawCompute = true
		}
	}
	if !sawCache || !sawCompute {
		t.Fatalf("signatures do not separate the two siblings: %v", sigs)
	}
}

func TestCoreSignaturesSameVMMerged(t *testing.T) {
	// One victim spanning both sibling slots: its two per-core signatures
	// are nearly identical and must merge into one.
	s := sim.NewServer("s0", sim.ServerConfig{Cores: 2, ThreadsPerCore: 2})
	adv := NewAdversary("adv", 2, Config{NoiseSD: 0.001}, stats.NewRNG(2))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	placeVictim(t, s, "wide", 2, specWith(map[sim.Resource]float64{
		sim.L1I: 70, sim.L1D: 55, sim.L2: 35, sim.CPU: 60,
	}))
	sigs, _ := adv.CoreSignatures(s, 0)
	if len(sigs) != 1 {
		t.Fatalf("one victim on two cores should yield 1 merged signature, got %d", len(sigs))
	}
}

func TestCoreSignaturesEmptyHost(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(3))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	sigs, _ := adv.CoreSignatures(s, 0)
	if len(sigs) != 0 {
		t.Fatalf("empty host should yield no signatures, got %v", sigs)
	}
}

func TestMergeSignaturesAverages(t *testing.T) {
	a := coreVec(80, 60, 40, 30)
	b := coreVec(84, 56, 44, 34) // within merge distance of a
	merged := MergeSignatures([]sim.Vector{a}, []sim.Vector{b})
	if len(merged) != 1 {
		t.Fatalf("near-identical signatures should merge, got %d", len(merged))
	}
	if got := merged[0].Get(sim.L1I); math.Abs(got-82) > 1e-9 {
		t.Fatalf("merged L1-i = %v, want 82 (average)", got)
	}
}

func TestMergeSignaturesKeepsDistinct(t *testing.T) {
	a := coreVec(80, 60, 40, 30)
	b := coreVec(20, 25, 15, 85)
	merged := MergeSignatures([]sim.Vector{a}, []sim.Vector{b})
	if len(merged) != 2 {
		t.Fatalf("distinct signatures must not merge, got %d", len(merged))
	}
}

func TestMergeSignaturesNilSafe(t *testing.T) {
	if got := MergeSignatures(nil, nil); len(got) != 0 {
		t.Fatal("nil merge should be empty")
	}
	one := []sim.Vector{coreVec(50, 40, 30, 20)}
	if got := MergeSignatures(nil, one); len(got) != 1 {
		t.Fatal("nil + one should be one")
	}
}

// Property: dedup never increases the signature count and every output is
// within bounds.
func TestPropDedupSignatures(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := rng.Intn(8)
		sigs := make([]sim.Vector, n)
		for i := range sigs {
			sigs[i] = coreVec(rng.Range(0, 100), rng.Range(0, 100),
				rng.Range(0, 100), rng.Range(0, 100))
		}
		out := MergeSignatures(nil, sigs)
		if len(out) > n {
			return false
		}
		for _, sig := range out {
			for _, r := range sim.CoreResources() {
				if sig.Get(r) < 0 || sig.Get(r) > 100 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the ramp estimate tracks the true pressure within quantisation
// plus noise for a full-size adversary.
func TestPropRampTracksPressure(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		truth := rng.Range(10, 90)
		s := sim.NewServer("s0", sim.ServerConfig{})
		adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, rng.Split())
		if err := s.Place(adv.VM); err != nil {
			return true
		}
		spec := specWith(map[sim.Resource]float64{sim.MemBW: truth})
		app := workload.NewApp(spec, workload.Constant{Level: 1}, seed)
		if err := s.Place(&sim.VM{ID: "v", VCPUs: 4, App: app}); err != nil {
			return true
		}
		m := adv.Ramp(s, sim.MemBW, 0)
		return math.Abs(m.Pressure-truth) <= 6 // step 4 quantisation + margin
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestProfileUncoreAll(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(5))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	p := adv.ProfileUncore(s, 0, nil)
	for _, r := range sim.UncoreResources() {
		if !p.Known[r] {
			t.Fatalf("ProfileUncore(nil) should measure %v", r)
		}
	}
	// Core resources must never appear.
	for _, r := range sim.CoreResources() {
		if p.Known[r] {
			t.Fatalf("ProfileUncore must skip core resource %v", r)
		}
	}
}

func TestProfileUncoreFiltersCore(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	adv := NewAdversary("adv", 4, Config{NoiseSD: 0.001}, stats.NewRNG(6))
	if err := s.Place(adv.VM); err != nil {
		t.Fatal(err)
	}
	p := adv.ProfileUncore(s, 0, []sim.Resource{sim.L1I, sim.NetBW})
	if p.Known[sim.L1I] {
		t.Fatal("core resource in the request must be ignored")
	}
	if !p.Known[sim.NetBW] {
		t.Fatal("requested uncore resource must be measured")
	}
}
