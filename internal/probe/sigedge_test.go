package probe

import (
	"math"
	"testing"

	"bolt/internal/sim"
)

// TestDedupSignaturesEdgeCases pins dedup behaviour at the boundaries the
// property test cannot target: empty input, exact duplicates, and pairs
// sitting exactly on (and just past) the RMS merge tolerance.
func TestDedupSignaturesEdgeCases(t *testing.T) {
	// A single-resource difference d gives RMS² = d²/4 over the four core
	// resources, so d = 2·sigMergeDist lands exactly on the tolerance.
	onBoundary := 2 * sigMergeDist
	cases := []struct {
		name string
		in   []sim.Vector
		want int
	}{
		{"nil", nil, 0},
		{"empty", []sim.Vector{}, 0},
		{"single", []sim.Vector{coreVec(50, 40, 30, 20)}, 1},
		{"exact duplicates", []sim.Vector{
			coreVec(50, 40, 30, 20),
			coreVec(50, 40, 30, 20),
			coreVec(50, 40, 30, 20),
		}, 1},
		{"exactly on tolerance merges", []sim.Vector{
			coreVec(50, 40, 30, 20),
			coreVec(50+onBoundary, 40, 30, 20),
		}, 1},
		{"just past tolerance separates", []sim.Vector{
			coreVec(50, 40, 30, 20),
			coreVec(50+onBoundary+0.01, 40, 30, 20),
		}, 2},
		{"chain merges into running average", []sim.Vector{
			// Each neighbour is within tolerance of the *running average*,
			// so the whole chain collapses to one signature even though the
			// endpoints alone would not merge.
			coreVec(40, 40, 40, 40),
			coreVec(59, 40, 40, 40), // within 2·sigMergeDist of 40; avg now 49.5
			coreVec(69, 40, 40, 40), // within 2·sigMergeDist of 49.5, not of 40
		}, 1},
		{"distinct stay distinct", []sim.Vector{
			coreVec(80, 60, 40, 30),
			coreVec(20, 25, 15, 85),
			coreVec(55, 90, 70, 10),
		}, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := dedupSignatures(append([]sim.Vector(nil), tc.in...))
			if len(got) != tc.want {
				t.Fatalf("dedupSignatures(%v) -> %d signatures, want %d", tc.in, len(got), tc.want)
			}
		})
	}
}

func TestDedupSignaturesExactDuplicatesAverageToInput(t *testing.T) {
	sig := coreVec(50, 40, 30, 20)
	out := dedupSignatures([]sim.Vector{sig, sig, sig})
	if len(out) != 1 {
		t.Fatalf("got %d signatures, want 1", len(out))
	}
	for _, r := range sim.CoreResources() {
		if got := out[0].Get(r); math.Abs(got-sig.Get(r)) > 1e-12 {
			t.Errorf("averaged duplicate drifted at %v: %g, want %g", r, got, sig.Get(r))
		}
	}
}

func TestMergeSignaturesDoesNotMutateInputs(t *testing.T) {
	old := []sim.Vector{coreVec(80, 60, 40, 30)}
	new_ := []sim.Vector{coreVec(82, 62, 42, 32)}
	oldCopy, newCopy := old[0], new_[0]
	merged := MergeSignatures(old, new_)
	if len(merged) != 1 {
		t.Fatalf("near-identical signatures should merge, got %d", len(merged))
	}
	if old[0] != oldCopy || new_[0] != newCopy {
		t.Error("MergeSignatures mutated its input slices")
	}
}

func TestProfileSparseRoundTrip(t *testing.T) {
	var p Profile
	p.Observed.Set(sim.MemBW, 63.5)
	p.Observed.Set(sim.CPU, 12.25)
	p.Known[sim.MemBW] = true
	p.Known[sim.CPU] = true

	obs, known := p.Sparse()
	if len(obs) != sim.NumResources || len(known) != sim.NumResources {
		t.Fatalf("Sparse lengths = %d/%d, want %d", len(obs), len(known), sim.NumResources)
	}
	for j := 0; j < sim.NumResources; j++ {
		if obs[j] != p.Observed.Get(sim.Resource(j)) {
			t.Errorf("obs[%d] = %g, want %g", j, obs[j], p.Observed.Get(sim.Resource(j)))
		}
		if known[j] != p.Known[j] {
			t.Errorf("known[%d] = %v, want %v", j, known[j], p.Known[j])
		}
	}

	// The returned slices are copies: mutating them must not write through
	// to the profile.
	obs[int(sim.MemBW)] = -1
	known[int(sim.CPU)] = false
	if got := p.Observed.Get(sim.MemBW); got != 63.5 {
		t.Errorf("mutating Sparse obs wrote through: Observed[MemBW] = %g", got)
	}
	if !p.Known[sim.CPU] {
		t.Error("mutating Sparse known wrote through: Known[CPU] flipped")
	}
}
