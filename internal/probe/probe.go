// Package probe implements the adversary side of Bolt's measurement layer:
// tunable contention microbenchmarks (one per shared resource, in the
// spirit of iBench), the ramp-until-degradation profiling procedure of
// §3.2, and the shutter profiling mode of §3.3 for hosts where no victim
// shares a core with the adversary.
package probe

import (
	"sync"

	"bolt/internal/fault"
	"bolt/internal/sim"
	"bolt/internal/stats"
)

// Kernels is the adversarial VM's application: a set of contention kernels,
// one per resource, each running at a settable intensity (percent of the
// host resource it consumes). It implements sim.Demander. Profiling ramps
// one kernel at a time; the DoS attack (§5.1) pins several at high
// intensity. Kernels is safe for concurrent use.
type Kernels struct {
	mu        sync.Mutex
	intensity sim.Vector
	// version counts effective intensity changes; it backs DemandVersion so
	// the server's observation snapshot notices a retuned kernel even at an
	// unchanged tick (the RFA measurement toggles its helper mid-tick).
	version uint64
	// MaxIntensity caps every kernel. Small adversarial VMs cannot generate
	// full-host contention (Fig. 10b); see MaxIntensityFor.
	MaxIntensity float64
}

// NewKernels returns an idle kernel set with the given intensity cap
// (0 means uncapped).
func NewKernels(maxIntensity float64) *Kernels {
	if maxIntensity <= 0 || maxIntensity > 100 {
		maxIntensity = 100
	}
	return &Kernels{MaxIntensity: maxIntensity}
}

// MaxIntensityFor returns the contention ceiling a VM of the given size can
// generate. The paper finds adversaries below 4 vCPUs cannot create enough
// contention to expose co-resident pressure (Fig. 10b); intensity scales
// linearly up to that point.
func MaxIntensityFor(vcpus int) float64 {
	if vcpus >= 4 {
		return 100
	}
	if vcpus <= 0 {
		return 0
	}
	return 25 * float64(vcpus)
}

// Set fixes the kernel for resource r at the given intensity (clamped to
// the VM's ceiling).
func (k *Kernels) Set(r sim.Resource, intensity float64) {
	k.mu.Lock()
	defer k.mu.Unlock()
	if intensity > k.MaxIntensity {
		intensity = k.MaxIntensity
	}
	before := k.intensity.Get(r)
	k.intensity.Set(r, intensity)
	if k.intensity.Get(r) != before {
		k.version++
	}
}

// Get returns the current intensity of the kernel for r.
func (k *Kernels) Get(r sim.Resource) float64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.intensity.Get(r)
}

// Reset idles every kernel.
func (k *Kernels) Reset() {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.intensity != (sim.Vector{}) {
		k.version++
	}
	k.intensity = sim.Vector{}
}

// Demand implements sim.Demander: the adversary exerts exactly its kernel
// intensities.
func (k *Kernels) Demand(sim.Tick) sim.Vector {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.intensity
}

// Sensitivity implements sim.Demander. The adversary does not care about
// its own performance degradation beyond detecting it, so sensitivity is
// zero for the slowdown model.
func (k *Kernels) Sensitivity() sim.Vector { return sim.Vector{} }

// DemandVersion implements sim.DemandVersioner: the kernel intensities are
// mutated out-of-band (ramps, attacks), so the server's per-tick demand
// snapshot keys on this counter.
func (k *Kernels) DemandVersion() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.version
}

var _ sim.Demander = (*Kernels)(nil)
var _ sim.DemandVersioner = (*Kernels)(nil)

// Config tunes the profiling procedure.
type Config struct {
	// Step is the intensity increment per ramp step in percent; 0 means 4.
	Step float64
	// NoiseSD is the measurement noise on the degradation check; 0 means 2.5.
	NoiseSD float64
	// TicksPerStep is how long each ramp step takes; 0 means 1 (100 ms).
	TicksPerStep sim.Tick
	// Faults configures deterministic fault injection on this adversary's
	// measurements (internal/fault). The zero value injects nothing and
	// leaves the probe's random streams untouched; an adversary whose own
	// config is disabled falls back to fault.Default() (the boltbench
	// -faultrate knob).
	Faults fault.Config
}

func (c Config) withDefaults() Config {
	if c.Step == 0 {
		c.Step = 4
	}
	if c.NoiseSD == 0 {
		c.NoiseSD = 2.5
	}
	if c.TicksPerStep == 0 {
		c.TicksPerStep = 1
	}
	return c
}

// Adversary drives profiling from an adversarial VM placed on a server.
type Adversary struct {
	VM      *sim.VM
	Kernels *Kernels
	cfg     Config
	rng     *stats.RNG
	// uncorePerm is ProfileOnce's benchmark-order permutation, reused
	// across iterations. An adversary is single-flow by construction (its
	// rng state already serialises use), so a plain field suffices.
	uncorePerm []int
	// orderBuf backs ProfileOnce's benchmark order; resBuf backs the
	// Resources list of the Profile the Profile* passes return; sigBuf backs
	// CoreSignatures' signature list. All three are reused across profiling
	// calls (see the Profile.Resources lifetime note) — the episode loop
	// runs thousands of passes and these were its last per-pass allocations.
	orderBuf []sim.Resource
	resBuf   []sim.Resource
	sigBuf   []sim.Vector
	// faults is the adversary's fault-injection plane; nil (the common
	// case) means no injection and zero extra random draws.
	faults *fault.Plane
}

// NewAdversary builds an adversarial VM of the given size, ready to be
// placed on a server. Its contention ceiling follows MaxIntensityFor.
func NewAdversary(id string, vcpus int, cfg Config, rng *stats.RNG) *Adversary {
	k := NewKernels(MaxIntensityFor(vcpus))
	a := &Adversary{
		VM:      &sim.VM{ID: id, VCPUs: vcpus, App: k},
		Kernels: k,
		cfg:     cfg.withDefaults(),
		rng:     rng,
	}
	fcfg := a.cfg.Faults
	if !fcfg.Enabled() {
		fcfg = fault.Default()
	}
	if fcfg.Enabled() {
		// The plane gets its own stream so injection decisions never shift
		// the measurement-noise stream; the Split itself happens only when
		// faults are on, keeping the rate-0 noise stream byte-identical to a
		// build without the fault plane.
		a.faults = fault.New(fcfg, rng.Split())
	}
	return a
}

// FaultPlane returns the adversary's fault-injection plane, nil when fault
// injection is disabled (experiments read its Counts).
func (a *Adversary) FaultPlane() *fault.Plane { return a.faults }

// installFaults registers the adversary's fault plane as the server's
// sensor hook for this VM's readings, so the corruption class applies to
// every observation the adversary takes. Idempotent, and a no-op without a
// plane; every profiling entry point calls it because an episode may start
// with any measurement mode.
func (a *Adversary) installFaults(s *sim.Server) {
	if a.faults.Enabled() {
		s.SetObservationFault(a.VM, a.faults)
	}
}

// measure runs one ramp through the fault plane. At the ramp boundary the
// churn class may remove (or re-place) a co-resident; a transiently failed
// ramp is retried with capped exponential backoff (1, 2, 4, ... ticks); a
// dropped measurement is discarded after the ticks were spent. ok reports
// whether a usable measurement was produced, and m.Ticks always charges
// the full time spent, including retries and backoff — faults cost the
// adversary time even when they yield nothing, which is exactly how they
// hurt on real hosts. Without a fault plane this is Ramp, unchanged.
func (a *Adversary) measure(s *sim.Server, r sim.Resource, start sim.Tick) (Measurement, bool) {
	if !a.faults.Enabled() {
		return a.Ramp(s, r, start), true
	}
	a.faults.MaybeChurn(s, a.VM)
	var used sim.Tick
	backoff := sim.Tick(1)
	for attempt := 0; ; attempt++ {
		m := a.Ramp(s, r, start+used)
		used += m.Ticks
		if !a.faults.ProbeFailed(r) {
			m.Ticks = used
			return m, !a.faults.DropMeasurement(r)
		}
		if attempt >= a.faults.MaxRetries() {
			m.Ticks = used
			return m, false
		}
		used += backoff
		backoff *= 2
		if bc := a.faults.BackoffCap(); backoff > bc {
			backoff = bc
		}
	}
}

// detectMargin is the minimum external pressure that registers as
// degradation: a probe running at full intensity in isolation sits exactly
// at capacity and must not read its own demand as a co-resident.
const detectMargin = 2.0

// coreSharedFloor is the measured core pressure above which the adversary
// concludes a victim shares one of its physical cores. It sits above the
// spurious readings measurement noise can produce at the very end of a
// ramp.
const coreSharedFloor = 5.0

// Measurement is the outcome of ramping a single microbenchmark.
type Measurement struct {
	Resource  sim.Resource
	Pressure  float64  // estimated co-resident pressure c_i in [0, 100]
	Ticks     sim.Tick // time the ramp took
	Saturated bool     // ramp ended by detecting degradation (vs. reaching the cap)
}

// Ramp runs the microbenchmark for resource r starting at the given tick:
// intensity increases stepwise from 0 until the benchmark's performance
// drops below its isolated baseline — i.e. until its own demand plus the
// co-residents' pressure exceeds the resource's capacity. The intensity at
// that point yields the pressure estimate c_i = 100 − intensity (plus
// quantisation and measurement noise — the error sources that keep
// detection below 100%).
func (a *Adversary) Ramp(s *sim.Server, r sim.Resource, start sim.Tick) Measurement {
	defer a.Kernels.Set(r, 0)
	var used sim.Tick
	for x := a.cfg.Step; x <= a.Kernels.MaxIntensity; x += a.cfg.Step {
		a.Kernels.Set(r, x)
		t := start + used
		used += a.cfg.TicksPerStep
		observed := s.ObservedPressure(a.VM, r, t)
		noise := a.rng.Norm(0, a.cfg.NoiseSD)
		if x+observed+noise >= 100+detectMargin {
			ci := 100 - x + a.cfg.Step/2 // midpoint of the quantisation bin
			return Measurement{
				Resource:  r,
				Pressure:  stats.Clamp(ci, 0, 100),
				Ticks:     used,
				Saturated: true,
			}
		}
	}
	// Never degraded: co-resident pressure is below what this VM can sense.
	// With a full-size adversary that means ~zero pressure.
	return Measurement{
		Resource: r,
		Pressure: stats.Clamp(100-a.Kernels.MaxIntensity, 0, 100),
		Ticks:    used,
	}
}

// Profile is one complete profiling iteration: the sparse observation
// vector, which resources were actually measured, how long it took, and
// whether the adversary shares a core with any co-resident (zero core
// pressure when not).
//
// Resources aliases a buffer owned by the adversary and is valid only until
// its next Profile* call; callers that fold the profile into their own state
// immediately (the episode loop) need no copy, anyone else must take one.
type Profile struct {
	Observed   sim.Vector
	Known      [sim.NumResources]bool
	Ticks      sim.Tick
	Resources  []sim.Resource
	CoreShared bool
}

// Sparse converts the profile into the (observed, known) pair the
// recommender consumes.
func (p *Profile) Sparse() ([]float64, []bool) {
	return p.Observed.Slice(), append([]bool(nil), p.Known[:]...)
}

// ProfileOnce performs one profiling iteration per §3.2: one randomly
// chosen core benchmark and one uncore benchmark; if the core benchmark
// reports zero pressure (no shared core) a second uncore benchmark is
// added. extraUncore forces additional uncore benchmarks on top (the §3.3
// multi-co-resident path and the Fig. 10c sensitivity sweep).
func (a *Adversary) ProfileOnce(s *sim.Server, start sim.Tick, extraBench int) Profile {
	a.installFaults(s)
	var p Profile
	p.Resources = a.resBuf[:0]
	core := sim.CoreResources()
	uncore := sim.UncoreResources()

	if cap(a.orderBuf) < 3+extraBench {
		a.orderBuf = make([]sim.Resource, 0, 3+extraBench)
	}
	order := a.orderBuf[:0]
	order = append(order, core[a.rng.Intn(len(core))])
	if len(a.uncorePerm) != len(uncore) {
		a.uncorePerm = make([]int, len(uncore))
	}
	a.rng.PermInto(a.uncorePerm)
	uncorePerm := a.uncorePerm
	uncoreAt := 0
	nextUncore := func() sim.Resource {
		r := uncore[uncorePerm[uncoreAt%len(uncore)]]
		uncoreAt++
		return r
	}
	order = append(order, nextUncore())

	t := start
	for i := 0; i < len(order); i++ {
		r := order[i]
		m, ok := a.measure(s, r, t)
		t += m.Ticks
		p.Resources = append(p.Resources, r)
		if !ok {
			// The measurement was lost (dropout, or a failed ramp exhausted
			// its retries): the entry stays unobserved and the profile goes
			// out sparse. A lost first core measurement also says nothing
			// about sharing, so the §3.2 extra-uncore rule fires exactly as
			// for a silent core.
			if r.IsCore() && i == 0 {
				order = append(order, nextUncore())
			}
			continue
		}
		if r.IsCore() && m.Pressure <= coreSharedFloor {
			// A ~zero core reading means no victim shares this core (§3.3),
			// not that the victim has no core pressure: the measurement
			// carries no information about the co-residents and must not be
			// fed to the recommender as a real observation.
			if i == 0 {
				// No shared core: add one more uncore benchmark (§3.2).
				order = append(order, nextUncore())
			}
			continue
		}
		p.Observed.Set(r, m.Pressure)
		p.Known[r] = true
		if r.IsCore() {
			p.CoreShared = true
		}
	}
	for i := 0; i < extraBench; i++ {
		r := nextUncore()
		if p.Known[r] {
			continue
		}
		m, ok := a.measure(s, r, t)
		t += m.Ticks
		p.Resources = append(p.Resources, r)
		if !ok {
			continue
		}
		p.Observed.Set(r, m.Pressure)
		p.Known[r] = true
	}
	a.faults.Settle()
	a.orderBuf, a.resBuf = order, p.Resources
	p.Ticks = t - start
	return p
}

// ProfileCore measures all four core resources (used when at least one
// co-resident shares a core and the first detection attempt failed, §3.3:
// "we profile with an additional core benchmark").
func (a *Adversary) ProfileCore(s *sim.Server, start sim.Tick) Profile {
	a.installFaults(s)
	var p Profile
	p.Resources = a.resBuf[:0]
	t := start
	for _, r := range sim.CoreResources() {
		m, ok := a.measure(s, r, t)
		t += m.Ticks
		p.Resources = append(p.Resources, r)
		if !ok {
			continue
		}
		p.Observed.Set(r, m.Pressure)
		p.Known[r] = true
		if m.Pressure > coreSharedFloor {
			p.CoreShared = true
		}
	}
	if !p.CoreShared {
		// Every core read ~zero: no hyperthread sibling, so none of these
		// measurements say anything about the co-residents.
		p.Observed = sim.Vector{}
		p.Known = [sim.NumResources]bool{}
	}
	a.faults.Settle()
	a.resBuf = p.Resources
	p.Ticks = t - start
	return p
}

// CoreSignatures measures the core-resource pressure on each physical core
// the adversary occupies, returning one 4-entry signature per core that
// carries sibling pressure. The returned slice may alias a buffer owned by
// the adversary and is valid until its next CoreSignatures call; callers
// that keep signatures across passes merge them immediately
// (MergeSignatures copies). Because hyperthreads are never shared between
// VMs, each signature belongs to exactly one co-resident — the anchor the
// mixture disentangling of §3.3 is built on. Probes on different cores run
// concurrently (the adversary owns one hyperthread on each), so the time
// charged is the slowest core's ramp sequence.
func (a *Adversary) CoreSignatures(s *sim.Server, start sim.Tick) ([]sim.Vector, sim.Tick) {
	// Per-core ramps see corruption through the sensor hook; the
	// measurement-level classes (dropout, retry, churn) apply only to the
	// whole-host Profile* passes, which dominate an episode's ramp count.
	a.installFaults(s)
	// The VM's core set is precomputed by Place, already deduplicated and
	// sorted ascending — the order the map+sort construction used to yield.
	coreIdxs := a.VM.Cores()

	sigs := a.sigBuf[:0]
	var maxTicks sim.Tick
	for _, coreIdx := range coreIdxs {
		var sig sim.Vector
		var used sim.Tick
		hasPressure := false
		for _, r := range sim.CoreResources() {
			m := a.rampCore(s, coreIdx, r, start+used)
			used += m.Ticks
			sig.Set(r, m.Pressure)
			if m.Pressure > coreSharedFloor {
				hasPressure = true
			}
		}
		if used > maxTicks {
			maxTicks = used
		}
		if hasPressure {
			sigs = append(sigs, sig)
		}
	}
	a.sigBuf = sigs
	return dedupSignatures(sigs), maxTicks
}

// rampCore is Ramp restricted to one physical core's sibling pressure.
func (a *Adversary) rampCore(s *sim.Server, coreIdx int, r sim.Resource, start sim.Tick) Measurement {
	var used sim.Tick
	for x := a.cfg.Step; x <= a.Kernels.MaxIntensity; x += a.cfg.Step {
		t := start + used
		used += a.cfg.TicksPerStep
		observed := s.ObservedCorePressure(a.VM, coreIdx, r, t)
		noise := a.rng.Norm(0, a.cfg.NoiseSD)
		if x+observed+noise >= 100+detectMargin {
			return Measurement{
				Resource:  r,
				Pressure:  stats.Clamp(100-x+a.cfg.Step/2, 0, 100),
				Ticks:     used,
				Saturated: true,
			}
		}
	}
	return Measurement{
		Resource: r,
		Pressure: stats.Clamp(100-a.Kernels.MaxIntensity, 0, 100),
		Ticks:    used,
	}
}

// sigMergeDist is the RMS core-signature distance below which two
// signatures are treated as the same co-resident (one VM spanning several
// of the adversary's cores).
const sigMergeDist = 10.0

// MergeSignatures combines signature sets from successive passes: entries
// within the merge distance are averaged, new ones appended.
func MergeSignatures(old, new []sim.Vector) []sim.Vector {
	return dedupSignatures(append(append([]sim.Vector(nil), old...), new...))
}

// dedupSignatures merges near-identical signatures by averaging. Zero- and
// one-entry inputs are returned as-is (nothing can merge), so the common
// single-sibling episode pays no allocation here.
func dedupSignatures(sigs []sim.Vector) []sim.Vector {
	if len(sigs) < 2 {
		return sigs
	}
	var out []sim.Vector
	counts := []int{}
	for _, sig := range sigs {
		merged := false
		for i, existing := range out {
			d, n := 0.0, 0.0
			for _, r := range sim.CoreResources() {
				diff := sig.Get(r) - existing.Get(r)
				d += diff * diff
				n++
			}
			if d/n <= sigMergeDist*sigMergeDist {
				// Running average of the merged signature.
				c := float64(counts[i])
				var avg sim.Vector
				for _, r := range sim.CoreResources() {
					avg.Set(r, (existing.Get(r)*c+sig.Get(r))/(c+1))
				}
				out[i] = avg
				counts[i]++
				merged = true
				break
			}
		}
		if !merged {
			out = append(out, sig)
			counts = append(counts, 1)
		}
	}
	return out
}

// ProfileUncore ramps the given uncore resources (all of them when the
// list is empty), used to complete the mixture observation once the core
// side of an episode is covered.
func (a *Adversary) ProfileUncore(s *sim.Server, start sim.Tick, resources []sim.Resource) Profile {
	a.installFaults(s)
	if len(resources) == 0 {
		resources = sim.UncoreResources()
	}
	var p Profile
	p.Resources = a.resBuf[:0]
	t := start
	for _, r := range resources {
		if r.IsCore() {
			continue
		}
		m, ok := a.measure(s, r, t)
		t += m.Ticks
		p.Resources = append(p.Resources, r)
		if !ok {
			continue
		}
		p.Observed.Set(r, m.Pressure)
		p.Known[r] = true
	}
	a.faults.Settle()
	a.resBuf = p.Resources
	p.Ticks = t - start
	return p
}

// mrcLevels is the LLC-intensity sweep of the miss-ratio-curve probe.
var mrcLevels = [...]float64{0, 30, 60, 90}

// CacheResponseSlope runs the miss-ratio-curve probe: the adversary sweeps
// its own LLC kernel across several intensities and measures how the
// observed memory bandwidth responds. The fitted slope (extra observed
// MemBW pressure per unit of own LLC intensity) is the aggregate
// cache-spill response of the co-residents — an independent equation on
// the mixture, useful exactly where shutter mode is weak: constant
// steady-state loads (the §3.3 future-work extension).
func (a *Adversary) CacheResponseSlope(s *sim.Server, start sim.Tick) (float64, sim.Tick) {
	a.installFaults(s)
	defer a.Kernels.Set(sim.LLC, 0)
	const ticksPerLevel = 2
	// The sweep is at most four points; stack arrays keep the per-call
	// regression allocation-free on the episode escalation path.
	var xs, ys [len(mrcLevels)]float64
	n := 0
	var used sim.Tick
	for _, level := range mrcLevels {
		if level > a.Kernels.MaxIntensity {
			break
		}
		a.Kernels.Set(sim.LLC, level)
		sum := 0.0
		for i := sim.Tick(0); i < ticksPerLevel; i++ {
			sum += s.ObservedPressure(a.VM, sim.MemBW, start+used) +
				a.rng.Norm(0, a.cfg.NoiseSD/2)
			used++
		}
		xs[n] = level / 100
		ys[n] = sum / float64(ticksPerLevel)
		n++
	}
	if n < 2 {
		return 0, used
	}
	// Least-squares slope.
	mx, my := meanOf(xs[:n]), meanOf(ys[:n])
	num, den := 0.0, 0.0
	for i := 0; i < n; i++ {
		num += (xs[i] - mx) * (ys[i] - my)
		den += (xs[i] - mx) * (xs[i] - mx)
	}
	if den == 0 {
		return 0, used
	}
	slope := num / den
	if slope < 0 {
		slope = 0 // noise; the physical response cannot be negative
	}
	return slope, used
}

func meanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// ShutterSample is one brief uncore observation.
type ShutterSample struct {
	At       sim.Tick
	Observed sim.Vector // uncore entries only
}

// Shutter runs the shutter profiling mode of §3.3: many brief (one-tick)
// uncore observations spread over a window, hoping to catch at least one
// co-resident in a low-load phase. It returns the samples plus the
// per-resource minimum across the window — the quietest moment, which
// approximates the pressure of the busiest single co-resident when another
// one idles.
func (a *Adversary) Shutter(s *sim.Server, start sim.Tick, samples int, window sim.Tick) ([]ShutterSample, sim.Vector) {
	if samples <= 0 {
		samples = 10
	}
	out := make([]ShutterSample, 0, samples)
	minV := a.shutterPass(s, start, samples, window, func(sm ShutterSample) {
		out = append(out, sm)
	})
	return out, minV
}

// ShutterMin is Shutter returning only the per-resource minima, for callers
// that fold the quietest moment into a stream and discard the individual
// samples (the episode escalation ladder). It consumes exactly the random
// draws Shutter does, so swapping between the two shifts no stream, and it
// allocates nothing.
func (a *Adversary) ShutterMin(s *sim.Server, start sim.Tick, samples int, window sim.Tick) sim.Vector {
	return a.shutterPass(s, start, samples, window, nil)
}

// shutterPass is the shared shutter loop: visit (optional) receives every
// sample, and the per-resource minima are returned.
func (a *Adversary) shutterPass(s *sim.Server, start sim.Tick, samples int, window sim.Tick, visit func(ShutterSample)) sim.Vector {
	a.installFaults(s)
	if samples <= 0 {
		samples = 10
	}
	if window <= 0 {
		window = sim.Tick(samples)
	}
	var minV sim.Vector
	for _, r := range sim.UncoreResources() {
		minV.Set(r, 100)
	}
	for i := 0; i < samples; i++ {
		t := start + sim.Tick(a.rng.Intn(int(window)))
		var obs sim.Vector
		for _, r := range sim.UncoreResources() {
			v := s.ObservedPressure(a.VM, r, t) + a.rng.Norm(0, a.cfg.NoiseSD/2)
			obs.Set(r, v)
			if v < minV.Get(r) {
				minV.Set(r, stats.Clamp(v, 0, 100))
			}
		}
		if visit != nil {
			visit(ShutterSample{At: t, Observed: obs})
		}
	}
	return minV
}
