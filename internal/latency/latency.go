// Package latency models the request latency of interactive services
// (key-value stores, webservers, databases) running on the simulated
// hosts. It is the measurement substrate for the paper's performance
// attacks: the DoS experiment of §5.1 reports 99th-percentile latency
// inflation of 8-140×, and the RFA of §5.2 reports queries-per-second
// losses.
//
// The model is M/M/1-derived: interference on the victim's critical
// resources inflates its service time (via sim.Server.Slowdown), which both
// raises the zero-queue latency and pushes the server's utilisation toward
// saturation, where queueing delay explodes — the dynamic that lets a
// carefully targeted, low-CPU attack blow up tail latency while a naïve
// CPU-saturating attack trips the migration defence first.
package latency

import (
	"math"

	"bolt/internal/sim"
	"bolt/internal/workload"
)

// Service is an interactive application whose latency is being observed.
type Service struct {
	// VM is the victim's placement; the host it sits on supplies the
	// interference.
	VM *sim.VM
	// Pattern is the offered-load curve (fraction of peak QPS).
	Pattern workload.LoadPattern
	// BaseServiceMs is the per-request service time in isolation at zero
	// queueing. 0 means 0.5 ms (a memcached-class request).
	BaseServiceMs float64
	// PeakRho is the server utilisation at full offered load in isolation.
	// 0 means 0.65.
	PeakRho float64
	// PeakQPS is the offered load at pattern factor 1. 0 means 100k.
	PeakQPS float64
}

func (svc *Service) defaults() (base, peakRho, peakQPS float64) {
	base, peakRho, peakQPS = svc.BaseServiceMs, svc.PeakRho, svc.PeakQPS
	if base == 0 {
		base = 0.5
	}
	if peakRho == 0 {
		peakRho = 0.65
	}
	if peakQPS == 0 {
		peakQPS = 100_000
	}
	return base, peakRho, peakQPS
}

// maxQueueBlowup bounds the queueing-delay multiplier at saturation, since
// a real service sheds or times out rather than queueing unboundedly. Its
// value puts the worst-case p99 inflation for a fully saturated victim in
// the paper's observed 140x range.
const maxQueueBlowup = 120

// p99Factor converts mean sojourn time to the 99th percentile for an
// exponential sojourn distribution: −ln(0.01) ≈ 4.6.
var p99Factor = -math.Log(0.01)

// Sample is one latency/throughput observation.
type Sample struct {
	MeanMs      float64
	P99Ms       float64
	QPS         float64
	Utilization float64 // the service's internal utilisation ρ
	Slowdown    float64 // service-time dilation from interference
}

// Measure returns the service's latency and throughput at time t given the
// interference present on its host. The slowdown query rides the host's
// per-tick demand snapshot, so repeated same-tick measurements (the DoS
// timeline samples latency and CPU utilisation at the same instant) cost
// one demand evaluation per co-resident rather than one per query.
func (svc *Service) Measure(host *sim.Server, t sim.Tick) Sample {
	base, peakRho, peakQPS := svc.defaults()
	slow := host.Slowdown(svc.VM, t)
	load := 1.0
	if svc.Pattern != nil {
		load = svc.Pattern.Factor(t)
	}

	serviceMs := base * slow
	rho := peakRho * load * slow
	offered := peakQPS * load

	var meanMs, qps float64
	if rho < 1 {
		meanMs = serviceMs / (1 - rho)
		if meanMs > serviceMs*maxQueueBlowup {
			meanMs = serviceMs * maxQueueBlowup
		}
		qps = offered
	} else {
		// Saturated: the service serves at capacity and queues explode to
		// the shedding bound.
		meanMs = serviceMs * maxQueueBlowup
		qps = offered / rho
	}
	return Sample{
		MeanMs:      meanMs,
		P99Ms:       meanMs * p99Factor,
		QPS:         qps,
		Utilization: rho,
		Slowdown:    slow,
	}
}

// Baseline returns the sample the service would see on an otherwise empty
// host at the same load — the reference point for degradation factors.
func (svc *Service) Baseline(t sim.Tick) Sample {
	base, peakRho, peakQPS := svc.defaults()
	load := 1.0
	if svc.Pattern != nil {
		load = svc.Pattern.Factor(t)
	}
	rho := peakRho * load
	meanMs := base / (1 - rho)
	return Sample{
		MeanMs:      meanMs,
		P99Ms:       meanMs * p99Factor,
		QPS:         peakQPS * load,
		Utilization: rho,
		Slowdown:    1,
	}
}

// DegradationFactor returns how many times worse the observed p99 latency
// is than the isolated baseline at the same instant.
func (svc *Service) DegradationFactor(host *sim.Server, t sim.Tick) float64 {
	obs := svc.Measure(host, t)
	ref := svc.Baseline(t)
	if ref.P99Ms == 0 {
		return 1
	}
	return obs.P99Ms / ref.P99Ms
}

// BatchJob models the execution-time impact of interference on a batch
// application: the job needs Work abstract units; each tick contributes
// 1/slowdown units. Run returns how many ticks the job took and the
// slowdown factor relative to an interference-free run.
type BatchJob struct {
	VM   *sim.VM
	Work float64 // ticks of work at slowdown 1
}

// Run executes the job to completion on the host starting at the given
// tick, up to maxTicks (0 means 100× the isolated duration).
func (b *BatchJob) Run(host *sim.Server, start sim.Tick, maxTicks sim.Tick) (sim.Tick, float64) {
	if b.Work <= 0 {
		return 0, 1
	}
	if maxTicks == 0 {
		maxTicks = sim.Tick(b.Work * 100)
	}
	done := 0.0
	var used sim.Tick
	for done < b.Work && used < maxTicks {
		slow := host.Slowdown(b.VM, start+used)
		done += 1 / slow
		used++
	}
	return used, float64(used) / b.Work
}
