package latency

import (
	"testing"
	"testing/quick"

	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// TestPropLatencyMonotoneInContention: more contention on the victim's
// critical resource must never reduce its p99 latency.
func TestPropLatencyMonotoneInContention(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := sim.NewServer("s0", sim.ServerConfig{})
		spec := workload.Memcached(rng.Split(), int(seed%18))
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: 1}, seed)
		vm := &sim.VM{ID: "v", VCPUs: 4, App: app}
		if err := s.Place(vm); err != nil {
			return true
		}
		k := probe.NewKernels(100)
		adv := &sim.VM{ID: "adv", VCPUs: 4, App: k}
		if err := s.Place(adv); err != nil {
			return true
		}
		svc := &Service{VM: vm, Pattern: workload.Constant{Level: 0.9}}

		target := spec.Base.Dominant()
		if target.IsCore() && !s.SharesCore(vm, adv) {
			target = sim.LLC
		}
		prev := svc.Measure(s, 0).P99Ms
		for _, intensity := range []float64{20, 50, 80, 95} {
			k.Set(target, intensity)
			cur := svc.Measure(s, 0).P99Ms
			if cur+1e-9 < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropSamplesFinite: every sample field must be finite and
// non-negative regardless of configuration.
func TestPropSamplesFinite(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := sim.NewServer("s0", sim.ServerConfig{})
		g := workload.Generators()[rng.Intn(len(workload.Generators()))]
		spec := g.Make(rng.Split(), rng.Intn(24))
		spec.Jitter = 0
		app := workload.NewApp(spec, workload.Constant{Level: rng.Range(0.1, 1)}, seed)
		vm := &sim.VM{ID: "v", VCPUs: 1 + rng.Intn(6), App: app}
		if err := s.Place(vm); err != nil {
			return true
		}
		k := probe.NewKernels(100)
		for _, r := range sim.AllResources() {
			if rng.Bool(0.4) {
				k.Set(r, rng.Range(0, 100))
			}
		}
		if err := s.Place(&sim.VM{ID: "adv", VCPUs: 4, App: k}); err != nil {
			return true
		}
		svc := &Service{
			VM:            vm,
			Pattern:       workload.Constant{Level: rng.Range(0, 1)},
			BaseServiceMs: rng.Range(0.1, 10),
			PeakRho:       rng.Range(0.1, 0.95),
		}
		o := svc.Measure(s, sim.Tick(rng.Intn(1000)))
		bad := func(x float64) bool { return x < 0 || x != x || x > 1e12 }
		return !(bad(o.MeanMs) || bad(o.P99Ms) || bad(o.QPS) || bad(o.Utilization) || o.Slowdown < 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestPropQueueBounded: the shedding bound must cap latency even under
// absurd saturation.
func TestPropQueueBounded(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	spec := workload.Memcached(stats.NewRNG(1), 0)
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	vm := &sim.VM{ID: "v", VCPUs: 4, App: app}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	k := probe.NewKernels(100)
	for _, r := range sim.AllResources() {
		k.Set(r, 100)
	}
	if err := s.Place(&sim.VM{ID: "adv", VCPUs: 4, App: k}); err != nil {
		t.Fatal(err)
	}
	svc := &Service{VM: vm, Pattern: workload.Constant{Level: 1}}
	o := svc.Measure(s, 0)
	maxMean := 0.5 * o.Slowdown * maxQueueBlowup
	if o.MeanMs > maxMean+1e-9 {
		t.Fatalf("mean %v exceeds the shedding bound %v", o.MeanMs, maxMean)
	}
}

// TestBatchJobMaxTicksCap: a pathological job must stop at the cap.
func TestBatchJobMaxTicksCap(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	spec := workload.Spark(stats.NewRNG(2), 0)
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	vm := &sim.VM{ID: "v", VCPUs: 4, App: app}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	job := &BatchJob{VM: vm, Work: 1000}
	ticks, _ := job.Run(s, 0, 50)
	if ticks != 50 {
		t.Fatalf("job should stop at the 50-tick cap, ran %d", ticks)
	}
}
