package latency

import (
	"math"
	"testing"

	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// victimService builds a memcached-like service placed on a fresh server.
func victimService(t *testing.T) (*Service, *sim.Server) {
	t.Helper()
	s := sim.NewServer("s0", sim.ServerConfig{})
	spec := workload.Memcached(stats.NewRNG(1), 0)
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	vm := &sim.VM{ID: "victim", VCPUs: 4, App: app}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	return &Service{VM: vm, Pattern: workload.Constant{Level: 1}}, s
}

func TestBaselineFinite(t *testing.T) {
	svc, _ := victimService(t)
	b := svc.Baseline(0)
	if b.MeanMs <= 0 || math.IsInf(b.MeanMs, 0) {
		t.Fatalf("baseline mean %v not finite positive", b.MeanMs)
	}
	if b.P99Ms <= b.MeanMs {
		t.Fatal("p99 must exceed the mean")
	}
	if b.Slowdown != 1 {
		t.Fatal("baseline slowdown must be 1")
	}
}

func TestIsolatedMatchesBaseline(t *testing.T) {
	svc, s := victimService(t)
	obs := svc.Measure(s, 0)
	ref := svc.Baseline(0)
	if math.Abs(obs.MeanMs-ref.MeanMs) > 1e-9 {
		t.Fatalf("isolated service should match baseline: %v vs %v", obs.MeanMs, ref.MeanMs)
	}
	if f := svc.DegradationFactor(s, 0); math.Abs(f-1) > 1e-9 {
		t.Fatalf("isolated degradation factor = %v, want 1", f)
	}
}

func TestTargetedContentionExplodesTail(t *testing.T) {
	svc, s := victimService(t)
	// Attack the victim's two most critical resources at high intensity —
	// exactly what Bolt's DoS does.
	k := probe.NewKernels(100)
	crit := svc.VM.App.Demand(0).TopK(2)
	for _, r := range crit {
		k.Set(r, 90)
	}
	adv := &sim.VM{ID: "adv", VCPUs: 4, App: k}
	if err := s.Place(adv); err != nil {
		t.Fatal(err)
	}
	f := svc.DegradationFactor(s, 0)
	if f < 8 {
		t.Fatalf("targeted DoS degradation %vx, want ≥8x (paper: 8-140x)", f)
	}
}

func TestUntargetedContentionHurtsLess(t *testing.T) {
	svc, s := victimService(t)
	// Contention on resources the victim barely uses (disk).
	k := probe.NewKernels(100)
	k.Set(sim.DiskBW, 90)
	k.Set(sim.DiskCap, 90)
	adv := &sim.VM{ID: "adv", VCPUs: 4, App: k}
	if err := s.Place(adv); err != nil {
		t.Fatal(err)
	}
	f := svc.DegradationFactor(s, 0)
	if f > 2 {
		t.Fatalf("off-target contention degraded %vx; memcached ignores disk", f)
	}
}

func TestSaturationShedsThroughput(t *testing.T) {
	svc, s := victimService(t)
	k := probe.NewKernels(100)
	for _, r := range svc.VM.App.Demand(0).TopK(3) {
		k.Set(r, 95)
	}
	if err := s.Place(&sim.VM{ID: "adv", VCPUs: 4, App: k}); err != nil {
		t.Fatal(err)
	}
	obs := svc.Measure(s, 0)
	ref := svc.Baseline(0)
	if obs.Utilization < 1 {
		t.Skip("attack did not saturate in this configuration")
	}
	if obs.QPS >= ref.QPS {
		t.Fatal("saturated service must lose throughput")
	}
}

func TestLoadScalesLatency(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	spec := workload.Memcached(stats.NewRNG(2), 0)
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	vm := &sim.VM{ID: "v", VCPUs: 4, App: app}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	low := &Service{VM: vm, Pattern: workload.Constant{Level: 0.2}}
	high := &Service{VM: vm, Pattern: workload.Constant{Level: 0.95}}
	if low.Baseline(0).MeanMs >= high.Baseline(0).MeanMs {
		t.Fatal("higher load must mean higher latency")
	}
}

func TestBatchJobIsolated(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	spec := workload.SpecCPU(stats.NewRNG(3), 0)
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	vm := &sim.VM{ID: "job", VCPUs: 2, App: app}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	job := &BatchJob{VM: vm, Work: 100}
	ticks, slow := job.Run(s, 0, 0)
	if ticks != 100 || slow != 1 {
		t.Fatalf("isolated job: %d ticks slow %v, want 100 ticks slow 1", ticks, slow)
	}
}

func TestBatchJobUnderContention(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	spec := workload.SpecCPU(stats.NewRNG(4), 0) // mcf: memory bound
	spec.Jitter = 0
	app := workload.NewApp(spec, workload.Constant{Level: 1}, 1)
	vm := &sim.VM{ID: "job", VCPUs: 2, App: app}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	k := probe.NewKernels(100)
	k.Set(sim.MemBW, 95)
	k.Set(sim.LLC, 95)
	if err := s.Place(&sim.VM{ID: "adv", VCPUs: 4, App: k}); err != nil {
		t.Fatal(err)
	}
	job := &BatchJob{VM: vm, Work: 100}
	ticks, slow := job.Run(s, 0, 0)
	if slow <= 1.2 {
		t.Fatalf("contended job slowdown %v, want > 1.2", slow)
	}
	if ticks <= 100 {
		t.Fatal("contended job must take longer than isolated")
	}
}

func TestBatchJobZeroWork(t *testing.T) {
	s := sim.NewServer("s0", sim.ServerConfig{})
	vm := &sim.VM{ID: "j", VCPUs: 1, App: probe.NewKernels(100)}
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	job := &BatchJob{VM: vm}
	if ticks, slow := job.Run(s, 0, 0); ticks != 0 || slow != 1 {
		t.Fatal("zero-work job should finish immediately")
	}
}

func TestDefaults(t *testing.T) {
	svc := &Service{}
	base, rho, qps := svc.defaults()
	if base != 0.5 || rho != 0.65 || qps != 100_000 {
		t.Fatalf("defaults wrong: %v %v %v", base, rho, qps)
	}
}
