package sim

import (
	"testing"
	"testing/quick"

	"bolt/internal/stats"
)

// randomServer builds a server with a random population of VMs exerting
// random demand, for property tests.
func randomServer(seed uint64) (*Server, *stats.RNG) {
	rng := stats.NewRNG(seed)
	s := NewServer("prop", ServerConfig{
		Cores:          2 + rng.Intn(14),
		ThreadsPerCore: 1 + rng.Intn(2),
	})
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		var demand Vector
		for r := range demand {
			demand[r] = rng.Range(0, 100)
		}
		vm := newVM(string(rune('a'+i)), 1+rng.Intn(4), demand)
		if err := s.Place(vm); err != nil {
			break
		}
	}
	return s, rng
}

func TestPropObservedPressureBounded(t *testing.T) {
	f := func(seed uint64) bool {
		s, _ := randomServer(seed)
		observer := newVM("obs", 2, Vector{})
		if err := s.Place(observer); err != nil {
			return true // full host: nothing to check
		}
		for _, r := range AllResources() {
			p := s.ObservedPressure(observer, r, 0)
			if p < 0 || p > 100 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPerCorePressureNeverExceedsAggregate(t *testing.T) {
	// The aggregate core observation sums every core-sharing VM; a single
	// core's sibling pressure can never exceed it (before clamping).
	f := func(seed uint64) bool {
		s, _ := randomServer(seed)
		observer := newVM("obs", 4, Vector{})
		if err := s.Place(observer); err != nil {
			return true
		}
		for _, r := range CoreResources() {
			agg := s.ObservedPressure(observer, r, 0)
			for _, core := range observer.Cores() {
				per := s.ObservedCorePressure(observer, core, r, 0)
				if per > agg+1e-9 && agg < 100 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSlowdownAtLeastOne(t *testing.T) {
	f := func(seed uint64) bool {
		s, rng := randomServer(seed)
		var demand, sens Vector
		for r := range demand {
			demand[r] = rng.Range(0, 100)
			sens[r] = rng.Range(0, 100)
		}
		victim := &VM{ID: "victim", VCPUs: 2, App: fixedApp{demand, sens.Scale(0.01)}}
		if err := s.Place(victim); err != nil {
			return true
		}
		return s.Slowdown(victim, 0) >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropPlacementNeverDoubleBooks(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := NewServer("prop", ServerConfig{
			Cores:          2 + rng.Intn(8),
			ThreadsPerCore: 2,
			DedicatedCores: rng.Bool(0.3),
		})
		var vms []*VM
		for i := 0; i < 10; i++ {
			vm := newVM(string(rune('a'+i)), 1+rng.Intn(5), Vector{})
			if err := s.Place(vm); err == nil {
				vms = append(vms, vm)
			}
			// Randomly remove someone to exercise slot recycling.
			if len(vms) > 0 && rng.Bool(0.3) {
				victim := vms[rng.Intn(len(vms))]
				s.Remove(victim.ID)
				for j, v := range vms {
					if v == victim {
						vms = append(vms[:j], vms[j+1:]...)
						break
					}
				}
			}
		}
		// Invariant: no hyperthread slot belongs to two VMs.
		seen := map[Slot]string{}
		for _, vm := range s.VMs() {
			for _, sl := range vm.Slots() {
				if owner, taken := seen[sl]; taken {
					t.Logf("slot %v owned by %s and %s", sl, owner, vm.ID)
					return false
				}
				seen[sl] = vm.ID
			}
		}
		// Invariant: used + free = total.
		used := 0
		for _, vm := range s.VMs() {
			used += len(vm.Slots())
		}
		if s.Config().DedicatedCores {
			// Reserved-but-unlisted threads make used ≤ total − free.
			return used <= s.TotalVCPUs()-s.FreeVCPUs()
		}
		return used == s.TotalVCPUs()-s.FreeVCPUs()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropSharesCoreSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		s, _ := randomServer(seed)
		vms := s.VMs()
		for i := range vms {
			for j := range vms {
				if s.SharesCore(vms[i], vms[j]) != s.SharesCore(vms[j], vms[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPropDedicatedCoresNeverShared(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		s := NewServer("prop", ServerConfig{Cores: 8, ThreadsPerCore: 2, DedicatedCores: true})
		for i := 0; i < 8; i++ {
			vm := newVM(string(rune('a'+i)), 1+rng.Intn(4), Vector{})
			if err := s.Place(vm); err != nil {
				break
			}
		}
		vms := s.VMs()
		for i := range vms {
			for j := i + 1; j < len(vms); j++ {
				if s.SharesCore(vms[i], vms[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestVMsOnCore(t *testing.T) {
	s := NewServer("s0", ServerConfig{Cores: 2, ThreadsPerCore: 2})
	a := newVM("a", 1, Vector{}) // (0,0)
	b := newVM("b", 1, Vector{}) // (1,0)
	c := newVM("c", 2, Vector{}) // (0,1),(1,1)
	for _, vm := range []*VM{a, b, c} {
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	on0 := s.VMsOnCore(a, 0)
	if len(on0) != 1 || on0[0] != c {
		t.Fatalf("VMsOnCore(a, 0) = %v, want [c]", on0)
	}
	if got := s.VMsOnCore(c, 0); len(got) != 1 || got[0] != a {
		t.Fatalf("VMsOnCore(c, 0) = %v, want [a]", got)
	}
}

func TestObservedCorePressurePerCore(t *testing.T) {
	s := NewServer("s0", ServerConfig{Cores: 2, ThreadsPerCore: 2})
	obs := newVM("obs", 2, Vector{})                         // cores 0,1 thread 0
	v1 := newVM("v1", 1, vec(map[Resource]float64{L1I: 60})) // (0,1)
	v2 := newVM("v2", 1, vec(map[Resource]float64{L1I: 30})) // (1,1)
	for _, vm := range []*VM{obs, v1, v2} {
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ObservedCorePressure(obs, 0, L1I, 0); got != 60 {
		t.Fatalf("core 0 pressure = %v, want 60 (v1 only)", got)
	}
	if got := s.ObservedCorePressure(obs, 1, L1I, 0); got != 30 {
		t.Fatalf("core 1 pressure = %v, want 30 (v2 only)", got)
	}
	// Aggregate sums both siblings.
	if got := s.ObservedPressure(obs, L1I, 0); got != 90 {
		t.Fatalf("aggregate = %v, want 90", got)
	}
	// Uncore falls back to the host-wide observation.
	if got := s.ObservedCorePressure(obs, 0, LLC, 0); got != s.ObservedPressure(obs, LLC, 0) {
		t.Fatal("uncore per-core query should match the host-wide one")
	}
}
