package sim

import (
	"errors"
	"fmt"
)

// Tick is the simulator's time unit. TickDur is its wall-clock meaning; the
// paper's probes run for a few hundred milliseconds each, so one tick is
// 100 ms throughout the repository.
type Tick int64

// TickMillis is the wall-clock duration of one tick in milliseconds.
const TickMillis = 100

// TicksPerSecond converts between ticks and seconds.
const TicksPerSecond = 1000 / TickMillis

// Seconds returns the tick count as seconds.
func (t Tick) Seconds() float64 { return float64(t) / TicksPerSecond }

// Demander is the behaviour a VM exposes to the host: the pressure it puts
// on every shared resource at a given time (as a percentage of the host's
// capacity for that resource) and its sensitivity to contention on each
// resource (0-1). Application models in internal/workload implement it.
//
// Demand(t) must be deterministic for a fixed t and fixed world state:
// the server's observation plane evaluates each VM's demand once per tick
// and serves every same-tick observation from that snapshot. A Demander
// whose output can change between two calls at the same tick (because some
// out-of-band state was mutated, like a contention kernel's intensity)
// must also implement DemandVersioner so the snapshot can be invalidated.
type Demander interface {
	Demand(t Tick) Vector
	Sensitivity() Vector
}

// DemandVersioner is implemented by Demanders whose Demand(t) can change
// at a fixed tick through out-of-band mutation (probe kernels being
// retuned, an attack toggling its helpers). DemandVersion must return a
// counter that increases whenever the next Demand call might differ from
// the previous one at the same tick. Mutations that arrive through the
// server itself — placement changes — are tracked by the server's own
// epoch and need no version; and a Demander that derives its output from
// co-residents' demands (workload.Reactive) is covered transitively,
// because any change to its inputs either bumps a version or the epoch,
// and invalidation rebuilds the whole snapshot.
type DemandVersioner interface {
	DemandVersion() uint64
}

// Slot identifies one hyperthread: physical core index and thread index
// within the core.
type Slot struct {
	Core, Thread int
}

// VM is one virtual machine (or container, or baremetal process — the
// platform distinction lives in internal/isolation) placed on a server.
type VM struct {
	ID    string
	VCPUs int
	App   Demander

	slots []Slot
	// coreMask has bit c set when the VM holds a hyperthread of physical
	// core c; coreList is the same set as a sorted slice. Both are
	// maintained by Place/Remove so topology queries on the observation
	// hot path never rebuild a set per call.
	coreMask []uint64
	coreList []int
}

// Slots returns a copy of the hyperthread slots assigned to the VM.
// In-package hot paths iterate vm.slots directly.
func (vm *VM) Slots() []Slot {
	return append([]Slot(nil), vm.slots...)
}

// Cores returns the physical core indices the VM occupies, in ascending
// order. The set is precomputed by Place; the returned slice is a copy.
// In-package hot paths use vm.coreList / vm.coreMask directly.
func (vm *VM) Cores() []int {
	return append([]int(nil), vm.coreList...)
}

// occupiesCore reports whether the VM holds a hyperthread of core c.
//
//bolt:hotpath
func (vm *VM) occupiesCore(c int) bool {
	w := uint(c) >> 6
	return int(w) < len(vm.coreMask) && vm.coreMask[w]&(1<<(uint(c)&63)) != 0
}

// rebuildCoreCache recomputes coreMask/coreList from the VM's slots.
func (vm *VM) rebuildCoreCache(hostCores int) {
	words := (hostCores + 63) / 64
	if cap(vm.coreMask) < words {
		vm.coreMask = make([]uint64, words)
	} else {
		vm.coreMask = vm.coreMask[:words]
		for i := range vm.coreMask {
			vm.coreMask[i] = 0
		}
	}
	for _, sl := range vm.slots {
		vm.coreMask[uint(sl.Core)>>6] |= 1 << (uint(sl.Core) & 63)
	}
	vm.coreList = vm.coreList[:0]
	for c := 0; c < hostCores; c++ {
		if vm.occupiesCore(c) {
			vm.coreList = append(vm.coreList, c)
		}
	}
}

// masksOverlap reports whether two core masks share a set bit.
//
//bolt:hotpath
func masksOverlap(a, b []uint64) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i]&b[i] != 0 {
			return true
		}
	}
	return false
}

// ServerConfig describes a physical host. The defaults model the paper's
// testbed: 8 physical cores, 2-way hyperthreading.
type ServerConfig struct {
	Cores          int // physical cores; 0 means 8
	ThreadsPerCore int // hyperthreads per core; 0 means 2
	// Visibility attenuates the contention observable (and felt) on each
	// resource, 0-1. Isolation mechanisms lower entries; the zero value is
	// replaced with full visibility (all ones).
	Visibility *Vector
	// DedicatedCores forbids two VMs from sharing a physical core (the
	// paper's "core isolation" defence, §6).
	DedicatedCores bool
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.ThreadsPerCore == 0 {
		c.ThreadsPerCore = 2
	}
	if c.Visibility == nil {
		var v Vector
		for i := range v {
			v[i] = 1
		}
		c.Visibility = &v
	}
	return c
}

// Server is one physical host: a hyperthread topology plus the set of VMs
// placed on it. It is the substrate probes measure against and attacks run
// on. Server is not safe for concurrent use.
type Server struct {
	cfg  ServerConfig
	name string
	vms  []*VM
	// free[i] is true when hyperthread slot i (core i/tpc, thread i%tpc) is
	// unoccupied.
	free []bool
	// byID indexes vms by VM.ID so Lookup (and Place's duplicate check) is
	// O(1); cluster construction used to be O(n²) in VMs per host.
	byID map[string]*VM
	// epoch counts placement changes; the observation snapshot records the
	// epoch it was built at and rebuilds when they diverge.
	epoch uint64
	// obs is the per-tick observation snapshot (observation.go).
	obs obsPlane
	// obsFault, when set, intercepts single-resource sensor readings served
	// to obsFaultVM (the registered adversary); see SetObservationFault.
	obsFault   ObservationFault
	obsFaultVM *VM
}

// ErrNoCapacity is returned when a VM cannot be placed on a server.
var ErrNoCapacity = errors.New("sim: insufficient vCPU capacity")

// NewServer returns an empty server with the given configuration.
func NewServer(name string, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		name: name,
		free: make([]bool, cfg.Cores*cfg.ThreadsPerCore),
		byID: make(map[string]*VM),
	}
	for i := range s.free {
		s.free[i] = true
	}
	return s
}

// Name returns the server's identifier.
func (s *Server) Name() string { return s.name }

// Config returns the server's configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// TotalVCPUs returns the host's hyperthread count.
func (s *Server) TotalVCPUs() int { return s.cfg.Cores * s.cfg.ThreadsPerCore }

// FreeVCPUs returns the number of unassigned hyperthreads.
func (s *Server) FreeVCPUs() int {
	n := 0
	for _, f := range s.free {
		if f {
			n++
		}
	}
	return n
}

// VMs returns a copy of the VMs currently placed on the server.
// In-package hot paths iterate s.vms directly.
func (s *Server) VMs() []*VM {
	return append([]*VM(nil), s.vms...)
}

// VMCount returns the number of VMs placed on the server without copying
// the slice — the per-server occupancy read a fleet tick takes on every
// host every tick.
//
//bolt:hotpath
func (s *Server) VMCount() int { return len(s.vms) }

// Lookup returns the VM with the given ID, or nil.
//
//bolt:hotpath
func (s *Server) Lookup(id string) *VM {
	return s.byID[id]
}

func (s *Server) slotIndex(sl Slot) int {
	return sl.Core*s.cfg.ThreadsPerCore + sl.Thread
}

func (s *Server) slotAt(i int) Slot {
	return Slot{Core: i / s.cfg.ThreadsPerCore, Thread: i % s.cfg.ThreadsPerCore}
}

// Place assigns hyperthread slots to the VM and adds it to the server.
// Placement policy: hyperthreads of one VM are packed onto as few physical
// cores as possible (matching how cloud providers expose paired vCPUs), and
// no hyperthread is ever shared between two VMs — the paper notes 1 vCPU is
// the minimum dedicated unit in public clouds. Under DedicatedCores a VM is
// only placed on cores none of whose threads belong to another VM, and the
// whole core is reserved.
func (s *Server) Place(vm *VM) error {
	if vm.VCPUs <= 0 {
		return fmt.Errorf("sim: VM %q has %d vCPUs", vm.ID, vm.VCPUs)
	}
	if s.byID[vm.ID] != nil {
		return fmt.Errorf("sim: VM %q already placed on %s", vm.ID, s.name)
	}
	tpc := s.cfg.ThreadsPerCore

	var chosen []int
	if s.cfg.DedicatedCores {
		// Reserve whole cores: ceil(vcpus / tpc) fully free cores.
		coresNeeded := (vm.VCPUs + tpc - 1) / tpc
		for core := 0; core < s.cfg.Cores && coresNeeded > 0; core++ {
			allFree := true
			for th := 0; th < tpc; th++ {
				if !s.free[core*tpc+th] {
					allFree = false
					break
				}
			}
			if !allFree {
				continue
			}
			for th := 0; th < tpc; th++ {
				chosen = append(chosen, core*tpc+th)
			}
			coresNeeded--
		}
		if coresNeeded > 0 {
			return ErrNoCapacity
		}
	} else {
		// Breadth-first over cores: fill thread 0 of every core before any
		// thread 1, the way OS and hypervisor schedulers spread runnable
		// vCPUs to maximise per-thread throughput. As the host fills up,
		// later VMs land on the second hyperthreads of earlier VMs' cores —
		// which is exactly why hyperthread co-residency with strangers is
		// the norm in multi-tenant clouds (§3.4).
		for th := 0; th < tpc && len(chosen) < vm.VCPUs; th++ {
			for core := 0; core < s.cfg.Cores && len(chosen) < vm.VCPUs; core++ {
				if i := core*tpc + th; s.free[i] {
					chosen = append(chosen, i)
				}
			}
		}
		if len(chosen) < vm.VCPUs {
			return ErrNoCapacity
		}
	}

	vm.slots = vm.slots[:0]
	for _, i := range chosen {
		s.free[i] = false
		if !s.cfg.DedicatedCores || len(vm.slots) < vm.VCPUs {
			vm.slots = append(vm.slots, s.slotAt(i))
		}
	}
	// Under DedicatedCores extra reserved threads stay marked used but are
	// not listed as VM slots; they are simply burned capacity (the paper's
	// utilisation penalty).
	vm.rebuildCoreCache(s.cfg.Cores)
	s.vms = append(s.vms, vm)
	s.byID[vm.ID] = vm
	s.epoch++
	return nil
}

// Remove detaches the VM with the given ID, freeing its slots (and, under
// DedicatedCores, the rest of each reserved core). It reports whether a VM
// was removed.
func (s *Server) Remove(id string) bool {
	vm := s.byID[id]
	if vm == nil {
		return false
	}
	for _, sl := range vm.slots {
		if s.cfg.DedicatedCores {
			for th := 0; th < s.cfg.ThreadsPerCore; th++ {
				s.free[sl.Core*s.cfg.ThreadsPerCore+th] = true
			}
		} else {
			s.free[s.slotIndex(sl)] = true
		}
	}
	vm.slots = nil
	vm.coreMask = nil
	vm.coreList = nil
	for i, v := range s.vms {
		if v == vm {
			s.vms = append(s.vms[:i], s.vms[i+1:]...)
			break
		}
	}
	delete(s.byID, id)
	s.epoch++
	return true
}

// SharesCore reports whether the two VMs occupy hyperthreads of at least one
// common physical core.
//
//bolt:hotpath
func (s *Server) SharesCore(a, b *VM) bool {
	if a == nil || b == nil || a == b {
		return false
	}
	return masksOverlap(a.coreMask, b.coreMask)
}

// sharesAnyCore reports whether the observer shares a physical core with
// any VM placed on the server.
//
//bolt:hotpath
func (s *Server) sharesAnyCore(observer *VM) bool {
	if observer == nil {
		return false
	}
	for _, vm := range s.vms {
		if vm != observer && masksOverlap(observer.coreMask, vm.coreMask) {
			return true
		}
	}
	return false
}

// CoreNeighbors returns the co-resident VMs sharing at least one physical
// core with vm.
func (s *Server) CoreNeighbors(vm *VM) []*VM {
	var out []*VM
	for _, other := range s.vms {
		if other != vm && s.SharesCore(vm, other) {
			out = append(out, other)
		}
	}
	return out
}

// VMsOnCore returns the VMs other than observer holding a hyperthread of
// the given physical core.
func (s *Server) VMsOnCore(observer *VM, coreIdx int) []*VM {
	var out []*VM
	for _, vm := range s.vms {
		if vm != observer && vm.occupiesCore(coreIdx) {
			out = append(out, vm)
		}
	}
	return out
}

// CacheSpillFactor returns how strongly an application's memory traffic
// responds to losing last-level-cache capacity: a cache-resident workload
// (high LLC pressure, modest streaming bandwidth) converts squeezed cache
// into extra DRAM traffic almost one-for-one, while a streaming workload is
// already missing and barely changes. This is the physical effect behind
// miss-ratio curves, and the signal the §3.3 future-work extension (per-job
// cache miss rate curves) exploits.
func CacheSpillFactor(d Vector) float64 {
	llc, bw := d.Get(LLC), d.Get(MemBW)
	if llc == 0 {
		return 0
	}
	return llc / (llc + bw + 20)
}

// SpillScale converts squeezed-cache pressure into extra observed memory
// bandwidth (dimensionless; <1 because some misses hit deeper caches or
// get amortised by prefetching).
const SpillScale = 0.4
