package sim

import (
	"errors"
	"fmt"
)

// Tick is the simulator's time unit. TickDur is its wall-clock meaning; the
// paper's probes run for a few hundred milliseconds each, so one tick is
// 100 ms throughout the repository.
type Tick int64

// TickMillis is the wall-clock duration of one tick in milliseconds.
const TickMillis = 100

// TicksPerSecond converts between ticks and seconds.
const TicksPerSecond = 1000 / TickMillis

// Seconds returns the tick count as seconds.
func (t Tick) Seconds() float64 { return float64(t) / TicksPerSecond }

// Demander is the behaviour a VM exposes to the host: the pressure it puts
// on every shared resource at a given time (as a percentage of the host's
// capacity for that resource) and its sensitivity to contention on each
// resource (0-1). Application models in internal/workload implement it.
type Demander interface {
	Demand(t Tick) Vector
	Sensitivity() Vector
}

// Slot identifies one hyperthread: physical core index and thread index
// within the core.
type Slot struct {
	Core, Thread int
}

// VM is one virtual machine (or container, or baremetal process — the
// platform distinction lives in internal/isolation) placed on a server.
type VM struct {
	ID    string
	VCPUs int
	App   Demander

	slots []Slot
}

// Slots returns the hyperthread slots assigned to the VM.
func (vm *VM) Slots() []Slot {
	return append([]Slot(nil), vm.slots...)
}

// Cores returns the set of physical core indices the VM occupies.
func (vm *VM) Cores() map[int]bool {
	cores := make(map[int]bool, len(vm.slots))
	for _, s := range vm.slots {
		cores[s.Core] = true
	}
	return cores
}

// ServerConfig describes a physical host. The defaults model the paper's
// testbed: 8 physical cores, 2-way hyperthreading.
type ServerConfig struct {
	Cores          int // physical cores; 0 means 8
	ThreadsPerCore int // hyperthreads per core; 0 means 2
	// Visibility attenuates the contention observable (and felt) on each
	// resource, 0-1. Isolation mechanisms lower entries; the zero value is
	// replaced with full visibility (all ones).
	Visibility *Vector
	// DedicatedCores forbids two VMs from sharing a physical core (the
	// paper's "core isolation" defence, §6).
	DedicatedCores bool
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.Cores == 0 {
		c.Cores = 8
	}
	if c.ThreadsPerCore == 0 {
		c.ThreadsPerCore = 2
	}
	if c.Visibility == nil {
		var v Vector
		for i := range v {
			v[i] = 1
		}
		c.Visibility = &v
	}
	return c
}

// Server is one physical host: a hyperthread topology plus the set of VMs
// placed on it. It is the substrate probes measure against and attacks run
// on. Server is not safe for concurrent use.
type Server struct {
	cfg  ServerConfig
	name string
	vms  []*VM
	// free[i] is true when hyperthread slot i (core i/tpc, thread i%tpc) is
	// unoccupied.
	free []bool
}

// ErrNoCapacity is returned when a VM cannot be placed on a server.
var ErrNoCapacity = errors.New("sim: insufficient vCPU capacity")

// NewServer returns an empty server with the given configuration.
func NewServer(name string, cfg ServerConfig) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:  cfg,
		name: name,
		free: make([]bool, cfg.Cores*cfg.ThreadsPerCore),
	}
	for i := range s.free {
		s.free[i] = true
	}
	return s
}

// Name returns the server's identifier.
func (s *Server) Name() string { return s.name }

// Config returns the server's configuration.
func (s *Server) Config() ServerConfig { return s.cfg }

// TotalVCPUs returns the host's hyperthread count.
func (s *Server) TotalVCPUs() int { return s.cfg.Cores * s.cfg.ThreadsPerCore }

// FreeVCPUs returns the number of unassigned hyperthreads.
func (s *Server) FreeVCPUs() int {
	n := 0
	for _, f := range s.free {
		if f {
			n++
		}
	}
	return n
}

// VMs returns the VMs currently placed on the server.
func (s *Server) VMs() []*VM {
	return append([]*VM(nil), s.vms...)
}

// Lookup returns the VM with the given ID, or nil.
func (s *Server) Lookup(id string) *VM {
	for _, vm := range s.vms {
		if vm.ID == id {
			return vm
		}
	}
	return nil
}

func (s *Server) slotIndex(sl Slot) int {
	return sl.Core*s.cfg.ThreadsPerCore + sl.Thread
}

func (s *Server) slotAt(i int) Slot {
	return Slot{Core: i / s.cfg.ThreadsPerCore, Thread: i % s.cfg.ThreadsPerCore}
}

// Place assigns hyperthread slots to the VM and adds it to the server.
// Placement policy: hyperthreads of one VM are packed onto as few physical
// cores as possible (matching how cloud providers expose paired vCPUs), and
// no hyperthread is ever shared between two VMs — the paper notes 1 vCPU is
// the minimum dedicated unit in public clouds. Under DedicatedCores a VM is
// only placed on cores none of whose threads belong to another VM, and the
// whole core is reserved.
func (s *Server) Place(vm *VM) error {
	if vm.VCPUs <= 0 {
		return fmt.Errorf("sim: VM %q has %d vCPUs", vm.ID, vm.VCPUs)
	}
	if s.Lookup(vm.ID) != nil {
		return fmt.Errorf("sim: VM %q already placed on %s", vm.ID, s.name)
	}
	tpc := s.cfg.ThreadsPerCore

	var chosen []int
	if s.cfg.DedicatedCores {
		// Reserve whole cores: ceil(vcpus / tpc) fully free cores.
		coresNeeded := (vm.VCPUs + tpc - 1) / tpc
		for core := 0; core < s.cfg.Cores && coresNeeded > 0; core++ {
			allFree := true
			for th := 0; th < tpc; th++ {
				if !s.free[core*tpc+th] {
					allFree = false
					break
				}
			}
			if !allFree {
				continue
			}
			for th := 0; th < tpc; th++ {
				chosen = append(chosen, core*tpc+th)
			}
			coresNeeded--
		}
		if coresNeeded > 0 {
			return ErrNoCapacity
		}
	} else {
		// Breadth-first over cores: fill thread 0 of every core before any
		// thread 1, the way OS and hypervisor schedulers spread runnable
		// vCPUs to maximise per-thread throughput. As the host fills up,
		// later VMs land on the second hyperthreads of earlier VMs' cores —
		// which is exactly why hyperthread co-residency with strangers is
		// the norm in multi-tenant clouds (§3.4).
		for th := 0; th < tpc && len(chosen) < vm.VCPUs; th++ {
			for core := 0; core < s.cfg.Cores && len(chosen) < vm.VCPUs; core++ {
				if i := core*tpc + th; s.free[i] {
					chosen = append(chosen, i)
				}
			}
		}
		if len(chosen) < vm.VCPUs {
			return ErrNoCapacity
		}
	}

	vm.slots = vm.slots[:0]
	for _, i := range chosen {
		s.free[i] = false
		if !s.cfg.DedicatedCores || len(vm.slots) < vm.VCPUs {
			vm.slots = append(vm.slots, s.slotAt(i))
		}
	}
	// Under DedicatedCores extra reserved threads stay marked used but are
	// not listed as VM slots; they are simply burned capacity (the paper's
	// utilisation penalty).
	s.vms = append(s.vms, vm)
	return nil
}

// Remove detaches the VM with the given ID, freeing its slots (and, under
// DedicatedCores, the rest of each reserved core). It reports whether a VM
// was removed.
func (s *Server) Remove(id string) bool {
	for i, vm := range s.vms {
		if vm.ID != id {
			continue
		}
		for _, sl := range vm.slots {
			if s.cfg.DedicatedCores {
				for th := 0; th < s.cfg.ThreadsPerCore; th++ {
					s.free[sl.Core*s.cfg.ThreadsPerCore+th] = true
				}
			} else {
				s.free[s.slotIndex(sl)] = true
			}
		}
		vm.slots = nil
		s.vms = append(s.vms[:i], s.vms[i+1:]...)
		return true
	}
	return false
}

// SharesCore reports whether the two VMs occupy hyperthreads of at least one
// common physical core.
func (s *Server) SharesCore(a, b *VM) bool {
	if a == nil || b == nil || a == b {
		return false
	}
	cores := a.Cores()
	for _, sl := range b.slots {
		if cores[sl.Core] {
			return true
		}
	}
	return false
}

// CoreNeighbors returns the co-resident VMs sharing at least one physical
// core with vm.
func (s *Server) CoreNeighbors(vm *VM) []*VM {
	var out []*VM
	for _, other := range s.vms {
		if other != vm && s.SharesCore(vm, other) {
			out = append(out, other)
		}
	}
	return out
}

// CacheSpillFactor returns how strongly an application's memory traffic
// responds to losing last-level-cache capacity: a cache-resident workload
// (high LLC pressure, modest streaming bandwidth) converts squeezed cache
// into extra DRAM traffic almost one-for-one, while a streaming workload is
// already missing and barely changes. This is the physical effect behind
// miss-ratio curves, and the signal the §3.3 future-work extension (per-job
// cache miss rate curves) exploits.
func CacheSpillFactor(d Vector) float64 {
	llc, bw := d.Get(LLC), d.Get(MemBW)
	if llc == 0 {
		return 0
	}
	return llc / (llc + bw + 20)
}

// spillScale converts squeezed-cache pressure into extra observed memory
// bandwidth (dimensionless; <1 because some misses hit deeper caches or
// get amortised by prefetching).
const spillScale = 0.4

// ObservedPressure returns the contention a probe inside observer sees on
// resource r at time t: the (approximately additive, §3.3) sum of the
// co-residents' demand, attenuated by the host's isolation visibility. Core
// resources are visible only from VMs sharing a physical core with the
// source of the pressure; uncore resources are visible host-wide.
//
// Memory bandwidth carries a second-order term: when the observer itself
// occupies LLC capacity, the co-residents' miss rates rise and their DRAM
// traffic grows in proportion to their cache-spill factors — the coupling
// the miss-ratio-curve probe measures.
func (s *Server) ObservedPressure(observer *VM, r Resource, t Tick) float64 {
	squeeze := 0.0
	if r == MemBW && observer != nil {
		squeeze = observer.App.Demand(t).Get(LLC) / 100 * s.cfg.Visibility.Get(LLC)
	}
	total := 0.0
	for _, vm := range s.vms {
		if vm == observer {
			continue
		}
		if r.IsCore() && !s.SharesCore(observer, vm) {
			continue
		}
		demand := vm.App.Demand(t)
		total += demand.Get(r)
		if squeeze > 0 {
			total += demand.Get(LLC) * CacheSpillFactor(demand) * squeeze * spillScale
		}
	}
	total *= s.cfg.Visibility.Get(r)
	if total > 100 {
		total = 100
	}
	return total
}

// VMsOnCore returns the VMs other than observer holding a hyperthread of
// the given physical core.
func (s *Server) VMsOnCore(observer *VM, coreIdx int) []*VM {
	var out []*VM
	for _, vm := range s.vms {
		if vm == observer {
			continue
		}
		for _, sl := range vm.slots {
			if sl.Core == coreIdx {
				out = append(out, vm)
				break
			}
		}
	}
	return out
}

// ObservedCorePressure returns the contention a probe pinned to the given
// physical core sees on core-private resource r: only the sibling
// hyperthreads of that specific core contribute. Because no hyperthread is
// shared between VMs, this signal belongs to (at most) one co-resident per
// core — the property §3.3 exploits to measure core pressure accurately in
// a mixture.
func (s *Server) ObservedCorePressure(observer *VM, coreIdx int, r Resource, t Tick) float64 {
	if !r.IsCore() {
		return s.ObservedPressure(observer, r, t)
	}
	total := 0.0
	for _, vm := range s.VMsOnCore(observer, coreIdx) {
		total += vm.App.Demand(t).Get(r)
	}
	total *= s.cfg.Visibility.Get(r)
	if total > 100 {
		total = 100
	}
	return total
}

// ObservedVector returns ObservedPressure for every resource at once.
func (s *Server) ObservedVector(observer *VM, t Tick) Vector {
	var v Vector
	for _, r := range AllResources() {
		v.Set(r, s.ObservedPressure(observer, r, t))
	}
	return v
}

// Interference returns, for each resource, the contention pressure the
// victim experiences from all co-residents (core resources only from
// core-sharing neighbours), attenuated by isolation visibility. This is the
// input to the slowdown and latency models.
func (s *Server) Interference(victim *VM, t Tick) Vector {
	return s.ObservedVector(victim, t)
}

// Slowdown returns the victim's execution-time dilation factor (≥1) at time
// t under the host's current co-residents. For each resource the demand
// beyond capacity is charged to the victim in proportion to its sensitivity;
// contention on the victim's critical resources therefore hurts far more
// than the same contention elsewhere — the asymmetry Bolt's DoS attack
// exploits (§5.1).
func (s *Server) Slowdown(victim *VM, t Tick) float64 {
	return SlowdownFor(victim.App.Demand(t), victim.App.Sensitivity(), s.Interference(victim, t))
}

// SlowdownFor is the contention arithmetic behind Server.Slowdown, exposed
// so reactive workload models can evaluate it against a hypothetical
// demand without re-entering the server.
func SlowdownFor(demand, sens, interference Vector) float64 {
	slow := 1.0
	for _, r := range AllResources() {
		overload := demand.Get(r) + interference.Get(r) - 100
		if overload <= 0 {
			continue
		}
		slow += sens.Get(r) * overload / 100 * slowdownWeight(r)
	}
	return slow
}

// slowdownWeight scales how much saturating each resource costs. Cache and
// memory contention dominate execution-time impact on the paper's
// workloads; capacity resources degrade more gently until exhausted.
func slowdownWeight(r Resource) float64 {
	switch r {
	case L1I, L1D, LLC:
		return 4
	case L2:
		return 2
	case MemBW, CPU:
		return 3
	case NetBW, DiskBW:
		return 2.5
	case MemCap, DiskCap:
		return 1.5
	}
	return 1
}

// CPUUtilization returns the host's aggregate CPU usage in percent at time
// t — the signal a migration-triggering DoS defence watches (§5.1).
func (s *Server) CPUUtilization(t Tick) float64 {
	total := 0.0
	for _, vm := range s.vms {
		total += vm.App.Demand(t).Get(CPU)
	}
	if total > 100 {
		total = 100
	}
	return total
}
