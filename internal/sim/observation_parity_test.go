package sim_test

// Bit-exactness property test for the cached observation plane: a naive
// reference copy of the pre-snapshot per-resource observation code is run
// against the cached plane over randomized placements, ticks, Reactive
// apps, kernel retuning, and mid-episode Place/Remove, asserting `==`
// equality on every observable. The test lives in an external package so
// it can exercise the plane with the real Demander implementations
// (workload.App, workload.Reactive, probe.Kernels) without an import
// cycle.

import (
	"fmt"
	"testing"

	"bolt/internal/probe"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// refObservedPressure is the original single-resource observation loop,
// evaluating every demand inline — copied from the pre-snapshot
// sim.Server.ObservedPressure and kept as the ground truth.
func refObservedPressure(s *sim.Server, observer *sim.VM, r sim.Resource, t sim.Tick) float64 {
	vis := s.Config().Visibility
	squeeze := 0.0
	if r == sim.MemBW && observer != nil {
		squeeze = observer.App.Demand(t).Get(sim.LLC) / 100 * vis.Get(sim.LLC)
	}
	total := 0.0
	for _, vm := range s.VMs() {
		if vm == observer {
			continue
		}
		if r.IsCore() && !s.SharesCore(observer, vm) {
			continue
		}
		demand := vm.App.Demand(t)
		total += demand.Get(r)
		if squeeze > 0 {
			total += demand.Get(sim.LLC) * sim.CacheSpillFactor(demand) * squeeze * sim.SpillScale
		}
	}
	total *= vis.Get(r)
	if total > 100 {
		total = 100
	}
	return total
}

// refObservedVector is the original ObservedVector: one refObservedPressure
// call per resource.
func refObservedVector(s *sim.Server, observer *sim.VM, t sim.Tick) sim.Vector {
	var v sim.Vector
	for _, r := range sim.AllResources() {
		v.Set(r, refObservedPressure(s, observer, r, t))
	}
	return v
}

// refObservedCorePressure is the original per-core observation.
func refObservedCorePressure(s *sim.Server, observer *sim.VM, coreIdx int, r sim.Resource, t sim.Tick) float64 {
	if !r.IsCore() {
		return refObservedPressure(s, observer, r, t)
	}
	total := 0.0
	for _, vm := range s.VMsOnCore(observer, coreIdx) {
		total += vm.App.Demand(t).Get(r)
	}
	total *= s.Config().Visibility.Get(r)
	if total > 100 {
		total = 100
	}
	return total
}

// refSlowdown is the original Slowdown: inline victim demand plus the
// reference interference.
func refSlowdown(s *sim.Server, victim *sim.VM, t sim.Tick) float64 {
	return sim.SlowdownFor(victim.App.Demand(t), victim.App.Sensitivity(), refObservedVector(s, victim, t))
}

// refCPUUtilization is the original aggregate-CPU loop.
func refCPUUtilization(s *sim.Server, t sim.Tick) float64 {
	total := 0.0
	for _, vm := range s.VMs() {
		total += vm.App.Demand(t).Get(sim.CPU)
	}
	if total > 100 {
		total = 100
	}
	return total
}

// refHostDemand is the original clamped placement-order fold.
func refHostDemand(s *sim.Server, t sim.Tick) sim.Vector {
	var total sim.Vector
	for _, vm := range s.VMs() {
		total = total.Add(vm.App.Demand(t))
	}
	return total
}

// parityWorld is one randomized server under mutation.
type parityWorld struct {
	s       *sim.Server
	rng     *stats.RNG
	kernels []*probe.Kernels // kernels of placed adversary VMs
	nextID  int
}

func (w *parityWorld) placeRandom(t *testing.T) {
	w.nextID++
	id := fmt.Sprintf("vm%d", w.nextID)
	vcpus := 1 + w.rng.Intn(4)
	vm := &sim.VM{ID: id, VCPUs: vcpus}
	switch w.rng.Intn(4) {
	case 0: // plain app
		spec := workload.Memcached(w.rng.Split(), w.rng.Intn(3))
		vm.App = workload.NewApp(spec, workload.Constant{Level: 0.4 + 0.5*w.rng.Float64()}, w.rng.Uint64())
	case 1: // bursty app
		spec := workload.Hadoop(w.rng.Split(), w.rng.Intn(3))
		vm.App = workload.NewApp(spec, workload.Bursty{OnLevel: 1, OffLevel: 0.2, OnTicks: 20, OffTicks: 20}, w.rng.Uint64())
	case 2: // reactive app, bound after placement
		spec := workload.SQLDatabase(w.rng.Split(), w.rng.Intn(3))
		r := workload.NewReactive(workload.NewApp(spec, workload.Diurnal{Min: 0.3, Max: 1, Period: 200}, w.rng.Uint64()))
		vm.App = r
		if err := w.s.Place(vm); err != nil {
			return
		}
		r.Bind(w.s, vm)
		return
	case 3: // adversary kernels
		k := probe.NewKernels(100)
		for i := 0; i < 3; i++ {
			k.Set(sim.Resource(w.rng.Intn(sim.NumResources)), float64(w.rng.Intn(90)))
		}
		vm.App = k
		if err := w.s.Place(vm); err != nil {
			return
		}
		w.kernels = append(w.kernels, k)
		return
	}
	_ = w.s.Place(vm) // ErrNoCapacity is fine: the host is simply full
}

func (w *parityWorld) removeRandom() {
	vms := w.s.VMs()
	if len(vms) == 0 {
		return
	}
	vm := vms[w.rng.Intn(len(vms))]
	if k, ok := vm.App.(*probe.Kernels); ok {
		for i, have := range w.kernels {
			if have == k {
				w.kernels = append(w.kernels[:i], w.kernels[i+1:]...)
				break
			}
		}
	}
	w.s.Remove(vm.ID)
}

// check asserts every cached observable equals its reference, bit-exactly,
// and that a second (warm-cache) query returns the same value.
func (w *parityWorld) check(t *testing.T, at sim.Tick) {
	t.Helper()
	s := w.s
	observers := append(s.VMs(), nil)
	for _, obs := range observers {
		name := "nil"
		if obs != nil {
			name = obs.ID
		}
		for _, r := range sim.AllResources() {
			got := s.ObservedPressure(obs, r, at)
			want := refObservedPressure(s, obs, r, at)
			if got != want {
				t.Fatalf("t=%d observer=%s ObservedPressure(%v): got %v want %v", at, name, r, got, want)
			}
			if again := s.ObservedPressure(obs, r, at); again != got {
				t.Fatalf("t=%d observer=%s ObservedPressure(%v) warm: got %v then %v", at, name, r, got, again)
			}
		}
		gotV := s.ObservedVector(obs, at)
		wantV := refObservedVector(s, obs, at)
		if gotV != wantV {
			t.Fatalf("t=%d observer=%s ObservedVector: got %v want %v", at, name, gotV, wantV)
		}
		if inter := s.Interference(obs, at); inter != wantV {
			t.Fatalf("t=%d observer=%s Interference: got %v want %v", at, name, inter, wantV)
		}
		for core := 0; core < s.Config().Cores; core++ {
			for _, r := range sim.CoreResources() {
				got := s.ObservedCorePressure(obs, core, r, at)
				want := refObservedCorePressure(s, obs, core, r, at)
				if got != want {
					t.Fatalf("t=%d observer=%s core=%d ObservedCorePressure(%v): got %v want %v", at, name, core, r, got, want)
				}
			}
		}
		if obs != nil {
			got, want := s.Slowdown(obs, at), refSlowdown(s, obs, at)
			if got != want {
				t.Fatalf("t=%d victim=%s Slowdown: got %v want %v", at, name, got, want)
			}
		}
	}
	if got, want := s.CPUUtilization(at), refCPUUtilization(s, at); got != want {
		t.Fatalf("t=%d CPUUtilization: got %v want %v", at, got, want)
	}
	if got, want := s.HostDemand(at), refHostDemand(s, at); got != want {
		t.Fatalf("t=%d HostDemand: got %v want %v", at, got, want)
	}
}

func TestObservationPlaneMatchesReference(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		rng := stats.NewRNG(uint64(trial)*7919 + 1)
		cfg := sim.ServerConfig{}
		if trial%5 == 4 {
			cfg.DedicatedCores = true
		}
		if trial%3 == 2 {
			var vis sim.Vector
			for i := range sim.AllResources() {
				vis.Set(sim.Resource(i), 0.25+0.75*rng.Float64())
			}
			cfg.Visibility = &vis
		}
		w := &parityWorld{s: sim.NewServer(fmt.Sprintf("prop%d", trial), cfg), rng: rng}
		for i := 0; i < 3; i++ {
			w.placeRandom(t)
		}
		at := sim.Tick(rng.Intn(500))
		for step := 0; step < 25; step++ {
			switch rng.Intn(6) {
			case 0:
				w.placeRandom(t)
			case 1:
				w.removeRandom()
			case 2: // retune a kernel at an unchanged tick (RFA-style)
				if len(w.kernels) > 0 {
					k := w.kernels[rng.Intn(len(w.kernels))]
					k.Set(sim.Resource(rng.Intn(sim.NumResources)), float64(rng.Intn(100)))
				}
			case 3: // reset a kernel at an unchanged tick
				if len(w.kernels) > 0 {
					w.kernels[rng.Intn(len(w.kernels))].Reset()
				}
			case 4:
				at += sim.Tick(1 + rng.Intn(50))
			case 5:
				// same tick, no mutation: exercises the warm snapshot
			}
			w.check(t, at)
		}
	}
}
