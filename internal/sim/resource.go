// Package sim provides the hardware substrate for the Bolt reproduction: a
// discrete-time model of a multi-tenant server with the ten shared resources
// the paper profiles, hyperthread-level core topology, contention
// arithmetic, and measurement noise.
//
// The paper measures contention on real Xeon hosts; fine-grained
// microarchitectural pressure cannot be observed faithfully from Go, so
// this package reproduces the *observable* Bolt relies on — the pressure
// vector c ∈ [0,100]^10 — including the structural couplings that shape the
// paper's results: core resources (L1i/L1d/L2/CPU) are only visible to a
// probe sharing a physical core with the victim, uncore resources (LLC,
// memory, network, disk) are visible host-wide, and concurrent co-residents
// combine approximately additively (§3.3 states Bolt assumes exactly this).
package sim

import "fmt"

// Resource identifies one of the ten shared resources Bolt profiles (§3.2).
type Resource int

// The ten shared resources, in the order used throughout the paper.
const (
	L1I          Resource = iota // L1 instruction cache
	L1D                          // L1 data cache
	L2                           // L2 cache
	LLC                          // last level cache
	MemCap                       // memory capacity
	MemBW                        // memory bandwidth
	CPU                          // compute (functional units)
	NetBW                        // network bandwidth
	DiskCap                      // disk capacity
	DiskBW                       // disk bandwidth
	NumResources = 10
)

var resourceNames = [NumResources]string{
	"L1-i", "L1-d", "L2", "LLC", "MemCap", "MemBW", "CPU", "NetBW", "DiskCap", "DiskBW",
}

// String returns the display name used in the paper's figures.
func (r Resource) String() string {
	if r < 0 || int(r) >= NumResources {
		return fmt.Sprintf("Resource(%d)", int(r))
	}
	return resourceNames[r]
}

// AllResources lists every resource in canonical order.
func AllResources() []Resource {
	out := make([]Resource, NumResources)
	for i := range out {
		out[i] = Resource(i)
	}
	return out
}

// IsCore reports whether the resource is private to a physical core and thus
// only observable by a co-scheduled hyperthread (L1/L2 caches and the
// functional units). Uncore resources (LLC, memory, network, disk) are
// shared host-wide.
func (r Resource) IsCore() bool {
	switch r {
	case L1I, L1D, L2, CPU:
		return true
	}
	return false
}

// CoreResources returns the four core-private resources.
func CoreResources() []Resource { return []Resource{L1I, L1D, L2, CPU} }

// UncoreResources returns the six host-wide resources.
func UncoreResources() []Resource {
	return []Resource{LLC, MemCap, MemBW, NetBW, DiskCap, DiskBW}
}

// Vector is a per-resource pressure vector with entries in [0, 100].
type Vector [NumResources]float64

// Get returns the entry for r.
func (v Vector) Get(r Resource) float64 { return v[r] }

// Set assigns the entry for r, clamping to [0, 100].
func (v *Vector) Set(r Resource, x float64) {
	if x < 0 {
		x = 0
	}
	if x > 100 {
		x = 100
	}
	v[r] = x
}

// Add returns the entry-wise sum of v and o, clamped to [0, 100].
func (v Vector) Add(o Vector) Vector {
	var out Vector
	for i := range v {
		out.Set(Resource(i), v[i]+o[i])
	}
	return out
}

// Scale returns v scaled by f, clamped to [0, 100].
func (v Vector) Scale(f float64) Vector {
	var out Vector
	for i := range v {
		out.Set(Resource(i), v[i]*f)
	}
	return out
}

// Slice returns the vector as a fresh []float64, the form the mining
// pipeline consumes.
func (v Vector) Slice() []float64 {
	out := make([]float64, NumResources)
	copy(out, v[:])
	return out
}

// FromSlice builds a Vector from a 10-element slice, clamping each entry.
func FromSlice(xs []float64) Vector {
	var v Vector
	for i := 0; i < NumResources && i < len(xs); i++ {
		v.Set(Resource(i), xs[i])
	}
	return v
}

// Dominant returns the resource with the highest pressure.
func (v Vector) Dominant() Resource {
	best, bestVal := Resource(0), v[0]
	for i := 1; i < NumResources; i++ {
		if v[i] > bestVal {
			best, bestVal = Resource(i), v[i]
		}
	}
	return best
}

// TopK returns the k resources with highest pressure, in decreasing order.
func (v Vector) TopK(k int) []Resource {
	if k > NumResources {
		k = NumResources
	}
	idx := AllResources()
	// Selection sort is fine for 10 entries and keeps this allocation-lean.
	for i := 0; i < k; i++ {
		maxAt := i
		for j := i + 1; j < NumResources; j++ {
			if v[idx[j]] > v[idx[maxAt]] {
				maxAt = j
			}
		}
		idx[i], idx[maxAt] = idx[maxAt], idx[i]
	}
	return idx[:k]
}
