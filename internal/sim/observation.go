package sim

// This file is the server's observation plane: every query about what a VM
// can see or feel at a tick — ObservedPressure, ObservedVector,
// Interference, Slowdown, CPUUtilization, HostDemand — is answered from a
// per-(Server, Tick) demand snapshot in which each VM's Demand(t) was
// evaluated exactly once. The cached paths reproduce the original
// per-resource loops operation for operation (same summation order, same
// clamping), so results are bit-identical to evaluating demands inline.
//
// Snapshot lifetime and invalidation:
//
//   - the snapshot is keyed by (tick, server epoch, per-VM demand
//     versions). Place/Remove bump the epoch; a Demander implementing
//     DemandVersioner (probe kernels) bumps its version when retuned. Any
//     mismatch rebuilds the whole snapshot, so demanders that derive their
//     output from co-residents (workload.Reactive) are re-evaluated
//     whenever any of their inputs could have changed.
//
//   - rebuild evaluates s.vms[i].App.Demand(t) in placement order. A
//     Demander must not call the server's cached observation methods from
//     inside Demand; re-entrant evaluation (Reactive's one-step
//     relaxation) must use InterferenceLive, which never touches the
//     snapshot. As a safety net the plane carries a `building` flag and
//     every cached method falls back to the live path while it is set.
//
// Reactive re-entrancy contract: workload.Reactive computes its demand
// from the interference its host reports, which in turn depends on the
// co-residents' demands — a cycle Reactive breaks with a one-step
// relaxation (nested evaluations answer with raw demand). That nested view
// is *different* from the top-level one and must never be served from (or
// written to) the snapshot; InterferenceLive exists precisely for it. The
// snapshot only ever stores top-level demands, which are deterministic for
// a fixed (tick, epoch, versions) key, so one evaluation per VM per tick
// is exact.

// ObservationFault intercepts the observation plane's single-resource
// sensor readings for one designated observer VM. internal/fault's
// corruption class implements it to spike individual readings; the
// interface lives here because sim cannot import fault.
type ObservationFault interface {
	// Perturb receives the true reading v the observer would get for
	// resource r at tick t and returns the (possibly corrupted) value the
	// observer actually sees, still within [0, 100].
	Perturb(observer *VM, r Resource, t Tick, v float64) float64
}

// SetObservationFault installs f as the sensor-fault hook for readings
// taken by observer; a nil f clears the hook. The hook applies only to
// ObservedPressure/ObservedCorePressure queries whose observer matches the
// registered VM — other VMs' observations and the interference physics
// (ObservedVector, Interference, Slowdown, HostDemand) are never touched:
// faults corrupt what the probe *reads*, not what co-residents *feel*.
func (s *Server) SetObservationFault(observer *VM, f ObservationFault) {
	s.obsFaultVM, s.obsFault = observer, f
}

// faulted passes a sensor reading through the fault hook when the query
// came from the registered observer. With no hook installed (every run at
// fault rate 0) it is a branch and a return.
//
//bolt:hotpath
func (s *Server) faulted(observer *VM, r Resource, t Tick, v float64) float64 {
	if s.obsFault != nil && observer == s.obsFaultVM {
		return s.obsFault.Perturb(observer, r, t, v)
	}
	return v
}

// obsPlane is the per-server demand snapshot.
type obsPlane struct {
	tick     Tick
	epoch    uint64
	valid    bool
	building bool
	// demand[i] is s.vms[i].App.Demand(tick); versioners[i] is s.vms[i].App
	// as a DemandVersioner (nil for pure demanders) and versions[i] the
	// version captured at build time.
	demand     []Vector
	versioners []DemandVersioner
	versions   []uint64
}

func (o *obsPlane) resize(n int) {
	if cap(o.demand) < n {
		o.demand = make([]Vector, n)
		o.versioners = make([]DemandVersioner, n)
		o.versions = make([]uint64, n)
	}
	o.demand = o.demand[:n]
	o.versioners = o.versioners[:n]
	o.versions = o.versions[:n]
}

func (o *obsPlane) versionsCurrent() bool {
	for i, v := range o.versioners {
		if v != nil && v.DemandVersion() != o.versions[i] {
			return false
		}
	}
	return true
}

// observation returns the snapshot for tick t, rebuilding it if stale. It
// returns nil while a rebuild is in progress (a Demander re-entered the
// observation plane); callers then use the live path.
//
//bolt:hotpath
func (s *Server) observation(t Tick) *obsPlane {
	o := &s.obs
	if o.building {
		return nil
	}
	if o.valid && o.tick == t && o.epoch == s.epoch && o.versionsCurrent() {
		return o
	}
	o.valid = false
	o.resize(len(s.vms))
	o.building = true
	for i, vm := range s.vms {
		v, _ := vm.App.(DemandVersioner)
		o.versioners[i] = v
		if v != nil {
			o.versions[i] = v.DemandVersion()
		} else {
			o.versions[i] = 0
		}
		o.demand[i] = vm.App.Demand(t)
	}
	o.building = false
	o.tick, o.epoch, o.valid = t, s.epoch, true
	return o
}

// freshObservation returns the snapshot only if it is already valid for
// tick t; it never triggers a rebuild. Used by per-core queries, whose
// live cost is limited to the VMs on one core — cheaper than a whole-host
// rebuild when nothing else observes this tick.
func (s *Server) freshObservation(t Tick) *obsPlane {
	o := &s.obs
	if !o.building && o.valid && o.tick == t && o.epoch == s.epoch && o.versionsCurrent() {
		return o
	}
	return nil
}

// squeezeFor returns the observer's cache-squeeze coefficient for the
// MemBW coupling term, reading the observer's demand from the snapshot
// when it is placed on this server (the common case).
//
//bolt:hotpath
func (s *Server) squeezeFor(o *obsPlane, observer *VM, t Tick) float64 {
	if observer == nil {
		return 0
	}
	for i, vm := range s.vms {
		if vm == observer {
			return o.demand[i].Get(LLC) / 100 * s.cfg.Visibility.Get(LLC)
		}
	}
	return observer.App.Demand(t).Get(LLC) / 100 * s.cfg.Visibility.Get(LLC)
}

// ObservedPressure returns the contention a probe inside observer sees on
// resource r at time t: the (approximately additive, §3.3) sum of the
// co-residents' demand, attenuated by the host's isolation visibility. Core
// resources are visible only from VMs sharing a physical core with the
// source of the pressure; uncore resources are visible host-wide.
//
// Memory bandwidth carries a second-order term: when the observer itself
// occupies LLC capacity, the co-residents' miss rates rise and their DRAM
// traffic grows in proportion to their cache-spill factors — the coupling
// the miss-ratio-curve probe measures.
//
//bolt:hotpath
func (s *Server) ObservedPressure(observer *VM, r Resource, t Tick) float64 {
	if r.IsCore() && !s.sharesAnyCore(observer) {
		// No core-sharing neighbour contributes, so the sum is empty; skip
		// the snapshot entirely (the pre-snapshot code evaluated no demands
		// here either). The fault hook still applies: a corrupted sensor can
		// spike even when the true reading is zero.
		return s.faulted(observer, r, t, 0)
	}
	if o := s.observation(t); o != nil {
		return s.faulted(observer, r, t, s.observedPressureFrom(o, observer, r, t))
	}
	return s.faulted(observer, r, t, s.observedPressureLive(observer, r, t))
}

// observedPressureFrom answers a single-resource query from the snapshot.
//
//bolt:hotpath
func (s *Server) observedPressureFrom(o *obsPlane, observer *VM, r Resource, t Tick) float64 {
	squeeze := 0.0
	if r == MemBW {
		squeeze = s.squeezeFor(o, observer, t)
	}
	total := 0.0
	for i, vm := range s.vms {
		if vm == observer {
			continue
		}
		if r.IsCore() && !s.SharesCore(observer, vm) {
			continue
		}
		demand := &o.demand[i]
		total += demand.Get(r)
		if squeeze > 0 {
			total += demand.Get(LLC) * CacheSpillFactor(*demand) * squeeze * SpillScale
		}
	}
	total *= s.cfg.Visibility.Get(r)
	if total > 100 {
		total = 100
	}
	return total
}

// observedPressureLive is the uncached single-resource path, used while
// the snapshot is being rebuilt. It is the pre-snapshot implementation.
//
//bolt:hotpath
func (s *Server) observedPressureLive(observer *VM, r Resource, t Tick) float64 {
	squeeze := 0.0
	if r == MemBW && observer != nil {
		squeeze = observer.App.Demand(t).Get(LLC) / 100 * s.cfg.Visibility.Get(LLC)
	}
	total := 0.0
	for _, vm := range s.vms {
		if vm == observer {
			continue
		}
		if r.IsCore() && !s.SharesCore(observer, vm) {
			continue
		}
		demand := vm.App.Demand(t)
		total += demand.Get(r)
		if squeeze > 0 {
			total += demand.Get(LLC) * CacheSpillFactor(demand) * squeeze * SpillScale
		}
	}
	total *= s.cfg.Visibility.Get(r)
	if total > 100 {
		total = 100
	}
	return total
}

// ObservedCorePressure returns the contention a probe pinned to the given
// physical core sees on core-private resource r: only the sibling
// hyperthreads of that specific core contribute. Because no hyperthread is
// shared between VMs, this signal belongs to (at most) one co-resident per
// core — the property §3.3 exploits to measure core pressure accurately in
// a mixture. It rides an existing snapshot but never forces a rebuild: its
// live cost is bounded by the VMs on one core.
//
//bolt:hotpath
func (s *Server) ObservedCorePressure(observer *VM, coreIdx int, r Resource, t Tick) float64 {
	if !r.IsCore() {
		// ObservedPressure applies the fault hook itself.
		return s.ObservedPressure(observer, r, t)
	}
	total := 0.0
	if o := s.freshObservation(t); o != nil {
		for i, vm := range s.vms {
			if vm != observer && vm.occupiesCore(coreIdx) {
				total += o.demand[i].Get(r)
			}
		}
	} else {
		for _, vm := range s.vms {
			if vm != observer && vm.occupiesCore(coreIdx) {
				total += vm.App.Demand(t).Get(r)
			}
		}
	}
	total *= s.cfg.Visibility.Get(r)
	if total > 100 {
		total = 100
	}
	return s.faulted(observer, r, t, total)
}

// accumulateObserved folds one VM's demand into the per-resource running
// sums of a fused full-vector pass. Within each resource the sums receive
// their contributions in placement order — the same floating-point
// operation sequence as the original one-resource-at-a-time loops, so the
// fused pass is bit-identical to them.
//
//bolt:hotpath
func accumulateObserved(totals *[NumResources]float64, demand *Vector, shares bool, squeeze float64) {
	for ri := 0; ri < NumResources; ri++ {
		r := Resource(ri)
		if r.IsCore() && !shares {
			continue
		}
		totals[ri] += demand.Get(r)
		if r == MemBW && squeeze > 0 {
			totals[ri] += demand.Get(LLC) * CacheSpillFactor(*demand) * squeeze * SpillScale
		}
	}
}

// finishObserved applies visibility attenuation and the 100-percent clamp
// to the accumulated sums.
//
//bolt:hotpath
func (s *Server) finishObserved(totals *[NumResources]float64) Vector {
	var v Vector
	for ri := 0; ri < NumResources; ri++ {
		total := totals[ri] * s.cfg.Visibility.Get(Resource(ri))
		if total > 100 {
			total = 100
		}
		v.Set(Resource(ri), total)
	}
	return v
}

// observedVectorFrom is the fused full-vector pass over the snapshot.
//
//bolt:hotpath
func (s *Server) observedVectorFrom(o *obsPlane, observer *VM, t Tick) Vector {
	squeeze := s.squeezeFor(o, observer, t)
	var totals [NumResources]float64
	for i, vm := range s.vms {
		if vm == observer {
			continue
		}
		accumulateObserved(&totals, &o.demand[i], s.SharesCore(observer, vm), squeeze)
	}
	return s.finishObserved(&totals)
}

// ObservedVector returns ObservedPressure for every resource at once, in a
// single fused pass over the snapshot.
//
//bolt:hotpath
func (s *Server) ObservedVector(observer *VM, t Tick) Vector {
	if o := s.observation(t); o != nil {
		return s.observedVectorFrom(o, observer, t)
	}
	return s.InterferenceLive(observer, t)
}

// Interference returns, for each resource, the contention pressure the
// victim experiences from all co-residents (core resources only from
// core-sharing neighbours), attenuated by isolation visibility. This is the
// input to the slowdown and latency models. It is served from the per-tick
// snapshot; re-entrant evaluation must use InterferenceLive.
//
//bolt:hotpath
func (s *Server) Interference(victim *VM, t Tick) Vector {
	return s.ObservedVector(victim, t)
}

// InterferenceLive is Interference computed directly from the VMs' current
// demands, bypassing the per-tick snapshot. It exists for demanders that
// evaluate their own output from the host's state — workload.Reactive's
// one-step relaxation calls it while the snapshot may be mid-build, and
// the values it sees there (raw demand from the VM being computed, full
// demand from everyone else) are deliberately different from the top-level
// snapshot view.
//
//bolt:hotpath
func (s *Server) InterferenceLive(victim *VM, t Tick) Vector {
	squeeze := 0.0
	if victim != nil {
		squeeze = victim.App.Demand(t).Get(LLC) / 100 * s.cfg.Visibility.Get(LLC)
	}
	var totals [NumResources]float64
	for _, vm := range s.vms {
		if vm == victim {
			continue
		}
		demand := vm.App.Demand(t)
		accumulateObserved(&totals, &demand, s.SharesCore(victim, vm), squeeze)
	}
	return s.finishObserved(&totals)
}

// Slowdown returns the victim's execution-time dilation factor (≥1) at time
// t under the host's current co-residents. For each resource the demand
// beyond capacity is charged to the victim in proportion to its sensitivity;
// contention on the victim's critical resources therefore hurts far more
// than the same contention elsewhere — the asymmetry Bolt's DoS attack
// exploits (§5.1).
//
//bolt:hotpath
func (s *Server) Slowdown(victim *VM, t Tick) float64 {
	if o := s.observation(t); o != nil {
		demand, found := Vector{}, false
		for i, vm := range s.vms {
			if vm == victim {
				demand, found = o.demand[i], true
				break
			}
		}
		if !found {
			demand = victim.App.Demand(t)
		}
		return SlowdownFor(demand, victim.App.Sensitivity(), s.observedVectorFrom(o, victim, t))
	}
	return SlowdownFor(victim.App.Demand(t), victim.App.Sensitivity(), s.InterferenceLive(victim, t))
}

// SlowdownFor is the contention arithmetic behind Server.Slowdown, exposed
// so reactive workload models can evaluate it against a hypothetical
// demand without re-entering the server.
//
//bolt:hotpath
func SlowdownFor(demand, sens, interference Vector) float64 {
	slow := 1.0
	for r := Resource(0); r < NumResources; r++ {
		overload := demand.Get(r) + interference.Get(r) - 100
		if overload <= 0 {
			continue
		}
		slow += sens.Get(r) * overload / 100 * slowdownWeight(r)
	}
	return slow
}

// slowdownWeight scales how much saturating each resource costs. Cache and
// memory contention dominate execution-time impact on the paper's
// workloads; capacity resources degrade more gently until exhausted.
//
//bolt:hotpath
func slowdownWeight(r Resource) float64 {
	switch r {
	case L1I, L1D, LLC:
		return 4
	case L2:
		return 2
	case MemBW, CPU:
		return 3
	case NetBW, DiskBW:
		return 2.5
	case MemCap, DiskCap:
		return 1.5
	}
	return 1
}

// CPUUtilization returns the host's aggregate CPU usage in percent at time
// t — the signal a migration-triggering DoS defence watches (§5.1).
//
//bolt:hotpath
func (s *Server) CPUUtilization(t Tick) float64 {
	total := 0.0
	if o := s.observation(t); o != nil {
		for i := range s.vms {
			total += o.demand[i].Get(CPU)
		}
	} else {
		for _, vm := range s.vms {
			total += vm.App.Demand(t).Get(CPU)
		}
	}
	if total > 100 {
		total = 100
	}
	return total
}

// HostDemand returns the aggregate per-resource demand of every VM on the
// host at time t, folded in placement order with the clamped Vector.Add —
// the provider-side view a monitor or scheduler samples.
//
//bolt:hotpath
func (s *Server) HostDemand(t Tick) Vector {
	var total Vector
	if o := s.observation(t); o != nil {
		for i := range s.vms {
			total = total.Add(o.demand[i])
		}
		return total
	}
	for _, vm := range s.vms {
		total = total.Add(vm.App.Demand(t))
	}
	return total
}
