package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

// fixedApp is a Demander with constant demand and sensitivity.
type fixedApp struct {
	demand Vector
	sens   Vector
}

func (f fixedApp) Demand(Tick) Vector  { return f.demand }
func (f fixedApp) Sensitivity() Vector { return f.sens }

func vec(vals map[Resource]float64) Vector {
	var v Vector
	for r, x := range vals {
		v.Set(r, x)
	}
	return v
}

func newVM(id string, vcpus int, demand Vector) *VM {
	var sens Vector
	for i := range demand {
		sens[i] = demand[i] / 100
	}
	return &VM{ID: id, VCPUs: vcpus, App: fixedApp{demand: demand, sens: sens}}
}

func TestResourceString(t *testing.T) {
	if L1I.String() != "L1-i" || DiskBW.String() != "DiskBW" {
		t.Fatal("resource names wrong")
	}
	if Resource(99).String() != "Resource(99)" {
		t.Fatal("out-of-range name wrong")
	}
}

func TestCoreUncorePartition(t *testing.T) {
	core, uncore := CoreResources(), UncoreResources()
	if len(core)+len(uncore) != NumResources {
		t.Fatal("core + uncore must cover all resources")
	}
	for _, r := range core {
		if !r.IsCore() {
			t.Fatalf("%v should be core", r)
		}
	}
	for _, r := range uncore {
		if r.IsCore() {
			t.Fatalf("%v should be uncore", r)
		}
	}
}

func TestVectorClamping(t *testing.T) {
	var v Vector
	v.Set(CPU, 150)
	v.Set(LLC, -10)
	if v.Get(CPU) != 100 || v.Get(LLC) != 0 {
		t.Fatal("Set should clamp to [0,100]")
	}
}

func TestVectorAddScale(t *testing.T) {
	a := vec(map[Resource]float64{CPU: 60, LLC: 70})
	b := vec(map[Resource]float64{CPU: 60, MemBW: 30})
	sum := a.Add(b)
	if sum.Get(CPU) != 100 || sum.Get(LLC) != 70 || sum.Get(MemBW) != 30 {
		t.Fatalf("Add wrong: %v", sum)
	}
	half := a.Scale(0.5)
	if half.Get(CPU) != 30 || half.Get(LLC) != 35 {
		t.Fatalf("Scale wrong: %v", half)
	}
}

func TestVectorDominantTopK(t *testing.T) {
	v := vec(map[Resource]float64{L1I: 80, LLC: 95, MemBW: 60})
	if v.Dominant() != LLC {
		t.Fatalf("Dominant = %v, want LLC", v.Dominant())
	}
	top := v.TopK(3)
	if top[0] != LLC || top[1] != L1I || top[2] != MemBW {
		t.Fatalf("TopK = %v", top)
	}
}

func TestVectorSliceRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		var v Vector
		x := seed
		for i := range v {
			x = x*6364136223846793005 + 1442695040888963407
			v[i] = float64(uint64(x) % 101)
		}
		return FromSlice(v.Slice()) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTickSeconds(t *testing.T) {
	if Tick(10).Seconds() != 1 {
		t.Fatalf("10 ticks should be 1 s, got %v", Tick(10).Seconds())
	}
}

func TestPlaceAndCapacity(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	if s.TotalVCPUs() != 16 {
		t.Fatalf("default server should have 16 vCPUs, got %d", s.TotalVCPUs())
	}
	vm := newVM("a", 4, Vector{})
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	if s.FreeVCPUs() != 12 {
		t.Fatalf("FreeVCPUs = %d, want 12", s.FreeVCPUs())
	}
	if len(vm.Slots()) != 4 {
		t.Fatalf("VM got %d slots, want 4", len(vm.Slots()))
	}
	// Breadth-first placement spreads 4 hyperthreads over 4 cores.
	if len(vm.Cores()) != 4 {
		t.Fatalf("VM spans %d cores, want 4", len(vm.Cores()))
	}
}

func TestPlaceOverCapacity(t *testing.T) {
	s := NewServer("s0", ServerConfig{Cores: 2, ThreadsPerCore: 2})
	if err := s.Place(newVM("a", 5, Vector{})); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	if len(s.VMs()) != 0 {
		t.Fatal("failed placement must not register the VM")
	}
}

func TestPlaceDuplicateID(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	if err := s.Place(newVM("a", 1, Vector{})); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(newVM("a", 1, Vector{})); err == nil {
		t.Fatal("duplicate ID placement should fail")
	}
}

func TestPlaceZeroVCPUs(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	if err := s.Place(newVM("a", 0, Vector{})); err == nil {
		t.Fatal("zero-vCPU placement should fail")
	}
}

func TestRemoveFreesSlots(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	vm := newVM("a", 6, Vector{})
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	if !s.Remove("a") {
		t.Fatal("Remove returned false")
	}
	if s.FreeVCPUs() != 16 {
		t.Fatalf("slots not freed: %d free", s.FreeVCPUs())
	}
	if s.Remove("a") {
		t.Fatal("second Remove should return false")
	}
}

func TestSharesCore(t *testing.T) {
	// Breadth-first on a 2-core host: a→(0,0), b→(1,0), c→(0,1)+(1,1).
	s := NewServer("s0", ServerConfig{Cores: 2, ThreadsPerCore: 2})
	a := newVM("a", 1, Vector{})
	b := newVM("b", 1, Vector{})
	c := newVM("c", 2, Vector{})
	for _, vm := range []*VM{a, b, c} {
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	if s.SharesCore(a, b) {
		t.Fatal("a and b sit on different cores")
	}
	if !s.SharesCore(a, c) || !s.SharesCore(b, c) {
		t.Fatal("c's second hyperthreads share cores with a and b")
	}
	if s.SharesCore(a, a) {
		t.Fatal("a VM does not share a core with itself")
	}
	neighbors := s.CoreNeighbors(a)
	if len(neighbors) != 1 || neighbors[0] != c {
		t.Fatalf("CoreNeighbors(a) = %v", neighbors)
	}
}

func TestDedicatedCoresPlacement(t *testing.T) {
	s := NewServer("s0", ServerConfig{Cores: 4, ThreadsPerCore: 2, DedicatedCores: true})
	a := newVM("a", 3, Vector{}) // needs 2 whole cores (4 threads reserved)
	if err := s.Place(a); err != nil {
		t.Fatal(err)
	}
	if s.FreeVCPUs() != 4 {
		t.Fatalf("dedicated placement should reserve whole cores: %d free, want 4", s.FreeVCPUs())
	}
	b := newVM("b", 1, Vector{})
	if err := s.Place(b); err != nil {
		t.Fatal(err)
	}
	if s.SharesCore(a, b) {
		t.Fatal("dedicated cores must never be shared")
	}
	// Remaining whole core is taken; a 3-vCPU VM no longer fits.
	if err := s.Place(newVM("c", 3, Vector{})); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
}

func TestObservedPressureCoreVsUncore(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	adv := newVM("adv", 2, Vector{}) // core 0
	victim := newVM("v", 2, vec(map[Resource]float64{
		L1I: 80, LLC: 70, MemBW: 50,
	})) // core 1: no shared core with adv
	if err := s.Place(adv); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(victim); err != nil {
		t.Fatal(err)
	}
	if got := s.ObservedPressure(adv, L1I, 0); got != 0 {
		t.Fatalf("core pressure across cores should be invisible, got %v", got)
	}
	if got := s.ObservedPressure(adv, LLC, 0); got != 70 {
		t.Fatalf("LLC pressure = %v, want 70", got)
	}
	if got := s.ObservedPressure(adv, MemBW, 0); got != 50 {
		t.Fatalf("MemBW pressure = %v, want 50", got)
	}
}

func TestObservedPressureSharedCore(t *testing.T) {
	// A single-core host forces the two VMs onto sibling hyperthreads.
	s := NewServer("s0", ServerConfig{Cores: 1, ThreadsPerCore: 2})
	adv := newVM("adv", 1, Vector{})
	victim := newVM("v", 1, vec(map[Resource]float64{L1I: 80}))
	if err := s.Place(adv); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(victim); err != nil {
		t.Fatal(err)
	}
	if !s.SharesCore(adv, victim) {
		t.Fatal("test setup: expected shared core")
	}
	if got := s.ObservedPressure(adv, L1I, 0); got != 80 {
		t.Fatalf("shared-core L1I pressure = %v, want 80", got)
	}
}

func TestObservedPressureAdditive(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	adv := newVM("adv", 2, Vector{})
	v1 := newVM("v1", 2, vec(map[Resource]float64{MemBW: 30}))
	v2 := newVM("v2", 2, vec(map[Resource]float64{MemBW: 45}))
	for _, vm := range []*VM{adv, v1, v2} {
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ObservedPressure(adv, MemBW, 0); got != 75 {
		t.Fatalf("uncore pressure should add: %v, want 75", got)
	}
}

func TestObservedPressureClampsAt100(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	adv := newVM("adv", 2, Vector{})
	v1 := newVM("v1", 2, vec(map[Resource]float64{NetBW: 80}))
	v2 := newVM("v2", 2, vec(map[Resource]float64{NetBW: 80}))
	for _, vm := range []*VM{adv, v1, v2} {
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.ObservedPressure(adv, NetBW, 0); got != 100 {
		t.Fatalf("pressure should clamp at 100, got %v", got)
	}
}

func TestVisibilityAttenuates(t *testing.T) {
	var vis Vector
	for i := range vis {
		vis[i] = 1
	}
	vis.Set(LLC, 0.2) // cache partitioning
	s := NewServer("s0", ServerConfig{Visibility: &vis})
	adv := newVM("adv", 2, Vector{})
	victim := newVM("v", 2, vec(map[Resource]float64{LLC: 70}))
	if err := s.Place(adv); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(victim); err != nil {
		t.Fatal(err)
	}
	if got := s.ObservedPressure(adv, LLC, 0); got != 14 {
		t.Fatalf("attenuated LLC pressure = %v, want 14", got)
	}
}

func TestSlowdownNeedsOverload(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	victim := newVM("v", 2, vec(map[Resource]float64{LLC: 40}))
	quiet := newVM("q", 2, vec(map[Resource]float64{LLC: 20}))
	if err := s.Place(victim); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(quiet); err != nil {
		t.Fatal(err)
	}
	if sd := s.Slowdown(victim, 0); sd != 1 {
		t.Fatalf("no overload → slowdown 1, got %v", sd)
	}
}

func TestSlowdownGrowsWithContention(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	victim := newVM("v", 2, vec(map[Resource]float64{LLC: 70, MemBW: 60}))
	if err := s.Place(victim); err != nil {
		t.Fatal(err)
	}
	light := newVM("l", 2, vec(map[Resource]float64{LLC: 40}))
	if err := s.Place(light); err != nil {
		t.Fatal(err)
	}
	sdLight := s.Slowdown(victim, 0)
	s.Remove("l")
	heavy := newVM("h", 2, vec(map[Resource]float64{LLC: 90, MemBW: 90}))
	if err := s.Place(heavy); err != nil {
		t.Fatal(err)
	}
	sdHeavy := s.Slowdown(victim, 0)
	if !(sdHeavy > sdLight && sdLight > 1) {
		t.Fatalf("slowdown ordering wrong: light=%v heavy=%v", sdLight, sdHeavy)
	}
}

func TestSlowdownRespectsSensitivity(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	demand := vec(map[Resource]float64{LLC: 70})
	sensitive := &VM{ID: "sens", VCPUs: 2, App: fixedApp{
		demand: demand,
		sens:   vec(map[Resource]float64{LLC: 100}).Scale(0.01),
	}}
	insensitive := &VM{ID: "ins", VCPUs: 2, App: fixedApp{
		demand: demand,
		sens:   Vector{},
	}}
	attacker := newVM("atk", 2, vec(map[Resource]float64{LLC: 80}))
	for _, vm := range []*VM{sensitive, insensitive, attacker} {
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	if s.Slowdown(insensitive, 0) != 1 {
		t.Fatal("zero sensitivity should mean no slowdown")
	}
	if s.Slowdown(sensitive, 0) <= 1 {
		t.Fatal("sensitive VM should slow down")
	}
}

func TestCPUUtilization(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	a := newVM("a", 4, vec(map[Resource]float64{CPU: 30}))
	b := newVM("b", 4, vec(map[Resource]float64{CPU: 25}))
	for _, vm := range []*VM{a, b} {
		if err := s.Place(vm); err != nil {
			t.Fatal(err)
		}
	}
	if u := s.CPUUtilization(0); u != 55 {
		t.Fatalf("utilization = %v, want 55", u)
	}
}

func TestLookup(t *testing.T) {
	s := NewServer("s0", ServerConfig{})
	vm := newVM("x", 1, Vector{})
	if err := s.Place(vm); err != nil {
		t.Fatal(err)
	}
	if s.Lookup("x") != vm || s.Lookup("y") != nil {
		t.Fatal("Lookup misbehaved")
	}
}
