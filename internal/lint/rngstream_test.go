package lint

import "testing"

func TestRngstream(t *testing.T) {
	runAnalysisTest(t, RngstreamAnalyzer, "bolt/internal/exper", "rngstream")
}

// TestNolintWithoutReason pins the suppression contract: a bare
// //bolt:nolint with no `-- reason` suppresses nothing, and the malformed
// directive is itself reported under the pseudo-analyzer name "nolint".
func TestNolintWithoutReason(t *testing.T) {
	runAnalysisTest(t, RngstreamAnalyzer, "bolt/internal/exper", "nolintreason")
}
