package lint

import "testing"

func TestHotalloc(t *testing.T) {
	runAnalysisTest(t, HotallocAnalyzer, "bolt/internal/mining", "hotalloc")
}
