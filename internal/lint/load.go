package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one fully parsed and type-checked package under analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// Sources holds the raw bytes of every file in Files, keyed by the
	// filename recorded in Fset — used to classify comment placement.
	Sources map[string][]byte
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir and decodes the stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,Name,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportImporter resolves imports from the compiler export data `go list
// -export` left in the build cache. This is the standard-library-only
// equivalent of x/tools' gcexportdata loader.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// Load enumerates the packages matching the patterns (relative to dir),
// parses their non-test sources, and type-checks them against the
// compiler's export data. Test files are not analyzed: the determinism
// contracts govern what the suite executes, and tests legitimately read
// clocks and environments.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var out []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// checkPackage parses and type-checks one package from source. The import
// path is taken as given, so callers (the test harness) can check a
// directory under any package identity.
func checkPackage(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	sources := make(map[string][]byte, len(goFiles))
	for _, name := range goFiles {
		path := filepath.Join(dir, name)
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		sources[path] = src
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", pkgPath, err)
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
		Sources: sources,
	}, nil
}
