package lint

import "testing"

func TestSnapshotDiscipline(t *testing.T) {
	runAnalysisTest(t, SnapshotAnalyzer, "bolt/internal/attack", "snapshot")
}
