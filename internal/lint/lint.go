// Package lint implements boltlint, a suite of static analyzers that enforce
// the repository's determinism, RNG-discipline, and hot-path contracts at
// build time.
//
// Every result in this reproduction rests on invariants the Go compiler
// cannot see: suite output at seed 42 must be byte-identical at every
// parallelism level, the detection hot path must stay allocation-free, and
// the simulator's observation plane has an invalidation contract that is
// otherwise enforced only by comments and a parity test. The analyzers here
// move those contracts from "caught by a flaky diff in CI" to "rejected at
// build time":
//
//   - detrand:   no ambient nondeterminism (math/rand, time.Now, os.Getenv)
//     in deterministic packages; randomness flows through stats.RNG
//   - maporder:  no order-sensitive work inside map iteration
//   - hotalloc:  no allocation constructs in //bolt:hotpath functions
//   - snapshotdiscipline: DemandVersioner mutators bump the demand version,
//     and observations are not retained across Place/Remove
//   - rngstream: no stats.NewRNG inside a loop (stream splitting)
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer, Pass, Reportf, analysistest-style golden tests) but is built on
// the standard library alone: packages are enumerated with `go list -export`
// and type-checked against the compiler's export data, so the module keeps
// its zero-dependency property.
//
// # Suppression
//
// A diagnostic is suppressed with
//
//	//bolt:nolint <analyzer>[,<analyzer>...] -- <reason>
//
// placed on the offending line, on its own line directly above, or in the
// doc comment of the enclosing function (suppressing for the whole body).
// The reason is mandatory: a //bolt:nolint without `-- <reason>` suppresses
// nothing and is itself reported. The analyzer list may be omitted to
// suppress every analyzer for that line.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a fully type-checked package via
// the Pass and reports findings with Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Summaries is the module-wide function-fact index built over every
	// package in the Run (summary.go). The interprocedural analyzers
	// (hotcall, rcudiscipline, barriermerge, timerleak) consult it; the
	// intraprocedural ones ignore it.
	Summaries *Summaries

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Position, d.Analyzer, d.Message)
}

// NolintAnalyzerName is the pseudo-analyzer under which malformed
// suppression comments are reported. It cannot itself be suppressed.
const NolintAnalyzerName = "nolint"

// nolintPrefix introduces a suppression comment.
const nolintPrefix = "//bolt:nolint"

// HotpathDirective marks a function whose body the hotalloc analyzer checks.
const HotpathDirective = "//bolt:hotpath"

// suppression is one parsed //bolt:nolint comment.
type suppression struct {
	file      string
	line      int  // line the comment sits on
	ownLine   bool // comment is the first token on its line
	fnStart   int  // enclosing-function line range when in a doc comment
	fnEnd     int  // (0,0 when the suppression is line-scoped)
	analyzers []string
	hasReason bool
	pos       token.Pos
}

// covers reports whether the suppression applies to a diagnostic of the
// given analyzer at the given file line.
func (s *suppression) covers(analyzer, file string, line int) bool {
	if file != s.file {
		return false
	}
	if len(s.analyzers) > 0 {
		found := false
		for _, a := range s.analyzers {
			if a == analyzer {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if s.fnEnd > 0 {
		return line >= s.fnStart && line <= s.fnEnd
	}
	if line == s.line {
		return true
	}
	// A stand-alone comment line covers the line directly below it.
	return s.ownLine && line == s.line+1
}

// parseSuppressions extracts every //bolt:nolint comment from the package.
func parseSuppressions(pkg *Package) []suppression {
	fset := pkg.Fset
	var out []suppression

	// Doc-comment suppressions scope to the whole function body.
	fnRange := map[*ast.Comment][2]int{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			start := fset.Position(fn.Pos()).Line
			end := fset.Position(fn.End()).Line
			for _, c := range fn.Doc.List {
				fnRange[c] = [2]int{start, end}
			}
		}
	}

	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, nolintPrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				s := suppression{
					file:    pos.Filename,
					line:    pos.Line,
					ownLine: startsLine(pkg.Sources[pos.Filename], pos.Offset),
					pos:     c.Pos(),
				}
				rest := strings.TrimPrefix(text, nolintPrefix)
				if reason, ok := splitReason(&rest); ok {
					s.hasReason = reason != ""
				}
				s.analyzers = strings.FieldsFunc(rest, func(r rune) bool {
					return r == ',' || r == ' ' || r == '\t'
				})
				if r, ok := fnRange[c]; ok {
					s.fnStart, s.fnEnd = r[0], r[1]
				}
				out = append(out, s)
			}
		}
	}
	return out
}

// startsLine reports whether only whitespace precedes offset on its source
// line — i.e. the comment starting there stands on its own line.
func startsLine(src []byte, offset int) bool {
	if offset > len(src) {
		return false
	}
	for i := offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t':
			continue
		default:
			return false
		}
	}
	return true
}

// splitReason splits "analyzers -- reason" in place, leaving the analyzer
// list in *rest and returning the trimmed reason. ok is false when no "--"
// separator is present at all.
func splitReason(rest *string) (reason string, ok bool) {
	i := strings.Index(*rest, "--")
	if i < 0 {
		return "", false
	}
	reason = strings.TrimSpace((*rest)[i+2:])
	*rest = (*rest)[:i]
	return reason, true
}

// Run executes the analyzers over the packages, applies //bolt:nolint
// suppressions, reports malformed and unused suppressions, and returns the
// surviving diagnostics sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	summaries := BuildSummaries(pkgs)

	var all []Diagnostic
	for _, pkg := range pkgs {
		sups := parseSuppressions(pkg)

		var raw []Diagnostic
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Summaries: summaries,
				diags:     &raw,
			}
			a.Run(pass)
		}

		used := make([]bool, len(sups))
		for _, d := range raw {
			suppressed := false
			for i := range sups {
				if sups[i].hasReason && sups[i].covers(d.Analyzer, d.Position.Filename, d.Position.Line) {
					suppressed = true
					used[i] = true
					break
				}
			}
			if !suppressed {
				all = append(all, d)
			}
		}
		for i := range sups {
			if !sups[i].hasReason {
				all = append(all, Diagnostic{
					Pos:      sups[i].pos,
					Position: pkg.Fset.Position(sups[i].pos),
					Analyzer: NolintAnalyzerName,
					Message:  "//bolt:nolint requires a reason: //bolt:nolint <analyzer>[,<analyzer>] -- <reason>",
				})
				continue
			}
			// A suppression that matched nothing is stale: the code it
			// excused has moved or been fixed, and a silent stale nolint
			// would hide the next real diagnostic on that line. Only judged
			// when every analyzer it names actually ran (a partial
			// -analyzers run can't tell).
			if !used[i] && runSetCovers(analyzers, sups[i].analyzers) {
				all = append(all, Diagnostic{
					Pos:      sups[i].pos,
					Position: pkg.Fset.Position(sups[i].pos),
					Analyzer: NolintAnalyzerName,
					Message:  "unused //bolt:nolint: no diagnostic here to suppress; remove the stale suppression",
				})
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Position, all[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all
}

// runSetCovers reports whether the analyzers that ran include everything a
// suppression names (or, for a bare suppress-all comment, the full
// analyzer set) — the precondition for judging the suppression unused.
func runSetCovers(ran []*Analyzer, named []string) bool {
	inRun := func(name string) bool {
		for _, a := range ran {
			if a.Name == name {
				return true
			}
		}
		return false
	}
	if len(named) == 0 {
		for _, a := range All() {
			if !inRun(a.Name) {
				return false
			}
		}
		return true
	}
	for _, n := range named {
		if !inRun(n) {
			return false
		}
	}
	return true
}

// hotpathFuncs returns the functions in the pass marked //bolt:hotpath.
func hotpathFuncs(pass *Pass) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				if strings.TrimSpace(c.Text) == HotpathDirective {
					out = append(out, fn)
					break
				}
			}
		}
	}
	return out
}

// funcObj resolves the *types.Func for a call expression, or nil for
// builtins, conversions, and function-typed variables.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
