package lint

import "testing"

func TestDetrand(t *testing.T) {
	runAnalysisTest(t, DetrandAnalyzer, "bolt/internal/sim", "detrand")
}

// TestDetrandIgnoresOtherPackages checks the package gate: the same source,
// type-checked under a path outside the deterministic set, produces no
// detrand diagnostics. (The fixture's //bolt:nolint detrand then suppresses
// nothing, so the unused-suppression report legitimately fires — filter to
// detrand's own output.)
func TestDetrandIgnoresOtherPackages(t *testing.T) {
	diags, _ := analyzeTestdata(t, DetrandAnalyzer, "bolt/cmd/boltexp", "detrand")
	for _, d := range diags {
		if d.Analyzer != DetrandAnalyzer.Name {
			continue
		}
		t.Errorf("unexpected diagnostic outside deterministic packages: %s: %s", d.Position, d.Message)
	}
}
