// Test fixture for the maporder analyzer.
package maporder

import (
	"fmt"
	"os"
	"sort"
)

func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float64 accumulation inside map iteration`
	}
	return total
}

func stringConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s = s + k // want `string accumulation inside map iteration`
	}
	return s
}

// intAccumOK: integer addition is exactly associative, so the sum is
// order-independent.
func intAccumOK(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func appendNoSort(m map[string]int) []string {
	var keys []string
	for k := range m { // want `appends to a slice that is not sorted`
		keys = append(keys, k)
	}
	return keys
}

// appendThenSortOK is the collect-then-sort idiom.
func appendThenSortOK(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func output(m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(os.Stdout, "%s=%d\n", k, v) // want `Fprintf inside map iteration`
	}
}

// keyedWriteOK: each key is visited exactly once, so keyed writes commute.
func keyedWriteOK(m map[string]float64, out map[string]float64) {
	for k, v := range m {
		out[k] += v * 2
	}
}

// minMaxOK: plain overwrite tracking (no self-reference) commutes.
func minMaxOK(m map[string]float64) float64 {
	maxv := 0.0
	for _, v := range m {
		if v > maxv {
			maxv = v
		}
	}
	return maxv
}

func suppressed(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v //bolt:nolint maporder -- total probability mass: every summation order is later rounded to the same value
	}
	return total
}
