// Test fixture for the detrand analyzer, type-checked under the package
// path bolt/internal/sim so the deterministic-package gate applies.
package sim

import (
	"math/rand" // want `deterministic package imports math/rand`
	"os"
	"time"
)

var sink float64

func ambient() {
	sink = rand.Float64()
	_ = time.Now()        // want `time.Now \(wall-clock read\)`
	_ = os.Getenv("HOME") // want `os.Getenv \(environment read\)`
}

func envBranch() int {
	if v, ok := os.LookupEnv("BOLT_FAST"); ok && v != "" { // want `os.LookupEnv \(environment read\)`
		return 1
	}
	return 0
}

// durationsOK: the time package itself is fine; only clock reads are not.
func durationsOK(d time.Duration) time.Duration {
	return 2 * d
}

func timedSuppressed() {
	start := time.Now() //bolt:nolint detrand -- wall-clock timing is reported to stderr only, never folded into results
	_ = start
}
