// Test fixture for the hotcall analyzer: the acceptance case for the
// interprocedural layer. Sum's annotated body contains no allocation
// construct, so hotalloc (which inspects only the body) stays silent — the
// TestHotcallCatchesWhatHotallocMisses guard pins that — but the callee
// chain Sum → fill → scratch reaches a make, and hotcall reports it at the
// call site with the full chain.
package hotcall

// scratch is the allocation two hops away.
func scratch(n int) []int {
	return make([]int, n)
}

// fill is the intermediate hop: no local allocation, inherits one.
func fill(n int) []int {
	return scratch(n)
}

// grow allocates locally but only under a capacity guard: lazy-init sites
// do not count, so calling grow from a hot path is fine.
func grow(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	return buf[:n]
}

// formatted allocates through the curated external table (fmt.Sprintf).
func formatted(n int) string {
	return "n=" + itoa(n)
}

// itoa is a hand-rolled allocation-free conversion... except it is not:
// the append has no capacity provenance.
func itoa(n int) string {
	var buf []byte
	for n > 0 {
		buf = append(buf, byte('0'+n%10))
		n /= 10
	}
	return string(buf)
}

// Sum is the hot path. Its own body allocates nothing — hotalloc finds no
// construct here — but two of its calls reach allocations transitively.
//
//bolt:hotpath
func Sum(buf []int, n int) int {
	tmp := fill(n) // want `call on a hot path allocates transitively: hotcall.fill → hotcall.scratch → make \(hotcall.go:\d+\)`
	buf = grow(buf, n)
	for i := range buf {
		buf[i] = 0
	}
	total := 0
	for _, v := range tmp {
		total += v
	}
	label := formatted(n) // want `call on a hot path allocates transitively: hotcall.formatted → hotcall.itoa → append without capacity provenance \(hotcall.go:\d+\)`
	_ = label
	return total
}
