// Test fixture (multi-package, leaf half): declares an interface and two
// implementations — one allocating, one clean — for the cross-package
// interface-dispatch test of the summary layer's fixed point.
package leaf

// Measurer is dispatched through by the hot path in the root package.
type Measurer interface {
	Measure(xs []float64) float64
}

// Alloc implements Measurer with an allocating body: any hot path calling
// through Measurer must be charged with this implementation.
type Alloc struct{}

func (Alloc) Measure(xs []float64) float64 {
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	s := 0.0
	for _, x := range tmp {
		s += x
	}
	return s
}

// Clean implements Measurer allocation-free.
type Clean struct{}

func (Clean) Measure(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// MaxDepth recurses across a package-internal cycle with no allocation;
// the fixed point must converge without marking it allocating.
func MaxDepth(n int) int {
	if n <= 0 {
		return 0
	}
	return 1 + MaxDepth(n-1)
}
