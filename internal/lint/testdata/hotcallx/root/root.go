// Test fixture (multi-package, root half): hot paths that cross the
// package boundary. Reduce dispatches through an interface whose
// allocating implementation lives in the leaf package; Probe leans on a
// recursive cycle that must not be reported.
package root

import "bolt/internal/hotx/leaf"

// Reduce calls through the interface: the summary layer resolves every
// implementation in the analyzed set, finds leaf.Alloc.Measure's make, and
// charges the dispatch site.
//
//bolt:hotpath
func Reduce(m leaf.Measurer, xs []float64) float64 {
	return m.Measure(xs) // want `call on a hot path allocates transitively: \(leaf.Measurer\).Measure → \(leaf.Alloc\).Measure → make \(leaf.go:\d+\)`
}

// mutual and recurse form a cross-function cycle with no allocation.
func mutual(n int) int {
	if n <= 0 {
		return 0
	}
	return recurse(n - 1)
}

func recurse(n int) int {
	if n <= 0 {
		return 1
	}
	return mutual(n - 1)
}

// Probe exercises both cycles; a pure cycle never allocates, so the fixed
// point must leave these calls unreported.
//
//bolt:hotpath
func Probe(n int) int {
	return leaf.MaxDepth(n) + mutual(n) + recurse(n)
}
