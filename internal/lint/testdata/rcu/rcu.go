// Test fixture for the rcudiscipline analyzer: the serve-style RCU
// snapshot contract. Good patterns (constructor Store, CAS-retry writer,
// load-once readers) pass; re-loads, loop loads, raw writes, retention,
// and interprocedural re-loads are reported.
package rcu

import "sync/atomic"

type snapshot struct {
	version uint64
}

type Server struct {
	snap  atomic.Pointer[snapshot]
	stale *snapshot
}

// NewServer stores into a receiver that is still function-local: the one
// sanctioned Store.
func NewServer() *Server {
	s := &Server{}
	s.snap.Store(&snapshot{version: 1})
	return s
}

// Swap is the sanctioned writer: the Load inside the retry loop belongs to
// the CAS idiom and must not be reported.
func (s *Server) Swap(next *snapshot) uint64 {
	for {
		cur := s.snap.Load()
		n := &snapshot{version: cur.version + 1}
		_ = next
		if s.snap.CompareAndSwap(cur, n) {
			return n.version
		}
	}
}

// Answer is the sanctioned reader: one Load pins one generation for the
// whole scope.
func (s *Server) Answer() uint64 {
	sn := s.snap.Load()
	return sn.version + sn.version
}

// Reload pins twice in one scope; the two pointers may straddle a Swap.
func (s *Server) Reload() uint64 {
	a := s.snap.Load()
	b := s.snap.Load() // want `loaded again in the same scope`
	return a.version + b.version
}

// LoopLoad re-pins every iteration.
func (s *Server) LoopLoad(n int) uint64 {
	var total uint64
	for i := 0; i < n; i++ {
		sn := s.snap.Load() // want `loaded inside a loop`
		total += sn.version
	}
	return total
}

// RawStore bypasses the CAS idiom outside a constructor.
func (s *Server) RawStore(next *snapshot) {
	s.snap.Store(next) // want `written with Store`
}

// RawSwap loses a concurrent writer's version bump.
func (s *Server) RawSwap(next *snapshot) *snapshot {
	return s.snap.Swap(next) // want `written with Swap`
}

// Retain parks a loaded pointer beyond the scope that pinned it.
func (s *Server) Retain() {
	s.stale = s.snap.Load() // want `retained in rcu.Server.stale`
}

// Nested calls a loader from a scope that already holds a pin: the callee
// may answer from a newer generation than the caller.
func (s *Server) Nested() uint64 {
	sn := s.snap.Load()
	return sn.version + s.current() // want `re-loads atomic.Pointer rcu.Server.snap`
}

// current loads once: clean on its own, the hazard is calling it from a
// pinned scope.
func (s *Server) current() uint64 {
	return s.snap.Load().version
}
