// Test fixture for the snapshotdiscipline analyzer, type-checked outside
// bolt/internal/sim so both the version-bump and the retention rules apply.
package attack

import "bolt/internal/sim"

// kern mimics probe.Kernels: Demand is served from mutable out-of-band
// state, so the type implements sim.DemandVersioner.
type kern struct {
	intensity sim.Vector
	version   uint64
}

func (k *kern) Demand(sim.Tick) sim.Vector { return k.intensity }
func (k *kern) Sensitivity() sim.Vector    { return sim.Vector{} }
func (k *kern) DemandVersion() uint64      { return k.version }

func (k *kern) Bump() { k.version++ }

// Set writes demand state and bumps — correct.
func (k *kern) Set(r sim.Resource, v float64) {
	k.intensity.Set(r, v)
	k.version++
}

// Reset writes demand state and forgets the bump.
func (k *kern) Reset() { // want `writes state read by Demand but never bumps the demand version`
	k.intensity = sim.Vector{}
}

// SetQuiet deliberately skips the bump; the doc-comment suppression scopes
// to the whole method.
//
//bolt:nolint snapshotdiscipline -- callers batch several writes and call Bump() once at the end
func (k *kern) SetQuiet(r sim.Resource, v float64) {
	k.intensity.Set(r, v)
}

func retention(srv *sim.Server, vm, other *sim.VM, t sim.Tick) float64 {
	v := srv.Interference(vm, t)
	_ = srv.Place(other)
	return v.Get(sim.LLC) // want `observation "v" was taken before a Place/Remove`
}

// reobserveOK observes after the placement change.
func reobserveOK(srv *sim.Server, vm, other *sim.VM, t sim.Tick) float64 {
	_ = srv.Place(other)
	v := srv.Interference(vm, t)
	return v.Get(sim.LLC)
}

func beforeAfterSuppressed(srv *sim.Server, vm, other *sim.VM, t sim.Tick) float64 {
	before := srv.Slowdown(vm, t)
	_ = srv.Place(other)
	after := srv.Slowdown(vm, t)
	return after - before //bolt:nolint snapshotdiscipline -- before/after comparison: measuring the placement change is the point
}
