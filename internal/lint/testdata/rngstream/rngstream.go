// Test fixture for the rngstream analyzer.
package rngstream

import "bolt/internal/stats"

func perIteration(seed uint64, n int) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		r := stats.NewRNG(seed + uint64(i)) // want `stats.NewRNG inside a loop`
		total += r.Float64()
	}
	return total
}

func perElement(seeds []uint64) float64 {
	total := 0.0
	for _, s := range seeds {
		total += stats.NewRNG(s).Float64() // want `stats.NewRNG inside a loop`
	}
	return total
}

// splitOK: Split advances the parent stream, so the derived generators are
// part of the pinned golden sequence.
func splitOK(seed uint64, n int) float64 {
	root := stats.NewRNG(seed)
	total := 0.0
	for i := 0; i < n; i++ {
		r := root.Split()
		total += r.Float64()
	}
	return total
}

// outsideOK: one generator, constructed before the loop.
func outsideOK(seed uint64, n int) float64 {
	r := stats.NewRNG(seed)
	total := 0.0
	for i := 0; i < n; i++ {
		total += r.Float64()
	}
	return total
}

func suppressed(seeds []uint64) float64 {
	total := 0.0
	for _, s := range seeds {
		r := stats.NewRNG(s) //bolt:nolint rngstream -- each element is an independent pre-registered experiment seed, not a derived stream
		total += r.Float64()
	}
	return total
}
