// Test fixture for the hotalloc analyzer.
package hotalloc

import "bolt/internal/sim"

type item struct{ a, b float64 }

type store struct {
	buf  []int
	lazy []float64
}

//bolt:hotpath
func badLiterals(n int) *item {
	xs := map[string]int{} // want `composite map literal allocates`
	p := &item{a: 1}       // want `&item composite literal escapes`
	_ = xs
	_ = n
	return p
}

//bolt:hotpath
func badSliceLit() []int {
	return []int{1, 2, 3} // want `composite slice literal allocates`
}

//bolt:hotpath
func badMake(n int) []float64 {
	return make([]float64, n) // want `make allocates on a hot path`
}

//bolt:hotpath
func badAppend(dst []int, v int) []int {
	return append(dst, v) // want `append without capacity provenance`
}

// okAppend: the destination was reset with buf[:0], so capacity is reused.
//
//bolt:hotpath
func okAppend(s *store, v int) {
	s.buf = s.buf[:0]
	s.buf = append(s.buf, v)
}

// okLazy: make under a nil/cap guard runs once (or only on growth).
//
//bolt:hotpath
func okLazy(s *store, n int) []float64 {
	if s.lazy == nil {
		s.lazy = make([]float64, n)
	}
	if cap(s.buf) < n {
		s.buf = make([]int, n)
	}
	return s.lazy
}

var global func()

//bolt:hotpath
func badClosure(x int) {
	f := func() { _ = x }
	global = f // want `closure f escapes`
}

// okClosure: a local closure that is only ever called stays on the stack.
//
//bolt:hotpath
func okClosure(x int) int {
	inc := func() { x++ }
	inc()
	inc()
	return x
}

func sinkAny(v any) { _ = v }

//bolt:hotpath
func badBox(x float64) {
	sinkAny(x) // want `interface argument boxes float64`
}

//bolt:hotpath
func badPanic(n int) {
	if n < 0 {
		panic(n) // want `interface panic argument boxes int`
	}
}

// okBoxes: pointers are stored directly in the interface word, and
// constants are materialised in static memory.
//
//bolt:hotpath
func okBoxes(p *item) {
	sinkAny(p)
	sinkAny("constant")
	panic("mining: length mismatch")
}

//bolt:hotpath
func badHelper() int {
	total := 0
	for _, r := range sim.AllResources() { // want `AllResources allocates its result on every call`
		total += int(r)
	}
	return total
}

//bolt:hotpath
func suppressedResult(n int) []float64 {
	return make([]float64, n) //bolt:nolint hotalloc -- the returned slice is the documented per-call allocation, pinned by an alloc budget test
}

// unannotated functions are not checked.
func unannotated(n int) []int {
	return make([]int, n)
}
