// Test fixture for unused-suppression detection: a //bolt:nolint whose
// diagnostic has been fixed (or moved) no longer suppresses anything and
// is itself reported, keeping the suppression inventory honest. Checked
// under a deterministic package path so detrand is active.
package unusednolint

import "time"

// Fresh keeps its excuse: the wall-clock read it covers is still here.
func Fresh() time.Time {
	//bolt:nolint detrand -- fixture: deliberate wall-clock read, excused
	return time.Now()
}

// Stale lost its excuse: the read this comment once covered is gone, so
// the suppression matches nothing and must be reported.
func Stale() int {
	//bolt:nolint detrand -- fixture: the wall-clock read below was removed // want `unused //bolt:nolint`
	return 42
}
