// Test fixture: a //bolt:nolint without the mandatory `-- reason` must not
// suppress the underlying diagnostic, and is itself reported.
package nolintreason

import "bolt/internal/stats"

func missingReason(seeds []uint64) float64 {
	total := 0.0
	for _, s := range seeds {
		r := stats.NewRNG(s) //bolt:nolint rngstream  // want `stats.NewRNG inside a loop` `requires a reason`
		total += r.Float64()
	}
	return total
}
