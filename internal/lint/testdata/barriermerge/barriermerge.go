// Test fixture for the barriermerge analyzer: results produced under
// par.FanOut must land in index-addressed slots and be merged by an
// index-ordered loop after the barrier. Completion-order merges (channel
// receives, shared appends, map writes, scalar accumulation) are reported,
// including through a local wrapper the fixed point discovers.
package barriermerge

import "bolt/internal/par"

// Indexed is the sanctioned shape: worker i owns slot i, the fold after
// the barrier runs in index order.
func Indexed(n int) float64 {
	out := make([]float64, n)
	par.FanOut(n, 4, func(i int) string { return "indexed" }, func(i int) {
		out[i] = float64(i * i)
	})
	total := 0.0
	for _, v := range out {
		total += v
	}
	return total
}

// ChannelMerge receives in completion order: schedule-dependent.
func ChannelMerge(n int) []float64 {
	ch := make(chan float64, n)
	par.FanOut(n, 4, func(i int) string { return "chan" }, func(i int) {
		ch <- float64(i) // want `send on a shared channel from a fan-out body`
	})
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, <-ch)
	}
	return out
}

// AppendMerge appends in completion order.
func AppendMerge(n int) []float64 {
	var out []float64
	par.FanOut(n, 4, func(i int) string { return "append" }, func(i int) {
		out = append(out, float64(i)) // want `append to shared out from a fan-out body`
	})
	return out
}

// MapMerge writes a shared map: racy, and iteration order varies anyway.
func MapMerge(n int) map[int]float64 {
	m := make(map[int]float64, n)
	par.FanOut(n, 4, func(i int) string { return "map" }, func(i int) {
		m[i] = float64(i) // want `write into shared map m from a fan-out body`
	})
	return m
}

// SumMerge accumulates into a shared scalar: float addition order changes
// the bits, and the write races besides.
func SumMerge(n int) float64 {
	total := 0.0
	par.FanOut(n, 4, func(i int) string { return "sum" }, func(i int) {
		total += float64(i) // want `compound assignment to shared total from a fan-out body`
	})
	return total
}

// CountMerge increments a shared counter.
func CountMerge(n int) int {
	count := 0
	par.FanOut(n, 4, func(i int) string { return "count" }, func(i int) {
		count++ // want `increment of shared count from a fan-out body`
	})
	return count
}

// fanAll is a local wrapper forwarding its body parameter to par.FanOut;
// the summary fixed point learns it is a fan-out entry point without any
// per-wrapper registration.
func fanAll(n int, body func(int)) {
	par.FanOut(n, 4, func(i int) string { return "wrapped" }, body)
}

// WrappedMerge violates through the wrapper.
func WrappedMerge(n int) float64 {
	total := 0.0
	fanAll(n, func(i int) {
		total += float64(i) // want `compound assignment to shared total from a fan-out body`
	})
	return total
}

// WrappedIndexed stays clean through the wrapper.
func WrappedIndexed(n int) []float64 {
	out := make([]float64, n)
	fanAll(n, func(i int) {
		out[i] = float64(i)
	})
	return out
}
