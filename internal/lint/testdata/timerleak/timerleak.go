// Test fixture for the timerleak analyzer: timers/tickers need a Stop
// reachable from the creating function, and — in deterministic packages —
// every `go` statement needs a join. The fixture is checked under a
// deterministic package path so the goroutine half is active.
package timerleak

import (
	"sync"
	"time"
)

// Stopped is the clean timer pattern.
func Stopped(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

// CondStopped mirrors serve's linger timer: created under a config guard,
// stopped in the same function.
func CondStopped(d time.Duration) {
	var t *time.Timer
	if d > 0 {
		t = time.NewTimer(d)
	}
	if t != nil {
		t.Stop()
	}
}

// Leak never stops its ticker: its goroutine runs forever.
func Leak(d time.Duration) time.Time {
	t := time.NewTicker(d) // want `time.NewTicker result t is never Stop\(\)ed`
	return <-t.C
}

// Discard cannot stop the ticker at all.
func Discard(d time.Duration) {
	time.NewTicker(d) // want `time.NewTicker result discarded`
}

// Tick has no Stop by construction.
func Tick(d time.Duration) <-chan time.Time {
	return time.Tick(d) // want `time.Tick leaks its ticker goroutine`
}

// Handed passes the timer to another owner: that owner's discipline, not
// this function's; the analyzer stays silent.
func Handed(d time.Duration, own func(*time.Timer)) {
	t := time.NewTimer(d)
	own(t)
}

// WGJoined launches with a WaitGroup the launcher waits on.
func WGJoined(n int) int {
	var wg sync.WaitGroup
	total := make([]int, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			defer wg.Done()
			total[i] = i
		}()
	}
	wg.Wait()
	s := 0
	for _, v := range total {
		s += v
	}
	return s
}

// ChanJoined signals completion on a channel the launcher receives from.
func ChanJoined() int {
	done := make(chan int, 1)
	go func() {
		done <- 42
	}()
	return <-done
}

// CloseJoined signals by closing a channel the launcher drains.
func CloseJoined() {
	done := make(chan struct{})
	go func() {
		defer close(done)
	}()
	<-done
}

// Pool joins interprocedurally: run Done()s a WaitGroup field that Close
// Waits on — the summary layer connects the two across functions.
type Pool struct {
	wg sync.WaitGroup
}

func (p *Pool) Start(n int) {
	p.wg.Add(n)
	for i := 0; i < n; i++ {
		go p.run()
	}
}

func (p *Pool) run() {
	defer p.wg.Done()
}

func (p *Pool) Close() {
	p.wg.Wait()
}

// Orphan has no join at all.
func Orphan() {
	go func() { // want `goroutine in deterministic package .* has no join`
		_ = 1
	}()
}

// OrphanNamed launches a named function nothing ever waits for.
func OrphanNamed() {
	go sideEffect() // want `goroutine in deterministic package .* has no join`
}

func sideEffect() {}
