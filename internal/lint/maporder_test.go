package lint

import "testing"

func TestMaporder(t *testing.T) {
	runAnalysisTest(t, MaporderAnalyzer, "bolt/internal/exper", "maporder")
}
