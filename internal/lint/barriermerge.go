package lint

import (
	"go/ast"
	"go/types"
)

// BarrierMergeAnalyzer enforces the merge rule DESIGN.md states for the
// deterministic fan-outs but nothing checked until now: results produced
// under par.FanOut / par.FanOutBlocks must land in index-addressed slots
// and be folded by an index-ordered loop after the barrier. Any merge that
// observes completion order — sends on a shared channel, appends to a
// shared slice, writes into a shared map, accumulating into a shared
// scalar — reintroduces schedule-dependence and breaks the byte-identical
// contract at every -parallel setting.
//
// Fan-out entry points come from the summary layer: par.FanOut and
// par.FanOutBlocks are seeded, and wrappers that forward their body
// parameter (exper.fanOut, exper.forEachEpisode, and any future ones) are
// discovered by the fixed point — so the rule follows the helpers as the
// codebase grows, without a per-wrapper list.
//
// Inside a fan-out body literal, writes are judged by their destination:
//
//	slots[i] = v          // OK: index-addressed, i derives from the body's
//	                      //     own parameters — deterministic placement
//	ch <- v               // reported: receive order is completion order
//	shared = append(...)  // reported: append order is completion order
//	m[key] = v            // reported: map writes race and iteration order
//	                      //           varies anyway
//	sum += v              // reported: float accumulation order changes the
//	                      //           bits; merge after the barrier instead
var BarrierMergeAnalyzer = &Analyzer{
	Name: "barriermerge",
	Doc:  "require index-addressed result slots in par.FanOut bodies; forbid order-sensitive merges",
	Run:  runBarrierMerge,
}

func runBarrierMerge(pass *Pass) {
	if pass.Summaries == nil {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcObj(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			for _, p := range pass.Summaries.FanOutParams(funcKey(callee)) {
				if p >= len(call.Args) {
					continue
				}
				if lit, ok := ast.Unparen(call.Args[p]).(*ast.FuncLit); ok {
					checkFanOutBody(pass, lit)
				}
			}
			return true
		})
	}
}

// checkFanOutBody inspects one fan-out body literal for order-sensitive
// result publication. "Outer" means declared outside the literal (captured
// state shared across workers); everything declared inside the literal is
// worker-private and unrestricted.
func checkFanOutBody(pass *Pass, lit *ast.FuncLit) {
	outer := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			obj = pass.TypesInfo.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			if node != lit {
				return true // nested literals share the same capture judgement
			}

		case *ast.SendStmt:
			if outer(node.Chan) || isSharedSelector(pass, node.Chan) {
				pass.Reportf(node.Pos(),
					"send on a shared channel from a fan-out body; receive order is completion order — write an index-addressed slot and merge after the barrier")
			}

		case *ast.IncDecStmt:
			if sharedScalarDest(pass, node.X, outer) {
				pass.Reportf(node.Pos(),
					"increment of shared %s from a fan-out body races and orders by completion; accumulate per-index and fold after the barrier", types.ExprString(node.X))
			}

		case *ast.AssignStmt:
			checkFanOutAssign(pass, node, outer)
		}
		return true
	})
}

// checkFanOutAssign judges one assignment inside a fan-out body.
func checkFanOutAssign(pass *Pass, st *ast.AssignStmt, outer func(ast.Expr) bool) {
	for i, lhs := range st.Lhs {
		dst := ast.Unparen(lhs)

		// Index-addressed writes: allowed into slices/arrays (the slot
		// discipline), reported into maps (no deterministic slots).
		if ix, ok := dst.(*ast.IndexExpr); ok {
			base := pass.TypesInfo.TypeOf(ix.X)
			if base == nil {
				continue
			}
			if _, isMap := base.Underlying().(*types.Map); isMap {
				pass.Reportf(st.Pos(),
					"write into shared map %s from a fan-out body; map writes race — write an index-addressed slice slot and build the map after the barrier", types.ExprString(ix.X))
			}
			continue
		}

		// Shared scalar/slice destinations.
		if !sharedScalarDest(pass, dst, outer) {
			continue
		}
		if st.Tok.String() != "=" {
			pass.Reportf(st.Pos(),
				"compound assignment to shared %s from a fan-out body orders by completion; accumulate into an index-addressed slot and fold after the barrier", types.ExprString(dst))
			continue
		}
		// Plain `=`: appends to shared slices are the classic
		// completion-order merge; any other shared write is last-writer-wins.
		if i < len(st.Rhs) {
			if call, ok := ast.Unparen(st.Rhs[i]).(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
						pass.Reportf(st.Pos(),
							"append to shared %s from a fan-out body; element order is completion order — write results[i] and merge by index after the barrier", types.ExprString(dst))
						continue
					}
				}
			}
		}
		pass.Reportf(st.Pos(),
			"write to shared %s from a fan-out body races across workers; write an index-addressed slot instead", types.ExprString(dst))
	}
}

// sharedScalarDest reports whether dst denotes state shared across workers:
// an identifier declared outside the literal, or a field/global selector.
// Blank and worker-local destinations are fine.
func sharedScalarDest(pass *Pass, dst ast.Expr, outer func(ast.Expr) bool) bool {
	switch e := ast.Unparen(dst).(type) {
	case *ast.Ident:
		if e.Name == "_" {
			return false
		}
		return outer(e)
	case *ast.SelectorExpr:
		return isSharedSelector(pass, e)
	case *ast.StarExpr:
		return outer(e.X) // *p where p captured: writes through a shared pointer
	}
	return false
}

// isSharedSelector reports whether expr is a field selector (captured
// struct state) — always shared from a fan-out body's perspective.
func isSharedSelector(pass *Pass, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Var)
	return ok && obj.IsField()
}
