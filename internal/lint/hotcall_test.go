package lint

import "testing"

func TestHotcall(t *testing.T) {
	runAnalysisTest(t, HotcallAnalyzer, "bolt/internal/hotcall", "hotcall")
}

// TestHotcallCatchesWhatHotallocMisses is the acceptance guard for the
// interprocedural layer: the hotcall fixture's hot path allocates only in
// transitive callees, so the intraprocedural hotalloc must report nothing
// there — the two diagnostics in the fixture exist because of the summary
// layer and nothing else.
func TestHotcallCatchesWhatHotallocMisses(t *testing.T) {
	diags, _ := analyzeTestdata(t, HotallocAnalyzer, "bolt/internal/hotcall", "hotcall")
	for _, d := range diags {
		t.Errorf("hotalloc unexpectedly reported in the hotcall fixture: %s", d)
	}
}
