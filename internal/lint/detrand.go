package lint

import (
	"go/ast"
	"strings"
)

// deterministicPkgs are the package paths (and their subpackages) whose
// output is pinned by the seed-42 golden suite: every bit of randomness in
// them must flow through stats.RNG, and no ambient process state (clock,
// environment) may influence results.
var deterministicPkgs = []string{
	"bolt/internal/sim",
	"bolt/internal/mining",
	"bolt/internal/core",
	"bolt/internal/exper",
	"bolt/internal/probe",
	"bolt/internal/stats",
	"bolt/internal/fault",
	"bolt/internal/fleet",
	"bolt/internal/par",
	"bolt/internal/cluster",
	"bolt/internal/defence",
	"bolt/internal/attack",
	"bolt/internal/serve",
	// The serving-plane commands carry the same contract as the libraries
	// they drive: boltd answers must be bit-exact against the solo
	// detector, and boltload's shed/served counts are compared across
	// runs. Their few deliberate wall-clock reads (startup diagnostics,
	// latency measurement) carry //bolt:nolint reasons.
	"bolt/cmd/boltd",
	"bolt/cmd/boltload",
}

// isDeterministicPkg reports whether path is one of the deterministic
// packages or nested under one.
func isDeterministicPkg(path string) bool {
	for _, p := range deterministicPkgs {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// DetrandAnalyzer forbids ambient nondeterminism in deterministic packages:
// math/rand (global or otherwise — randomness must flow through stats.RNG,
// whose streams the golden tests pin), wall-clock reads (time.Now and
// friends), and environment reads (os.Getenv — an env-dependent branch makes
// the suite's output depend on the machine it runs on).
var DetrandAnalyzer = &Analyzer{
	Name: "detrand",
	Doc:  "forbid math/rand, wall-clock, and environment reads in deterministic packages",
	Run:  runDetrand,
}

// detrandForbiddenCalls maps fully qualified functions to the reason they
// are forbidden in deterministic packages.
var detrandForbiddenCalls = map[string]string{
	"time.Now":       "wall-clock read",
	"time.Since":     "wall-clock read",
	"time.Until":     "wall-clock read",
	"os.Getenv":      "environment read",
	"os.LookupEnv":   "environment read",
	"os.Environ":     "environment read",
	"os.ExpandEnv":   "environment read",
	"os.Hostname":    "host-identity read",
	"os.Getpid":      "process-identity read",
	"runtime.NumCPU": "host-topology read",
}

func runDetrand(pass *Pass) {
	if !isDeterministicPkg(pass.Pkg.Path()) {
		return
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				pass.Reportf(imp.Pos(),
					"deterministic package imports %s; all randomness must flow through stats.RNG so the seed-42 golden stream stays byte-identical", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := funcObj(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			name := fn.Pkg().Path() + "." + fn.Name()
			if why, bad := detrandForbiddenCalls[name]; bad {
				pass.Reportf(call.Pos(),
					"%s (%s) in deterministic package %s; results must be a pure function of the seed", name, why, pass.Pkg.Path())
			}
			return true
		})
	}
}
