package lint

// Tests for the interprocedural summary layer: cross-package fixed-point
// propagation (interface dispatch and recursive cycles, via the two-package
// hotcallx fixture), fan-out parameter learning, and determinism of the
// per-package summary cache across cold and warm builds.

import (
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// chainImporter resolves the testdata module's internal imports from
// already-checked packages and everything else from the fallback importer —
// the multi-package equivalent of testdataImporter.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// loadHotcallx type-checks the two-package hotcallx fixture in dependency
// order (leaf, then root against leaf's checked types) and returns both.
func loadHotcallx(t *testing.T) (leaf, root *Package) {
	t.Helper()
	fset := token.NewFileSet()

	leafDir := filepath.Join("testdata", "hotcallx", "leaf")
	leafImp := testdataImporter(t, fset, leafDir, []string{"leaf.go"})
	leafPkg, err := checkPackage(fset, leafImp, "bolt/internal/hotx/leaf", leafDir, []string{"leaf.go"})
	if err != nil {
		t.Fatalf("type-checking leaf: %v", err)
	}

	rootDir := filepath.Join("testdata", "hotcallx", "root")
	local := map[string]*types.Package{"bolt/internal/hotx/leaf": leafPkg.Types}
	rootImp := chainImporter{local: local, fallback: externalImportsOf(t, fset, rootDir, []string{"root.go"}, local)}
	rootPkg, err := checkPackage(fset, rootImp, "bolt/internal/hotx/root", rootDir, []string{"root.go"})
	if err != nil {
		t.Fatalf("type-checking root: %v", err)
	}
	return leafPkg, rootPkg
}

// externalImportsOf builds an importer for the dir's imports that are NOT
// provided locally (goList cannot resolve the fixture's synthetic paths).
func externalImportsOf(t *testing.T, fset *token.FileSet, dir string, goFiles []string, local map[string]*types.Package) types.Importer {
	t.Helper()
	external := []string{}
	for _, name := range goFiles {
		f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if _, ok := local[p]; !ok {
				external = append(external, p)
			}
		}
	}
	exports := map[string]string{}
	if len(external) > 0 {
		listed, err := goList(".", external)
		if err != nil {
			t.Fatalf("resolving external imports: %v", err)
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return exportImporter(fset, exports)
}

// TestHotcallCrossPackage is the cross-package fixed-point golden test:
// hotcall through an interface whose allocating implementation lives in
// another package, plus intra- and cross-function recursion that must not
// be reported.
func TestHotcallCrossPackage(t *testing.T) {
	leaf, root := loadHotcallx(t)
	diags := Run([]*Package{leaf, root}, []*Analyzer{HotcallAnalyzer})

	sources := map[string][]byte{}
	for k, v := range leaf.Sources {
		sources[k] = v
	}
	for k, v := range root.Sources {
		sources[k] = v
	}
	matchWants(t, diags, sources)
}

// TestSummaryFixedPoint spot-checks the propagated facts directly.
func TestSummaryFixedPoint(t *testing.T) {
	leaf, root := loadHotcallx(t)
	s := BuildSummaries([]*Package{leaf, root})

	checks := []struct {
		key   string
		alloc bool
	}{
		{"(bolt/internal/hotx/leaf.Alloc).Measure", true},
		{"(bolt/internal/hotx/leaf.Clean).Measure", false},
		{"(bolt/internal/hotx/leaf.Measurer).Measure", true}, // via Alloc
		{"bolt/internal/hotx/root.Reduce", true},             // via the interface
		{"bolt/internal/hotx/leaf.MaxDepth", false},          // self-recursion
		{"bolt/internal/hotx/root.mutual", false},            // mutual recursion
		{"bolt/internal/hotx/root.recurse", false},
		{"bolt/internal/hotx/root.Probe", false},
	}
	for _, c := range checks {
		if s.Facts(c.key) == nil {
			t.Errorf("no summary for %s", c.key)
			continue
		}
		if got := s.TransitivelyAllocates(c.key); got != c.alloc {
			t.Errorf("TransitivelyAllocates(%s) = %v, want %v", c.key, got, c.alloc)
		}
	}
}

// TestFanOutParamPropagation pins the wrapper discovery: the barriermerge
// fixture's fanAll forwards its body parameter to par.FanOut, so the fixed
// point must mark parameter 1 of fanAll as a fan-out body.
func TestFanOutParamPropagation(t *testing.T) {
	pkg := loadFixture(t, "bolt/internal/exper", "barriermerge")
	s := BuildSummaries([]*Package{pkg})

	if got := s.FanOutParams("bolt/internal/par.FanOut"); !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("FanOutParams(par.FanOut) = %v, want [3]", got)
	}
	if got := s.FanOutParams("bolt/internal/exper.fanAll"); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("FanOutParams(fanAll) = %v, want [1] (learned through par.FanOut)", got)
	}
}

// TestSummaryCacheDeterminism builds the same package cold (extracting
// facts from the AST, populating the cache) and warm (reading them back)
// and requires identical summaries — the cache must never change results.
func TestSummaryCacheDeterminism(t *testing.T) {
	prev := SetSummaryCacheDir(t.TempDir())
	defer SetSummaryCacheDir(prev)

	pkg := loadFixture(t, "bolt/internal/hotcall", "hotcall")
	cold := BuildSummaries([]*Package{pkg})
	warm := BuildSummaries([]*Package{pkg})

	if !reflect.DeepEqual(cold.keys, warm.keys) {
		t.Fatalf("cold/warm key sets differ:\ncold: %v\nwarm: %v", cold.keys, warm.keys)
	}
	for _, k := range cold.keys {
		if !reflect.DeepEqual(cold.funcs[k], warm.funcs[k]) {
			t.Errorf("facts for %s differ between cold and warm builds:\ncold: %+v\nwarm: %+v",
				k, cold.funcs[k], warm.funcs[k])
		}
	}
}
