package lint

import (
	"go/ast"
	"go/types"
)

// TimerLeakAnalyzer covers the two resource-lifetime contracts the serving
// plane introduced:
//
//   - Every time.NewTimer / time.NewTicker needs a Stop reachable from the
//     function that created it. An unstopped ticker leaks its goroutine
//     forever; an unstopped timer pins its callback and channel until it
//     fires. time.Tick is reported unconditionally — it has no Stop at
//     all. A timer that escapes the creating function (returned, stored
//     into a struct, or handed to another function) is left to that
//     owner's discipline; the analyzer stays silent rather than guessing.
//
//   - In deterministic packages, every `go` statement needs a matching
//     join: a WaitGroup the launcher (or its package) Waits on, or a
//     channel the launching function receives from or ranges over. A
//     fire-and-forget goroutine outlives the scope that measured around
//     it, so its work lands in whichever tick or episode happens to be
//     running when it finishes — schedule-dependence of exactly the kind
//     the byte-identical suite contract forbids. Join discovery is
//     interprocedural: `go s.worker()` is joined when worker transitively
//     Done()s a WaitGroup field that some function Waits on (serve's
//     Server.wg span worker→Close), courtesy of the summary layer.
var TimerLeakAnalyzer = &Analyzer{
	Name: "timerleak",
	Doc:  "require Stop for timers/tickers and a join for goroutines in deterministic packages",
	Run:  runTimerLeak,
}

func runTimerLeak(pass *Pass) {
	checkGoroutines := isDeterministicPkg(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkTimers(pass, fn)
			if checkGoroutines {
				checkGoJoins(pass, fn)
			}
		}
	}
}

// timeFunc returns the name of the time-package function a call invokes
// ("" otherwise).
func timeFunc(pass *Pass, call *ast.CallExpr) string {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
		return ""
	}
	return fn.Name()
}

// checkTimers enforces the Stop contract within one function declaration
// (function literals included — a timer made in a goroutine body and
// stopped there is fine, and both sides are in this scope).
func checkTimers(pass *Pass, fn *ast.FuncDecl) {
	parent := parentMap(fn.Body)

	// stopped: objects with a .Stop() call; escaped: objects returned,
	// passed to another function, or parked in non-local storage.
	stopped := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	objOf := func(e ast.Expr) types.Object {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return nil
		}
		if o := pass.TypesInfo.Uses[id]; o != nil {
			return o
		}
		return pass.TypesInfo.Defs[id]
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if o := objOf(sel.X); o != nil {
					stopped[o] = true
				}
			}
			for _, arg := range node.Args {
				if o := objOf(arg); o != nil {
					escaped[o] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range node.Results {
				if o := objOf(r); o != nil {
					escaped[o] = true
				}
			}
		case *ast.AssignStmt:
			// t assigned onward (into a field, another variable, a slice
			// slot…): ownership moved, stay silent.
			for i, rhs := range node.Rhs {
				if o := objOf(rhs); o != nil {
					if i < len(node.Lhs) {
						if _, isIdent := ast.Unparen(node.Lhs[i]).(*ast.Ident); !isIdent {
							escaped[o] = true
						} else {
							escaped[o] = true // aliased; the alias may be the one stopped
						}
					}
				}
			}
		}
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch timeFunc(pass, call) {
		case "Tick":
			pass.Reportf(call.Pos(),
				"time.Tick leaks its ticker goroutine forever; use time.NewTicker with a deferred Stop")
		case "NewTimer", "NewTicker":
			name := timeFunc(pass, call)
			switch p := parent[call].(type) {
			case *ast.AssignStmt:
				for i, rhs := range p.Rhs {
					if ast.Unparen(rhs) != ast.Expr(call) || i >= len(p.Lhs) {
						continue
					}
					o := objOf(p.Lhs[i])
					if o == nil { // bound to a field or index: escapes to its owner
						continue
					}
					if !stopped[o] && !escaped[o] {
						pass.Reportf(call.Pos(),
							"time.%s result %s is never Stop()ed in this function; an unstopped %s leaks — defer %s.Stop()",
							name, o.Name(), leakNoun(name), o.Name())
					}
				}
			case *ast.ValueSpec:
				for i, v := range p.Values {
					if ast.Unparen(v) != ast.Expr(call) || i >= len(p.Names) {
						continue
					}
					o := pass.TypesInfo.Defs[p.Names[i]]
					if o != nil && !stopped[o] && !escaped[o] {
						pass.Reportf(call.Pos(),
							"time.%s result %s is never Stop()ed in this function; an unstopped %s leaks — defer %s.Stop()",
							name, o.Name(), leakNoun(name), o.Name())
					}
				}
			case *ast.ExprStmt:
				pass.Reportf(call.Pos(),
					"time.%s result discarded; the %s cannot be stopped and leaks", name, leakNoun(name))
			}
		}
		return true
	})
}

func leakNoun(timeFn string) string {
	if timeFn == "NewTicker" {
		return "ticker"
	}
	return "timer"
}

// checkGoJoins enforces the join contract for every `go` statement in fn.
func checkGoJoins(pass *Pass, fn *ast.FuncDecl) {
	var gos []*ast.GoStmt
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			gos = append(gos, g)
		}
		return true
	})
	for _, g := range gos {
		if goStmtJoined(pass, fn, g) {
			continue
		}
		pass.Reportf(g.Pos(),
			"goroutine in deterministic package %s has no join (WaitGroup Wait or channel receive); a fire-and-forget goroutine makes completion timing observable", pass.Pkg.Path())
	}
}

// goStmtJoined decides whether one `go` statement has a matching join.
func goStmtJoined(pass *Pass, fn *ast.FuncDecl, g *ast.GoStmt) bool {
	// Named callee: joined when it transitively Done()s a WaitGroup field
	// someone Waits on.
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		return funcLitJoined(pass, fn, lit)
	}
	callee := funcObj(pass.TypesInfo, g.Call)
	if callee == nil {
		return false // call through a function value: unverifiable
	}
	if pass.Summaries == nil {
		return false
	}
	for _, k := range pass.Summaries.TransitiveWGDone(funcKey(callee)) {
		if pass.Summaries.WGWaitExists(k) {
			return true
		}
	}
	return false
}

// funcLitJoined decides whether a `go func() {...}()` body signals its
// completion in a way the launching function (or its package) waits for.
func funcLitJoined(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit) bool {
	joined := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if joined {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			// wg.Done() — local WaitGroup waited on in this function, or a
			// field WaitGroup waited on somewhere in the module.
			if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Done" {
				if isWaitGroup(pass, sel.X) {
					if key := storageKey(pass, sel.X); key != "" {
						if pass.Summaries != nil && pass.Summaries.WGWaitExists(key) {
							joined = true
						}
					} else if o := exprObj(pass, sel.X); o != nil && objHasWait(pass, fn, o) {
						joined = true
					}
				}
			}
			// close(ch) on a channel the launcher receives from.
			if id, ok := ast.Unparen(node.Fun).(*ast.Ident); ok {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" && len(node.Args) == 1 {
					if o := exprObj(pass, node.Args[0]); o != nil && objReceivedFrom(pass, fn, lit, o) {
						joined = true
					}
				}
			}
			// Delegated body: calls a function that transitively Done()s a
			// waited-on WaitGroup field.
			if pass.Summaries != nil {
				if callee := funcObj(pass.TypesInfo, node); callee != nil {
					for _, k := range pass.Summaries.TransitiveWGDone(funcKey(callee)) {
						if pass.Summaries.WGWaitExists(k) {
							joined = true
						}
					}
				}
			}
		case *ast.SendStmt:
			// ch <- v on a channel the launcher receives from.
			if o := exprObj(pass, node.Chan); o != nil && objReceivedFrom(pass, fn, lit, o) {
				joined = true
			}
		}
		return true
	})
	return joined
}

func exprObj(pass *Pass, e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if o := pass.TypesInfo.Uses[id]; o != nil {
		return o
	}
	return pass.TypesInfo.Defs[id]
}

// isWaitGroup reports whether e has type sync.WaitGroup (or pointer to it).
func isWaitGroup(pass *Pass, e ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}

// objHasWait reports whether fn's body calls Wait on the given object.
func objHasWait(pass *Pass, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Wait" {
			return true
		}
		if exprObj(pass, sel.X) == obj {
			found = true
		}
		return true
	})
	return found
}

// objReceivedFrom reports whether fn receives from (or ranges over) the
// channel object outside the launched literal.
func objReceivedFrom(pass *Pass, fn *ast.FuncDecl, lit *ast.FuncLit, obj types.Object) bool {
	found := false
	inside := func(n ast.Node) bool { return n.Pos() >= lit.Pos() && n.End() <= lit.End() }
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" && !inside(node) && exprObj(pass, node.X) == obj {
				found = true
			}
		case *ast.RangeStmt:
			if !inside(node) && exprObj(pass, node.X) == obj {
				if t := pass.TypesInfo.TypeOf(node.X); t != nil {
					if _, isChan := t.Underlying().(*types.Chan); isChan {
						found = true
					}
				}
			}
		}
		return true
	})
	return found
}
