package lint

// analysistest-style golden harness: each testdata/<case> directory is
// type-checked as a package (under a caller-chosen import path, so
// package-gated analyzers can be exercised), the analyzer runs with the
// full suppression machinery, and the diagnostics are matched 1:1 against
// `// want "regexp"` comments on the offending lines — the same convention
// as golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// standard library.

import (
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// testdataImporter builds an export-data importer covering every package
// the testdata files import (resolved via `go list -deps -export` from the
// module, exactly like the real driver).
func testdataImporter(t *testing.T, fset *token.FileSet, dir string, goFiles []string) types.Importer {
	t.Helper()
	seen := map[string]bool{}
	var paths []string
	for _, name := range goFiles {
		f, err := parser.ParseFile(token.NewFileSet(), filepath.Join(dir, name), nil, parser.ImportsOnly)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if !seen[p] {
				seen[p] = true
				paths = append(paths, p)
			}
		}
	}
	exports := map[string]string{}
	if len(paths) > 0 {
		listed, err := goList(".", paths)
		if err != nil {
			t.Fatalf("resolving testdata imports: %v", err)
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	return exportImporter(fset, exports)
}

// wantRe extracts the quoted regexps of a want comment; both backtick and
// double-quote delimiters are accepted, as in analysistest.
var wantRe = regexp.MustCompile("`([^`]+)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// runAnalysisTest type-checks testdata/<subdir> under pkgPath and verifies
// the analyzer's diagnostics (plus malformed-suppression reports) against
// the // want comments.
func runAnalysisTest(t *testing.T, a *Analyzer, pkgPath, subdir string) {
	t.Helper()
	diags, sources := analyzeTestdata(t, a, pkgPath, subdir)
	matchWants(t, diags, sources)
}

// matchWants verifies diagnostics 1:1 against the // want comments in the
// given sources (multi-package callers merge their source maps first).
func matchWants(t *testing.T, diags []Diagnostic, sources map[string][]byte) {
	t.Helper()

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string]map[int][]*want{} // file -> line -> expectations
	for file, src := range sources {
		for i, line := range strings.Split(string(src), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			for _, m := range wantRe.FindAllStringSubmatch(line[idx+len("// want "):], -1) {
				pat := m[1]
				if pat == "" {
					pat = m[2]
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", file, i+1, pat, err)
				}
				if wants[file] == nil {
					wants[file] = map[int][]*want{}
				}
				wants[file][i+1] = append(wants[file][i+1], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		lineWants := wants[d.Position.Filename][d.Position.Line]
		matched := false
		for _, w := range lineWants {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	var files []string
	for file := range wants {
		files = append(files, file)
	}
	sort.Strings(files)
	for _, file := range files {
		var lines []int
		for line := range wants[file] {
			lines = append(lines, line)
		}
		sort.Ints(lines)
		for _, line := range lines {
			for _, w := range wants[file][line] {
				if !w.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, w.re)
				}
			}
		}
	}
}

// analyzeTestdata loads testdata/<subdir> as package pkgPath and returns
// the post-suppression diagnostics and the raw sources.
func analyzeTestdata(t *testing.T, a *Analyzer, pkgPath, subdir string) ([]Diagnostic, map[string][]byte) {
	t.Helper()
	pkg := loadFixture(t, pkgPath, subdir)
	return Run([]*Package{pkg}, []*Analyzer{a}), pkg.Sources
}

// loadFixture type-checks testdata/<subdir> as package pkgPath.
func loadFixture(t *testing.T, pkgPath, subdir string) *Package {
	t.Helper()
	dir := filepath.Join("testdata", subdir)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	if len(goFiles) == 0 {
		t.Fatalf("no Go files in %s", dir)
	}

	fset := token.NewFileSet()
	imp := testdataImporter(t, fset, dir, goFiles)
	pkg, err := checkPackage(fset, imp, pkgPath, dir, goFiles)
	if err != nil {
		t.Fatalf("type-checking %s: %v", dir, err)
	}
	return pkg
}
