package lint

import "testing"

func TestRCUDiscipline(t *testing.T) {
	runAnalysisTest(t, RCUDisciplineAnalyzer, "bolt/internal/rcu", "rcu")
}
