package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SnapshotAnalyzer enforces the simulator's observation-plane contract
// (internal/sim/observation.go) on both sides of the API:
//
//  1. Version discipline — a type implementing sim.DemandVersioner promises
//     that DemandVersion() changes whenever Demand(t) might. So any method
//     of such a type that writes a field Demand reads must also write the
//     field(s) DemandVersion reads. Forgetting the bump leaves a stale
//     demand snapshot serving same-tick observations — exactly the silent
//     staleness bug the epoch/version key exists to prevent.
//
//  2. Snapshot retention — outside internal/sim, a value observed from a
//     server (Interference, ObservedVector, HostDemand, Observation, ...)
//     describes the placement at the moment of the call. Using such a value
//     after a Place/Remove on any server in the same function treats a
//     stale observation as current; re-observe after mutating placement
//     (or suppress with a reason when the before/after comparison is the
//     point).
var SnapshotAnalyzer = &Analyzer{
	Name: "snapshotdiscipline",
	Doc:  "enforce the observation plane's version-bump and no-stale-snapshot contracts",
	Run:  runSnapshot,
}

const simPkgPath = "bolt/internal/sim"

// observationMethods are the (*sim.Server) methods whose result is a
// placement-dependent observation.
var observationMethods = map[string]bool{
	"Interference": true, "InterferenceLive": true, "ObservedVector": true,
	"ObservedPressure": true, "ObservedCorePressure": true, "Slowdown": true,
	"CPUUtilization": true, "HostDemand": true, "Observation": true,
}

// placementMutators invalidate every previously taken observation.
var placementMutators = map[string]bool{"Place": true, "Remove": true}

func runSnapshot(pass *Pass) {
	checkVersionDiscipline(pass)
	if pass.Pkg.Path() != simPkgPath && !strings.HasPrefix(pass.Pkg.Path(), simPkgPath+"/") {
		checkSnapshotRetention(pass)
	}
}

// demandVersionerIface resolves sim.DemandVersioner from the package under
// analysis or its imports; nil when sim is not in scope.
func demandVersionerIface(pass *Pass) *types.Interface {
	var simPkg *types.Package
	if pass.Pkg.Path() == simPkgPath {
		simPkg = pass.Pkg
	} else {
		for _, imp := range pass.Pkg.Imports() {
			if imp.Path() == simPkgPath {
				simPkg = imp
				break
			}
		}
	}
	if simPkg == nil {
		return nil
	}
	obj := simPkg.Scope().Lookup("DemandVersioner")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// checkVersionDiscipline applies rule 1 to every DemandVersioner
// implementation declared in this package.
func checkVersionDiscipline(pass *Pass) {
	iface := demandVersionerIface(pass)
	if iface == nil {
		return
	}

	// Group methods by receiver base type.
	methodsByType := map[types.Object][]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Recv == nil || len(fn.Recv.List) == 0 {
				continue
			}
			base := receiverBaseObj(pass, fn)
			if base != nil {
				methodsByType[base] = append(methodsByType[base], fn)
			}
		}
	}

	for base, methods := range methodsByType {
		named, ok := base.Type().(*types.Named)
		if !ok || !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		var demandFn, versionFn *ast.FuncDecl
		for _, m := range methods {
			switch m.Name.Name {
			case "Demand":
				demandFn = m
			case "DemandVersion":
				versionFn = m
			}
		}
		if demandFn == nil || versionFn == nil {
			continue // methods promoted from an embedded type; out of scope
		}
		demandFields := receiverFieldsRead(pass, demandFn)
		versionFields := receiverFieldsRead(pass, versionFn)
		if len(demandFields) == 0 || len(versionFields) == 0 {
			continue
		}
		for _, m := range methods {
			if m == demandFn || m == versionFn || m.Body == nil {
				continue
			}
			writes := receiverFieldsWritten(pass, m)
			touchesDemand := false
			for f := range writes {
				if demandFields[f] {
					touchesDemand = true
					break
				}
			}
			if !touchesDemand {
				continue
			}
			bumps := false
			for f := range receiverFieldsAssigned(pass, m) {
				if versionFields[f] {
					bumps = true
					break
				}
			}
			if !bumps {
				pass.Reportf(m.Pos(),
					"method %s.%s writes state read by Demand but never bumps the demand version; the observation snapshot will serve stale demand", named.Obj().Name(), m.Name.Name)
			}
		}
	}
}

// receiverBaseObj returns the type object of a method's receiver base type.
func receiverBaseObj(pass *Pass, fn *ast.FuncDecl) types.Object {
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	// Strip generic instantiation if present.
	if idx, ok := t.(*ast.IndexExpr); ok {
		t = idx.X
	}
	id, ok := t.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// receiverObj returns the receiver variable's object, or nil for anonymous
// receivers.
func receiverObj(pass *Pass, fn *ast.FuncDecl) types.Object {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return nil
	}
	return pass.TypesInfo.Defs[fn.Recv.List[0].Names[0]]
}

// isSyncField reports whether a field's type lives in package sync
// (mutexes are infrastructural, not demand state).
func isSyncField(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	named, ok := v.Type().(*types.Named)
	return ok && named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "sync"
}

// receiverFieldsRead collects the names of receiver fields a method reads.
func receiverFieldsRead(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	recv := receiverObj(pass, fn)
	out := map[string]bool{}
	if recv == nil || fn.Body == nil {
		return out
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
			if fieldObj := pass.TypesInfo.Uses[sel.Sel]; fieldObj != nil && !isSyncField(fieldObj) {
				if _, isVar := fieldObj.(*types.Var); isVar {
					out[sel.Sel.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// receiverFieldsAssigned collects receiver fields written by plain
// assignment or ++/--, the forms a version bump takes.
func receiverFieldsAssigned(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	recv := receiverObj(pass, fn)
	out := map[string]bool{}
	if recv == nil || fn.Body == nil {
		return out
	}
	record := func(e ast.Expr) {
		if sel, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == recv {
				out[sel.Sel.Name] = true
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range st.Lhs {
				record(lhs)
			}
		case *ast.IncDecStmt:
			record(st.X)
		}
		return true
	})
	return out
}

// receiverFieldsWritten is receiverFieldsAssigned plus mutations through a
// pointer-receiver method called on a field (k.intensity.Set(...)).
func receiverFieldsWritten(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	out := receiverFieldsAssigned(pass, fn)
	recv := receiverObj(pass, fn)
	if recv == nil || fn.Body == nil {
		return out
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(inner.X).(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[id] != recv {
			return true
		}
		if fieldObj := pass.TypesInfo.Uses[inner.Sel]; fieldObj == nil || isSyncField(fieldObj) {
			return true
		}
		if m, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok {
			if sig, ok := m.Type().(*types.Signature); ok && sig.Recv() != nil {
				if _, isPtr := sig.Recv().Type().(*types.Pointer); isPtr {
					out[inner.Sel.Name] = true
				}
			}
		}
		return true
	})
	return out
}

// checkSnapshotRetention applies rule 2: within one function outside
// internal/sim, an observation-derived variable must not be used after a
// Place/Remove call.
func checkSnapshotRetention(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkRetentionInFunc(pass, fn)
		}
	}
}

// serverMethodCall returns the method name when call is a method on
// *sim.Server (or sim.Server).
func serverMethodCall(pass *Pass, call *ast.CallExpr) string {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != simPkgPath {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "Server" {
		return ""
	}
	return fn.Name()
}

func checkRetentionInFunc(pass *Pass, fn *ast.FuncDecl) {
	type obsVar struct {
		obj      types.Object
		name     string
		takenPos int // token.Pos as int for comparisons
	}
	var observations []obsVar
	var mutations []int

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			if len(node.Lhs) == 0 || len(node.Rhs) == 0 {
				return true
			}
			if call, ok := ast.Unparen(node.Rhs[0]).(*ast.CallExpr); ok {
				if m := serverMethodCall(pass, call); observationMethods[m] {
					for _, lhs := range node.Lhs {
						if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && id.Name != "_" {
							obj := pass.TypesInfo.Defs[id]
							if obj == nil {
								obj = pass.TypesInfo.Uses[id]
							}
							if obj != nil {
								observations = append(observations, obsVar{obj, id.Name, int(node.Pos())})
							}
						}
					}
				}
			}
		case *ast.CallExpr:
			if m := serverMethodCall(pass, node); placementMutators[m] {
				mutations = append(mutations, int(node.Pos()))
			}
		}
		return true
	})

	if len(observations) == 0 || len(mutations) == 0 {
		return
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		use := pass.TypesInfo.Uses[id]
		if use == nil {
			return true
		}
		for _, o := range observations {
			if o.obj != use || int(id.Pos()) <= o.takenPos {
				continue
			}
			for _, m := range mutations {
				if o.takenPos < m && m < int(id.Pos()) {
					pass.Reportf(id.Pos(),
						"observation %q was taken before a Place/Remove and used after it; the placement changed, so the observation is stale — re-observe after mutating placement", o.name)
					return true
				}
			}
		}
		return true
	})
}
