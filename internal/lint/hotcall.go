package lint

import (
	"go/ast"
	"go/types"
)

// HotcallAnalyzer extends hotalloc across the call graph: a //bolt:hotpath
// function must be *transitively* allocation-free. hotalloc inspects only
// the annotated body, so `detect() { score(v) }` with an allocating score
// passed the lint and was caught much later by the alloc-budget bench gate,
// far from the line that introduced the allocation. hotcall walks every
// call in a hot body, consults the module-wide function summaries
// (summary.go), and reports calls whose callee reaches an allocation —
// with the full chain, so the diagnostic lands on the call site that
// entered allocating territory.
//
// Interface calls are resolved to every implementation in the analyzed
// packages: if any implementation allocates, the call is reported (a hot
// path cannot know which implementation it will get).
//
// Division of labor with hotalloc: allocations *in* the annotated body are
// hotalloc's, including calls to the curated allocatingHelpers table (which
// carries per-helper fix hints). hotcall reports only allocations reached
// *through* a callee. Calls under a lazy-init/capacity guard are exempt,
// mirroring hotalloc's guardedRanges rule, and a //bolt:nolint'd
// allocation site does not poison its callers' summaries — a documented,
// budget-pinned allocation stays local to its suppression.
var HotcallAnalyzer = &Analyzer{
	Name: "hotcall",
	Doc:  "flag calls in //bolt:hotpath functions whose callees allocate transitively",
	Run:  runHotcall,
}

func runHotcall(pass *Pass) {
	if pass.Summaries == nil {
		return
	}
	for _, fn := range hotpathFuncs(pass) {
		if fn.Body == nil {
			continue
		}
		checkHotCalls(pass, fn)
	}
}

func checkHotCalls(pass *Pass, fn *ast.FuncDecl) {
	guarded := guardedRanges(fn.Body)
	inGuard := func(n ast.Node) bool {
		for _, r := range guarded {
			if n.Pos() >= r[0] && n.End() <= r[1] {
				return true
			}
		}
		return false
	}

	var selfKey string
	if f, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
		selfKey = funcKey(f)
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || inGuard(call) {
			return true
		}
		callee := funcObj(pass.TypesInfo, call)
		if callee == nil {
			return true
		}
		key := funcKey(callee)
		if key == selfKey {
			return true // recursion: the body's own sites are hotalloc's
		}
		if _, owned := allocatingHelpers[callee.FullName()]; owned {
			return true // hotalloc reports these with a fix hint
		}
		if !pass.Summaries.TransitivelyAllocates(key) {
			return true
		}
		pass.Reportf(call.Pos(),
			"call on a hot path allocates transitively: %s → %s",
			shortFuncName(key), pass.Summaries.AllocChain(key))
		return true
	})
}
