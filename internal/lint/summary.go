package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is the interprocedural layer under boltlint: a module-wide
// function-summary index. PR 4's analyzers were strictly intraprocedural —
// hotalloc inspects only the annotated body, so an allocation one call away
// escaped the lint and was caught (much later, with much worse locality) by
// the alloc-budget bench gate. The summary layer closes that gap:
//
//  1. Per-function facts are extracted from each package's already
//     type-checked AST: "allocates", "reads the wall clock", "launches a
//     goroutine", which atomic.Pointer fields it Loads/Stores/CASes, which
//     sync.WaitGroups it Dones/Waits, its static call edges, and which of
//     its func-typed parameters it forwards as fan-out bodies.
//  2. Facts propagate across the call graph with fixed-point iteration.
//     Interface method calls fan out to every implementation declared in
//     the analyzed packages, so a hot path calling through an interface is
//     still tracked. Cycles converge because the facts are monotone booleans.
//  3. Per-package fact extraction is cached on disk keyed by source content
//     and dependency hashes (summarycache.go), the same shape as the
//     `go list -export` data the loader already leans on.
//
// The four interprocedural analyzers (hotcall, rcudiscipline, barriermerge,
// timerleak) consume the index through Pass.Summaries.

// summaryVersion invalidates cached package summaries whenever the fact
// extractor or the external-facts table changes shape.
const summaryVersion = 1

// ParamForward records one call argument that is a func-typed parameter of
// the enclosing function, e.g. exper.fanOut passing its body through to
// par.FanOut. The fixed point uses these to learn which wrappers are
// fan-out entry points.
type ParamForward struct {
	Callee     string `json:"callee"`      // summary key of the called function
	ArgIndex   int    `json:"arg_index"`   // position in the call
	ParamIndex int    `json:"param_index"` // position in the enclosing signature
}

// FuncFacts are the per-function facts the summary layer extracts and
// propagates. The exported fields are local (this body only) and are what
// the per-package cache serializes; the unexported trans* fields are the
// transitive closure computed per run.
type FuncFacts struct {
	// Allocates reports an unguarded, unsuppressed allocation construct in
	// the body: make/new, slice/map composite literals, address-taken
	// literals, appends without capacity provenance, escaping closures, or
	// a call into the known-allocating external table. AllocDesc/AllocPos
	// describe the first such site for diagnostics.
	Allocates bool   `json:"allocates,omitempty"`
	AllocDesc string `json:"alloc_desc,omitempty"`
	AllocPos  string `json:"alloc_pos,omitempty"`

	// ReadsClock reports a wall-clock read (time.Now and friends).
	ReadsClock bool `json:"reads_clock,omitempty"`
	// Goroutine reports a `go` statement in the body.
	Goroutine bool `json:"goroutine,omitempty"`

	// PtrLoads/PtrStores/PtrSwaps/PtrCAS are the atomic.Pointer fields this
	// body Load/Store/Swap/CompareAndSwap-s, as field keys
	// ("pkg/path.Type.field").
	PtrLoads  []string `json:"ptr_loads,omitempty"`
	PtrStores []string `json:"ptr_stores,omitempty"`
	PtrSwaps  []string `json:"ptr_swaps,omitempty"`
	PtrCAS    []string `json:"ptr_cas,omitempty"`

	// WGDone/WGWait are the sync.WaitGroup *fields* this body calls
	// Done/Wait on (field keys). Local WaitGroups are intra-function and
	// need no summary.
	WGDone []string `json:"wg_done,omitempty"`
	WGWait []string `json:"wg_wait,omitempty"`

	// Calls are the statically resolved callee keys, deduplicated, in
	// source order (the order matters: transitive-allocation chains pick
	// the first allocating callee deterministically).
	Calls []string `json:"calls,omitempty"`

	// FanOutParams are indices of func-typed parameters this function runs
	// as fan-out bodies (seeded at par.FanOut/FanOutBlocks, learned for
	// wrappers through ParamForwards).
	FanOutParams []int `json:"fanout_params,omitempty"`
	// ParamForwards records func-typed parameters passed on to callees.
	ParamForwards []ParamForward `json:"param_forwards,omitempty"`

	// Transitive closure (computed per run, never cached).
	transAlloc bool
	allocVia   string // first callee (source order) the allocation is reached through; "" = local
	transClock bool
	clockVia   string
	transDone  []string // WaitGroup field keys Done()d transitively
	transLoads []string // atomic.Pointer field keys Loaded transitively
}

// externalFacts are curated facts for functions outside the analyzed
// packages (mostly stdlib). Unknown externals default to no facts: the
// analyzers err toward silence at the module boundary and rely on the
// dynamic alloc-budget gates for what static summaries cannot see.
var externalFacts = map[string]FuncFacts{
	"fmt.Sprintf":  {Allocates: true, AllocDesc: "fmt.Sprintf"},
	"fmt.Sprint":   {Allocates: true, AllocDesc: "fmt.Sprint"},
	"fmt.Sprintln": {Allocates: true, AllocDesc: "fmt.Sprintln"},
	"fmt.Errorf":   {Allocates: true, AllocDesc: "fmt.Errorf"},
	"fmt.Fprintf":  {Allocates: true, AllocDesc: "fmt.Fprintf"},
	"fmt.Fprint":   {Allocates: true, AllocDesc: "fmt.Fprint"},
	"fmt.Fprintln": {Allocates: true, AllocDesc: "fmt.Fprintln"},
	"fmt.Printf":   {Allocates: true, AllocDesc: "fmt.Printf"},
	"fmt.Println":  {Allocates: true, AllocDesc: "fmt.Println"},
	"fmt.Appendf":  {Allocates: true, AllocDesc: "fmt.Appendf"},

	"errors.New": {Allocates: true, AllocDesc: "errors.New"},

	"strconv.Itoa":        {Allocates: true, AllocDesc: "strconv.Itoa"},
	"strconv.FormatFloat": {Allocates: true, AllocDesc: "strconv.FormatFloat"},
	"strconv.FormatInt":   {Allocates: true, AllocDesc: "strconv.FormatInt"},
	"strconv.Quote":       {Allocates: true, AllocDesc: "strconv.Quote"},

	"strings.Repeat":     {Allocates: true, AllocDesc: "strings.Repeat"},
	"strings.Join":       {Allocates: true, AllocDesc: "strings.Join"},
	"strings.Split":      {Allocates: true, AllocDesc: "strings.Split"},
	"strings.Fields":     {Allocates: true, AllocDesc: "strings.Fields"},
	"strings.Replace":    {Allocates: true, AllocDesc: "strings.Replace"},
	"strings.ReplaceAll": {Allocates: true, AllocDesc: "strings.ReplaceAll"},
	"strings.ToUpper":    {Allocates: true, AllocDesc: "strings.ToUpper"},
	"strings.ToLower":    {Allocates: true, AllocDesc: "strings.ToLower"},

	"sort.Slice":       {Allocates: true, AllocDesc: "sort.Slice (boxes the less func)"},
	"sort.SliceStable": {Allocates: true, AllocDesc: "sort.SliceStable (boxes the less func)"},

	"time.Now":   {ReadsClock: true},
	"time.Since": {ReadsClock: true},
	"time.Until": {ReadsClock: true},
}

// fanOutSeeds are the ground-truth fan-out entry points: par.FanOut and
// par.FanOutBlocks run their 4th argument as the concurrent body. Wrappers
// (exper.fanOut, exper.forEachEpisode, and whatever comes next) are learned
// from ParamForwards at fixed point, so the seed list never needs to grow.
var fanOutSeeds = map[string][]int{
	"bolt/internal/par.FanOut":       {3},
	"bolt/internal/par.FanOutBlocks": {3},
}

// Summaries is the module-wide function-fact index for one Run.
type Summaries struct {
	funcs map[string]*FuncFacts
	keys  []string            // sorted keys of funcs, for deterministic iteration
	pkgOf map[string]string   // function key -> declaring package path
	impls map[string][]string // interface-method key -> implementing method keys
}

// funcKey is the summary key of a *types.Func: the generic origin's
// FullName, e.g. "bolt/internal/mining.Dot",
// "(*bolt/internal/serve.Server).flush", or — for interface methods —
// "(bolt/internal/sim.DemandVersioner).Demand".
func funcKey(fn *types.Func) string {
	return fn.Origin().FullName()
}

// Facts returns the (local) facts for key, or nil when unknown.
func (s *Summaries) Facts(key string) *FuncFacts {
	return s.funcs[key]
}

// PackageFuncs returns the summary keys declared in the given package, in
// sorted order.
func (s *Summaries) PackageFuncs(pkgPath string) []string {
	var out []string
	for _, k := range s.keys {
		if s.pkgOf[k] == pkgPath {
			out = append(out, k)
		}
	}
	return out
}

// TransitivelyAllocates reports whether key (or anything it can reach)
// allocates.
func (s *Summaries) TransitivelyAllocates(key string) bool {
	f := s.funcs[key]
	return f != nil && f.transAlloc
}

// TransitivelyReadsClock reports whether key (or anything it can reach)
// reads the wall clock.
func (s *Summaries) TransitivelyReadsClock(key string) bool {
	f := s.funcs[key]
	return f != nil && f.transClock
}

// TransitiveWGDone returns the WaitGroup field keys key Done()s,
// transitively.
func (s *Summaries) TransitiveWGDone(key string) []string {
	f := s.funcs[key]
	if f == nil {
		return nil
	}
	return f.transDone
}

// TransitivePtrLoads returns the atomic.Pointer field keys key Load()s,
// transitively.
func (s *Summaries) TransitivePtrLoads(key string) []string {
	f := s.funcs[key]
	if f == nil {
		return nil
	}
	return f.transLoads
}

// WGWaitExists reports whether any summarized function Waits on the given
// WaitGroup field key — the module-wide half of the goroutine-join check.
func (s *Summaries) WGWaitExists(fieldKey string) bool {
	for _, k := range s.keys {
		for _, w := range s.funcs[k].WGWait {
			if w == fieldKey {
				return true
			}
		}
	}
	return false
}

// FanOutParams returns the fan-out body-parameter indices of key (seeded
// or learned); nil when key is not a fan-out entry point.
func (s *Summaries) FanOutParams(key string) []int {
	f := s.funcs[key]
	if f == nil {
		return nil
	}
	return f.FanOutParams
}

// AllocChain renders the call chain from key to the allocation that makes
// it transitively allocating, e.g.
//
//	flushGroup → scratchFor → make (serve.go:101)
//
// Short names keep the diagnostic readable; the terminal element names the
// allocating construct and its position.
func (s *Summaries) AllocChain(key string) string {
	var parts []string
	cur := key
	for range s.keys { // bounded: via links cannot be longer than the graph
		f := s.funcs[cur]
		if f == nil {
			return strings.Join(parts, " → ")
		}
		if f.allocVia == "" {
			site := f.AllocDesc
			if f.AllocPos != "" {
				site += " (" + f.AllocPos + ")"
			}
			parts = append(parts, site)
			return strings.Join(parts, " → ")
		}
		parts = append(parts, shortFuncName(f.allocVia))
		cur = f.allocVia
	}
	return strings.Join(parts, " → ")
}

// shortFuncName compresses a summary key for diagnostics:
// "(*bolt/internal/serve.Server).flush" → "(*serve.Server).flush".
func shortFuncName(key string) string {
	out := key
	for {
		i := strings.Index(out, "bolt/")
		if i < 0 {
			return out
		}
		j := strings.Index(out[i:], ".")
		if j < 0 {
			return out
		}
		path := out[i : i+j]
		out = out[:i] + path[strings.LastIndex(path, "/")+1:] + out[i+j:]
	}
}

// BuildSummaries extracts local facts for every function in pkgs (consulting
// the per-package cache when enabled), resolves interface-dispatch and
// fan-out edges, and runs the fixed point. It is deterministic: iteration
// orders are pinned by sorted keys and source order, never map order.
func BuildSummaries(pkgs []*Package) *Summaries {
	s := &Summaries{
		funcs: map[string]*FuncFacts{},
		pkgOf: map[string]string{},
		impls: map[string][]string{},
	}

	// Phase 1: local facts per package, cache-aware. Packages are processed
	// in sorted-path order so dependency hashes chain deterministically.
	ordered := append([]*Package(nil), pkgs...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].PkgPath < ordered[j].PkgPath })
	hashes := map[string]string{}
	for _, pkg := range ordered {
		key := summaryCacheKey(pkg, hashes)
		hashes[pkg.PkgPath] = key
		if cached, ok := loadCachedSummary(key); ok {
			for fk, ff := range cached {
				s.funcs[fk] = ff
				s.pkgOf[fk] = pkg.PkgPath
			}
			continue
		}
		local := extractPackageFacts(pkg)
		for fk, ff := range local {
			s.funcs[fk] = ff
			s.pkgOf[fk] = pkg.PkgPath
		}
		storeCachedSummary(key, local)
	}

	// Phase 2: synthesize entries for callees that have no body here —
	// known externals, fan-out seeds, and interface methods (which get one
	// call edge per implementation found in the analyzed packages).
	s.rebuildKeys()
	for _, k := range s.keys {
		for _, callee := range s.funcs[k].Calls {
			s.ensureCallee(callee, pkgs)
		}
		for _, pf := range s.funcs[k].ParamForwards {
			s.ensureCallee(pf.Callee, pkgs)
		}
	}
	for seed, params := range fanOutSeeds {
		if f := s.funcs[seed]; f != nil {
			f.FanOutParams = mergeInts(f.FanOutParams, params)
		}
	}
	s.rebuildKeys()

	// Phase 3: fixed point. All facts are monotone (false→true, growing
	// sets), so iteration terminates; the via links are recomputed from
	// scratch each sweep and settle with the booleans.
	for changed := true; changed; {
		changed = false
		for _, k := range s.keys {
			f := s.funcs[k]
			ta, av := f.Allocates, ""
			tc, cv := f.ReadsClock, ""
			done := append([]string(nil), f.WGDone...)
			loads := append([]string(nil), f.PtrLoads...)
			for _, callee := range f.Calls {
				cf := s.funcs[callee]
				if cf == nil {
					continue
				}
				if cf.transAlloc && !ta {
					ta, av = true, callee
				}
				if cf.transClock && !tc {
					tc, cv = true, callee
				}
				done = mergeStrings(done, cf.transDone)
				loads = mergeStrings(loads, cf.transLoads)
			}
			var fan []int
			fan = append(fan, f.FanOutParams...)
			for _, pf := range f.ParamForwards {
				cf := s.funcs[pf.Callee]
				if cf == nil {
					continue
				}
				for _, p := range cf.FanOutParams {
					if p == pf.ArgIndex {
						fan = mergeInts(fan, []int{pf.ParamIndex})
					}
				}
			}
			if ta != f.transAlloc || av != f.allocVia ||
				tc != f.transClock || cv != f.clockVia ||
				len(done) != len(f.transDone) || len(loads) != len(f.transLoads) ||
				len(fan) != len(f.FanOutParams) {
				changed = true
			}
			f.transAlloc, f.allocVia = ta, av
			f.transClock, f.clockVia = tc, cv
			f.transDone, f.transLoads = done, loads
			f.FanOutParams = fan
		}
	}
	return s
}

func (s *Summaries) rebuildKeys() {
	s.keys = s.keys[:0]
	for k := range s.funcs {
		s.keys = append(s.keys, k)
	}
	sort.Strings(s.keys)
}

// ensureCallee gives a summary entry to a callee with no body in pkgs:
// external facts, fan-out seeds, or an interface method expanded to its
// implementations.
func (s *Summaries) ensureCallee(key string, pkgs []*Package) {
	if _, ok := s.funcs[key]; ok {
		return
	}
	if ext, ok := externalFacts[key]; ok {
		f := ext // copy
		s.funcs[key] = &f
		return
	}
	if params, ok := fanOutSeeds[key]; ok {
		s.funcs[key] = &FuncFacts{FanOutParams: append([]int(nil), params...)}
		return
	}
	if impls := s.interfaceImpls(key, pkgs); impls != nil {
		s.funcs[key] = &FuncFacts{Calls: impls}
		s.impls[key] = impls
	}
}

// interfaceImpls resolves an interface-method key like
// "(bolt/internal/sim.DemandVersioner).Demand" to the matching methods of
// every named type in pkgs that implements the interface, in sorted order.
// Returns nil when key does not name a resolvable interface method.
func (s *Summaries) interfaceImpls(key string, pkgs []*Package) []string {
	if !strings.HasPrefix(key, "(") {
		return nil
	}
	end := strings.Index(key, ")")
	if end < 0 || end+2 > len(key) || key[end+1] != '.' {
		return nil
	}
	recv, method := key[1:end], key[end+2:]
	if strings.HasPrefix(recv, "*") {
		return nil // pointer receiver: a concrete method, not an interface
	}
	dot := strings.LastIndex(recv, ".")
	if dot < 0 {
		return nil
	}
	pkgPath, typeName := recv[:dot], recv[dot+1:]

	iface := lookupInterface(pkgs, pkgPath, typeName)
	if iface == nil {
		return nil
	}
	var out []string
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			sel := types.NewMethodSet(types.NewPointer(named)).Lookup(pkg.Types, method)
			if sel == nil {
				// Exported interface methods are looked up package-free.
				for i, ms := 0, types.NewMethodSet(types.NewPointer(named)); i < ms.Len(); i++ {
					if ms.At(i).Obj().Name() == method {
						sel = ms.At(i)
						break
					}
				}
			}
			if sel == nil {
				continue
			}
			if m, ok := sel.Obj().(*types.Func); ok {
				out = append(out, funcKey(m))
			}
		}
	}
	sort.Strings(out)
	return dedupSorted(out)
}

// lookupInterface finds the named interface type pkgPath.typeName among the
// analyzed packages and their imports.
func lookupInterface(pkgs []*Package, pkgPath, typeName string) *types.Interface {
	lookupIn := func(tp *types.Package) *types.Interface {
		obj := tp.Scope().Lookup(typeName)
		if obj == nil {
			return nil
		}
		iface, _ := obj.Type().Underlying().(*types.Interface)
		return iface
	}
	for _, pkg := range pkgs {
		if pkg.Types.Path() == pkgPath {
			return lookupIn(pkg.Types)
		}
	}
	for _, pkg := range pkgs {
		for _, imp := range pkg.Types.Imports() {
			if imp.Path() == pkgPath {
				return lookupIn(imp)
			}
		}
	}
	return nil
}

// extractPackageFacts computes the local facts for every function declared
// in pkg. Suppressed allocation sites (//bolt:nolint hotalloc/hotcall with
// a reason) do not contribute facts: a documented, budget-pinned allocation
// must not poison every transitive caller.
func extractPackageFacts(pkg *Package) map[string]*FuncFacts {
	pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.Info}
	sups := parseSuppressions(pkg)
	allocSuppressed := func(pos token.Pos) bool {
		p := pkg.Fset.Position(pos)
		for i := range sups {
			if !sups[i].hasReason {
				continue
			}
			if sups[i].covers(HotallocAnalyzer.Name, p.Filename, p.Line) ||
				sups[i].covers(HotcallAnalyzer.Name, p.Filename, p.Line) {
				return true
			}
		}
		return false
	}

	out := map[string]*FuncFacts{}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			out[funcKey(obj)] = extractFuncFacts(pass, fn, allocSuppressed)
		}
	}
	return out
}

// extractFuncFacts walks one function body (function literals included:
// their effects run under this function's dynamic extent, and a closure
// passed elsewhere is summarized at its capture site, which is as precise
// as a flow-insensitive summary gets).
func extractFuncFacts(pass *Pass, fn *ast.FuncDecl, allocSuppressed func(token.Pos) bool) *FuncFacts {
	f := &FuncFacts{}
	body := fn.Body
	parent := parentMap(body)
	guarded := guardedRanges(body)
	provenanced := capacityProvenanced(pass, body)
	closures := localClosures(pass, body)
	params := paramObjects(pass, fn)

	inGuard := func(n ast.Node) bool {
		for _, r := range guarded {
			if n.Pos() >= r[0] && n.End() <= r[1] {
				return true
			}
		}
		return false
	}
	noteAlloc := func(n ast.Node, desc string) {
		if f.Allocates || inGuard(n) || allocSuppressed(n.Pos()) {
			return
		}
		f.Allocates = true
		f.AllocDesc = desc
		pos := pass.Fset.Position(n.Pos())
		f.AllocPos = fmt.Sprintf("%s:%d", trimPath(pos.Filename), pos.Line)
	}
	seenCall := map[string]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.GoStmt:
			f.Goroutine = true

		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(node)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Slice:
				noteAlloc(node, "composite slice literal")
			case *types.Map:
				noteAlloc(node, "composite map literal")
			default:
				if u, ok := parent[node].(*ast.UnaryExpr); ok && u.Op == token.AND {
					noteAlloc(node, "&"+types.TypeString(t, types.RelativeTo(pass.Pkg))+" literal")
				}
			}

		case *ast.FuncLit:
			if escapingFuncLit(pass, node, parent, closures) {
				noteAlloc(node, "escaping closure")
			}

		case *ast.CallExpr:
			extractCallFacts(pass, f, node, fn, params, provenanced, noteAlloc, seenCall)
		}
		return true
	})
	return f
}

// escapingFuncLit mirrors hotalloc's closure judgement: immediately invoked
// literals and call-only locals stay on the stack.
func escapingFuncLit(pass *Pass, lit *ast.FuncLit, parent map[ast.Node]ast.Node, closures map[types.Object]*ast.FuncLit) bool {
	if call, ok := parent[lit].(*ast.CallExpr); ok && call.Fun == lit {
		return false
	}
	for obj, l := range closures {
		if l != lit {
			continue
		}
		// Bound to a local: escapes only if used other than being called.
		escapes := false
		for id, use := range pass.TypesInfo.Uses {
			if use != obj {
				continue
			}
			if call, ok := parent[id].(*ast.CallExpr); ok && call.Fun == id {
				continue
			}
			escapes = true
		}
		return escapes
	}
	return true
}

// extractCallFacts records one call's contribution: allocation builtins,
// call edges, atomic.Pointer and WaitGroup operations, and parameter
// forwarding.
func extractCallFacts(pass *Pass, f *FuncFacts, call *ast.CallExpr, enclosing *ast.FuncDecl,
	params map[types.Object]int, provenanced map[string]bool,
	noteAlloc func(ast.Node, string), seenCall map[string]bool) {

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				noteAlloc(call, "make")
			case "new":
				noteAlloc(call, "new")
			case "append":
				if len(call.Args) > 0 {
					dst := ast.Unparen(call.Args[0])
					if _, ok := dst.(*ast.SliceExpr); !ok && !provenanced[types.ExprString(dst)] {
						noteAlloc(call, "append without capacity provenance")
					}
				}
			}
			return
		}
	}

	callee := funcObj(pass.TypesInfo, call)
	if callee == nil {
		return
	}
	key := funcKey(callee)

	// atomic.Pointer and sync.WaitGroup operations are structural facts,
	// not call edges.
	if callee.Pkg() != nil {
		switch callee.Pkg().Path() {
		case "sync/atomic":
			if recvTypeName(callee) == "Pointer" {
				if fk := atomicFieldKey(pass, call); fk != "" {
					switch callee.Name() {
					case "Load":
						f.PtrLoads = mergeStrings(f.PtrLoads, []string{fk})
					case "Store":
						f.PtrStores = mergeStrings(f.PtrStores, []string{fk})
					case "Swap":
						f.PtrSwaps = mergeStrings(f.PtrSwaps, []string{fk})
					case "CompareAndSwap":
						f.PtrCAS = mergeStrings(f.PtrCAS, []string{fk})
					}
				}
				return
			}
		case "sync":
			if recvTypeName(callee) == "WaitGroup" {
				if fk := syncFieldKey(pass, call); fk != "" {
					switch callee.Name() {
					case "Done":
						f.WGDone = mergeStrings(f.WGDone, []string{fk})
					case "Wait":
						f.WGWait = mergeStrings(f.WGWait, []string{fk})
					}
				}
				return
			}
		}
	}

	if ext, ok := externalFacts[key]; ok && ext.Allocates {
		noteAlloc(call, ext.AllocDesc)
	}
	if !seenCall[key] {
		seenCall[key] = true
		f.Calls = append(f.Calls, key)
	}

	// Parameter forwarding: an argument that is a func-typed parameter of
	// the enclosing function.
	for ai, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil {
			continue
		}
		pi, isParam := params[obj]
		if !isParam {
			continue
		}
		if _, isSig := obj.Type().Underlying().(*types.Signature); !isSig {
			continue
		}
		f.ParamForwards = append(f.ParamForwards, ParamForward{Callee: key, ArgIndex: ai, ParamIndex: pi})
	}
	_ = enclosing
}

// recvTypeName returns the receiver's named-type name of a method, or "".
func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if ptr, ok := rt.(*types.Pointer); ok {
		rt = ptr.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// atomicFieldKey resolves the storage a method like s.snap.Load() operates
// on to a stable key: "pkg/path.Type.field" for struct fields,
// "pkg/path.var" for package-level vars, "" otherwise (locals are
// intra-function and keyed by object identity in the analyzers).
func atomicFieldKey(pass *Pass, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return storageKey(pass, sel.X)
}

// syncFieldKey is atomicFieldKey for WaitGroup methods.
func syncFieldKey(pass *Pass, call *ast.CallExpr) string {
	return atomicFieldKey(pass, call)
}

// storageKey names the storage an expression denotes, for cross-function
// matching. Fields are keyed by their declaring struct; package vars by
// path; anything else (locals, map/slice elements) returns "".
func storageKey(pass *Pass, expr ast.Expr) string {
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		fieldObj, ok := pass.TypesInfo.Uses[e.Sel].(*types.Var)
		if !ok || !fieldObj.IsField() {
			return ""
		}
		recv := pass.TypesInfo.TypeOf(e.X)
		if recv == nil {
			return ""
		}
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		named, ok := recv.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return ""
		}
		return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fieldObj.Name()
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			return ""
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// paramObjects maps a function's parameter objects to their indices.
func paramObjects(pass *Pass, fn *ast.FuncDecl) map[types.Object]int {
	out := map[types.Object]int{}
	if fn.Type.Params == nil {
		return out
	}
	i := 0
	for _, field := range fn.Type.Params.List {
		if len(field.Names) == 0 {
			i++
			continue
		}
		for _, name := range field.Names {
			if obj := pass.TypesInfo.Defs[name]; obj != nil {
				out[obj] = i
			}
			i++
		}
	}
	return out
}

// trimPath shortens an absolute filename to its base for compact
// cross-file diagnostics (the full position is on the diagnostic itself).
func trimPath(filename string) string {
	if i := strings.LastIndex(filename, "/"); i >= 0 {
		return filename[i+1:]
	}
	return filename
}

// mergeStrings unions b into a, keeping a sorted and deduplicated.
func mergeStrings(a, b []string) []string {
	if len(b) == 0 {
		return a
	}
	out := append(append([]string(nil), a...), b...)
	sort.Strings(out)
	return dedupSorted(out)
}

func dedupSorted(xs []string) []string {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// mergeInts unions b into a, sorted and deduplicated.
func mergeInts(a, b []int) []int {
	out := append(append([]int(nil), a...), b...)
	sort.Ints(out)
	dst := out[:0]
	for i, x := range out {
		if i == 0 || out[i-1] != x {
			dst = append(dst, x)
		}
	}
	return dst
}
