package lint

import "testing"

func TestTimerLeak(t *testing.T) {
	runAnalysisTest(t, TimerLeakAnalyzer, "bolt/internal/serve", "timerleak")
}

// TestTimerLeakGoroutinesGatedToDeterministicPkgs pins that the goroutine
// half of the analyzer stays quiet outside deterministic packages (the
// timer half runs everywhere): the fixture's two orphaned goroutines are
// its only go statements, so under a non-deterministic path only the three
// timer diagnostics remain.
func TestTimerLeakGoroutinesGatedToDeterministicPkgs(t *testing.T) {
	diags, _ := analyzeTestdata(t, TimerLeakAnalyzer, "bolt/cmd/boltexp", "timerleak")
	for _, d := range diags {
		if d.Analyzer != TimerLeakAnalyzer.Name {
			continue
		}
		if got := d.Message; len(got) >= 9 && got[:9] == "goroutine" {
			t.Errorf("goroutine-join diagnostic outside a deterministic package: %s", d)
		}
	}
	if len(diags) != 3 {
		t.Errorf("want exactly the 3 timer diagnostics outside deterministic packages, got %d:", len(diags))
		for _, d := range diags {
			t.Logf("  %s", d)
		}
	}
}
