package lint

// All returns every boltlint analyzer in stable order: the five
// intraprocedural analyzers from the first lint PR, then the four
// summary-driven interprocedural ones.
func All() []*Analyzer {
	return []*Analyzer{
		DetrandAnalyzer,
		MaporderAnalyzer,
		HotallocAnalyzer,
		SnapshotAnalyzer,
		RngstreamAnalyzer,
		HotcallAnalyzer,
		RCUDisciplineAnalyzer,
		BarrierMergeAnalyzer,
		TimerLeakAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
