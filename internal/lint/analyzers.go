package lint

// All returns every boltlint analyzer in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		DetrandAnalyzer,
		MaporderAnalyzer,
		HotallocAnalyzer,
		SnapshotAnalyzer,
		RngstreamAnalyzer,
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
