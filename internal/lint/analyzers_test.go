package lint

// TestAnalyzersRegistered guards the wiring: every analyzer is registered
// in All() (which cmd/boltlint consumes verbatim), resolvable by name,
// documented with a Doc string, and mentioned in both DESIGN.md's
// determinism-contract section and the README's lint section — so adding
// an analyzer without documenting it fails the build.

import (
	"os"
	"strings"
	"testing"
)

func TestAnalyzersRegistered(t *testing.T) {
	wantNames := []string{
		"detrand",
		"maporder",
		"hotalloc",
		"snapshotdiscipline",
		"rngstream",
		"hotcall",
		"rcudiscipline",
		"barriermerge",
		"timerleak",
	}
	all := All()
	if len(all) != len(wantNames) {
		t.Fatalf("All() has %d analyzers, want %d", len(all), len(wantNames))
	}
	for i, a := range all {
		if a.Name != wantNames[i] {
			t.Errorf("All()[%d] = %q, want %q", i, a.Name, wantNames[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
		if ByName(a.Name) != a {
			t.Errorf("ByName(%q) does not resolve to the registered analyzer", a.Name)
		}
	}

	design, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatalf("reading DESIGN.md: %v", err)
	}
	readme, err := os.ReadFile("../../README.md")
	if err != nil {
		t.Fatalf("reading README.md: %v", err)
	}
	for _, a := range all {
		if !strings.Contains(string(design), a.Name) {
			t.Errorf("analyzer %s is not documented in DESIGN.md", a.Name)
		}
		if !strings.Contains(string(readme), a.Name) {
			t.Errorf("analyzer %s is not documented in README.md", a.Name)
		}
	}

	// cmd/boltlint consumes the registry as-is; pin that it has not grown a
	// private analyzer list that could drift from All().
	cli, err := os.ReadFile("../../cmd/boltlint/main.go")
	if err != nil {
		t.Fatalf("reading cmd/boltlint/main.go: %v", err)
	}
	if !strings.Contains(string(cli), "lint.All()") {
		t.Error("cmd/boltlint no longer consumes lint.All(); the registration guard is void")
	}
}
