package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
)

// Per-package summary caching. The loader already reuses the compiler's
// export data instead of re-type-checking dependencies; the summary layer
// mirrors that shape one level up: the local FuncFacts of a package are a
// pure function of its sources and its dependencies' summaries, so they are
// serialized to disk keyed by a content hash chained through the import
// graph. A warm run skips fact extraction entirely; correctness never
// depends on the cache (misses and IO failures fall back to extraction).
//
// Only local facts are cached. The transitive closure depends on the whole
// set of packages in the run (interface implementations can come from
// anywhere), so it is recomputed fresh each BuildSummaries.

// summaryCacheDir is where per-package fact files live. Empty disables
// caching (tests use this to pin determinism without disk state).
var summaryCacheDir = defaultSummaryCacheDir()

func defaultSummaryCacheDir() string {
	base, err := os.UserCacheDir()
	if err != nil {
		return ""
	}
	return filepath.Join(base, "boltlint", "summary")
}

// SetSummaryCacheDir overrides the summary cache location. Empty disables
// caching. Returns the previous value so tests can restore it.
func SetSummaryCacheDir(dir string) string {
	prev := summaryCacheDir
	summaryCacheDir = dir
	return prev
}

// summaryCacheKey hashes everything the local facts of pkg depend on: the
// extractor version, the toolchain, the package path, every source file's
// name and content (sorted), and — chained — the cache keys of its
// dependencies among the analyzed packages (depHashes is populated in
// sorted-path order by BuildSummaries, so the chaining is deterministic).
func summaryCacheKey(pkg *Package, depHashes map[string]string) string {
	h := sha256.New()
	fmt.Fprintf(h, "v%d\n%s\n%s\n", summaryVersion, runtime.Version(), pkg.PkgPath)

	names := make([]string, 0, len(pkg.Sources))
	for name := range pkg.Sources {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(h, "%s\n%d\n", filepath.Base(name), len(pkg.Sources[name]))
		h.Write(pkg.Sources[name])
	}

	imports := pkg.Types.Imports()
	paths := make([]string, 0, len(imports))
	for _, imp := range imports {
		paths = append(paths, imp.Path())
	}
	sort.Strings(paths)
	for _, p := range paths {
		if dh, ok := depHashes[p]; ok {
			fmt.Fprintf(h, "dep %s %s\n", p, dh)
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// loadCachedSummary reads the facts stored under key, if any.
func loadCachedSummary(key string) (map[string]*FuncFacts, bool) {
	if summaryCacheDir == "" {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(summaryCacheDir, key+".json"))
	if err != nil {
		return nil, false
	}
	var facts map[string]*FuncFacts
	if err := json.Unmarshal(data, &facts); err != nil {
		return nil, false
	}
	return facts, true
}

// storeCachedSummary writes facts under key. Failures are silent: the cache
// is an accelerator, never a correctness dependency.
func storeCachedSummary(key string, facts map[string]*FuncFacts) {
	if summaryCacheDir == "" {
		return
	}
	data, err := json.Marshal(facts)
	if err != nil {
		return
	}
	if err := os.MkdirAll(summaryCacheDir, 0o755); err != nil {
		return
	}
	tmp := filepath.Join(summaryCacheDir, key+".tmp")
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, filepath.Join(summaryCacheDir, key+".json"))
}
