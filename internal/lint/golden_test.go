package lint

// TestGoldenDiagnosticInventory runs the FULL analyzer set over every
// single-package fixture and compares the complete diagnostic list against
// testdata/diagnostics.golden. The per-analyzer tests check their own
// fixture with their own analyzer; this inventory additionally pins that
// no analyzer bleeds unexpected diagnostics into another's fixture, and
// gives CI's lint-self job one exact answer to assert. Regenerate with
//
//	go test ./internal/lint -run TestGoldenDiagnosticInventory -update

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/diagnostics.golden")

// goldenFixtures maps each fixture directory to the package path it is
// checked under (package-gated analyzers key on the path).
var goldenFixtures = []struct{ pkgPath, subdir string }{
	{"bolt/internal/exper", "barriermerge"},
	{"bolt/internal/sim", "detrand"},
	{"bolt/internal/mining", "hotalloc"},
	{"bolt/internal/hotcall", "hotcall"},
	{"bolt/internal/exper", "maporder"},
	{"bolt/internal/exper", "nolintreason"},
	{"bolt/internal/rcu", "rcu"},
	{"bolt/internal/exper", "rngstream"},
	{"bolt/internal/attack", "snapshot"},
	{"bolt/internal/serve", "timerleak"},
	{"bolt/internal/sim", "unusednolint"},
}

func TestGoldenDiagnosticInventory(t *testing.T) {
	var b strings.Builder
	for _, f := range goldenFixtures {
		pkg := loadFixture(t, f.pkgPath, f.subdir)
		for _, d := range Run([]*Package{pkg}, All()) {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
	}
	got := b.String()

	path := filepath.Join("testdata", "diagnostics.golden")
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("diagnostic inventory drifted from testdata/diagnostics.golden (regenerate with -update if intended)\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
