package lint

import (
	"go/ast"
	"go/types"
)

// RCUDisciplineAnalyzer pins the serving plane's RCU snapshot contract
// (DESIGN.md "Serving plane"): an atomic.Pointer snapshot field is loaded
// exactly once per batch scope — one Load pins one generation, and every
// read in the scope answers from that pin. Concretely, per function body:
//
//   - a second Load of the same field is a re-load: the two pointers may
//     straddle a Swap, splitting one batch across two detector generations;
//   - a Load inside a loop re-pins every iteration, same hazard;
//   - calling a function that itself (transitively) Loads the field from a
//     scope that already holds a pin is the interprocedural form of the
//     same bug — the callee may see a newer generation than the caller;
//   - writers must go through the CAS retry idiom (Load + CompareAndSwap,
//     as in Server.Swap, which also advances the version): a raw Store or
//     atomic Swap can lose a concurrent writer's version bump. Functions
//     that CompareAndSwap the field are recognised as writers and exempt
//     from the re-load rules. Stores in constructors — where the receiver
//     is a local built in the same function and not yet shared — are the
//     one legitimate Store and are exempt;
//   - a loaded snapshot pointer assigned into a field or package variable
//     is retained across the batch scope that pinned it; later readers
//     would see an arbitrarily stale generation without any Load at all.
//
// The field-identity granularity comes from the summary layer's storage
// keys ("pkg.Type.field"), so the discipline holds across methods and
// packages, not just within one body.
var RCUDisciplineAnalyzer = &Analyzer{
	Name: "rcudiscipline",
	Doc:  "enforce load-once-per-scope and CAS-only-writes on atomic.Pointer snapshot fields",
	Run:  runRCUDiscipline,
}

// atomicPtrCall matches a call to an atomic.Pointer method and returns the
// method name and the storage key of the receiver ("" for locals).
func atomicPtrCall(pass *Pass, call *ast.CallExpr) (method, fieldKey string, ok bool) {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || recvTypeName(fn) != "Pointer" {
		return "", "", false
	}
	return fn.Name(), atomicFieldKey(pass, call), true
}

func runRCUDiscipline(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkRCUFunc(pass, fn)
		}
	}
}

func checkRCUFunc(pass *Pass, fn *ast.FuncDecl) {
	// Pass 1: classify every atomic.Pointer operation in the body.
	type ptrOp struct {
		call   *ast.CallExpr
		method string
		key    string
		inLoop bool
	}
	var ops []ptrOp
	casKeys := map[string]bool{}
	loopDepth := 0
	var walk func(n ast.Node)
	walk = func(root ast.Node) {
		if root == nil {
			return
		}
		ast.Inspect(root, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ForStmt:
				walk(node.Init) // runs once, outside the per-iteration scope
				loopDepth++
				walk(node.Cond)
				walk(node.Post)
				walk(node.Body)
				loopDepth--
				return false
			case *ast.RangeStmt:
				walk(node.X) // evaluated once
				loopDepth++
				walk(node.Body)
				loopDepth--
				return false
			case *ast.CallExpr:
				if m, key, ok := atomicPtrCall(pass, node); ok && key != "" {
					ops = append(ops, ptrOp{call: node, method: m, key: key, inLoop: loopDepth > 0})
					if m == "CompareAndSwap" {
						casKeys[key] = true
					}
				}
			}
			return true
		})
	}
	walk(fn.Body)

	// Writers: Store and raw Swap must be the CAS idiom instead — except in
	// constructors, where the receiver is still function-local.
	for _, op := range ops {
		switch op.method {
		case "Store":
			if !constructorLocalRecv(pass, fn, op.call) {
				pass.Reportf(op.call.Pos(),
					"atomic.Pointer %s written with Store; writers must use the Load+CompareAndSwap retry idiom so concurrent swaps cannot lose a generation", shortFieldKey(op.key))
			}
		case "Swap":
			pass.Reportf(op.call.Pos(),
				"atomic.Pointer %s written with Swap; writers must use the Load+CompareAndSwap retry idiom so concurrent swaps cannot lose a generation", shortFieldKey(op.key))
		}
	}

	// Readers: at most one Load per key per scope, none in loops — unless
	// this function is the key's writer (the CAS retry loop re-loads by
	// design).
	loads := map[string]int{}
	for _, op := range ops {
		if op.method != "Load" || casKeys[op.key] {
			continue
		}
		loads[op.key]++
		if loads[op.key] > 1 {
			pass.Reportf(op.call.Pos(),
				"atomic.Pointer %s loaded again in the same scope; load once per batch and answer everything from that snapshot (a re-load may straddle a Swap)", shortFieldKey(op.key))
			continue
		}
		if op.inLoop {
			pass.Reportf(op.call.Pos(),
				"atomic.Pointer %s loaded inside a loop; hoist the Load so the whole scope answers from one snapshot generation", shortFieldKey(op.key))
		}
	}

	// Retention: a loaded pointer stored into a field or package variable
	// outlives the scope that pinned it.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, rhs := range st.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok {
				continue
			}
			m, key, ok := atomicPtrCall(pass, call)
			if !ok || m != "Load" || key == "" {
				continue
			}
			if dst := storageKey(pass, st.Lhs[i]); dst != "" {
				pass.Reportf(st.Lhs[i].Pos(),
					"snapshot loaded from atomic.Pointer %s retained in %s beyond the batch scope; pass the pointer down instead of parking it", shortFieldKey(key), shortFieldKey(dst))
			}
		}
		return true
	})

	// Interprocedural: a scope that pinned a snapshot must not call into a
	// function that re-loads the same field.
	if pass.Summaries == nil {
		return
	}
	for key, n := range loads {
		if n == 0 {
			continue
		}
		k := key
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := funcObj(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			ck := funcKey(callee)
			cf := pass.Summaries.Facts(ck)
			if cf == nil {
				return true
			}
			for _, ptrCAS := range cf.PtrCAS {
				if ptrCAS == k {
					return true // calling the writer (e.g. Swap) is not a re-read
				}
			}
			for _, loaded := range pass.Summaries.TransitivePtrLoads(ck) {
				if loaded == k {
					pass.Reportf(call.Pos(),
						"%s re-loads atomic.Pointer %s inside a scope that already pinned it; pass the loaded snapshot down instead", shortFuncName(ck), shortFieldKey(k))
					return true
				}
			}
			return true
		})
	}
}

// constructorLocalRecv reports whether the receiver chain of an atomic call
// like s.snap.Store(...) roots in a variable declared inside fn's body —
// the object under construction, not yet visible to other goroutines.
func constructorLocalRecv(pass *Pass, fn *ast.FuncDecl, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	expr := sel.X
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.Ident:
			obj := pass.TypesInfo.Uses[e]
			if obj == nil {
				obj = pass.TypesInfo.Defs[e]
			}
			if v, ok := obj.(*types.Var); ok && !v.IsField() {
				return v.Pos() >= fn.Body.Pos() && v.Pos() <= fn.Body.End()
			}
			return false
		default:
			return false
		}
	}
}

// shortFieldKey compresses a storage key for diagnostics:
// "bolt/internal/serve.Server.snap" → "serve.Server.snap".
func shortFieldKey(key string) string {
	return shortFuncName(key)
}
