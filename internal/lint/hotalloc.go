package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotallocAnalyzer is the static complement to the allocation-budget tests
// in internal/mining/alloc_test.go: inside a function annotated
// //bolt:hotpath it flags the constructs that reach the allocator —
// escaping composite literals, unguarded make/new, appends without capacity
// provenance, escaping closures, interface boxing of non-pointer values,
// and calls to the repo's known allocating convenience helpers (for which
// an in-package allocation-free form exists).
//
// The checks are necessarily approximations of escape analysis, so the
// analyzer errs on the side of reporting and relies on //bolt:nolint with a
// reason for the deliberate allocations (e.g. a documented per-call Result).
// Two idioms are recognised as allocation-free and accepted without
// annotation: make/append under a lazy-init or capacity guard
// (`if buf == nil`, `if cap(buf) < n`), and append to a slice reset with
// `buf = buf[:0]` earlier in the function.
var HotallocAnalyzer = &Analyzer{
	Name: "hotalloc",
	Doc:  "flag allocation constructs in //bolt:hotpath functions",
	Run:  runHotalloc,
}

// allocatingHelpers are repo functions that allocate on every call and have
// a documented in-package alternative for hot paths.
var allocatingHelpers = map[string]string{
	"bolt/internal/sim.AllResources":            "loop over Resource(0)..NumResources instead",
	"bolt/internal/sim.CoreResources":           "loop over the resource indices directly",
	"bolt/internal/sim.UncoreResources":         "loop over the resource indices directly",
	"(*bolt/internal/sim.Server).VMs":           "iterate s.vms directly in package sim",
	"(*bolt/internal/sim.Server).CoreNeighbors": "iterate s.vms with SharesCore",
	"(*bolt/internal/sim.Server).VMsOnCore":     "iterate s.vms with occupiesCore",
	"(*bolt/internal/sim.VM).Slots":             "iterate vm.slots directly in package sim",
	"(*bolt/internal/sim.VM).Cores":             "use vm.coreList / vm.coreMask in package sim",
	"(*bolt/internal/stats.RNG).Perm":           "use RNG.PermInto with a reused buffer",
}

func runHotalloc(pass *Pass) {
	for _, fn := range hotpathFuncs(pass) {
		if fn.Body == nil {
			continue
		}
		checkHotFunc(pass, fn)
	}
}

// checkHotFunc inspects one annotated function body.
func checkHotFunc(pass *Pass, fn *ast.FuncDecl) {
	parent := parentMap(fn.Body)
	guarded := guardedRanges(fn.Body)
	provenanced := capacityProvenanced(pass, fn.Body)
	closures := localClosures(pass, fn.Body)

	inGuard := func(n ast.Node) bool {
		for _, r := range guarded {
			if n.Pos() >= r[0] && n.End() <= r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CompositeLit:
			checkCompositeLit(pass, node, parent, inGuard)
		case *ast.CallExpr:
			checkHotCall(pass, node, provenanced, inGuard)
		case *ast.FuncLit:
			checkFuncLit(pass, node, parent, closures)
		case *ast.AssignStmt:
			checkBoxingAssign(pass, node)
		}
		return true
	})

	// Any use of a local closure other than calling it means the closure
	// escapes (and therefore allocates its context).
	for obj, lit := range closures {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || pass.TypesInfo.Uses[id] != obj {
				return true
			}
			if call, ok := parent[id].(*ast.CallExpr); ok && call.Fun == id {
				return true
			}
			pass.Reportf(id.Pos(),
				"closure %s escapes its defining hot-path function; its captured variables move to the heap", obj.Name())
			_ = lit
			return true
		})
	}
}

// checkCompositeLit flags composite literals that reach the allocator:
// slice and map literals always, struct/array literals when their address
// is taken.
func checkCompositeLit(pass *Pass, lit *ast.CompositeLit, parent map[ast.Node]ast.Node, inGuard func(ast.Node) bool) {
	if inGuard(lit) {
		return
	}
	t := pass.TypesInfo.TypeOf(lit)
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map:
		pass.Reportf(lit.Pos(), "composite %s literal allocates on a hot path", kindName(t))
		return
	}
	if u, ok := parent[lit].(*ast.UnaryExpr); ok && u.Op == token.AND {
		pass.Reportf(lit.Pos(), "&%s composite literal escapes to the heap on a hot path", types.TypeString(t, types.RelativeTo(pass.Pkg)))
	}
}

// checkHotCall flags allocating calls: make/new, unprovenanced append,
// boxing call arguments, and the repo's known allocating helpers.
func checkHotCall(pass *Pass, call *ast.CallExpr, provenanced map[string]bool, inGuard func(ast.Node) bool) {
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new":
				if !inGuard(call) {
					pass.Reportf(call.Pos(),
						"%s allocates on a hot path; reuse a buffer or guard it as a lazy init (if buf == nil / if cap(buf) < n)", b.Name())
				}
			case "append":
				checkHotAppend(pass, call, provenanced, inGuard)
			case "panic":
				for _, arg := range call.Args {
					checkBoxedValue(pass, arg, types.NewInterfaceType(nil, nil), "panic argument")
				}
			}
			return
		}
	}

	// Conversions to interface types.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			checkBoxedValue(pass, call.Args[0], tv.Type.Underlying().(*types.Interface), "conversion")
		}
		return
	}

	// Known allocating helpers.
	if fn := funcObj(pass.TypesInfo, call); fn != nil {
		if hint, bad := allocatingHelpers[fn.FullName()]; bad && !inGuard(call) {
			pass.Reportf(call.Pos(), "%s allocates its result on every call; %s", fn.FullName(), hint)
		}
	}

	// Boxing of call arguments into interface parameters.
	sig, ok := typeAsSignature(pass.TypesInfo.TypeOf(call.Fun))
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if iface, isIface := pt.Underlying().(*types.Interface); isIface {
			checkBoxedValue(pass, arg, iface, "argument")
		}
	}
}

// checkHotAppend accepts append whose destination has capacity provenance
// in this function (reset via buf[:0], sized with make, or a slice
// expression inline); anything else is a potential grow-and-copy.
func checkHotAppend(pass *Pass, call *ast.CallExpr, provenanced map[string]bool, inGuard func(ast.Node) bool) {
	if len(call.Args) == 0 || inGuard(call) {
		return
	}
	dst := ast.Unparen(call.Args[0])
	if _, ok := dst.(*ast.SliceExpr); ok {
		return // append(buf[:0], ...) — capacity reused in place
	}
	if provenanced[types.ExprString(dst)] {
		return
	}
	pass.Reportf(call.Pos(),
		"append without capacity provenance on a hot path; pre-size the buffer (make with capacity, or reset with buf = buf[:0])")
}

// checkBoxingAssign flags assignments that box a non-pointer value into an
// interface-typed location.
func checkBoxingAssign(pass *Pass, st *ast.AssignStmt) {
	if len(st.Lhs) != len(st.Rhs) {
		return
	}
	for i, lhs := range st.Lhs {
		lt := pass.TypesInfo.TypeOf(lhs)
		if lt == nil {
			continue
		}
		if iface, ok := lt.Underlying().(*types.Interface); ok {
			checkBoxedValue(pass, st.Rhs[i], iface, "assignment")
		}
	}
}

// checkBoxedValue reports arg when storing it in an interface allocates:
// concrete, not pointer-shaped, and not a compile-time constant (constant
// data is materialised in static memory by the compiler).
func checkBoxedValue(pass *Pass, arg ast.Expr, _ *types.Interface, what string) {
	tv, ok := pass.TypesInfo.Types[arg]
	if !ok || tv.Value != nil {
		return // constants never box at run time
	}
	t := tv.Type
	if t == nil {
		return
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return // interface-to-interface, no box
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped, stored directly in the interface word
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Info()&types.IsUntyped != 0 {
			return
		}
	}
	pass.Reportf(arg.Pos(),
		"interface %s boxes %s on a hot path; keep the value concrete or pass a pointer",
		what, types.TypeString(t, types.RelativeTo(pass.Pkg)))
}

// typeAsSignature unwraps a call target's type to its signature.
func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// kindName names a type's allocation-relevant kind for diagnostics.
func kindName(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	default:
		return "value"
	}
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return false
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// guardedRanges returns the position ranges of if-bodies whose condition is
// a lazy-init or capacity check (mentions nil, cap, or len) — allocations
// inside them run once or only on growth, not per call.
func guardedRanges(body *ast.BlockStmt) [][2]token.Pos {
	var out [][2]token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		ifst, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		guard := false
		ast.Inspect(ifst.Cond, func(c ast.Node) bool {
			if id, ok := c.(*ast.Ident); ok {
				switch id.Name {
				case "nil", "cap", "len":
					guard = true
				}
			}
			return !guard
		})
		if guard {
			out = append(out, [2]token.Pos{ifst.Body.Pos(), ifst.Body.End()})
		}
		return true
	})
	return out
}

// capacityProvenanced collects expressions (rendered as source strings)
// that are re-sliced or sized with make anywhere in the function, granting
// capacity provenance to appends targeting them.
func capacityProvenanced(pass *Pass, body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, rhs := range st.Rhs {
			switch r := ast.Unparen(rhs).(type) {
			case *ast.SliceExpr:
				out[types.ExprString(ast.Unparen(st.Lhs[i]))] = true
			case *ast.CallExpr:
				if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
					if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
						out[types.ExprString(ast.Unparen(st.Lhs[i]))] = true
					}
				}
			}
		}
		return true
	})
	return out
}

// localClosures finds `name := func(...) {...}` closures assigned to plain
// local variables; calling such a closure is allocation-free as long as it
// never escapes.
func localClosures(pass *Pass, body *ast.BlockStmt) map[types.Object]*ast.FuncLit {
	out := map[types.Object]*ast.FuncLit{}
	ast.Inspect(body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok || len(st.Lhs) != len(st.Rhs) {
			return true
		}
		for i, rhs := range st.Rhs {
			lit, ok := ast.Unparen(rhs).(*ast.FuncLit)
			if !ok {
				continue
			}
			id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident)
			if !ok {
				continue
			}
			obj := pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = pass.TypesInfo.Uses[id]
			}
			if obj != nil {
				out[obj] = lit
			}
		}
		return true
	})
	return out
}

// checkFuncLit flags function literals that are neither immediately
// invoked nor bound to a call-only local.
func checkFuncLit(pass *Pass, lit *ast.FuncLit, parent map[ast.Node]ast.Node, closures map[types.Object]*ast.FuncLit) {
	if call, ok := parent[lit].(*ast.CallExpr); ok && call.Fun == lit {
		return // immediately invoked, inlined by the compiler
	}
	for _, l := range closures {
		if l == lit {
			return // judged via its variable's uses
		}
	}
	pass.Reportf(lit.Pos(),
		"function literal on a hot path allocates its closure; hoist it or pass state explicitly")
}
