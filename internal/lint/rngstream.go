package lint

import (
	"go/ast"
)

// RngstreamAnalyzer forbids constructing a stats.RNG inside a loop. Every
// golden test in the repository pins the exact sequence of draws from a
// seed; a NewRNG(derivedSeed) in a loop body mints a fresh stream per
// iteration, which both changes the pinned sequences (seed arithmetic
// replaces stream consumption) and reintroduces the seed-correlation
// problems Split exists to avoid. Derive one generator before the loop, or
// split a parent stream with rng.Split() — Split advances the parent, so
// the draw is accounted for in the golden sequence.
var RngstreamAnalyzer = &Analyzer{
	Name: "rngstream",
	Doc:  "forbid stats.NewRNG inside loops (per-iteration stream splitting)",
	Run:  runRngstream,
}

const statsNewRNG = "bolt/internal/stats.NewRNG"

func runRngstream(pass *Pass) {
	for _, f := range pass.Files {
		var loopDepth int
		var walk func(n ast.Node) bool
		walk = func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.ForStmt:
				if node.Init != nil {
					ast.Inspect(node.Init, walk)
				}
				if node.Cond != nil {
					ast.Inspect(node.Cond, walk)
				}
				if node.Post != nil {
					ast.Inspect(node.Post, walk)
				}
				loopDepth++
				ast.Inspect(node.Body, walk)
				loopDepth--
				return false
			case *ast.RangeStmt:
				ast.Inspect(node.X, walk)
				loopDepth++
				ast.Inspect(node.Body, walk)
				loopDepth--
				return false
			case *ast.CallExpr:
				if loopDepth > 0 {
					if fn := funcObj(pass.TypesInfo, node); fn != nil && fn.FullName() == statsNewRNG {
						pass.Reportf(node.Pos(),
							"stats.NewRNG inside a loop mints a new stream per iteration and changes the pinned golden RNG sequences; construct the generator outside the loop or use rng.Split()")
					}
				}
			}
			return true
		}
		ast.Inspect(f, walk)
	}
}
