package lint

import "testing"

func TestBarrierMerge(t *testing.T) {
	runAnalysisTest(t, BarrierMergeAnalyzer, "bolt/internal/exper", "barriermerge")
}
