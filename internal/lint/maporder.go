package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MaporderAnalyzer flags `for range` over a map whose body does
// order-sensitive work. Go randomises map iteration order per run, so a
// float accumulation, a slice append, or an output write inside the loop
// makes the result depend on the iteration order — the exact class of bug
// that silently breaks the byte-identical seed-42 suite.
//
// Order-insensitive bodies are accepted: integer/boolean accumulation
// (exact associative arithmetic), keyed writes whose index involves the
// iteration variables (each key is visited once, so the final state is
// order-independent), min/max tracking, and deletes. An append whose slice
// is sorted immediately after the loop is also accepted — the
// collect-then-sort idiom used throughout internal/exper.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc:  "flag order-sensitive work inside map iteration",
	Run:  runMaporder,
}

// orderSensitiveSinks are method names that append to their receiver's
// state in call order (tables, figures, writers); calling one inside a map
// iteration bakes the random order into output. Keyed setters (Set) are
// deliberately absent: writing distinct cells is order-independent.
var orderSensitiveSinks = map[string]bool{
	"Add": true, "AddRow": true, "AddSeries": true, "Append": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMaporder(pass *Pass) {
	for _, f := range pass.Files {
		// Map each range statement to its enclosing block so the
		// followed-by-sort exemption can inspect the next statements.
		following := map[*ast.RangeStmt][]ast.Stmt{}
		ast.Inspect(f, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			for i, st := range block.List {
				if rs, ok := st.(*ast.RangeStmt); ok {
					following[rs] = block.List[i+1:]
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[rs.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, following[rs])
			return true
		})
	}
}

// checkMapRange inspects one map-range body for order-sensitive effects.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, after []ast.Stmt) {
	loopVars := rangeVarObjects(pass, rs)

	var appendFound bool
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.RangeStmt:
			// A nested map range is flagged on its own visit; its body's
			// effects belong to it.
			if st != rs {
				if tv, ok := pass.TypesInfo.Types[st.X]; ok {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						return false
					}
				}
			}
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, st, loopVars, &appendFound)
		case *ast.CallExpr:
			checkMapRangeCall(pass, rs, st)
		}
		return true
	})

	if appendFound && !followedBySort(pass, after) {
		pass.Reportf(rs.Pos(),
			"map iteration appends to a slice that is not sorted immediately after the loop; the element order changes run to run")
	}
}

// checkMapRangeAssign flags order-sensitive assignments in a map-range body.
func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, st *ast.AssignStmt, loopVars map[types.Object]bool, appendFound *bool) {
	for i, lhs := range st.Lhs {
		// Keyed writes indexed by the iteration variables touch each key
		// once; the final state is order-independent.
		if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && usesAny(pass, idx.Index, loopVars) {
			continue
		}
		lhsType := pass.TypesInfo.TypeOf(lhs)
		if lhsType == nil {
			continue
		}
		basic, isBasic := lhsType.Underlying().(*types.Basic)
		orderSensitiveKind := isBasic && basic.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0

		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
			if orderSensitiveKind {
				pass.Reportf(st.Pos(),
					"%s accumulation inside map iteration is order-sensitive (floating-point arithmetic does not associate); iterate sorted keys instead", basic.String())
			}
		case token.ASSIGN, token.DEFINE:
			if i < len(st.Rhs) {
				rhs := st.Rhs[i]
				if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
					if declaredOutside(pass, lhs, rs) {
						*appendFound = true
					}
					continue
				}
				// Self-referencing scalar update, e.g. x = x + v.
				if orderSensitiveKind && st.Tok == token.ASSIGN && mentions(pass, rhs, lhs) {
					pass.Reportf(st.Pos(),
						"%s accumulation inside map iteration is order-sensitive (floating-point arithmetic does not associate); iterate sorted keys instead", basic.String())
				}
			}
		}
	}
}

// checkMapRangeCall flags calls to order-sensitive sinks in a map-range body.
func checkMapRangeCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	fn := funcObj(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if !orderSensitiveSinks[fn.Name()] {
		return
	}
	// Package-level print helpers (fmt.Fprintf) and append-style methods on
	// variables declared outside the loop both serialise the random order.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recv := pass.TypesInfo.TypeOf(sel.X); recv != nil {
			if !declaredOutside(pass, sel.X, rs) {
				return // sink is loop-local; its final state dies with the iteration
			}
		}
	}
	pass.Reportf(call.Pos(),
		"%s inside map iteration emits in random order; collect into a slice and sort before writing", fn.Name())
}

// rangeVarObjects returns the types objects of the range's key/value vars.
func rangeVarObjects(pass *Pass, rs *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// usesAny reports whether expr references any of the given objects.
func usesAny(pass *Pass, expr ast.Expr, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil && objs[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// mentions reports whether rhs references the same object as lhs.
func mentions(pass *Pass, rhs, lhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		obj = pass.TypesInfo.Defs[id]
	}
	if obj == nil {
		return false
	}
	return usesAny(pass, rhs, map[types.Object]bool{obj: true})
}

// declaredOutside reports whether expr's root identifier was declared
// outside the range statement (so mutations survive the loop).
func declaredOutside(pass *Pass, expr ast.Expr, rs *ast.RangeStmt) bool {
	root := rootIdent(expr)
	if root == nil {
		return true // field/index chains on non-ident roots: assume outer
	}
	obj := pass.TypesInfo.Uses[root]
	if obj == nil {
		obj = pass.TypesInfo.Defs[root]
	}
	if obj == nil {
		return true
	}
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// rootIdent walks selector/index chains down to the base identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return false
	}
	b, ok := obj.(*types.Builtin)
	return ok && b.Name() == "append"
}

// followedBySort reports whether one of the next few statements after the
// loop sorts a slice — the collect-then-sort idiom.
func followedBySort(pass *Pass, after []ast.Stmt) bool {
	limit := 3
	if len(after) < limit {
		limit = len(after)
	}
	for _, st := range after[:limit] {
		sorted := false
		ast.Inspect(st, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn := funcObj(pass.TypesInfo, call); fn != nil && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort", "slices":
					sorted = true
				}
			}
			return !sorted
		})
		if sorted {
			return true
		}
	}
	return false
}
