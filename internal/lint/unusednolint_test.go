package lint

import "testing"

// TestUnusedNolint verifies the stale-suppression report: the fixture's
// Fresh function still produces the detrand diagnostic its comment
// excuses, while Stale's comment matches nothing and is reported.
func TestUnusedNolint(t *testing.T) {
	runAnalysisTest(t, DetrandAnalyzer, "bolt/internal/sim", "unusednolint")
}

// TestUnusedNolintNeedsFullRunSet pins the judging precondition: when the
// analyzers a suppression names did not run, staleness cannot be decided
// and nothing is reported — a partial -analyzers run must not flag
// suppressions for analyzers it skipped.
func TestUnusedNolintNeedsFullRunSet(t *testing.T) {
	diags, _ := analyzeTestdata(t, MaporderAnalyzer, "bolt/internal/sim", "unusednolint")
	for _, d := range diags {
		t.Errorf("unexpected diagnostic from a run that skipped detrand: %s", d)
	}
}
