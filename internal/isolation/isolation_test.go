package isolation

import (
	"testing"

	"bolt/internal/sim"
)

func TestPlatformNames(t *testing.T) {
	if Baremetal.String() != "baremetal" || Containers.String() != "containers" || VMs.String() != "VMs" {
		t.Fatal("platform names wrong")
	}
	if Platform(9).String() != "unknown" {
		t.Fatal("unknown platform name wrong")
	}
	if len(Platforms()) != 3 {
		t.Fatal("Platforms should list three settings")
	}
}

func TestBaremetalFullVisibility(t *testing.T) {
	v := Config{Platform: Baremetal}.Visibility()
	for _, r := range sim.AllResources() {
		if v.Get(r) != 1 {
			t.Fatalf("baremetal/none should not attenuate %v", r)
		}
	}
}

func TestPlatformsConstrainMemoryAndCPU(t *testing.T) {
	bare := Config{Platform: Baremetal}.Visibility()
	cont := Config{Platform: Containers}.Visibility()
	vm := Config{Platform: VMs}.Visibility()
	if !(vm.Get(sim.MemCap) < cont.Get(sim.MemCap) && cont.Get(sim.MemCap) < bare.Get(sim.MemCap)) {
		t.Fatal("memory-capacity visibility should drop baremetal→containers→VMs")
	}
	if !(vm.Get(sim.CPU) < cont.Get(sim.CPU) && cont.Get(sim.CPU) < bare.Get(sim.CPU)) {
		t.Fatal("CPU visibility should drop baremetal→containers→VMs")
	}
}

func TestMechanismsTargetTheirResource(t *testing.T) {
	base := Config{Platform: Baremetal}
	cases := []struct {
		cfg Config
		r   sim.Resource
	}{
		{func() Config { c := base; c.NetPartition = true; return c }(), sim.NetBW},
		{func() Config { c := base; c.MemBWPartition = true; return c }(), sim.MemBW},
		{func() Config { c := base; c.CachePartition = true; return c }(), sim.LLC},
	}
	for _, c := range cases {
		v := c.cfg.Visibility()
		if v.Get(c.r) >= 0.5 {
			t.Errorf("%s should strongly attenuate %v, got %v", c.cfg.Name(), c.r, v.Get(c.r))
		}
	}
}

func TestThreadPinningAttenuatesCore(t *testing.T) {
	c := Config{Platform: Baremetal, ThreadPinning: true}
	v := c.Visibility()
	for _, r := range sim.CoreResources() {
		if v.Get(r) >= 1 {
			t.Fatalf("pinning should attenuate core resource %v", r)
		}
	}
	for _, r := range sim.UncoreResources() {
		if v.Get(r) != 1 {
			t.Fatalf("pinning must not touch uncore resource %v", r)
		}
	}
}

func TestCoreIsolationZerosCoreVisibility(t *testing.T) {
	c := Config{Platform: VMs, CoreIsolation: true}
	v := c.Visibility()
	for _, r := range sim.CoreResources() {
		if v.Get(r) != 0 {
			t.Fatalf("core isolation should zero %v visibility", r)
		}
	}
	sc := c.ServerConfig(8, 2)
	if !sc.DedicatedCores {
		t.Fatal("core isolation must flip DedicatedCores")
	}
}

func TestStackIsCumulative(t *testing.T) {
	for _, p := range Platforms() {
		stack := Stack(p)
		if len(stack) != 6 {
			t.Fatalf("stack for %v has %d steps, want 6", p, len(stack))
		}
		// Visibility must be monotonically non-increasing per resource as
		// mechanisms accumulate.
		prev := stack[0].Visibility()
		for i := 1; i < len(stack); i++ {
			cur := stack[i].Visibility()
			for _, r := range sim.AllResources() {
				if cur.Get(r) > prev.Get(r)+1e-12 {
					t.Fatalf("step %d of %v increased visibility of %v", i, p, r)
				}
			}
			prev = cur
		}
		if !stack[5].CoreIsolation || stack[5].Platform != p {
			t.Fatal("final stack step should be full isolation on the same platform")
		}
	}
	if len(StackLabels()) != 6 {
		t.Fatal("StackLabels should have 6 entries")
	}
}

func TestPenalties(t *testing.T) {
	c := Config{Platform: Containers}
	if c.PerfPenalty() != 1 || c.UtilizationPenalty() != 0 {
		t.Fatal("non-core-isolation configs should be penalty-free")
	}
	c.CoreIsolation = true
	if c.PerfPenalty() != 1.34 {
		t.Fatalf("core isolation perf penalty = %v, want 1.34", c.PerfPenalty())
	}
	if c.UtilizationPenalty() != 0.45 {
		t.Fatalf("core isolation utilisation penalty = %v, want 0.45", c.UtilizationPenalty())
	}
}

func TestCoreIsolationOnly(t *testing.T) {
	c := CoreIsolationOnly(Containers)
	if !c.CoreIsolation || c.CachePartition || c.ThreadPinning {
		t.Fatal("CoreIsolationOnly should enable only core isolation")
	}
}

func TestConfigNames(t *testing.T) {
	if got := (Config{Platform: Baremetal}).Name(); got != "baremetal/none" {
		t.Fatalf("Name = %q", got)
	}
	c := Config{Platform: VMs, ThreadPinning: true, NetPartition: true,
		MemBWPartition: true, CachePartition: true}
	if got := c.Name(); got != "VMs/+cache partitioning" {
		t.Fatalf("Name = %q", got)
	}
}

func TestVisibilityAffectsObservation(t *testing.T) {
	cfg := Config{Platform: VMs, CachePartition: true}
	s := sim.NewServer("s0", cfg.ServerConfig(8, 2))
	adv := &sim.VM{ID: "adv", VCPUs: 4, App: fixed{}}
	victim := &sim.VM{ID: "v", VCPUs: 4, App: llcHeavy{}}
	if err := s.Place(adv); err != nil {
		t.Fatal(err)
	}
	if err := s.Place(victim); err != nil {
		t.Fatal(err)
	}
	if got := s.ObservedPressure(adv, sim.LLC, 0); got > 15 {
		t.Fatalf("partitioned LLC leaked %v%% pressure", got)
	}
}

type fixed struct{}

func (fixed) Demand(sim.Tick) sim.Vector { return sim.Vector{} }
func (fixed) Sensitivity() sim.Vector    { return sim.Vector{} }

type llcHeavy struct{}

func (llcHeavy) Demand(sim.Tick) sim.Vector {
	var v sim.Vector
	v.Set(sim.LLC, 80)
	return v
}
func (llcHeavy) Sensitivity() sim.Vector { return sim.Vector{} }
