// Package isolation models the resource-isolation mechanisms evaluated in
// §6 of the paper: the three OS-level settings (baremetal, Linux
// containers, virtual machines) and the five resource-specific techniques
// layered on top (thread pinning, network bandwidth partitioning, memory
// bandwidth isolation, last-level-cache partitioning, and core isolation).
//
// Each mechanism attenuates the contention observable on specific shared
// resources — a partitioned LLC leaks almost nothing about a co-resident's
// cache footprint — which is exactly how the paper measures their value:
// by how far they reduce Bolt's detection accuracy (Fig. 14). Core
// isolation additionally changes placement (no core is ever shared between
// applications) and carries the performance and utilisation costs the
// paper quantifies (34% average slowdown, or a 45% utilisation drop when
// over-provisioning instead).
package isolation

import (
	"strings"

	"bolt/internal/sim"
)

// Platform is the OS-level virtualisation setting.
type Platform int

// The three settings of §6.
const (
	Baremetal Platform = iota
	Containers
	VMs
)

// String returns the display name used in Fig. 14.
func (p Platform) String() string {
	switch p {
	case Baremetal:
		return "baremetal"
	case Containers:
		return "containers"
	case VMs:
		return "VMs"
	}
	return "unknown"
}

// Platforms lists the settings in the paper's order.
func Platforms() []Platform { return []Platform{Baremetal, Containers, VMs} }

// Config is one point in the isolation design space: a platform plus the
// set of enabled mechanisms. Mechanisms are cumulative in Fig. 14 —
// "+Mem BW partitioning" means pinning and network partitioning are on
// too — but each flag here is independent so ablations can isolate one.
type Config struct {
	Platform       Platform
	ThreadPinning  bool
	NetPartition   bool // qdisc/HTB egress bandwidth limits
	MemBWPartition bool // scheduler-enforced aggregate memory bandwidth caps
	CachePartition bool // Intel CAT way-partitioning of the LLC
	CoreIsolation  bool // an application shares cores only with itself
}

// Name renders the configuration the way Fig. 14 labels it.
func (c Config) Name() string {
	var parts []string
	switch {
	case c.CoreIsolation:
		parts = append(parts, "+core isolation")
	case c.CachePartition:
		parts = append(parts, "+cache partitioning")
	case c.MemBWPartition:
		parts = append(parts, "+mem BW partitioning")
	case c.NetPartition:
		parts = append(parts, "+net BW partitioning")
	case c.ThreadPinning:
		parts = append(parts, "thread pinning")
	default:
		parts = append(parts, "none")
	}
	return c.Platform.String() + "/" + strings.Join(parts, "")
}

// Visibility returns the per-resource attenuation of observable contention
// under this configuration, starting from the platform's baseline. 1 means
// contention passes through untouched; 0 means the resource leaks nothing.
func (c Config) Visibility() sim.Vector {
	var v sim.Vector
	for i := range v {
		v[i] = 1
	}
	set := func(r sim.Resource, f float64) {
		v[r] *= f
	}

	switch c.Platform {
	case Containers:
		// cgroups bound memory capacity and smooth CPU contention.
		set(sim.MemCap, 0.5)
		set(sim.CPU, 0.85)
	case VMs:
		// The hypervisor constrains memory capacity harder and adds a
		// scheduling layer over the cores.
		set(sim.MemCap, 0.38)
		set(sim.CPU, 0.75)
		set(sim.L2, 0.9)
	}

	if c.ThreadPinning {
		// Pinning removes context-switch interference, the OS scheduler's
		// contribution to core-resource contention. Hyperthread siblings
		// still contend directly, so much of the signal survives (§6).
		for _, r := range sim.CoreResources() {
			set(r, 0.75)
		}
	}
	if c.NetPartition {
		// HTB enforces egress ceilings; bursts below the ceiling and
		// ingress traffic still leak.
		set(sim.NetBW, 0.35)
	}
	if c.MemBWPartition {
		// Scheduler-enforced aggregate caps are coarse (§6 uses them only
		// to highlight the benefit of true DRAM-bandwidth isolation).
		set(sim.MemBW, 0.45)
	}
	if c.CachePartition {
		// CAT gives each tenant private ways; partition resizing and
		// shared-way slack leak a little.
		set(sim.LLC, 0.15)
		set(sim.L2, 0.85)
	}
	if c.CoreIsolation {
		// No foreign hyperthread ever shares a core; nothing to observe on
		// core-private resources. (Placement also changes; see ServerConfig.)
		for _, r := range sim.CoreResources() {
			set(r, 0)
		}
	}
	return v
}

// ServerConfig returns the sim.ServerConfig realising this isolation
// configuration on a host with the given topology.
func (c Config) ServerConfig(cores, threadsPerCore int) sim.ServerConfig {
	v := c.Visibility()
	return sim.ServerConfig{
		Cores:          cores,
		ThreadsPerCore: threadsPerCore,
		Visibility:     &v,
		DedicatedCores: c.CoreIsolation,
	}
}

// PerfPenalty returns the execution-time dilation applications suffer
// under this configuration. Core isolation forces threads of the same job
// onto shared cores, costing 34% on average (§6); the other mechanisms are
// modelled as performance-neutral, as in the paper's discussion.
func (c Config) PerfPenalty() float64 {
	if c.CoreIsolation {
		return 1.34
	}
	return 1
}

// UtilizationPenalty returns the fraction of cluster capacity sacrificed
// when users over-provision to avoid the core-isolation slowdown instead
// of absorbing it (§6 reports a 45% utilisation drop).
func (c Config) UtilizationPenalty() float64 {
	if c.CoreIsolation {
		return 0.45
	}
	return 0
}

// Stack returns the cumulative mechanism progression of Fig. 14 for one
// platform: none → thread pinning → +net BW → +mem BW → +cache
// partitioning → +core isolation.
func Stack(p Platform) []Config {
	none := Config{Platform: p}
	pin := none
	pin.ThreadPinning = true
	net := pin
	net.NetPartition = true
	mem := net
	mem.MemBWPartition = true
	cache := mem
	cache.CachePartition = true
	core := cache
	core.CoreIsolation = true
	return []Config{none, pin, net, mem, cache, core}
}

// StackLabels names the six steps of the Fig. 14 progression.
func StackLabels() []string {
	return []string{
		"none",
		"thread pinning",
		"+net BW partitioning",
		"+mem BW partitioning",
		"+cache partitioning",
		"+core isolation",
	}
}

// CoreIsolationOnly returns the configuration the paper's closing note
// evaluates: core isolation enforced with no other mechanism (detection
// accuracy stays at 46%, so core isolation alone is insufficient).
func CoreIsolationOnly(p Platform) Config {
	return Config{Platform: p, CoreIsolation: true}
}
