// Package study generates the synthetic counterpart of the paper's EC2
// user study (§4): 20 users submitting 436 jobs of 53 application types
// onto a 200-instance cluster over four hours, with Bolt holding a 4-vCPU
// VM on every instance. The paper's real study is irreproducible (it needs
// EC2 and twenty humans); this generator reproduces its statistical
// structure — the mix of trainable and never-seen application types, the
// per-user type preferences, 1-6 concurrently active jobs per instance,
// and instances that stay idle — so the detection-accuracy experiment of
// Fig. 12 exercises the same code paths.
package study

import (
	"fmt"

	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// AppType is one of the 53 application types of Fig. 11.
type AppType struct {
	ID   int    // 1-53, matching the figure's labels
	Name string // the figure's label text
	// Weight is the relative launch frequency (the figure's occurrence
	// histogram shape: analytics frameworks dominate, utilities are rare).
	Weight float64
	// Trainable marks types whose class exists in Bolt's training set; the
	// rest can at best be characterised, never labelled (§4: email clients
	// and image editors were never seen before).
	Trainable bool
	// Make builds a Spec for one job of this type.
	Make func(rng *stats.RNG, variant int) workload.Spec
}

// custom builds a generator for a type outside the training catalog.
func custom(name string, base sim.Vector, jitter float64) func(*stats.RNG, int) workload.Spec {
	return func(rng *stats.RNG, variant int) workload.Spec {
		var b sim.Vector
		for i := range base {
			b.Set(sim.Resource(i), base[i]+rng.Norm(0, 3))
		}
		var ls sim.Vector
		for i := range ls {
			ls[i] = 100
		}
		return workload.Spec{
			Label:      fmt.Sprintf("%s:j%d", name, variant),
			Class:      name,
			Base:       b,
			LoadScaled: ls,
			Jitter:     jitter,
		}
	}
}

// cv builds a vector in canonical resource order.
func cv(l1i, l1d, l2, llc, memc, membw, cpu, net, diskc, diskbw float64) sim.Vector {
	return sim.FromSlice([]float64{l1i, l1d, l2, llc, memc, membw, cpu, net, diskc, diskbw})
}

// Types returns the 53 application types, IDs matching Fig. 11.
func Types() []AppType {
	t := []AppType{
		{1, "hadoop", 34, true, workload.Hadoop},
		{2, "spark", 30, true, workload.Spark},
		{3, "email", 10, false, custom("email", cv(30, 18, 12, 14, 18, 8, 10, 22, 18, 10), 0.1)},
		{4, "browser", 12, false, custom("browser", cv(48, 30, 20, 28, 34, 18, 26, 38, 8, 6), 0.12)},
		{5, "cadence", 6, false, custom("cadence", cv(40, 52, 44, 52, 68, 48, 82, 4, 34, 26), 0.05)},
		{6, "zsim", 7, false, custom("zsim", cv(36, 58, 48, 62, 72, 66, 88, 2, 12, 10), 0.04)},
		{7, "video", 9, false, custom("video", cv(26, 38, 28, 34, 30, 40, 45, 68, 8, 12), 0.06)},
		{8, "latex", 6, false, custom("latex", cv(44, 30, 22, 22, 20, 16, 38, 2, 16, 14), 0.1)},
		{9, "MLPython", 11, false, custom("MLPython", cv(30, 52, 42, 56, 62, 58, 76, 8, 24, 18), 0.06)},
		{10, "make", 9, false, custom("make", cv(52, 36, 28, 30, 28, 26, 66, 2, 38, 34), 0.08)},
		{11, "mem$d", 14, true, workload.Memcached},
		{12, "http server", 13, true, workload.Webserver},
		{13, "spec", 16, true, workload.SpecCPU},
		{14, "matlab", 8, false, custom("matlab", cv(28, 50, 40, 52, 58, 54, 74, 2, 14, 10), 0.05)},
		{15, "mysql", 9, true, func(rng *stats.RNG, v int) workload.Spec { return workload.SQLDatabase(rng, v*2) }},
		{16, "vivado", 5, false, custom("vivado", cv(38, 48, 42, 50, 64, 46, 84, 2, 30, 22), 0.05)},
		{17, "parsec", 7, false, custom("parsec", cv(34, 54, 44, 58, 52, 62, 80, 2, 6, 6), 0.05)},
		{18, "vim", 5, false, custom("vim", cv(24, 12, 8, 8, 8, 4, 6, 2, 6, 4), 0.15)},
		{19, "scala", 6, false, custom("scala", cv(42, 40, 32, 40, 44, 36, 62, 6, 14, 10), 0.07)},
		{20, "php", 5, false, custom("php", cv(56, 36, 26, 32, 26, 22, 48, 30, 10, 8), 0.08)},
		{21, "postgres", 8, true, func(rng *stats.RNG, v int) workload.Spec { return workload.SQLDatabase(rng, v*2+1) }},
		{22, "musicStream", 6, false, custom("musicStream", cv(22, 22, 16, 20, 18, 22, 18, 56, 6, 10), 0.08)},
		{23, "minebench", 4, false, custom("minebench", cv(32, 50, 42, 54, 50, 56, 78, 2, 28, 24), 0.05)},
		{24, "n-body sim", 5, false, custom("n-body sim", cv(22, 56, 48, 60, 56, 72, 84, 2, 4, 4), 0.04)},
		{25, "ppt", 3, false, custom("ppt", cv(30, 20, 14, 16, 22, 10, 16, 4, 10, 8), 0.12)},
		{26, "OS img", 3, false, custom("OS img", cv(14, 22, 16, 18, 20, 30, 28, 10, 72, 66), 0.06)},
		{27, "pdfview", 3, false, custom("pdfview", cv(28, 18, 12, 14, 16, 8, 12, 2, 10, 6), 0.12)},
		{28, "scons", 4, false, custom("scons", cv(48, 34, 26, 28, 26, 24, 62, 2, 34, 32), 0.08)},
		{29, "du -h", 2, false, custom("du -h", cv(10, 12, 8, 8, 6, 6, 14, 0, 46, 40), 0.1)},
		{30, "cr/del cgroup", 2, false, custom("cr/del cgroup", cv(12, 10, 6, 6, 6, 4, 10, 0, 8, 6), 0.12)},
		{31, "bioparallel", 4, false, custom("bioparallel", cv(28, 52, 44, 56, 54, 60, 80, 4, 22, 18), 0.05)},
		{32, "storm", 7, true, workload.Storm},
		{33, "cpu burn", 4, false, custom("cpu burn", cv(18, 20, 14, 12, 6, 8, 96, 0, 0, 0), 0.02)},
		{34, "audacity", 3, false, custom("audacity", cv(24, 30, 20, 24, 26, 28, 40, 2, 20, 18), 0.08)},
		{35, "javascript", 4, false, custom("javascript", cv(46, 32, 22, 28, 30, 22, 44, 18, 6, 4), 0.1)},
		{36, "create VMs", 3, false, custom("create VMs", cv(18, 24, 16, 20, 38, 28, 34, 8, 52, 48), 0.07)},
		{37, "html", 3, false, custom("html", cv(34, 20, 14, 16, 14, 10, 18, 12, 8, 6), 0.1)},
		{38, "cassandra", 9, true, workload.Cassandra},
		{39, "mongoDB", 7, true, workload.MongoDB},
		{40, "mkdir", 2, false, custom("mkdir", cv(8, 8, 4, 4, 4, 2, 6, 0, 14, 10), 0.15)},
		{41, "cp/mv", 3, false, custom("cp/mv", cv(10, 14, 10, 10, 8, 18, 16, 0, 56, 62), 0.08)},
		{42, "sirius", 4, false, custom("sirius", cv(44, 46, 36, 48, 50, 44, 66, 34, 14, 10), 0.06)},
		{43, "oProfile", 3, false, custom("oProfile", cv(30, 28, 22, 24, 22, 20, 38, 2, 26, 22), 0.08)},
		{44, "dwnld LF", 3, false, custom("dwnld LF", cv(8, 12, 8, 10, 10, 20, 12, 74, 40, 52), 0.07)},
		{45, "rsync", 3, false, custom("rsync", cv(12, 16, 10, 12, 10, 22, 20, 52, 44, 54), 0.07)},
		{46, "ping", 2, false, custom("ping", cv(6, 6, 4, 4, 2, 2, 4, 18, 0, 0), 0.15)},
		{47, "photoshop", 3, false, custom("photoshop", cv(30, 44, 34, 44, 52, 46, 58, 4, 22, 16), 0.08)},
		{48, "ssh", 3, false, custom("ssh", cv(16, 10, 6, 8, 6, 4, 8, 16, 2, 2), 0.12)},
		{49, "rm", 2, false, custom("rm", cv(8, 8, 6, 6, 4, 4, 8, 0, 20, 26), 0.12)},
		{50, "skype", 3, false, custom("skype", cv(22, 20, 14, 18, 18, 18, 28, 48, 4, 4), 0.1)},
		{51, "zipkin", 3, false, custom("zipkin", cv(36, 32, 24, 30, 34, 28, 38, 40, 26, 22), 0.08)},
		{52, "graphX", 7, true, workload.GraphAnalytics},
		{53, "ix", 3, false, custom("ix", cv(52, 38, 26, 40, 28, 30, 44, 72, 2, 2), 0.05)},
	}
	return t
}

// Job is one submitted application in the study.
type Job struct {
	User     int // 0-19
	Type     AppType
	Spec     workload.Spec
	VCPUs    int
	Start    sim.Tick // submission time
	Duration sim.Tick // lifetime; jobs end and free their slots
	Pattern  workload.LoadPattern
}

// Config shapes the generated study.
type Config struct {
	Users     int      // 0 means 20
	Jobs      int      // 0 means 436
	Instances int      // 0 means 200
	Span      sim.Tick // study length; 0 means 4 hours
	Seed      uint64
}

func (c Config) withDefaults() Config {
	if c.Users == 0 {
		c.Users = 20
	}
	if c.Jobs == 0 {
		c.Jobs = 436
	}
	if c.Instances == 0 {
		c.Instances = 200
	}
	if c.Span == 0 {
		c.Span = 4 * 3600 * sim.TicksPerSecond
	}
	return c
}

// Study is a generated user study.
type Study struct {
	Config Config
	Jobs   []Job
}

// Generate builds a study: every user gets a preference distribution over
// a random subset of types, then jobs are drawn user by user with
// arrival times spread over the span.
func Generate(cfg Config) *Study {
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed ^ 0x57add1e5)
	types := Types()

	// Per-user preferences: each user favours 4-10 types, weighted by the
	// global occurrence shape.
	prefs := make([][]float64, cfg.Users)
	for u := range prefs {
		w := make([]float64, len(types))
		nFav := 4 + rng.Intn(7)
		for i := 0; i < nFav; i++ {
			ti := rng.Choose(globalWeights(types))
			w[ti] += types[ti].Weight
		}
		prefs[u] = w
	}

	s := &Study{Config: cfg}
	for j := 0; j < cfg.Jobs; j++ {
		u := j % cfg.Users // all users submit; counts vary via extra draws
		if rng.Bool(0.3) {
			u = rng.Intn(cfg.Users)
		}
		ti := rng.Choose(prefs[u])
		typ := types[ti]
		spec := typ.Make(rng.Split(), rng.Intn(24))
		start := sim.Tick(rng.Range(0, float64(cfg.Span)*0.8))
		dur := sim.Tick(rng.Range(float64(cfg.Span)*0.1, float64(cfg.Span)*0.5))
		s.Jobs = append(s.Jobs, Job{
			User:     u,
			Type:     typ,
			Spec:     spec,
			VCPUs:    1 + rng.Intn(8),
			Start:    start,
			Duration: dur,
			Pattern:  workload.DefaultPattern(spec.Class, rng.Split()),
		})
	}
	return s
}

func globalWeights(types []AppType) []float64 {
	w := make([]float64, len(types))
	for i, t := range types {
		w[i] = t.Weight
	}
	return w
}

// OccurrencePDF tallies launches per type ID (Fig. 11).
func (s *Study) OccurrencePDF() *stats.Counter {
	c := stats.NewCounter()
	for _, j := range s.Jobs {
		c.Add(fmt.Sprintf("%02d:%s", j.Type.ID, j.Type.Name))
	}
	return c
}

// TrainableJobs counts jobs whose type exists in Bolt's training set.
func (s *Study) TrainableJobs() int {
	n := 0
	for _, j := range s.Jobs {
		if j.Type.Trainable {
			n++
		}
	}
	return n
}
