package study

import (
	"testing"

	"bolt/internal/sim"
)

func TestTypesShape(t *testing.T) {
	types := Types()
	if len(types) != 53 {
		t.Fatalf("got %d types, want 53", len(types))
	}
	seen := map[int]bool{}
	for i, typ := range types {
		if typ.ID != i+1 {
			t.Fatalf("type %d has ID %d; IDs must be sequential", i, typ.ID)
		}
		if seen[typ.ID] {
			t.Fatalf("duplicate ID %d", typ.ID)
		}
		seen[typ.ID] = true
		if typ.Weight <= 0 {
			t.Fatalf("type %s has non-positive weight", typ.Name)
		}
		if typ.Make == nil {
			t.Fatalf("type %s has no generator", typ.Name)
		}
	}
}

func TestTypesMixOfTrainable(t *testing.T) {
	trainable := 0
	for _, typ := range Types() {
		if typ.Trainable {
			trainable++
		}
	}
	if trainable < 8 || trainable > 20 {
		t.Fatalf("trainable type count %d implausible", trainable)
	}
}

func TestGenerateDefaults(t *testing.T) {
	s := Generate(Config{Seed: 1})
	if len(s.Jobs) != 436 {
		t.Fatalf("got %d jobs, want 436", len(s.Jobs))
	}
	if s.Config.Users != 20 || s.Config.Instances != 200 {
		t.Fatalf("defaults wrong: %+v", s.Config)
	}
	users := map[int]bool{}
	for _, j := range s.Jobs {
		if j.User < 0 || j.User >= 20 {
			t.Fatalf("job user %d out of range", j.User)
		}
		users[j.User] = true
		if j.VCPUs < 1 || j.VCPUs > 8 {
			t.Fatalf("job vCPUs %d out of range", j.VCPUs)
		}
		if j.Start < 0 || j.Start >= s.Config.Span {
			t.Fatalf("job start %d outside span", j.Start)
		}
		if j.Duration <= 0 {
			t.Fatal("job duration must be positive")
		}
		if j.Pattern == nil {
			t.Fatal("job needs a load pattern")
		}
	}
	if len(users) != 20 {
		t.Fatalf("only %d users submitted jobs", len(users))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 7})
	b := Generate(Config{Seed: 7})
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatal("same seed, different job counts")
	}
	for i := range a.Jobs {
		if a.Jobs[i].Spec.Label != b.Jobs[i].Spec.Label || a.Jobs[i].Start != b.Jobs[i].Start {
			t.Fatalf("same seed diverged at job %d", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Config{Seed: 1})
	b := Generate(Config{Seed: 2})
	same := 0
	for i := range a.Jobs {
		if a.Jobs[i].Type.ID == b.Jobs[i].Type.ID {
			same++
		}
	}
	if same == len(a.Jobs) {
		t.Fatal("different seeds produced identical type sequences")
	}
}

func TestOccurrencePDF(t *testing.T) {
	s := Generate(Config{Seed: 3})
	pdf := s.OccurrencePDF()
	if pdf.Total() != len(s.Jobs) {
		t.Fatal("PDF total mismatch")
	}
	// Analytics frameworks dominate the study, as in Fig. 11.
	if pdf.Count("01:hadoop")+pdf.Count("02:spark") < 30 {
		t.Fatalf("hadoop+spark occurrences too low: %d",
			pdf.Count("01:hadoop")+pdf.Count("02:spark"))
	}
}

func TestTrainableJobsFraction(t *testing.T) {
	s := Generate(Config{Seed: 4})
	frac := float64(s.TrainableJobs()) / float64(len(s.Jobs))
	// The paper labels 277/436 ≈ 64%; the trainable fraction must make
	// that achievable but not trivial.
	if frac < 0.35 || frac > 0.9 {
		t.Fatalf("trainable fraction %.2f implausible", frac)
	}
}

func TestJobPressuresInRange(t *testing.T) {
	s := Generate(Config{Seed: 5, Jobs: 100})
	for _, j := range s.Jobs {
		for _, r := range sim.AllResources() {
			p := j.Spec.Base.Get(r)
			if p < 0 || p > 100 {
				t.Fatalf("job %s pressure %v out of range on %v", j.Spec.Label, p, r)
			}
		}
	}
}

func TestSmallStudyConfig(t *testing.T) {
	s := Generate(Config{Seed: 6, Users: 3, Jobs: 20, Instances: 5, Span: 1000})
	if len(s.Jobs) != 20 || s.Config.Users != 3 {
		t.Fatal("explicit config ignored")
	}
}
