package fleet

import (
	"fmt"
	"testing"

	"bolt/internal/cluster"
	"bolt/internal/sim"
	"bolt/internal/stats"
	"bolt/internal/workload"
)

// withShardWorkers pins the tick pool width for one test and restores the
// default on cleanup.
func withShardWorkers(t *testing.T, n int) {
	t.Helper()
	SetShardWorkers(n)
	t.Cleanup(func() { SetShardWorkers(0) })
}

// buildFleet populates a fresh cluster of n servers with ~3 VMs per server,
// placed deterministically, and returns an engine over it. Every call with
// the same arguments builds an identical world.
func buildFleet(seed uint64, n int) *Engine {
	rng := stats.NewRNG(seed)
	cl := cluster.New(n, sim.ServerConfig{}, cluster.LeastLoaded{})
	mk := []func(*stats.RNG, int) workload.Spec{
		workload.Memcached, workload.Hadoop, workload.Spark,
	}
	for i, s := range cl.Servers {
		for j := 0; j < 3; j++ {
			spec := mk[(i+j)%len(mk)](rng.Split(), i+j)
			app := workload.NewApp(spec, workload.Constant{Level: 0.9}, rng.Uint64())
			vm := &sim.VM{ID: fmt.Sprintf("vm-%d-%d", i, j), VCPUs: 1 + (i+j)%3, App: app}
			if err := s.Place(vm); err != nil {
				panic(err)
			}
		}
	}
	return NewEngine(cl, rng.Split())
}

// probeTick is a representative tick body: it consumes per-server
// randomness, reads the observation plane, and emits data-dependent events
// — everything a real fleet experiment does per server per tick. It is
// written allocation-free so the steady-state allocation test isolates the
// engine's own cost.
func probeTick(w *World) {
	r := sim.Resource(w.RNG.Intn(sim.NumResources))
	p := w.Server.ObservedPressure(nil, r, w.Tick)
	if p > 55 || w.RNG.Bool(0.05) {
		w.Emit(int(r), "", p)
	}
}

// runFleet ticks a freshly built world for `ticks` ticks at the given
// worker count and returns the concatenated event stream and per-tick
// stats.
func runFleet(t *testing.T, workers, servers, ticks int) ([]Event, []Stats) {
	t.Helper()
	withShardWorkers(t, workers)
	e := buildFleet(42, servers)
	var events []Event
	var sts []Stats
	for tick := 0; tick < ticks; tick++ {
		ev, st := e.Tick(sim.Tick(tick), probeTick)
		events = append(events, ev...) // Tick's slice is reused; copy out
		sts = append(sts, st)
	}
	return events, sts
}

// TestTickParityAcrossShardWorkers is the fleet determinism contract: the
// full event stream and every fleet Stats field are ==-identical between
// the serial single-worker reference and every sharded width, including
// widths that do not divide the server count.
func TestTickParityAcrossShardWorkers(t *testing.T) {
	const servers, ticks = 61, 12 // prime server count: uneven blocks at every width
	refEvents, refStats := runFleet(t, 1, servers, ticks)
	if len(refEvents) == 0 {
		t.Fatal("reference run emitted no events; the parity check would be vacuous")
	}
	for _, workers := range []int{2, 4, 8} {
		events, sts := runFleet(t, workers, servers, ticks)
		if len(events) != len(refEvents) {
			t.Fatalf("workers=%d emitted %d events, serial reference %d", workers, len(events), len(refEvents))
		}
		for i := range events {
			if events[i] != refEvents[i] {
				t.Fatalf("workers=%d event %d = %+v, serial reference %+v", workers, i, events[i], refEvents[i])
			}
		}
		for i := range sts {
			if sts[i] != refStats[i] {
				t.Fatalf("workers=%d tick %d stats = %+v, serial reference %+v", workers, i, sts[i], refStats[i])
			}
		}
	}
}

// TestTickEventsArriveInServerIDOrder pins the barrier's merge rule.
func TestTickEventsArriveInServerIDOrder(t *testing.T) {
	withShardWorkers(t, 4)
	e := buildFleet(7, 33)
	ev, _ := e.Tick(0, func(w *World) {
		w.Emit(0, "", float64(w.Index))
		w.Emit(1, "", float64(w.Index))
	})
	if len(ev) != 2*33 {
		t.Fatalf("got %d events, want %d", len(ev), 2*33)
	}
	for i, x := range ev {
		if x.Server != i/2 || x.Kind != i%2 {
			t.Fatalf("event %d is server %d kind %d, want server %d kind %d", i, x.Server, x.Kind, i/2, i%2)
		}
	}
}

// TestTickStats checks the occupancy reduction against the world the test
// itself built: 3 VMs per server, sized 1+(i+j)%3 vCPUs.
func TestTickStats(t *testing.T) {
	withShardWorkers(t, 3)
	const n = 10
	e := buildFleet(42, n)
	_, st := e.Tick(0, nil)
	if st.Servers != n {
		t.Fatalf("Servers = %d, want %d", st.Servers, n)
	}
	if st.VMs != 3*n {
		t.Fatalf("VMs = %d, want %d", st.VMs, 3*n)
	}
	wantFree := 0
	for i := 0; i < n; i++ {
		used := 0
		for j := 0; j < 3; j++ {
			used += 1 + (i+j)%3
		}
		wantFree += 16 - used
	}
	if st.FreeVCPUs != wantFree {
		t.Fatalf("FreeVCPUs = %d, want %d", st.FreeVCPUs, wantFree)
	}
	if st.MeanCPU <= 0 || st.MeanCPU > 100 {
		t.Fatalf("MeanCPU = %g, want in (0, 100]", st.MeanCPU)
	}
}

// TestTickSteadyStateAllocs: after the first tick warms the buffers, a
// fleet tick's allocation count is a small constant — the tick-body
// closure and the per-shard World — and does not scale with the number of
// servers. A per-server allocation creeping into the loop is the
// regression this guards against: at 4096 servers it would turn one tick
// into thousands of allocations.
func TestTickSteadyStateAllocs(t *testing.T) {
	withShardWorkers(t, 1) // inline path isolates engine allocations from pool goroutines
	perTick := func(servers int) float64 {
		e := buildFleet(42, servers)
		e.Tick(0, probeTick)
		e.Tick(1, probeTick)
		return testing.AllocsPerRun(50, func() {
			e.Tick(2, probeTick) // constant tick: demand memos stay warm
		})
	}
	small, large := perTick(32), perTick(256)
	if small > 4 {
		t.Fatalf("steady-state Tick allocates %.1f times per run, want a small constant (≤4)", small)
	}
	if large > small {
		t.Fatalf("Tick allocations scale with fleet size: %.1f at 32 servers, %.1f at 256", small, large)
	}
}

// TestTickPanicsWhenClusterGrows pins the fixed-fleet contract.
func TestTickPanicsWhenClusterGrows(t *testing.T) {
	e := buildFleet(42, 4)
	e.cl.Servers = append(e.cl.Servers, sim.NewServer("late", sim.ServerConfig{}))
	defer func() {
		if recover() == nil {
			t.Fatal("Tick over a grown cluster did not panic")
		}
	}()
	e.Tick(0, nil)
}
